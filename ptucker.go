// Package ptucker is the public API of this reproduction of "Scalable Tucker
// Factorization for Sparse Tensors — Algorithms and Discoveries" (Oh, Park,
// Sael, Kang; ICDE 2018).
//
// It factorizes large sparse partially-observed tensors with P-Tucker — an
// alternating-least-squares method with a fully parallel row-wise update rule
// that touches only the observed entries — and exposes the paper's two
// time-optimized variants (P-Tucker-Cache, P-Tucker-Approx), the discovery
// tooling of Section V (concept clustering, core-driven relation mining), and
// tensor IO in the published dataset format.
//
// Quick start:
//
//	x := ptucker.NewTensor([]int{users, movies, hours})
//	x.Append([]int{u, m, h}, rating)            // repeat for observed cells
//	cfg := ptucker.Defaults([]int{10, 10, 10})  // core ranks J1..J3
//	model, err := ptucker.DecomposeContext(ctx, x, cfg)
//	pred := model.Predict([]int{u2, m2, h2})    // estimate a missing cell
//
// Fitting is context-aware and observable: DecomposeContext honors
// cancellation every ALS iteration, and Config.OnIteration streams
// per-iteration statistics and can stop a fit early. A fitted Model can be
// persisted with SaveModel / LoadModel (a versioned binary format whose
// round trip is bit-identical) and served concurrently through a Predictor,
// whose PredictBatch fans large batches out across worker goroutines.
//
// Models also learn online: a Fitter (NewFitter / ResumeFitter) keeps the
// factorization mutable, absorbing new observations with a warm-started
// Refit and admitting brand-new rows — cold-start users, new items — with
// FoldIn, which solves the row's independent least-squares problem (Eq. 4)
// once instead of re-fitting, then hands out immutable Snapshots to serve.
//
// The subpackages under internal/ contain the substrates (dense linear
// algebra, sparse tensors, the baseline methods of the paper's evaluation)
// and the experiment harness that regenerates every table and figure; see
// README.md for a tour of the API and `go doc repro/internal/experiments`
// for the experiment index.
package ptucker

import (
	"context"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cp"
	"repro/internal/discovery"
	"repro/internal/store"
	"repro/internal/tensor"
)

// Tensor is a sparse tensor in coordinate format: the set Ω of observed
// entries of a partially observable multi-dimensional array.
type Tensor = tensor.Coord

// NewTensor returns an empty sparse tensor with the given mode lengths.
func NewTensor(dims []int) *Tensor { return tensor.NewCoord(dims) }

// ReadTensorFile loads a tensor file, auto-detecting the encoding: the text
// format of the published P-Tucker datasets (one observed entry per line,
// 1-based indices then the value) or the binary snapshot format written by
// SaveTensor. Pass nil dims to infer the shape from the data; binary
// snapshots carry their own shape, and order 0 adopts theirs.
func ReadTensorFile(path string, order int, dims []int) (*Tensor, error) {
	return tensor.ReadFile(path, order, dims)
}

// WriteTensorFile stores a tensor in the text format.
func WriteTensorFile(path string, t *Tensor) error { return tensor.WriteFile(path, t) }

// SaveTensor stores a tensor as a CRC-checked binary snapshot, atomically
// (temp file, fsync, rename): fixed-width records that load roughly an order
// of magnitude faster than the text format. ReadTensorFile reads either
// encoding transparently; the snapshot also serves as the training-set
// sidecar a Fitter resumes from (Fitter.AttachStore) and a serving data
// directory replays against.
func SaveTensor(path string, t *Tensor) error { return store.WriteTensor(path, t) }

// LoadTensor reads a binary tensor snapshot written by SaveTensor. For text
// files (or when the encoding is unknown) use ReadTensorFile.
func LoadTensor(path string) (*Tensor, error) { return store.ReadTensor(path) }

// Config holds the factorization hyper-parameters; see Defaults for the
// paper's settings.
type Config = core.Config

// Model is a fitted Tucker factorization: orthonormal factor matrices, the
// core tensor, and per-iteration statistics. It implements io.WriterTo; see
// SaveModel and LoadModel for file persistence.
type Model = core.Model

// IterStats carries one ALS iteration's statistics to Config.OnIteration
// hooks and the Model.Trace.
type IterStats = core.IterStats

// ErrStopIteration is the sentinel a Config.OnIteration hook returns to end
// a fit early without signalling failure: the model fitted so far is
// finalized and returned with a nil error.
var ErrStopIteration = core.ErrStopIteration

// Method selects the P-Tucker variant.
type Method = core.Method

// The P-Tucker family (Section III).
const (
	// PTucker is the default memory-optimized algorithm (O(T·J²)
	// intermediate memory).
	PTucker = core.PTucker
	// PTuckerCache memoizes intermediate products for O(1) δ updates at
	// O(|Ω|·|G|) memory.
	PTuckerCache = core.PTuckerCache
	// PTuckerApprox truncates "noisy" core entries each iteration,
	// trading a little accuracy for shrinking per-iteration time.
	PTuckerApprox = core.PTuckerApprox
)

// Scheduling selects how factor rows are distributed over worker threads.
type Scheduling = core.Scheduling

// Row distribution policies (Section III-D).
const (
	// ScheduleDynamic corrects per-row workload skew (the default).
	ScheduleDynamic = core.ScheduleDynamic
	// ScheduleStatic is the naive contiguous split.
	ScheduleStatic = core.ScheduleStatic
)

// Defaults returns the paper's default configuration for the given core
// ranks: λ=0.01, at most 20 iterations, truncation rate p=0.2, dynamic
// scheduling, one worker per CPU.
func Defaults(ranks []int) Config {
	cfg := core.Defaults(ranks)
	cfg.MaxIters = 20
	return cfg
}

// DecomposeContext factorizes the observed entries of x per Algorithm 2 and
// returns the fitted model. All randomness derives from cfg.Seed; equal
// inputs give bit-identical models at any thread count.
//
// Cancellation is honored every ALS iteration: a cancelled fit stops within
// one iteration and returns ctx.Err() with a nil model. cfg.OnIteration,
// when set, observes every iteration and can stop the fit early by
// returning ErrStopIteration. cfg is never mutated.
func DecomposeContext(ctx context.Context, x *Tensor, cfg Config) (*Model, error) {
	return core.DecomposeContext(ctx, x, cfg)
}

// Decompose factorizes x without cancellation or progress hooks.
//
// Deprecated: use DecomposeContext. Decompose remains as a compatibility
// wrapper equivalent to DecomposeContext(context.Background(), x, cfg).
func Decompose(x *Tensor, cfg Config) (*Model, error) { return core.Decompose(x, cfg) }

// Fitter is the stateful online-learning handle: it owns a mutable copy of
// the factors, core, and accumulated observations, and exposes Fit (cold
// start, equivalent to DecomposeContext), Refit (warm-started ALS over the
// union of old and new observations — reaches the cold-fit error in a
// fraction of the iterations), FoldIn (admit one brand-new row, e.g. a
// cold-start user, by solving its row-wise least-squares problem once in
// O(nnz_i·J²·|G|)), and Snapshot (immutable *Model for predictors).
//
// Rule of thumb: FoldIn when a new entity must be servable immediately —
// its row is exactly what a cold fit with the other factors fixed would
// produce; Refit once enough fold-ins or new observations have accumulated
// that the rest of the model should re-balance; Fit only to start over.
// A Fitter is not safe for concurrent use; snapshots are.
type Fitter = core.Fitter

// Observation is one observed tensor entry for the online-learning API: a
// multi-index and its value.
type Observation = core.Observation

// NewFitter returns a Fitter that cold-starts from cfg at the first Fit.
func NewFitter(cfg Config) *Fitter { return core.NewFitter(cfg) }

// ResumeFitter wraps an already-fitted model (e.g. one loaded from disk) in
// a Fitter so it can absorb new observations without a from-scratch refit.
// Pass m.Config (tweaked as desired) to keep the settings the model was
// trained with; cfg.Ranks may be nil to adopt the model's ranks.
func ResumeFitter(m *Model, cfg Config) (*Fitter, error) { return core.ResumeFitter(m, cfg) }

// ErrNotFitted is returned by Fitter operations that need a model before
// one exists (call Fit first, or construct the Fitter with ResumeFitter).
var ErrNotFitted = core.ErrNotFitted

// ErrBadObservation is returned by Fitter.Observe/Refit/FoldIn for an
// observation that does not address an acceptable cell.
var ErrBadObservation = core.ErrBadObservation

// TrainingStore supplies a persisted training set to Fitter.AttachStore, so
// a fitter resumed from a bare model file refits over the true union of
// everything ever observed (not just what arrived since the resume). The
// serving layer's data directory implements it; so does any loader that can
// produce a Tensor.
type TrainingStore = core.TrainingStore

// SaveModel writes a fitted model to path in the versioned binary format,
// atomically (write to a temp file, then rename). A model saved on one
// machine and loaded on another yields bit-identical predictions.
func SaveModel(path string, m *Model) error { return core.SaveModel(path, m) }

// LoadModel reads a model previously written by SaveModel.
func LoadModel(path string) (*Model, error) { return core.LoadModel(path) }

// ReadModel decodes a model from a stream previously produced by
// Model.WriteTo (the streaming counterpart of LoadModel).
func ReadModel(r io.Reader) (*Model, error) { return core.ReadModel(r) }

// Predictor is an immutable, goroutine-safe serving handle over a fitted
// model: Predict reconstructs one cell without allocating in steady state
// (per-goroutine scratch comes from a sync.Pool), PredictBatch fans a batch
// out across workers, and PredictChecked returns ErrBadIndex on malformed
// input instead of panicking — the entry point for untrusted network
// traffic. Build one with NewPredictor.
type Predictor = core.Predictor

// NewPredictor snapshots a fitted model into a Predictor that is safe for
// concurrent use from any number of goroutines. Its predictions are
// bit-identical to m.Predict.
func NewPredictor(m *Model) *Predictor { return core.NewPredictor(m) }

// ErrBadIndex is returned by Predictor.PredictChecked when an index does
// not address a cell of the served model (wrong number of modes, or a
// coordinate out of range), and by Recommender.TopK when a fixed coordinate
// is out of range.
var ErrBadIndex = core.ErrBadIndex

// ErrBadQuery is returned by Recommender.TopK for a malformed query shape:
// wrong number of modes, a free mode outside [0,N), or k < 1.
var ErrBadQuery = core.ErrBadQuery

// Recommender answers top-K queries over one mode of a fitted model: fix
// every mode but one (e.g. (user, ·, time)) and get the K highest-predicted
// candidates of the free mode. It contracts the core with the fixed factor
// rows once per query and scores all candidates as a dense sweep with a
// bounded heap — O(|G|·N + I·J) instead of the O(I·|G|·N) of calling
// Predict per candidate. TopKExcluding additionally skips an exclusion set
// (e.g. the items the user already rated). Derive one with
// Predictor.Recommender(); it shares the predictor's immutable snapshot and
// is safe for concurrent use.
type Recommender = core.Recommender

// Rec is one recommendation returned by Recommender.TopK: a candidate index
// of the free mode and its predicted value.
type Rec = core.Rec

// Concept is a discovered cluster over one mode's indices (Section V,
// Table V).
type Concept = discovery.Concept

// Relation is a discovered association between factor columns weighted by a
// core entry (Section V, Table VI).
type Relation = discovery.Relation

// Concepts clusters the rows of factor matrix A(mode) into k concepts with
// k-means, returning members ranked by representativeness (topPerConcept
// bounds each list; 0 means all).
func Concepts(m *Model, mode, k, topPerConcept int, seed int64) ([]Concept, error) {
	return discovery.Concepts(m, mode, k, topPerConcept, rand.New(rand.NewSource(seed)))
}

// Relations returns the topK strongest relations in the model's core with
// the topLoad highest-loading indices per mode.
func Relations(m *Model, topK, topLoad int) []Relation {
	return discovery.Relations(m, topK, topLoad)
}

// CPConfig configures the companion CP decomposition (see DecomposeCP).
type CPConfig = cp.Config

// CPModel is a fitted CP decomposition.
type CPModel = cp.Model

// DecomposeCP fits a rank-R CANDECOMP/PARAFAC model to the observed entries
// of x with the row-wise ALS of Shin et al. (reference [24] of the paper) —
// the special case of Tucker with a super-diagonal core, useful when the
// full Jᴺ core is unnecessary.
func DecomposeCP(x *Tensor, cfg CPConfig) (*CPModel, error) { return cp.Decompose(x, cfg) }
