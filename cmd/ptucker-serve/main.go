// Command ptucker-serve puts a saved P-Tucker model (a .ptkm file written by
// `ptucker -save` or ptucker.SaveModel) behind an HTTP JSON API.
//
// Endpoints: POST /v1/predict, /v1/predict-batch, /v1/recommend,
// /v1/observe, /v1/reload; GET /healthz, /metrics. See `go doc
// repro/internal/serve` for the request and response shapes.
//
// The model is hot-swappable: POST /v1/reload (optionally naming a new model
// file), send SIGHUP, or run with -watch to poll the -model file and reload
// whenever it changes; in-flight requests finish on the snapshot they
// started with. The model also learns online: POST /v1/observe appends
// observations and folds brand-new indices in as fresh factor rows, and
// -refit-after N triggers a background warm refit every N observations.
//
// Concurrent /v1/predict calls are micro-batched by -shards parallel
// dispatcher shards (default: scaled from GOMAXPROCS), each coalescing up to
// -max-batch queued predictions into one batched kernel pass; /metrics
// reports per-shard flush and occupancy counters.
//
// With -data-dir the process is durable: every accepted observe batch is
// journaled (fsync policy: -journal-sync) before it is applied, the journal
// is replayed on startup so a crash loses nothing, and a successful refit
// compacts journal + training set + model into the directory — which then
// supersedes -model on the next start. -compact-bytes N additionally
// compacts (snapshotting the grown model and training set without a refit)
// whenever the journal outgrows N bytes, so a server running without
// -refit-after keeps a bounded journal; -compact-age D does the same on a
// wall-clock bound, compacting once the oldest unsnapshotted record is older
// than D, so a low-traffic server's restart replay stays short too.
// -auth-token guards the mutating
// endpoints with a bearer token; -holdout reports held-out RMSE on /metrics
// across refits. Request bodies are capped at -max-body bytes (413) and each
// request is bounded by -timeout (503). SIGINT/SIGTERM drain the listener
// gracefully before exiting.
//
// Observability: structured logs go to stderr (-log-format text|json,
// -log-level debug|info|warn|error); every request carries an
// X-Ptucker-Request-Id correlation header (caller-supplied or generated)
// echoed on the response and logged on the access line; -slow-request D
// escalates requests slower than D to warn level; -pprof mounts
// net/http/pprof under /debug/pprof/, guarded by -auth-token when set.
// /metrics exposes per-endpoint latency histograms, coalescer flush
// histograms, journal fsync/append latency, refit state gauges, and runtime
// gauges — see the README's Observability section for the full reference.
//
// With -models-dir the process serves many named models at once: every
// subdirectory holding a model.ptkm becomes a durable tenant (the
// subdirectory is its data dir — journal, compactions, holdout.tns) and
// every bare <name>.ptkm file a read-mostly tenant. Requests route by path
// prefix (/m/<name>/v1/predict) or the X-Ptucker-Model header; tenants load
// lazily on first touch and, with -mmap, serve straight from read-only file
// mappings — -max-mapped-bytes bounds the total, evicting the least-
// recently-touched tenant when crossed. GET /healthz lists every tenant's
// load state and GET /metrics merges all loaded tenants' families under
// per-model labels. -mmap also works in single-model mode.
//
// With -follow the process runs as a read replica instead: it bootstraps
// its model from the primary at the given URL, tails the primary's journal
// stream (GET /v1/journal), and replays every observation through the same
// plan/apply path — serving /v1/predict and /v1/recommend bit-identically
// to a caught-up primary while answering writes with 403 and a Location
// hint at the primary. A replica with -data-dir keeps a local copy of the
// stream and resumes from it across restarts; -max-lag turns /healthz 503
// once the replica goes stale so load balancers eject it. The primary needs
// -data-dir (the journal is the replication log) and, when -auth-token is
// set, the follower sends the same token on the stream.
//
// Usage:
//
//	ptucker-serve -model model.ptkm -addr :8080 -refit-after 1000 -watch 5s
//	ptucker-serve -model model.ptkm -data-dir ./data -journal-sync always \
//	    -auth-token $TOKEN -holdout test.tns
//	ptucker-serve -follow http://primary:8080 -addr :8081 -data-dir ./replica \
//	    -auth-token $TOKEN -max-lag 30s
//	ptucker-serve -models-dir ./models -mmap -max-mapped-bytes 2147483648
//	curl -s localhost:8080/m/movies/v1/predict -d '{"index":[3,7,1]}'
//	curl -s localhost:8080/v1/predict -d '{"index":[3,7,1]}'
//	curl -s localhost:8080/v1/recommend -d '{"query":[3,0,1],"mode":1,"k":10,"exclude":[7]}'
//	curl -s localhost:8080/v1/observe -d '{"observations":[{"index":[50,7,1],"value":0.9}]}'
//	curl -s -X POST localhost:8080/v1/reload -d '{}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	var (
		model       = flag.String("model", "", "saved model file to serve (required)")
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "PredictBatch worker goroutines (0 = GOMAXPROCS)")
		maxBatch    = flag.Int("max-batch", serve.DefaultMaxBatch, "max single predictions coalesced into one batch (1 disables)")
		shards      = flag.Int("shards", 0, "coalescer dispatcher shards, each with its own queue and flush loop (0 = auto from GOMAXPROCS)")
		refitAfter  = flag.Int("refit-after", 0, "background warm refit after this many /v1/observe observations (0 disables)")
		sparsify    = flag.Float64("sparsify", 0, "prune refit results' core entries within this relative error budget (0 keeps the model's own setting; checked on -holdout when set)")
		maxBody     = flag.Int64("max-body", serve.DefaultMaxBody, "max request body bytes on /v1/* (larger bodies get 413; <0 disables)")
		timeout     = flag.Duration("timeout", serve.DefaultTimeout, "per-request handling bound on /v1/* (exceeded requests get 503; <0 disables)")
		watch       = flag.Duration("watch", 0, "poll the -model file at this interval and hot-reload on change (0 disables)")
		dataDir     = flag.String("data-dir", "", "durability directory: journal observes, replay on startup, compact after refits (empty disables)")
		compactB    = flag.Int64("compact-bytes", 0, "compact the journal (snapshot model + training set, no refit) once it exceeds this many bytes (0 disables; needs -data-dir)")
		compactAge  = flag.Duration("compact-age", 0, "compact the journal once its oldest uncovered record is older than this wall-clock age (0 disables; needs -data-dir)")
		journalSync = flag.String("journal-sync", "batch", "journal fsync policy: always, none, batch, or a batching interval like 250ms")
		holdout     = flag.String("holdout", "", "held-out test tensor (text or binary); RMSE is reported on /metrics across refits")
		authToken   = flag.String("auth-token", "", "bearer token required on mutating and replication endpoints; empty leaves them open (a follower sends it to its primary)")
		follow      = flag.String("follow", "", "run as a read replica of the primary at this base URL (bootstraps the model from it, tails its journal, rejects writes); excludes -model")
		maxLag      = flag.Duration("max-lag", 0, "follower /healthz goes 503 once the replica has not confirmed being caught up for this long (0 reports lag but stays ready; needs -follow)")
		logFormat   = flag.String("log-format", "text", "structured log output format: text or json")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error (access-log lines are debug)")
		slowReq     = flag.Duration("slow-request", 0, "log requests slower than this at warn level with full detail (0 disables)")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (guarded by -auth-token when set)")
		mmapOn      = flag.Bool("mmap", false, "serve model files from read-only memory mappings (zero-copy open; pre-v4 files and non-unix builds fall back to the heap loader)")
		modelsDir   = flag.String("models-dir", "", "multi-model mode: serve every model in this directory as a named tenant routed by /m/<name>/ or the X-Ptucker-Model header (subdirectories holding model.ptkm are durable tenants, bare <name>.ptkm files are read-mostly); excludes -model/-follow/-data-dir/-holdout/-watch")
		maxMapped   = flag.Int64("max-mapped-bytes", 0, "evict least-recently-touched tenant models once total mapped bytes exceed this (0 = unbounded; needs -models-dir)")
	)
	flag.Parse()
	if *modelsDir == "" && *follow == "" && *model == "" {
		fmt.Fprintln(os.Stderr, "ptucker-serve: -model is required (or -follow to run as a replica, or -models-dir for multi-model serving)")
		flag.Usage()
		os.Exit(2)
	}
	syncPolicy, err := store.ParseSyncPolicy(*journalSync)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ptucker-serve: -journal-sync: %v\n", err)
		os.Exit(2)
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ptucker-serve: %v\n", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	if *compactB > 0 && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "ptucker-serve: -compact-bytes needs -data-dir")
		os.Exit(2)
	}
	if *compactAge > 0 && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "ptucker-serve: -compact-age needs -data-dir")
		os.Exit(2)
	}
	if *follow != "" {
		incompatible := []struct {
			name string
			set  bool
		}{
			{"-model", *model != ""},
			{"-refit-after", *refitAfter != 0},
			{"-compact-age", *compactAge != 0},
			{"-watch", *watch != 0},
		}
		for _, f := range incompatible {
			if f.set {
				fmt.Fprintf(os.Stderr, "ptucker-serve: %s cannot be combined with -follow (a replica's model comes from its primary)\n", f.name)
				os.Exit(2)
			}
		}
	}
	if *maxLag > 0 && *follow == "" {
		fmt.Fprintln(os.Stderr, "ptucker-serve: -max-lag needs -follow")
		os.Exit(2)
	}
	if *maxMapped > 0 && *modelsDir == "" {
		fmt.Fprintln(os.Stderr, "ptucker-serve: -max-mapped-bytes needs -models-dir")
		os.Exit(2)
	}
	if *modelsDir != "" {
		incompatible := []struct {
			name string
			set  bool
		}{
			{"-model", *model != ""},
			{"-follow", *follow != ""},
			{"-data-dir", *dataDir != ""}, // per-tenant data dirs live inside -models-dir
			{"-holdout", *holdout != ""},  // per-tenant holdouts live inside each tenant dir
			{"-watch", *watch != 0},       // reload tenants via /m/<name>/v1/reload
			{"-max-lag", *maxLag != 0},
		}
		for _, f := range incompatible {
			if f.set {
				fmt.Fprintf(os.Stderr, "ptucker-serve: %s cannot be combined with -models-dir\n", f.name)
				os.Exit(2)
			}
		}
	}

	base := serve.Options{
		ModelPath:    *model,
		Follow:       *follow,
		MaxLag:       *maxLag,
		Workers:      *workers,
		MaxBatch:     *maxBatch,
		Shards:       *shards,
		RefitAfter:   *refitAfter,
		Sparsify:     *sparsify,
		MaxBodyBytes: *maxBody,
		Timeout:      *timeout,
		DataDir:      *dataDir,
		CompactBytes: *compactB,
		CompactAge:   *compactAge,
		JournalSync:  syncPolicy,
		HoldoutPath:  *holdout,
		AuthToken:    *authToken,
		Logger:       logger,
		SlowRequest:  *slowReq,
		Pprof:        *pprofOn,
		Mmap:         *mmapOn,
	}

	// Multi-model mode: one process, many named tenants, lazy loads, and an
	// LRU mapped-bytes budget. Single-model lifecycle features that assume
	// exactly one model (SIGHUP reload-all, -watch) stay out of this mode;
	// each tenant reloads through its own /m/<name>/v1/reload.
	var (
		handler http.Handler
		closeFn func()
		s       *serve.Server // nil in multi-model mode
	)
	if *modelsDir != "" {
		reg, err := serve.NewRegistry(serve.RegistryOptions{
			ModelsDir:      *modelsDir,
			MaxMappedBytes: *maxMapped,
			Base:           base,
		})
		if err != nil {
			logger.Error("startup failed", "error", err)
			os.Exit(1)
		}
		handler, closeFn = reg.Handler(), reg.Close
	} else {
		srv, err := serve.New(base)
		if err != nil {
			logger.Error("startup failed", "error", err)
			os.Exit(1)
		}
		s, handler, closeFn = srv, srv.Handler(), srv.Close
		if *dataDir != "" {
			logger.Info("durable data dir open", "dir", *dataDir, "journal_sync", syncPolicy.Mode.String())
		}
	}

	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	// SIGHUP hot-reloads the -model file; the first SIGINT/SIGTERM drains
	// the listener, a second one kills the process the usual way.
	if s != nil {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				if err := s.Reload(""); err != nil {
					logger.Warn("SIGHUP reload failed", "error", err, "detail", "still serving the old model")
					continue
				}
				logger.Info("SIGHUP reloaded model", "model", *model)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// -watch: deploy-by-copying-a-file; the poller hot-reloads on mtime/size
	// change with the same snapshot-swap discipline as /v1/reload and SIGHUP.
	if *watch > 0 && s != nil {
		go func() {
			if err := s.WatchModel(ctx, *watch); err != nil && ctx.Err() == nil {
				logger.Error("model watcher stopped", "error", err)
			}
		}()
		logger.Info("watching model file", "model", *model, "interval", *watch)
	}

	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		stop() // restore default signal handling: a second signal is fatal
		logger.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Warn("shutdown", "error", err)
		}
	}()

	source := *model
	switch {
	case *follow != "":
		source = "replica of " + *follow
	case *modelsDir != "":
		source = "models dir " + *modelsDir
	}
	logger.Info("serving", "source", source, "addr", *addr,
		"workers", *workers, "max_batch", *maxBatch, "mmap", *mmapOn, "pprof", *pprofOn)
	err = httpSrv.ListenAndServe()
	if !errors.Is(err, http.ErrServerClosed) {
		logger.Error("listener failed", "error", err)
		os.Exit(1)
	}
	// ListenAndServe returns the moment Shutdown begins; wait for the drain
	// to finish, then stop the coalescer — no handler is mid-submit when
	// queued work is failed with ErrServerClosed.
	<-shutdownDone
	closeFn()
	logger.Info("bye")
}
