// Command ptucker-bench regenerates the paper's tables and figures. Each
// experiment id corresponds to one artifact of the evaluation (Section IV)
// or discovery study (Section V); run -list for the per-experiment index.
//
// Long sweeps honor SIGINT/SIGTERM: the first signal cancels the run's
// context and the in-flight factorization stops within one ALS iteration.
//
// Usage:
//
//	ptucker-bench -exp fig6a            # one experiment, reduced scale
//	ptucker-bench -exp all -scale full  # everything, paper-sized shapes
//	ptucker-bench -list                 # show available experiment ids
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/experiments"
	"repro/internal/synth"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (e.g. fig6a, table5) or 'all'")
		scale   = flag.String("scale", "small", "workload scale: small (CI) or full (paper-sized)")
		seed    = flag.Int64("seed", 1, "random seed for data generation and initialization")
		threads = flag.Int("threads", 0, "P-Tucker worker threads (0 = GOMAXPROCS)")
		iters   = flag.Int("iters", 2, "ALS iterations for per-iteration timing sweeps")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		verbose = flag.Bool("v", false, "print progress while sweeping")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, experiments.Title(id))
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "ptucker-bench: -exp is required (or -list)")
		flag.Usage()
		os.Exit(2)
	}

	sc, err := synth.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptucker-bench:", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop) // second signal force-kills: unregister once cancelled

	opt := experiments.Options{Scale: sc, Seed: *seed, Threads: *threads, Iters: *iters, Ctx: ctx}
	if *verbose {
		opt.Out = os.Stderr
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		res, err := experiments.Run(id, opt)
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "ptucker-bench: interrupted")
			os.Exit(130)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptucker-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println("==> " + res.Title)
		fmt.Println(res.Text)
	}
}
