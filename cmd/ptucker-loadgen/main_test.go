package main

import (
	"math/rand"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/tensor"
)

func tinyModel(t testing.TB) *core.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	dims := []int{20, 16, 12}
	x := tensor.NewCoord(dims)
	idx := make([]int, 3)
	for x.NNZ() < 800 {
		for k, d := range dims {
			idx[k] = rng.Intn(d)
		}
		x.MustAppend(idx, rng.Float64())
	}
	cfg := core.Defaults([]int{3, 3, 3})
	cfg.MaxIters = 2
	cfg.Tol = 0
	cfg.Seed = 5
	m, err := core.Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseMix(t *testing.T) {
	w, err := parseMix("predict=8,batch=1,recommend=1")
	if err != nil {
		t.Fatal(err)
	}
	if w != [3]float64{8, 1, 1} {
		t.Fatalf("weights = %v", w)
	}
	if w, err := parseMix("predict=1"); err != nil || w != [3]float64{1, 0, 0} {
		t.Fatalf("predict-only mix: %v %v", w, err)
	}
	for _, bad := range []string{"", "predict=0", "nope=1", "predict", "predict=-1"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

// TestLoadgenSmoke is the CI end-to-end gate: a sharded server over a tiny
// model takes mixed closed-loop load for the smoke window and must answer
// every request (zero errors, non-zero QPS). CI runs it for 30s via
// LOADGEN_SMOKE_DURATION; the default keeps local `go test` fast.
func TestLoadgenSmoke(t *testing.T) {
	d := 2 * time.Second
	if env := os.Getenv("LOADGEN_SMOKE_DURATION"); env != "" {
		parsed, err := time.ParseDuration(env)
		if err != nil {
			t.Fatalf("LOADGEN_SMOKE_DURATION=%q: %v", env, err)
		}
		d = parsed
	}

	s, err := serve.New(serve.Options{Model: tinyModel(t), MaxBatch: 32, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rep, err := run(config{
		Addr:      ts.URL,
		Conns:     8,
		Duration:  d,
		Mix:       "predict=8,batch=1,recommend=1",
		BatchSize: 8,
		K:         5,
		Seed:      1,
		Timeout:   10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("loadgen issued no requests")
	}
	if rep.Errors != 0 {
		t.Fatalf("%d of %d requests errored", rep.Errors, rep.Requests)
	}
	if rep.QPS <= 0 {
		t.Fatalf("QPS = %v, want > 0", rep.QPS)
	}
	// Every op in the mix must have been exercised and summarized.
	for _, name := range opNames {
		op, ok := rep.Ops[name]
		if !ok || op.Count == 0 {
			t.Fatalf("op %q missing from the report: %+v", name, rep.Ops)
		}
		if op.P99Ms < op.P50Ms {
			t.Fatalf("op %q: p99 %vms < p50 %vms", name, op.P99Ms, op.P50Ms)
		}
	}
	t.Logf("loadgen smoke: %d requests in %.1fs → %.0f QPS (predict p99 %.2fms)",
		rep.Requests, rep.DurationSec, rep.QPS, rep.Ops["predict"].P99Ms)
}
