package main

import (
	"bytes"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/tensor"
)

func tinyModel(t testing.TB) *core.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	dims := []int{20, 16, 12}
	x := tensor.NewCoord(dims)
	idx := make([]int, 3)
	for x.NNZ() < 800 {
		for k, d := range dims {
			idx[k] = rng.Intn(d)
		}
		x.MustAppend(idx, rng.Float64())
	}
	cfg := core.Defaults([]int{3, 3, 3})
	cfg.MaxIters = 2
	cfg.Tol = 0
	cfg.Seed = 5
	m, err := core.Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// scrapeMetrics fetches base/metrics, requires the exposition to parse
// clean (the parser enforces naming and histogram invariants), and requires
// every named family to be present with the expected count recorded.
func scrapeMetrics(t *testing.T, base string, wantFamilies ...string) map[string]*metrics.Family {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("scrape %s/metrics: %v", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape %s/metrics: status %d", base, resp.StatusCode)
	}
	fams, err := metrics.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("scrape %s/metrics does not parse: %v", base, err)
	}
	for _, name := range wantFamilies {
		if fams[name] == nil {
			t.Errorf("scrape %s/metrics: family %s missing", base, name)
		}
	}
	return fams
}

func TestParseMix(t *testing.T) {
	w, err := parseMix("predict=8,batch=1,recommend=1")
	if err != nil {
		t.Fatal(err)
	}
	if w != [4]float64{8, 1, 1, 0} {
		t.Fatalf("weights = %v", w)
	}
	if w, err := parseMix("predict=1"); err != nil || w != [4]float64{1, 0, 0, 0} {
		t.Fatalf("predict-only mix: %v %v", w, err)
	}
	if w, err := parseMix("predict=4,observe=1"); err != nil || w != [4]float64{4, 0, 0, 1} {
		t.Fatalf("observe mix: %v %v", w, err)
	}
	for _, bad := range []string{"", "predict=0", "nope=1", "predict", "predict=-1"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

func TestParseReplicas(t *testing.T) {
	got := parseReplicas(" http://a:1/, ,http://b:2 ")
	if len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:2" {
		t.Fatalf("parseReplicas = %v", got)
	}
	if got := parseReplicas(""); got != nil {
		t.Fatalf("empty list = %v", got)
	}
}

// smokeModel builds a servable model without fitting: rows scales factor 0
// (and the .ptkm file) so the multi-tenant smoke gets tenants whose mapped
// size dominates any serving-machinery heap noise.
func smokeModel(tb testing.TB, seed int64, rows int) *core.Model {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	ranks := []int{4, 3, 2}
	dims := []int{rows, 256, 64}
	factors := make([]*mat.Dense, len(dims))
	for k, d := range dims {
		data := make([]float64, d*ranks[k])
		for i := range data {
			data[i] = rng.NormFloat64()
		}
		factors[k] = mat.NewDenseData(d, ranks[k], data)
	}
	g := core.NewRandomCore(ranks, rng)
	g.FinalizeLayout()
	return &core.Model{Factors: factors, Core: g, Config: core.Defaults(ranks)}
}

// TestMultiTenantSmoke is the multi-model CI gate: one registry process maps
// three tenants lazily (two bare .ptkm files plus one durable directory),
// heap stays far below the bytes served from mappings, a mixed load
// round-robins across all tenants via the model header with zero errors, and
// the merged /metrics exposition parses clean with per-model labels. CI runs
// it for 30s via MULTITENANT_SMOKE_DURATION; the default keeps local
// `go test` fast.
func TestMultiTenantSmoke(t *testing.T) {
	d := 2 * time.Second
	if env := os.Getenv("MULTITENANT_SMOKE_DURATION"); env != "" {
		parsed, err := time.ParseDuration(env)
		if err != nil {
			t.Fatalf("MULTITENANT_SMOKE_DURATION=%q: %v", env, err)
		}
		d = parsed
	}

	// The bare-file tenants are big (their only heap cost should be serving
	// machinery); the durable tenant is small because a durable start clones
	// its model into the replay fitter, which is legitimate heap.
	dir := t.TempDir()
	for _, m := range []struct {
		name string
		rows int
	}{{"alpha", 65536}, {"beta", 49152}} {
		if err := core.SaveModel(filepath.Join(dir, m.name+".ptkm"), smokeModel(t, int64(m.rows), m.rows)); err != nil {
			t.Fatal(err)
		}
	}
	gdir := filepath.Join(dir, "gamma")
	if err := os.MkdirAll(gdir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := core.SaveModel(filepath.Join(gdir, store.ModelFile), smokeModel(t, 3, 4096)); err != nil {
		t.Fatal(err)
	}

	reg, err := serve.NewRegistry(serve.RegistryOptions{
		ModelsDir: dir,
		Base:      serve.Options{MaxBatch: 32, Mmap: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()
	client := &http.Client{Timeout: 10 * time.Second}
	names := []string{"alpha", "beta", "gamma"}

	// Lazy first-touch: each read maps one more tenant, growing mapped bytes,
	// while the Go heap must not grow with them — the models are served out
	// of the mappings, not decoded onto the heap.
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	var lastMapped int64
	for _, name := range names {
		ok, _ := post(client, ts.URL+"/v1/predict", []byte(`{"index":[0,0,0]}`), "", name)
		if !ok {
			t.Fatalf("first-touch predict on %s failed", name)
		}
		if mapped := reg.MappedBytes(); mapped > 0 && mapped <= lastMapped {
			t.Fatalf("mapped bytes did not grow loading %s: %d -> %d", name, lastMapped, mapped)
		} else {
			lastMapped = mapped
		}
	}
	if mapped := reg.MappedBytes(); mapped > 0 {
		runtime.GC()
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		if heapDelta := int64(after.HeapAlloc) - int64(before.HeapAlloc); heapDelta > mapped/2 {
			t.Errorf("heap grew %d bytes while mapping %d model bytes; zero-copy serving should not decode models onto the heap", heapDelta, mapped)
		}
		t.Logf("multi-tenant: %d bytes mapped across %d tenants", mapped, len(names))
	}

	rep, err := run(config{
		Addr:      ts.URL,
		Models:    names,
		Conns:     8,
		Duration:  d,
		Mix:       "predict=8,batch=1,recommend=1,observe=1",
		BatchSize: 8,
		K:         5,
		Seed:      1,
		Timeout:   10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("loadgen issued no requests")
	}
	if rep.Errors != 0 {
		t.Fatalf("%d of %d requests errored", rep.Errors, rep.Requests)
	}
	for _, name := range []string{"predict", "batch", "recommend", "observe"} {
		if op := rep.Ops[name]; op == nil || op.Count == 0 {
			t.Fatalf("op %q missing from the report: %+v", name, rep.Ops)
		}
	}

	// The merged exposition must satisfy the same contract as a single
	// server's (ParseExposition enforces it), carry the registry's own
	// families, and label every tenant's samples with its model name.
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	fams, err := metrics.ParseExposition(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("merged /metrics does not parse: %v", err)
	}
	for _, fam := range []string{
		"ptucker_registry_models",
		"ptucker_registry_models_loaded",
		"ptucker_registry_evictions_total",
		"ptucker_registry_mapped_bytes",
		"ptucker_model_mapped_bytes",
		"ptucker_requests_total",
		"ptucker_request_duration_seconds",
		"ptucker_goroutines",
	} {
		if fams[fam] == nil {
			t.Errorf("merged /metrics: family %s missing", fam)
		}
	}
	for _, name := range names {
		if !strings.Contains(string(raw), `model="`+name+`"`) {
			t.Errorf("merged /metrics has no samples labeled model=%q", name)
		}
	}
	t.Logf("multi-tenant smoke: %d requests in %.1fs → %.0f QPS across %d models",
		rep.Requests, rep.DurationSec, rep.QPS, len(names))
}

// TestLoadgenSmoke is the CI end-to-end gate: a sharded server over a tiny
// model takes mixed closed-loop load for the smoke window and must answer
// every request (zero errors, non-zero QPS). CI runs it for 30s via
// LOADGEN_SMOKE_DURATION; the default keeps local `go test` fast.
func TestLoadgenSmoke(t *testing.T) {
	d := 2 * time.Second
	if env := os.Getenv("LOADGEN_SMOKE_DURATION"); env != "" {
		parsed, err := time.ParseDuration(env)
		if err != nil {
			t.Fatalf("LOADGEN_SMOKE_DURATION=%q: %v", env, err)
		}
		d = parsed
	}

	s, err := serve.New(serve.Options{Model: tinyModel(t), MaxBatch: 32, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rep, err := run(config{
		Addr:      ts.URL,
		Conns:     8,
		Duration:  d,
		Mix:       "predict=8,batch=1,recommend=1",
		BatchSize: 8,
		K:         5,
		Seed:      1,
		Timeout:   10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("loadgen issued no requests")
	}
	if rep.Errors != 0 {
		t.Fatalf("%d of %d requests errored", rep.Errors, rep.Requests)
	}
	if rep.QPS <= 0 {
		t.Fatalf("QPS = %v, want > 0", rep.QPS)
	}
	// Every op in the mix must have been exercised and summarized, with a
	// full latency histogram and the slowest request's correlation ID.
	for _, name := range []string{"predict", "batch", "recommend"} {
		op, ok := rep.Ops[name]
		if !ok || op.Count == 0 {
			t.Fatalf("op %q missing from the report: %+v", name, rep.Ops)
		}
		if op.P99Ms < op.P50Ms {
			t.Fatalf("op %q: p99 %vms < p50 %vms", name, op.P99Ms, op.P50Ms)
		}
		if op.Histogram == nil || len(op.Histogram.Counts) != len(op.Histogram.BoundsMs)+1 {
			t.Fatalf("op %q: malformed histogram %+v", name, op.Histogram)
		}
		var total uint64
		for _, c := range op.Histogram.Counts {
			total += c
		}
		if total != uint64(op.Count) {
			t.Fatalf("op %q: histogram counts sum to %d, want %d", name, total, op.Count)
		}
		if op.SlowestRequestID == "" {
			t.Fatalf("op %q: no slowest_request_id recorded (server should echo %d requests' IDs)", name, op.Count)
		}
	}
	// The server side of the same story: /metrics must parse clean and carry
	// the per-endpoint duration, coalescer, and runtime histogram families.
	scrapeMetrics(t, ts.URL,
		"ptucker_request_duration_seconds",
		"ptucker_coalescer_flush_size",
		"ptucker_coalescer_flush_duration_seconds",
		"ptucker_refit_state",
		"ptucker_goroutines",
		"ptucker_gc_pause_seconds_total")
	t.Logf("loadgen smoke: %d requests in %.1fs → %.0f QPS (predict p99 %.2fms)",
		rep.Requests, rep.DurationSec, rep.QPS, rep.Ops["predict"].P99Ms)
}

// TestReplicationSmoke is the replication end-to-end gate: a durable primary
// plus a follower bootstrapped from it take a mixed read+write load with the
// read mix spread across both targets and writes pinned to the primary. The
// report must show traffic on both targets with zero errors, and the
// follower must drain to the primary's applied sequence afterwards. CI runs
// it for 30s via REPLICATION_SMOKE_DURATION; the default keeps local
// `go test` fast.
func TestReplicationSmoke(t *testing.T) {
	d := 2 * time.Second
	if env := os.Getenv("REPLICATION_SMOKE_DURATION"); env != "" {
		parsed, err := time.ParseDuration(env)
		if err != nil {
			t.Fatalf("REPLICATION_SMOKE_DURATION=%q: %v", env, err)
		}
		d = parsed
	}

	const token = "smoke-token"
	primary, err := serve.New(serve.Options{
		Model:     tinyModel(t),
		MaxBatch:  32,
		Shards:    2,
		DataDir:   t.TempDir(),
		AuthToken: token,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	pts := httptest.NewServer(primary.Handler())
	defer pts.Close()

	follower, err := serve.New(serve.Options{
		Follow:    pts.URL,
		AuthToken: token,
		MaxBatch:  32,
		Shards:    2,
		PollWait:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	fts := httptest.NewServer(follower.Handler())
	defer fts.Close()

	rep, err := run(config{
		Addr:      pts.URL,
		Replicas:  []string{fts.URL},
		Token:     token,
		Conns:     8,
		Duration:  d,
		Mix:       "predict=8,batch=1,recommend=1,observe=1",
		BatchSize: 8,
		K:         5,
		Seed:      1,
		Timeout:   10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d of %d requests errored", rep.Errors, rep.Requests)
	}
	if rep.Ops["observe"] == nil || rep.Ops["observe"].Count == 0 {
		t.Fatal("no observes issued")
	}
	for _, target := range []string{pts.URL, fts.URL} {
		tr := rep.Targets[target]
		if tr == nil || tr.Requests == 0 {
			t.Fatalf("target %s got no traffic: %+v", target, rep.Targets)
		}
	}
	if obs := rep.Targets[fts.URL].Ops["observe"]; obs != nil {
		t.Fatalf("follower received %d observes; writes must stay on the primary", obs.Count)
	}

	// The follower must drain the stream: wait until its applied sequence
	// reaches the primary's.
	deadline := time.Now().Add(15 * time.Second)
	for {
		p, f := primary.AppliedSeq(), follower.AppliedSeq()
		if f >= p {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at seq %d, primary at %d", f, p)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Both sides' /metrics must parse clean: the durable primary carries the
	// journal latency families, and the caught-up follower (it has applied
	// records by now) carries the apply-latency histogram.
	scrapeMetrics(t, pts.URL,
		"ptucker_request_duration_seconds",
		"ptucker_coalescer_flush_size",
		"ptucker_journal_append_duration_seconds",
		"ptucker_journal_fsync_duration_seconds")
	scrapeMetrics(t, fts.URL,
		"ptucker_request_duration_seconds",
		"ptucker_replica_apply_duration_seconds")
	t.Logf("replication smoke: %d requests → %.0f QPS across 2 targets, follower caught up at seq %d",
		rep.Requests, rep.QPS, follower.AppliedSeq())
}
