// Command ptucker-loadgen is a closed-loop load generator for ptucker-serve:
// a fixed number of connections each issue one request at a time — predict,
// predict-batch, recommend, or observe, in a configurable ratio — for a
// fixed duration, and the run is summarized as JSON: sustained QPS plus
// p50/p95/p99 latency, a full latency histogram (the serve layer's
// exponential duration buckets, in milliseconds), and the server-echoed
// X-Ptucker-Request-Id of the slowest request per operation — paste that ID
// into the server's log search to see the slow request's access-log line.
//
// Closed-loop means throughput is what the server actually sustains with
// -conns concurrent clients (each waits for its answer before sending the
// next request), so the numbers compose directly with the serve layer's
// micro-batching: more connections → fuller coalescer batches → higher QPS.
//
// The target's shape is discovered from /healthz; request indices are drawn
// uniformly from the advertised dims with a deterministic seed, so two runs
// against the same model issue the same queries. Observe requests append new
// values to existing cells only (never new rows), so the model's shape stays
// stable for the read traffic.
//
// With -replicas the read mix spreads round-robin across the primary and the
// listed follower addresses while writes (the observe mix) go only to the
// primary — a replication-aware harness: the per-target breakdown in the
// report shows whether reads scale linearly across the replica set. -token
// sends the primary's bearer token on observe requests.
//
// With -models the generator targets a multi-model server (ptucker-serve
// -models-dir): each tenant's shape is discovered from /m/<name>/healthz,
// and every request carries the X-Ptucker-Model header, round-robining
// across the listed tenants — mixed multi-tenant load in one run. -models
// and -replicas are mutually exclusive.
//
// Usage:
//
//	ptucker-loadgen -addr http://localhost:8080 -conns 64 -duration 30s \
//	    -mix predict=8,batch=1,recommend=1 -batch-size 32 -k 10 -out report.json
//	ptucker-loadgen -addr http://primary:8080 -replicas http://r1:8081,http://r2:8082 \
//	    -mix predict=16,recommend=2,observe=1 -token $TOKEN
//	ptucker-loadgen -addr http://localhost:8080 -models movies,music,books \
//	    -mix predict=8,batch=1,recommend=1,observe=1
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// config is one load-generation run, separated from flag parsing so tests
// can drive runs in-process.
type config struct {
	Addr      string        // base URL of the primary (takes writes and reads)
	Replicas  []string      // follower base URLs; the read mix spreads over Addr + Replicas
	Models    []string      // tenant names on a multi-model server; requests round-robin across them (excludes Replicas)
	Token     string        // bearer token sent on observe requests (the primary's -auth-token)
	Conns     int           // concurrent closed-loop connections
	Duration  time.Duration // how long to generate load
	Mix       string        // weighted op mix, e.g. "predict=8,batch=1,recommend=1,observe=1"
	BatchSize int           // indices per predict-batch request
	K         int           // top-K size per recommend request
	Seed      int64         // RNG seed (per-connection streams derive from it)
	Timeout   time.Duration // per-request client timeout
}

// opNames are the generator's operations; mix weights refer to these.
// observe is the single write op: it always targets the primary.
var opNames = []string{"predict", "batch", "recommend", "observe"}

const opObserve = 3

// opReport summarizes one operation's latency distribution.
type opReport struct {
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
	// SlowestRequestID is the server-echoed X-Ptucker-Request-Id of the
	// slowest successful request, correlating the report's MaxMs with the
	// server's own access-log line for that request.
	SlowestRequestID string `json:"slowest_request_id,omitempty"`
	// Histogram is the full latency distribution over the serve layer's
	// exponential duration buckets.
	Histogram *histReport `json:"histogram,omitempty"`
}

// histReport is a latency histogram: Counts[i] holds the requests with
// latency ≤ BoundsMs[i] (and > the previous bound — non-cumulative, unlike
// Prometheus exposition); the final extra element counts overflows past the
// last bound.
type histReport struct {
	BoundsMs []float64 `json:"bounds_ms"`
	Counts   []uint64  `json:"counts"`
}

// histogramOf buckets a latency series (nanoseconds) into the same
// exponential bounds the server's request-duration histograms use.
func histogramOf(latsNs []int64) *histReport {
	h := metrics.NewDurationHistogram()
	for _, ns := range latsNs {
		h.Observe(float64(ns) / 1e9)
	}
	s := h.Snapshot()
	hr := &histReport{BoundsMs: make([]float64, len(s.Bounds)), Counts: s.Counts}
	for i, b := range s.Bounds {
		hr.BoundsMs[i] = b * 1e3
	}
	return hr
}

// targetReport is one server's share of the run: its sustained QPS and
// per-op latency, so read scaling across replicas is measurable per box.
type targetReport struct {
	Requests int64                `json:"requests"`
	Errors   int64                `json:"errors"`
	QPS      float64              `json:"qps"`
	Ops      map[string]*opReport `json:"ops"`
}

// report is the run summary, marshaled as the tool's JSON output.
type report struct {
	Addr        string               `json:"addr"`
	Replicas    []string             `json:"replicas,omitempty"`
	Models      []string             `json:"models,omitempty"`
	Connections int                  `json:"connections"`
	DurationSec float64              `json:"duration_seconds"`
	Requests    int64                `json:"requests"`
	Errors      int64                `json:"errors"`
	QPS         float64              `json:"qps"`
	Ops         map[string]*opReport `json:"ops"`
	// Targets breaks the run down per server (keyed by base URL) when
	// replicas are configured.
	Targets map[string]*targetReport `json:"targets,omitempty"`
}

// connStats is one connection's private tally, merged after the run so the
// hot loop shares nothing. Series are indexed [target][op].
type connStats struct {
	count  [][4]int64
	errors [][4]int64
	lats   [][4][]int64 // nanoseconds
	maxLat [][4]int64   // slowest successful request, nanoseconds
	maxID  [][4]string  // its server-echoed request ID
}

func newConnStats(targets int) *connStats {
	return &connStats{
		count:  make([][4]int64, targets),
		errors: make([][4]int64, targets),
		lats:   make([][4][]int64, targets),
		maxLat: make([][4]int64, targets),
		maxID:  make([][4]string, targets),
	}
}

// parseMix reads "predict=8,batch=1,recommend=1,observe=1" into per-op
// weights. Ops omitted from the string get weight 0; at least one weight
// must be positive.
func parseMix(mix string) ([4]float64, error) {
	var w [4]float64
	total := 0.0
	for _, part := range strings.Split(mix, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return w, fmt.Errorf("bad mix entry %q (want op=weight)", part)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
		if err != nil || v < 0 {
			return w, fmt.Errorf("bad mix weight %q", part)
		}
		found := false
		for i, name := range opNames {
			if strings.TrimSpace(kv[0]) == name {
				w[i] = v
				found = true
				break
			}
		}
		if !found {
			return w, fmt.Errorf("unknown op %q (want predict, batch, recommend, or observe)", kv[0])
		}
		total += v
	}
	if total <= 0 {
		return w, fmt.Errorf("mix %q has no positive weight", mix)
	}
	return w, nil
}

// pickOp samples an operation index from the cumulative weights.
func pickOp(rng *rand.Rand, cum [4]float64) int {
	r := rng.Float64() * cum[len(cum)-1]
	for i, c := range cum {
		if r < c {
			return i
		}
	}
	return len(cum) - 1
}

// healthResponse is the slice of /healthz the generator needs.
type healthResponse struct {
	Dims []int `json:"dims"`
}

// discoverDims asks /healthz for the served model's shape.
func discoverDims(client *http.Client, addr string) ([]int, error) {
	resp, err := client.Get(addr + "/healthz")
	if err != nil {
		return nil, fmt.Errorf("healthz: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("healthz: status %d", resp.StatusCode)
	}
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("healthz: %w", err)
	}
	if len(h.Dims) == 0 {
		return nil, fmt.Errorf("healthz: server advertises no dims")
	}
	for k, d := range h.Dims {
		if d <= 0 {
			return nil, fmt.Errorf("healthz: mode %d has dimension %d", k, d)
		}
	}
	return h.Dims, nil
}

// run executes one closed-loop load generation against cfg.Addr (+ replicas).
func run(cfg config) (*report, error) {
	if cfg.Conns <= 0 {
		return nil, fmt.Errorf("loadgen: need at least one connection")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: need a positive duration")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.K <= 0 {
		cfg.K = 10
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	weights, err := parseMix(cfg.Mix)
	if err != nil {
		return nil, err
	}
	var cum [4]float64
	acc := 0.0
	for i, w := range weights {
		acc += w
		cum[i] = acc
	}

	if len(cfg.Models) > 0 && len(cfg.Replicas) > 0 {
		return nil, fmt.Errorf("loadgen: -models and -replicas cannot be combined")
	}

	// Target 0 is the primary; reads round-robin over all targets, writes
	// stick to 0.
	targets := append([]string{cfg.Addr}, cfg.Replicas...)

	client := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Conns * len(targets),
			MaxIdleConnsPerHost: cfg.Conns,
		},
	}
	// The shape comes from the primary — the write authority; replicas
	// converge to it. On a multi-model server every tenant has its own shape,
	// discovered through its path prefix; the per-request round-robin then
	// routes via the model header against a tenant-matched generator.
	var dims []int
	dimsByModel := make(map[string][]int, len(cfg.Models))
	if len(cfg.Models) > 0 {
		for _, name := range cfg.Models {
			d, err := discoverDims(client, cfg.Addr+"/m/"+name)
			if err != nil {
				return nil, fmt.Errorf("model %s: %w", name, err)
			}
			dimsByModel[name] = d
		}
	} else {
		var err error
		dims, err = discoverDims(client, cfg.Addr)
		if err != nil {
			return nil, err
		}
	}

	stats := make([]*connStats, cfg.Conns)
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Conns; c++ {
		st := newConnStats(len(targets))
		stats[c] = st
		wg.Add(1)
		go func(conn int, st *connStats) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(conn)*7919))
			gen := requestGen{rng: rng, dims: dims, batch: cfg.BatchSize, k: cfg.K}
			// One generator per tenant: each model has its own shape, so
			// indices must come from the generator matching the routed model.
			gens := make(map[string]*requestGen, len(cfg.Models))
			for _, name := range cfg.Models {
				gens[name] = &requestGen{rng: rng, dims: dimsByModel[name], batch: cfg.BatchSize, k: cfg.K}
			}
			rr := conn // stagger the round-robin start across connections
			mr := conn // independent round-robin over models
			for time.Now().Before(deadline) {
				op := pickOp(rng, cum)
				ti := 0
				if op != opObserve && len(targets) > 1 {
					ti = rr % len(targets)
					rr++
				}
				model := ""
				g := &gen
				if len(cfg.Models) > 0 {
					model = cfg.Models[mr%len(cfg.Models)]
					mr++
					g = gens[model]
				}
				path, body := g.next(op)
				token := ""
				if op == opObserve {
					token = cfg.Token
				}
				t0 := time.Now()
				ok, reqID := post(client, targets[ti]+path, body, token, model)
				lat := time.Since(t0)
				st.count[ti][op]++
				if !ok {
					st.errors[ti][op]++
					continue
				}
				ns := lat.Nanoseconds()
				st.lats[ti][op] = append(st.lats[ti][op], ns)
				if ns > st.maxLat[ti][op] {
					st.maxLat[ti][op] = ns
					st.maxID[ti][op] = reqID
				}
			}
		}(c, st)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &report{
		Addr:        cfg.Addr,
		Replicas:    cfg.Replicas,
		Models:      cfg.Models,
		Connections: cfg.Conns,
		DurationSec: elapsed.Seconds(),
		Ops:         make(map[string]*opReport, len(opNames)),
	}
	if len(targets) > 1 {
		rep.Targets = make(map[string]*targetReport, len(targets))
	}
	summarize := func(ti int) *targetReport {
		tr := &targetReport{Ops: make(map[string]*opReport, len(opNames))}
		for i, name := range opNames {
			var merged []int64
			op := &opReport{}
			var slowest int64
			for _, st := range stats {
				op.Count += st.count[ti][i]
				op.Errors += st.errors[ti][i]
				merged = append(merged, st.lats[ti][i]...)
				if st.maxLat[ti][i] > slowest {
					slowest = st.maxLat[ti][i]
					op.SlowestRequestID = st.maxID[ti][i]
				}
			}
			if op.Count == 0 {
				continue
			}
			sort.Slice(merged, func(a, b int) bool { return merged[a] < merged[b] })
			op.P50Ms = percentileMs(merged, 0.50)
			op.P95Ms = percentileMs(merged, 0.95)
			op.P99Ms = percentileMs(merged, 0.99)
			if n := len(merged); n > 0 {
				op.MaxMs = float64(merged[n-1]) / 1e6
			}
			op.Histogram = histogramOf(merged)
			tr.Ops[name] = op
			tr.Requests += op.Count
			tr.Errors += op.Errors
		}
		if elapsed.Seconds() > 0 {
			tr.QPS = float64(tr.Requests-tr.Errors) / elapsed.Seconds()
		}
		return tr
	}
	for ti, addr := range targets {
		tr := summarize(ti)
		if rep.Targets != nil {
			rep.Targets[addr] = tr
		}
		rep.Requests += tr.Requests
		rep.Errors += tr.Errors
		for name, op := range tr.Ops {
			agg, ok := rep.Ops[name]
			if !ok {
				copyOp := *op
				if op.Histogram != nil {
					// Deep-copy the histogram: the aggregate keeps summing
					// into it and must not corrupt the per-target report.
					copyOp.Histogram = &histReport{
						BoundsMs: op.Histogram.BoundsMs,
						Counts:   append([]uint64(nil), op.Histogram.Counts...),
					}
				}
				rep.Ops[name] = &copyOp
				continue
			}
			// Aggregate counts exactly; approximate the combined quantiles
			// by the worst target's (conservative for an SLO check).
			agg.Count += op.Count
			agg.Errors += op.Errors
			agg.P50Ms = maxf(agg.P50Ms, op.P50Ms)
			agg.P95Ms = maxf(agg.P95Ms, op.P95Ms)
			if op.MaxMs > agg.MaxMs {
				agg.SlowestRequestID = op.SlowestRequestID
			}
			agg.P99Ms = maxf(agg.P99Ms, op.P99Ms)
			agg.MaxMs = maxf(agg.MaxMs, op.MaxMs)
			if agg.Histogram != nil && op.Histogram != nil {
				for bi, c := range op.Histogram.Counts {
					agg.Histogram.Counts[bi] += c
				}
			}
		}
	}
	if rep.DurationSec > 0 {
		rep.QPS = float64(rep.Requests-rep.Errors) / rep.DurationSec
	}
	return rep, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// percentileMs reads the q-th quantile (nearest-rank on a sorted series) in
// milliseconds.
func percentileMs(sorted []int64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / 1e6
}

// requestGen builds random valid request bodies against the served shape.
type requestGen struct {
	rng   *rand.Rand
	dims  []int
	batch int
	k     int
}

func (g *requestGen) index() []int {
	idx := make([]int, len(g.dims))
	for k, d := range g.dims {
		idx[k] = g.rng.Intn(d)
	}
	return idx
}

// next returns the endpoint path and JSON body for one request of op.
func (g *requestGen) next(op int) (string, []byte) {
	switch op {
	case 0:
		body, _ := json.Marshal(struct {
			Index []int `json:"index"`
		}{g.index()})
		return "/v1/predict", body
	case 1:
		idxs := make([][]int, g.batch)
		for i := range idxs {
			idxs[i] = g.index()
		}
		body, _ := json.Marshal(struct {
			Indexes [][]int `json:"indexes"`
		}{idxs})
		return "/v1/predict-batch", body
	case opObserve:
		// Appends to existing cells only: indices stay inside the
		// advertised dims, so the shape the read traffic was generated
		// against never shifts under it.
		type obs struct {
			Index []int   `json:"index"`
			Value float64 `json:"value"`
		}
		batch := make([]obs, 4)
		for i := range batch {
			batch[i] = obs{Index: g.index(), Value: g.rng.Float64()}
		}
		body, _ := json.Marshal(struct {
			Observations []obs `json:"observations"`
		}{batch})
		return "/v1/observe", body
	default:
		q := g.index()
		mode := g.rng.Intn(len(g.dims))
		body, _ := json.Marshal(struct {
			Query []int `json:"query"`
			Mode  int   `json:"mode"`
			K     int   `json:"k"`
		}{q, mode, g.k})
		return "/v1/recommend", body
	}
}

// post issues one request and reports success plus the server-echoed
// request ID. A non-empty model routes the request on a multi-model server
// via the X-Ptucker-Model header. The body is drained so the transport can
// reuse the connection — essential for closed-loop throughput.
func post(client *http.Client, url string, body []byte, token, model string) (bool, string) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return false, ""
	}
	req.Header.Set("Content-Type", "application/json")
	if model != "" {
		req.Header.Set("X-Ptucker-Model", model)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := client.Do(req)
	if err != nil {
		return false, ""
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK, resp.Header.Get(obs.RequestIDHeader)
}

// parseReplicas splits a comma-separated list (-replicas URLs or -models
// names) into trimmed entries.
func parseReplicas(s string) []string {
	var out []string
	for _, r := range strings.Split(s, ",") {
		r = strings.TrimRight(strings.TrimSpace(r), "/")
		if r != "" {
			out = append(out, r)
		}
	}
	return out
}

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "base URL of the primary ptucker-serve instance")
		replicas = flag.String("replicas", "", "comma-separated follower base URLs; the read mix spreads across primary + replicas, writes stay on the primary")
		models   = flag.String("models", "", "comma-separated tenant names on a multi-model server; requests round-robin across them via the X-Ptucker-Model header")
		token    = flag.String("token", "", "bearer token sent on observe requests (the primary's -auth-token)")
		conns    = flag.Int("conns", 32, "concurrent closed-loop connections")
		duration = flag.Duration("duration", 30*time.Second, "how long to generate load")
		mix      = flag.String("mix", "predict=8,batch=1,recommend=1", "weighted op mix (predict, batch, recommend, observe)")
		batch    = flag.Int("batch-size", 16, "indices per predict-batch request")
		k        = flag.Int("k", 10, "top-K per recommend request")
		seed     = flag.Int64("seed", 1, "RNG seed (per-connection streams derive from it)")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request client timeout")
		out      = flag.String("out", "", "write the JSON report here instead of stdout")
		failErrs = flag.Bool("fail-on-errors", false, "exit non-zero if any request errored")
	)
	flag.Parse()

	rep, err := run(config{
		Addr:      strings.TrimRight(*addr, "/"),
		Replicas:  parseReplicas(*replicas),
		Models:    parseReplicas(*models),
		Token:     *token,
		Conns:     *conns,
		Duration:  *duration,
		Mix:       *mix,
		BatchSize: *batch,
		K:         *k,
		Seed:      *seed,
		Timeout:   *timeout,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ptucker-loadgen: %v\n", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ptucker-loadgen: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ptucker-loadgen: %v\n", err)
			os.Exit(1)
		}
	} else {
		os.Stdout.Write(enc)
	}
	if *failErrs && rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "ptucker-loadgen: %d of %d requests errored\n", rep.Errors, rep.Requests)
		os.Exit(1)
	}
}
