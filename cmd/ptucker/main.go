// Command ptucker factorizes a sparse tensor file with the P-Tucker family
// and writes the factor matrices and core tensor to an output directory. A
// fitted model can also be persisted to a single binary file (-save) and
// reloaded later for evaluation or serving (-load), skipping the fit.
//
// The input is either the text format of the published P-Tucker datasets
// (one observed entry per line, whitespace-separated 1-based indices
// followed by the value) or the binary snapshot format written by
// -save-tensor — the encoding is auto-detected, and binary files carry
// their own order, so -order may be omitted for them. -save-tensor writes
// the (post-split) training tensor as a binary snapshot: it loads an order
// of magnitude faster than text, and doubles as the training-set sidecar a
// serving data directory (ptucker-serve -data-dir) resumes refits from.
//
// Fitting honors SIGINT/SIGTERM: the first signal cancels the run's context
// and the fit stops within one ALS iteration; -progress streams a line per
// iteration as it completes instead of dumping the trace at the end.
//
// Usage:
//
//	ptucker -input ratings.tns -order 3 -ranks 10,10,10 -out ./factors
//	ptucker -input x.tns -order 4 -ranks 5,5,5,5 -method approx -p 0.2
//	ptucker -input ratings.tns -order 3 -ranks 10,10,10 -progress -save model.ptkm -save-tensor ratings.ptkt
//	ptucker -input ratings.ptkt -ranks 10,10,10            # binary input; order auto-detected
//	ptucker -load model.ptkm -input ratings.tns -order 3   # evaluate a saved model
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/tensor"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func main() {
	var (
		input      = flag.String("input", "", "input tensor file (required unless -load)")
		order      = flag.Int("order", 0, "tensor order N (required unless -load)")
		ranks      = flag.String("ranks", "", "comma-separated core ranks J1..JN (required unless -load)")
		method     = flag.String("method", "ptucker", "variant: ptucker, cache, approx")
		lambda     = flag.Float64("lambda", 0.01, "L2 regularization λ")
		iters      = flag.Int("iters", 20, "maximum ALS iterations")
		tol        = flag.Float64("tol", 1e-4, "relative-error convergence tolerance (0 disables)")
		p          = flag.Float64("p", 0.2, "truncation rate for -method approx")
		threads    = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		seed       = flag.Int64("seed", 1, "random seed")
		out        = flag.String("out", "", "output directory for text factors and core (optional)")
		split      = flag.Float64("split", 0, "hold out this fraction of entries as a test set (e.g. 0.1)")
		sparsify   = flag.Float64("sparsify", 0, "prune low-responsibility core entries post-fit within this relative error budget (e.g. 0.05; with -split the budget is checked on the held-out set)")
		save       = flag.String("save", "", "write the fitted model to this binary file")
		saveTensor = flag.String("save-tensor", "", "write the training tensor to this file as a binary snapshot (fast reload; serving sidecar)")
		load       = flag.String("load", "", "load a saved model instead of fitting (skips decomposition)")
		progress   = flag.Bool("progress", false, "stream one line per ALS iteration while fitting")
	)
	flag.Parse()

	// First SIGINT/SIGTERM cancels the context — the fit stops within one
	// iteration; a second signal kills the process the usual way. The
	// AfterFunc unregisters the handler as soon as the context dies, since
	// NotifyContext alone would keep swallowing signals until stop() runs.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)

	if *load != "" {
		if err := runLoaded(*load, *input, *order); err != nil {
			fatal(err)
		}
		return
	}

	if *input == "" || *ranks == "" {
		fmt.Fprintln(os.Stderr, "ptucker: -input and -ranks are required (or -load)")
		flag.Usage()
		os.Exit(2)
	}
	if *order <= 0 {
		// Binary snapshots declare their own order; text files need -order.
		if format, err := tensor.DetectFormatFile(*input); err != nil {
			fatal(err)
		} else if format != tensor.FormatBinary {
			fmt.Fprintln(os.Stderr, "ptucker: -order is required for text tensors (binary snapshots carry their own)")
			flag.Usage()
			os.Exit(2)
		}
		*order = 0
	}

	x, err := tensor.ReadFile(*input, *order, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %v\n", x)
	ranksList, err := parseRanks(*ranks, x.Order())
	if err != nil {
		fatal(err)
	}

	var test *tensor.Coord
	if *split > 0 {
		rng := newRand(*seed)
		x, test = x.Split(1-*split, rng)
		fmt.Printf("split: %d train / %d test entries\n", x.NNZ(), test.NNZ())
	}

	if *saveTensor != "" {
		if err := store.WriteTensor(*saveTensor, x); err != nil {
			fatal(err)
		}
		fmt.Printf("saved training tensor snapshot to %s (%d entries)\n", *saveTensor, x.NNZ())
	}

	cfg := core.Defaults(ranksList)
	cfg.Lambda = *lambda
	cfg.MaxIters = *iters
	cfg.Tol = *tol
	cfg.TruncationRate = *p
	cfg.Threads = *threads
	cfg.Seed = *seed
	cfg.Sparsify = *sparsify
	if *sparsify > 0 && test != nil {
		cfg.SparsifyHoldout = test
	}
	switch *method {
	case "ptucker":
		cfg.Method = core.PTucker
	case "cache":
		cfg.Method = core.PTuckerCache
	case "approx":
		cfg.Method = core.PTuckerApprox
	default:
		fatal(fmt.Errorf("unknown method %q (want ptucker, cache, approx)", *method))
	}
	if *progress {
		cfg.OnIteration = func(it core.IterStats) error {
			fmt.Printf("iter %2d: error %.6g (%.3gs, |G|=%d)\n",
				it.Iter, it.Error, it.Elapsed.Seconds(), it.CoreNNZ)
			return nil
		}
	}

	m, err := core.DecomposeContext(ctx, x, cfg)
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "ptucker: interrupted — fit cancelled before completion")
		os.Exit(130)
	}
	if err != nil {
		fatal(err)
	}
	if !*progress {
		for _, it := range m.Trace {
			fmt.Printf("iter %2d: error %.6g (%.3gs, |G|=%d)\n",
				it.Iter, it.Error, it.Elapsed.Seconds(), it.CoreNNZ)
		}
	}
	fmt.Printf("final: error %.6g, fit %.4f, converged %v\n", m.TrainError, m.Fit(x), m.Converged)
	if test != nil {
		fmt.Printf("test RMSE: %.6g over %d held-out entries\n", m.RMSE(test), test.NNZ())
	}

	if *save != "" {
		if err := core.SaveModel(*save, m); err != nil {
			fatal(err)
		}
		fmt.Printf("saved model to %s\n", *save)
	}
	if *out != "" {
		if err := writeModel(*out, m); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote factors and core to %s\n", *out)
	}
}

// runLoaded serves the -load path: read a saved model, report its provenance,
// and — when a tensor is supplied — evaluate it.
func runLoaded(path, input string, order int) error {
	m, err := core.LoadModel(path)
	if err != nil {
		return err
	}
	fmt.Printf("loaded model %s: order %d, ranks %v, method %s, %d iterations recorded\n",
		path, m.Order(), m.Config.Ranks, m.Config.Method, len(m.Trace))
	fmt.Printf("training error at save time: %.6g (converged %v)\n", m.TrainError, m.Converged)

	if input == "" {
		return nil
	}
	if order <= 0 {
		order = m.Order()
	}
	x, err := tensor.ReadFile(input, order, nil)
	if err != nil {
		return err
	}
	fmt.Printf("evaluating on %v\n", x)
	fmt.Printf("reconstruction error %.6g, fit %.4f, RMSE %.6g\n",
		m.ReconstructionError(x), m.Fit(x), m.RMSE(x))
	return nil
}

func parseRanks(s string, order int) ([]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != order {
		return nil, fmt.Errorf("ptucker: %d ranks given for order %d", len(parts), order)
	}
	ranks := make([]int, order)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("ptucker: bad rank %q: %v", p, err)
		}
		ranks[i] = v
	}
	return ranks, nil
}

// writeModel stores each factor matrix as a TSV file (rows x ranks) and the
// core tensor in the sparse text format.
func writeModel(dir string, m *core.Model) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for n, a := range m.Factors {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("factor%d.tsv", n+1)))
		if err != nil {
			return err
		}
		for i := 0; i < a.Rows(); i++ {
			row := a.Row(i)
			for j, v := range row {
				if j > 0 {
					fmt.Fprint(f, "\t")
				}
				fmt.Fprintf(f, "%g", v)
			}
			fmt.Fprintln(f)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	f, err := os.Create(filepath.Join(dir, "core.tns"))
	if err != nil {
		return err
	}
	defer f.Close()
	for e := 0; e < m.Core.NNZ(); e++ {
		idx := m.Core.Index(e)
		for k, i := range idx {
			if k > 0 {
				fmt.Fprint(f, "\t")
			}
			fmt.Fprintf(f, "%d", i+1)
		}
		fmt.Fprintf(f, "\t%g\n", m.Core.Value(e))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptucker:", err)
	os.Exit(1)
}
