// Command ptucker factorizes a sparse tensor file with the P-Tucker family
// and writes the factor matrices and core tensor to an output directory.
//
// The input format is the one used by the published P-Tucker datasets: one
// observed entry per line, whitespace-separated 1-based indices followed by
// the value.
//
// Usage:
//
//	ptucker -input ratings.tns -order 3 -ranks 10,10,10 -out ./factors
//	ptucker -input x.tns -order 4 -ranks 5,5,5,5 -method approx -p 0.2
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/tensor"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func main() {
	var (
		input   = flag.String("input", "", "input tensor file (required)")
		order   = flag.Int("order", 0, "tensor order N (required)")
		ranks   = flag.String("ranks", "", "comma-separated core ranks J1..JN (required)")
		method  = flag.String("method", "ptucker", "variant: ptucker, cache, approx")
		lambda  = flag.Float64("lambda", 0.01, "L2 regularization λ")
		iters   = flag.Int("iters", 20, "maximum ALS iterations")
		tol     = flag.Float64("tol", 1e-4, "relative-error convergence tolerance (0 disables)")
		p       = flag.Float64("p", 0.2, "truncation rate for -method approx")
		threads = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "", "output directory for factors and core (optional)")
		split   = flag.Float64("split", 0, "hold out this fraction of entries as a test set (e.g. 0.1)")
	)
	flag.Parse()

	if *input == "" || *order <= 0 || *ranks == "" {
		fmt.Fprintln(os.Stderr, "ptucker: -input, -order and -ranks are required")
		flag.Usage()
		os.Exit(2)
	}
	ranksList, err := parseRanks(*ranks, *order)
	if err != nil {
		fatal(err)
	}

	x, err := tensor.ReadFile(*input, *order, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %v\n", x)

	var test *tensor.Coord
	if *split > 0 {
		rng := newRand(*seed)
		x, test = x.Split(1-*split, rng)
		fmt.Printf("split: %d train / %d test entries\n", x.NNZ(), test.NNZ())
	}

	cfg := core.Defaults(ranksList)
	cfg.Lambda = *lambda
	cfg.MaxIters = *iters
	cfg.Tol = *tol
	cfg.TruncationRate = *p
	cfg.Threads = *threads
	cfg.Seed = *seed
	switch *method {
	case "ptucker":
		cfg.Method = core.PTucker
	case "cache":
		cfg.Method = core.PTuckerCache
	case "approx":
		cfg.Method = core.PTuckerApprox
	default:
		fatal(fmt.Errorf("unknown method %q (want ptucker, cache, approx)", *method))
	}

	m, err := core.Decompose(x, cfg)
	if err != nil {
		fatal(err)
	}
	for _, it := range m.Trace {
		fmt.Printf("iter %2d: error %.6g (%.3gs, |G|=%d)\n",
			it.Iter, it.Error, it.Elapsed.Seconds(), it.CoreNNZ)
	}
	fmt.Printf("final: error %.6g, fit %.4f, converged %v\n", m.TrainError, m.Fit(x), m.Converged)
	if test != nil {
		fmt.Printf("test RMSE: %.6g over %d held-out entries\n", m.RMSE(test), test.NNZ())
	}

	if *out != "" {
		if err := writeModel(*out, m); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote factors and core to %s\n", *out)
	}
}

func parseRanks(s string, order int) ([]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != order {
		return nil, fmt.Errorf("ptucker: %d ranks given for order %d", len(parts), order)
	}
	ranks := make([]int, order)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("ptucker: bad rank %q: %v", p, err)
		}
		ranks[i] = v
	}
	return ranks, nil
}

// writeModel stores each factor matrix as a TSV file (rows x ranks) and the
// core tensor in the sparse text format.
func writeModel(dir string, m *core.Model) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for n, a := range m.Factors {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("factor%d.tsv", n+1)))
		if err != nil {
			return err
		}
		for i := 0; i < a.Rows(); i++ {
			row := a.Row(i)
			for j, v := range row {
				if j > 0 {
					fmt.Fprint(f, "\t")
				}
				fmt.Fprintf(f, "%g", v)
			}
			fmt.Fprintln(f)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	f, err := os.Create(filepath.Join(dir, "core.tns"))
	if err != nil {
		return err
	}
	defer f.Close()
	for e := 0; e < m.Core.NNZ(); e++ {
		idx := m.Core.Index(e)
		for k, i := range idx {
			if k > 0 {
				fmt.Fprint(f, "\t")
			}
			fmt.Fprintf(f, "%d", i+1)
		}
		fmt.Fprintf(f, "\t%g\n", m.Core.Value(e))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptucker:", err)
	os.Exit(1)
}
