// Command ptucker-vet is the project's static-analysis multichecker. It
// runs every analyzer in internal/analysis/... over the packages matching
// the given `go list` patterns and exits non-zero if any unsuppressed
// finding remains:
//
//	go run ./cmd/ptucker-vet ./...
//
// Findings are printed one per line as path:line:col: analyzer: message.
// A finding is silenced at its site with
//
//	//ptlint:ignore <analyzer> <reason>
//
// on the flagged line or the line above; the reason is mandatory. Run with
// -list to see the analyzers and what each enforces.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicwrite"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/metricnames"
	"repro/internal/analysis/seededrand"
)

// analyzers is the full suite, in output order.
var analyzers = []*analysis.Analyzer{
	atomicwrite.Analyzer,
	lockorder.Analyzer,
	maporder.Analyzer,
	metricnames.Analyzer,
	seededrand.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ptucker-vet [-list] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			scope := "all packages"
			if len(a.Packages) > 0 {
				scope = "packages " + join(a.Packages)
			}
			fmt.Printf("%-12s %s (%s)\n", a.Name, a.Doc, scope)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ptucker-vet: %v\n", err)
		os.Exit(2)
	}

	l := analysis.NewLoader(root)
	pkgs, err := l.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ptucker-vet: %v\n", err)
		os.Exit(2)
	}

	findings := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptucker-vet: %s: %v\n", pkg.Path, err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(analysis.FormatDiagnostic(pkg, d))
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "ptucker-vet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}

func join(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}
