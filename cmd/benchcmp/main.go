// Command benchcmp turns `go test -bench` output into a compact JSON summary
// and gates CI on it: parse one or more bench logs, aggregate repeated
// -count runs (minimum ns/op — the least-noise estimator), and optionally
// compare against a checked-in baseline, failing when any benchmark's ns/op
// regressed past a threshold.
//
// Usage:
//
//	go test -bench . -benchtime 100x -count 3 ./... > bench.txt
//	benchcmp -out BENCH.json bench.txt                      # emit only
//	benchcmp -baseline BENCH_BASELINE.json -threshold 30 \
//	    -out BENCH.json bench.txt                           # emit + gate
//
// With no file arguments the log is read from stdin. The benchmark name's
// GOMAXPROCS suffix ("-8") is stripped, so logs taken at different -cpu
// settings compare by the same key. The gate fails (exit 1) when a
// benchmark's ns/op exceeds baseline × (1 + threshold/100), and when a
// baseline benchmark is missing from the current log — silently losing bench
// coverage must not pass. Benchmarks absent from the baseline are reported
// as new and do not fail the gate; refresh the baseline to start tracking
// them.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// result is one benchmark's summary, keyed by its normalized name.
type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Runs is how many log lines (e.g. -count repetitions) were aggregated.
	Runs int `json:"runs"`
}

// benchFile is the emitted JSON document.
type benchFile struct {
	// Note documents provenance (how to regenerate); informational only.
	Note       string             `json:"note,omitempty"`
	Benchmarks map[string]*result `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkName/sub=1-8  	 100	 12345 ns/op	 12.3 preds/flush	 45 B/op	 3 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+(.+)$`)

// parseLog folds every benchmark line of r into acc (created entries keep
// the minimum ns/op across repetitions).
func parseLog(r io.Reader, acc map[string]*result) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name, rest := m[1], m[3]
		ns, allocs, ok := parseMetrics(rest)
		if !ok {
			continue
		}
		cur, exists := acc[name]
		if !exists {
			acc[name] = &result{NsPerOp: ns, AllocsPerOp: allocs, Runs: 1}
			continue
		}
		cur.Runs++
		if ns < cur.NsPerOp {
			cur.NsPerOp = ns
		}
		if allocs < cur.AllocsPerOp {
			cur.AllocsPerOp = allocs
		}
	}
	return sc.Err()
}

// metricPair matches "value unit" fields after the iteration count, e.g.
// "12345 ns/op" or "3 allocs/op".
var metricPair = regexp.MustCompile(`(\S+)\s+(\S+)`)

// parseMetrics extracts ns/op and allocs/op from the tail of a bench line.
// allocs/op is absent unless the benchmark calls ReportAllocs or -benchmem
// is set; it defaults to 0 then.
func parseMetrics(rest string) (ns, allocs float64, ok bool) {
	for _, m := range metricPair.FindAllStringSubmatch(rest, -1) {
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			continue
		}
		switch m[2] {
		case "ns/op":
			ns, ok = v, true
		case "allocs/op":
			allocs = v
		}
	}
	return ns, allocs, ok
}

// compare gates current against baseline: regressions are ns/op past the
// threshold and baseline benchmarks missing from current. Returns the lines
// to print and whether the gate failed.
func compare(baseline, current map[string]*result, thresholdPct float64) (lines []string, failed bool) {
	limit := 1 + thresholdPct/100
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			lines = append(lines, fmt.Sprintf("FAIL %-60s missing from current run (baseline %.0f ns/op)", name, base.NsPerOp))
			failed = true
			continue
		}
		ratio := 0.0
		if base.NsPerOp > 0 {
			ratio = cur.NsPerOp / base.NsPerOp
		}
		status := "ok  "
		if ratio > limit {
			status = "FAIL"
			failed = true
		}
		lines = append(lines, fmt.Sprintf("%s %-60s %12.0f → %12.0f ns/op  (%+.1f%%)  allocs %v → %v",
			status, name, base.NsPerOp, cur.NsPerOp, (ratio-1)*100, base.AllocsPerOp, cur.AllocsPerOp))
	}

	var fresh []string
	for name := range current {
		if _, ok := baseline[name]; !ok {
			fresh = append(fresh, name)
		}
	}
	sort.Strings(fresh)
	for _, name := range fresh {
		lines = append(lines, fmt.Sprintf("new  %-60s %12.0f ns/op (not in baseline)", name, current[name].NsPerOp))
	}
	return lines, failed
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "baseline BENCH JSON to gate against (empty: emit only)")
		threshold    = flag.Float64("threshold", 30, "allowed ns/op regression in percent")
		out          = flag.String("out", "", "write the parsed BENCH JSON here (empty: stdout)")
		note         = flag.String("note", "", "provenance note stored in the emitted JSON")
	)
	flag.Parse()

	acc := make(map[string]*result)
	if flag.NArg() == 0 {
		if err := parseLog(os.Stdin, acc); err != nil {
			fatalf("stdin: %v", err)
		}
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatalf("%v", err)
		}
		err = parseLog(f, acc)
		f.Close()
		if err != nil {
			fatalf("%s: %v", path, err)
		}
	}
	if len(acc) == 0 {
		fatalf("no benchmark lines found in input")
	}

	doc := benchFile{Note: *note, Benchmarks: acc}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("benchcmp: %d benchmarks → %s\n", len(acc), *out)
	} else {
		os.Stdout.Write(enc)
	}

	if *baselinePath == "" {
		return
	}
	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatalf("%v", err)
	}
	var base benchFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fatalf("%s: %v", *baselinePath, err)
	}
	lines, failed := compare(base.Benchmarks, acc, *threshold)
	for _, l := range lines {
		fmt.Println(l)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchcmp: ns/op regressed more than %.0f%% against %s\n", *threshold, *baselinePath)
		os.Exit(1)
	}
	fmt.Printf("benchcmp: within %.0f%% of %s\n", *threshold, *baselinePath)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchcmp: "+format+"\n", args...)
	os.Exit(1)
}
