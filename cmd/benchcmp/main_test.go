package main

import (
	"strings"
	"testing"
)

const sampleLog = `goos: linux
goarch: amd64
pkg: repro/internal/serve
cpu: Some CPU @ 2.00GHz
BenchmarkServeCoalescedPredict/shards=1-8         	    5000	     24100 ns/op	        61.2 preds/flush	     120 B/op	       3 allocs/op
BenchmarkServeCoalescedPredict/shards=1-8         	    5000	     22800 ns/op	        60.9 preds/flush	     118 B/op	       3 allocs/op
BenchmarkServeCoalescedPredict/shards=4-8         	    5000	      9400 ns/op	        15.1 preds/flush	      40 B/op	       1 allocs/op
BenchmarkPredict-8                                	 2000000	       812 ns/op	       0 B/op	       0 allocs/op
BenchmarkFoldIn                                   	     300	    401223 ns/op
PASS
ok  	repro/internal/serve	12.3s
`

func parseSample(t *testing.T) map[string]*result {
	t.Helper()
	acc := make(map[string]*result)
	if err := parseLog(strings.NewReader(sampleLog), acc); err != nil {
		t.Fatal(err)
	}
	return acc
}

func TestParseLog(t *testing.T) {
	acc := parseSample(t)
	if len(acc) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(acc), acc)
	}

	// The -8 cpu suffix is stripped; repeated counts keep the min ns/op.
	r, ok := acc["BenchmarkServeCoalescedPredict/shards=1"]
	if !ok {
		t.Fatal("shards=1 benchmark not found under its normalized name")
	}
	if r.NsPerOp != 22800 || r.Runs != 2 || r.AllocsPerOp != 3 {
		t.Fatalf("shards=1: %+v", r)
	}
	// A line without -cpu suffix or allocs parses too.
	if r := acc["BenchmarkFoldIn"]; r == nil || r.NsPerOp != 401223 || r.AllocsPerOp != 0 {
		t.Fatalf("FoldIn: %+v", r)
	}
	if r := acc["BenchmarkPredict"]; r == nil || r.NsPerOp != 812 {
		t.Fatalf("Predict: %+v", r)
	}
}

func TestCompareGate(t *testing.T) {
	base := map[string]*result{
		"BenchmarkA": {NsPerOp: 1000},
		"BenchmarkB": {NsPerOp: 1000},
		"BenchmarkC": {NsPerOp: 1000},
	}

	// Within threshold (+20%), improved, and a new benchmark: gate passes.
	cur := map[string]*result{
		"BenchmarkA": {NsPerOp: 1200},
		"BenchmarkB": {NsPerOp: 700},
		"BenchmarkC": {NsPerOp: 1000},
		"BenchmarkD": {NsPerOp: 50},
	}
	lines, failed := compare(base, cur, 30)
	if failed {
		t.Fatalf("gate failed within threshold:\n%s", strings.Join(lines, "\n"))
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "new  BenchmarkD") {
		t.Fatalf("new benchmark not reported:\n%s", joined)
	}

	// Past threshold: gate fails.
	cur["BenchmarkA"] = &result{NsPerOp: 1301}
	if _, failed := compare(base, cur, 30); !failed {
		t.Fatal("gate passed a +30.1% regression at threshold 30")
	}

	// A baseline benchmark missing from the run fails the gate: losing
	// coverage must be loud.
	delete(cur, "BenchmarkB")
	cur["BenchmarkA"] = &result{NsPerOp: 1000}
	lines, failed = compare(base, cur, 30)
	if !failed {
		t.Fatal("gate passed with a baseline benchmark missing")
	}
	if !strings.Contains(strings.Join(lines, "\n"), "missing from current run") {
		t.Fatalf("missing benchmark not named:\n%s", strings.Join(lines, "\n"))
	}
}
