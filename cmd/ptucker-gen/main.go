// Command ptucker-gen generates synthetic sparse tensors in the text format
// consumed by cmd/ptucker: the uniform random tensors of the paper's
// Section IV-B, planted low-rank Tucker tensors, the MovieLens-like rating
// tensor with planted genres and temporal relations, and smooth video/image
// stand-ins.
//
// Usage:
//
//	ptucker-gen -kind uniform -dims 1000,1000,1000 -nnz 100000 -out x.tns
//	ptucker-gen -kind movielens -out ml.tns
//	ptucker-gen -kind planted -dims 500,400,300 -ranks 5,5,5 -nnz 50000 -out p.tns
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/synth"
	"repro/internal/tensor"
)

func main() {
	var (
		kind  = flag.String("kind", "uniform", "generator: uniform, planted, movielens, smooth")
		dims  = flag.String("dims", "", "comma-separated mode lengths (uniform/planted/smooth)")
		ranks = flag.String("ranks", "", "comma-separated planted ranks (planted)")
		nnz   = flag.Int("nnz", 10000, "number of observed entries (uniform/planted)")
		frac  = flag.Float64("frac", 0.1, "observed fraction of cells (smooth)")
		noise = flag.Float64("noise", 0.01, "noise stddev (planted)")
		seed  = flag.Int64("seed", 1, "random seed")
		out   = flag.String("out", "", "output file (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "ptucker-gen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	rng := rand.New(rand.NewSource(*seed))
	var (
		x   *tensor.Coord
		err error
	)
	switch *kind {
	case "uniform":
		d, derr := parseInts(*dims)
		if derr != nil {
			err = derr
			break
		}
		x = synth.Uniform(rng, d, *nnz)
	case "planted":
		d, derr := parseInts(*dims)
		if derr != nil {
			err = derr
			break
		}
		r, rerr := parseInts(*ranks)
		if rerr != nil {
			err = rerr
			break
		}
		x = synth.PlantedTucker(rng, d, r, *nnz, *noise)
	case "movielens":
		cfg := synth.DefaultMovieLensConfig()
		cfg.Seed = *seed
		if *nnz > 0 {
			cfg.NNZ = *nnz
		}
		x = synth.MovieLens(cfg).X
	case "smooth":
		d, derr := parseInts(*dims)
		if derr != nil {
			err = derr
			break
		}
		x = synth.SmoothLowRank(rng, d, 3, *frac)
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptucker-gen:", err)
		os.Exit(1)
	}

	if err := tensor.WriteFile(*out, x); err != nil {
		fmt.Fprintln(os.Stderr, "ptucker-gen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %v to %s\n", x, *out)
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -dims/-ranks value")
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %v", p, err)
		}
		out[i] = v
	}
	return out, nil
}
