package ptucker

// One benchmark per table and figure of the paper's evaluation. Each bench
// drives the corresponding experiment in internal/experiments at the reduced
// (CI) scale and reports its key metric; `cmd/ptucker-bench -exp <id>` prints
// the full paper-style series, `-scale full` restores paper-sized parameters,
// and `-list` shows the experiment index.

import (
	"math/rand"
	"testing"

	"repro/internal/experiments"
	"repro/internal/synth"
)

// runExperiment executes one experiment per benchmark iteration and reports
// selected result values as benchmark metrics.
func runExperiment(b *testing.B, id string, metricKeys ...string) {
	b.Helper()
	opt := experiments.Options{Scale: synth.ScaleSmall, Seed: 1, Iters: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, k := range metricKeys {
			if v, ok := res.Values[k]; ok {
				b.ReportMetric(v, k)
			}
		}
	}
}

// BenchmarkFig5PartialError regenerates Figure 5: the Pareto skew of partial
// reconstruction errors R(β) over core entries (paper: top 20% of entries ≈
// 80% of the error).
func BenchmarkFig5PartialError(b *testing.B) {
	runExperiment(b, "fig5", "top20_share")
}

// BenchmarkFig6aOrder regenerates Figure 6(a): time per iteration vs tensor
// order for all methods, including Tucker-wOpt's O.O.M. wall.
func BenchmarkFig6aOrder(b *testing.B) {
	runExperiment(b, "fig6a")
}

// BenchmarkFig6bDimensionality regenerates Figure 6(b): time per iteration
// vs mode dimensionality.
func BenchmarkFig6bDimensionality(b *testing.B) {
	runExperiment(b, "fig6b")
}

// BenchmarkFig6cObservedEntries regenerates Figure 6(c): time per iteration
// vs |Ω| (P-Tucker scales near-linearly).
func BenchmarkFig6cObservedEntries(b *testing.B) {
	runExperiment(b, "fig6c")
}

// BenchmarkFig6dRank regenerates Figure 6(d): time per iteration vs core
// rank J.
func BenchmarkFig6dRank(b *testing.B) {
	runExperiment(b, "fig6d")
}

// BenchmarkFig7RealWorld regenerates Figure 7: time per iteration on the
// four simulated real-world tensors of Table IV.
func BenchmarkFig7RealWorld(b *testing.B) {
	runExperiment(b, "fig7")
}

// BenchmarkFig8Cache regenerates Figure 8: P-Tucker vs P-Tucker-Cache time
// and intermediate-memory trade-off across tensor orders.
func BenchmarkFig8Cache(b *testing.B) {
	runExperiment(b, "fig8", "memratio_n8")
}

// BenchmarkFig9Approx regenerates Figure 9: P-Tucker-Approx per-iteration
// speedup and near-equal final error.
func BenchmarkFig9Approx(b *testing.B) {
	runExperiment(b, "fig9", "plain_final_err", "approx_final_err")
}

// BenchmarkFig10Threads regenerates Figure 10: thread scalability, workload
// balance, and the dynamic-vs-static scheduling comparison of Section IV-D.
func BenchmarkFig10Threads(b *testing.B) {
	runExperiment(b, "fig10", "static_over_dynamic")
}

// BenchmarkFig11Accuracy regenerates Figure 11: reconstruction error and
// test RMSE of every method on the simulated real-world tensors.
func BenchmarkFig11Accuracy(b *testing.B) {
	runExperiment(b, "fig11")
}

// BenchmarkTable3Complexity regenerates Table III's empirical checks: time
// linear in |Ω|, intermediate memory O(T·J²) / O(|Ω|·|G|).
func BenchmarkTable3Complexity(b *testing.B) {
	runExperiment(b, "table3", "mean_time_ratio")
}

// BenchmarkTable5Concepts regenerates Table V: concept discovery purity on
// the planted MovieLens genres.
func BenchmarkTable5Concepts(b *testing.B) {
	runExperiment(b, "table5", "purity")
}

// BenchmarkTable6Relations regenerates Table VI: relation discovery overlap
// against the planted (genre, year, hour) preferences.
func BenchmarkTable6Relations(b *testing.B) {
	runExperiment(b, "table6", "mean_overlap")
}

// --- Micro-benchmarks of the public API -------------------------------------

// benchDecompose measures one full Decompose of the MovieLens-sim tensor for
// a given variant.
func benchDecompose(b *testing.B, method Method) {
	b.Helper()
	mcfg := synth.DefaultMovieLensConfig()
	mcfg.NNZ = 8000
	data := synth.MovieLens(mcfg)
	cfg := Defaults([]int{4, 4, 4, 4})
	cfg.Method = method
	cfg.MaxIters = 2
	cfg.Tol = 0
	cfg.Seed = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(data.X, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecomposePTucker(b *testing.B)       { benchDecompose(b, PTucker) }
func BenchmarkDecomposePTuckerCache(b *testing.B)  { benchDecompose(b, PTuckerCache) }
func BenchmarkDecomposePTuckerApprox(b *testing.B) { benchDecompose(b, PTuckerApprox) }

// BenchmarkPredict measures single-cell reconstruction (Eq. 4).
func BenchmarkPredict(b *testing.B) {
	mcfg := synth.DefaultMovieLensConfig()
	mcfg.NNZ = 4000
	data := synth.MovieLens(mcfg)
	cfg := Defaults([]int{4, 4, 4, 4})
	cfg.MaxIters = 2
	cfg.Seed = 1
	m, err := Decompose(data.X, cfg)
	if err != nil {
		b.Fatal(err)
	}
	idx := []int{3, 5, 7, 9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Predict(idx)
	}
}

// servingModel fits one model and prepares a batch of random multi-indices
// for the serving-path benchmarks.
func servingModel(b *testing.B, batch int) (*Model, [][]int) {
	b.Helper()
	mcfg := synth.DefaultMovieLensConfig()
	mcfg.NNZ = 4000
	data := synth.MovieLens(mcfg)
	cfg := Defaults([]int{4, 4, 4, 4})
	cfg.MaxIters = 2
	cfg.Seed = 1
	m, err := Decompose(data.X, cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	dims := data.X.Dims()
	idxs := make([][]int, batch)
	for i := range idxs {
		idx := make([]int, len(dims))
		for k, d := range dims {
			idx[k] = rng.Intn(d)
		}
		idxs[i] = idx
	}
	return m, idxs
}

func servingFixture(b *testing.B, batch int) (*Predictor, [][]int) {
	b.Helper()
	m, idxs := servingModel(b, batch)
	return NewPredictor(m), idxs
}

// sparseServingFixture is servingFixture after VeST-style pruning: half the
// core entries are removed by position and the mode-sorted layout rebuilt, so
// the serving benchmarks exercise the grouped sparse kernels at |G|/2. The
// ns/op ratio against the dense fixtures is the payoff of sparsification.
func sparseServingFixture(b *testing.B, batch int) (*Predictor, [][]int) {
	b.Helper()
	m, idxs := servingModel(b, batch)
	drop := make([]bool, m.Core.NNZ())
	for i := range drop {
		drop[i] = i%2 == 1
	}
	m.Core.RemoveEntries(drop)
	m.Core.FinalizeLayout()
	return NewPredictor(m), idxs
}

// BenchmarkPredictorPredict measures single-cell serving through the
// concurrent Predictor (pooled scratch; zero steady-state allocations).
func BenchmarkPredictorPredict(b *testing.B) {
	p, idxs := servingFixture(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Predict(idxs[0])
	}
}

// BenchmarkPredictSparse is BenchmarkPredictorPredict on the half-pruned
// core: single-cell cost is linear in live |G|, so ns/op should land near
// half the dense figure.
func BenchmarkPredictSparse(b *testing.B) {
	p, idxs := sparseServingFixture(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Predict(idxs[0])
	}
}

// BenchmarkRecommend measures a top-10 query over the items mode through the
// Recommender's mode-grouped contraction.
func BenchmarkRecommend(b *testing.B) {
	p, idxs := servingFixture(b, 1)
	r := p.Recommender()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.TopK(idxs[0], 1, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecommendSparse is BenchmarkRecommend on the half-pruned core:
// the contraction visits only live entries, so ranking cost drops with |G|.
func BenchmarkRecommendSparse(b *testing.B) {
	p, idxs := sparseServingFixture(b, 1)
	r := p.Recommender()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.TopK(idxs[0], 1, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictBatch measures batched serving throughput: 4096 cells per
// call, fanned out across the predictor's workers.
func BenchmarkPredictBatch(b *testing.B) {
	p, idxs := servingFixture(b, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.PredictBatch(idxs)
	}
	b.ReportMetric(float64(len(idxs)*b.N)/b.Elapsed().Seconds(), "preds/s")
}

// BenchmarkPredictBatchSerial is the single-worker baseline for the fan-out
// speedup in BenchmarkPredictBatch.
func BenchmarkPredictBatchSerial(b *testing.B) {
	p, idxs := servingFixture(b, 4096)
	p = p.WithWorkers(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.PredictBatch(idxs)
	}
	b.ReportMetric(float64(len(idxs)*b.N)/b.Elapsed().Seconds(), "preds/s")
}

// BenchmarkReconstructionError measures the parallel Eq. (5) pass.
func BenchmarkReconstructionError(b *testing.B) {
	mcfg := synth.DefaultMovieLensConfig()
	mcfg.NNZ = 8000
	data := synth.MovieLens(mcfg)
	cfg := Defaults([]int{4, 4, 4, 4})
	cfg.MaxIters = 2
	cfg.Seed = 1
	m, err := Decompose(data.X, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.ReconstructionError(data.X)
	}
}

// BenchmarkCoreUpdateExtension measures the optional element-wise core
// refinement (an ablation of the Config.UpdateCore extension).
func BenchmarkCoreUpdateExtension(b *testing.B) {
	mcfg := synth.DefaultMovieLensConfig()
	mcfg.NNZ = 4000
	data := synth.MovieLens(mcfg)
	cfg := Defaults([]int{3, 3, 3, 3})
	cfg.MaxIters = 2
	cfg.Tol = 0
	cfg.UpdateCore = true
	cfg.Seed = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(data.X, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
