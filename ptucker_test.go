package ptucker

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"
)

// ratingTensor builds a small structured rating tensor for facade tests.
func ratingTensor(seed int64) *Tensor {
	rng := rand.New(rand.NewSource(seed))
	x := NewTensor([]int{40, 30, 12})
	idx := make([]int, 3)
	for x.NNZ() < 800 {
		idx[0], idx[1], idx[2] = rng.Intn(40), rng.Intn(30), rng.Intn(12)
		// Block structure: users and items in matching halves rate high.
		v := 0.2
		if (idx[0] < 20) == (idx[1] < 15) {
			v = 0.8
		}
		x.MustAppend(idx, v+0.05*rng.NormFloat64())
	}
	return x
}

func TestFacadeDecomposeAndPredict(t *testing.T) {
	x := ratingTensor(1)
	cfg := Defaults([]int{3, 3, 3})
	cfg.MaxIters = 6
	cfg.Threads = 2
	cfg.Seed = 7
	m, err := Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Fit(x) < 0.7 {
		t.Fatalf("fit %v too low for structured data", m.Fit(x))
	}
	p := m.Predict([]int{1, 1, 1})
	if math.IsNaN(p) || math.IsInf(p, 0) {
		t.Fatalf("prediction not finite: %v", p)
	}
}

func TestFacadeVariants(t *testing.T) {
	x := ratingTensor(2)
	for _, method := range []Method{PTucker, PTuckerCache, PTuckerApprox} {
		cfg := Defaults([]int{2, 2, 2})
		cfg.Method = method
		cfg.MaxIters = 3
		cfg.Threads = 2
		cfg.Seed = 5
		if _, err := Decompose(x, cfg); err != nil {
			t.Fatalf("%v: %v", method, err)
		}
	}
}

func TestFacadeTensorIO(t *testing.T) {
	x := ratingTensor(3)
	path := filepath.Join(t.TempDir(), "x.tns")
	if err := WriteTensorFile(path, x); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTensorFile(path, 3, x.Dims())
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != x.NNZ() {
		t.Fatalf("IO round trip lost entries: %d vs %d", back.NNZ(), x.NNZ())
	}
}

func TestFacadeDiscovery(t *testing.T) {
	x := ratingTensor(4)
	cfg := Defaults([]int{2, 2, 2})
	cfg.MaxIters = 5
	cfg.Threads = 2
	cfg.Seed = 9
	m, err := Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	concepts, err := Concepts(m, 0, 2, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(concepts) != 2 {
		t.Fatalf("%d concepts want 2", len(concepts))
	}
	rels := Relations(m, 2, 3)
	if len(rels) != 2 {
		t.Fatalf("%d relations want 2", len(rels))
	}
	if len(rels[0].TopIndices) != 3 {
		t.Fatalf("relation mode lists = %d want 3", len(rels[0].TopIndices))
	}
}

func TestFacadeSchedulingConstants(t *testing.T) {
	x := ratingTensor(5)
	cfg := Defaults([]int{2, 2, 2})
	cfg.MaxIters = 2
	cfg.Scheduling = ScheduleStatic
	cfg.Threads = 2
	if _, err := Decompose(x, cfg); err != nil {
		t.Fatal(err)
	}
	if ScheduleDynamic == ScheduleStatic {
		t.Fatal("scheduling constants must differ")
	}
}

func TestFacadeDecomposeCP(t *testing.T) {
	x := ratingTensor(6)
	m, err := DecomposeCP(x, CPConfig{Rank: 3, Lambda: 0.01, MaxIters: 15, Threads: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if e := m.ReconstructionError(x); e > 0.5*x.Norm() {
		t.Fatalf("CP error %v too high vs ||X||=%v", e, x.Norm())
	}
	if v := m.Predict([]int{1, 2, 3}); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("CP prediction not finite: %v", v)
	}
}
