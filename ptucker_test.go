package ptucker

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
)

// ratingTensor builds a small structured rating tensor for facade tests.
func ratingTensor(seed int64) *Tensor {
	rng := rand.New(rand.NewSource(seed))
	x := NewTensor([]int{40, 30, 12})
	idx := make([]int, 3)
	for x.NNZ() < 800 {
		idx[0], idx[1], idx[2] = rng.Intn(40), rng.Intn(30), rng.Intn(12)
		// Block structure: users and items in matching halves rate high.
		v := 0.2
		if (idx[0] < 20) == (idx[1] < 15) {
			v = 0.8
		}
		x.MustAppend(idx, v+0.05*rng.NormFloat64())
	}
	return x
}

func TestFacadeDecomposeAndPredict(t *testing.T) {
	x := ratingTensor(1)
	cfg := Defaults([]int{3, 3, 3})
	cfg.MaxIters = 6
	cfg.Threads = 2
	cfg.Seed = 7
	m, err := Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Fit(x) < 0.7 {
		t.Fatalf("fit %v too low for structured data", m.Fit(x))
	}
	p := m.Predict([]int{1, 1, 1})
	if math.IsNaN(p) || math.IsInf(p, 0) {
		t.Fatalf("prediction not finite: %v", p)
	}
}

func TestFacadeVariants(t *testing.T) {
	x := ratingTensor(2)
	for _, method := range []Method{PTucker, PTuckerCache, PTuckerApprox} {
		cfg := Defaults([]int{2, 2, 2})
		cfg.Method = method
		cfg.MaxIters = 3
		cfg.Threads = 2
		cfg.Seed = 5
		if _, err := Decompose(x, cfg); err != nil {
			t.Fatalf("%v: %v", method, err)
		}
	}
}

func TestFacadeTensorIO(t *testing.T) {
	x := ratingTensor(3)
	path := filepath.Join(t.TempDir(), "x.tns")
	if err := WriteTensorFile(path, x); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTensorFile(path, 3, x.Dims())
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != x.NNZ() {
		t.Fatalf("IO round trip lost entries: %d vs %d", back.NNZ(), x.NNZ())
	}
}

func TestFacadeDiscovery(t *testing.T) {
	x := ratingTensor(4)
	cfg := Defaults([]int{2, 2, 2})
	cfg.MaxIters = 5
	cfg.Threads = 2
	cfg.Seed = 9
	m, err := Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	concepts, err := Concepts(m, 0, 2, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(concepts) != 2 {
		t.Fatalf("%d concepts want 2", len(concepts))
	}
	rels := Relations(m, 2, 3)
	if len(rels) != 2 {
		t.Fatalf("%d relations want 2", len(rels))
	}
	if len(rels[0].TopIndices) != 3 {
		t.Fatalf("relation mode lists = %d want 3", len(rels[0].TopIndices))
	}
}

func TestFacadeSchedulingConstants(t *testing.T) {
	x := ratingTensor(5)
	cfg := Defaults([]int{2, 2, 2})
	cfg.MaxIters = 2
	cfg.Scheduling = ScheduleStatic
	cfg.Threads = 2
	if _, err := Decompose(x, cfg); err != nil {
		t.Fatal(err)
	}
	if ScheduleDynamic == ScheduleStatic {
		t.Fatal("scheduling constants must differ")
	}
}

// TestFacadeFitSaveServe drives the production workflow end to end through
// the public API: fit with context + progress hook, save, load, and serve the
// loaded model concurrently — predictions must be bit-identical throughout.
func TestFacadeFitSaveServe(t *testing.T) {
	x := ratingTensor(7)
	cfg := Defaults([]int{3, 3, 3})
	cfg.MaxIters = 6
	cfg.Threads = 2
	cfg.Seed = 7
	progress := 0
	cfg.OnIteration = func(s IterStats) error {
		progress++
		if s.Iter != progress {
			t.Errorf("hook iteration %d out of order (want %d)", s.Iter, progress)
		}
		return nil
	}

	m, err := DecomposeContext(context.Background(), x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if progress == 0 {
		t.Fatal("OnIteration never called")
	}

	path := filepath.Join(t.TempDir(), "model.ptkm")
	if err := SaveModel(path, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}

	p := NewPredictor(loaded)
	idxs := make([][]int, 300)
	rng := rand.New(rand.NewSource(77))
	for i := range idxs {
		idxs[i] = []int{rng.Intn(40), rng.Intn(30), rng.Intn(12)}
	}
	batch := p.PredictBatch(idxs)
	for i, idx := range idxs {
		if math.Float64bits(batch[i]) != math.Float64bits(m.Predict(idx)) {
			t.Fatalf("served prediction at %v diverges from the fitted model", idx)
		}
	}

	// 8 goroutines serving concurrently (the -race acceptance scenario).
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := p.PredictBatch(idxs)
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(batch[i]) {
					t.Error("concurrent batch prediction diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestFacadeCancellation(t *testing.T) {
	x := ratingTensor(8)
	cfg := Defaults([]int{3, 3, 3})
	cfg.MaxIters = 100
	cfg.Tol = 0
	cfg.Threads = 2
	ctx, cancel := context.WithCancel(context.Background())
	cfg.OnIteration = func(s IterStats) error {
		if s.Iter == 2 {
			cancel()
		}
		return nil
	}
	m, err := DecomposeContext(ctx, x, cfg)
	if m != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("got (%v, %v), want (nil, context.Canceled)", m, err)
	}
}

func TestFacadeEarlyStop(t *testing.T) {
	x := ratingTensor(9)
	cfg := Defaults([]int{3, 3, 3})
	cfg.MaxIters = 100
	cfg.Tol = 0
	cfg.Threads = 2
	cfg.OnIteration = func(s IterStats) error {
		if s.Iter == 2 {
			return ErrStopIteration
		}
		return nil
	}
	m, err := DecomposeContext(context.Background(), x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Trace) != 2 {
		t.Fatalf("early stop ran %d iterations, want 2", len(m.Trace))
	}
}

func TestFacadeDecomposeCP(t *testing.T) {
	x := ratingTensor(6)
	m, err := DecomposeCP(x, CPConfig{Rank: 3, Lambda: 0.01, MaxIters: 15, Threads: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if e := m.ReconstructionError(x); e > 0.5*x.Norm() {
		t.Fatalf("CP error %v too high vs ||X||=%v", e, x.Norm())
	}
	if v := m.Predict([]int{1, 2, 3}); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("CP prediction not finite: %v", v)
	}
}
