// Quickstart: build a small sparse rating tensor, factorize it with
// P-Tucker under a cancellable context with live progress, persist the
// fitted model, and serve predictions from a reloaded copy.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"repro" // package ptucker: the public facade
)

func main() {
	// A (user, item, context) tensor: 50 users, 40 items, 8 contexts.
	// Only ~7.5% of the cells are observed — the sparse, partially observable
	// regime P-Tucker is built for.
	x := ptucker.NewTensor([]int{50, 40, 8})
	rng := rand.New(rand.NewSource(42))
	idx := make([]int, 3)
	for x.NNZ() < 1200 {
		idx[0], idx[1], idx[2] = rng.Intn(50), rng.Intn(40), rng.Intn(8)
		// Planted taste structure: matching user/item halves rate high.
		rating := 0.25
		if (idx[0] < 25) == (idx[1] < 20) {
			rating = 0.85
		}
		x.MustAppend(idx, rating+0.05*rng.NormFloat64())
	}
	fmt.Println("observed tensor:", x)

	// Factorize with a 3x3x3 core and the paper's default hyper-parameters.
	// The context makes the fit cancellable (wire it to a signal or deadline
	// in a real service); OnIteration streams progress as the fit runs.
	cfg := ptucker.Defaults([]int{3, 3, 3})
	cfg.Seed = 1
	cfg.OnIteration = func(s ptucker.IterStats) error {
		fmt.Printf("  iter %2d: error %.4f\n", s.Iter, s.Error)
		return nil // return ptucker.ErrStopIteration to stop early
	}
	model, err := ptucker.DecomposeContext(context.Background(), x, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("converged=%v after %d iterations; reconstruction error %.4f (fit %.3f)\n",
		model.Converged, len(model.Trace), model.TrainError, model.Fit(x))

	// Persist the model and reload it — the round trip is bit-identical, so
	// a fit on one machine can serve on another.
	dir, err := os.MkdirTemp("", "ptucker-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "model.ptkm")
	if err := ptucker.SaveModel(path, model); err != nil {
		log.Fatal(err)
	}
	loaded, err := ptucker.LoadModel(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved and reloaded model (%s)\n", path)

	// Serve predictions through a concurrent-safe Predictor. Predict two
	// missing cells: one inside a high-rating block, one outside.
	p := ptucker.NewPredictor(loaded)
	preds := p.PredictBatch([][]int{
		{3, 5, 2},  // user<25, item<20 → expect ≈0.85
		{3, 35, 2}, // user<25, item≥20 → expect ≈0.25
	})
	fmt.Printf("predicted in-block rating:  %.3f (planted ≈0.85)\n", preds[0])
	fmt.Printf("predicted off-block rating: %.3f (planted ≈0.25)\n", preds[1])
}
