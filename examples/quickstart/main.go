// Quickstart: build a small sparse rating tensor, factorize it with
// P-Tucker, and predict a missing entry.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro" // package ptucker: the public facade
)

func main() {
	// A (user, item, context) tensor: 50 users, 40 items, 8 contexts.
	// Only ~7.5% of the cells are observed — the sparse, partially observable
	// regime P-Tucker is built for.
	x := ptucker.NewTensor([]int{50, 40, 8})
	rng := rand.New(rand.NewSource(42))
	idx := make([]int, 3)
	for x.NNZ() < 1200 {
		idx[0], idx[1], idx[2] = rng.Intn(50), rng.Intn(40), rng.Intn(8)
		// Planted taste structure: matching user/item halves rate high.
		rating := 0.25
		if (idx[0] < 25) == (idx[1] < 20) {
			rating = 0.85
		}
		x.MustAppend(idx, rating+0.05*rng.NormFloat64())
	}
	fmt.Println("observed tensor:", x)

	// Factorize with a 3x3x3 core and the paper's default hyper-parameters.
	cfg := ptucker.Defaults([]int{3, 3, 3})
	cfg.Seed = 1
	model, err := ptucker.Decompose(x, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("converged=%v after %d iterations; reconstruction error %.4f (fit %.3f)\n",
		model.Converged, len(model.Trace), model.TrainError, model.Fit(x))

	// Predict two missing cells: one inside a high-rating block, one outside.
	high := model.Predict([]int{3, 5, 2}) // user<25, item<20 → expect ≈0.85
	low := model.Predict([]int{3, 35, 2}) // user<25, item≥20 → expect ≈0.25
	fmt.Printf("predicted in-block rating:  %.3f (planted ≈0.85)\n", high)
	fmt.Printf("predicted off-block rating: %.3f (planted ≈0.25)\n", low)
}
