// Online learning end-to-end: fit a rating model, serve it over HTTP, then
// watch a cold-start user appear — their ratings are POSTed to /v1/observe,
// folded into the served model as a fresh factor row (one row-wise
// least-squares solve, no refit), and /v1/recommend immediately ranks items
// for them, excluding what they already rated. Finally enough traffic
// accumulates to trip the background warm refit and the rebalanced model is
// swapped in atomically.
//
// Run with: go run ./examples/online
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"time"

	"repro" // package ptucker: the public facade
	"repro/internal/serve"
)

const (
	users, items, contexts = 40, 30, 6
)

// rate is the planted taste structure: matching user/item halves rate high.
func rate(rng *rand.Rand, u, i int) float64 {
	r := 0.2
	if (u < users/2) == (i < items/2) {
		r = 0.9
	}
	return r + 0.05*rng.NormFloat64()
}

func post(url string, body interface{}, out interface{}) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("%s: %s (%s)", url, resp.Status, e.Error)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func main() {
	rng := rand.New(rand.NewSource(7))

	// Fit the initial model on the first `users` users' ratings.
	x := ptucker.NewTensor([]int{users, items, contexts})
	for x.NNZ() < 1800 {
		u, i, c := rng.Intn(users), rng.Intn(items), rng.Intn(contexts)
		x.MustAppend([]int{u, i, c}, rate(rng, u, i))
	}
	cfg := ptucker.Defaults([]int{3, 3, 2})
	cfg.Seed = 1
	fitter := ptucker.NewFitter(cfg)
	model, err := fitter.Fit(context.Background(), x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted %v in %d iterations (error %.4f)\n", x.Dims(), len(model.Trace), model.TrainError)

	// Serve it. RefitAfter is tiny so this demo trips a background refit.
	s, err := serve.New(serve.Options{Model: model, RefitAfter: 40})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	fmt.Println("serving on", ts.URL)

	// A cold-start user walks in: index `users` (the next new row of mode
	// 0) with a handful of ratings — loves the high-half items, shrugs at a
	// couple of low-half ones. One /v1/observe folds them into the served
	// model as a single row-wise least-squares solve.
	newUser := users
	rated := []int{16, 18, 20, 22, 25, 2, 5} // items the new user rated
	var obs []ptucker.Observation
	for _, i := range rated {
		v := 0.9 // high-half favorites
		if i < items/2 {
			v = 0.2 // low-half: not their taste
		}
		obs = append(obs, ptucker.Observation{
			Index: []int{newUser, i, rng.Intn(contexts)},
			Value: v + 0.05*rng.NormFloat64(),
		})
	}
	var or struct {
		Appended int   `json:"appended"`
		Folded   []any `json:"folded"`
		Dims     []int `json:"dims"`
	}
	if err := post(ts.URL+"/v1/observe", map[string]any{"observations": obs}, &or); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("observed %d ratings for cold-start user %d: folded %d new row(s), served dims now %v\n",
		len(obs), newUser, len(or.Folded), or.Dims)

	// Recommend for them immediately — no refit, no redeploy. Exclude what
	// they already rated so the answer is new items, not an echo.
	var rr struct {
		Recs []ptucker.Rec `json:"recs"`
	}
	req := map[string]any{"query": []int{newUser, 0, 1}, "mode": 1, "k": 5, "exclude": rated}
	if err := post(ts.URL+"/v1/recommend", req, &rr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-5 items for user %d (excluding rated %v):\n", newUser, rated)
	for _, r := range rr.Recs {
		half := "low"
		if r.Index >= items/2 {
			half = "high"
		}
		fmt.Printf("  item %2d (taste half: %s) score %.3f\n", r.Index, half, r.Score)
	}

	// Keep observing: regular in-range ratings accumulate until the
	// background warm refit trips and the rebalanced model is swapped in.
	var last struct {
		Pending        int  `json:"pending"`
		RefitTriggered bool `json:"refit_triggered"`
	}
	for n := 0; n < 50; n += 10 {
		var batch []ptucker.Observation
		for j := 0; j < 10; j++ {
			u, i, c := rng.Intn(users), rng.Intn(items), rng.Intn(contexts)
			batch = append(batch, ptucker.Observation{Index: []int{u, i, c}, Value: rate(rng, u, i)})
		}
		if err := post(ts.URL+"/v1/observe", map[string]any{"observations": batch}, &last); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("streamed 50 more observations; background refit triggered: %v\n", last.RefitTriggered)
	time.Sleep(300 * time.Millisecond) // let the refit publish

	var health struct {
		Dims     []int  `json:"dims"`
		LoadedAt string `json:"loaded_at"`
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served snapshot after refit: dims %v, installed %s\n", health.Dims, health.LoadedAt)
}
