// MovieLens discovery: regenerate the Section V study on the simulated
// MovieLens tensor — factorize (user, movie, year, hour; rating), cluster
// the movie factor into genre concepts (Table V), and mine the core tensor
// for (year, hour) relations (Table VI).
//
// Run with: go run ./examples/movielens
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/synth"
)

func main() {
	// Simulated MovieLens with planted genres and temporal preferences
	// (the real 20M-rating tensor is not redistributable; the stand-in
	// keeps the same structure at laptop scale — see internal/synth).
	data := synth.MovieLens(synth.DefaultMovieLensConfig())
	fmt.Println("rating tensor:", data.X)

	cfg := ptucker.Defaults([]int{6, 6, 6, 6})
	cfg.MaxIters = 8
	cfg.Seed = 3
	cfg.OnIteration = func(s ptucker.IterStats) error {
		fmt.Printf("  fitting: iter %d error %.3f (|G|=%d)\n", s.Iter, s.Error, s.CoreNNZ)
		return nil
	}
	model, err := ptucker.DecomposeContext(context.Background(), data.X, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factorized: error %.3f, fit %.3f\n\n", model.TrainError, model.Fit(data.X))

	// Concept discovery (Table V): cluster movie-factor rows.
	concepts, err := ptucker.Concepts(model, 1, len(data.GenreNames), 5, 17)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("discovered movie concepts (top members, planted genre in parentheses):")
	for _, c := range concepts {
		fmt.Printf("  C%d:", c.Cluster+1)
		for _, m := range c.Members {
			fmt.Printf(" movie%d(%s)", m, data.GenreNames[data.MovieGenre[m]])
		}
		fmt.Println()
	}

	// Relation discovery (Table VI): strongest core entries link factor
	// columns; their top year/hour loadings reveal the planted preferences.
	fmt.Println("\nstrongest relations in the core tensor:")
	for i, r := range ptucker.Relations(model, 3, 4) {
		fmt.Printf("  R%d: %s\n", i+1, r.Describe([]string{"user", "movie", "year", "hour"}))
	}
	fmt.Println("\nplanted ground truth:")
	for _, rel := range data.Relations {
		fmt.Printf("  %s: peak years %v, peak hours %v\n",
			data.GenreNames[rel.Genre], rel.PeakYears, rel.PeakHours)
	}
}
