// Recommender: train/test evaluation of missing-rating prediction and top-N
// recommendation on a simulated rating tensor — the workflow the paper's
// introduction motivates ("(user, movie, time; rating) for movie
// recommendations ... predict missing values"). Candidate scoring goes
// through the serving-layer Predictor: the whole unseen-movie slate is
// ranked with one concurrent PredictBatch call, the shape a production
// recommender uses per request.
//
// Run with: go run ./examples/recommender
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro"
	"repro/internal/synth"
)

func main() {
	cfg := synth.DefaultMovieLensConfig()
	cfg.Users, cfg.Movies, cfg.NNZ = 300, 120, 12000
	data := synth.MovieLens(cfg)

	// 90/10 split, as in Section IV-A.
	rng := rand.New(rand.NewSource(99))
	train, test := data.X.Split(0.9, rng)
	fmt.Printf("train %d / test %d observed ratings\n", train.NNZ(), test.NNZ())

	pcfg := ptucker.Defaults([]int{5, 5, 5, 5})
	pcfg.MaxIters = 10
	pcfg.Seed = 5
	model, err := ptucker.DecomposeContext(context.Background(), train, pcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconstruction error %.3f, held-out RMSE %.4f\n\n",
		model.TrainError, model.RMSE(test))

	// Top-5 recommendations for one user: rank unseen movies by predicted
	// rating at a fixed (year, hour) context. The Predictor scores the whole
	// candidate slate in one batched, multi-worker pass.
	const user, year, hour = 7, 10, 20
	seen := map[int]bool{}
	for e := 0; e < train.NNZ(); e++ {
		if idx := train.Index(e); idx[0] == user {
			seen[idx[1]] = true
		}
	}
	p := ptucker.NewPredictor(model)
	var candidates []int
	var batch [][]int
	for m := 0; m < cfg.Movies; m++ {
		if seen[m] {
			continue
		}
		candidates = append(candidates, m)
		batch = append(batch, []int{user, m, year, hour})
	}
	scores := p.PredictBatch(batch)
	type rec struct {
		movie int
		score float64
	}
	recs := make([]rec, len(candidates))
	for i, m := range candidates {
		recs[i] = rec{m, scores[i]}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].score > recs[j].score })

	pref := data.GenreNames[data.UserPref[user]]
	fmt.Printf("user %d prefers %s; top-5 unseen movies at (year %d, hour %d):\n",
		user, pref, year, hour)
	hits := 0
	for i := 0; i < 5 && i < len(recs); i++ {
		g := data.GenreNames[data.MovieGenre[recs[i].movie]]
		marker := ""
		if g == pref {
			marker = "  <- preferred genre"
			hits++
		}
		fmt.Printf("  %d. movie%-4d predicted %.3f  genre %s%s\n",
			i+1, recs[i].movie, recs[i].score, g, marker)
	}
	fmt.Printf("%d/5 recommendations match the user's planted preference\n", hits)
}
