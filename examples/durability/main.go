// Durability end-to-end: fit a rating model, serve it with a data directory,
// stream observations (including a cold-start user folded in as a fresh
// factor row), then kill the process mid-stream. Every accepted batch was
// journaled before it was applied, so the restarted server replays the
// journal and serves predictions bit-identical to the pre-crash process —
// the cold-start user survives the crash. Finally a background refit
// rebalances the model and compacts journal + training set + model into the
// directory, which supersedes the original model file on the next start.
//
// Run with: go run ./examples/durability
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"repro" // package ptucker: the public facade
	"repro/internal/serve"
	"repro/internal/store"
)

const (
	users, items, contexts = 40, 30, 6
	authToken              = "demo-token"
)

func post(url, token string, body interface{}, out interface{}) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		return err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("%s: %s (%s)", url, resp.Status, e.Error)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

type observation struct {
	Index []int   `json:"index"`
	Value float64 `json:"value"`
}

func main() {
	rng := rand.New(rand.NewSource(7))
	workDir, err := os.MkdirTemp("", "ptucker-durability")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workDir)
	dataDir := filepath.Join(workDir, "data")

	// Fit the initial model and persist it alongside its training tensor (the
	// binary snapshot loads ~10x faster than text and doubles as the sidecar
	// a resumed fitter refits from).
	x := ptucker.NewTensor([]int{users, items, contexts})
	for x.NNZ() < 1800 {
		u, i, c := rng.Intn(users), rng.Intn(items), rng.Intn(contexts)
		r := 0.2
		if (u < users/2) == (i < items/2) {
			r = 0.9
		}
		x.MustAppend([]int{u, i, c}, r+0.05*rng.NormFloat64())
	}
	cfg := ptucker.Defaults([]int{3, 3, 2})
	cfg.Seed = 1
	model, err := ptucker.DecomposeContext(context.Background(), x, cfg)
	if err != nil {
		log.Fatal(err)
	}
	modelPath := filepath.Join(workDir, "model.ptkm")
	if err := ptucker.SaveModel(modelPath, model); err != nil {
		log.Fatal(err)
	}
	// Seed the data directory with the training tensor (what `ptucker
	// -save-tensor` produces): the server attaches it at startup, so
	// background refits sweep the true union of original + online
	// observations instead of only what arrived since the restart.
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		log.Fatal(err)
	}
	if err := ptucker.SaveTensor(filepath.Join(dataDir, "training.ptkt"), x); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted %v (error %.4f), saved model + training sidecar\n", x.Dims(), model.TrainError)

	// Serve it durably: every observe is journaled (fsync per append here —
	// nothing accepted is ever lost) and the mutating endpoints demand a
	// bearer token.
	opts := serve.Options{
		ModelPath:   modelPath,
		DataDir:     dataDir,
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways},
		AuthToken:   authToken,
	}
	s1, err := serve.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())

	// Traffic: ratings for existing cells, then a cold-start user (row index
	// `users` is the next new slice of mode 0) folded in live.
	for b := 0; b < 5; b++ {
		var obs []observation
		for i := 0; i < 6; i++ {
			obs = append(obs, observation{
				Index: []int{rng.Intn(users), rng.Intn(items), rng.Intn(contexts)},
				Value: 0.5 + 0.1*rng.NormFloat64(),
			})
		}
		if err := post(ts1.URL+"/v1/observe", authToken,
			map[string]interface{}{"observations": obs}, nil); err != nil {
			log.Fatal(err)
		}
	}
	newbie := []observation{
		{Index: []int{users, 2, 1}, Value: 0.95},
		{Index: []int{users, 5, 0}, Value: 0.9},
		{Index: []int{users, 21, 3}, Value: 0.15},
	}
	var oresp struct {
		Folded []struct{ Mode, Index int } `json:"folded"`
		Dims   []int                       `json:"dims"`
	}
	if err := post(ts1.URL+"/v1/observe", authToken,
		map[string]interface{}{"observations": newbie}, &oresp); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold-start user folded in: %+v, dims now %v\n", oresp.Folded, oresp.Dims)

	var before struct {
		Value float64 `json:"value"`
	}
	if err := post(ts1.URL+"/v1/predict", "",
		map[string]interface{}{"index": []int{users, 2, 1}}, &before); err != nil {
		log.Fatal(err)
	}

	// Kill the process. No compaction has happened: the model file on disk
	// knows nothing about the 33 observations or the new user — only the
	// journal does.
	ts1.Close()
	s1.Close()
	fmt.Println("server killed mid-stream (journal holds 6 batches)")

	// Restart over the same data directory: the journal replays through the
	// exact plan/apply path live traffic took, so the new process serves the
	// same model bit for bit — including the folded-in user. Replayed
	// observations count toward -refit-after, so the refit knob is armed.
	opts2 := opts
	opts2.RefitAfter = 20
	s2, err := serve.New(opts2)
	if err != nil {
		log.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() { ts2.Close(); s2.Close() }()

	var after struct {
		Value float64 `json:"value"`
	}
	if err := post(ts2.URL+"/v1/predict", "",
		map[string]interface{}{"index": []int{users, 2, 1}}, &after); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold-start prediction before crash %.12f, after restart %.12f, identical: %v\n",
		before.Value, after.Value, before.Value == after.Value)

	// One more batch trips the background warm refit (the 30+ replayed
	// observations already count toward the threshold). When it finishes,
	// the journal is compacted: model + training snapshot land in the data
	// directory, the journal rotates empty, and the directory — not the
	// original -model file — is what the next start resumes from.
	var rresp struct {
		RefitTriggered bool `json:"refit_triggered"`
	}
	if err := post(ts2.URL+"/v1/observe", authToken, map[string]interface{}{
		"observations": []observation{{Index: []int{1, 1, 1}, Value: 0.4}},
	}, &rresp); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refit triggered: %v — waiting for compaction\n", rresp.RefitTriggered)
	dir, err := store.OpenDir(dataDir)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 200 && !dir.HasModel(); i++ {
		time.Sleep(25 * time.Millisecond)
	}
	if !dir.HasModel() {
		log.Fatal("compaction did not complete")
	}
	entries, _ := os.ReadDir(dataDir)
	fmt.Println("data directory after compaction:")
	for _, e := range entries {
		info, _ := e.Info()
		fmt.Printf("  %-20s %6d bytes\n", e.Name(), info.Size())
	}
	fmt.Println("restarting now would load model.ptkm + training.ptkt and replay an empty journal")
}
