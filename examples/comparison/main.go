// Comparison: run every method of the paper's evaluation — P-Tucker and its
// variants against Tucker-wOpt, S-HOT and Tucker-CSF — on one sparse tensor
// and print a speed/accuracy table (the Figure 7 / Figure 11 view in
// miniature).
//
// Run with: go run ./examples/comparison
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"

	"repro"
	"repro/internal/csf"
	"repro/internal/metrics"
	"repro/internal/shot"
	"repro/internal/synth"
	"repro/internal/ttm"
	"repro/internal/wopt"
)

func main() {
	// The P-Tucker fits run under a signal-bound context: Ctrl-C stops the
	// in-flight factorization within one ALS iteration.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	context.AfterFunc(ctx, stop) // second Ctrl-C force-kills: unregister once cancelled

	// A sparse planted tensor: observed entries carry low-rank structure,
	// missing cells are NOT zeros — the regime that separates
	// observed-entry methods from zero-filling ones.
	rng := rand.New(rand.NewSource(11))
	x := synth.PlantedTucker(rng, []int{60, 50, 40}, []int{3, 3, 3}, 4000, 0.02)
	train, test := x.Split(0.9, rng)
	ranks := []int{3, 3, 3}
	const iters = 8

	tbl := metrics.NewTable("method", "time/iter", "recon error (Eq.5)", "test RMSE")

	// P-Tucker family.
	for _, method := range []ptucker.Method{ptucker.PTucker, ptucker.PTuckerCache, ptucker.PTuckerApprox} {
		cfg := ptucker.Defaults(ranks)
		cfg.Method = method
		cfg.MaxIters = iters
		cfg.Tol = 0
		cfg.Seed = 2
		m, err := ptucker.DecomposeContext(ctx, train, cfg)
		if err != nil {
			log.Fatal(err)
		}
		tbl.AddRow(method.String(),
			fmt.Sprintf("%.4gs", m.TimePerIteration().Seconds()),
			m.TrainError, m.RMSE(test))
	}

	// Tucker-wOpt (observed-entry, dense intermediates).
	if wm, err := wopt.Decompose(train, wopt.Config{Ranks: ranks, MaxIters: 4 * iters, Seed: 2}); err == nil {
		tbl.AddRow("Tucker-wOpt",
			fmt.Sprintf("%.4gs", wm.TimePerIteration().Seconds()),
			wm.ReconstructionError(train), wm.RMSE(test))
	} else if errors.Is(err, ttm.ErrOutOfMemory) {
		tbl.AddRow("Tucker-wOpt", "O.O.M.", "O.O.M.", "O.O.M.")
	} else {
		log.Fatal(err)
	}

	// Zero-filling baselines.
	if sm, err := shot.Decompose(train, shot.Config{Ranks: ranks, MaxIters: iters, Seed: 2}); err == nil {
		tbl.AddRow("S-HOT",
			fmt.Sprintf("%.4gs", sm.TimePerIteration().Seconds()),
			sm.ReconstructionError(train), sm.RMSE(test))
	} else {
		log.Fatal(err)
	}
	if cm, err := csf.Decompose(train, csf.Config{Ranks: ranks, MaxIters: iters, Seed: 2}); err == nil {
		tbl.AddRow("Tucker-CSF",
			fmt.Sprintf("%.4gs", cm.TimePerIteration().Seconds()),
			cm.ReconstructionError(train), cm.RMSE(test))
	} else {
		log.Fatal(err)
	}

	fmt.Println("method comparison on a sparse planted tensor (60x50x40, 4000 observed):")
	fmt.Print(tbl)
	fmt.Println("\nexpected shape (paper Figs. 7/11): observed-entry methods (P-Tucker")
	fmt.Println("family, wOpt) fit far better than zero-filling ones (S-HOT, CSF);")
	fmt.Println("P-Tucker is the fastest of the accurate methods.")
}
