package ptucker

// End-to-end integration tests across modules: generator → file IO →
// factorization → evaluation → discovery, and cross-method consistency on a
// shared workload.

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/csf"
	"repro/internal/hooi"
	"repro/internal/shot"
	"repro/internal/synth"
	"repro/internal/wopt"
)

// TestPipelineEndToEnd drives the full user workflow: generate a MovieLens
// stand-in, round-trip it through the on-disk format, split, factorize with
// every P-Tucker variant, evaluate held-out RMSE, and run both discovery
// passes.
func TestPipelineEndToEnd(t *testing.T) {
	mcfg := synth.DefaultMovieLensConfig()
	mcfg.Users, mcfg.Movies, mcfg.NNZ, mcfg.Genres = 120, 60, 6000, 3
	data := synth.MovieLens(mcfg)

	// File round trip.
	path := filepath.Join(t.TempDir(), "ml.tns")
	if err := WriteTensorFile(path, data.X); err != nil {
		t.Fatal(err)
	}
	x, err := ReadTensorFile(path, 4, data.X.Dims())
	if err != nil {
		t.Fatal(err)
	}
	if x.NNZ() != data.X.NNZ() {
		t.Fatalf("file round trip lost entries: %d vs %d", x.NNZ(), data.X.NNZ())
	}

	rng := rand.New(rand.NewSource(5))
	train, test := x.Split(0.9, rng)

	for _, method := range []Method{PTucker, PTuckerCache, PTuckerApprox} {
		cfg := Defaults([]int{3, 3, 3, 3})
		cfg.Method = method
		cfg.MaxIters = 6
		cfg.Tol = 0
		cfg.Threads = 2
		cfg.Seed = 7
		m, err := Decompose(train, cfg)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		rmse := m.RMSE(test)
		// Ratings live in [0,1]; a working factorization must beat the
		// trivial ~0.3 RMSE of predicting a constant by a wide margin.
		if rmse > 0.25 {
			t.Fatalf("%v: held-out RMSE %v too high", method, rmse)
		}
	}

	// Discovery over the plain model.
	cfg := Defaults([]int{3, 3, 3, 3})
	cfg.MaxIters = 6
	cfg.Threads = 2
	cfg.Seed = 7
	m, err := Decompose(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	concepts, err := Concepts(m, 1, 3, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(concepts) != 3 {
		t.Fatalf("%d concepts want 3", len(concepts))
	}
	if rels := Relations(m, 3, 4); len(rels) != 3 {
		t.Fatalf("%d relations want 3", len(rels))
	}
}

// TestMethodsAgreeOnFullyObservedLowRank cross-checks all five methods on a
// FULLY observed exact-low-rank tensor — the one regime where they all solve
// the same problem, so every one of them must reconstruct it almost
// perfectly.
func TestMethodsAgreeOnFullyObservedLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := synth.PlantedTucker(rng, []int{8, 8, 8}, []int{2, 2, 2}, 8*8*8, 0)
	ranks := []int{2, 2, 2}
	norm := x.Norm()

	check := func(name string, errVal float64) {
		t.Helper()
		if errVal > 0.02*norm {
			t.Fatalf("%s: error %v vs ||X||=%v on exact-rank fully observed data", name, errVal, norm)
		}
	}

	cfg := Defaults(ranks)
	cfg.MaxIters = 25
	cfg.Tol = 0
	cfg.Threads = 2
	cfg.Seed = 3
	pm, err := Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	check("P-Tucker", pm.ReconstructionError(x))

	hm, err := hooi.Decompose(x, hooi.Config{Ranks: ranks, MaxIters: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	check("Tucker-ALS", hm.ReconstructionError(x))

	sm, err := shot.Decompose(x, shot.Config{Ranks: ranks, MaxIters: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	check("S-HOT", sm.ReconstructionError(x))

	cm, err := csf.Decompose(x, csf.Config{Ranks: ranks, MaxIters: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	check("Tucker-CSF", cm.ReconstructionError(x))

	wm, err := wopt.Decompose(x, wopt.Config{Ranks: ranks, MaxIters: 150, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// NCG converges more slowly; allow a looser but still small bound.
	if e := wm.ReconstructionError(x); e > 0.1*norm {
		t.Fatalf("Tucker-wOpt: error %v vs ||X||=%v", e, norm)
	}

	// The zero-fill baselines agree with each other to numerical precision.
	if d := math.Abs(sm.ReconstructionError(x) - cm.ReconstructionError(x)); d > 1e-6*norm {
		t.Fatalf("S-HOT and Tucker-CSF diverge on identical mathematics: Δ=%v", d)
	}
}

// TestSamplingFacade exercises the sampling extension through the public
// Config.
func TestSamplingFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := synth.PlantedTucker(rng, []int{15, 15, 15}, []int{2, 2, 2}, 1500, 0.02)
	cfg := Defaults([]int{2, 2, 2})
	cfg.MaxIters = 5
	cfg.SampleRate = 0.5
	cfg.Threads = 2
	cfg.Seed = 4
	m, err := Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Fit(x) < 0.8 {
		t.Fatalf("sampled fit %v too low", m.Fit(x))
	}
}
