#!/usr/bin/env bash
# bench-gate.sh — run the CI-gated benchmark set with fixed iteration counts
# and append the raw `go test -bench` output to the log file named by $1
# (default bench.txt). Fixed -benchtime/-count keeps runs comparable; the
# gate itself is cmd/benchcmp:
#
#   refresh baseline:  scripts/bench-gate.sh bench.txt &&
#                      go run ./cmd/benchcmp -note "$(go env GOOS)/$(go env GOARCH)" \
#                          -out BENCH_BASELINE.json bench.txt
#   gate (CI):         scripts/bench-gate.sh bench.txt &&
#                      go run ./cmd/benchcmp -baseline BENCH_BASELINE.json \
#                          -threshold 30 -out BENCH.json bench.txt
#
# The baseline is hardware-specific: refresh it (same PR) whenever the CI
# runner class changes or a deliberate perf trade lands.
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-bench.txt}"
: > "$out"

# Iteration counts are pinned per benchmark so runs stay comparable, and
# sized so every measurement window is tens of milliseconds at least —
# sub-millisecond windows would make the 30% gate flake on scheduler noise.

# Serving kernel, single-cell reconstruction (~1µs/op → ~100ms windows).
go test -run '^$' -bench '^(BenchmarkPredict|BenchmarkPredictorPredict)$' -benchtime 100000x -count 3 . | tee -a "$out"
# Sparse-core serving: same kernel on a half-pruned finalized core; the gate
# also catches the proportional speedup regressing back toward dense cost.
go test -run '^$' -bench '^BenchmarkPredictSparse$' -benchtime 100000x -count 3 . | tee -a "$out"
# Top-10 ranking through the mode-grouped contraction, dense vs pruned core
# (~5µs/op → ~100ms windows).
go test -run '^$' -bench '^BenchmarkRecommend(Sparse)?$' -benchtime 20000x -count 3 . | tee -a "$out"
# Batched reconstruction (~5ms/op → ~0.5s windows).
go test -run '^$' -bench '^BenchmarkPredictBatch(Serial)?$' -benchtime 100x -count 3 . | tee -a "$out"
# Coalesced /v1/predict hot path, single-dispatcher baseline vs 4 shards
# (~1µs/op → ~100ms windows; steady state, not warmup).
go test -run '^$' -bench '^BenchmarkServeCoalescedPredict$' -benchtime 100000x -count 3 -cpu 4 ./internal/serve | tee -a "$out"
# Online fold-in, Eq. 9 single-row solve (~12µs/op → ~60ms windows).
go test -run '^$' -bench '^BenchmarkFoldIn$' -benchtime 5000x -count 3 ./internal/core | tee -a "$out"
# Binary tensor snapshot load (~230µs/op → ~100ms windows).
go test -run '^$' -bench '^BenchmarkBinaryRead$' -benchtime 500x -count 3 ./internal/store | tee -a "$out"
# Model open, mmap vs heap, small vs 16x-larger file. The mmap rows=64k row
# is the zero-copy acceptance pin: it must stay flat (~30µs metadata-only)
# while the heap rows=64k row scales with the file — if mapped opens start
# regressing toward heap-decode cost, aliasing broke somewhere.
go test -run '^$' -bench '^BenchmarkMmapModelOpen$' -benchtime 2000x -count 3 ./internal/store | tee -a "$out"
go test -run '^$' -bench '^BenchmarkHeapModelOpen$' -benchtime 100x -count 3 ./internal/store | tee -a "$out"
# Histogram record path: every request/flush/fsync observation pays this, so
# it is gated on ns/op like the rest AND must stay allocation-free — an
# alloc here would show up as GC pressure on the serving hot path.
go test -run '^$' -bench '^BenchmarkHistogramRecord$' -benchtime 2000000x -count 3 -benchmem ./internal/metrics | tee -a "$out"
if grep '^BenchmarkHistogramRecord' "$out" | awk '{ for (i=1; i<NF; i++) if ($(i+1) == "allocs/op" && $i != "0") exit 1 }'; then
    :
else
    echo "bench-gate: BenchmarkHistogramRecord allocates on the record path" >&2
    exit 1
fi
