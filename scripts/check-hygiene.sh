#!/usr/bin/env bash
# check-hygiene.sh — blocking CI gate against repository pollution: a `go
# test -c` artifact or a built command binary that slips into a commit bloats
# every clone forever (git history never shrinks). Fails when the index
# contains
#
#   - an executable file that is not a shell script under scripts/,
#   - a binary blob outside a testdata/ directory (tiny pinned test fixtures
#     like internal/core/testdata/model_v2.ptkm are the one legitimate kind
#     of tracked binary), or
#   - any file larger than 5 MB (even text; nothing in this repo should be
#     that big).
#
# Run it locally before pushing: scripts/check-hygiene.sh
set -euo pipefail
cd "$(dirname "$0")/.."

max_bytes=$((5 * 1024 * 1024))
fail=0

while IFS= read -r -d '' f; do
    # The index can list files deleted from the worktree mid-rebase; judge
    # only what exists.
    [ -f "$f" ] || continue

    size=$(wc -c < "$f")
    if [ "$size" -gt "$max_bytes" ]; then
        echo "hygiene: $f is $size bytes (limit $max_bytes); do not commit large files" >&2
        fail=1
    fi

    if [ -x "$f" ]; then
        case "$f" in
        scripts/*.sh) ;;
        *)
            echo "hygiene: $f is tracked with the executable bit set; only scripts/*.sh may be executable" >&2
            fail=1
            ;;
        esac
    fi

    # grep -I treats NUL-containing files as binary; empty files are text.
    if [ "$size" -gt 0 ] && ! grep -qI '' "$f"; then
        case "$f" in
        */testdata/* | testdata/*) ;;
        *)
            echo "hygiene: $f is a binary blob outside testdata/; build artifacts must not be committed" >&2
            fail=1
            ;;
        esac
    fi
done < <(git ls-files -z)

if [ "$fail" -ne 0 ]; then
    echo "hygiene: FAIL — untrack the files above (git rm --cached <file>) and extend .gitignore" >&2
    exit 1
fi
echo "hygiene: OK — no tracked executables, stray binaries, or oversized files"
