package synth

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestUniformShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := Uniform(rng, []int{20, 30, 40}, 500)
	if x.NNZ() != 500 {
		t.Fatalf("NNZ = %d want 500", x.NNZ())
	}
	if x.Order() != 3 {
		t.Fatalf("order = %d want 3", x.Order())
	}
	for _, v := range x.Values() {
		if v < 0 || v >= 1 {
			t.Fatalf("value %v outside [0,1)", v)
		}
	}
	// All coordinates must be distinct.
	seen := make(map[[3]int]bool)
	for e := 0; e < x.NNZ(); e++ {
		var k [3]int
		copy(k[:], x.Index(e))
		if seen[k] {
			t.Fatalf("duplicate coordinate %v", k)
		}
		seen[k] = true
	}
}

func TestUniformRejectsOverfull(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when nnz exceeds cells")
		}
	}()
	Uniform(rand.New(rand.NewSource(2)), []int{2, 2}, 5)
}

func TestUniformDeterministic(t *testing.T) {
	a := Uniform(rand.New(rand.NewSource(3)), []int{10, 10}, 50)
	b := Uniform(rand.New(rand.NewSource(3)), []int{10, 10}, 50)
	if a.NNZ() != b.NNZ() {
		t.Fatal("same seed must give same tensor")
	}
	for e := 0; e < a.NNZ(); e++ {
		if a.Value(e) != b.Value(e) {
			t.Fatal("same seed must give same values")
		}
	}
}

// A planted low-rank tensor must be recoverable by a rank-matched P-Tucker
// run to far better accuracy than its own noise floor would suggest for a
// random tensor.
func TestPlantedTuckerIsLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := PlantedTucker(rng, []int{15, 15, 15}, []int{2, 2, 2}, 600, 0.01)
	cfg := core.Defaults([]int{2, 2, 2})
	cfg.MaxIters = 10
	cfg.Threads = 2
	m, err := core.Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fit := m.Fit(x); fit < 0.9 {
		t.Fatalf("planted tensor should be fittable: fit = %v", fit)
	}
}

func TestSmoothLowRankRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := SmoothLowRank(rng, []int{40, 40, 3}, 3, 0.1)
	want := int(0.1 * 40 * 40 * 3)
	if x.NNZ() != want {
		t.Fatalf("NNZ = %d want %d", x.NNZ(), want)
	}
	for _, v := range x.Values() {
		if v < 0 || v > 1 {
			t.Fatalf("value %v outside [0,1]", v)
		}
	}
}

func TestMovieLensStructure(t *testing.T) {
	cfg := DefaultMovieLensConfig()
	cfg.Users, cfg.Movies, cfg.NNZ = 100, 60, 3000
	d := MovieLens(cfg)
	if d.X.NNZ() != 3000 {
		t.Fatalf("NNZ = %d want 3000", d.X.NNZ())
	}
	if got := d.X.Dims(); got[0] != 100 || got[1] != 60 || got[2] != 21 || got[3] != 24 {
		t.Fatalf("dims = %v", got)
	}
	if len(d.MovieGenre) != 60 || len(d.UserPref) != 100 {
		t.Fatal("ground-truth labels missing")
	}
	for _, g := range d.MovieGenre {
		if g < 0 || g >= cfg.Genres {
			t.Fatalf("movie genre %d out of range", g)
		}
	}
	if len(d.Relations) != cfg.Genres {
		t.Fatalf("planted %d relations want %d", len(d.Relations), cfg.Genres)
	}
	for _, rel := range d.Relations {
		if len(rel.PeakYears) == 0 || len(rel.PeakHours) == 0 {
			t.Fatal("relation without peaks")
		}
	}
	for _, v := range d.X.Values() {
		if v < 0 || v > 1 {
			t.Fatalf("rating %v outside [0,1]", v)
		}
	}
}

func TestMovieLensGenreSignal(t *testing.T) {
	// Ratings of preferred-genre pairs must be higher on average than
	// cross-genre ratings — the signal concept discovery depends on.
	cfg := DefaultMovieLensConfig()
	cfg.Users, cfg.Movies, cfg.NNZ, cfg.Noise = 80, 48, 4000, 0.0
	d := MovieLens(cfg)
	var prefSum, crossSum float64
	var prefN, crossN int
	for e := 0; e < d.X.NNZ(); e++ {
		idx := d.X.Index(e)
		u, m := idx[0], idx[1]
		if d.UserPref[u] == d.MovieGenre[m] {
			prefSum += d.X.Value(e)
			prefN++
		} else {
			crossSum += d.X.Value(e)
			crossN++
		}
	}
	if prefN == 0 || crossN == 0 {
		t.Fatal("both rating populations must be present")
	}
	if prefSum/float64(prefN) <= crossSum/float64(crossN) {
		t.Fatalf("no genre signal: pref mean %v <= cross mean %v",
			prefSum/float64(prefN), crossSum/float64(crossN))
	}
}

func TestMovieLensBadGenres(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad genre count")
		}
	}()
	cfg := DefaultMovieLensConfig()
	cfg.Genres = 99
	MovieLens(cfg)
}

func TestParseScale(t *testing.T) {
	if s, err := ParseScale(""); err != nil || s != ScaleSmall {
		t.Fatal("empty scale must default to small")
	}
	if s, err := ParseScale("full"); err != nil || s != ScaleFull {
		t.Fatal("full scale must parse")
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("unknown scale must error")
	}
}

func TestDatasetsRegistry(t *testing.T) {
	ds := Datasets(ScaleSmall, 7)
	if len(ds) != 4 {
		t.Fatalf("registry has %d datasets want 4", len(ds))
	}
	wantOrders := []int{4, 4, 4, 3}
	for i, d := range ds {
		if d.X.Order() != wantOrders[i] {
			t.Fatalf("%s: order %d want %d", d.Name, d.X.Order(), wantOrders[i])
		}
		if d.X.NNZ() == 0 {
			t.Fatalf("%s: empty", d.Name)
		}
		if len(d.Ranks) != d.X.Order() {
			t.Fatalf("%s: %d ranks for order %d", d.Name, len(d.Ranks), d.X.Order())
		}
		if d.X.MinValue() < 0 || d.X.MaxValue() > 1 {
			t.Fatalf("%s: values outside [0,1]", d.Name)
		}
	}
}
