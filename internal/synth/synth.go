// Package synth generates the synthetic and simulated workloads of the
// evaluation: the uniform random tensors of Section IV-B, planted low-rank
// Tucker tensors for recovery tests, and reduced-scale stand-ins for the four
// real-world datasets of Table IV (Yahoo-music, MovieLens, sea-wave video,
// 'Lena' image), which are not redistributable here. The MovieLens stand-in
// plants genre clusters and (year, hour) preference relations so the
// discovery experiments (Tables V and VI) have a checkable ground truth —
// something the real data cannot provide.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// Uniform returns a sparse tensor with nnz distinct random coordinates and
// values uniform in [0,1), the Section IV-B protocol ("random tensors of
// size I1=...=IN with real-valued entries between 0 and 1").
func Uniform(rng *rand.Rand, dims []int, nnz int) *tensor.Coord {
	t := tensor.NewCoord(dims)
	cells := tensor.NumCells(dims)
	if float64(nnz) > cells {
		panic(fmt.Sprintf("synth: nnz %d exceeds cell count %.0f", nnz, cells))
	}
	idx := make([]int, len(dims))
	// Dense-ish tensors use rejection with a seen-set; very sparse ones
	// (the common case at scale) collide so rarely the set stays small.
	seen := make(map[string]struct{}, nnz)
	key := make([]byte, 0, len(dims)*4)
	for t.NNZ() < nnz {
		key = key[:0]
		for k, d := range dims {
			idx[k] = rng.Intn(d)
			key = appendInt(key, idx[k])
		}
		s := string(key)
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		t.MustAppend(idx, rng.Float64())
	}
	return t
}

func appendInt(b []byte, v int) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), ',')
}

// PlantedTucker samples nnz observed entries from a random Tucker model of
// the given ranks plus Gaussian noise with the given standard deviation.
// Such tensors are exactly recoverable by rank-matched sparse factorization,
// making them the right workload for accuracy experiments.
func PlantedTucker(rng *rand.Rand, dims, ranks []int, nnz int, noise float64) *tensor.Coord {
	n := len(dims)
	factors := make([]*mat.Dense, n)
	for m := 0; m < n; m++ {
		a := mat.NewDense(dims[m], ranks[m])
		for i := range a.Data() {
			a.Data()[i] = rng.Float64()
		}
		factors[m] = a
	}
	coreDims := append([]int(nil), ranks...)
	g := tensor.NewDenseTensor(coreDims)
	for i := range g.Data() {
		g.Data()[i] = rng.Float64()
	}

	t := tensor.NewCoord(dims)
	idx := make([]int, n)
	beta := make([]int, n)
	seen := make(map[string]struct{}, nnz)
	key := make([]byte, 0, n*4)
	for t.NNZ() < nnz {
		key = key[:0]
		for k, d := range dims {
			idx[k] = rng.Intn(d)
			key = appendInt(key, idx[k])
		}
		s := string(key)
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		// Evaluate the planted model at idx.
		var v float64
		for off, gv := range g.Data() {
			g.IndexOf(off, beta)
			p := gv
			for k := 0; k < n; k++ {
				p *= factors[k].At(idx[k], beta[k])
			}
			v += p
		}
		t.MustAppend(idx, v+noise*rng.NormFloat64())
	}
	return t
}

// SmoothLowRank returns a sparse sample of a smooth separable signal
// (products of sinusoids), the stand-in for the video and image tensors of
// Table IV: natural images/videos are approximately low-rank and smooth, and
// the paper samples 10% of their cells. sampleFrac is the fraction of cells
// observed.
func SmoothLowRank(rng *rand.Rand, dims []int, rank int, sampleFrac float64) *tensor.Coord {
	n := len(dims)
	// Random separable components: value = Σ_r ∏_m sin(ω x + φ) rescaled.
	omega := make([][]float64, rank)
	phase := make([][]float64, rank)
	for r := 0; r < rank; r++ {
		omega[r] = make([]float64, n)
		phase[r] = make([]float64, n)
		for m := 0; m < n; m++ {
			omega[r][m] = (0.5 + rng.Float64()*2) * math.Pi
			phase[r][m] = rng.Float64() * 2 * math.Pi
		}
	}
	value := func(idx []int) float64 {
		var v float64
		for r := 0; r < rank; r++ {
			p := 1.0
			for m := 0; m < n; m++ {
				x := float64(idx[m]) / float64(dims[m])
				p *= math.Sin(omega[r][m]*x + phase[r][m])
			}
			v += p
		}
		// Rescale into [0,1] as the paper normalizes its real tensors.
		return (v/float64(rank) + 1) / 2
	}

	t := tensor.NewCoord(dims)
	idx := make([]int, n)
	target := int(sampleFrac * tensor.NumCells(dims))
	if target < 1 {
		target = 1
	}
	seen := make(map[string]struct{}, target)
	key := make([]byte, 0, n*4)
	for t.NNZ() < target {
		key = key[:0]
		for k, d := range dims {
			idx[k] = rng.Intn(d)
			key = appendInt(key, idx[k])
		}
		s := string(key)
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		t.MustAppend(idx, value(idx))
	}
	return t
}
