package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// MovieLensConfig sizes the MovieLens-like rating tensor. The real dataset of
// Table IV is a 4-order (user, movie, year, hour; rating) tensor of shape
// (138K, 27K, 21, 24) with 20M observations; the default stand-in keeps the
// same order, mode semantics, and value range at a scale one CPU core can
// factorize in seconds.
type MovieLensConfig struct {
	Users, Movies, Years, Hours int
	Genres                      int
	NNZ                         int
	Noise                       float64
	Seed                        int64
}

// DefaultMovieLensConfig returns the reduced-scale stand-in configuration.
func DefaultMovieLensConfig() MovieLensConfig {
	return MovieLensConfig{
		Users: 600, Movies: 240, Years: 21, Hours: 24,
		Genres: 6, NNZ: 24000, Noise: 0.05, Seed: 1,
	}
}

// Relation is a planted association between a genre and preferred slices of
// the temporal modes, the ground truth behind Table VI's discoveries
// ("Drama-Hour", "Comedy-Year", "Year-Hour").
type Relation struct {
	Genre     int
	PeakYears []int
	PeakHours []int
}

// MovieLensData is a simulated rating tensor with its planted structure.
type MovieLensData struct {
	// X is the (user, movie, year, hour) tensor with ratings in [0,1].
	X *tensor.Coord
	// MovieGenre assigns every movie its planted genre — the ground truth
	// for concept discovery (Table V).
	MovieGenre []int
	// UserPref assigns every user a preferred genre.
	UserPref []int
	// GenreNames provides display names for the planted genres.
	GenreNames []string
	// Relations lists the planted (genre, years, hours) preference peaks —
	// the ground truth for relation discovery (Table VI).
	Relations []Relation
}

var genrePool = []string{
	"Thriller", "Comedy", "Drama", "Action", "Romance",
	"Sci-Fi", "Horror", "Documentary", "Animation", "Musical",
}

// MovieLens generates the simulated rating tensor. Ratings follow
//
//	r = 0.15 + 0.7·aff(user,genre(movie))·year(genre,y)·hour(genre,h) + noise
//
// clamped to [0,1]: users rate movies of their preferred genre highly, and
// each genre carries a planted (year, hour) preference profile, giving the
// factorization distinct movie clusters (concepts) and strong core entries
// linking genre columns to year/hour columns (relations).
func MovieLens(cfg MovieLensConfig) *MovieLensData {
	if cfg.Genres < 1 || cfg.Genres > len(genrePool) {
		panic(fmt.Sprintf("synth: genres must be in [1,%d]", len(genrePool)))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &MovieLensData{
		X:          tensor.NewCoord([]int{cfg.Users, cfg.Movies, cfg.Years, cfg.Hours}),
		MovieGenre: make([]int, cfg.Movies),
		UserPref:   make([]int, cfg.Users),
		GenreNames: append([]string(nil), genrePool[:cfg.Genres]...),
	}
	for m := range d.MovieGenre {
		d.MovieGenre[m] = m % cfg.Genres // balanced genre assignment
	}
	for u := range d.UserPref {
		d.UserPref[u] = rng.Intn(cfg.Genres)
	}

	// Plant per-genre year/hour preference profiles: a contiguous block of
	// years and a set of hours with elevated weight.
	yearW := make([][]float64, cfg.Genres)
	hourW := make([][]float64, cfg.Genres)
	for g := 0; g < cfg.Genres; g++ {
		yw := make([]float64, cfg.Years)
		hw := make([]float64, cfg.Hours)
		for i := range yw {
			yw[i] = 0.35
		}
		for i := range hw {
			hw[i] = 0.35
		}
		rel := Relation{Genre: g}
		yStart := rng.Intn(cfg.Years - 2)
		for y := yStart; y < yStart+3 && y < cfg.Years; y++ {
			yw[y] = 1
			rel.PeakYears = append(rel.PeakYears, y)
		}
		for i := 0; i < 4; i++ {
			h := rng.Intn(cfg.Hours)
			if hw[h] == 1 {
				continue
			}
			hw[h] = 1
			rel.PeakHours = append(rel.PeakHours, h)
		}
		yearW[g] = yw
		hourW[g] = hw
		d.Relations = append(d.Relations, rel)
	}

	// Affinity of a user for a genre.
	aff := func(u, g int) float64 {
		if d.UserPref[u] == g {
			return 1
		}
		return 0.25
	}

	idx := make([]int, 4)
	seen := make(map[string]struct{}, cfg.NNZ)
	key := make([]byte, 0, 16)
	for d.X.NNZ() < cfg.NNZ {
		u := rng.Intn(cfg.Users)
		m := rng.Intn(cfg.Movies)
		g := d.MovieGenre[m]
		// Users mostly rate within their preferred genre; timestamps follow
		// the genre's planted profile more often than not.
		if d.UserPref[u] != g && rng.Float64() < 0.5 {
			continue
		}
		var y, h int
		if rel := d.Relations[g]; len(rel.PeakYears) > 0 && rng.Float64() < 0.6 {
			y = rel.PeakYears[rng.Intn(len(rel.PeakYears))]
		} else {
			y = rng.Intn(cfg.Years)
		}
		if rel := d.Relations[g]; len(rel.PeakHours) > 0 && rng.Float64() < 0.6 {
			h = rel.PeakHours[rng.Intn(len(rel.PeakHours))]
		} else {
			h = rng.Intn(cfg.Hours)
		}
		idx[0], idx[1], idx[2], idx[3] = u, m, y, h
		key = key[:0]
		for _, i := range idx {
			key = appendInt(key, i)
		}
		s := string(key)
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		r := 0.15 + 0.7*aff(u, g)*yearW[g][y]*hourW[g][h] + cfg.Noise*rng.NormFloat64()
		if r < 0 {
			r = 0
		}
		if r > 1 {
			r = 1
		}
		d.X.MustAppend(idx, r)
	}
	return d
}
