package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Scale selects the size regime of the simulated dataset registry.
type Scale int

const (
	// ScaleSmall is the default CI/laptop regime: same orders, mode
	// semantics, aspect ratios and value range as Table IV, dimensionalities
	// reduced so every method finishes in seconds on one core.
	ScaleSmall Scale = iota
	// ScaleFull approaches the paper's Table IV shapes. Running the full
	// suite at this scale takes hours and is intended for a real multi-core
	// host.
	ScaleFull
)

// ParseScale converts a CLI string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "", "small":
		return ScaleSmall, nil
	case "full":
		return ScaleFull, nil
	default:
		return 0, fmt.Errorf("synth: unknown scale %q (want small or full)", s)
	}
}

// Dataset is a named simulated stand-in for one of the paper's real-world
// tensors (Table IV).
type Dataset struct {
	// Name matches the paper's dataset naming.
	Name string
	// X is the observed tensor, values normalized to [0,1].
	X *tensor.Coord
	// Ranks is the core dimensionality used in the paper's experiments for
	// this dataset (Table IV "Rank" column), one per mode.
	Ranks []int
}

// Datasets instantiates the four simulated real-world stand-ins at the given
// scale with a fixed seed, mirroring Table IV:
//
//	Yahoo-music: 4-order (1M, 625K, 133, 24), 252M nnz, rank 10
//	MovieLens:   4-order (138K, 27K, 21, 24),  20M nnz, rank 10
//	Video(Wave): 4-order (112, 160, 3, 32),   160K nnz, rank  3
//	Image(Lena): 3-order (256, 256, 3),        20K nnz, rank  3
func Datasets(scale Scale, seed int64) []Dataset {
	rng := rand.New(rand.NewSource(seed))
	var (
		yahooDims []int
		yahooNNZ  int
		movieCfg  = DefaultMovieLensConfig()
		videoDims = []int{112, 160, 3, 32}
		videoFrac = 0.02
		imageDims = []int{256, 256, 3}
		imageFrac = 0.1
		yahooRank = 4
		movieRank = 4
	)
	switch scale {
	case ScaleFull:
		yahooDims = []int{100000, 62500, 133, 24}
		yahooNNZ = 2_520_000
		movieCfg.Users, movieCfg.Movies, movieCfg.NNZ = 13800, 2700, 200000
		videoFrac = 0.1
		yahooRank, movieRank = 10, 10
	default:
		yahooDims = []int{4000, 2500, 50, 24}
		yahooNNZ = 40000
	}

	yahoo := PlantedTucker(rng, yahooDims, []int{yahooRank, yahooRank, 3, 3}, yahooNNZ, 0.05)
	yahoo.Normalize()
	movieCfg.Seed = seed + 1
	movie := MovieLens(movieCfg)
	video := SmoothLowRank(rand.New(rand.NewSource(seed+2)), videoDims, 3, videoFrac)
	image := SmoothLowRank(rand.New(rand.NewSource(seed+3)), imageDims, 3, imageFrac)

	return []Dataset{
		{Name: "Yahoo-music(sim)", X: yahoo, Ranks: []int{yahooRank, yahooRank, yahooRank, yahooRank}},
		{Name: "MovieLens(sim)", X: movie.X, Ranks: []int{movieRank, movieRank, movieRank, movieRank}},
		{Name: "Video-Wave(sim)", X: video, Ranks: []int{3, 3, 3, 3}},
		{Name: "Image-Lena(sim)", X: image, Ranks: []int{3, 3, 3}},
	}
}
