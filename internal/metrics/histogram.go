package metrics

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket concurrent histogram. Buckets are cumulative
// upper bounds in the Prometheus sense (`le`): an observation v lands in the
// first bucket whose bound is >= v, or in the implicit +Inf overflow bucket.
//
// The record path is lock-free and allocation-free: one binary search over
// the (immutable) bounds, one atomic increment, and a CAS loop folding the
// value into a float64 sum stored as uint64 bits. Snapshots taken while
// records are in flight are internally consistent enough for exposition —
// each counter is atomically read, and the reconciliation invariant
// (sum of buckets == count) holds exactly once writers quiesce.
type Histogram struct {
	bounds []float64       // strictly increasing upper bounds, immutable
	counts []atomic.Uint64 // len(bounds)+1; last entry is the +Inf bucket
	sum    atomic.Uint64   // float64 bits of the running sum of observations
}

// NewHistogram returns a histogram over the given upper bounds, which must
// be non-empty, finite, and strictly increasing. The bounds slice is copied.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	for i, v := range b {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			panic("metrics: histogram bounds must be finite")
		}
		if i > 0 && v <= b[i-1] {
			panic("metrics: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// ExponentialBounds returns n upper bounds start, start*factor,
// start*factor^2, ... — the usual shape for latency and size buckets.
func ExponentialBounds(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExponentialBounds needs start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// DefaultDurationBounds spans 10µs to ~1.3s in doubling buckets — wide
// enough for both sub-millisecond coalescer flushes and multi-hundred-ms
// fsyncs; anything slower lands in +Inf and is still counted and summed.
var DefaultDurationBounds = ExponentialBounds(10e-6, 2, 18)

// NewDurationHistogram returns a histogram over DefaultDurationBounds,
// recording durations in seconds.
func NewDurationHistogram() *Histogram { return NewHistogram(DefaultDurationBounds) }

// Observe records one value. Safe for concurrent use; never allocates.
func (h *Histogram) Observe(v float64) {
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// HistogramSnapshot is a point-in-time copy of a histogram's state. Counts
// are per-bucket (not cumulative); the last entry is the +Inf bucket.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Snapshot copies the current bucket counts and sum. Bounds aliases the
// histogram's immutable bounds slice; Counts is freshly allocated.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}
