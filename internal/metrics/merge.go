package metrics

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
)

// Merger assembles one parse-clean exposition out of several independently
// rendered fragments that may declare the same families. ParseExposition
// (rightly) rejects a family declared twice, so a multi-tenant /metrics —
// where every tenant renders the same ptucker_* families under its own
// constant model label — cannot just concatenate per-tenant output. The
// merger groups by family instead: each family's HELP/TYPE header is
// emitted once, in first-seen order, with every fragment's sample lines
// concatenated beneath it in Add order.
type Merger struct {
	order  []string
	byName map[string]*mergedFamily
}

type mergedFamily struct {
	help, kind string
	samples    []string
}

// NewMerger returns an empty exposition merger.
func NewMerger() *Merger {
	return &Merger{byName: make(map[string]*mergedFamily)}
}

// Add folds one exposition fragment (as rendered by Expo) into the merger.
// Fragments must be well-formed — every sample preceded by its family's
// HELP and TYPE — and re-declarations of a family must agree on its type.
func (m *Merger) Add(frag []byte) error {
	var cur *mergedFamily
	var pendingHelp string
	var pendingName string
	sc := bufio.NewScanner(bytes.NewReader(frag))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok {
				return fmt.Errorf("metrics: merge: HELP without text: %q", line)
			}
			pendingName, pendingHelp = name, help
			cur = nil
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 || parts[0] != pendingName {
				return fmt.Errorf("metrics: merge: TYPE not paired with HELP: %q", line)
			}
			fam := m.byName[pendingName]
			if fam == nil {
				fam = &mergedFamily{help: pendingHelp, kind: parts[1]}
				m.byName[pendingName] = fam
				m.order = append(m.order, pendingName)
			} else if fam.kind != parts[1] {
				return fmt.Errorf("metrics: merge: family %s declared as %s and %s",
					pendingName, fam.kind, parts[1])
			}
			cur = fam
			pendingName, pendingHelp = "", ""
		case strings.HasPrefix(line, "#"):
			continue
		default:
			if cur == nil {
				return fmt.Errorf("metrics: merge: sample before any family header: %q", line)
			}
			cur.samples = append(cur.samples, line)
		}
	}
	return sc.Err()
}

// WriteTo renders the merged exposition: families in first-seen order, each
// declared once.
func (m *Merger) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, name := range m.order {
		fam := m.byName[name]
		c, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, fam.help, name, fam.kind)
		n += int64(c)
		if err != nil {
			return n, err
		}
		for _, s := range fam.samples {
			c, err := fmt.Fprintln(w, s)
			n += int64(c)
			if err != nil {
				return n, err
			}
		}
	}
	return n, nil
}
