package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.005, 0.005, 0.5} {
		h.Observe(v)
	}
	// Exact boundary lands in its own bucket (le is inclusive).
	h.Observe(0.01)
	s := h.Snapshot()
	want := []uint64{1, 3, 0, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-0.5205) > 1e-12 {
		t.Fatalf("sum = %v, want 0.5205", s.Sum)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram([]float64{0.5, 2})
	h.ObserveDuration(time.Second)
	s := h.Snapshot()
	if s.Counts[1] != 1 || s.Count != 1 || s.Sum != 1 {
		t.Fatalf("snapshot after 1s observation: %+v", s)
	}
}

func TestExponentialBounds(t *testing.T) {
	b := ExponentialBounds(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", b, want)
		}
	}
	for _, f := range []func(){
		func() { ExponentialBounds(0, 2, 4) },
		func() { ExponentialBounds(1, 1, 4) },
		func() { ExponentialBounds(1, 2, 0) },
		func() { NewHistogram(nil) },
		func() { NewHistogram([]float64{2, 1}) },
		func() { NewHistogram([]float64{math.Inf(1)}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid construction did not panic")
				}
			}()
			f()
		}()
	}
}

// TestHistogramConcurrency drives concurrent Observe calls against a
// concurrent snapshot reader (the exposition path) under -race, then checks
// the totals reconcile exactly once writers quiesce.
func TestHistogramConcurrency(t *testing.T) {
	h := NewDurationHistogram()
	const goroutines, perG = 8, 10000
	values := []float64{15e-6, 200e-6, 3e-3, 0.05, 2.5}
	var writers, scraper sync.WaitGroup
	stop := make(chan struct{})
	scraper.Add(1)
	go func() { // concurrent scraper
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var cum uint64
			for _, c := range s.Counts {
				cum += c
			}
			if cum != s.Count {
				t.Error("snapshot count does not equal the sum of its buckets")
				return
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < perG; i++ {
				h.Observe(values[(g+i)%len(values)])
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	scraper.Wait()

	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*perG)
	}
	var wantSum float64
	for i := 0; i < goroutines*perG; i++ {
		wantSum += values[i%len(values)]
	}
	// The CAS-loop sum is order-dependent floating point; allow rounding.
	if math.Abs(s.Sum-wantSum) > 1e-6*wantSum {
		t.Fatalf("sum = %v, want ~%v", s.Sum, wantSum)
	}
}

func TestHistogramGoldenExposition(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.005, 0.005, 0.5} {
		h.Observe(v)
	}
	var sb strings.Builder
	e := NewExpo(&sb)
	e.Histogram("ptucker_test_duration_seconds", "Test latencies.", h)
	want := `# HELP ptucker_test_duration_seconds Test latencies.
# TYPE ptucker_test_duration_seconds histogram
ptucker_test_duration_seconds_bucket{le="0.001"} 1
ptucker_test_duration_seconds_bucket{le="0.01"} 3
ptucker_test_duration_seconds_bucket{le="0.1"} 3
ptucker_test_duration_seconds_bucket{le="+Inf"} 4
ptucker_test_duration_seconds_sum 0.5105
ptucker_test_duration_seconds_count 4
`
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestHistogramVecGoldenExposition(t *testing.T) {
	h0 := NewHistogram([]float64{1, 8})
	h1 := NewHistogram([]float64{1, 8})
	h0.Observe(1)
	h1.Observe(4)
	h1.Observe(100)
	var sb strings.Builder
	e := NewExpo(&sb)
	e.HistogramVec("ptucker_test_flush_size", "Flush sizes.", "shard", func(sample func(string, *Histogram)) {
		sample("0", h0)
		sample("1", h1)
	})
	want := `# HELP ptucker_test_flush_size Flush sizes.
# TYPE ptucker_test_flush_size histogram
ptucker_test_flush_size_bucket{shard="0",le="1"} 1
ptucker_test_flush_size_bucket{shard="0",le="8"} 1
ptucker_test_flush_size_bucket{shard="0",le="+Inf"} 1
ptucker_test_flush_size_sum{shard="0"} 1
ptucker_test_flush_size_count{shard="0"} 1
ptucker_test_flush_size_bucket{shard="1",le="1"} 0
ptucker_test_flush_size_bucket{shard="1",le="8"} 1
ptucker_test_flush_size_bucket{shard="1",le="+Inf"} 2
ptucker_test_flush_size_sum{shard="1"} 104
ptucker_test_flush_size_count{shard="1"} 2
`
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestParseExpositionRoundTrip(t *testing.T) {
	h := NewDurationHistogram()
	h.Observe(0.002)
	h.Observe(7)
	var sb strings.Builder
	e := NewExpo(&sb)
	e.Counter("ptucker_things_total", "Things.", 42)
	e.Gauge("ptucker_level", "Level.", 0.5)
	e.CounterFloat("ptucker_pause_seconds_total", "Pause.", 1.25)
	e.Histogram("ptucker_op_duration_seconds", "Op latency.", h)
	e.HistogramVec("ptucker_flush_size", "Flush size.", "shard", func(sample func(string, *Histogram)) {
		hs := NewHistogram([]float64{1, 2})
		hs.Observe(2)
		sample("0", hs)
	})
	fams, err := ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ParseExposition: %v\n%s", err, sb.String())
	}
	for name, kind := range map[string]string{
		"ptucker_things_total":        "counter",
		"ptucker_level":               "gauge",
		"ptucker_pause_seconds_total": "counter",
		"ptucker_op_duration_seconds": "histogram",
		"ptucker_flush_size":          "histogram",
	} {
		f := fams[name]
		if f == nil || f.Type != kind {
			t.Fatalf("family %s: got %+v, want type %s", name, f, kind)
		}
		if f.Help == "" || f.Samples == 0 {
			t.Fatalf("family %s lacks help or samples: %+v", name, f)
		}
	}
}

func TestParseExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"counter without _total": "# HELP ptucker_x X.\n# TYPE ptucker_x counter\nptucker_x 1\n",
		"gauge with _total":      "# HELP ptucker_x_total X.\n# TYPE ptucker_x_total gauge\nptucker_x_total 1\n",
		"reserved suffix":        "# HELP ptucker_x_count X.\n# TYPE ptucker_x_count gauge\nptucker_x_count 1\n",
		"bad family name":        "# HELP other_x X.\n# TYPE other_x gauge\nother_x 1\n",
		"sample before family":   "ptucker_x 1\n",
		"type without help":      "# TYPE ptucker_x gauge\nptucker_x 1\n",
		"negative counter":       "# HELP ptucker_x_total X.\n# TYPE ptucker_x_total counter\nptucker_x_total -1\n",
		"foreign sample":         "# HELP ptucker_x X.\n# TYPE ptucker_x gauge\nptucker_y 1\n",
		"bad label name":         "# HELP ptucker_x X.\n# TYPE ptucker_x gauge\nptucker_x{BadLabel=\"1\"} 1\n",
		"non-cumulative buckets": "# HELP ptucker_x X.\n# TYPE ptucker_x histogram\nptucker_x_bucket{le=\"1\"} 5\nptucker_x_bucket{le=\"+Inf\"} 3\nptucker_x_sum 1\nptucker_x_count 3\n",
		"count mismatch":         "# HELP ptucker_x X.\n# TYPE ptucker_x histogram\nptucker_x_bucket{le=\"1\"} 1\nptucker_x_bucket{le=\"+Inf\"} 2\nptucker_x_sum 1\nptucker_x_count 3\n",
		"histogram missing sum":  "# HELP ptucker_x X.\n# TYPE ptucker_x histogram\nptucker_x_bucket{le=\"1\"} 1\nptucker_x_bucket{le=\"+Inf\"} 1\nptucker_x_count 1\n",
		"empty exposition":       "",
	}
	for name, in := range cases {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted:\n%s", name, in)
		}
	}
}

// BenchmarkHistogramRecord is gated by scripts/bench-gate.sh, which asserts
// 0 allocs/op: the record path must stay allocation-free.
func BenchmarkHistogramRecord(b *testing.B) {
	h := NewDurationHistogram()
	values := [...]float64{15e-6, 200e-6, 3e-3, 0.05, 2.5}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(values[i%len(values)])
			i++
		}
	})
}
