package metrics

import (
	"fmt"
	"io"
	"strconv"
)

// Expo writes the Prometheus text exposition format (version 0.0.4). It is
// the single registration point for every metric the project exports: each
// Counter/Gauge call emits the metric's HELP/TYPE header and its samples in
// one place, which is what lets the metricnames analyzer (internal/analysis/
// metricnames, run by ptucker-vet) statically enforce the naming contract —
// names match ^ptucker_[a-z0-9_]+(_total)?$, counters end in _total, gauges
// do not, labels are snake_case, duration histograms end in a unit suffix
// (_seconds, _bytes, or _size), and the histogram-series suffixes _bucket/
// _sum/_count are reserved (Histogram emits them itself).
//
// Sample values keep their native width: counters are int64 (an int64
// counter formatted through float64 would corrupt above 2^53), gauges pick
// GaugeInt or Gauge (float, shortest round-trip formatting) per metric.
type Expo struct {
	w io.Writer
}

// NewExpo returns an exposition writer over w.
func NewExpo(w io.Writer) *Expo { return &Expo{w: w} }

func (e *Expo) header(name, help, kind string) {
	fmt.Fprintf(e.w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(e.w, "# TYPE %s %s\n", name, kind)
}

// Counter emits one unlabeled counter.
func (e *Expo) Counter(name, help string, value int64) {
	e.header(name, help, "counter")
	fmt.Fprintf(e.w, "%s %d\n", name, value)
}

// Gauge emits one unlabeled float gauge.
func (e *Expo) Gauge(name, help string, value float64) {
	e.header(name, help, "gauge")
	fmt.Fprintf(e.w, "%s %g\n", name, value)
}

// GaugeInt emits one unlabeled integer gauge.
func (e *Expo) GaugeInt(name, help string, value int64) {
	e.header(name, help, "gauge")
	fmt.Fprintf(e.w, "%s %d\n", name, value)
}

// CounterVec emits one counter family with a single label dimension: emit
// is called with a sample function the caller invokes once per label value,
// in the order samples should appear (sort label values for a stable
// scrape).
func (e *Expo) CounterVec(name, help, label string, emit func(sample func(labelValue string, value int64))) {
	e.header(name, help, "counter")
	emit(func(labelValue string, value int64) {
		fmt.Fprintf(e.w, "%s{%s=%q} %d\n", name, label, labelValue, value)
	})
}

// GaugeIntVec emits one integer gauge family with a single label dimension.
func (e *Expo) GaugeIntVec(name, help, label string, emit func(sample func(labelValue string, value int64))) {
	e.header(name, help, "gauge")
	emit(func(labelValue string, value int64) {
		fmt.Fprintf(e.w, "%s{%s=%q} %d\n", name, label, labelValue, value)
	})
}

// CounterFloat emits one unlabeled float counter, for monotone quantities
// that are natively fractional (e.g. cumulative GC pause seconds). Integer
// counters must use Counter to keep full int64 precision.
func (e *Expo) CounterFloat(name, help string, value float64) {
	e.header(name, help, "counter")
	fmt.Fprintf(e.w, "%s %s\n", name, formatFloat(value))
}

// Histogram emits one unlabeled histogram: cumulative `_bucket` series per
// bound plus `le="+Inf"`, then `_sum` and `_count`.
func (e *Expo) Histogram(name, help string, h *Histogram) {
	e.header(name, help, "histogram")
	e.histSeries(name, "", "", h)
}

// HistogramVec emits one histogram family with a single label dimension;
// emit is called with a sample function the caller invokes once per label
// value, in the order series should appear.
func (e *Expo) HistogramVec(name, help, label string, emit func(sample func(labelValue string, h *Histogram))) {
	e.header(name, help, "histogram")
	emit(func(labelValue string, h *Histogram) {
		e.histSeries(name, label, labelValue, h)
	})
}

func (e *Expo) histSeries(name, label, labelValue string, h *Histogram) {
	s := h.Snapshot()
	prefix := ""
	if label != "" {
		prefix = fmt.Sprintf("%s=%q,", label, labelValue)
	}
	var cum uint64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(e.w, "%s_bucket{%sle=%q} %d\n", name, prefix, formatFloat(b), cum)
	}
	cum += s.Counts[len(s.Bounds)]
	fmt.Fprintf(e.w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, prefix, cum)
	if label != "" {
		fmt.Fprintf(e.w, "%s_sum{%s=%q} %s\n", name, label, labelValue, formatFloat(s.Sum))
		fmt.Fprintf(e.w, "%s_count{%s=%q} %d\n", name, label, labelValue, cum)
	} else {
		fmt.Fprintf(e.w, "%s_sum %s\n", name, formatFloat(s.Sum))
		fmt.Fprintf(e.w, "%s_count %d\n", name, cum)
	}
}

// formatFloat renders a float with the shortest representation that round-
// trips, matching how `le` bounds are conventionally written (0.001, not
// 1e-03, stays as Go chooses — what matters is that bounds are stable and
// parse back to the same float).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
