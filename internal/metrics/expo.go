package metrics

import (
	"fmt"
	"io"
)

// Expo writes the Prometheus text exposition format (version 0.0.4). It is
// the single registration point for every metric the project exports: each
// Counter/Gauge call emits the metric's HELP/TYPE header and its samples in
// one place, which is what lets the metricnames analyzer (internal/analysis/
// metricnames, run by ptucker-vet) statically enforce the naming contract —
// names match ^ptucker_[a-z0-9_]+(_total)?$, counters end in _total, gauges
// do not, and labels are snake_case.
//
// Sample values keep their native width: counters are int64 (an int64
// counter formatted through float64 would corrupt above 2^53), gauges pick
// GaugeInt or Gauge (float, shortest round-trip formatting) per metric.
type Expo struct {
	w io.Writer
}

// NewExpo returns an exposition writer over w.
func NewExpo(w io.Writer) *Expo { return &Expo{w: w} }

func (e *Expo) header(name, help, kind string) {
	fmt.Fprintf(e.w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(e.w, "# TYPE %s %s\n", name, kind)
}

// Counter emits one unlabeled counter.
func (e *Expo) Counter(name, help string, value int64) {
	e.header(name, help, "counter")
	fmt.Fprintf(e.w, "%s %d\n", name, value)
}

// Gauge emits one unlabeled float gauge.
func (e *Expo) Gauge(name, help string, value float64) {
	e.header(name, help, "gauge")
	fmt.Fprintf(e.w, "%s %g\n", name, value)
}

// GaugeInt emits one unlabeled integer gauge.
func (e *Expo) GaugeInt(name, help string, value int64) {
	e.header(name, help, "gauge")
	fmt.Fprintf(e.w, "%s %d\n", name, value)
}

// CounterVec emits one counter family with a single label dimension: emit
// is called with a sample function the caller invokes once per label value,
// in the order samples should appear (sort label values for a stable
// scrape).
func (e *Expo) CounterVec(name, help, label string, emit func(sample func(labelValue string, value int64))) {
	e.header(name, help, "counter")
	emit(func(labelValue string, value int64) {
		fmt.Fprintf(e.w, "%s{%s=%q} %d\n", name, label, labelValue, value)
	})
}

// GaugeIntVec emits one integer gauge family with a single label dimension.
func (e *Expo) GaugeIntVec(name, help, label string, emit func(sample func(labelValue string, value int64))) {
	e.header(name, help, "gauge")
	emit(func(labelValue string, value int64) {
		fmt.Fprintf(e.w, "%s{%s=%q} %d\n", name, label, labelValue, value)
	})
}
