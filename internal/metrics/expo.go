package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Expo writes the Prometheus text exposition format (version 0.0.4). It is
// the single registration point for every metric the project exports: each
// Counter/Gauge call emits the metric's HELP/TYPE header and its samples in
// one place, which is what lets the metricnames analyzer (internal/analysis/
// metricnames, run by ptucker-vet) statically enforce the naming contract —
// names match ^ptucker_[a-z0-9_]+(_total)?$, counters end in _total, gauges
// do not, labels are snake_case, duration histograms end in a unit suffix
// (_seconds, _bytes, or _size), and the histogram-series suffixes _bucket/
// _sum/_count are reserved (Histogram emits them itself).
//
// Sample values keep their native width: counters are int64 (an int64
// counter formatted through float64 would corrupt above 2^53), gauges pick
// GaugeInt or Gauge (float, shortest round-trip formatting) per metric.
type Expo struct {
	w io.Writer
	// constLabel, when non-empty, is a pre-formatted `name="value"` pair
	// stamped onto every sample line (histogram series included). It is how
	// a multi-tenant scrape distinguishes per-model samples of one family.
	constLabel string
}

// NewExpo returns an exposition writer over w.
func NewExpo(w io.Writer) *Expo { return &Expo{w: w} }

// WithConstLabel returns an exposition writer over the same stream that
// stamps label=value onto every sample it emits. The label name must obey
// the same snake_case contract as vec labels; it must not collide with a
// family's own label dimension.
func (e *Expo) WithConstLabel(label, value string) *Expo {
	return &Expo{w: e.w, constLabel: fmt.Sprintf("%s=%q", label, value)}
}

// labels renders the brace-wrapped label set for one sample: the constant
// label (if any) joined with extra, a pre-formatted `name="value"` pair or
// comma-joined list (may be empty). Unlabeled samples stay brace-free, which
// keeps single-tenant output byte-identical to what it was before constant
// labels existed.
func (e *Expo) labels(extra string) string {
	switch {
	case e.constLabel == "" && extra == "":
		return ""
	case e.constLabel == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + e.constLabel + "}"
	default:
		return "{" + e.constLabel + "," + extra + "}"
	}
}

func (e *Expo) header(name, help, kind string) {
	fmt.Fprintf(e.w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(e.w, "# TYPE %s %s\n", name, kind)
}

// Counter emits one unlabeled counter.
func (e *Expo) Counter(name, help string, value int64) {
	e.header(name, help, "counter")
	fmt.Fprintf(e.w, "%s%s %d\n", name, e.labels(""), value)
}

// Gauge emits one unlabeled float gauge.
func (e *Expo) Gauge(name, help string, value float64) {
	e.header(name, help, "gauge")
	fmt.Fprintf(e.w, "%s%s %g\n", name, e.labels(""), value)
}

// GaugeInt emits one unlabeled integer gauge.
func (e *Expo) GaugeInt(name, help string, value int64) {
	e.header(name, help, "gauge")
	fmt.Fprintf(e.w, "%s%s %d\n", name, e.labels(""), value)
}

// CounterVec emits one counter family with a single label dimension: emit
// is called with a sample function the caller invokes once per label value,
// in the order samples should appear (sort label values for a stable
// scrape).
func (e *Expo) CounterVec(name, help, label string, emit func(sample func(labelValue string, value int64))) {
	e.header(name, help, "counter")
	emit(func(labelValue string, value int64) {
		fmt.Fprintf(e.w, "%s%s %d\n", name, e.labels(fmt.Sprintf("%s=%q", label, labelValue)), value)
	})
}

// GaugeIntVec emits one integer gauge family with a single label dimension.
func (e *Expo) GaugeIntVec(name, help, label string, emit func(sample func(labelValue string, value int64))) {
	e.header(name, help, "gauge")
	emit(func(labelValue string, value int64) {
		fmt.Fprintf(e.w, "%s%s %d\n", name, e.labels(fmt.Sprintf("%s=%q", label, labelValue)), value)
	})
}

// CounterFloat emits one unlabeled float counter, for monotone quantities
// that are natively fractional (e.g. cumulative GC pause seconds). Integer
// counters must use Counter to keep full int64 precision.
func (e *Expo) CounterFloat(name, help string, value float64) {
	e.header(name, help, "counter")
	fmt.Fprintf(e.w, "%s%s %s\n", name, e.labels(""), formatFloat(value))
}

// Histogram emits one unlabeled histogram: cumulative `_bucket` series per
// bound plus `le="+Inf"`, then `_sum` and `_count`.
func (e *Expo) Histogram(name, help string, h *Histogram) {
	e.header(name, help, "histogram")
	e.histSeries(name, "", "", h)
}

// HistogramVec emits one histogram family with a single label dimension;
// emit is called with a sample function the caller invokes once per label
// value, in the order series should appear.
func (e *Expo) HistogramVec(name, help, label string, emit func(sample func(labelValue string, h *Histogram))) {
	e.header(name, help, "histogram")
	emit(func(labelValue string, h *Histogram) {
		e.histSeries(name, label, labelValue, h)
	})
}

func (e *Expo) histSeries(name, label, labelValue string, h *Histogram) {
	s := h.Snapshot()
	prefix := ""
	if label != "" {
		prefix = fmt.Sprintf("%s=%q,", label, labelValue)
	}
	var cum uint64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(e.w, "%s_bucket%s %d\n", name, e.labels(prefix+fmt.Sprintf("le=%q", formatFloat(b))), cum)
	}
	cum += s.Counts[len(s.Bounds)]
	fmt.Fprintf(e.w, "%s_bucket%s %d\n", name, e.labels(prefix+`le="+Inf"`), cum)
	series := strings.TrimSuffix(prefix, ",")
	fmt.Fprintf(e.w, "%s_sum%s %s\n", name, e.labels(series), formatFloat(s.Sum))
	fmt.Fprintf(e.w, "%s_count%s %d\n", name, e.labels(series), cum)
}

// formatFloat renders a float with the shortest representation that round-
// trips, matching how `le` bounds are conventionally written (0.001, not
// 1e-03, stays as Go chooses — what matters is that bounds are stable and
// parse back to the same float).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
