// Package metrics provides the measurement helpers shared by the experiment
// harness: workload-balance statistics for the parallelization study
// (Section IV-D), live memory sampling, and plain-text table rendering for
// the paper-style outputs.
package metrics

import (
	"fmt"
	"runtime"
	"strings"
)

// Balance summarizes how evenly work was distributed over threads.
type Balance struct {
	// Threads is the number of workers that reported work.
	Threads int
	// Max and Mean are the largest and average per-thread work counts.
	Max, Mean float64
	// Imbalance is Max/Mean; 1.0 is a perfectly even split. The dynamic
	// scheduler's job is to keep this near 1 despite skewed |Ω(n)[in]|.
	Imbalance float64
}

// NewBalance computes balance statistics from per-thread work counts.
func NewBalance(work []int64) Balance {
	b := Balance{Threads: len(work)}
	if len(work) == 0 {
		return b
	}
	var total int64
	for _, w := range work {
		total += w
		if f := float64(w); f > b.Max {
			b.Max = f
		}
	}
	b.Mean = float64(total) / float64(len(work))
	if b.Mean > 0 {
		b.Imbalance = b.Max / b.Mean
	}
	return b
}

// HeapBytes returns the current live heap size, for coarse empirical memory
// curves alongside the analytic intermediate-data accounting.
func HeapBytes() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// Table accumulates rows and renders a column-aligned plain-text table, the
// output format of cmd/ptucker-bench.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var sb strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			fmt.Fprintf(&sb, "%-*s", widths[i]+2, c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		_ = i
		sb.WriteString(strings.Repeat("-", w) + "  ")
	}
	sb.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}
