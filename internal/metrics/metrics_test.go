package metrics

import (
	"strings"
	"testing"
)

func TestNewBalance(t *testing.T) {
	b := NewBalance([]int64{10, 10, 10, 10})
	if b.Imbalance != 1 {
		t.Fatalf("even split imbalance = %v want 1", b.Imbalance)
	}
	if b.Threads != 4 || b.Mean != 10 || b.Max != 10 {
		t.Fatalf("balance stats wrong: %+v", b)
	}
	b = NewBalance([]int64{30, 10, 10, 10})
	if b.Imbalance != 2 {
		t.Fatalf("imbalance = %v want 2 (max 30 / mean 15)", b.Imbalance)
	}
	if b = NewBalance(nil); b.Threads != 0 || b.Imbalance != 0 {
		t.Fatalf("empty balance = %+v", b)
	}
}

func TestHeapBytes(t *testing.T) {
	if HeapBytes() == 0 {
		t.Fatal("heap must be non-zero in a running test")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("bb", 22)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header line wrong: %q", lines[0])
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[2], "1.5") {
		t.Fatalf("row line wrong: %q", lines[2])
	}
	// Columns align: "value" column starts at the same offset in all rows.
	off := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][off:], "1.5") || !strings.HasPrefix(lines[3][off:], "22") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("a")
	tb.AddRow("x", "extra")
	out := tb.String()
	if !strings.Contains(out, "extra") {
		t.Fatal("ragged rows must still render")
	}
}
