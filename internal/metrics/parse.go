package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// Family is one metric family parsed from a text exposition.
type Family struct {
	Name    string
	Type    string // "counter", "gauge", or "histogram"
	Help    string
	Samples int // sample lines seen (all series suffixes for histograms)
}

var (
	famNameRE   = regexp.MustCompile(`^ptucker_[a-z0-9_]+$`)
	labelNameRE = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)
)

// histSeries tracks one histogram label-set's series as they stream by, so
// the cumulative-bucket and _sum/_count invariants can be checked.
type histSeries struct {
	lastLe    float64
	haveLe    bool
	lastCum   float64
	inf       float64
	infSeen   bool
	sumSeen   bool
	countSeen bool
}

// ParseExposition parses a Prometheus text exposition (version 0.0.4) and
// validates it against the project's metric contract: every sample belongs
// to a `# HELP`+`# TYPE`-declared family, family names match
// ^ptucker_[a-z0-9_]+$, counters end in _total and gauges/histograms do
// not, the _bucket/_sum/_count suffixes appear only as histogram series,
// histogram buckets are cumulative with a final le="+Inf" equal to _count,
// and label names are snake_case. It returns the families by name.
func ParseExposition(r io.Reader) (map[string]*Family, error) {
	fams := make(map[string]*Family)
	series := make(map[string]*histSeries)
	var helpName, helpText string // pending # HELP awaiting its # TYPE
	var cur *Family
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		fail := func(format string, args ...interface{}) (map[string]*Family, error) {
			return nil, fmt.Errorf("exposition line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				return fail("HELP without text: %q", line)
			}
			if helpName != "" {
				return fail("HELP %s not followed by its TYPE", helpName)
			}
			helpName, helpText = name, help
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				return fail("malformed TYPE: %q", line)
			}
			name, kind := parts[0], parts[1]
			if name != helpName {
				return fail("TYPE %s not preceded by its HELP", name)
			}
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				return fail("family %s has unsupported type %q", name, kind)
			}
			if !famNameRE.MatchString(name) {
				return fail("family name %q violates ^ptucker_[a-z0-9_]+$", name)
			}
			if kind == "counter" && !strings.HasSuffix(name, "_total") {
				return fail("counter %s must end in _total", name)
			}
			if kind != "counter" && strings.HasSuffix(name, "_total") {
				return fail("%s %s must not end in _total", kind, name)
			}
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if strings.HasSuffix(name, suf) {
					return fail("family %s uses reserved histogram suffix %s", name, suf)
				}
			}
			if _, dup := fams[name]; dup {
				return fail("family %s declared twice", name)
			}
			cur = &Family{Name: name, Type: kind, Help: helpText}
			fams[name] = cur
			helpName, helpText = "", ""
		case strings.HasPrefix(line, "#"):
			continue // other comments are legal and ignored
		default:
			if cur == nil {
				return fail("sample before any family declaration: %q", line)
			}
			name, labels, value, err := parseSample(line)
			if err != nil {
				return fail("%v in %q", err, line)
			}
			switch cur.Type {
			case "counter", "gauge":
				if name != cur.Name {
					return fail("sample %s under family %s", name, cur.Name)
				}
				if cur.Type == "counter" && value < 0 {
					return fail("counter %s has negative value %v", name, value)
				}
			case "histogram":
				suffix := strings.TrimPrefix(name, cur.Name)
				key := seriesKey(cur.Name, labels)
				st := series[key]
				if st == nil {
					st = &histSeries{}
					series[key] = st
				}
				switch suffix {
				case "_bucket":
					leStr, ok := labels["le"]
					if !ok {
						return fail("bucket %s lacks an le label", name)
					}
					le := math.Inf(1)
					if leStr != "+Inf" {
						le, err = strconv.ParseFloat(leStr, 64)
						if err != nil {
							return fail("bucket %s has bad le %q", name, leStr)
						}
					}
					if st.haveLe && le <= st.lastLe {
						return fail("bucket bounds of %s not increasing at le=%q", cur.Name, leStr)
					}
					if value < st.lastCum {
						return fail("cumulative buckets of %s decreased at le=%q", cur.Name, leStr)
					}
					st.lastLe, st.haveLe, st.lastCum = le, true, value
					if math.IsInf(le, 1) {
						st.inf, st.infSeen = value, true
					}
				case "_sum":
					st.sumSeen = true
				case "_count":
					if !st.infSeen || value != st.inf {
						return fail("%s_count %v disagrees with its +Inf bucket", cur.Name, value)
					}
					st.countSeen = true
				default:
					return fail("sample %s under histogram %s", name, cur.Name)
				}
			}
			cur.Samples++
			_ = value
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if helpName != "" {
		return nil, fmt.Errorf("exposition: trailing HELP %s without TYPE", helpName)
	}
	if len(fams) == 0 {
		return nil, fmt.Errorf("exposition: no metric families")
	}
	for key, st := range series {
		if !st.infSeen || !st.sumSeen || !st.countSeen {
			return nil, fmt.Errorf("exposition: histogram series %s is missing +Inf, _sum, or _count", key)
		}
	}
	return fams, nil
}

// seriesKey identifies one histogram label-set (ignoring le), serialized in
// a deterministic label order.
func seriesKey(family string, labels map[string]string) string {
	var b strings.Builder
	b.WriteString(family)
	names := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			names = append(names, k)
		}
	}
	// The label sets here are tiny (0–1 names); insertion sort keeps the
	// key deterministic without pulling in sort for a hot loop.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	for _, k := range names {
		fmt.Fprintf(&b, "{%s=%q}", k, labels[k])
	}
	return b.String()
}

// parseSample splits `name{label="v",...} value` into its parts, validating
// label syntax and that the value parses as a float.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", nil, 0, fmt.Errorf("unbalanced braces")
		}
		name = line[:i]
		labels, err = parseLabels(line[i+1 : j])
		if err != nil {
			return "", nil, 0, err
		}
		rest = strings.TrimSpace(line[j+1:])
	} else {
		i := strings.IndexByte(line, ' ')
		if i < 0 {
			return "", nil, 0, fmt.Errorf("missing value")
		}
		name, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	if strings.ContainsAny(rest, " \t") {
		return "", nil, 0, fmt.Errorf("trailing tokens after value %q", rest)
	}
	value, err = strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q", rest)
	}
	return name, labels, value, nil
}

func parseLabels(s string) (map[string]string, error) {
	labels := make(map[string]string)
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without value in %q", s)
		}
		name := s[:eq]
		if !labelNameRE.MatchString(name) {
			return nil, fmt.Errorf("label name %q is not snake_case", name)
		}
		rest := s[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return nil, fmt.Errorf("label %s value is not quoted", name)
		}
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("label %s value is unterminated", name)
		}
		val, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			return nil, fmt.Errorf("label %s value: %v", name, err)
		}
		if _, dup := labels[name]; dup {
			return nil, fmt.Errorf("label %s repeated", name)
		}
		labels[name] = val
		s = rest[end+1:]
		if strings.HasPrefix(s, ",") {
			s = s[1:]
		} else if len(s) > 0 {
			return nil, fmt.Errorf("junk after label %s", name)
		}
	}
	return labels, nil
}
