package metrics

import (
	"bytes"
	"strings"
	"testing"
)

// renderTenant renders a representative family mix the way one registry
// tenant does: a constant model label on every sample, including histogram
// series.
func renderTenant(t *testing.T, model string, reqs int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	e := NewExpo(&buf).WithConstLabel("model", model)
	e.Counter("ptucker_requests_total", "Requests served.", reqs)
	e.GaugeInt("ptucker_model_core_nnz", "Live core entries.", 42)
	e.CounterVec("ptucker_responses_total", "Responses by endpoint.", "endpoint",
		func(sample func(string, int64)) {
			sample("predict", reqs-1)
			sample("recommend", 1)
		})
	h := NewHistogram(ExponentialBounds(0.001, 2, 4))
	h.Observe(0.002)
	h.Observe(0.005)
	e.Histogram("ptucker_request_duration_seconds", "Request latency.", h)
	return buf.Bytes()
}

func TestWithConstLabelStampsEverySample(t *testing.T) {
	out := string(renderTenant(t, "alpha", 7))
	for _, want := range []string{
		`ptucker_requests_total{model="alpha"} 7`,
		`ptucker_model_core_nnz{model="alpha"} 42`,
		`ptucker_responses_total{model="alpha",endpoint="predict"} 6`,
		`ptucker_request_duration_seconds_bucket{model="alpha",le="0.001"} 0`,
		`ptucker_request_duration_seconds_bucket{model="alpha",le="+Inf"} 2`,
		`ptucker_request_duration_seconds_sum{model="alpha"} 0.007`,
		`ptucker_request_duration_seconds_count{model="alpha"} 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if _, err := ParseExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("const-labeled exposition does not parse: %v", err)
	}
}

// Without a constant label the writer's output must be byte-identical to
// the pre-const-label format: no stray braces on unlabeled samples.
func TestExpoUnlabeledOutputUnchanged(t *testing.T) {
	var buf bytes.Buffer
	e := NewExpo(&buf)
	e.Counter("ptucker_requests_total", "Requests served.", 3)
	h := NewHistogram([]float64{0.1})
	h.Observe(0.05)
	e.Histogram("ptucker_request_duration_seconds", "Latency.", h)
	want := "# HELP ptucker_requests_total Requests served.\n" +
		"# TYPE ptucker_requests_total counter\n" +
		"ptucker_requests_total 3\n" +
		"# HELP ptucker_request_duration_seconds Latency.\n" +
		"# TYPE ptucker_request_duration_seconds histogram\n" +
		"ptucker_request_duration_seconds_bucket{le=\"0.1\"} 1\n" +
		"ptucker_request_duration_seconds_bucket{le=\"+Inf\"} 1\n" +
		"ptucker_request_duration_seconds_sum 0.05\n" +
		"ptucker_request_duration_seconds_count 1\n"
	if got := buf.String(); got != want {
		t.Fatalf("unlabeled exposition changed:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// The registry's scrape shape: several tenants rendering the same families
// merge into one exposition that declares each family once and still
// parses clean under the full contract.
func TestMergerCombinesTenantsParseClean(t *testing.T) {
	m := NewMerger()
	var reg bytes.Buffer
	NewExpo(&reg).GaugeInt("ptucker_registry_models", "Models discovered.", 3)
	if err := m.Add(reg.Bytes()); err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"alpha", "beta", "gamma"} {
		if err := m.Add(renderTenant(t, name, int64(10+i))); err != nil {
			t.Fatal(err)
		}
	}

	var out bytes.Buffer
	if _, err := m.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if n := strings.Count(text, "# TYPE ptucker_requests_total counter"); n != 1 {
		t.Fatalf("family declared %d times, want once:\n%s", n, text)
	}
	fams, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("merged exposition does not parse: %v\n%s", err, text)
	}
	if f := fams["ptucker_requests_total"]; f == nil || f.Samples != 3 {
		t.Fatalf("ptucker_requests_total: %+v, want 3 samples", f)
	}
	if f := fams["ptucker_registry_models"]; f == nil || f.Samples != 1 {
		t.Fatalf("ptucker_registry_models: %+v, want 1 sample", f)
	}
	for _, name := range []string{"alpha", "beta", "gamma"} {
		if !strings.Contains(text, `model="`+name+`"`) {
			t.Fatalf("merged exposition lost tenant %s", name)
		}
	}
}

func TestMergerRejectsTypeConflict(t *testing.T) {
	m := NewMerger()
	var a, b bytes.Buffer
	NewExpo(&a).Counter("ptucker_widgets_total", "Widgets.", 1)
	NewExpo(&b).GaugeInt("ptucker_widgets_total", "Widgets.", 1)
	if err := m.Add(a.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(b.Bytes()); err == nil {
		t.Fatal("conflicting family types merged silently")
	}
}
