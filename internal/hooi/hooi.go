// Package hooi implements the conventional Tucker-ALS algorithm (Algorithm 1
// of the paper), also known as the higher-order orthogonal iteration of De
// Lathauwer et al. It is the method P-Tucker revises: missing entries are
// treated as zeros, each factor update materializes the dense TTMc result
// Y(n) (the "intermediate data explosion" of Definition 7), and the leading
// left singular vectors of Y(n) are extracted by SVD.
package hooi

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/mat"
	"repro/internal/tensor"
	"repro/internal/ttm"
)

// Config controls a HOOI run.
type Config struct {
	// Ranks are the target core dimensionalities J1..JN.
	Ranks []int
	// MaxIters bounds the ALS sweeps. The paper's experiments use 20.
	MaxIters int
	// Tol stops iteration when the fit improves by less than Tol between
	// sweeps. Zero disables the check.
	Tol float64
	// MemoryBudgetBytes bounds the dense intermediate Y(n); 0 means
	// ttm.DefaultBudgetBytes, negative disables the check.
	MemoryBudgetBytes int64
	// Seed drives the random factor initialization.
	Seed int64
}

// Errors reported by Decompose.
var (
	ErrBadConfig = errors.New("hooi: invalid configuration")
)

// Decompose runs Tucker-ALS on x (missing entries = zeros) and returns the
// fitted model, or ttm.ErrOutOfMemory if Y(n) would exceed the memory
// budget — which is exactly the regime the paper reports as O.O.M. for this
// family of methods.
func Decompose(x *tensor.Coord, cfg Config) (*ttm.Model, error) {
	if err := validate(x, cfg.Ranks, cfg.MaxIters); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	factors := ttm.RandomOrthonormalFactors(x.Dims(), cfg.Ranks, rng)
	model := &ttm.Model{Method: "Tucker-ALS", Factors: factors}

	xNorm := x.Norm()
	prevFit := math.Inf(-1)
	for iter := 1; iter <= cfg.MaxIters; iter++ {
		start := time.Now()
		for n := range factors {
			y, err := ttm.MaterializeY(x, factors, n, cfg.MemoryBudgetBytes)
			if err != nil {
				return nil, err
			}
			u, err := leadingVectors(y, cfg.Ranks[n])
			if err != nil {
				return nil, fmt.Errorf("hooi: mode %d SVD failed: %w", n, err)
			}
			factors[n] = u
			model.Factors = factors
		}
		g := ttm.DenseCore(x, factors)
		model.Core = g
		fit := fitFromCore(xNorm, g)
		model.Trace = append(model.Trace, ttm.IterStats{Iter: iter, Fit: fit, Elapsed: time.Since(start)})
		if cfg.Tol > 0 && fit-prevFit < cfg.Tol {
			break
		}
		prevFit = fit
	}
	return model, nil
}

// leadingVectors extracts the k leading left singular vectors of y via the
// Gram route (y is In × K with K small).
func leadingVectors(y *mat.Dense, k int) (*mat.Dense, error) {
	return mat.LeadingLeftSingularVectors(y, k)
}

// fitFromCore computes 1 − sqrt(||X||² − ||G||²)/||X||, valid for orthonormal
// factors.
func fitFromCore(xNorm float64, g *tensor.Dense) float64 {
	if xNorm == 0 {
		return 1
	}
	gn := g.Norm()
	diff := xNorm*xNorm - gn*gn
	if diff < 0 {
		diff = 0
	}
	return 1 - math.Sqrt(diff)/xNorm
}

func validate(x *tensor.Coord, ranks []int, iters int) error {
	if len(ranks) != x.Order() {
		return fmt.Errorf("%w: %d ranks for order-%d tensor", ErrBadConfig, len(ranks), x.Order())
	}
	for n, j := range ranks {
		if j <= 0 || j > x.Dim(n) {
			return fmt.Errorf("%w: rank J%d=%d outside [1, %d]", ErrBadConfig, n+1, j, x.Dim(n))
		}
	}
	if iters <= 0 {
		return fmt.Errorf("%w: MaxIters must be positive", ErrBadConfig)
	}
	if x.NNZ() == 0 {
		return fmt.Errorf("%w: empty tensor", ErrBadConfig)
	}
	return nil
}
