package hooi

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/tensor"
	"repro/internal/ttm"
)

// fullLowRank builds a FULLY observed tensor that is exactly Tucker rank
// (ranks), the regime where HOOI must recover an essentially perfect fit.
func fullLowRank(rng *rand.Rand, dims, ranks []int) *tensor.Coord {
	factors := make([]*mat.Dense, len(dims))
	for m := range dims {
		a := mat.NewDense(dims[m], ranks[m])
		for i := range a.Data() {
			a.Data()[i] = rng.NormFloat64()
		}
		factors[m] = a
	}
	g := tensor.NewDenseTensor(ranks)
	for i := range g.Data() {
		g.Data()[i] = rng.NormFloat64()
	}
	dense := g.ModeProductChain(factors)
	out := tensor.NewCoord(dims)
	idx := make([]int, len(dims))
	for off, v := range dense.Data() {
		dense.IndexOf(off, idx)
		out.MustAppend(idx, v)
	}
	return out
}

func TestHOOIRecoversLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := fullLowRank(rng, []int{8, 7, 6}, []int{2, 2, 2})
	m, err := Decompose(x, Config{Ranks: []int{2, 2, 2}, MaxIters: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fit := m.Trace[len(m.Trace)-1].Fit
	if fit < 0.999 {
		t.Fatalf("fit = %v want ≈1 for exact-rank input", fit)
	}
	// Eq. (5) error over the observed (here: all) entries must also be tiny.
	if e := m.ReconstructionError(x); e > 1e-6*x.Norm() {
		t.Fatalf("reconstruction error %v too large", e)
	}
}

func TestHOOIFitNonDecreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := fullLowRank(rng, []int{9, 8, 7}, []int{3, 3, 3})
	// Fit with a smaller rank than the truth so the fit stays below 1 and
	// the ALS ascent is visible.
	m, err := Decompose(x, Config{Ranks: []int{2, 2, 2}, MaxIters: 6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(m.Trace); i++ {
		if m.Trace[i].Fit < m.Trace[i-1].Fit-1e-9 {
			t.Fatalf("fit decreased at iteration %d: %v -> %v", i+1, m.Trace[i-1].Fit, m.Trace[i].Fit)
		}
	}
}

func TestHOOIFactorsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := fullLowRank(rng, []int{8, 8, 8}, []int{2, 2, 2})
	m, err := Decompose(x, Config{Ranks: []int{2, 2, 2}, MaxIters: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for k, a := range m.Factors {
		if !mat.Gram(a).Equal(mat.Identity(a.Cols()), 1e-8) {
			t.Fatalf("factor %d not orthonormal", k)
		}
	}
}

func TestHOOIOutOfMemory(t *testing.T) {
	dims := []int{100000, 100000, 100000}
	x := tensor.NewCoord(dims)
	x.MustAppend([]int{0, 1, 2}, 1)
	x.MustAppend([]int{3, 4, 5}, 2)
	cfg := Config{Ranks: []int{1, 1, 1}, MaxIters: 2, MemoryBudgetBytes: 1024}
	if _, err := Decompose(x, cfg); !errors.Is(err, ttm.ErrOutOfMemory) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
}

func TestHOOIValidation(t *testing.T) {
	x := tensor.NewCoord([]int{4, 4})
	x.MustAppend([]int{0, 0}, 1)
	cases := []Config{
		{Ranks: []int{2}, MaxIters: 1},    // order mismatch
		{Ranks: []int{0, 2}, MaxIters: 1}, // zero rank
		{Ranks: []int{5, 2}, MaxIters: 1}, // rank > dim
		{Ranks: []int{2, 2}, MaxIters: 0}, // bad iters
	}
	for i, cfg := range cases {
		if _, err := Decompose(x, cfg); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("case %d: want ErrBadConfig, got %v", i, err)
		}
	}
	empty := tensor.NewCoord([]int{4, 4})
	if _, err := Decompose(empty, Config{Ranks: []int{2, 2}, MaxIters: 1}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("empty tensor must be rejected")
	}
}

func TestHOOIZeroFillBiasOnSparseData(t *testing.T) {
	// On sparse data whose observed values are all ≈1, a zero-filling method
	// drives most predictions toward 0, giving a large Eq. (5) error. This
	// is the accuracy failure Figure 11 demonstrates.
	rng := rand.New(rand.NewSource(6))
	dims := []int{30, 30, 30}
	x := tensor.NewCoord(dims)
	idx := make([]int, 3)
	for x.NNZ() < 200 {
		for k := range idx {
			idx[k] = rng.Intn(30)
		}
		x.MustAppend(idx, 0.9+0.1*rng.Float64())
	}
	m, err := Decompose(x, Config{Ranks: []int{3, 3, 3}, MaxIters: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	err5 := m.ReconstructionError(x)
	// With 200 observations of ≈1 spread over 27000 cells, the rank-27
	// zero-fill approximation cannot reproduce the observed values; the
	// error stays a large fraction of ||X||.
	if err5 < 0.5*x.Norm() {
		t.Fatalf("zero-filling method fit the observed entries unexpectedly well: %v vs ||X||=%v",
			err5, x.Norm())
	}
}

func TestHOOITolEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := fullLowRank(rng, []int{6, 6, 6}, []int{2, 2, 2})
	m, err := Decompose(x, Config{Ranks: []int{2, 2, 2}, MaxIters: 50, Tol: 1e-6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Trace) >= 50 {
		t.Fatalf("expected early stop, ran %d iterations", len(m.Trace))
	}
	if m.TimePerIteration() <= 0 {
		t.Fatal("per-iteration time must be positive")
	}
}
