package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/synth"
	"repro/internal/tensor"
	"repro/internal/wopt"
)

// Fig7 regenerates Figure 7: average time per iteration of every method on
// the four (simulated) real-world tensors of Table IV. Expected shape:
// P-Tucker and P-Tucker-Approx fastest across datasets; Tucker-wOpt O.O.M.
// on the two large rating tensors but runs on the small video/image tensors.
func Fig7(opt Options) (*Result, error) {
	datasets := synth.Datasets(opt.Scale, opt.Seed)

	tbl := metrics.NewTable("dataset", "P-Tucker", "P-Tucker-Approx", "S-HOT", "Tucker-CSF", "Tucker-wOpt")
	values := map[string]float64{}
	for _, d := range datasets {
		progressf(opt, "fig7: %s %v nnz=%d", d.Name, d.X.Dims(), d.X.NNZ())
		pt := runPTucker(opt.Ctx, d.X, d.Ranks, core.PTucker, opt.Iters, opt.Threads, opt.Seed)
		ap := runPTucker(opt.Ctx, d.X, d.Ranks, core.PTuckerApprox, opt.Iters, opt.Threads, opt.Seed)
		if err := opt.Ctx.Err(); err != nil {
			return nil, err // cancelled: abort the sweep, don't grind through baselines
		}
		sh := runBaseline("S-HOT", d.X, d.Ranks, opt.Iters, opt.Seed)
		cs := runBaseline("Tucker-CSF", d.X, d.Ranks, opt.Iters, opt.Seed)
		wo := runWOpt(d.X, d.Ranks, opt.Iters, opt.Seed)
		tbl.AddRow(d.Name, pt.timeLabel(), ap.timeLabel(), sh.timeLabel(), cs.timeLabel(), wo.timeLabel())
		values[d.Name+"_ptucker_secs"] = pt.TimePerIter.Seconds()
		if wo.Err != nil {
			values[d.Name+"_wopt_oom"] = 1
		}
	}
	return &Result{
		ID:     "fig7",
		Title:  Title("fig7"),
		Text:   "Figure 7 — time per iteration on (simulated) real-world tensors\n" + tbl.String(),
		Values: values,
	}, nil
}

// Fig10 regenerates Figure 10: P-Tucker's speed-up T1/TT and memory
// requirement as the thread count grows (N=3, I=10⁶→10⁴, |Ω|=10⁷→10⁵). The
// paper's shape: near-linear speed-up and linear O(T·J²) memory. On a
// single-core host the wall-clock speed-up flattens (no parallel hardware);
// the workload balance column shows that the dynamic scheduler still
// distributes rows evenly, which is the property the figure demonstrates.
// The static-vs-dynamic comparison of Section IV-D is reported alongside.
func Fig10(opt Options) (*Result, error) {
	iDim, nnz, j := 10000, 100000, 5
	if opt.Scale == synth.ScaleFull {
		iDim, nnz, j = 1000000, 10000000, 10
	}
	threadsList := []int{1, 2, 4, 8, 16, 20}

	rng := rand.New(rand.NewSource(opt.Seed))
	x := synth.Uniform(rng, []int{iDim, iDim, iDim}, nnz)
	ranks := uniformRanks(3, j)

	tbl := metrics.NewTable("threads", "time/iter", "speed-up T1/TT", "intermediate mem (KB)", "balance max/mean")
	values := map[string]float64{}
	var t1 float64
	for _, t := range threadsList {
		progressf(opt, "fig10: T=%d", t)
		cfg := core.Defaults(ranks)
		cfg.MaxIters = opt.Iters
		cfg.Tol = 0
		cfg.Threads = t
		cfg.Seed = opt.Seed
		m, err := core.DecomposeContext(opt.Ctx, x, cfg)
		if err != nil {
			return nil, err
		}
		secs := m.TimePerIteration().Seconds()
		if t == 1 {
			t1 = secs
		}
		speedup := t1 / secs
		bal := metrics.NewBalance(m.WorkPerThread)
		tbl.AddRow(t, fmt.Sprintf("%.4gs", secs), fmt.Sprintf("%.2fx", speedup),
			float64(m.IntermediateBytes)/1024, bal.Imbalance)
		values[fmt.Sprintf("speedup_t%d", t)] = speedup
		values[fmt.Sprintf("mem_t%d_bytes", t)] = float64(m.IntermediateBytes)
		values[fmt.Sprintf("imbalance_t%d", t)] = bal.Imbalance
	}

	// Section IV-D: dynamic vs naive static scheduling on a skewed tensor.
	skew := skewedTensor(rand.New(rand.NewSource(opt.Seed+7)), iDim/10, nnz/10)
	timeFor := func(s core.Scheduling) (float64, error) {
		cfg := core.Defaults(uniformRanks(3, j))
		cfg.MaxIters = opt.Iters
		cfg.Tol = 0
		cfg.Threads = 4
		cfg.Scheduling = s
		cfg.Seed = opt.Seed
		m, err := core.DecomposeContext(opt.Ctx, skew, cfg)
		if err != nil {
			return 0, err
		}
		return m.TimePerIteration().Seconds(), nil
	}
	dyn, err := timeFor(core.ScheduleDynamic)
	if err != nil {
		return nil, err
	}
	sta, err := timeFor(core.ScheduleStatic)
	if err != nil {
		return nil, err
	}
	values["static_over_dynamic"] = sta / dyn

	return &Result{
		ID:    "fig10",
		Title: Title("fig10"),
		Text: fmt.Sprintf("Figure 10 — parallelization scalability (N=3, I=%d, |Ω|=%d, J=%d)\n%s\nSection IV-D scheduling on a skewed tensor (T=4): static %.4gs / dynamic %.4gs = %.2fx\n(note: wall-clock speed-up requires physical cores; GOMAXPROCS here is %d)\n",
			iDim, nnz, j, tbl, sta, dyn, sta/dyn, maxProcs()),
		Values: values,
	}, nil
}

// skewedTensor concentrates half the nonzeros on a handful of mode-0 rows so
// static row partitioning leaves most threads idle — the workload imbalance
// dynamic scheduling corrects.
func skewedTensor(rng *rand.Rand, iDim, nnz int) *tensor.Coord {
	x := tensor.NewCoord([]int{iDim, iDim, iDim})
	idx := make([]int, 3)
	for x.NNZ() < nnz {
		if x.NNZ()%2 == 0 {
			idx[0] = rng.Intn(3) // hot rows
		} else {
			idx[0] = rng.Intn(iDim)
		}
		idx[1] = rng.Intn(iDim)
		idx[2] = rng.Intn(iDim)
		x.MustAppend(idx, rng.Float64())
	}
	return x
}

// Fig11 regenerates Figure 11: reconstruction error (Eq. 5) and test RMSE of
// every method on the (simulated) real-world tensors with a 90/10 split. The
// paper's shape: P-Tucker (and Tucker-wOpt where it fits in memory) achieve
// several-fold lower error and RMSE than the zero-filling methods (S-HOT and
// Tucker-CSF, shown as one family since their accuracy coincides).
func Fig11(opt Options) (*Result, error) {
	datasets := synth.Datasets(opt.Scale, opt.Seed)
	iters := opt.Iters
	if iters < 5 {
		iters = 5 // accuracy needs more than a timing run
	}

	errTbl := metrics.NewTable("dataset", "P-Tucker", "S-HOT", "Tucker-CSF", "Tucker-wOpt")
	rmseTbl := metrics.NewTable("dataset", "P-Tucker", "S-HOT", "Tucker-CSF", "Tucker-wOpt")
	values := map[string]float64{}
	for _, d := range datasets {
		progressf(opt, "fig11: %s", d.Name)
		rng := rand.New(rand.NewSource(opt.Seed + 13))
		train, test := d.X.Split(0.9, rng)

		// P-Tucker.
		cfg := core.Defaults(d.Ranks)
		cfg.MaxIters = iters
		cfg.Threads = opt.Threads
		cfg.Seed = opt.Seed
		pm, err := core.DecomposeContext(opt.Ctx, train, cfg)
		if err := opt.Ctx.Err(); err != nil {
			return nil, err // cancelled: abort the sweep, don't grind through baselines
		}
		ptErr, ptRMSE := "err", "err"
		if err == nil {
			values[d.Name+"_ptucker_err"] = pm.TrainError
			values[d.Name+"_ptucker_rmse"] = pm.RMSE(test)
			ptErr = fmt.Sprintf("%.4g", pm.TrainError)
			ptRMSE = fmt.Sprintf("%.4g", pm.RMSE(test))
		}

		// Zero-filling baselines.
		type zres struct{ err, rmse string }
		zero := func(name string) zres {
			out := runBaselineAccuracy(name, train, test, d.Ranks, iters, opt.Seed)
			if out.Err != nil {
				return zres{out.timeLabel(), out.timeLabel()}
			}
			values[d.Name+"_"+name+"_err"] = out.ReconErr
			values[d.Name+"_"+name+"_rmse"] = out.RMSE
			return zres{fmt.Sprintf("%.4g", out.ReconErr), fmt.Sprintf("%.4g", out.RMSE)}
		}
		sh := zero("S-HOT")
		cs := zero("Tucker-CSF")

		// Tucker-wOpt.
		woErr, woRMSE := "O.O.M.", "O.O.M."
		wm, err := wopt.Decompose(train, wopt.Config{Ranks: d.Ranks, MaxIters: 4 * iters, Seed: opt.Seed})
		if err == nil {
			e := wm.ReconstructionError(train)
			r := wm.RMSE(test)
			values[d.Name+"_wopt_err"] = e
			values[d.Name+"_wopt_rmse"] = r
			woErr, woRMSE = fmt.Sprintf("%.4g", e), fmt.Sprintf("%.4g", r)
		}

		errTbl.AddRow(d.Name, ptErr, sh.err, cs.err, woErr)
		rmseTbl.AddRow(d.Name, ptRMSE, sh.rmse, cs.rmse, woRMSE)
	}
	return &Result{
		ID:    "fig11",
		Title: Title("fig11"),
		Text: "Figure 11 — accuracy on (simulated) real-world tensors (90/10 split)\n" +
			"Reconstruction error (Eq. 5, training entries):\n" + errTbl.String() +
			"\nTest RMSE (held-out entries):\n" + rmseTbl.String(),
		Values: values,
	}, nil
}

// runBaselineAccuracy measures a zero-filling baseline's Eq. (5) error and
// held-out RMSE in one run.
func runBaselineAccuracy(name string, train, test *tensor.Coord, ranks []int, iters int, seed int64) methodOutcome {
	m, err := decomposeBaseline(name, train, ranks, iters, seed)
	if err != nil {
		return methodOutcome{Err: err}
	}
	return methodOutcome{
		TimePerIter: m.TimePerIteration(),
		ReconErr:    m.ReconstructionError(train),
		RMSE:        m.RMSE(test),
	}
}
