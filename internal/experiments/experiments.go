// Package experiments regenerates every table and figure of the paper's
// evaluation (Section IV) and discovery study (Section V): each experiment id
// maps to a function that runs the corresponding workload sweep and prints
// the same rows/series the paper reports. Default parameters are reduced to
// single-core scale; ScaleFull restores paper-sized shapes.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/csf"
	"repro/internal/hooi"
	"repro/internal/shot"
	"repro/internal/synth"
	"repro/internal/tensor"
	"repro/internal/ttm"
	"repro/internal/wopt"
)

// Options configures an experiment run.
type Options struct {
	// Scale selects reduced (small) or paper-sized (full) parameters.
	Scale synth.Scale
	// Seed drives all data generation and initialization.
	Seed int64
	// Threads is the worker count for P-Tucker; 0 means GOMAXPROCS.
	Threads int
	// Iters is the number of ALS iterations used for per-iteration timing
	// sweeps; 0 means 2 (one warm, one measured — the paper reports average
	// time per iteration).
	Iters int
	// Out receives progress lines during long sweeps; nil discards them.
	Out io.Writer
	// Ctx, when non-nil, bounds every P-Tucker fit inside the experiment:
	// cancelling it aborts the sweep within one ALS iteration (the driver
	// wires SIGINT here). nil means context.Background().
	Ctx context.Context
}

func (o *Options) norm() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Iters <= 0 {
		o.Iters = 2
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	if o.Ctx == nil {
		o.Ctx = context.Background()
	}
}

// Result is the outcome of one experiment.
type Result struct {
	// ID is the experiment identifier (e.g. "fig6a").
	ID string
	// Title describes the regenerated artifact.
	Title string
	// Text is the rendered paper-style table(s).
	Text string
	// Values exposes key metrics for programmatic assertions (benches,
	// integration tests); keys are experiment-specific.
	Values map[string]float64
}

// runner is the signature of one experiment.
type runner struct {
	title string
	run   func(Options) (*Result, error)
}

var registry map[string]runner

// init builds the registry at run time; a static initializer would form an
// initialization cycle because the experiment functions themselves call
// Title().
func init() {
	registry = map[string]runner{
		"fig5":   {"Figure 5: distribution of partial reconstruction error R(β)", Fig5},
		"fig6a":  {"Figure 6(a): time/iteration vs tensor order", Fig6a},
		"fig6b":  {"Figure 6(b): time/iteration vs dimensionality", Fig6b},
		"fig6c":  {"Figure 6(c): time/iteration vs observed entries", Fig6c},
		"fig6d":  {"Figure 6(d): time/iteration vs rank", Fig6d},
		"fig7":   {"Figure 7: time/iteration on real-world tensors (simulated)", Fig7},
		"fig8":   {"Figure 8: P-Tucker vs P-Tucker-Cache (time & memory)", Fig8},
		"fig9":   {"Figure 9: P-Tucker vs P-Tucker-Approx (time & convergence)", Fig9},
		"fig10":  {"Figure 10: speed-up and memory vs threads", Fig10},
		"fig11":  {"Figure 11: accuracy on real-world tensors (simulated)", Fig11},
		"table3": {"Table III: empirical complexity checks", Table3},
		"table5": {"Table V: concept discovery on MovieLens (simulated)", Table5},
		"table6": {"Table VI: relation discovery on MovieLens (simulated)", Table6},
	}
}

// IDs returns the experiment identifiers in stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Title returns the description of an experiment id.
func Title(id string) string { return registry[id].title }

// Run executes the experiment with the given id.
func Run(id string, opt Options) (*Result, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
	}
	opt.norm()
	return r.run(opt)
}

// methodOutcome is one (method, configuration) measurement within a sweep.
type methodOutcome struct {
	TimePerIter time.Duration
	Err         error // non-nil for O.O.M. or other failures
	ReconErr    float64
	RMSE        float64
}

// oomLabel renders a measurement the way the figures do: a time, or O.O.M.
func (m methodOutcome) timeLabel() string {
	if m.Err != nil {
		if errors.Is(m.Err, ttm.ErrOutOfMemory) {
			return "O.O.M."
		}
		return "err:" + m.Err.Error()
	}
	return fmt.Sprintf("%.4gs", m.TimePerIter.Seconds())
}

// runPTucker measures the P-Tucker family under the sweep's context.
func runPTucker(ctx context.Context, x *tensor.Coord, ranks []int, method core.Method, iters, threads int, seed int64) methodOutcome {
	cfg := core.Defaults(ranks)
	cfg.Method = method
	cfg.MaxIters = iters
	cfg.Tol = 0
	cfg.Threads = threads
	cfg.Seed = seed
	m, err := core.DecomposeContext(ctx, x, cfg)
	if err != nil {
		return methodOutcome{Err: err}
	}
	return methodOutcome{TimePerIter: m.TimePerIteration(), ReconErr: m.TrainError}
}

// decomposeBaseline runs one zero-filling baseline by name.
func decomposeBaseline(name string, x *tensor.Coord, ranks []int, iters int, seed int64) (*ttm.Model, error) {
	switch name {
	case "Tucker-ALS":
		return hooi.Decompose(x, hooi.Config{Ranks: ranks, MaxIters: iters, Seed: seed})
	case "S-HOT":
		return shot.Decompose(x, shot.Config{Ranks: ranks, MaxIters: iters, Seed: seed})
	case "Tucker-CSF":
		return csf.Decompose(x, csf.Config{Ranks: ranks, MaxIters: iters, Seed: seed})
	default:
		return nil, fmt.Errorf("experiments: unknown baseline %q", name)
	}
}

// runBaseline measures one zero-filling baseline's per-iteration time.
func runBaseline(name string, x *tensor.Coord, ranks []int, iters int, seed int64) methodOutcome {
	m, err := decomposeBaseline(name, x, ranks, iters, seed)
	if err != nil {
		return methodOutcome{Err: err}
	}
	return methodOutcome{TimePerIter: m.TimePerIteration(), ReconErr: m.ReconstructionError(x)}
}

// maxProcs reports the host parallelism available to goroutine workers.
func maxProcs() int { return runtime.GOMAXPROCS(0) }

// runWOpt measures Tucker-wOpt.
func runWOpt(x *tensor.Coord, ranks []int, iters int, seed int64) methodOutcome {
	m, err := wopt.Decompose(x, wopt.Config{Ranks: ranks, MaxIters: iters, Seed: seed})
	if err != nil {
		return methodOutcome{Err: err}
	}
	return methodOutcome{TimePerIter: m.TimePerIteration(), ReconErr: m.ReconstructionError(x)}
}

// uniformRanks returns an N-vector of equal ranks.
func uniformRanks(n, j int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = j
	}
	return r
}

func progressf(opt Options, format string, args ...interface{}) {
	fmt.Fprintf(opt.Out, format+"\n", args...)
}
