package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/synth"
)

// Fig5 regenerates Figure 5: the distribution of partial reconstruction
// error R(β) over core entries of a MovieLens-like tensor, and the share of
// total positive R contributed by the top-20% entries. The paper's shape:
// about 20% of core entries generate about 80% of the reconstruction error —
// the Pareto skew that justifies P-Tucker-Approx's truncation.
func Fig5(opt Options) (*Result, error) {
	mcfg := synth.DefaultMovieLensConfig()
	mcfg.Seed = opt.Seed
	j := 5
	if opt.Scale == synth.ScaleFull {
		mcfg.Users, mcfg.Movies, mcfg.NNZ = 2000, 800, 100000
		j = 10
	}
	d := synth.MovieLens(mcfg)

	cfg := core.Defaults(uniformRanks(4, j))
	cfg.MaxIters = 3
	cfg.Tol = 0
	cfg.Threads = opt.Threads
	cfg.Seed = opt.Seed
	m, err := core.DecomposeContext(opt.Ctx, d.X, cfg)
	if err != nil {
		return nil, err
	}
	st := core.NewStateForAnalysis(d.X, m.Factors, m.Core, cfg.Threads)
	r := core.PartialErrors(st)

	sorted := append([]float64(nil), r...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	var totalPos float64
	for _, v := range sorted {
		if v > 0 {
			totalPos += v
		}
	}
	topK := len(sorted) / 5
	var topPos float64
	for _, v := range sorted[:topK] {
		if v > 0 {
			topPos += v
		}
	}
	share := 0.0
	if totalPos > 0 {
		share = topPos / totalPos
	}

	tbl := metrics.NewTable("percentile of core entries (by R(β) desc)", "cumulative share of positive R(β)")
	cum := 0.0
	marks := []int{5, 10, 20, 40, 60, 80, 100}
	mi := 0
	for i, v := range sorted {
		if v > 0 {
			cum += v
		}
		pct := (i + 1) * 100 / len(sorted)
		for mi < len(marks) && pct >= marks[mi] {
			frac := 0.0
			if totalPos > 0 {
				frac = cum / totalPos
			}
			tbl.AddRow(fmt.Sprintf("top %d%%", marks[mi]), fmt.Sprintf("%.1f%%", 100*frac))
			mi++
		}
	}

	return &Result{
		ID:    "fig5",
		Title: Title("fig5"),
		Text: fmt.Sprintf("Figure 5 — partial reconstruction error distribution (MovieLens-sim, J=%d, |G|=%d)\n%s\ntop-20%% share of positive R(β): %.1f%% (paper: ≈80%%)\n",
			j, m.Core.NNZ(), tbl, 100*share),
		Values: map[string]float64{"top20_share": share},
	}, nil
}

// Fig8 regenerates Figure 8: running time and intermediate memory of
// P-Tucker vs P-Tucker-Cache as the order grows (I=100→30, |Ω|=10³, J=3).
// The paper's shape: the cache variant is up to 1.7× faster per iteration at
// high orders, while plain P-Tucker needs orders of magnitude less memory
// (O(T·J²) vs O(|Ω|·|G|) — 29.5× at N=10).
func Fig8(opt Options) (*Result, error) {
	iDim, orders := 30, []int{5, 6, 7, 8}
	if opt.Scale == synth.ScaleFull {
		iDim, orders = 100, []int{6, 7, 8, 9, 10}
	}
	const nnz, j = 1000, 3

	tbl := metrics.NewTable("order", "P-Tucker time", "Cache time", "P-Tucker mem (MB)", "Cache mem (MB)", "mem ratio")
	values := map[string]float64{}
	for _, n := range orders {
		progressf(opt, "fig8: order %d", n)
		rng := rand.New(rand.NewSource(opt.Seed))
		dims := make([]int, n)
		for i := range dims {
			dims[i] = iDim
		}
		x := synth.Uniform(rng, dims, nnz)
		ranks := uniformRanks(n, j)

		runVariant := func(method core.Method) (*core.Model, error) {
			cfg := core.Defaults(ranks)
			cfg.Method = method
			cfg.MaxIters = opt.Iters
			cfg.Tol = 0
			cfg.Threads = opt.Threads
			cfg.Seed = opt.Seed
			return core.DecomposeContext(opt.Ctx, x, cfg)
		}
		plain, err := runVariant(core.PTucker)
		if err != nil {
			return nil, err
		}
		cache, err := runVariant(core.PTuckerCache)
		if err != nil {
			return nil, err
		}
		memP := float64(plain.IntermediateBytes) / (1 << 20)
		memC := float64(cache.IntermediateBytes) / (1 << 20)
		ratio := memC / memP
		tbl.AddRow(n,
			fmt.Sprintf("%.4gs", plain.TimePerIteration().Seconds()),
			fmt.Sprintf("%.4gs", cache.TimePerIteration().Seconds()),
			memP, memC, ratio)
		values[fmt.Sprintf("plain_n%d_secs", n)] = plain.TimePerIteration().Seconds()
		values[fmt.Sprintf("cache_n%d_secs", n)] = cache.TimePerIteration().Seconds()
		values[fmt.Sprintf("memratio_n%d", n)] = ratio
	}
	return &Result{
		ID:    "fig8",
		Title: Title("fig8"),
		Text: fmt.Sprintf("Figure 8 — P-Tucker vs P-Tucker-Cache (I=%d, |Ω|=%d, J=%d)\n%s",
			iDim, nnz, j, tbl),
		Values: values,
	}, nil
}

// Fig9 regenerates Figure 9: per-iteration running time of P-Tucker vs
// P-Tucker-Approx across iterations (a), and reconstruction error vs
// cumulative running time (b), on the MovieLens-like tensor with J=5, p=0.2.
// The paper's shape: Approx's per-iteration time falls every iteration as
// |G| shrinks, crossing below P-Tucker's within a few iterations, at almost
// the same final error.
func Fig9(opt Options) (*Result, error) {
	mcfg := synth.DefaultMovieLensConfig()
	mcfg.Seed = opt.Seed
	if opt.Scale == synth.ScaleFull {
		mcfg.Users, mcfg.Movies, mcfg.NNZ = 2000, 800, 100000
	}
	d := synth.MovieLens(mcfg)
	ranks := uniformRanks(4, 5)
	iters := 9

	run := func(method core.Method) (*core.Model, error) {
		cfg := core.Defaults(ranks)
		cfg.Method = method
		cfg.TruncationRate = 0.2
		cfg.MaxIters = iters
		cfg.Tol = 0
		cfg.Threads = opt.Threads
		cfg.Seed = opt.Seed
		return core.DecomposeContext(opt.Ctx, d.X, cfg)
	}
	plain, err := run(core.PTucker)
	if err != nil {
		return nil, err
	}
	approx, err := run(core.PTuckerApprox)
	if err != nil {
		return nil, err
	}

	tbl := metrics.NewTable("iteration", "P-Tucker time", "Approx time", "Approx |G|", "P-Tucker err", "Approx err")
	var cumP, cumA float64
	for i := 0; i < len(plain.Trace) && i < len(approx.Trace); i++ {
		p, a := plain.Trace[i], approx.Trace[i]
		cumP += p.Elapsed.Seconds()
		cumA += a.Elapsed.Seconds()
		tbl.AddRow(i+1,
			fmt.Sprintf("%.4gs", p.Elapsed.Seconds()),
			fmt.Sprintf("%.4gs", a.Elapsed.Seconds()),
			a.CoreNNZ, p.Error, a.Error)
	}
	last := len(approx.Trace) - 1
	firstApprox := approx.Trace[0].Elapsed.Seconds()
	lastApprox := approx.Trace[last].Elapsed.Seconds()

	return &Result{
		ID:    "fig9",
		Title: Title("fig9"),
		Text: fmt.Sprintf("Figure 9 — P-Tucker vs P-Tucker-Approx (MovieLens-sim, J=5, p=0.2)\n%s\ncumulative time: P-Tucker %.4gs, Approx %.4gs\n",
			tbl, cumP, cumA),
		Values: map[string]float64{
			"plain_final_err":    plain.TrainError,
			"approx_final_err":   approx.TrainError,
			"approx_first_iter":  firstApprox,
			"approx_last_iter":   lastApprox,
			"approx_final_coreg": float64(approx.FinalCoreNNZ),
		},
	}, nil
}
