package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/synth"
)

// Fig6a regenerates Figure 6(a): time per iteration as the tensor order N
// grows, I=100 (→30 at small scale), |Ω|=10³, J=3, for P-Tucker, S-HOT,
// Tucker-CSF and Tucker-wOpt. The paper's shape: P-Tucker fastest at every
// order; wOpt orders of magnitude slower and O.O.M. beyond small N (its
// dense intermediates are Iᴺ cells).
func Fig6a(opt Options) (*Result, error) {
	iDim, orders := 30, []int{3, 4, 5, 6, 7, 8}
	if opt.Scale == synth.ScaleFull {
		iDim, orders = 100, []int{3, 4, 5, 6, 7, 8, 9, 10}
	}
	const nnz, j = 1000, 3

	tbl := metrics.NewTable("order", "P-Tucker", "S-HOT", "Tucker-CSF", "Tucker-wOpt")
	values := map[string]float64{}
	for _, n := range orders {
		progressf(opt, "fig6a: order %d", n)
		rng := rand.New(rand.NewSource(opt.Seed))
		dims := make([]int, n)
		for i := range dims {
			dims[i] = iDim
		}
		x := synth.Uniform(rng, dims, nnz)
		ranks := uniformRanks(n, j)

		pt := runPTucker(opt.Ctx, x, ranks, core.PTucker, opt.Iters, opt.Threads, opt.Seed)
		if err := opt.Ctx.Err(); err != nil {
			return nil, err // cancelled: abort the sweep, don't grind through baselines
		}
		sh := runBaseline("S-HOT", x, ranks, opt.Iters, opt.Seed)
		cs := runBaseline("Tucker-CSF", x, ranks, opt.Iters, opt.Seed)
		wo := runWOpt(x, ranks, opt.Iters, opt.Seed)

		tbl.AddRow(n, pt.timeLabel(), sh.timeLabel(), cs.timeLabel(), wo.timeLabel())
		values[fmt.Sprintf("ptucker_n%d_secs", n)] = pt.TimePerIter.Seconds()
		if wo.Err != nil {
			values[fmt.Sprintf("wopt_n%d_oom", n)] = 1
		}
	}
	return &Result{
		ID:    "fig6a",
		Title: Title("fig6a"),
		Text: fmt.Sprintf("Figure 6(a) — time per iteration vs order (I=%d, |Ω|=%d, J=%d)\n%s",
			iDim, nnz, j, tbl),
		Values: values,
	}, nil
}

// Fig6b regenerates Figure 6(b): time per iteration as the dimensionality In
// grows, N=3, |Ω|=10·In, J=10 (→5 at small scale). Expected shape: P-Tucker
// consistently fastest; wOpt O.O.M. beyond tiny In (dense Iᴺ tensors).
func Fig6b(opt Options) (*Result, error) {
	dimsList, j := []int{100, 1000, 10000}, 5
	if opt.Scale == synth.ScaleFull {
		dimsList, j = []int{100, 1000, 10000, 100000}, 10
	}
	const n = 3

	tbl := metrics.NewTable("dimensionality", "P-Tucker", "S-HOT", "Tucker-CSF", "Tucker-wOpt")
	values := map[string]float64{}
	for _, iDim := range dimsList {
		progressf(opt, "fig6b: I=%d", iDim)
		rng := rand.New(rand.NewSource(opt.Seed))
		x := synth.Uniform(rng, []int{iDim, iDim, iDim}, 10*iDim)
		ranks := uniformRanks(n, min(j, iDim))

		pt := runPTucker(opt.Ctx, x, ranks, core.PTucker, opt.Iters, opt.Threads, opt.Seed)
		if err := opt.Ctx.Err(); err != nil {
			return nil, err // cancelled: abort the sweep, don't grind through baselines
		}
		sh := runBaseline("S-HOT", x, ranks, opt.Iters, opt.Seed)
		cs := runBaseline("Tucker-CSF", x, ranks, opt.Iters, opt.Seed)
		wo := runWOpt(x, ranks, opt.Iters, opt.Seed)

		tbl.AddRow(iDim, pt.timeLabel(), sh.timeLabel(), cs.timeLabel(), wo.timeLabel())
		values[fmt.Sprintf("ptucker_i%d_secs", iDim)] = pt.TimePerIter.Seconds()
		if wo.Err != nil {
			values[fmt.Sprintf("wopt_i%d_oom", iDim)] = 1
		}
	}
	return &Result{
		ID:    "fig6b",
		Title: Title("fig6b"),
		Text: fmt.Sprintf("Figure 6(b) — time per iteration vs dimensionality (N=%d, |Ω|=10·I, J=%d)\n%s",
			n, j, tbl),
		Values: values,
	}, nil
}

// Fig6c regenerates Figure 6(c): time per iteration as |Ω| grows, N=3,
// In=10⁷ (→10⁵ at small scale), J=10 (→5). Expected shape: P-Tucker fastest
// and near-linear in |Ω|; wOpt O.O.M. for every size (Iᴺ dense cells).
func Fig6c(opt Options) (*Result, error) {
	iDim, j, nnzList := 100000, 5, []int{1000, 10000, 100000}
	if opt.Scale == synth.ScaleFull {
		iDim, j, nnzList = 10000000, 10, []int{1000, 10000, 100000, 1000000, 10000000}
	}
	const n = 3

	tbl := metrics.NewTable("|Ω|", "P-Tucker", "S-HOT", "Tucker-CSF", "Tucker-wOpt")
	values := map[string]float64{}
	for _, nnz := range nnzList {
		progressf(opt, "fig6c: |Ω|=%d", nnz)
		rng := rand.New(rand.NewSource(opt.Seed))
		x := synth.Uniform(rng, []int{iDim, iDim, iDim}, nnz)
		ranks := uniformRanks(n, j)

		pt := runPTucker(opt.Ctx, x, ranks, core.PTucker, opt.Iters, opt.Threads, opt.Seed)
		if err := opt.Ctx.Err(); err != nil {
			return nil, err // cancelled: abort the sweep, don't grind through baselines
		}
		sh := runBaseline("S-HOT", x, ranks, opt.Iters, opt.Seed)
		cs := runBaseline("Tucker-CSF", x, ranks, opt.Iters, opt.Seed)
		wo := runWOpt(x, ranks, opt.Iters, opt.Seed)

		tbl.AddRow(nnz, pt.timeLabel(), sh.timeLabel(), cs.timeLabel(), wo.timeLabel())
		values[fmt.Sprintf("ptucker_nnz%d_secs", nnz)] = pt.TimePerIter.Seconds()
		if wo.Err != nil {
			values[fmt.Sprintf("wopt_nnz%d_oom", nnz)] = 1
		}
	}
	return &Result{
		ID:    "fig6c",
		Title: Title("fig6c"),
		Text: fmt.Sprintf("Figure 6(c) — time per iteration vs observed entries (N=%d, I=%d, J=%d)\n%s",
			n, iDim, j, tbl),
		Values: values,
	}, nil
}

// Fig6d regenerates Figure 6(d): time per iteration as the rank J grows,
// N=3, In=10⁶ (→10⁴ at small scale), |Ω|=10⁷ (→10⁵). Expected shape:
// P-Tucker fastest at all ranks; wOpt O.O.M. everywhere.
func Fig6d(opt Options) (*Result, error) {
	iDim, nnz, jList := 10000, 100000, []int{3, 5, 7, 9, 11}
	if opt.Scale == synth.ScaleFull {
		iDim, nnz = 1000000, 10000000
	}
	const n = 3

	tbl := metrics.NewTable("rank", "P-Tucker", "S-HOT", "Tucker-CSF", "Tucker-wOpt")
	values := map[string]float64{}
	rng := rand.New(rand.NewSource(opt.Seed))
	x := synth.Uniform(rng, []int{iDim, iDim, iDim}, nnz)
	for _, j := range jList {
		progressf(opt, "fig6d: J=%d", j)
		ranks := uniformRanks(n, j)

		pt := runPTucker(opt.Ctx, x, ranks, core.PTucker, opt.Iters, opt.Threads, opt.Seed)
		if err := opt.Ctx.Err(); err != nil {
			return nil, err // cancelled: abort the sweep, don't grind through baselines
		}
		sh := runBaseline("S-HOT", x, ranks, opt.Iters, opt.Seed)
		cs := runBaseline("Tucker-CSF", x, ranks, opt.Iters, opt.Seed)
		wo := runWOpt(x, ranks, opt.Iters, opt.Seed)

		tbl.AddRow(j, pt.timeLabel(), sh.timeLabel(), cs.timeLabel(), wo.timeLabel())
		values[fmt.Sprintf("ptucker_j%d_secs", j)] = pt.TimePerIter.Seconds()
	}
	return &Result{
		ID:    "fig6d",
		Title: Title("fig6d"),
		Text: fmt.Sprintf("Figure 6(d) — time per iteration vs rank (N=%d, I=%d, |Ω|=%d)\n%s",
			n, iDim, nnz, tbl),
		Values: values,
	}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
