package experiments

import (
	"strings"
	"testing"

	"repro/internal/synth"
)

func fastOpt() Options {
	return Options{Scale: synth.ScaleSmall, Seed: 1, Threads: 2, Iters: 1}
}

func TestRegistryComplete(t *testing.T) {
	// Every artifact of the paper's evaluation must have a regenerator.
	want := []string{
		"fig5", "fig6a", "fig6b", "fig6c", "fig6d", "fig7", "fig8", "fig9",
		"fig10", "fig11", "table3", "table5", "table6",
	}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments want %d: %v", len(ids), len(want), ids)
	}
	have := make(map[string]bool, len(ids))
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("experiment %q missing from registry %v", id, ids)
		}
		if Title(id) == "" {
			t.Fatalf("experiment %q has no title", id)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("fig99", fastOpt()); err == nil {
		t.Fatal("unknown experiment id must error")
	}
}

func TestFig5Shape(t *testing.T) {
	res, err := Run("fig5", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Pareto skew: the top-20% of core entries must account for
	// well over half of the positive partial error.
	share := res.Values["top20_share"]
	if share < 0.5 || share > 1.0001 {
		t.Fatalf("top-20%% share = %v, want the paper's heavy-tail shape (>0.5)", share)
	}
	if !strings.Contains(res.Text, "top 20%") {
		t.Fatal("rendered table missing percentile rows")
	}
}

func TestTable5ConceptPurity(t *testing.T) {
	res, err := Run("table5", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	purity, chance := res.Values["purity"], res.Values["chance"]
	if purity < 2*chance {
		t.Fatalf("purity %v not meaningfully above chance %v", purity, chance)
	}
	if !strings.Contains(res.Text, "concept") {
		t.Fatal("rendered table missing concept rows")
	}
}

func TestTable6RelationOverlap(t *testing.T) {
	res, err := Run("table6", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	// Discovered relations must overlap the planted (year, hour) peaks far
	// beyond chance (random 4-of-21 years × 4-of-24 hours ≈ 0.18 expected).
	if res.Values["mean_overlap"] < 0.4 {
		t.Fatalf("mean planted overlap = %v, relations not recovered", res.Values["mean_overlap"])
	}
}

func TestFig9ApproxTradeoff(t *testing.T) {
	opt := fastOpt()
	res, err := Run("fig9", opt)
	if err != nil {
		t.Fatal(err)
	}
	// The approximation must shrink per-iteration time as |G| decays...
	if res.Values["approx_last_iter"] >= res.Values["approx_first_iter"] {
		t.Fatalf("approx per-iteration time did not decrease: first %v last %v",
			res.Values["approx_first_iter"], res.Values["approx_last_iter"])
	}
	// ...while keeping the error within a factor of the exact variant
	// (paper: "almost the same accuracy").
	if res.Values["approx_final_err"] > 2*res.Values["plain_final_err"] {
		t.Fatalf("approx error %v too far above plain %v",
			res.Values["approx_final_err"], res.Values["plain_final_err"])
	}
}

func TestFig8MemoryTradeoff(t *testing.T) {
	res, err := Run("fig8", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	// The cache table must dominate plain P-Tucker's O(T·J²) workspaces by
	// orders of magnitude at the largest order (paper: 29.5x at N=10 — our
	// reduced scale reaches far larger ratios because T·J² is tiny).
	if res.Values["memratio_n8"] < 10 {
		t.Fatalf("cache/plain memory ratio = %v, want the Table III separation", res.Values["memratio_n8"])
	}
}

func TestOptionsNormalization(t *testing.T) {
	var opt Options
	opt.norm()
	if opt.Seed == 0 || opt.Iters == 0 || opt.Out == nil {
		t.Fatalf("norm did not fill defaults: %+v", opt)
	}
}

func TestMethodOutcomeLabels(t *testing.T) {
	ok := methodOutcome{TimePerIter: 1500000000}
	if got := ok.timeLabel(); got != "1.5s" {
		t.Fatalf("time label = %q", got)
	}
}
