package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/metrics"
	"repro/internal/synth"
)

// Table3 empirically checks the complexity claims of Table III for the
// P-Tucker family:
//
//   - time per iteration scales ≈linearly in |Ω| (the N²|Ω|Jᴺ term dominates),
//   - intermediate memory scales linearly in T (O(T·J²)) for P-Tucker,
//   - intermediate memory scales with |Ω|·|G| for P-Tucker-Cache.
func Table3(opt Options) (*Result, error) {
	iDim, j := 5000, 4
	nnzs := []int{5000, 10000, 20000, 40000}
	if opt.Scale == synth.ScaleFull {
		iDim = 100000
		nnzs = []int{100000, 200000, 400000, 800000}
	}

	// Time vs |Ω|.
	timeTbl := metrics.NewTable("|Ω|", "time/iter", "time ratio vs previous", "ideal (linear)")
	var prev float64
	var ratios []float64
	for i, nnz := range nnzs {
		progressf(opt, "table3: |Ω|=%d", nnz)
		rng := rand.New(rand.NewSource(opt.Seed))
		x := synth.Uniform(rng, []int{iDim, iDim, iDim}, nnz)
		out := runPTucker(opt.Ctx, x, uniformRanks(3, j), core.PTucker, opt.Iters, opt.Threads, opt.Seed)
		if out.Err != nil {
			return nil, out.Err
		}
		secs := out.TimePerIter.Seconds()
		if i == 0 {
			timeTbl.AddRow(nnz, fmt.Sprintf("%.4gs", secs), "-", "-")
		} else {
			r := secs / prev
			ratios = append(ratios, r)
			timeTbl.AddRow(nnz, fmt.Sprintf("%.4gs", secs), fmt.Sprintf("%.2fx", r), "2.00x")
		}
		prev = secs
	}

	// Memory vs threads (analytic accounting, Definition 7).
	memTbl := metrics.NewTable("threads", "P-Tucker intermediate bytes", "bytes/thread")
	rng := rand.New(rand.NewSource(opt.Seed))
	x := synth.Uniform(rng, []int{iDim, iDim, iDim}, nnzs[0])
	values := map[string]float64{}
	for _, t := range []int{1, 2, 4, 8} {
		cfg := core.Defaults(uniformRanks(3, j))
		cfg.MaxIters = 1
		cfg.Tol = 0
		cfg.Threads = t
		cfg.Seed = opt.Seed
		m, err := core.DecomposeContext(opt.Ctx, x, cfg)
		if err != nil {
			return nil, err
		}
		memTbl.AddRow(t, m.IntermediateBytes, m.IntermediateBytes/int64(t))
		values[fmt.Sprintf("mem_t%d", t)] = float64(m.IntermediateBytes)
	}

	// Cache memory vs plain.
	cacheCfg := core.Defaults(uniformRanks(3, j))
	cacheCfg.Method = core.PTuckerCache
	cacheCfg.MaxIters = 1
	cacheCfg.Tol = 0
	cacheCfg.Threads = 2
	cacheCfg.Seed = opt.Seed
	cm, err := core.DecomposeContext(opt.Ctx, x, cacheCfg)
	if err != nil {
		return nil, err
	}
	expected := float64(x.NNZ()) * float64(j*j*j) * 8
	values["cache_bytes"] = float64(cm.IntermediateBytes)
	values["cache_expected_bytes"] = expected
	var mean float64
	for _, r := range ratios {
		mean += r
	}
	if len(ratios) > 0 {
		mean /= float64(len(ratios))
	}
	values["mean_time_ratio"] = mean

	return &Result{
		ID:    "table3",
		Title: Title("table3"),
		Text: fmt.Sprintf("Table III — empirical complexity checks (N=3, I=%d, J=%d)\n\nTime scaling in |Ω| (doubling |Ω| should ≈double the time):\n%s\nIntermediate memory vs threads (O(T·J²)):\n%s\nP-Tucker-Cache table: %d bytes (analytic |Ω|·|G|·8 = %.4g)\n",
			iDim, j, timeTbl, memTbl, cm.IntermediateBytes, expected),
		Values: values,
	}, nil
}

// Table5 regenerates the concept-discovery experiment: factorize the
// MovieLens-like tensor, k-means the movie factor matrix, and report the
// clusters against the planted genres. The paper (J=8, K=100) finds coherent
// genre concepts; with planted ground truth we can also score purity, which
// must be far above the 1/G chance level.
func Table5(opt Options) (*Result, error) {
	mcfg := synth.DefaultMovieLensConfig()
	mcfg.Seed = opt.Seed
	j, k := 6, 6
	if opt.Scale == synth.ScaleFull {
		mcfg.Users, mcfg.Movies, mcfg.NNZ = 2000, 800, 100000
		j, k = 8, 8
	}
	d := synth.MovieLens(mcfg)

	cfg := core.Defaults(uniformRanks(4, j))
	cfg.MaxIters = 8
	cfg.Threads = opt.Threads
	cfg.Seed = opt.Seed
	m, err := core.DecomposeContext(opt.Ctx, d.X, cfg)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(opt.Seed + 31))
	concepts, err := discovery.Concepts(m, 1, k, 6, rng)
	if err != nil {
		return nil, err
	}
	purity, err := discovery.ConceptPurity(m, 1, k, d.MovieGenre, rng)
	if err != nil {
		return nil, err
	}

	tbl := metrics.NewTable("concept", "majority genre", "top member movies (genre)")
	for _, c := range concepts {
		counts := map[int]int{}
		for _, mm := range c.Members {
			counts[d.MovieGenre[mm]]++
		}
		best, bestN := 0, -1
		for g, n := range counts {
			if n > bestN {
				best, bestN = g, n
			}
		}
		members := ""
		for i, mm := range c.Members {
			if i > 0 {
				members += ", "
			}
			members += fmt.Sprintf("m%d(%s)", mm, d.GenreNames[d.MovieGenre[mm]])
		}
		tbl.AddRow(fmt.Sprintf("C%d", c.Cluster+1), d.GenreNames[best], members)
	}

	return &Result{
		ID:    "table5",
		Title: Title("table5"),
		Text: fmt.Sprintf("Table V — concept discovery on MovieLens-sim (J=%d, K=%d)\n%s\ncluster purity vs planted genres: %.2f (chance: %.2f)\n",
			j, k, tbl, purity, 1/float64(mcfg.Genres)),
		Values: map[string]float64{"purity": purity, "chance": 1 / float64(mcfg.Genres)},
	}, nil
}

// Table6 regenerates the relation-discovery experiment: inspect the top-3
// core entries of the MovieLens-sim factorization, list the strongest
// year/hour loadings for each, and score their overlap against the planted
// (genre → years/hours) preference peaks.
func Table6(opt Options) (*Result, error) {
	mcfg := synth.DefaultMovieLensConfig()
	mcfg.Seed = opt.Seed
	j := 6
	if opt.Scale == synth.ScaleFull {
		mcfg.Users, mcfg.Movies, mcfg.NNZ = 2000, 800, 100000
		j = 8
	}
	d := synth.MovieLens(mcfg)

	cfg := core.Defaults(uniformRanks(4, j))
	cfg.MaxIters = 8
	cfg.Threads = opt.Threads
	cfg.Seed = opt.Seed
	m, err := core.DecomposeContext(opt.Ctx, d.X, cfg)
	if err != nil {
		return nil, err
	}

	rels := discovery.Relations(m, 3, 4)
	modeNames := []string{"user", "movie", "year", "hour"}

	tbl := metrics.NewTable("relation", "G value", "top years", "top hours", "best planted overlap")
	var bestOverlaps []float64
	for i, r := range rels {
		years := r.TopIndices[2]
		hours := r.TopIndices[3]
		// Score against every planted relation, keep the best joint overlap.
		best := 0.0
		for _, planted := range d.Relations {
			s := (discovery.OverlapScore(years, planted.PeakYears) +
				discovery.OverlapScore(hours, planted.PeakHours)) / 2
			if s > best {
				best = s
			}
		}
		bestOverlaps = append(bestOverlaps, best)
		tbl.AddRow(fmt.Sprintf("R%d %v", i+1, r.CoreIndex), r.Value,
			fmt.Sprintf("%v", years), fmt.Sprintf("%v", hours), fmt.Sprintf("%.2f", best))
	}
	var meanOverlap float64
	for _, v := range bestOverlaps {
		meanOverlap += v
	}
	if len(bestOverlaps) > 0 {
		meanOverlap /= float64(len(bestOverlaps))
	}

	detail := ""
	for _, r := range rels {
		detail += "  " + r.Describe(modeNames) + "\n"
	}

	return &Result{
		ID:    "table6",
		Title: Title("table6"),
		Text: fmt.Sprintf("Table VI — relation discovery on MovieLens-sim (top-3 core entries)\n%s\nmean planted-relation overlap of top relations: %.2f\n%s",
			tbl, meanOverlap, detail),
		Values: map[string]float64{"mean_overlap": meanOverlap},
	}, nil
}
