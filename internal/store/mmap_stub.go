//go:build !unix

package store

// mmapSupported reports whether this build can map files read-only. On
// non-unix platforms every open falls back to the heap decoder.
const mmapSupported = false

func mapFile(path string) ([]byte, error) {
	return nil, ErrMmapUnsupported
}

func unmapFile(data []byte) error { return nil }
