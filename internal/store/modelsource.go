package store

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/tensor"
)

// Zero-copy model opening. A ModelSource hands the serving layer a decoded
// *core.Model plus the knowledge of where its arrays live: on the heap (the
// classic loader) or aliasing a read-only file mapping (MmapModel). Mapped
// models cost O(metadata) to open and no resident heap proportional to
// their size — a cold model is address space, not RSS — which is what lets
// one process host many models (serve.Registry). The serving layer never
// mutates a served model in place (online learning resumes on clones), so a
// PROT_READ mapping is safe to serve from; the source must stay open for as
// long as any snapshot built from its model can be referenced.

// ErrMmapUnsupported reports a platform without read-only file mapping;
// callers fall back to the heap loader.
var ErrMmapUnsupported = errors.New("store: mmap is not supported on this platform")

// ModelSource is an open model plus the lifetime of its backing storage.
type ModelSource interface {
	// Model returns the decoded model. Mapped sources' models must be
	// treated as read-only and must not outlive Close.
	Model() *core.Model
	// Path returns the file the model came from ("" for in-memory models).
	Path() string
	// Mapped reports whether the model aliases a file mapping.
	Mapped() bool
	// MappedBytes returns the size of the backing mapping (0 when heap).
	MappedBytes() int64
	// Close releases the backing storage. Closing a mapped source
	// invalidates every slice of its model; the caller guarantees no
	// request can still reach it.
	Close() error
}

type heapSource struct {
	m    *core.Model
	path string
}

func (s *heapSource) Model() *core.Model { return s.m }
func (s *heapSource) Path() string       { return s.path }
func (s *heapSource) Mapped() bool       { return false }
func (s *heapSource) MappedBytes() int64 { return 0 }
func (s *heapSource) Close() error       { return nil }

// HeapModel wraps an already-decoded model as a ModelSource.
func HeapModel(m *core.Model, path string) ModelSource {
	return &heapSource{m: m, path: path}
}

type mappedSource struct {
	m      *core.Model
	path   string
	data   []byte
	closed atomic.Bool
}

func (s *mappedSource) Model() *core.Model { return s.m }
func (s *mappedSource) Path() string       { return s.path }
func (s *mappedSource) Mapped() bool       { return true }
func (s *mappedSource) MappedBytes() int64 {
	if s.closed.Load() {
		return 0
	}
	return int64(len(s.data))
}

func (s *mappedSource) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	return unmapFile(s.data)
}

// MmapModel maps the named model file read-only and decodes it in place
// (core.ModelFromMapping): factor rows and core entries alias the mapping.
// It fails with ErrMmapUnsupported / core.ErrNotMappable where in-place
// serving cannot work — OpenModel turns those into a heap fallback — and
// with the core format errors for files no loader should trust.
func MmapModel(path string) (ModelSource, error) {
	data, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	m, err := core.ModelFromMapping(data)
	if err != nil {
		unmapErr := unmapFile(data)
		return nil, errors.Join(fmt.Errorf("store: mmap model %s: %w", path, err), unmapErr)
	}
	return &mappedSource{m: m, path: path, data: data}, nil
}

// OpenModel opens the named model file, preferring the zero-copy mapped
// decoder when preferMmap is set and falling back to the heap loader when
// the platform, the file's format version, or its layout cannot support
// in-place serving. Verdicts about the file's integrity (bad format, bad
// checksum, unsupported version) do not fall back: a file the mapped
// decoder proved corrupt must not be retried by the heap decoder.
func OpenModel(path string, preferMmap bool) (ModelSource, error) {
	if preferMmap && mmapSupported {
		src, err := MmapModel(path)
		if err == nil {
			return src, nil
		}
		if errors.Is(err, core.ErrBadModelFormat) ||
			errors.Is(err, core.ErrModelChecksum) ||
			errors.Is(err, core.ErrModelVersion) {
			return nil, err
		}
		// Not mappable here (old format, platform, odd file): heap-load it.
	}
	m, err := core.LoadModel(path)
	if err != nil {
		return nil, err
	}
	return &heapSource{m: m, path: path}, nil
}

// TensorSource is an open tensor whose value block may alias a read-only
// file mapping (see MmapTensor).
type TensorSource struct {
	t      *tensor.Coord
	path   string
	data   []byte
	closed atomic.Bool
}

// Tensor returns the decoded tensor; read-only, must not outlive Close.
func (s *TensorSource) Tensor() *tensor.Coord { return s.t }

// MappedBytes returns the size of the backing mapping (0 when heap-backed
// or closed).
func (s *TensorSource) MappedBytes() int64 {
	if s.data == nil || s.closed.Load() {
		return 0
	}
	return int64(len(s.data))
}

// Close releases the mapping, if any.
func (s *TensorSource) Close() error {
	if !s.closed.CompareAndSwap(false, true) || s.data == nil {
		return nil
	}
	return unmapFile(s.data)
}

// MmapTensor maps a binary COO tensor snapshot (.ptkt) and serves its
// 8-byte-aligned value block in place: the returned tensor's Values() alias
// the mapping. Unlike the model opener this verifies the full CRC at open
// (tensor snapshots carry no metadata-only checksum) and widens the u32
// index block onto the heap — the win is the value block, which is the
// format's dominant aligned payload. Only binary snapshots qualify; text
// tensors and unsupported platforms return an error and callers fall back
// to tensor.ReadFile.
func MmapTensor(path string) (*TensorSource, error) {
	data, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	t, err := tensor.CoordFromMapping(data)
	if err != nil {
		unmapErr := unmapFile(data)
		return nil, errors.Join(fmt.Errorf("store: mmap tensor %s: %w", path, err), unmapErr)
	}
	return &TensorSource{t: t, path: path, data: data}, nil
}
