//go:build race

package store

// raceEnabled reports that the race detector is instrumenting this build;
// timing-based assertions (TestBinaryLoadSpeedup) skip themselves, since
// instrumentation skews the two loaders' costs differently.
const raceEnabled = true
