package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/tensor"
)

// The journal is an append-only log of observation batches. Each record is
// framed with its own length and CRC-32, so a crash mid-write leaves a torn
// tail that open-time recovery detects and truncates — every record before
// it is intact and replays. Records carry a strictly increasing sequence
// number, which pins the replay order and catches missing or reordered
// records. Sequence numbers are monotone across the journal's whole life,
// including compactions: Reset rotates to an empty file whose header records
// the base sequence, so a record's number is never reused. That is what lets
// a training snapshot name the records it subsumes (its covered sequence) —
// replay after a crash skips everything at or below it, and a crash landing
// between "snapshot renamed" and "journal rotated" cannot double-apply.
//
// Layout (version 1, little-endian):
//
//	header  magic "PTKJ" | version u32 | order u32 | reserved u32 |
//	        baseSeq u64                                           (24 bytes)
//	record  payloadLen u32 | crc32(payload) u32 | payload
//	payload seq u64 | count u32 | count × (order × u32 index, f64 value bits)

// JournalMagic is the 4-byte signature that opens a journal file.
const JournalMagic = "PTKJ"

const (
	journalVersion    = 1
	journalHeaderSize = 24
	// maxJournalRecord bounds one record's payload so a corrupt length
	// prefix cannot trigger a huge allocation.
	maxJournalRecord = 1 << 28
)

// Errors returned by the journal.
var (
	// ErrBadJournal reports a journal file that is not a journal or whose
	// header is inconsistent with the caller's expectations.
	ErrBadJournal = errors.New("store: not a valid observation journal")
	// ErrJournalClosed reports an operation on a closed journal.
	ErrJournalClosed = errors.New("store: journal is closed")
)

// SyncMode selects when appended records are fsynced to disk.
type SyncMode int

const (
	// SyncBatch groups commits: appends return as soon as the record is
	// written to the OS, and a background flusher fsyncs at most every
	// SyncPolicy.Interval. A crash can lose at most the last interval's
	// records — the usual journal trade (group commit).
	SyncBatch SyncMode = iota
	// SyncAlways fsyncs every append before it returns: no accepted
	// observation is ever lost, at one disk flush per request.
	SyncAlways
	// SyncNone never fsyncs (tests, throwaway runs): the OS flushes on its
	// own schedule, and a crash loses whatever was still in the page cache.
	SyncNone
)

func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return "batch"
	}
}

// SyncPolicy is a SyncMode plus the batching interval used by SyncBatch.
type SyncPolicy struct {
	Mode SyncMode
	// Interval is the maximum time an appended record waits for its fsync
	// under SyncBatch; 0 means DefaultSyncInterval.
	Interval time.Duration
}

// DefaultSyncInterval is the SyncBatch flush cadence when none is given.
const DefaultSyncInterval = 100 * time.Millisecond

// ParseSyncPolicy reads a -journal-sync flag value: "always", "none",
// "batch" (the default interval), or a duration like "250ms" (batch with
// that interval).
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "batch":
		return SyncPolicy{Mode: SyncBatch}, nil
	case "always":
		return SyncPolicy{Mode: SyncAlways}, nil
	case "none":
		return SyncPolicy{Mode: SyncNone}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return SyncPolicy{}, fmt.Errorf("store: bad sync policy %q (want always, none, batch, or a positive duration)", s)
	}
	return SyncPolicy{Mode: SyncBatch, Interval: d}, nil
}

// Record is one replayed journal entry: a batch of observations exactly as
// the serving layer accepted it.
type Record struct {
	Seq          uint64
	Observations []core.Observation
}

// Journal is an append-only observation log. It is safe for concurrent use.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	order   int
	off     int64 // end of the last intact record; appends go here
	baseSeq uint64
	lastSeq uint64
	count   int
	policy  SyncPolicy
	dirty   bool
	syncErr error // a failed background fsync poisons the journal
	closed  bool

	// observeSync, when set, receives the wall-clock duration of each
	// successful fsync — every path flushes through it (SyncAlways appends,
	// the SyncBatch flusher, explicit Syncs), so the owner sees the full
	// fsync latency distribution. Invoked under mu; keep it cheap.
	observeSync func(time.Duration)

	stop chan struct{}
	done chan struct{}

	// Recovered reports how many trailing bytes open-time recovery dropped
	// as a torn record (0 for a clean file).
	Recovered int64
}

// CreateJournal atomically replaces any file at path with a fresh, empty
// journal whose sequence numbers start after baseSeq, and opens it. A
// replication follower uses it to begin a local journal at the primary's
// covered sequence, so records it tails from the primary keep their primary
// sequence numbers when appended locally.
func CreateJournal(path string, order int, baseSeq uint64, policy SyncPolicy) (*Journal, error) {
	if order <= 0 || order > 255 {
		return nil, fmt.Errorf("store: journal order %d out of range", order)
	}
	if _, err := writeAtomic(path, false, func(f *os.File) error {
		_, err := f.Write(journalHeader(order, baseSeq))
		return err
	}); err != nil {
		return nil, fmt.Errorf("store: create journal: %w", err)
	}
	return OpenJournal(path, order, policy)
}

// OpenJournal opens (creating if necessary) the journal at path for a tensor
// of the given order. Existing records are scanned: the open validates the
// header, finds the end of the last intact record, and truncates a torn tail
// left by a crash. Appends continue the surviving sequence.
func OpenJournal(path string, order int, policy SyncPolicy) (*Journal, error) {
	if order <= 0 || order > 255 {
		return nil, fmt.Errorf("store: journal order %d out of range", order)
	}
	if policy.Interval <= 0 {
		policy.Interval = DefaultSyncInterval
	}
	//ptlint:ignore atomicwrite the journal is an append-only log opened in place by design: torn tails are CRC-framed and truncated right here in recover(), and rotation goes through writeAtomic
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open journal: %w", err)
	}
	j := &Journal{f: f, path: path, order: order, policy: policy}
	if err := j.recover(); err != nil {
		f.Close()
		return nil, err
	}
	if policy.Mode == SyncBatch {
		j.stop = make(chan struct{})
		j.done = make(chan struct{})
		go j.flusher()
	}
	return j, nil
}

// recover validates the header (writing a fresh one into an empty file) and
// scans records to find the intact end of the log.
func (j *Journal) recover() error {
	st, err := j.f.Stat()
	if err != nil {
		return fmt.Errorf("store: open journal: %w", err)
	}
	if st.Size() == 0 {
		if _, err := j.f.WriteAt(journalHeader(j.order, 0), 0); err != nil {
			return fmt.Errorf("store: init journal: %w", err)
		}
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("store: init journal: %w", err)
		}
		j.off = journalHeaderSize
		return nil
	}

	var head [journalHeaderSize]byte
	if _, err := io.ReadFull(io.NewSectionReader(j.f, 0, st.Size()), head[:]); err != nil {
		return fmt.Errorf("%w: truncated header", ErrBadJournal)
	}
	if string(head[0:4]) != JournalMagic {
		return fmt.Errorf("%w: bad magic %q", ErrBadJournal, head[0:4])
	}
	if v := binary.LittleEndian.Uint32(head[4:8]); v != journalVersion {
		return fmt.Errorf("%w: version %d, want %d", ErrBadJournal, v, journalVersion)
	}
	if o := int(binary.LittleEndian.Uint32(head[8:12])); o != j.order {
		return fmt.Errorf("%w: journal order %d, tensor order %d", ErrBadJournal, o, j.order)
	}
	j.baseSeq = binary.LittleEndian.Uint64(head[16:24])
	j.lastSeq = j.baseSeq

	off := int64(journalHeaderSize)
	for off < st.Size() {
		rec, next, err := readRecord(j.f, off, st.Size(), j.order)
		if err != nil {
			// Torn or corrupt tail: everything before off is intact. Truncate
			// so the next append does not bury garbage mid-log.
			j.Recovered = st.Size() - off
			if terr := j.f.Truncate(off); terr != nil {
				return fmt.Errorf("store: truncate torn journal tail: %w", terr)
			}
			break
		}
		if rec.Seq != j.lastSeq+1 {
			return fmt.Errorf("%w: record sequence %d after %d", ErrBadJournal, rec.Seq, j.lastSeq)
		}
		j.lastSeq = rec.Seq
		j.count++
		off = next
	}
	j.off = off
	return nil
}

// readRecord decodes the record at off, returning it and the next offset.
// Any truncation or checksum failure is an error (the caller treats it as
// the torn tail).
func readRecord(f io.ReaderAt, off, size int64, order int) (Record, int64, error) {
	var frame [8]byte
	if off+8 > size {
		return Record{}, 0, io.ErrUnexpectedEOF
	}
	if _, err := f.ReadAt(frame[:], off); err != nil {
		return Record{}, 0, err
	}
	plen := int64(binary.LittleEndian.Uint32(frame[0:4]))
	want := binary.LittleEndian.Uint32(frame[4:8])
	if plen < 12 || plen > maxJournalRecord || off+8+plen > size {
		return Record{}, 0, io.ErrUnexpectedEOF
	}
	payload := make([]byte, plen)
	if _, err := f.ReadAt(payload, off+8); err != nil {
		return Record{}, 0, err
	}
	if crc32.ChecksumIEEE(payload) != want {
		return Record{}, 0, fmt.Errorf("%w: record checksum mismatch at offset %d", ErrBadJournal, off)
	}

	seq := binary.LittleEndian.Uint64(payload[0:8])
	count := int(binary.LittleEndian.Uint32(payload[8:12]))
	obsSize := int64(4*order + 8)
	if int64(count)*obsSize != plen-12 {
		return Record{}, 0, fmt.Errorf("%w: record at %d declares %d observations in %d bytes", ErrBadJournal, off, count, plen)
	}
	obs := make([]core.Observation, count)
	p := payload[12:]
	for i := range obs {
		idx := make([]int, order)
		for k := range idx {
			idx[k] = int(binary.LittleEndian.Uint32(p))
			p = p[4:]
		}
		obs[i] = core.Observation{
			Index: idx,
			Value: math.Float64frombits(binary.LittleEndian.Uint64(p)),
		}
		p = p[8:]
	}
	return Record{Seq: seq, Observations: obs}, off + 8 + plen, nil
}

// Append writes one observation batch as a single record and returns its
// sequence number. Under SyncAlways the record is on disk when Append
// returns; under SyncBatch it is on disk within the policy interval. Every
// observation must have the journal's order and non-negative coordinates
// that fit the format's 32-bit indices.
func (j *Journal) Append(obs []core.Observation) (uint64, error) {
	if len(obs) == 0 {
		return 0, fmt.Errorf("store: empty observation batch")
	}
	for i, o := range obs {
		if len(o.Index) != j.order {
			return 0, fmt.Errorf("store: observation %d has %d modes, journal has %d", i, len(o.Index), j.order)
		}
		for k, c := range o.Index {
			if c < 0 || int64(c) > math.MaxUint32 {
				return 0, fmt.Errorf("store: observation %d index %d out of range in mode %d", i, c, k)
			}
		}
	}
	// A record the reader would refuse must never be written: recovery treats
	// an over-limit length prefix as a torn tail and would silently truncate
	// this record and everything after it.
	if plen := 12 + len(obs)*(4*j.order+8); plen > maxJournalRecord {
		return 0, fmt.Errorf("store: observation batch encodes to %d bytes, exceeding the %d-byte record limit — split it",
			plen, maxJournalRecord)
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, ErrJournalClosed
	}
	if j.syncErr != nil {
		return 0, j.syncErr
	}

	seq := j.lastSeq + 1
	plen := 12 + len(obs)*(4*j.order+8)
	buf := make([]byte, 8+plen)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(plen))
	payload := buf[8:]
	binary.LittleEndian.PutUint64(payload[0:8], seq)
	binary.LittleEndian.PutUint32(payload[8:12], uint32(len(obs)))
	p := payload[12:]
	for _, o := range obs {
		for _, c := range o.Index {
			binary.LittleEndian.PutUint32(p, uint32(c))
			p = p[4:]
		}
		binary.LittleEndian.PutUint64(p, math.Float64bits(o.Value))
		p = p[8:]
	}
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))

	if _, err := j.f.WriteAt(buf, j.off); err != nil {
		return 0, fmt.Errorf("store: journal append: %w", err)
	}
	j.off += int64(len(buf))
	j.lastSeq = seq
	j.count++

	switch j.policy.Mode {
	case SyncAlways:
		t0 := time.Now()
		if err := j.f.Sync(); err != nil {
			return 0, fmt.Errorf("store: journal fsync: %w", err)
		}
		if j.observeSync != nil {
			j.observeSync(time.Since(t0))
		}
	case SyncBatch:
		j.dirty = true
	}
	return seq, nil
}

// ObserveSync installs fn to receive the duration of every successful fsync
// (nil removes it). The serving layer points it at a latency histogram.
func (j *Journal) ObserveSync(fn func(time.Duration)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.observeSync = fn
}

// Replay streams every intact record, in order, to fn. It holds the journal
// lock for the duration — concurrent Appends (and Reset rotations, which
// swap the underlying file) block until it returns — so fn must not call
// back into the journal.
func (j *Journal) Replay(fn func(Record) error) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrJournalClosed
	}
	end := j.off
	last := j.baseSeq

	off := int64(journalHeaderSize)
	for off < end {
		rec, next, err := readRecord(j.f, off, end, j.order)
		if err != nil {
			return fmt.Errorf("store: journal replay at offset %d: %w", off, err)
		}
		if rec.Seq != last+1 {
			return fmt.Errorf("%w: replay sequence %d after %d", ErrBadJournal, rec.Seq, last)
		}
		last = rec.Seq
		if err := fn(rec); err != nil {
			return err
		}
		off = next
	}
	return nil
}

// Len returns the number of intact records.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.count
}

// Size returns the journal file's current length in bytes (header included):
// the end of the last intact record, where the next append goes. Callers use
// it to trigger size-based compaction.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.off
}

// LastSeq returns the sequence number of the newest record (0 if empty).
func (j *Journal) LastSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastSeq
}

// BaseSeq returns the header base sequence: every surviving record has
// Seq > BaseSeq. It advances at each compaction (ResetThrough), which is what
// lets a replication client detect that the records it still needs have been
// rotated out.
func (j *Journal) BaseSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.baseSeq
}

// StreamChunk copies out the verbatim frame bytes (length + CRC + payload,
// exactly as written) of consecutive records with after < Seq ≤ maxSeq, up to
// maxBytes (at least one record is returned if any qualifies, even when it
// alone exceeds maxBytes). It returns the copied frames, the number of
// records, and the sequence of the last record included (== after when
// nothing qualified). The journal's own framing is the stream's wire format:
// a replication follower re-verifies each CRC on receipt, and a response torn
// mid-frame is detected exactly like a torn journal tail.
//
// Serving a chunk scans from the file header (records are rotation-compacted,
// so the scan is bounded by the journal's compaction policy) and holds the
// journal lock, ordering it against concurrent appends and rotations.
func (j *Journal) StreamChunk(after, maxSeq uint64, maxBytes int) (frames []byte, records int, last uint64, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil, 0, after, ErrJournalClosed
	}
	if after < j.baseSeq {
		return nil, 0, after, fmt.Errorf("%w: records after %d were compacted away (journal base %d)", ErrBadJournal, after, j.baseSeq)
	}
	last = after
	start, end := int64(-1), int64(-1)
	off := int64(journalHeaderSize)
	for off < j.off {
		rec, next, rerr := readRecord(j.f, off, j.off, j.order)
		if rerr != nil {
			return nil, 0, after, fmt.Errorf("store: journal stream at offset %d: %w", off, rerr)
		}
		if rec.Seq > maxSeq {
			break
		}
		if rec.Seq > after {
			if start < 0 {
				start = off
			}
			end = next
			records++
			last = rec.Seq
			if int(end-start) >= maxBytes {
				break
			}
		}
		off = next
	}
	if start < 0 {
		return nil, 0, after, nil
	}
	frames = make([]byte, end-start)
	if _, err := j.f.ReadAt(frames, start); err != nil {
		return nil, 0, after, fmt.Errorf("store: journal stream: %w", err)
	}
	return frames, records, last, nil
}

// DecodeRecord decodes the first framed record in b, returning it and the
// number of bytes consumed. An incomplete frame (the buffer ends mid-record —
// a torn stream tail) returns io.ErrUnexpectedEOF; a frame whose checksum or
// shape is wrong returns ErrBadJournal. It is the buffer-level counterpart of
// the journal's on-disk reader, used by replication followers to decode
// streamed chunks with the same tolerance for torn tails.
func DecodeRecord(b []byte, order int) (Record, int, error) {
	rec, next, err := readRecord(bytesReaderAt(b), 0, int64(len(b)), order)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, int(next), nil
}

// bytesReaderAt adapts a byte slice to io.ReaderAt without the bytes.Reader
// allocation dance.
type bytesReaderAt []byte

func (b bytesReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > int64(len(b)) {
		return 0, io.EOF
	}
	n := copy(p, b[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Poison makes every subsequent Append fail with err (wrapped), without
// closing the journal. It is the owner's safety valve when the journal's
// contents no longer match the state it is supposed to reconstruct — e.g. a
// reload re-base that could not reset it: accepting further records would
// interleave two incompatible generations and make the next replay fail, so
// refusing mutations loudly is the recoverable behavior.
func (j *Journal) Poison(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.syncErr == nil {
		j.syncErr = fmt.Errorf("store: journal poisoned: %w", err)
	}
}

// Sync forces an fsync of everything appended so far.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrJournalClosed
	}
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if j.policy.Mode == SyncNone {
		return nil
	}
	j.dirty = false
	t0 := time.Now()
	if err := j.f.Sync(); err != nil {
		j.syncErr = fmt.Errorf("store: journal fsync: %w", err)
		return j.syncErr
	}
	if j.observeSync != nil {
		j.observeSync(time.Since(t0))
	}
	return nil
}

// Compact folds the whole journal into a snapshot: CompactThrough at the
// current last sequence. The caller asserts x subsumes every record
// appended so far; records that arrive while the snapshot is being written
// are preserved.
func (j *Journal) Compact(snapshotPath string, x *tensor.Coord) error {
	j.mu.Lock()
	through := j.lastSeq
	closed := j.closed
	j.mu.Unlock()
	if closed {
		return ErrJournalClosed
	}
	return j.CompactThrough(snapshotPath, x, through)
}

// CompactThrough persists x — which must subsume every record with
// Seq ≤ through — as a training snapshot covering through, then removes
// exactly those records from the journal, preserving any appended later.
// Every state a crash can expose is consistent: before the snapshot rename,
// the old snapshot plus replay reconstructs x; between the rename and the
// rotation, the new snapshot covers the compacted records and replay skips
// them; after, only uncovered records remain. Appends may run concurrently —
// their records have Seq > through and survive the rotation — which is what
// lets a serving layer compact off its hot path.
func (j *Journal) CompactThrough(snapshotPath string, x *tensor.Coord, through uint64) error {
	if err := WriteSnapshot(snapshotPath, x, through); err != nil {
		return err
	}
	return j.ResetThrough(through)
}

// Reset empties the journal: ResetThrough at the current last sequence.
// Call it only after every record's effects are persisted elsewhere — a
// compaction snapshot, or a reload that supersedes them.
func (j *Journal) Reset() error {
	j.mu.Lock()
	through := j.lastSeq
	closed := j.closed
	j.mu.Unlock()
	if closed {
		return ErrJournalClosed
	}
	return j.ResetThrough(through)
}

// ResetThrough removes every record with Seq ≤ through by atomically
// rotating in a fresh file — header base sequence `through`, followed by the
// surviving records' bytes verbatim. Sequence numbers continue, never
// restart, so a snapshot's covered sequence stays meaningful across any
// crash and can never collide with a future record.
func (j *Journal) ResetThrough(through uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrJournalClosed
	}
	if through > j.lastSeq {
		through = j.lastSeq
	}
	if through <= j.baseSeq {
		return nil // nothing at or below through is in the file
	}

	// Records are contiguous with increasing sequences, so the survivors are
	// a tail: scan to the first record past through.
	off := int64(journalHeaderSize)
	survivors := j.count
	for off < j.off {
		rec, next, err := readRecord(j.f, off, j.off, j.order)
		if err != nil {
			return fmt.Errorf("store: journal reset: %w", err)
		}
		if rec.Seq > through {
			break
		}
		off = next
		survivors--
	}
	tail := make([]byte, j.off-off)
	if len(tail) > 0 {
		if _, err := j.f.ReadAt(tail, off); err != nil {
			return fmt.Errorf("store: journal reset: %w", err)
		}
	}

	// The rename inside writeAtomic is the commit point; the returned
	// descriptor then IS the journal at its path, replacing the old one.
	f, err := writeAtomic(j.path, true, func(f *os.File) error {
		if _, err := f.Write(journalHeader(j.order, through)); err != nil {
			return err
		}
		_, err := f.Write(tail)
		return err
	})
	if err != nil {
		return fmt.Errorf("store: journal reset: %w", err)
	}
	old := j.f
	j.f = f
	_ = old.Close()
	j.off = journalHeaderSize + int64(len(tail))
	j.baseSeq = through
	j.count = survivors
	j.dirty = false
	j.syncErr = nil
	return nil
}

// journalHeader renders the 24-byte file header.
func journalHeader(order int, baseSeq uint64) []byte {
	head := make([]byte, journalHeaderSize)
	copy(head[0:4], JournalMagic)
	binary.LittleEndian.PutUint32(head[4:8], journalVersion)
	binary.LittleEndian.PutUint32(head[8:12], uint32(order))
	binary.LittleEndian.PutUint64(head[16:24], baseSeq)
	return head
}

// Close flushes and closes the journal. Idempotent.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	j.mu.Unlock()

	if j.stop != nil {
		close(j.stop)
		<-j.done
	}
	var err error
	if j.policy.Mode != SyncNone {
		err = j.f.Sync()
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// flusher is the SyncBatch group-commit goroutine: it fsyncs dirty appends
// at most once per interval.
func (j *Journal) flusher() {
	defer close(j.done)
	t := time.NewTicker(j.policy.Interval)
	defer t.Stop()
	for {
		select {
		case <-j.stop:
			return
		case <-t.C:
			j.mu.Lock()
			if j.dirty && !j.closed {
				_ = j.syncLocked()
			}
			j.mu.Unlock()
		}
	}
}
