// Package store is the durability subsystem: binary tensor snapshots and an
// append-only observation journal, the two artifacts that let a served
// P-Tucker process survive a crash without losing its online learning.
//
// Snapshots (WriteTensor / ReadTensor) persist a sparse tensor in the
// fixed-width binary format of tensor.WriteBinary — roughly an order of
// magnitude faster to load than the text loader, CRC-checked, and written
// crash-safely (temp file, fsync, rename). They store the accumulated
// training set so a restarted process can warm-refit over the true union of
// everything it ever observed, not just what arrived since the restart.
//
// The journal (Journal) records every observation batch accepted by the
// serving layer before it is applied, with a per-record CRC and a strictly
// increasing sequence number. After a crash, replaying the journal over the
// last snapshot reconstructs the fitter's state deterministically —
// observation application (append, fold-in) draws no randomness, so the
// replayed factors are bit-identical to the pre-crash ones. A torn final
// record (the crash happened mid-write) is detected by its CRC and dropped;
// everything before it replays. Compact folds a journal into a fresh
// snapshot and truncates it, bounding replay time.
//
// Dir ties the two together as a data directory with well-known file names;
// it implements core.TrainingStore, so a Fitter can attach the persisted
// training set directly (Fitter.AttachStore).
package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/tensor"
)

// Dir is a handle on a data directory holding the durable state of one
// served model: the base model snapshot, the training-tensor snapshot, and
// the observation journal, under fixed file names.
type Dir struct {
	path string
}

// Well-known file names inside a data directory.
const (
	// ModelFile is the persisted base model (written at compaction; the
	// serving layer prefers it over its -model flag when present).
	ModelFile = "model.ptkm"
	// TensorFile is the binary snapshot of the accumulated training set.
	TensorFile = "training.ptkt"
	// JournalFile is the append-only observation journal.
	JournalFile = "observations.ptkj"
	// EpochFile holds the primary's replication epoch counter, bumped at
	// every startup so followers can detect a restarted primary.
	EpochFile = "epoch"
	// FollowerFile holds a follower's record of the primary identity
	// (epoch + generation) its local state was bootstrapped from.
	FollowerFile = "follower.json"
)

// OpenDir opens (creating if necessary) the data directory at path.
func OpenDir(path string) (*Dir, error) {
	if path == "" {
		return nil, fmt.Errorf("store: empty data directory path")
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("store: open data dir: %w", err)
	}
	return &Dir{path: path}, nil
}

// Path returns the directory path.
func (d *Dir) Path() string { return d.path }

// ModelPath returns the base-model file path inside the directory.
func (d *Dir) ModelPath() string { return filepath.Join(d.path, ModelFile) }

// TensorPath returns the training-snapshot file path inside the directory.
func (d *Dir) TensorPath() string { return filepath.Join(d.path, TensorFile) }

// JournalPath returns the journal file path inside the directory.
func (d *Dir) JournalPath() string { return filepath.Join(d.path, JournalFile) }

// HasModel reports whether a base model has been persisted into the
// directory (by a compaction or a reload re-base).
func (d *Dir) HasModel() bool {
	_, err := os.Stat(d.ModelPath())
	return err == nil
}

// TrainingSnapshot loads the persisted training snapshot and the journal
// sequence it covers, or (nil, 0, nil) when none has been written yet.
func (d *Dir) TrainingSnapshot() (*tensor.Coord, uint64, error) {
	x, seq, err := ReadSnapshot(d.TensorPath())
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	return x, seq, err
}

// TrainingTensor loads the persisted training snapshot's tensor, or returns
// (nil, nil) when none has been written yet. It implements
// core.TrainingStore, so a Fitter can attach it directly:
//
//	f, _ := core.ResumeFitter(model, cfg)
//	_ = f.AttachStore(dir)
func (d *Dir) TrainingTensor() (*tensor.Coord, error) {
	x, _, err := d.TrainingSnapshot()
	return x, err
}

// RemoveTrainingTensor deletes the training snapshot if present (a reload
// re-base: the new model's provenance carries no training set).
func (d *Dir) RemoveTrainingTensor() error {
	if err := os.Remove(d.TensorPath()); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// NextEpoch reads the persisted replication epoch, increments it, persists
// the new value, and returns it. A primary calls it once at startup: any
// restart — even one that lost journal-tail records under a relaxed sync
// policy — lands on a new epoch, which forces followers to re-bootstrap
// rather than silently diverge.
func (d *Dir) NextEpoch() (uint64, error) {
	path := filepath.Join(d.path, EpochFile)
	var epoch uint64
	if b, err := os.ReadFile(path); err == nil {
		v, perr := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
		if perr != nil {
			return 0, fmt.Errorf("store: epoch file %s: %w", path, perr)
		}
		epoch = v
	} else if !os.IsNotExist(err) {
		return 0, fmt.Errorf("store: epoch file: %w", err)
	}
	epoch++
	if _, err := writeAtomic(path, false, func(f *os.File) error {
		_, err := fmt.Fprintf(f, "%d\n", epoch)
		return err
	}); err != nil {
		return 0, fmt.Errorf("store: write epoch: %w", err)
	}
	return epoch, nil
}

// FollowerState records which primary identity a follower's local state
// (model + journal) was derived from. On restart the follower compares it
// against the live primary: a mismatch means the local state is from a
// different history and must be discarded by re-bootstrapping.
type FollowerState struct {
	Epoch uint64 `json:"epoch"`
	Gen   uint64 `json:"gen"`
}

// SaveFollowerState atomically persists the follower's primary-identity
// record.
func (d *Dir) SaveFollowerState(st FollowerState) error {
	b, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("store: encode follower state: %w", err)
	}
	if _, err := writeAtomic(filepath.Join(d.path, FollowerFile), false, func(f *os.File) error {
		_, err := f.Write(append(b, '\n'))
		return err
	}); err != nil {
		return fmt.Errorf("store: write follower state: %w", err)
	}
	return nil
}

// LoadFollowerState reads the persisted primary-identity record; ok is false
// when none has been written (a fresh follower data dir).
func (d *Dir) LoadFollowerState() (st FollowerState, ok bool, err error) {
	b, err := os.ReadFile(filepath.Join(d.path, FollowerFile))
	if os.IsNotExist(err) {
		return FollowerState{}, false, nil
	}
	if err != nil {
		return FollowerState{}, false, fmt.Errorf("store: read follower state: %w", err)
	}
	if err := json.Unmarshal(b, &st); err != nil {
		return FollowerState{}, false, fmt.Errorf("store: decode follower state: %w", err)
	}
	return st, true, nil
}
