//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// mmapSupported reports whether this build can map files read-only.
const mmapSupported = true

// mapFile maps the named file read-only into the address space. The
// returned slice stays valid until unmapFile; writing through it faults.
func mapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size <= 0 {
		return nil, fmt.Errorf("store: %s: cannot map %d bytes", path, size)
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("store: %s: %d bytes exceed the address space", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("store: mmap %s: %w", path, err)
	}
	return data, nil
}

func unmapFile(data []byte) error {
	return syscall.Munmap(data)
}
