package store

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
)

// Follower-side durable state. A replication follower persists its model
// differently from a primary: the model and the journal sequence it covers
// must commit atomically (they are one fact — "this model reflects records
// ≤ seq"), or a crash between two files would double-apply or skip records
// on resume. ReplicaModelFile is therefore a tiny container: a header naming
// the covered sequence, followed by the model in its ordinary binary format,
// all written in one atomic rename. The primary does not need this because
// its covered sequence lives inside the training snapshot, which commits
// atomically already.

// ReplicaModelFile is the follower's model-plus-covered-seq container inside
// a data directory.
const ReplicaModelFile = "replica-model.ptkm"

// replicaMagic opens a ReplicaModelFile.
const replicaMagic = "PTKR"

const replicaVersion = 1

// ReplicaModelPath returns the follower model container path inside the
// directory.
func (d *Dir) ReplicaModelPath() string { return filepath.Join(d.path, ReplicaModelFile) }

// SaveReplicaModel atomically persists m together with the highest journal
// sequence it reflects.
func (d *Dir) SaveReplicaModel(m *core.Model, covered uint64) error {
	var head [16]byte
	copy(head[0:4], replicaMagic)
	binary.LittleEndian.PutUint32(head[4:8], replicaVersion)
	binary.LittleEndian.PutUint64(head[8:16], covered)
	if _, err := writeAtomic(d.ReplicaModelPath(), false, func(f *os.File) error {
		if _, err := f.Write(head[:]); err != nil {
			return err
		}
		_, err := m.WriteTo(f)
		return err
	}); err != nil {
		return fmt.Errorf("store: write replica model: %w", err)
	}
	return nil
}

// LoadReplicaModel loads the follower's persisted model and the journal
// sequence it covers. A missing file returns os.ErrNotExist (wrapped).
func (d *Dir) LoadReplicaModel() (*core.Model, uint64, error) {
	f, err := os.Open(d.ReplicaModelPath())
	if err != nil {
		return nil, 0, fmt.Errorf("store: open replica model: %w", err)
	}
	defer f.Close()
	var head [16]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return nil, 0, fmt.Errorf("store: replica model header: %w", err)
	}
	if string(head[0:4]) != replicaMagic {
		return nil, 0, fmt.Errorf("store: %s is not a replica model container", d.ReplicaModelPath())
	}
	if v := binary.LittleEndian.Uint32(head[4:8]); v != replicaVersion {
		return nil, 0, fmt.Errorf("store: replica model container version %d, want %d", v, replicaVersion)
	}
	covered := binary.LittleEndian.Uint64(head[8:16])
	m, err := core.ReadModel(f)
	if err != nil {
		return nil, 0, fmt.Errorf("store: replica model: %w", err)
	}
	return m, covered, nil
}

// HasFollowerState reports whether the directory was last used by a
// replication follower (a primary refuses to start over it, and vice versa).
func (d *Dir) HasFollowerState() bool {
	_, err := os.Stat(filepath.Join(d.path, FollowerFile))
	return err == nil
}

// ClearFollowerState removes the follower's commit record, marking any
// remaining local state as unusable until a bootstrap rewrites it. Called
// first when a follower re-bootstraps, so a crash mid-bootstrap can never
// leave a state file endorsing mismatched model/journal artifacts.
func (d *Dir) ClearFollowerState() error {
	if err := os.Remove(filepath.Join(d.path, FollowerFile)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}
