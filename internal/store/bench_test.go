package store

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/tensor"
)

// benchTensor is the synthetic benchmark tensor shared by the load
// benchmarks: the same shape regime as the tensor-package IO benchmarks.
func benchTensor(tb testing.TB, nnz int) *tensor.Coord {
	tb.Helper()
	rng := rand.New(rand.NewSource(55))
	return randomCoord(rng, []int{2000, 2000, 2000}, nnz)
}

// BenchmarkBinaryRead measures the fixed-width binary loader; compare with
// BenchmarkTextRead on the identical tensor for the speedup the format buys.
func BenchmarkBinaryRead(b *testing.B) {
	x := benchTensor(b, 20000)
	var buf bytes.Buffer
	if err := tensor.WriteBinary(&buf, x); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tensor.ReadBinary(bytes.NewReader(data), 3, x.Dims()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTextRead is the line-parsing loader on the identical tensor.
func BenchmarkTextRead(b *testing.B) {
	x := benchTensor(b, 20000)
	var buf bytes.Buffer
	if err := tensor.Write(&buf, x); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tensor.Read(bytes.NewReader(data), 3, x.Dims()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJournalAppend measures one journaled observation batch under each
// sync policy (the batch size is a typical /v1/observe request).
func BenchmarkJournalAppend(b *testing.B) {
	for _, mode := range []SyncMode{SyncNone, SyncBatch, SyncAlways} {
		b.Run(mode.String(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(56))
			path := filepath.Join(b.TempDir(), "obs.ptkj")
			j, err := OpenJournal(path, 3, SyncPolicy{Mode: mode})
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			obs := obsBatch(rng, []int{2000, 2000, 2000}, 8)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := j.Append(obs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestBinaryLoadSpeedup pins the acceptance criterion that loading the
// synthetic benchmark tensor from the binary snapshot is at least 5× faster
// than the text loader. Each loader's time is the best of three runs to damp
// scheduler noise; the real ratio is typically well above 10×.
func TestBinaryLoadSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews the loaders' relative cost")
	}
	x := benchTensor(t, 200000)

	var tb, bb bytes.Buffer
	if err := tensor.Write(&tb, x); err != nil {
		t.Fatal(err)
	}
	if err := tensor.WriteBinary(&bb, x); err != nil {
		t.Fatal(err)
	}

	best := func(load func() error) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if err := load(); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}

	textTime := best(func() error {
		_, err := tensor.Read(bytes.NewReader(tb.Bytes()), 3, x.Dims())
		return err
	})
	binTime := best(func() error {
		_, err := tensor.ReadBinary(bytes.NewReader(bb.Bytes()), 3, x.Dims())
		return err
	})

	ratio := float64(textTime) / float64(binTime)
	t.Logf("text %v, binary %v — %.1fx", textTime, binTime, ratio)
	if ratio < 5 {
		t.Fatalf("binary load only %.1fx faster than text (want ≥5x): text %v, binary %v",
			ratio, textTime, binTime)
	}
}
