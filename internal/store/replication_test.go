package store

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func TestCreateJournalBaseSeq(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	dims := []int{10, 10}
	path := filepath.Join(t.TempDir(), "obs.ptkj")

	j, err := CreateJournal(path, 2, 10, SyncPolicy{Mode: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if j.BaseSeq() != 10 || j.LastSeq() != 10 || j.Len() != 0 {
		t.Fatalf("fresh journal: base %d last %d len %d", j.BaseSeq(), j.LastSeq(), j.Len())
	}
	// Appends continue the primary's numbering from the base.
	for i := 0; i < 3; i++ {
		seq, err := j.Append(obsBatch(rng, dims, 2))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(11+i) {
			t.Fatalf("append %d: seq %d, want %d", i, seq, 11+i)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen preserves the base and the records.
	j2, err := OpenJournal(path, 2, SyncPolicy{Mode: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.BaseSeq() != 10 || j2.LastSeq() != 13 || j2.Len() != 3 {
		t.Fatalf("reopen: base %d last %d len %d", j2.BaseSeq(), j2.LastSeq(), j2.Len())
	}

	// CreateJournal over an existing journal starts fresh (it is the
	// follower's re-bootstrap rebase).
	j3, err := CreateJournal(path, 2, 50, SyncPolicy{Mode: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.BaseSeq() != 50 || j3.Len() != 0 {
		t.Fatalf("recreate: base %d len %d", j3.BaseSeq(), j3.Len())
	}
}

func TestStreamChunk(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dims := []int{12, 8}
	path := filepath.Join(t.TempDir(), "obs.ptkj")

	j, err := OpenJournal(path, 2, SyncPolicy{Mode: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	var batches [][]int // record sizes, to sanity-check decode
	for i := 0; i < 6; i++ {
		b := obsBatch(rng, dims, 1+rng.Intn(4))
		batches = append(batches, []int{len(b)})
		if _, err := j.Append(b); err != nil {
			t.Fatal(err)
		}
	}

	// The full stream from 0 is the file's record region, byte for byte —
	// the wire format IS the disk format.
	frames, n, last, err := j.StreamChunk(0, j.LastSeq(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 || last != 6 {
		t.Fatalf("full chunk: %d records, last %d", n, last)
	}
	disk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frames, disk[journalHeaderSize:]) {
		t.Fatal("stream frames differ from the on-disk record region")
	}

	// A mid-stream chunk starts after the requested sequence and respects
	// maxSeq.
	frames, n, last, err = j.StreamChunk(2, 4, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || last != 4 {
		t.Fatalf("mid chunk: %d records, last %d", n, last)
	}
	// The frames decode to the expected sequences.
	seq := uint64(3)
	for len(frames) > 0 {
		rec, consumed, err := DecodeRecord(frames, 2)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Seq != seq {
			t.Fatalf("decoded seq %d, want %d", rec.Seq, seq)
		}
		seq++
		frames = frames[consumed:]
	}

	// A tiny byte budget still ships at least one whole record.
	frames, n, last, err = j.StreamChunk(0, j.LastSeq(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || last != 1 || len(frames) == 0 {
		t.Fatalf("budgeted chunk: %d records, last %d, %d bytes", n, last, len(frames))
	}

	// Asking from below the base (records compacted away) is the
	// re-bootstrap signal.
	if err := j.ResetThrough(4); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := j.StreamChunk(2, j.LastSeq(), 1<<20); !errors.Is(err, ErrBadJournal) {
		t.Fatalf("pre-base chunk: %v, want ErrBadJournal", err)
	}
	// From the new base the surviving records still stream.
	if _, n, last, err = j.StreamChunk(4, j.LastSeq(), 1<<20); err != nil || n != 2 || last != 6 {
		t.Fatalf("post-compaction chunk: %d records, last %d, err %v", n, last, err)
	}
	_ = batches
}

func TestDecodeRecordTornAndCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	dims := []int{9, 9}
	path := filepath.Join(t.TempDir(), "obs.ptkj")

	j, err := OpenJournal(path, 2, SyncPolicy{Mode: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	want := obsBatch(rng, dims, 3)
	if _, err := j.Append(want); err != nil {
		t.Fatal(err)
	}
	frames, _, _, err := j.StreamChunk(0, 1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}

	rec, consumed, err := DecodeRecord(frames, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 1 || consumed != len(frames) {
		t.Fatalf("decode: seq %d consumed %d/%d", rec.Seq, consumed, len(frames))
	}
	obsEqual(t, want, rec.Observations)

	// Every strict prefix is a torn tail — io.ErrUnexpectedEOF, never a
	// corruption error, so a streaming client knows to just re-poll.
	for cut := 0; cut < len(frames); cut++ {
		if _, _, err := DecodeRecord(frames[:cut], 2); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}

	// A flipped payload bit fails the CRC — ErrBadJournal.
	bad := append([]byte(nil), frames...)
	bad[len(bad)-1] ^= 0x01
	if _, _, err := DecodeRecord(bad, 2); !errors.Is(err, ErrBadJournal) {
		t.Fatalf("corrupt frame: %v, want ErrBadJournal", err)
	}
}

func TestNextEpoch(t *testing.T) {
	d, err := OpenDir(filepath.Join(t.TempDir(), "data"))
	if err != nil {
		t.Fatal(err)
	}
	for want := uint64(1); want <= 3; want++ {
		got, err := d.NextEpoch()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("epoch %d, want %d", got, want)
		}
	}
	// The epoch survives a "restart" (a fresh Dir over the same path).
	d2, err := OpenDir(d.Path())
	if err != nil {
		t.Fatal(err)
	}
	if got, err := d2.NextEpoch(); err != nil || got != 4 {
		t.Fatalf("epoch after reopen: %d, %v", got, err)
	}
}

func TestFollowerStateRoundTrip(t *testing.T) {
	d, err := OpenDir(filepath.Join(t.TempDir(), "data"))
	if err != nil {
		t.Fatal(err)
	}
	if d.HasFollowerState() {
		t.Fatal("fresh dir claims follower state")
	}
	if _, ok, err := d.LoadFollowerState(); err != nil || ok {
		t.Fatalf("fresh dir load: ok=%v err=%v", ok, err)
	}
	want := FollowerState{Epoch: 7, Gen: 3}
	if err := d.SaveFollowerState(want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := d.LoadFollowerState()
	if err != nil || !ok || got != want {
		t.Fatalf("load: %+v ok=%v err=%v", got, ok, err)
	}
	if !d.HasFollowerState() {
		t.Fatal("HasFollowerState false after save")
	}
	if err := d.ClearFollowerState(); err != nil {
		t.Fatal(err)
	}
	if err := d.ClearFollowerState(); err != nil {
		t.Fatal(err) // idempotent
	}
	if d.HasFollowerState() {
		t.Fatal("follower state survives Clear")
	}
}

func TestReplicaModelRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	x := randomCoord(rng, []int{12, 10, 8}, 300)
	cfg := core.Defaults([]int{3, 3, 2})
	cfg.MaxIters = 2
	cfg.Tol = 0
	cfg.Seed = 44
	f := core.NewFitter(cfg)
	m, err := f.Fit(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}

	d, err := OpenDir(filepath.Join(t.TempDir(), "data"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.LoadReplicaModel(); err == nil {
		t.Fatal("fresh dir loaded a replica model")
	}
	if err := d.SaveReplicaModel(m, 42); err != nil {
		t.Fatal(err)
	}
	got, covered, err := d.LoadReplicaModel()
	if err != nil {
		t.Fatal(err)
	}
	if covered != 42 {
		t.Fatalf("covered seq %d, want 42", covered)
	}
	// The container commits the model byte-exactly: both serialize
	// identically.
	var a, b bytes.Buffer
	if _, err := m.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := got.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("replica model round trip is not byte-identical")
	}

	// A truncated container is rejected, not half-loaded.
	data, err := os.ReadFile(d.ReplicaModelPath())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.ReplicaModelPath(), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.LoadReplicaModel(); err == nil {
		t.Fatal("truncated replica container loaded")
	}
}
