package store

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// FuzzJournalReplay feeds arbitrary bytes to OpenJournal as an on-disk
// journal. The contract under fuzz: a file the open accepts must then
// replay cleanly — strictly increasing sequence numbers, order-3 indices,
// a record count agreeing with Len — and must keep accepting appends.
// Rejecting the input outright is always fine; panicking or replaying
// garbage is not.
func FuzzJournalReplay(f *testing.F) {
	seedDir := filepath.Join("testdata", "fuzz", "FuzzJournalReplay")
	if entries, err := os.ReadDir(seedDir); err == nil && len(entries) == 0 {
		f.Fatalf("seed corpus %s is empty", seedDir)
	}
	f.Add([]byte{})
	f.Add([]byte("PTKJ"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "observe.journal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := OpenJournal(path, 3, SyncPolicy{Mode: SyncNone})
		if err != nil {
			return // rejected: fine
		}
		defer j.Close()

		n := 0
		var last uint64
		err = j.Replay(func(r Record) error {
			if n > 0 && r.Seq <= last {
				t.Fatalf("replay: seq %d after %d (must be strictly increasing)", r.Seq, last)
			}
			last = r.Seq
			n++
			for _, o := range r.Observations {
				if len(o.Index) != 3 {
					t.Fatalf("replay: record %d has a %d-mode index in an order-3 journal", r.Seq, len(o.Index))
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("journal opened clean but Replay failed: %v", err)
		}
		if n != j.Len() {
			t.Fatalf("Len() = %d but replay yielded %d records", j.Len(), n)
		}
		if n > 0 && j.LastSeq() != last {
			t.Fatalf("LastSeq() = %d but replay ended at %d", j.LastSeq(), last)
		}

		// A recovered journal must remain writable, continuing the sequence.
		seq, err := j.Append([]core.Observation{{Index: []int{0, 1, 2}, Value: 1}})
		if err != nil {
			t.Fatalf("append after recovery failed: %v", err)
		}
		if n > 0 && seq <= last {
			t.Fatalf("append seq %d does not continue replayed sequence %d", seq, last)
		}
	})
}
