package store

import (
	"bufio"
	"fmt"
	"os"

	"repro/internal/tensor"
)

// WriteTensor persists t to path in the binary snapshot format, crash-safely
// (see writeAtomic for the commit protocol).
func WriteTensor(path string, t *tensor.Coord) error {
	_, err := writeAtomic(path, false, func(f *os.File) error {
		return tensor.WriteBinary(f, t)
	})
	if err != nil {
		return fmt.Errorf("store: write tensor: %w", err)
	}
	return nil
}

// ReadTensor loads a binary tensor snapshot written by WriteTensor (or
// tensor.WriteBinaryFile). The snapshot carries its own shape; no order or
// dims are needed. For text files use tensor.ReadFile, which auto-detects
// both encodings.
func ReadTensor(path string) (*tensor.Coord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	x, err := tensor.ReadBinary(bufio.NewReaderSize(f, 1<<16), 0, nil)
	if err != nil {
		return nil, fmt.Errorf("store: read tensor %s: %w", path, err)
	}
	return x, nil
}
