package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/tensor"
)

// A training snapshot is a binary tensor snapshot prefixed with the journal
// sequence it covers: every journal record with Seq ≤ coveredSeq is already
// part of the tensor. The prefix is what makes snapshot+journal crash-
// consistent — the snapshot rename is the single commit point, and replay
// simply skips covered records, so a crash landing between "snapshot
// renamed" and "journal rotated" cannot double-apply a batch.
//
// Layout (little-endian):
//
//	magic "PTKS" | version u32 | coveredSeq u64 | crc32 of bytes 0..16 u32 |
//	tensor binary stream (tensor.WriteBinary, self-checksummed)

// SnapshotMagic is the 4-byte signature of a training-snapshot container.
const SnapshotMagic = "PTKS"

const (
	snapshotVersion    = 1
	snapshotHeaderSize = 20
)

// WriteSnapshot persists x and the journal sequence it covers to path,
// crash-safely (see writeAtomic for the commit protocol).
func WriteSnapshot(path string, x *tensor.Coord, coveredSeq uint64) error {
	head := make([]byte, snapshotHeaderSize)
	copy(head[0:4], SnapshotMagic)
	binary.LittleEndian.PutUint32(head[4:8], snapshotVersion)
	binary.LittleEndian.PutUint64(head[8:16], coveredSeq)
	binary.LittleEndian.PutUint32(head[16:20], crc32.ChecksumIEEE(head[0:16]))

	_, err := writeAtomic(path, false, func(f *os.File) error {
		if _, err := f.Write(head); err != nil {
			return err
		}
		return tensor.WriteBinary(f, x)
	})
	if err != nil {
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot loads a training snapshot. It also accepts a bare binary
// tensor snapshot (no container header), reporting coveredSeq 0 — so a
// tensor written by `ptucker -save-tensor` can seed a data directory
// directly.
func ReadSnapshot(path string) (*tensor.Coord, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)

	magic, err := br.Peek(4)
	if err != nil {
		return nil, 0, fmt.Errorf("store: read snapshot %s: %w", path, err)
	}
	var coveredSeq uint64
	if string(magic) == SnapshotMagic {
		head := make([]byte, snapshotHeaderSize)
		if _, err := io.ReadFull(br, head); err != nil {
			return nil, 0, fmt.Errorf("store: read snapshot %s: truncated header: %v", path, err)
		}
		if v := binary.LittleEndian.Uint32(head[4:8]); v != snapshotVersion {
			return nil, 0, fmt.Errorf("store: read snapshot %s: unsupported version %d", path, v)
		}
		if crc32.ChecksumIEEE(head[0:16]) != binary.LittleEndian.Uint32(head[16:20]) {
			return nil, 0, fmt.Errorf("store: read snapshot %s: header checksum mismatch", path)
		}
		coveredSeq = binary.LittleEndian.Uint64(head[8:16])
	}
	x, err := tensor.ReadBinary(br, 0, nil)
	if err != nil {
		return nil, 0, fmt.Errorf("store: read snapshot %s: %w", path, err)
	}
	return x, coveredSeq, nil
}
