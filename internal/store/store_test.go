package store

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/tensor"
)

func randomCoord(rng *rand.Rand, dims []int, nnz int) *tensor.Coord {
	c := tensor.NewCoord(dims)
	idx := make([]int, len(dims))
	for c.NNZ() < nnz {
		for n, d := range dims {
			idx[n] = rng.Intn(d)
		}
		c.MustAppend(idx, rng.Float64())
	}
	return c
}

func coordsEqual(t testing.TB, a, b *tensor.Coord) {
	t.Helper()
	if a.Order() != b.Order() || a.NNZ() != b.NNZ() {
		t.Fatalf("shape mismatch: order %d/%d nnz %d/%d", a.Order(), b.Order(), a.NNZ(), b.NNZ())
	}
	for k := 0; k < a.Order(); k++ {
		if a.Dim(k) != b.Dim(k) {
			t.Fatalf("mode %d dim %d vs %d", k, a.Dim(k), b.Dim(k))
		}
	}
	for e := 0; e < a.NNZ(); e++ {
		ia, ib := a.Index(e), b.Index(e)
		for k := range ia {
			if ia[k] != ib[k] {
				t.Fatalf("entry %d mode %d index %d vs %d", e, k, ia[k], ib[k])
			}
		}
		if math.Float64bits(a.Value(e)) != math.Float64bits(b.Value(e)) {
			t.Fatalf("entry %d value bits differ", e)
		}
	}
}

func TestWriteReadTensor(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := randomCoord(rng, []int{40, 30, 20}, 500)
	path := filepath.Join(t.TempDir(), "x.ptkt")
	if err := WriteTensor(path, x); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTensor(path)
	if err != nil {
		t.Fatal(err)
	}
	coordsEqual(t, x, got)

	// The atomic write leaves no temp droppings behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(entries))
	}

	// A pure binary snapshot also loads through the generic text/binary
	// auto-detecting loader.
	viaReadFile, err := tensor.ReadFile(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	coordsEqual(t, x, viaReadFile)
}

func TestSnapshotCoveredSeq(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := randomCoord(rng, []int{10, 10}, 60)
	path := filepath.Join(t.TempDir(), "training.ptkt")

	if err := WriteSnapshot(path, x, 17); err != nil {
		t.Fatal(err)
	}
	got, seq, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 17 {
		t.Fatalf("covered seq %d, want 17", seq)
	}
	coordsEqual(t, x, got)

	// A bare tensor snapshot is accepted with covered sequence 0.
	if err := WriteTensor(path, x); err != nil {
		t.Fatal(err)
	}
	got, seq, err = ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 0 {
		t.Fatalf("bare snapshot covered seq %d, want 0", seq)
	}
	coordsEqual(t, x, got)
}

func obsBatch(rng *rand.Rand, dims []int, n int) []core.Observation {
	obs := make([]core.Observation, n)
	for i := range obs {
		idx := make([]int, len(dims))
		for k, d := range dims {
			idx[k] = rng.Intn(d)
		}
		obs[i] = core.Observation{Index: idx, Value: rng.NormFloat64()}
	}
	return obs
}

func obsEqual(t testing.TB, a, b []core.Observation) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("batch length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Index) != len(b[i].Index) {
			t.Fatalf("obs %d order mismatch", i)
		}
		for k := range a[i].Index {
			if a[i].Index[k] != b[i].Index[k] {
				t.Fatalf("obs %d mode %d index %d vs %d", i, k, a[i].Index[k], b[i].Index[k])
			}
		}
		if math.Float64bits(a[i].Value) != math.Float64bits(b[i].Value) {
			t.Fatalf("obs %d value bits differ", i)
		}
	}
}

func TestJournalAppendReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	dims := []int{25, 15, 5}
	path := filepath.Join(t.TempDir(), "obs.ptkj")

	j, err := OpenJournal(path, 3, SyncPolicy{Mode: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var batches [][]core.Observation
	for i := 0; i < 7; i++ {
		b := obsBatch(rng, dims, 1+rng.Intn(5))
		batches = append(batches, b)
		seq, err := j.Append(b)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d: seq %d", i, seq)
		}
	}
	if j.Len() != 7 || j.LastSeq() != 7 {
		t.Fatalf("len %d lastSeq %d, want 7/7", j.Len(), j.LastSeq())
	}

	// Replay on the live journal.
	var got [][]core.Observation
	if err := j.Replay(func(r Record) error {
		got = append(got, r.Observations)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(batches) {
		t.Fatalf("replayed %d records, want %d", len(got), len(batches))
	}
	for i := range got {
		obsEqual(t, batches[i], got[i])
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: recovery finds the same records, appends continue the sequence.
	j2, err := OpenJournal(path, 3, SyncPolicy{Mode: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 7 || j2.LastSeq() != 7 || j2.Recovered != 0 {
		t.Fatalf("reopen: len %d lastSeq %d recovered %d", j2.Len(), j2.LastSeq(), j2.Recovered)
	}
	if seq, err := j2.Append(batches[0]); err != nil || seq != 8 {
		t.Fatalf("append after reopen: seq %d err %v", seq, err)
	}
}

// TestJournalTornTail simulates a crash mid-write: everything before the
// torn record replays, the tail is truncated, and appends continue.
func TestJournalTornTail(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	dims := []int{10, 10}
	path := filepath.Join(t.TempDir(), "obs.ptkj")

	j, err := OpenJournal(path, 2, SyncPolicy{Mode: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := j.Append(obsBatch(rng, dims, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record: chop a few bytes off the end.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, 2, SyncPolicy{Mode: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 4 {
		t.Fatalf("after torn tail: %d records, want 4", j2.Len())
	}
	if j2.Recovered == 0 {
		t.Fatal("torn tail not reported")
	}
	n := 0
	if err := j2.Replay(func(r Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("replayed %d, want 4", n)
	}
	// The journal still accepts appends after recovery, at the next seq.
	if seq, err := j2.Append(obsBatch(rng, dims, 1)); err != nil || seq != 5 {
		t.Fatalf("append after recovery: seq %d err %v", seq, err)
	}

	// Corrupting a record's payload (not just truncation) is also caught.
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j3, err := OpenJournal(path, 2, SyncPolicy{Mode: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Len() != 4 {
		t.Fatalf("after corrupt record: %d records, want 4", j3.Len())
	}
}

func TestJournalCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	dims := []int{20, 10}
	dir := t.TempDir()
	jpath := filepath.Join(dir, "obs.ptkj")
	spath := filepath.Join(dir, "training.ptkt")

	j, err := OpenJournal(jpath, 2, SyncPolicy{Mode: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	x := randomCoord(rng, dims, 50)
	for i := 0; i < 3; i++ {
		if _, err := j.Append(obsBatch(rng, dims, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Compact(spath, x); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Fatalf("journal has %d records after compact", j.Len())
	}
	got, seq, err := ReadSnapshot(spath)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 {
		t.Fatalf("snapshot covers seq %d, want 3", seq)
	}
	coordsEqual(t, x, got)

	// Sequences continue after compaction — the snapshot's covered sequence
	// can never collide with a post-compaction record.
	if seq, err := j.Append(obsBatch(rng, dims, 1)); err != nil || seq != 4 {
		t.Fatalf("append after compact: seq %d err %v", seq, err)
	}

	// And survive a close/reopen of the rotated file.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(jpath, 2, SyncPolicy{Mode: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 1 || j2.LastSeq() != 4 {
		t.Fatalf("reopen after compact: len %d lastSeq %d, want 1/4", j2.Len(), j2.LastSeq())
	}
}

func TestJournalValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.ptkj")
	j, err := OpenJournal(path, 3, SyncPolicy{Mode: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		obs  []core.Observation
	}{
		{"empty batch", nil},
		{"wrong order", []core.Observation{{Index: []int{1, 2}, Value: 1}}},
		{"negative index", []core.Observation{{Index: []int{1, -2, 3}, Value: 1}}},
	}
	for _, tc := range cases {
		if _, err := j.Append(tc.obs); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(obsBatch(rand.New(rand.NewSource(1)), []int{5, 5, 5}, 1)); !errors.Is(err, ErrJournalClosed) {
		t.Fatalf("append on closed journal: %v", err)
	}

	// Wrong order on reopen is rejected.
	if _, err := OpenJournal(path, 4, SyncPolicy{}); !errors.Is(err, ErrBadJournal) {
		t.Fatalf("order mismatch on open: %v", err)
	}
}

func TestJournalBatchSync(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	path := filepath.Join(t.TempDir(), "obs.ptkj")
	j, err := OpenJournal(path, 2, SyncPolicy{Mode: SyncBatch, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := j.Append(obsBatch(rng, []int{9, 9}, 2)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(30 * time.Millisecond) // let the flusher run at least once
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path, 2, SyncPolicy{Mode: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 10 {
		t.Fatalf("reopen: %d records, want 10", j2.Len())
	}
}

func TestDir(t *testing.T) {
	base := t.TempDir()
	d, err := OpenDir(filepath.Join(base, "data"))
	if err != nil {
		t.Fatal(err)
	}
	if d.HasModel() {
		t.Fatal("fresh dir claims a model")
	}
	if x, err := d.TrainingTensor(); err != nil || x != nil {
		t.Fatalf("fresh dir training tensor: %v, %v", x, err)
	}

	rng := rand.New(rand.NewSource(27))
	x := randomCoord(rng, []int{8, 8}, 20)
	if err := WriteSnapshot(d.TensorPath(), x, 5); err != nil {
		t.Fatal(err)
	}
	got, seq, err := d.TrainingSnapshot()
	if err != nil || seq != 5 {
		t.Fatalf("training snapshot: seq %d err %v", seq, err)
	}
	coordsEqual(t, x, got)

	// Dir satisfies core.TrainingStore.
	var ts core.TrainingStore = d
	got2, err := ts.TrainingTensor()
	if err != nil {
		t.Fatal(err)
	}
	coordsEqual(t, x, got2)

	if err := d.RemoveTrainingTensor(); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveTrainingTensor(); err != nil {
		t.Fatal(err) // idempotent
	}
	if x, err := d.TrainingTensor(); err != nil || x != nil {
		t.Fatalf("after remove: %v, %v", x, err)
	}
}

// TestSidecarTrueUnionRefit is the end-to-end persistence path of the
// ResumeFitter story: model saved to disk, training set saved as a sidecar
// snapshot, process "restarts" (fresh Fitter from the loaded file +
// AttachStore), new observations arrive, and the warm refit over the true
// union is bit-identical to the refit of a process that never went down.
func TestSidecarTrueUnionRefit(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	dims := []int{14, 12, 8}
	x := randomCoord(rng, dims, 600)
	cfg := core.Defaults([]int{3, 3, 2})
	cfg.MaxIters = 4
	cfg.Tol = 0
	cfg.Seed = 9
	cfg.Threads = 2

	var delta []core.Observation
	for i := 0; i < 25; i++ {
		idx := make([]int, 3)
		for k, d := range dims {
			idx[k] = rng.Intn(d)
		}
		delta = append(delta, core.Observation{Index: idx, Value: rng.Float64()})
	}

	// Reference process: fit, observe, refit — never interrupted.
	ref := core.NewFitter(cfg)
	base, err := ref.Fit(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Refit(context.Background(), delta)
	if err != nil {
		t.Fatal(err)
	}

	// Persist model + sidecar, then "restart".
	d, err := OpenDir(filepath.Join(t.TempDir(), "data"))
	if err != nil {
		t.Fatal(err)
	}
	if err := core.SaveModel(d.ModelPath(), base); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(d.TensorPath(), x, 0); err != nil {
		t.Fatal(err)
	}

	loaded, err := core.LoadModel(d.ModelPath())
	if err != nil {
		t.Fatal(err)
	}
	f, err := core.ResumeFitter(loaded, loaded.Config)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AttachStore(d); err != nil {
		t.Fatal(err)
	}
	got, err := f.Refit(context.Background(), delta)
	if err != nil {
		t.Fatal(err)
	}

	if len(want.Factors) != len(got.Factors) {
		t.Fatal("factor count differs")
	}
	for k := range want.Factors {
		wd, gd := want.Factors[k].Data(), got.Factors[k].Data()
		if len(wd) != len(gd) {
			t.Fatalf("factor %d size differs", k)
		}
		for i := range wd {
			if math.Float64bits(wd[i]) != math.Float64bits(gd[i]) {
				t.Fatalf("factor %d element %d differs: %v vs %v", k, i, wd[i], gd[i])
			}
		}
	}
	if want.Core.NNZ() != got.Core.NNZ() {
		t.Fatal("core size differs")
	}
	for e := 0; e < want.Core.NNZ(); e++ {
		if math.Float64bits(want.Core.Value(e)) != math.Float64bits(got.Core.Value(e)) {
			t.Fatalf("core entry %d differs", e)
		}
	}
}
