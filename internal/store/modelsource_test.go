package store

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/tensor"
)

// benchModel builds a servable model without fitting: rows scales factor 0
// (and with it the file size) while metadata stays fixed, which is what the
// open benchmarks need to show size-independent mapped opens.
func benchModel(tb testing.TB, rows int) *core.Model {
	tb.Helper()
	rng := rand.New(rand.NewSource(77))
	ranks := []int{4, 3, 2}
	dims := []int{rows, 256, 64}
	factors := make([]*mat.Dense, len(dims))
	for k, d := range dims {
		data := make([]float64, d*ranks[k])
		for i := range data {
			data[i] = rng.NormFloat64()
		}
		factors[k] = mat.NewDenseData(d, ranks[k], data)
	}
	g := core.NewRandomCore(ranks, rng)
	g.FinalizeLayout()
	return &core.Model{Factors: factors, Core: g, Config: core.Defaults(ranks)}
}

func saveBenchModel(tb testing.TB, rows int) string {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), "model.ptkm")
	if err := core.SaveModel(path, benchModel(tb, rows)); err != nil {
		tb.Fatal(err)
	}
	return path
}

// The acceptance pin: a model served from a read-only mapping predicts
// bit-identically to the same file heap-decoded.
func TestMmapModelBitIdenticalToHeap(t *testing.T) {
	if !mmapSupported {
		t.Skip("platform has no mmap")
	}
	path := saveBenchModel(t, 4096)

	src, err := MmapModel(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if !src.Mapped() || src.MappedBytes() <= 0 {
		t.Fatalf("MmapModel: mapped=%v bytes=%d", src.Mapped(), src.MappedBytes())
	}
	heap, err := core.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}

	mapped := src.Model()
	rng := rand.New(rand.NewSource(78))
	idx := make([]int, 3)
	for i := 0; i < 1000; i++ {
		for k, d := range []int{4096, 256, 64} {
			idx[k] = rng.Intn(d)
		}
		h, m := heap.Predict(idx), mapped.Predict(idx)
		if math.Float64bits(h) != math.Float64bits(m) {
			t.Fatalf("prediction at %v: heap %v, mapped %v", idx, h, m)
		}
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	if src.MappedBytes() != 0 {
		t.Fatalf("MappedBytes after Close = %d, want 0", src.MappedBytes())
	}
	if err := src.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// OpenModel must fall back to the heap loader for streams the mapper cannot
// serve (here: the checked-in v2-era fixture predating the aligned layout)
// but must NOT retry a file the mapper proved corrupt.
func TestOpenModelFallbackAndVerdicts(t *testing.T) {
	v2 := filepath.Join("..", "core", "testdata", "model_v2.ptkm")
	src, err := OpenModel(v2, true)
	if err != nil {
		t.Fatalf("v2 fixture with mmap preference: %v", err)
	}
	defer src.Close()
	if src.Mapped() {
		t.Fatal("a pre-v4 stream cannot be mapped; expected the heap fallback")
	}

	path := saveBenchModel(t, 64)
	heapSrc, err := OpenModel(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer heapSrc.Close()
	if heapSrc.Mapped() || heapSrc.MappedBytes() != 0 {
		t.Fatal("preferMmap=false must heap-load")
	}

	if mmapSupported {
		mapped, err := OpenModel(path, true)
		if err != nil {
			t.Fatal(err)
		}
		defer mapped.Close()
		if !mapped.Mapped() {
			t.Fatal("v4 file on a mmap platform should map")
		}
	}

	// Corrupt a metadata byte: the mapped decoder's verdict is final.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[9] ^= 0x01
	bad := filepath.Join(t.TempDir(), "bad.ptkm")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenModel(bad, true); err == nil {
		t.Fatal("corrupted model accepted")
	}
}

func TestMmapTensorServesValuesInPlace(t *testing.T) {
	if !mmapSupported {
		t.Skip("platform has no mmap")
	}
	rng := rand.New(rand.NewSource(79))
	x := randomCoord(rng, []int{50, 40, 30}, 2000)
	path := filepath.Join(t.TempDir(), "holdout.ptkt")
	if err := tensor.WriteBinaryFile(path, x); err != nil {
		t.Fatal(err)
	}

	src, err := MmapTensor(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if src.MappedBytes() <= 0 {
		t.Fatalf("MappedBytes = %d, want > 0", src.MappedBytes())
	}
	got := src.Tensor()
	if got.NNZ() != x.NNZ() {
		t.Fatalf("nnz %d want %d", got.NNZ(), x.NNZ())
	}
	for e := 0; e < x.NNZ(); e++ {
		if math.Float64bits(got.Value(e)) != math.Float64bits(x.Value(e)) {
			t.Fatalf("value %d changed: %v vs %v", e, got.Value(e), x.Value(e))
		}
		for k, i := range x.Index(e) {
			if got.Index(e)[k] != i {
				t.Fatalf("index %d mode %d changed", e, k)
			}
		}
	}

	// A text tensor must be refused, not misparsed.
	text := filepath.Join(t.TempDir(), "holdout.tns")
	if err := os.WriteFile(text, []byte("1 1 1 0.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := MmapTensor(text); err == nil {
		t.Fatal("text tensor accepted by MmapTensor")
	}

	// Truncation is caught by the CRC/bounds check at open.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(t.TempDir(), "trunc.ptkt")
	if err := os.WriteFile(trunc, raw[:len(raw)-8], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := MmapTensor(trunc); err == nil {
		t.Fatal("truncated tensor accepted by MmapTensor")
	}
}

// BenchmarkMmapModelOpen is the acceptance benchmark: opening a mapped
// model must cost the same regardless of model size (the metadata, not the
// factor bytes, is what the opener touches), while the heap decode below
// scales linearly. rows=65536 is a 16x larger file than rows=4096.
func BenchmarkMmapModelOpen(b *testing.B) {
	if !mmapSupported {
		b.Skip("platform has no mmap")
	}
	for _, rows := range []int{4096, 65536} {
		b.Run(sizeName(rows), func(b *testing.B) {
			path := saveBenchModel(b, rows)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src, err := MmapModel(path)
				if err != nil {
					b.Fatal(err)
				}
				src.Close()
			}
		})
	}
}

// BenchmarkHeapModelOpen is the comparison loader on the identical files.
func BenchmarkHeapModelOpen(b *testing.B) {
	for _, rows := range []int{4096, 65536} {
		b.Run(sizeName(rows), func(b *testing.B) {
			path := saveBenchModel(b, rows)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src, err := OpenModel(path, false)
				if err != nil {
					b.Fatal(err)
				}
				src.Close()
			}
		})
	}
}

func sizeName(rows int) string {
	if rows >= 1024 {
		return "rows=" + itoa(rows/1024) + "k"
	}
	return "rows=" + itoa(rows)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
