package store

import (
	"os"
	"path/filepath"
)

// writeAtomic is the package's one crash-safe commit protocol: fill a temp
// file in the target's directory, fsync it, rename it over path (the atomic
// commit point), and fsync the directory entry. A reader — including one
// racing a crash — sees either the old file or the complete new one, never
// a torn write. When keep is true the temp file's descriptor, which after
// the rename IS the file at path, is returned open for continued use (the
// journal rotates onto it); otherwise it is closed and (nil, nil) is
// returned on success.
func writeAtomic(path string, keep bool, fill func(*os.File) error) (*os.File, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*os.File, error) {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, err
	}
	if err := fill(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fail(err)
	}
	_ = syncDir(dir)
	if keep {
		return tmp, nil
	}
	if err := tmp.Close(); err != nil {
		return nil, err
	}
	return nil, nil
}

// syncDir fsyncs a directory so a just-renamed file survives a crash. Some
// filesystems don't support fsync on directories; those errors are ignored —
// the rename itself is still atomic.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
