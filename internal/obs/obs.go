// Package obs holds the shared observability plumbing: structured-logger
// construction from the -log-format/-log-level flags, and request-ID
// generation for the X-Ptucker-Request-Id correlation header that the
// server echoes on every response and the replication client stamps on
// every bootstrap/poll request.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// RequestIDHeader carries the per-request correlation ID. Servers echo the
// caller-supplied value (or a generated one) on the response and attach it
// to the access-log line; the follower's journal client generates one per
// upstream request so a slow poll can be found in the primary's log.
const RequestIDHeader = "X-Ptucker-Request-Id"

// maxRequestIDLen caps accepted caller-supplied IDs so a hostile client
// cannot bloat logs; longer or non-clean IDs are replaced, not truncated.
const maxRequestIDLen = 64

// NewRequestID returns a fresh 16-hex-char correlation ID. It reads
// crypto/rand: IDs must be unpredictable across processes without
// coordination, and the math/rand-seeding rules (enforced by the
// seededrand analyzer) are about reproducible experiments, not IDs.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on the platforms we run on; a broken
		// entropy source should not take request serving down.
		return "rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// CleanRequestID validates a caller-supplied correlation ID: non-empty, at
// most 64 chars, drawn from [A-Za-z0-9._-]. Anything else returns false
// and the caller should generate a fresh ID instead.
func CleanRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// NewLogger builds a slog.Logger writing to w. format is "text" or "json"
// (empty means text); level is "debug", "info", "warn", or "error" (empty
// means info).
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
	return slog.New(h), nil
}
