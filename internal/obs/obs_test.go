package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNewRequestID(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if len(id) != 16 || !CleanRequestID(id) {
			t.Fatalf("bad id %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestCleanRequestID(t *testing.T) {
	for _, ok := range []string{"abc", "A-b_c.9", strings.Repeat("x", 64)} {
		if !CleanRequestID(ok) {
			t.Errorf("CleanRequestID(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", "has space", "new\nline", "quo\"te", strings.Repeat("x", 65), "bräcket"} {
		if CleanRequestID(bad) {
			t.Errorf("CleanRequestID(%q) = true", bad)
		}
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "json", "warn")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hidden")
	log.Warn("visible", "endpoint", "predict")
	line := buf.String()
	if strings.Contains(line, "hidden") {
		t.Fatalf("info line leaked past warn level: %q", line)
	}
	var rec map[string]interface{}
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("not JSON: %q: %v", line, err)
	}
	if rec["msg"] != "visible" || rec["endpoint"] != "predict" {
		t.Fatalf("unexpected record: %v", rec)
	}

	buf.Reset()
	log, err = NewLogger(&buf, "", "")
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("quiet")
	log.Info("hello")
	if out := buf.String(); strings.Contains(out, "quiet") || !strings.Contains(out, "msg=hello") {
		t.Fatalf("default text/info logger output: %q", out)
	}

	if _, err := NewLogger(&buf, "xml", ""); err == nil {
		t.Fatal("accepted bogus format")
	}
	if _, err := NewLogger(&buf, "", "loud"); err == nil {
		t.Fatal("accepted bogus level")
	}
}
