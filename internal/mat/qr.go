package mat

import "math"

// QR holds a Householder QR factorization A = Q*R of an m x n matrix with
// m >= n. P-Tucker uses it at the end of Algorithm 2 to orthogonalize factor
// matrices (A(n) = Q(n)R(n), Eq. 7): Q replaces the factor and R is folded
// into the core tensor (Eq. 8).
type QR struct {
	m, n int
	qr   []float64 // Householder vectors below diagonal, R on/above
	rd   []float64 // diagonal of R
}

// NewQR factorizes a (m x n, m >= n) using Householder reflections. a is not
// modified.
func NewQR(a *Dense) (*QR, error) {
	if a.rows < a.cols {
		return nil, ErrShape
	}
	m, n := a.rows, a.cols
	qr := make([]float64, m*n)
	copy(qr, a.data)
	rd := make([]float64, n)
	for k := 0; k < n; k++ {
		// Norm of column k below the diagonal.
		var nrm float64
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr[i*n+k])
		}
		if nrm == 0 {
			// Zero column: no reflection needed; R diagonal entry is 0.
			rd[k] = 0
			continue
		}
		if qr[k*n+k] < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			qr[i*n+k] /= nrm
		}
		qr[k*n+k] += 1
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr[i*n+k] * qr[i*n+j]
			}
			s = -s / qr[k*n+k]
			for i := k; i < m; i++ {
				qr[i*n+j] += s * qr[i*n+k]
			}
		}
		rd[k] = -nrm
	}
	return &QR{m: m, n: n, qr: qr, rd: rd}, nil
}

// R returns the n x n upper-triangular factor.
func (f *QR) R() *Dense {
	r := NewDense(f.n, f.n)
	for i := 0; i < f.n; i++ {
		r.Set(i, i, f.rd[i])
		for j := i + 1; j < f.n; j++ {
			r.Set(i, j, f.qr[i*f.n+j])
		}
	}
	return r
}

// Q returns the thin m x n orthonormal factor.
func (f *QR) Q() *Dense {
	m, n := f.m, f.n
	q := NewDense(m, n)
	for k := n - 1; k >= 0; k-- {
		q.Set(k, k, 1)
		if f.qr[k*n+k] == 0 {
			// Degenerate (zero) column: leave the unit vector; the
			// resulting Q still has orthonormal columns.
			continue
		}
		for j := k; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += f.qr[i*n+k] * q.At(i, j)
			}
			s = -s / f.qr[k*n+k]
			for i := k; i < m; i++ {
				q.Add(i, j, s*f.qr[i*n+k])
			}
		}
	}
	return q
}

// QRFactor is a convenience wrapper returning thin Q (m x n) and R (n x n)
// with A = Q*R.
func QRFactor(a *Dense) (q, r *Dense, err error) {
	f, err := NewQR(a)
	if err != nil {
		return nil, nil, err
	}
	return f.Q(), f.R(), nil
}

// GramSchmidt orthonormalizes the columns of a in place using modified
// Gram-Schmidt, returning the number of numerically independent columns.
// Dependent columns are replaced with zeros. It is used by the orthogonal
// iteration in the SVD kernels where a full QR is unnecessary.
func GramSchmidt(a *Dense) int {
	m, n := a.rows, a.cols
	rank := 0
	for j := 0; j < n; j++ {
		// Subtract projections onto previous columns.
		for k := 0; k < j; k++ {
			var dot float64
			for i := 0; i < m; i++ {
				dot += a.At(i, k) * a.At(i, j)
			}
			if dot == 0 {
				continue
			}
			for i := 0; i < m; i++ {
				a.Add(i, j, -dot*a.At(i, k))
			}
		}
		var nrm float64
		for i := 0; i < m; i++ {
			v := a.At(i, j)
			nrm += v * v
		}
		nrm = math.Sqrt(nrm)
		if nrm < 1e-12 {
			for i := 0; i < m; i++ {
				a.Set(i, j, 0)
			}
			continue
		}
		inv := 1 / nrm
		for i := 0; i < m; i++ {
			a.Set(i, j, a.At(i, j)*inv)
		}
		rank++
	}
	return rank
}
