package mat

import "math"

// LU holds an LU factorization with partial pivoting: P*A = L*U. It backs the
// general-purpose inverse the paper's Algorithm 3 (line 14) calls for, and is
// also used by tests as an independent check on the Cholesky path.
type LU struct {
	n     int
	lu    []float64 // combined L (unit lower) and U, row-major
	piv   []int     // row permutation
	signs int       // +1 or -1, parity of the permutation
}

// NewLU factorizes the square matrix a with partial pivoting. It returns
// ErrSingular when a pivot collapses to (near) zero. a is not modified.
func NewLU(a *Dense) (*LU, error) {
	if a.rows != a.cols {
		return nil, ErrShape
	}
	n := a.rows
	lu := make([]float64, n*n)
	copy(lu, a.data)
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Find pivot.
		p := k
		mx := math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu[i*n+k]); v > mx {
				mx, p = v, i
			}
		}
		if mx == 0 || math.IsNaN(mx) {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu[k*n+j], lu[p*n+j] = lu[p*n+j], lu[k*n+j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu[i*n+k] / pivVal
			lu[i*n+k] = m
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu[i*n+j] -= m * lu[k*n+j]
			}
		}
	}
	return &LU{n: n, lu: lu, piv: piv, signs: sign}, nil
}

// SolveVec solves A*x = b and returns x as a new slice.
func (f *LU) SolveVec(b []float64) []float64 {
	if len(b) != f.n {
		panic(ErrShape)
	}
	n := f.n
	x := make([]float64, n)
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		sum := x[i]
		for k := 0; k < i; k++ {
			sum -= f.lu[i*n+k] * x[k]
		}
		x[i] = sum
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		sum := x[i]
		for k := i + 1; k < n; k++ {
			sum -= f.lu[i*n+k] * x[k]
		}
		x[i] = sum / f.lu[i*n+i]
	}
	return x
}

// Solve solves A*X = B for the matrix X.
func (f *LU) Solve(b *Dense) *Dense {
	if b.rows != f.n {
		panic(ErrShape)
	}
	out := NewDense(f.n, b.cols)
	col := make([]float64, f.n)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < f.n; i++ {
			col[i] = b.At(i, j)
		}
		x := f.SolveVec(col)
		for i := 0; i < f.n; i++ {
			out.Set(i, j, x[i])
		}
	}
	return out
}

// Inverse returns A⁻¹.
func (f *LU) Inverse() *Dense {
	return f.Solve(Identity(f.n))
}

// Det returns det(A).
func (f *LU) Det() float64 {
	d := float64(f.signs)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// Inverse returns the inverse of the square matrix a, or ErrSingular if a is
// not invertible. This is the explicit-inverse operation Algorithm 3 performs
// on [B + λI]; callers that only need to apply the inverse once should prefer
// Cholesky/LU SolveVec.
func Inverse(a *Dense) (*Dense, error) {
	f, err := NewLU(a)
	if err != nil {
		return nil, err
	}
	return f.Inverse(), nil
}

// SolveVec solves a*x = b for general square a.
func SolveVec(a *Dense, b []float64) ([]float64, error) {
	f, err := NewLU(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b), nil
}
