package mat

import (
	"math"
	"sort"
)

// maxJacobiSweeps bounds the cyclic Jacobi iteration. Convergence is
// quadratic once rotations become small; 64 sweeps is far beyond what any
// J^(N-1)-sized Gram matrix needs in practice.
const maxJacobiSweeps = 64

// SymEigen computes the full eigendecomposition of the symmetric matrix a
// using the cyclic Jacobi method: a = V * diag(vals) * Vᵀ. Eigenvalues are
// returned in descending order with matching eigenvector columns in V.
//
// The Jacobi method is chosen over tridiagonalization+QL because the matrices
// here are small Gram matrices (J^(N-1) square at most) where Jacobi's
// simplicity and high relative accuracy dominate; the baselines (HOOI, S-HOT,
// Tucker-CSF) all reduce their SVDs to symmetric eigenproblems of this size.
func SymEigen(a *Dense) (vals []float64, v *Dense, err error) {
	if a.rows != a.cols {
		return nil, nil, ErrShape
	}
	n := a.rows
	w := a.Clone() // working copy, becomes diagonal
	v = Identity(n)
	if n == 0 {
		return []float64{}, v, nil
	}

	offDiag := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += w.At(i, j) * w.At(i, j)
			}
		}
		return s
	}

	// Scale-aware convergence threshold.
	eps := 1e-30 * w.FrobeniusNorm() * w.FrobeniusNorm()
	if eps == 0 {
		eps = 1e-300
	}

	converged := false
	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		if offDiag() <= eps {
			converged = true
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if apq == 0 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Compute the Jacobi rotation that annihilates w[p][q].
				theta := (aqq - app) / (2 * apq)
				var t float64
				if math.Abs(theta) > 1e150 {
					t = 1 / (2 * theta)
				} else {
					t = math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c

				// Apply rotation: W ← Jᵀ W J on rows/cols p and q.
				for k := 0; k < n; k++ {
					wkp := w.At(k, p)
					wkq := w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk := w.At(p, k)
					wqk := w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				// Accumulate eigenvectors: V ← V J.
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	if !converged && offDiag() > eps {
		return nil, nil, ErrNoConverge
	}

	// Extract eigenvalues and sort descending along with eigenvectors.
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })

	sortedVals := make([]float64, n)
	sortedV := NewDense(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			sortedV.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedV, nil
}
