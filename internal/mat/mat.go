// Package mat provides the dense linear-algebra kernels required by the
// P-Tucker reproduction: matrix storage, products, Cholesky and LU solvers,
// Householder QR, a symmetric Jacobi eigensolver, and a Gram-based thin SVD.
//
// The reference implementation of the paper relies on Armadillo/LAPACK for
// these operations; Go has no such substrate in the standard library, so the
// kernels are implemented here from scratch. All matrices are row-major
// float64 and sized for the regime the algorithms need: the Tucker rank J is
// small (typically 3..16), so O(J^3) factorizations are cheap, while factor
// matrices (In x Jn) are tall and skinny.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// Common error values returned by the solvers in this package.
var (
	// ErrShape indicates incompatible matrix dimensions for an operation.
	ErrShape = errors.New("mat: incompatible matrix shapes")
	// ErrSingular indicates a numerically singular matrix was passed to a
	// solver that requires an invertible input.
	ErrSingular = errors.New("mat: matrix is singular to working precision")
	// ErrNotSPD indicates a matrix that is not symmetric positive definite
	// was passed to the Cholesky factorization.
	ErrNotSPD = errors.New("mat: matrix is not symmetric positive definite")
	// ErrNoConverge indicates an iterative kernel exceeded its sweep budget.
	ErrNoConverge = errors.New("mat: iteration did not converge")
)

// Dense is a row-major dense matrix. The zero value is an empty matrix; use
// NewDense or NewDenseData to construct a usable instance.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns an r x c matrix of zeros.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseData wraps data (row-major, length r*c) in a Dense without copying.
// The caller must not alias the slice afterwards unless that sharing is
// intended.
func NewDenseData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Dims returns the row and column counts.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add adds v to the element at row i, column j.
func (m *Dense) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Row returns a mutable view of row i (no copy).
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Data returns the backing row-major slice (no copy).
func (m *Dense) Data() []float64 { return m.data }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Dense{rows: m.rows, cols: m.cols, data: d}
}

// CopyFrom overwrites m with the contents of src. The shapes must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(ErrShape)
	}
	copy(m.data, src.data)
}

// Zero sets every element of m to zero.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Fill sets every element of m to v.
func (m *Dense) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// Scale multiplies every element of m by s in place.
func (m *Dense) Scale(s float64) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// AddScaled adds s*other to m in place. The shapes must match.
func (m *Dense) AddScaled(other *Dense, s float64) {
	if m.rows != other.rows || m.cols != other.cols {
		panic(ErrShape)
	}
	for i, v := range other.data {
		m.data[i] += s * v
	}
}

// T returns a newly allocated transpose of m.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// FrobeniusNorm returns sqrt(sum of squared elements).
func (m *Dense) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element value, or 0 for empty matrices.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Equal reports whether m and other have the same shape and every pair of
// elements differs by at most tol.
func (m *Dense) Equal(other *Dense, tol float64) bool {
	if m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-other.data[i]) > tol {
			return false
		}
	}
	return true
}

// IsFinite reports whether every element is finite (no NaN or Inf).
func (m *Dense) IsFinite() bool {
	for _, v := range m.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Dense) String() string {
	const maxShow = 8
	s := fmt.Sprintf("Dense(%dx%d)[", m.rows, m.cols)
	for i := 0; i < m.rows && i < maxShow; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.cols && j < maxShow; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
		if m.cols > maxShow {
			s += " …"
		}
	}
	if m.rows > maxShow {
		s += "; …"
	}
	return s + "]"
}

// Mul returns a*b. It panics with ErrShape on dimension mismatch.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(ErrShape)
	}
	out := NewDense(a.rows, b.cols)
	MulInto(out, a, b)
	return out
}

// MulInto computes dst = a*b, reusing dst's storage. dst must not alias a or
// b and must already have shape a.rows x b.cols.
func MulInto(dst, a, b *Dense) {
	if a.cols != b.rows || dst.rows != a.rows || dst.cols != b.cols {
		panic(ErrShape)
	}
	dst.Zero()
	// ikj loop order: stream b rows, accumulate into dst rows; this is the
	// cache-friendly order for row-major storage.
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MulT returns a*bᵀ.
func MulT(a, b *Dense) *Dense {
	if a.cols != b.cols {
		panic(ErrShape)
	}
	out := NewDense(a.rows, b.rows)
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.rows; j++ {
			orow[j] = Dot(arow, b.Row(j))
		}
	}
	return out
}

// TMul returns aᵀ*b.
func TMul(a, b *Dense) *Dense {
	if a.rows != b.rows {
		panic(ErrShape)
	}
	out := NewDense(a.cols, b.cols)
	for k := 0; k < a.rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Gram returns aᵀ*a, the k x k Gram matrix of a's columns.
func Gram(a *Dense) *Dense { return TMul(a, a) }

// MulVec returns a*x as a new vector of length a.rows.
func MulVec(a *Dense, x []float64) []float64 {
	if a.cols != len(x) {
		panic(ErrShape)
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		out[i] = Dot(a.Row(i), x)
	}
	return out
}

// VecMul returns xᵀ*a as a new vector of length a.cols.
func VecMul(x []float64, a *Dense) []float64 {
	if a.rows != len(x) {
		panic(ErrShape)
	}
	out := make([]float64, a.cols)
	for k, xv := range x {
		if xv == 0 {
			continue
		}
		row := a.Row(k)
		for j, av := range row {
			out[j] += xv * av
		}
	}
	return out
}

// Dot returns the inner product of equal-length vectors x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Axpy computes y += a*x element-wise.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	for i, v := range x {
		y[i] += a * v
	}
}
