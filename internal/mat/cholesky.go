package mat

import "math"

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L*Lᵀ. It is the solver of choice for the regularized
// normal matrices [B + λI] arising in the P-Tucker row update (Eq. 9): those
// matrices are SPD by construction (B is a sum of outer products δδᵀ and
// λ > 0), so Cholesky is both the fastest and the most numerically stable
// option.
type Cholesky struct {
	n int
	l []float64 // row-major lower triangle, full n x n storage
}

// NewCholesky factorizes the SPD matrix a. It returns ErrNotSPD if a is not
// (numerically) symmetric positive definite. a is not modified.
func NewCholesky(a *Dense) (*Cholesky, error) {
	if a.rows != a.cols {
		return nil, ErrShape
	}
	n := a.rows
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotSPD
				}
				l[i*n+i] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// SolveVec solves A*x = b for x, overwriting and returning x in a new slice.
func (c *Cholesky) SolveVec(b []float64) []float64 {
	if len(b) != c.n {
		panic(ErrShape)
	}
	n := c.n
	x := make([]float64, n)
	copy(x, b)
	c.SolveVecInPlace(x)
	return x
}

// SolveVecInPlace solves A*x = b where b is supplied (and overwritten) in x.
func (c *Cholesky) SolveVecInPlace(x []float64) {
	n := c.n
	l := c.l
	// Forward substitution: L*y = b.
	for i := 0; i < n; i++ {
		sum := x[i]
		for k := 0; k < i; k++ {
			sum -= l[i*n+k] * x[k]
		}
		x[i] = sum / l[i*n+i]
	}
	// Back substitution: Lᵀ*x = y.
	for i := n - 1; i >= 0; i-- {
		sum := x[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k*n+i] * x[k]
		}
		x[i] = sum / l[i*n+i]
	}
}

// Inverse returns A⁻¹ computed column-by-column from the factorization.
func (c *Cholesky) Inverse() *Dense {
	n := c.n
	inv := NewDense(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		c.SolveVecInPlace(e)
		for i := 0; i < n; i++ {
			inv.Set(i, j, e[i])
		}
	}
	return inv
}

// LogDet returns log(det(A)) = 2*Σ log(L[i][i]).
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.n; i++ {
		s += math.Log(c.l[i*c.n+i])
	}
	return 2 * s
}

// SolveSPDVec is a convenience wrapper: it factorizes a (which must be SPD)
// and solves a*x = b in one call.
func SolveSPDVec(a *Dense, b []float64) ([]float64, error) {
	ch, err := NewCholesky(a)
	if err != nil {
		return nil, err
	}
	return ch.SolveVec(b), nil
}
