package mat

import (
	"math"
	"math/rand"
)

// eigenTopKCutoff is the Gram size above which the full Jacobi sweep becomes
// the bottleneck (O(K³)) and block subspace iteration (O(K²·k) per step)
// takes over. 64 keeps the dense path for every small-rank configuration.
const eigenTopKCutoff = 64

// TopKEigenSPD computes the k leading eigenpairs of the symmetric positive
// semi-definite matrix a by block subspace iteration with Rayleigh-Ritz
// extraction. It is the truncated eigensolver the S-HOT and HOOI baselines
// need at high orders, where the Gram matrix is J^(N-1) square but only Jn
// leading eigenvectors matter. Deterministic for a fixed seed.
func TopKEigenSPD(a *Dense, k, maxIters int, tol float64, seed int64) ([]float64, *Dense, error) {
	n := a.rows
	if a.rows != a.cols || k < 1 || k > n {
		return nil, nil, ErrShape
	}
	if maxIters < 1 {
		maxIters = 100
	}
	rng := rand.New(rand.NewSource(seed))
	q := NewDense(n, k)
	for i := range q.data {
		q.data[i] = rng.NormFloat64()
	}
	GramSchmidt(q)

	z := NewDense(n, k)
	prev := make([]float64, k)
	ritz := make([]float64, k)
	for iter := 0; iter < maxIters; iter++ {
		MulInto(z, a, q)
		// Rayleigh quotients before orthonormalization: diag(Qᵀ A Q).
		for j := 0; j < k; j++ {
			var num float64
			for i := 0; i < n; i++ {
				num += q.At(i, j) * z.At(i, j)
			}
			ritz[j] = num
		}
		q.CopyFrom(z)
		if GramSchmidt(q) < k {
			// Deficient block: re-randomize the lost directions.
			for j := 0; j < k; j++ {
				var nrm float64
				for i := 0; i < n; i++ {
					nrm += q.At(i, j) * q.At(i, j)
				}
				if nrm < 0.5 {
					for i := 0; i < n; i++ {
						q.Set(i, j, rng.NormFloat64())
					}
				}
			}
			GramSchmidt(q)
		}
		// Convergence on relative Ritz-value change.
		if iter > 0 {
			maxDelta := 0.0
			for j := 0; j < k; j++ {
				scale := math.Abs(prev[j])
				if scale < 1e-300 {
					scale = 1
				}
				if d := math.Abs(ritz[j]-prev[j]) / scale; d > maxDelta {
					maxDelta = d
				}
			}
			if maxDelta < tol {
				break
			}
		}
		copy(prev, ritz)
	}

	// Rayleigh-Ritz: rotate the block into eigenvector estimates.
	aq := Mul(a, q)
	small := TMul(q, aq) // k x k
	vals, rot, err := SymEigen(small)
	if err != nil {
		return nil, nil, err
	}
	vecs := Mul(q, rot)
	return vals, vecs, nil
}

// EigenTopK returns the k leading eigenpairs of a symmetric PSD matrix,
// choosing the full Jacobi path for small matrices and subspace iteration for
// large ones. Eigenvalues are descending; vecs is n x k.
func EigenTopK(a *Dense, k int) ([]float64, *Dense, error) {
	n := a.rows
	if a.rows != a.cols || k < 1 || k > n {
		return nil, nil, ErrShape
	}
	if n <= eigenTopKCutoff || k*2 >= n {
		vals, v, err := SymEigen(a)
		if err != nil {
			return nil, nil, err
		}
		vecs := NewDense(n, k)
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				vecs.Set(i, j, v.At(i, j))
			}
		}
		return vals[:k], vecs, nil
	}
	return TopKEigenSPD(a, k, 300, 1e-10, 1)
}
