package mat

import "math"

// SVDThin holds a thin singular value decomposition A = U * diag(S) * Vᵀ of
// an m x n matrix with m >= n: U is m x n with orthonormal columns, S holds n
// non-negative singular values in descending order, V is n x n orthogonal.
type SVDThin struct {
	U *Dense
	S []float64
	V *Dense
}

// SVD computes the thin SVD of a via the Gram-matrix route:
//
//	AᵀA = V Σ² Vᵀ  (symmetric Jacobi eigendecomposition)
//	U   = A V Σ⁻¹  (columns with σ≈0 are completed arbitrarily but orthogonally)
//
// This is the standard trick for the tall-skinny matrices produced in HOOI:
// the matricized TTMc result Y(n) is In x ∏_{m≠n} Jm where the column count
// is tiny, so the n x n eigenproblem is cheap and the In-sized work is a
// single pass. Accuracy for small singular values is lower than
// Golub-Kahan's, which is acceptable here: the baselines only need leading
// singular vectors of noisy data.
func SVD(a *Dense) (*SVDThin, error) {
	if a.rows < a.cols {
		// Decompose the transpose and swap U/V.
		st, err := SVD(a.T())
		if err != nil {
			return nil, err
		}
		return &SVDThin{U: st.V, S: st.S, V: st.U}, nil
	}
	g := Gram(a) // n x n
	vals, v, err := SymEigen(g)
	if err != nil {
		return nil, err
	}
	n := a.cols
	s := make([]float64, n)
	for i, ev := range vals {
		if ev < 0 {
			ev = 0 // numerical noise below zero
		}
		s[i] = math.Sqrt(ev)
	}
	u := Mul(a, v) // m x n, columns are A*v_i with norm σ_i
	// Normalize columns of U; regenerate degenerate ones via Gram-Schmidt.
	for j := 0; j < n; j++ {
		if s[j] > 1e-12 {
			inv := 1 / s[j]
			for i := 0; i < a.rows; i++ {
				u.Set(i, j, u.At(i, j)*inv)
			}
		} else {
			for i := 0; i < a.rows; i++ {
				u.Set(i, j, 0)
			}
		}
	}
	completeOrthonormal(u)
	return &SVDThin{U: u, S: s, V: v}, nil
}

// LeadingLeftSingularVectors returns the first k left singular vectors of a
// as the columns of an a.rows x k matrix. This is the "Jn leading left
// singular vectors of Y(n)" step of Tucker-ALS (Algorithm 1, line 5). For
// wide Gram matrices (many columns, few wanted vectors) it switches to the
// truncated subspace-iteration path, which is what keeps the HOOI-family
// baselines tractable at high tensor orders where the column count is
// J^(N-1).
func LeadingLeftSingularVectors(a *Dense, k int) (*Dense, error) {
	if k > a.cols {
		return nil, ErrShape
	}
	if a.cols > eigenTopKCutoff && a.rows >= a.cols && k*2 < a.cols {
		g := Gram(a)
		vals, v, err := EigenTopK(g, k)
		if err != nil {
			return nil, err
		}
		u := Mul(a, v) // m x k, column norms are the singular values
		for j := 0; j < k; j++ {
			ev := vals[j]
			if ev < 0 {
				ev = 0
			}
			s := math.Sqrt(ev)
			if s > 1e-12 {
				inv := 1 / s
				for i := 0; i < a.rows; i++ {
					u.Set(i, j, u.At(i, j)*inv)
				}
			} else {
				for i := 0; i < a.rows; i++ {
					u.Set(i, j, 0)
				}
			}
		}
		completeOrthonormal(u)
		return u, nil
	}
	st, err := SVD(a)
	if err != nil {
		return nil, err
	}
	out := NewDense(a.rows, k)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < k; j++ {
			out.Set(i, j, st.U.At(i, j))
		}
	}
	return out, nil
}

// LeftSingularFromGram reconstructs the k leading left singular vectors of an
// implicit matrix Y (m x n) given only its Gram matrix G = YᵀY and an
// apply(v) operation computing Y*v. This is the S-HOT on-the-fly kernel: Y is
// never materialized; memory stays O(n²).
func LeftSingularFromGram(gram *Dense, m, k int, apply func(v []float64) []float64) (*Dense, []float64, error) {
	vals, v, err := SymEigen(gram)
	if err != nil {
		return nil, nil, err
	}
	n := gram.rows
	if k > n {
		return nil, nil, ErrShape
	}
	s := make([]float64, k)
	u := NewDense(m, k)
	vec := make([]float64, n)
	for j := 0; j < k; j++ {
		ev := vals[j]
		if ev < 0 {
			ev = 0
		}
		s[j] = math.Sqrt(ev)
		for i := 0; i < n; i++ {
			vec[i] = v.At(i, j)
		}
		col := apply(vec)
		if len(col) != m {
			return nil, nil, ErrShape
		}
		if s[j] > 1e-12 {
			inv := 1 / s[j]
			for i := 0; i < m; i++ {
				u.Set(i, j, col[i]*inv)
			}
		}
	}
	completeOrthonormal(u)
	return u, s, nil
}

// completeOrthonormal replaces any all-zero columns of u with unit vectors
// orthogonal to the existing columns so that u always has orthonormal
// columns. Zero columns arise when the source matrix is rank-deficient.
func completeOrthonormal(u *Dense) {
	m, n := u.rows, u.cols
	for j := 0; j < n; j++ {
		var nrm float64
		for i := 0; i < m; i++ {
			nrm += u.At(i, j) * u.At(i, j)
		}
		if nrm > 0.5 {
			continue // healthy unit column
		}
		// Try canonical basis vectors until one survives orthogonalization.
		for e := 0; e < m; e++ {
			for i := 0; i < m; i++ {
				u.Set(i, j, 0)
			}
			u.Set(e, j, 1)
			// Orthogonalize against all other columns.
			for k := 0; k < n; k++ {
				if k == j {
					continue
				}
				var dot float64
				for i := 0; i < m; i++ {
					dot += u.At(i, k) * u.At(i, j)
				}
				for i := 0; i < m; i++ {
					u.Add(i, j, -dot*u.At(i, k))
				}
			}
			var rn float64
			for i := 0; i < m; i++ {
				rn += u.At(i, j) * u.At(i, j)
			}
			if rn > 1e-6 {
				inv := 1 / math.Sqrt(rn)
				for i := 0; i < m; i++ {
					u.Set(i, j, u.At(i, j)*inv)
				}
				break
			}
		}
	}
}
