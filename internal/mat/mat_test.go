package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomDense returns an r x c matrix with entries uniform in [-1, 1).
func randomDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.data {
		m.data[i] = rng.Float64()*2 - 1
	}
	return m
}

// randomSPD returns a random symmetric positive definite n x n matrix.
func randomSPD(rng *rand.Rand, n int) *Dense {
	a := randomDense(rng, n, n)
	spd := TMul(a, a)
	for i := 0; i < n; i++ {
		spd.Add(i, i, float64(n)) // diagonal boost guarantees positive definiteness
	}
	return spd
}

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	r, c := m.Dims()
	if r != 3 || c != 4 {
		t.Fatalf("Dims = %d,%d want 3,4", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewDenseNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimensions")
		}
	}()
	NewDense(-1, 2)
}

func TestNewDenseDataMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for data length mismatch")
		}
	}()
	NewDenseData(2, 2, []float64{1, 2, 3})
}

func TestSetAtRoundTrip(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v want 7.5", got)
	}
	m.Add(1, 2, 0.5)
	if got := m.At(1, 2); got != 8 {
		t.Fatalf("after Add, At(1,2) = %v want 8", got)
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity(4)[%d][%d] = %v want %v", i, j, id.At(i, j), want)
			}
		}
	}
}

func TestRowIsView(t *testing.T) {
	m := NewDense(2, 2)
	row := m.Row(1)
	row[0] = 42
	if m.At(1, 0) != 42 {
		t.Fatal("Row must return a mutable view, not a copy")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestTranspose(t *testing.T) {
	m := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose shape = %dx%d want 3x2", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := Mul(a, b)
	want := NewDenseData(2, 2, []float64{58, 64, 139, 154})
	if !got.Equal(want, 1e-12) {
		t.Fatalf("Mul = %v want %v", got, want)
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shape mismatch")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

func TestMulTAndTMulAgreeWithExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomDense(rng, 4, 6)
	b := randomDense(rng, 5, 6)
	if got, want := MulT(a, b), Mul(a, b.T()); !got.Equal(want, 1e-12) {
		t.Fatal("MulT disagrees with Mul(a, b.T())")
	}
	c := randomDense(rng, 6, 4)
	d := randomDense(rng, 6, 5)
	if got, want := TMul(c, d), Mul(c.T(), d); !got.Equal(want, 1e-12) {
		t.Fatal("TMul disagrees with Mul(a.T(), b)")
	}
}

func TestGramSymmetricPSD(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomDense(rng, 8, 4)
	g := Gram(a)
	for i := 0; i < 4; i++ {
		if g.At(i, i) < 0 {
			t.Fatalf("Gram diagonal negative at %d", i)
		}
		for j := 0; j < 4; j++ {
			if math.Abs(g.At(i, j)-g.At(j, i)) > 1e-12 {
				t.Fatalf("Gram not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulVecVecMul(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, 0, -1}
	got := MulVec(a, x)
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v want [-2 -2]", got)
	}
	y := []float64{1, -1}
	got2 := VecMul(y, a)
	want2 := []float64{-3, -3, -3}
	for i := range want2 {
		if math.Abs(got2[i]-want2[i]) > 1e-12 {
			t.Fatalf("VecMul = %v want %v", got2, want2)
		}
	}
}

func TestDotNormAxpy(t *testing.T) {
	x := []float64{3, 4}
	if Dot(x, x) != 25 {
		t.Fatalf("Dot = %v want 25", Dot(x, x))
	}
	if Norm2(x) != 5 {
		t.Fatalf("Norm2 = %v want 5", Norm2(x))
	}
	y := []float64{1, 1}
	Axpy(2, x, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy = %v want [7 9]", y)
	}
}

func TestAddScaledScaleFill(t *testing.T) {
	m := NewDense(2, 2)
	m.Fill(2)
	n := NewDense(2, 2)
	n.Fill(3)
	m.AddScaled(n, 2) // 2 + 6 = 8
	if m.At(1, 1) != 8 {
		t.Fatalf("AddScaled result %v want 8", m.At(1, 1))
	}
	m.Scale(0.5)
	if m.At(0, 0) != 4 {
		t.Fatalf("Scale result %v want 4", m.At(0, 0))
	}
	m.Zero()
	if m.MaxAbs() != 0 {
		t.Fatal("Zero did not clear the matrix")
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := NewDenseData(2, 2, []float64{1, 2, 2, 4})
	if got, want := m.FrobeniusNorm(), 5.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("FrobeniusNorm = %v want %v", got, want)
	}
}

func TestIsFinite(t *testing.T) {
	m := NewDense(1, 2)
	if !m.IsFinite() {
		t.Fatal("zero matrix must be finite")
	}
	m.Set(0, 1, math.NaN())
	if m.IsFinite() {
		t.Fatal("NaN matrix must not be finite")
	}
	m.Set(0, 1, math.Inf(1))
	if m.IsFinite() {
		t.Fatal("Inf matrix must not be finite")
	}
}

// Property: matrix multiplication is associative (A*B)*C == A*(B*C).
func TestMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d1, d2, d3, d4 := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randomDense(r, d1, d2)
		b := randomDense(r, d2, d3)
		c := randomDense(r, d3, d4)
		left := Mul(Mul(a, b), c)
		right := Mul(a, Mul(b, c))
		return left.Equal(right, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: (A*B)ᵀ == Bᵀ*Aᵀ.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d1, d2, d3 := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randomDense(r, d1, d2)
		b := randomDense(r, d2, d3)
		return Mul(a, b).T().Equal(Mul(b.T(), a.T()), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for n := 1; n <= 12; n++ {
		a := randomSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()
		}
		b := MulVec(a, x)
		got := ch.SolveVec(b)
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-8 {
				t.Fatalf("n=%d: solve mismatch at %d: %v vs %v", n, i, got[i], x[i])
			}
		}
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); err != ErrNotSPD {
		t.Fatalf("err = %v want ErrNotSPD", err)
	}
	if _, err := NewCholesky(NewDense(2, 3)); err != ErrShape {
		t.Fatalf("err = %v want ErrShape", err)
	}
}

func TestCholeskyInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomSPD(rng, 6)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	inv := ch.Inverse()
	if !Mul(a, inv).Equal(Identity(6), 1e-8) {
		t.Fatal("A * A^-1 != I")
	}
}

func TestCholeskyLogDetMatchesLU(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomSPD(rng, 5)
	ch, _ := NewCholesky(a)
	lu, _ := NewLU(a)
	if got, want := ch.LogDet(), math.Log(lu.Det()); math.Abs(got-want) > 1e-8 {
		t.Fatalf("LogDet = %v, log(LU.Det) = %v", got, want)
	}
}

func TestSolveSPDVec(t *testing.T) {
	a := NewDenseData(2, 2, []float64{4, 1, 1, 3})
	x, err := SolveSPDVec(a, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Verify a*x = b.
	b := MulVec(a, x)
	if math.Abs(b[0]-1) > 1e-12 || math.Abs(b[1]-2) > 1e-12 {
		t.Fatalf("residual too large: %v", b)
	}
}

func TestLUSolveAndDet(t *testing.T) {
	a := NewDenseData(3, 3, []float64{
		2, 1, 1,
		4, -6, 0,
		-2, 7, 2,
	})
	lu, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	// det = -16 for this classic example.
	if got := lu.Det(); math.Abs(got-(-16)) > 1e-9 {
		t.Fatalf("Det = %v want -16", got)
	}
	x := lu.SolveVec([]float64{5, -2, 9})
	b := MulVec(a, x)
	want := []float64{5, -2, 9}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-9 {
			t.Fatalf("solve residual at %d: %v vs %v", i, b[i], want[i])
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 4})
	if _, err := NewLU(a); err != ErrSingular {
		t.Fatalf("err = %v want ErrSingular", err)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(8)
		a := randomDense(rng, n, n)
		// Make well-conditioned by diagonal dominance.
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n))
		}
		inv, err := Inverse(a)
		if err != nil {
			t.Fatal(err)
		}
		if !Mul(a, inv).Equal(Identity(n), 1e-8) {
			t.Fatalf("trial %d: A*A^-1 != I", trial)
		}
		if !Mul(inv, a).Equal(Identity(n), 1e-8) {
			t.Fatalf("trial %d: A^-1*A != I", trial)
		}
	}
}

// Property: Cholesky and LU agree on SPD systems.
func TestCholeskyLUAgreementProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := randomSPD(r, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.Float64()
		}
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		lu, err := NewLU(a)
		if err != nil {
			return false
		}
		x1 := ch.SolveVec(b)
		x2 := lu.SolveVec(b)
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestQRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		m := 2 + rng.Intn(20)
		n := 1 + rng.Intn(m) // m >= n
		a := randomDense(rng, m, n)
		q, r, err := QRFactor(a)
		if err != nil {
			t.Fatal(err)
		}
		if !Mul(q, r).Equal(a, 1e-9) {
			t.Fatalf("trial %d: QR does not reconstruct A", trial)
		}
		// Q orthonormal columns.
		if !Gram(q).Equal(Identity(n), 1e-9) {
			t.Fatalf("trial %d: Q columns not orthonormal", trial)
		}
		// R upper triangular.
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				if math.Abs(r.At(i, j)) > 1e-10 {
					t.Fatalf("trial %d: R not upper triangular at (%d,%d)", trial, i, j)
				}
			}
		}
	}
}

func TestQRWideRejected(t *testing.T) {
	if _, err := NewQR(NewDense(2, 3)); err != ErrShape {
		t.Fatalf("err = %v want ErrShape", err)
	}
}

func TestQRZeroColumn(t *testing.T) {
	a := NewDense(4, 2)
	a.Set(0, 0, 1)
	a.Set(1, 0, 1) // column 1 all zeros
	q, r, err := QRFactor(a)
	if err != nil {
		t.Fatal(err)
	}
	if !Mul(q, r).Equal(a, 1e-10) {
		t.Fatal("QR with zero column does not reconstruct A")
	}
}

func TestGramSchmidt(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomDense(rng, 10, 4)
	rank := GramSchmidt(a)
	if rank != 4 {
		t.Fatalf("rank = %d want 4", rank)
	}
	if !Gram(a).Equal(Identity(4), 1e-9) {
		t.Fatal("columns not orthonormal after Gram-Schmidt")
	}
	// Rank-deficient input: duplicate columns.
	b := NewDense(5, 2)
	for i := 0; i < 5; i++ {
		b.Set(i, 0, float64(i+1))
		b.Set(i, 1, 2*float64(i+1))
	}
	if rank := GramSchmidt(b); rank != 1 {
		t.Fatalf("rank of duplicated columns = %d want 1", rank)
	}
}

func TestSymEigenDiagonal(t *testing.T) {
	a := NewDenseData(3, 3, []float64{3, 0, 0, 0, 1, 0, 0, 0, 2})
	vals, v, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("vals = %v want %v", vals, want)
		}
	}
	// V should be a permutation of the identity (up to sign).
	if !Mul(v, v.T()).Equal(Identity(3), 1e-12) {
		t.Fatal("eigenvectors not orthogonal")
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(10)
		a := randomSPD(rng, n)
		vals, v, err := SymEigen(a)
		if err != nil {
			t.Fatal(err)
		}
		// Check descending order.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				t.Fatalf("eigenvalues not descending: %v", vals)
			}
		}
		// Reconstruct: V * diag * Vᵀ == A.
		d := NewDense(n, n)
		for i := 0; i < n; i++ {
			d.Set(i, i, vals[i])
		}
		recon := Mul(Mul(v, d), v.T())
		if !recon.Equal(a, 1e-8) {
			t.Fatalf("trial %d: eigen reconstruction failed", trial)
		}
	}
}

func TestSymEigenRejectsNonSquare(t *testing.T) {
	if _, _, err := SymEigen(NewDense(2, 3)); err != ErrShape {
		t.Fatalf("err = %v want ErrShape", err)
	}
}

func TestSymEigenEmpty(t *testing.T) {
	vals, v, err := SymEigen(NewDense(0, 0))
	if err != nil || len(vals) != 0 || v.Rows() != 0 {
		t.Fatalf("empty eigen failed: %v %v %v", vals, v, err)
	}
}

func TestSVDReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		m := 2 + rng.Intn(15)
		n := 1 + rng.Intn(8)
		a := randomDense(rng, m, n)
		st, err := SVD(a)
		if err != nil {
			t.Fatal(err)
		}
		// Singular values non-negative, descending.
		k := len(st.S)
		for i := 0; i < k; i++ {
			if st.S[i] < 0 {
				t.Fatalf("negative singular value %v", st.S[i])
			}
			if i > 0 && st.S[i] > st.S[i-1]+1e-10 {
				t.Fatalf("singular values not descending: %v", st.S)
			}
		}
		// Reconstruct.
		d := NewDense(k, k)
		for i := 0; i < k; i++ {
			d.Set(i, i, st.S[i])
		}
		recon := Mul(Mul(st.U, d), st.V.T())
		if a.rows < a.cols {
			// SVD of wide matrix returns factors for the original shape.
			if recon.Rows() != a.rows || recon.Cols() != a.cols {
				t.Fatalf("unexpected recon shape %dx%d", recon.Rows(), recon.Cols())
			}
		}
		if !recon.Equal(a, 1e-7) {
			t.Fatalf("trial %d (m=%d n=%d): SVD does not reconstruct A", trial, m, n)
		}
		// U columns orthonormal.
		if !Gram(st.U).Equal(Identity(k), 1e-7) {
			t.Fatalf("trial %d: U columns not orthonormal", trial)
		}
	}
}

func TestSVDWideMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randomDense(rng, 3, 7)
	st, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	k := len(st.S)
	d := NewDense(k, k)
	for i := 0; i < k; i++ {
		d.Set(i, i, st.S[i])
	}
	if !Mul(Mul(st.U, d), st.V.T()).Equal(a, 1e-7) {
		t.Fatal("wide SVD does not reconstruct A")
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-1 matrix: outer product.
	a := NewDense(6, 3)
	for i := 0; i < 6; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, float64(i+1)*float64(j+1))
		}
	}
	st, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	// The Gram route squares the condition number, so "zero" singular values
	// carry O(sqrt(eps)) noise relative to the leading one.
	if st.S[1] > 1e-6*st.S[0] || st.S[2] > 1e-6*st.S[0] {
		t.Fatalf("expected rank-1 spectrum, got %v", st.S)
	}
	// Even for rank-deficient input, U columns must be orthonormal.
	if !Gram(st.U).Equal(Identity(3), 1e-7) {
		t.Fatal("U columns not orthonormal for rank-deficient input")
	}
}

func TestLeadingLeftSingularVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomDense(rng, 12, 5)
	u, err := LeadingLeftSingularVectors(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	if u.Rows() != 12 || u.Cols() != 3 {
		t.Fatalf("shape = %dx%d want 12x3", u.Rows(), u.Cols())
	}
	if !Gram(u).Equal(Identity(3), 1e-8) {
		t.Fatal("leading singular vectors not orthonormal")
	}
	if _, err := LeadingLeftSingularVectors(a, 9); err != ErrShape {
		t.Fatalf("err = %v want ErrShape for k > cols", err)
	}
}

func TestLeftSingularFromGramMatchesSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	m, n, k := 20, 4, 3
	a := randomDense(rng, m, n)
	gram := Gram(a)
	u, s, err := LeftSingularFromGram(gram, m, k, func(v []float64) []float64 {
		return MulVec(a, v)
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < k; j++ {
		if math.Abs(s[j]-st.S[j]) > 1e-8 {
			t.Fatalf("singular value %d: %v vs %v", j, s[j], st.S[j])
		}
		// Columns match up to sign.
		var dot float64
		for i := 0; i < m; i++ {
			dot += u.At(i, j) * st.U.At(i, j)
		}
		if math.Abs(math.Abs(dot)-1) > 1e-6 {
			t.Fatalf("column %d mismatch, |dot| = %v", j, math.Abs(dot))
		}
	}
}

// Property: SVD singular values are invariant under orthogonal column mixing.
func TestSVDOrthogonalInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 6+r.Intn(6), 2+r.Intn(3)
		a := randomDense(r, m, n)
		// Random orthogonal Q from QR of a random matrix.
		q, _, err := QRFactor(randomDense(r, n, n))
		if err != nil {
			return false
		}
		s1, err := SVD(a)
		if err != nil {
			return false
		}
		s2, err := SVD(Mul(a, q))
		if err != nil {
			return false
		}
		for i := range s1.S {
			if math.Abs(s1.S[i]-s2.S[i]) > 1e-7*(1+s1.S[0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCholeskySolve10(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	a := randomSPD(rng, 10)
	rhs := make([]float64, 10)
	for i := range rhs {
		rhs[i] = rng.Float64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ch, err := NewCholesky(a)
		if err != nil {
			b.Fatal(err)
		}
		_ = ch.SolveVec(rhs)
	}
}

func BenchmarkMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	x := randomDense(rng, 64, 64)
	y := randomDense(rng, 64, 64)
	out := NewDense(64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MulInto(out, x, y)
	}
}

func BenchmarkSymEigen16(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	a := randomSPD(rng, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := SymEigen(a); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTopKEigenSPDMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	// A 100x100 PSD matrix with a clear spectral gap.
	a := randomDense(rng, 100, 8)
	spd := MulT(a, a) // wait: MulT(a,a) = a*aT, 100x100 PSD of rank 8
	vals, vecs, err := TopKEigenSPD(spd, 3, 300, 1e-12, 7)
	if err != nil {
		t.Fatal(err)
	}
	full, fv, err := SymEigen(spd)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		if math.Abs(vals[j]-full[j]) > 1e-6*(1+full[0]) {
			t.Fatalf("eigenvalue %d: %v vs %v", j, vals[j], full[j])
		}
		var dot float64
		for i := 0; i < 100; i++ {
			dot += vecs.At(i, j) * fv.At(i, j)
		}
		if math.Abs(math.Abs(dot)-1) > 1e-4 {
			t.Fatalf("eigenvector %d misaligned: |dot| = %v", j, math.Abs(dot))
		}
	}
}

func TestEigenTopKDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	// Small path.
	s := randomSPD(rng, 10)
	vals, vecs, err := EigenTopK(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 4 || vecs.Cols() != 4 || vecs.Rows() != 10 {
		t.Fatalf("small-path shapes wrong: %d vals, %dx%d vecs", len(vals), vecs.Rows(), vecs.Cols())
	}
	full, _, _ := SymEigen(s)
	for j := 0; j < 4; j++ {
		if math.Abs(vals[j]-full[j]) > 1e-9 {
			t.Fatalf("small-path eigenvalue %d mismatch", j)
		}
	}
	// Errors.
	if _, _, err := EigenTopK(NewDense(3, 4), 1); err != ErrShape {
		t.Fatal("non-square must be rejected")
	}
	if _, _, err := EigenTopK(s, 11); err != ErrShape {
		t.Fatal("k > n must be rejected")
	}
}

func TestLeadingLeftSingularVectorsLargePath(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	// 200 columns forces the truncated path; compare with the dense path by
	// checking orthonormality and the captured variance.
	a := randomDense(rng, 300, 200)
	u, err := LeadingLeftSingularVectors(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !Gram(u).Equal(Identity(4), 1e-6) {
		t.Fatal("truncated-path singular vectors not orthonormal")
	}
	// Captured energy ||Uᵀa||_F must be close to the sum of top-4 σ².
	proj := TMul(u, a)
	got := proj.FrobeniusNorm()
	st, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for j := 0; j < 4; j++ {
		want += st.S[j] * st.S[j]
	}
	want = math.Sqrt(want)
	if math.Abs(got-want) > 1e-3*want {
		t.Fatalf("captured energy %v vs %v", got, want)
	}
}
