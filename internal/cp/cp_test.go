package cp

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// plantedCP samples nnz observed entries from a random rank-R CP model.
func plantedCP(rng *rand.Rand, dims []int, rank, nnz int, noise float64) *tensor.Coord {
	n := len(dims)
	factors := make([]*mat.Dense, n)
	for m := 0; m < n; m++ {
		a := mat.NewDense(dims[m], rank)
		for i := range a.Data() {
			a.Data()[i] = rng.Float64()
		}
		factors[m] = a
	}
	t := tensor.NewCoord(dims)
	idx := make([]int, n)
	seen := make(map[int]bool)
	for t.NNZ() < nnz {
		flat, stride := 0, 1
		for k, d := range dims {
			idx[k] = rng.Intn(d)
			flat += idx[k] * stride
			stride *= d
		}
		if seen[flat] {
			continue
		}
		seen[flat] = true
		var v float64
		for r := 0; r < rank; r++ {
			p := 1.0
			for k := 0; k < n; k++ {
				p *= factors[k].At(idx[k], r)
			}
			v += p
		}
		t.MustAppend(idx, v+noise*rng.NormFloat64())
	}
	return t
}

func TestCPRecoversPlanted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := plantedCP(rng, []int{20, 18, 16}, 3, 1500, 0.01)
	m, err := Decompose(x, Config{Rank: 3, Lambda: 0.01, MaxIters: 20, Threads: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if e := m.ReconstructionError(x); e > 0.1*x.Norm() {
		t.Fatalf("error %v too high vs ||X||=%v", e, x.Norm())
	}
}

func TestCPMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := plantedCP(rng, []int{15, 15, 15}, 2, 800, 0.05)
	m, err := Decompose(x, Config{Rank: 2, Lambda: 0.01, MaxIters: 8, Threads: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(m.Trace); i++ {
		if m.Trace[i].Error > m.Trace[i-1].Error*(1+1e-6)+1e-9 {
			t.Fatalf("error increased at sweep %d: %v -> %v",
				i+1, m.Trace[i-1].Error, m.Trace[i].Error)
		}
	}
}

func TestCPGeneralization(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := plantedCP(rng, []int{20, 20, 20}, 2, 2000, 0.0)
	train, test := x.Split(0.9, rng)
	m, err := Decompose(train, Config{Rank: 2, Lambda: 0.01, MaxIters: 25, Threads: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rmse := m.RMSE(test); rmse > 0.1 {
		t.Fatalf("held-out RMSE %v too high on noise-free planted CP data", rmse)
	}
	if m.RMSE(tensor.NewCoord(x.Dims())) != 0 {
		t.Fatal("RMSE over empty set must be 0")
	}
}

func TestCPValidation(t *testing.T) {
	x := tensor.NewCoord([]int{4, 4})
	x.MustAppend([]int{0, 0}, 1)
	bad := []Config{
		{Rank: 0, MaxIters: 1},
		{Rank: 2, MaxIters: 0},
		{Rank: 2, MaxIters: 1, Lambda: -1},
	}
	for i, cfg := range bad {
		if _, err := Decompose(x, cfg); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("case %d: want ErrBadConfig, got %v", i, err)
		}
	}
	if _, err := Decompose(tensor.NewCoord([]int{4, 4}), Config{Rank: 2, MaxIters: 1}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("empty tensor must be rejected")
	}
}

func TestCPConvergenceStop(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := plantedCP(rng, []int{12, 12, 12}, 2, 600, 0.0)
	m, err := Decompose(x, Config{Rank: 2, Lambda: 0.01, MaxIters: 50, Tol: 0.05, Threads: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Converged {
		t.Fatal("expected convergence on noise-free planted data")
	}
	if len(m.Trace) >= 50 {
		t.Fatal("expected early stop")
	}
}

func TestCPUnobservedRowZero(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := tensor.NewCoord([]int{10, 6, 6})
	idx := make([]int, 3)
	for x.NNZ() < 150 {
		idx[0] = rng.Intn(9) // index 9 never observed
		idx[1], idx[2] = rng.Intn(6), rng.Intn(6)
		x.MustAppend(idx, rng.Float64())
	}
	m, err := Decompose(x, Config{Rank: 2, Lambda: 0.01, MaxIters: 4, Threads: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]int{9, 2, 2}); got != 0 {
		t.Fatalf("prediction for unobserved row = %v want 0", got)
	}
}
