// Package cp implements CANDECOMP/PARAFAC (CP) decomposition for sparse,
// partially observed tensors with a row-wise ALS update — the method of Shin
// et al. (reference [24] of the paper, CDTF/SALS), which is where P-Tucker's
// row-wise parallelization originates. Tucker generalizes CP (Section II-C):
// CP is exactly a Tucker model whose core is super-diagonal, and the row
// update below is the P-Tucker normal equation with δ collapsed to the
// Hadamard product of the other modes' factor rows.
//
// The package rounds out the library for users who want the cheaper CP model
// (R parameters per row instead of a Jᴺ core) and provides the paper's
// conceptual baseline lineage in code.
package cp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// Config controls a CP-ALS run.
type Config struct {
	// Rank is the number of CP components R.
	Rank int
	// Lambda is the L2 regularization weight.
	Lambda float64
	// MaxIters bounds the ALS sweeps.
	MaxIters int
	// Tol stops iteration when the relative error change drops below it;
	// zero disables the check.
	Tol float64
	// Threads is the worker count; zero means one worker per row chunk up
	// to a small default.
	Threads int
	// Seed drives the random initialization.
	Seed int64
}

// ErrBadConfig reports an invalid configuration.
var ErrBadConfig = errors.New("cp: invalid configuration")

// Model is a fitted CP decomposition: factor matrices A(n) ∈ R^{In×R}.
type Model struct {
	Factors []*mat.Dense
	// Trace holds the reconstruction error after each sweep.
	Trace []IterStats
	// Converged reports whether the tolerance rule fired.
	Converged bool
}

// IterStats records one ALS sweep.
type IterStats struct {
	Iter    int
	Error   float64
	Elapsed time.Duration
}

// Predict evaluates Σ_r ∏_n A(n)[in][r] at idx.
func (m *Model) Predict(idx []int) float64 {
	r := m.Factors[0].Cols()
	var sum float64
	for c := 0; c < r; c++ {
		p := 1.0
		for n, a := range m.Factors {
			p *= a.At(idx[n], c)
		}
		sum += p
	}
	return sum
}

// ReconstructionError returns the Eq. (5)-style error over the observed
// entries of x.
func (m *Model) ReconstructionError(x *tensor.Coord) float64 {
	var ss float64
	for e := 0; e < x.NNZ(); e++ {
		d := x.Value(e) - m.Predict(x.Index(e))
		ss += d * d
	}
	return math.Sqrt(ss)
}

// RMSE returns the root mean square prediction error over test.
func (m *Model) RMSE(test *tensor.Coord) float64 {
	if test.NNZ() == 0 {
		return 0
	}
	return m.ReconstructionError(test) / math.Sqrt(float64(test.NNZ()))
}

// Decompose fits a rank-R CP model to the observed entries of x by row-wise
// ALS: for each mode n and row in, solve the R×R ridge system built from
// δ_α(r) = ∏_{k≠n} A(k)[ik][r] over α ∈ Ω(n)[in]. Rows are independent and
// updated in parallel, exactly as in P-Tucker.
func Decompose(x *tensor.Coord, cfg Config) (*Model, error) {
	if cfg.Rank < 1 {
		return nil, fmt.Errorf("%w: rank %d", ErrBadConfig, cfg.Rank)
	}
	if cfg.MaxIters < 1 {
		return nil, fmt.Errorf("%w: MaxIters %d", ErrBadConfig, cfg.MaxIters)
	}
	if cfg.Lambda < 0 {
		return nil, fmt.Errorf("%w: lambda %v", ErrBadConfig, cfg.Lambda)
	}
	if x.NNZ() == 0 {
		return nil, fmt.Errorf("%w: empty tensor", ErrBadConfig)
	}
	if cfg.Threads < 1 {
		cfg.Threads = 2
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	nModes := x.Order()
	r := cfg.Rank
	factors := make([]*mat.Dense, nModes)
	for n := 0; n < nModes; n++ {
		a := mat.NewDense(x.Dim(n), r)
		for i := range a.Data() {
			a.Data()[i] = rng.Float64()
		}
		factors[n] = a
	}
	omega := tensor.NewModeIndex(x)
	model := &Model{Factors: factors}

	prev := math.Inf(1)
	for iter := 1; iter <= cfg.MaxIters; iter++ {
		start := time.Now()
		for n := 0; n < nModes; n++ {
			updateMode(x, omega, factors, n, cfg)
		}
		errNow := model.ReconstructionError(x)
		model.Trace = append(model.Trace, IterStats{Iter: iter, Error: errNow, Elapsed: time.Since(start)})
		if cfg.Tol > 0 && prev < math.Inf(1) {
			denom := prev
			if denom == 0 {
				denom = 1
			}
			if math.Abs(prev-errNow)/denom < cfg.Tol {
				model.Converged = true
				break
			}
		}
		prev = errNow
	}
	return model, nil
}

// updateMode refreshes every row of A(mode) in parallel.
func updateMode(x *tensor.Coord, omega *tensor.ModeIndex, factors []*mat.Dense, mode int, cfg Config) {
	a := factors[mode]
	rows := a.Rows()
	r := cfg.Rank
	threads := cfg.Threads
	if threads > rows {
		threads = rows
	}
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		go func(tid int) {
			defer wg.Done()
			delta := make([]float64, r)
			b := mat.NewDense(r, r)
			c := make([]float64, r)
			lo := tid * rows / threads
			hi := (tid + 1) * rows / threads
			for in := lo; in < hi; in++ {
				updateRow(x, omega, factors, mode, in, cfg.Lambda, delta, b, c)
			}
		}(t)
	}
	wg.Wait()
}

// updateRow solves the ridge normal equations for one factor row.
func updateRow(x *tensor.Coord, omega *tensor.ModeIndex, factors []*mat.Dense, mode, in int, lambda float64, delta []float64, b *mat.Dense, c []float64) {
	row := factors[mode].Row(in)
	entries := omega.Slice(mode, in)
	if len(entries) == 0 {
		for j := range row {
			row[j] = 0
		}
		return
	}
	r := len(delta)
	b.Zero()
	for j := range c {
		c[j] = 0
	}
	for _, alpha := range entries {
		idx := x.Index(alpha)
		for j := 0; j < r; j++ {
			delta[j] = 1
		}
		for k, a := range factors {
			if k == mode {
				continue
			}
			arow := a.Row(idx[k])
			for j := 0; j < r; j++ {
				delta[j] *= arow[j]
			}
		}
		xv := x.Value(alpha)
		for j1 := 0; j1 < r; j1++ {
			d1 := delta[j1]
			if d1 == 0 {
				continue
			}
			brow := b.Row(j1)
			for j2 := j1; j2 < r; j2++ {
				brow[j2] += d1 * delta[j2]
			}
			c[j1] += xv * d1
		}
	}
	for j1 := 0; j1 < r; j1++ {
		for j2 := j1 + 1; j2 < r; j2++ {
			b.Set(j2, j1, b.At(j1, j2))
		}
		b.Add(j1, j1, lambda)
	}
	if ch, err := mat.NewCholesky(b); err == nil {
		copy(row, c)
		ch.SolveVecInPlace(row)
		return
	}
	if sol, err := mat.SolveVec(b, c); err == nil {
		copy(row, sol)
	}
}
