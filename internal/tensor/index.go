package tensor

// ModeIndex is the per-mode inverted index over a sparse tensor's entries: for
// mode n and slice index in, it enumerates Ω(n)[in] — the observed entries
// whose n-th coordinate equals in (Table II of the paper). P-Tucker's
// row-wise update visits exactly these sets, and the index is also what makes
// the workload of each factor row measurable for the dynamic scheduler
// (|Ω(n)[in]| varies per row; Section III-D).
//
// The index is a CSR-like layout per mode: entry ids sorted by their mode-n
// coordinate, with prefix offsets per coordinate value.
type ModeIndex struct {
	order   int
	offsets [][]int // offsets[n] has len Dim(n)+1
	entries [][]int // entries[n] is a permutation of entry ids grouped by coordinate
}

// NewModeIndex builds the inverted index for every mode of t in O(N·(I+|Ω|)).
func NewModeIndex(t *Coord) *ModeIndex {
	n := t.Order()
	mi := &ModeIndex{
		order:   n,
		offsets: make([][]int, n),
		entries: make([][]int, n),
	}
	nnz := t.NNZ()
	for mode := 0; mode < n; mode++ {
		dim := t.Dim(mode)
		counts := make([]int, dim+1)
		for e := 0; e < nnz; e++ {
			counts[t.indices[e*n+mode]+1]++
		}
		for i := 0; i < dim; i++ {
			counts[i+1] += counts[i]
		}
		perm := make([]int, nnz)
		cursor := make([]int, dim)
		copy(cursor, counts[:dim])
		for e := 0; e < nnz; e++ {
			i := t.indices[e*n+mode]
			perm[cursor[i]] = e
			cursor[i]++
		}
		mi.offsets[mode] = counts
		mi.entries[mode] = perm
	}
	return mi
}

// Slice returns the entry ids of Ω(n)[in] as a shared sub-slice; callers must
// not modify it.
func (mi *ModeIndex) Slice(mode, in int) []int {
	off := mi.offsets[mode]
	return mi.entries[mode][off[in]:off[in+1]]
}

// Count returns |Ω(n)[in]|, the number of observed entries in slice in of
// mode n.
func (mi *ModeIndex) Count(mode, in int) int {
	off := mi.offsets[mode]
	return off[in+1] - off[in]
}

// NonEmptyRows returns the indices in of mode n with at least one observed
// entry. Rows with no observations have no update equations (their B matrix
// is λI and c is zero, so the regularized update would zero them); P-Tucker
// skips them.
func (mi *ModeIndex) NonEmptyRows(mode int) []int {
	off := mi.offsets[mode]
	var rows []int
	for i := 0; i+1 < len(off); i++ {
		if off[i+1] > off[i] {
			rows = append(rows, i)
		}
	}
	return rows
}

// MaxRowLoad returns the largest |Ω(n)[in]| over all rows of mode n; the
// ratio of MaxRowLoad to the mean load measures the imbalance that dynamic
// scheduling corrects (Section IV-D).
func (mi *ModeIndex) MaxRowLoad(mode int) int {
	off := mi.offsets[mode]
	mx := 0
	for i := 0; i+1 < len(off); i++ {
		if l := off[i+1] - off[i]; l > mx {
			mx = l
		}
	}
	return mx
}
