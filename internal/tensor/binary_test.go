package tensor

import (
	"bufio"
	"bytes"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func coordsEqual(t *testing.T, a, b *Coord) {
	t.Helper()
	if a.Order() != b.Order() {
		t.Fatalf("order %d vs %d", a.Order(), b.Order())
	}
	for k := 0; k < a.Order(); k++ {
		if a.Dim(k) != b.Dim(k) {
			t.Fatalf("mode %d dim %d vs %d", k, a.Dim(k), b.Dim(k))
		}
	}
	if a.NNZ() != b.NNZ() {
		t.Fatalf("nnz %d vs %d", a.NNZ(), b.NNZ())
	}
	for e := 0; e < a.NNZ(); e++ {
		ia, ib := a.Index(e), b.Index(e)
		for k := range ia {
			if ia[k] != ib[k] {
				t.Fatalf("entry %d mode %d index %d vs %d", e, k, ia[k], ib[k])
			}
		}
		if math.Float64bits(a.Value(e)) != math.Float64bits(b.Value(e)) {
			t.Fatalf("entry %d value bits differ: %v vs %v", e, a.Value(e), b.Value(e))
		}
	}
}

// TestBinaryRoundTrip checks bit-identical write/read across orders,
// including values that stress the float encoding.
func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := [][]int{{64}, {12, 9}, {20, 16, 12}, {6, 5, 4, 3}}
	for _, dims := range shapes {
		x := randomCoord(rng, dims, 50)
		// Stress the value encoding with non-round numbers and extremes.
		x.SetValue(0, math.Nextafter(1, 2))
		x.SetValue(1, -0.0)
		x.SetValue(2, 1e-308)

		var buf bytes.Buffer
		if err := WriteBinary(&buf, x); err != nil {
			t.Fatalf("%v: write: %v", dims, err)
		}
		got, err := ReadBinary(bytes.NewReader(buf.Bytes()), 0, nil)
		if err != nil {
			t.Fatalf("%v: read: %v", dims, err)
		}
		coordsEqual(t, x, got)

		// Explicit order and dims must also be accepted.
		got, err = ReadBinary(bytes.NewReader(buf.Bytes()), len(dims), x.Dims())
		if err != nil {
			t.Fatalf("%v: read with order/dims: %v", dims, err)
		}
		coordsEqual(t, x, got)
	}
}

// TestBinaryTextRoundTrip cross-checks the two encodings: a tensor written
// as text and as binary decodes to the same entries (values in the text path
// survive %g formatting of float64 exactly via strconv).
func TestBinaryTextRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := randomCoord(rng, []int{30, 20, 10}, 200)

	var tb, bb bytes.Buffer
	if err := Write(&tb, x); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bb, x); err != nil {
		t.Fatal(err)
	}
	fromText, err := Read(bytes.NewReader(tb.Bytes()), 3, x.Dims())
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := ReadBinary(bytes.NewReader(bb.Bytes()), 3, x.Dims())
	if err != nil {
		t.Fatal(err)
	}
	coordsEqual(t, fromText, fromBin)
}

func TestDetectFormat(t *testing.T) {
	x := NewCoord([]int{3, 3})
	x.MustAppend([]int{1, 2}, 0.5)

	var bin bytes.Buffer
	if err := WriteBinary(&bin, x); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data string
		want Format
	}{
		{"binary", bin.String(), FormatBinary},
		{"text", "2\t3\t0.5\n", FormatText},
		{"comment first", "# header\n1 1 2\n", FormatText},
		{"empty", "", FormatText},
		{"short", "1\n", FormatText},
	}
	for _, tc := range cases {
		got, err := DetectFormat(bufio.NewReader(strings.NewReader(tc.data)))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.want {
			t.Errorf("%s: detected %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestReadFileAutoDetect writes the same tensor in both encodings and loads
// each through the one ReadFile entry point.
func TestReadFileAutoDetect(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := randomCoord(rng, []int{15, 10, 5}, 80)
	dir := t.TempDir()

	textPath := filepath.Join(dir, "x.tns")
	binPath := filepath.Join(dir, "x.ptkt")
	if err := WriteFile(textPath, x); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinaryFile(binPath, x); err != nil {
		t.Fatal(err)
	}

	fromText, err := ReadFile(textPath, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	coordsEqual(t, x, fromText)

	fromBin, err := ReadFile(binPath, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	coordsEqual(t, x, fromBin)

	// Binary files know their own order; 0 adopts it, a wrong one errors.
	if _, err := ReadFile(binPath, 0, nil); err != nil {
		t.Fatalf("order 0 on binary: %v", err)
	}
	if _, err := ReadFile(binPath, 4, nil); err == nil {
		t.Fatal("wrong order accepted on binary file")
	}

	if f, err := DetectFormatFile(binPath); err != nil || f != FormatBinary {
		t.Fatalf("DetectFormatFile(bin) = %v, %v", f, err)
	}
	if f, err := DetectFormatFile(textPath); err != nil || f != FormatText {
		t.Fatalf("DetectFormatFile(text) = %v, %v", f, err)
	}
}

func TestBinaryCorruptionDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	x := randomCoord(rng, []int{10, 10}, 40)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, x); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Flip one byte in the value block: checksum must catch it.
	bad := append([]byte(nil), good...)
	bad[len(bad)-12] ^= 0x40
	if _, err := ReadBinary(bytes.NewReader(bad), 0, nil); !errors.Is(err, ErrTensorChecksum) {
		t.Fatalf("corrupted stream: got %v, want ErrTensorChecksum", err)
	}

	// Truncation anywhere must fail, not yield a partial tensor.
	for _, cut := range []int{3, 20, len(good) / 2, len(good) - 2} {
		if _, err := ReadBinary(bytes.NewReader(good[:cut]), 0, nil); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}

	// A dims mismatch is the caller's error, reported before any decode.
	if _, err := ReadBinary(bytes.NewReader(good), 0, []int{10, 11}); !errors.Is(err, ErrDimension) {
		t.Fatalf("dims mismatch: got %v, want ErrDimension", err)
	}
}

// TestBinaryValueAlignment pins the format guarantee that the value block
// starts on an 8-byte boundary (what makes the file mmap-friendly).
func TestBinaryValueAlignment(t *testing.T) {
	for nnz := 1; nnz <= 8; nnz++ {
		x := NewCoord([]int{50, 50, 50})
		for e := 0; e < nnz; e++ {
			x.MustAppend([]int{e, e, e}, float64(e))
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, x); err != nil {
			t.Fatal(err)
		}
		n := x.Order()
		valOff := 24 + 8*n + 4*n*nnz
		valOff += (8 - valOff%8) % 8
		if valOff%8 != 0 {
			t.Fatalf("nnz=%d: value offset %d not 8-aligned", nnz, valOff)
		}
		want := valOff + 8*nnz + 4 // + values + crc trailer
		if buf.Len() != want {
			t.Fatalf("nnz=%d: file length %d, want %d", nnz, buf.Len(), want)
		}
	}
}

// TestWriteBinaryFileOverwrite ensures plain (non-atomic) file writes behave.
func TestWriteBinaryFileOverwrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.ptkt")
	a := NewCoord([]int{4, 4})
	a.MustAppend([]int{0, 1}, 1)
	b := NewCoord([]int{5, 5})
	b.MustAppend([]int{4, 4}, 2)
	b.MustAppend([]int{1, 3}, 3)

	for _, x := range []*Coord{a, b} {
		if err := WriteBinaryFile(path, x); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFile(path, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		coordsEqual(t, x, got)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
