package tensor

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzReadBinary decodes arbitrary bytes as a binary tensor snapshot. An
// input the decoder accepts must re-encode and re-decode to a stable byte
// stream (the canonical serialization is a fixed point); inputs it rejects
// must fail with an error, never a panic.
func FuzzReadBinary(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(BinaryMagic))

	f.Fuzz(func(t *testing.T, data []byte) {
		t1, err := ReadBinary(bytes.NewReader(data), 0, nil)
		if err != nil {
			return // rejected: fine
		}
		var b1 bytes.Buffer
		if err := WriteBinary(&b1, t1); err != nil {
			t.Fatalf("re-encoding a decoded snapshot failed: %v", err)
		}
		t2, err := ReadBinary(bytes.NewReader(b1.Bytes()), 0, nil)
		if err != nil {
			t.Fatalf("re-decoding the canonical encoding failed: %v", err)
		}
		var b2 bytes.Buffer
		if err := WriteBinary(&b2, t2); err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("round-trip is not a fixed point: %d bytes vs %d bytes", b1.Len(), b2.Len())
		}
	})
}

// FuzzDetectFormat sniffs arbitrary bytes. Detection must never fail on an
// in-memory stream and must classify every input as text or binary — the
// loader dispatches on the answer, so "unknown" would wedge a startup.
func FuzzDetectFormat(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(BinaryMagic))
	f.Add([]byte("1 2 3 4.5\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		format, err := DetectFormat(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			t.Fatalf("DetectFormat failed on an in-memory stream: %v", err)
		}
		if format != FormatText && format != FormatBinary {
			t.Fatalf("DetectFormat returned %v; every stream must classify as text or binary", format)
		}
	})
}
