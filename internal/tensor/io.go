package tensor

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The on-disk format matches the published P-Tucker datasets: one observed
// entry per line, N whitespace-separated 1-based indices followed by the
// value. Lines starting with '#' and blank lines are ignored.

// Write streams t to w in the text format.
func Write(w io.Writer, t *Coord) error {
	bw := bufio.NewWriter(w)
	n := t.Order()
	for e := 0; e < t.NNZ(); e++ {
		idx := t.Index(e)
		for k := 0; k < n; k++ {
			if k > 0 {
				if err := bw.WriteByte('\t'); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(idx[k] + 1)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(bw, "\t%g\n", t.Value(e)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes t to the named file.
func WriteFile(path string, t *Coord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses a sparse tensor of the given order from r. Dimensions are
// inferred as the per-mode maxima unless dims is non-nil, in which case
// out-of-range entries are an error.
func Read(r io.Reader, order int, dims []int) (*Coord, error) {
	if order <= 0 {
		return nil, fmt.Errorf("tensor: order must be positive, got %d", order)
	}
	var (
		indices []int
		values  []float64
		maxIdx  = make([]int, order)
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != order+1 {
			return nil, fmt.Errorf("tensor: line %d: want %d fields, got %d", lineNo, order+1, len(fields))
		}
		for k := 0; k < order; k++ {
			v, err := strconv.Atoi(fields[k])
			if err != nil {
				return nil, fmt.Errorf("tensor: line %d: bad index %q: %v", lineNo, fields[k], err)
			}
			if v < 1 {
				return nil, fmt.Errorf("tensor: line %d: index %d is not 1-based positive", lineNo, v)
			}
			zero := v - 1
			if zero > maxIdx[k] {
				maxIdx[k] = zero
			}
			indices = append(indices, zero)
		}
		val, err := strconv.ParseFloat(fields[order], 64)
		if err != nil {
			return nil, fmt.Errorf("tensor: line %d: bad value %q: %v", lineNo, fields[order], err)
		}
		values = append(values, val)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	if dims == nil {
		dims = make([]int, order)
		for k := range dims {
			dims[k] = maxIdx[k] + 1
		}
	} else {
		if len(dims) != order {
			return nil, fmt.Errorf("tensor: dims length %d does not match order %d", len(dims), order)
		}
		for k := range dims {
			if maxIdx[k] >= dims[k] && len(values) > 0 {
				return nil, fmt.Errorf("%w: mode %d has index %d but dimension %d", ErrDimension, k, maxIdx[k], dims[k])
			}
		}
	}
	t := NewCoord(dims)
	t.indices = indices
	t.values = values
	return t, nil
}

// ReadFile reads a sparse tensor from the named file. The encoding is
// auto-detected: files opening with the binary snapshot magic (see
// WriteBinary / store.WriteTensor) take the fixed-width binary path, anything
// else is parsed as the text format — existing call sites transparently
// accept either. For binary files order may be 0 (the snapshot declares its
// own order).
func ReadFile(path string, order int, dims []int) (*Coord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	format, err := DetectFormat(br)
	if err != nil {
		return nil, err
	}
	if format == FormatBinary {
		return ReadBinary(br, order, dims)
	}
	return Read(br, order, dims)
}
