package tensor

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"unsafe"
)

// CoordFromMapping decodes a binary COO snapshot held entirely in data
// (typically an mmap of a .ptkt file), serving the 8-byte-aligned value
// block in place: the returned tensor's Values() alias data. The u32 index
// block is widened onto the heap — coordinates must become []int either
// way — so open cost is O(nnz·N) for indices plus a CRC pass, but carries
// no copy of the value payload. data must be 8-byte aligned (mmap always
// is) and must outlive every use of the tensor, which is read-only.
func CoordFromMapping(data []byte) (*Coord, error) {
	if len(data) < 24+4 {
		return nil, fmt.Errorf("%w: %d bytes is too short for a snapshot", ErrBadTensorFormat, len(data))
	}
	if uintptr(unsafe.Pointer(&data[0]))&7 != 0 {
		return nil, fmt.Errorf("%w: base address not 8-byte aligned", ErrBadTensorFormat)
	}
	if string(data[0:4]) != BinaryMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTensorFormat, data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != binaryVersion {
		return nil, fmt.Errorf("%w: got v%d, want v%d", ErrTensorVersion, v, binaryVersion)
	}
	n := int(binary.LittleEndian.Uint32(data[8:12]))
	if n <= 0 || n > 255 {
		return nil, fmt.Errorf("%w: order %d out of range", ErrBadTensorFormat, n)
	}
	nnz64 := binary.LittleEndian.Uint64(data[16:24])
	if nnz64 > maxBinarySlice/uint64(n) {
		return nil, fmt.Errorf("%w: nnz %d exceeds limit", ErrBadTensorFormat, nnz64)
	}
	nnz := int(nnz64)

	// Fixed-width layout: every offset is computable from the header alone;
	// one bounds check covers the whole stream.
	dimOff := 24
	idxOff := dimOff + 8*n
	padOff := idxOff + 4*nnz*n
	valOff := padOff + (8-padOff%8)%8
	crcOff := valOff + 8*nnz
	if crcOff+4 != len(data) {
		return nil, fmt.Errorf("%w: %d-byte stream does not match header (want %d)",
			ErrBadTensorFormat, len(data), crcOff+4)
	}
	sum := crc32.ChecksumIEEE(data[:crcOff])
	if want := binary.LittleEndian.Uint32(data[crcOff:]); want != sum {
		return nil, fmt.Errorf("%w: got %08x, want %08x", ErrTensorChecksum, sum, want)
	}
	for _, z := range data[padOff:valOff] {
		if z != 0 {
			return nil, fmt.Errorf("%w: nonzero padding before value block", ErrBadTensorFormat)
		}
	}

	dims := make([]int, n)
	for k := range dims {
		d := binary.LittleEndian.Uint64(data[dimOff+8*k:])
		if d == 0 || d > math.MaxUint32 {
			return nil, fmt.Errorf("%w: mode %d dimension %d out of range", ErrBadTensorFormat, k, d)
		}
		dims[k] = int(d)
	}
	indices := make([]int, nnz*n)
	for i := range indices {
		indices[i] = int(binary.LittleEndian.Uint32(data[idxOff+4*i:]))
	}
	var values []float64
	if nnz == 0 {
		values = []float64{}
	} else {
		values = unsafe.Slice((*float64)(unsafe.Pointer(&data[valOff])), nnz)
	}
	return NewCoordData(dims, indices, values)
}
