// Package tensor provides the sparse and dense tensor substrate for the
// P-Tucker reproduction: coordinate-format sparse tensors with per-mode
// inverted indexes (the Ω(n)[in] sets of the paper), dense tensors with
// strided storage, matricization (Definition 2), n-mode products
// (Definition 3), Frobenius norms (Definition 1), text IO in the format used
// by the paper's published datasets, and train/test splitting.
//
// Indices are 0-based internally; the on-disk format is 1-based to match the
// published P-Tucker datasets.
package tensor

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrDimension indicates indices that fall outside a tensor's shape.
var ErrDimension = errors.New("tensor: index out of range for tensor dimensions")

// Coord is a sparse tensor in coordinate (COO) format. Entry e occupies
// Indices[e*N : (e+1)*N] and Values[e], where N is the tensor order. The
// flat index layout keeps all coordinates of an entry on one cache line,
// which the row-update inner loops of P-Tucker depend on.
type Coord struct {
	dims    []int
	indices []int // flat, len = nnz * order
	values  []float64
}

// NewCoord returns an empty sparse tensor with the given mode dimensions.
func NewCoord(dims []int) *Coord {
	if len(dims) == 0 {
		panic("tensor: empty dimension list")
	}
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %v", dims))
		}
	}
	d := make([]int, len(dims))
	copy(d, dims)
	return &Coord{dims: d}
}

// NewCoordData builds a sparse tensor directly over caller-provided flat
// storage, without copying: indices is the entry-major coordinate list
// (len = nnz·N) and values the matching value list. The slices are adopted
// as-is — callers serving a read-only mapping in place (store.MmapTensor)
// rely on that — so they must not be mutated through the tensor afterwards.
// Index ranges are validated against dims up front, the same guarantee
// Append gives entry by entry.
func NewCoordData(dims, indices []int, values []float64) (*Coord, error) {
	t := NewCoord(dims)
	n := len(dims)
	if len(indices) != len(values)*n {
		return nil, fmt.Errorf("tensor: %d indices do not cover %d entries of order %d",
			len(indices), len(values), n)
	}
	for e := range values {
		for k := 0; k < n; k++ {
			if i := indices[e*n+k]; i < 0 || i >= dims[k] {
				return nil, fmt.Errorf("%w: entry %d mode %d index %d exceeds dimension %d",
					ErrDimension, e, k, i, dims[k])
			}
		}
	}
	t.indices = indices
	t.values = values
	return t, nil
}

// Order returns the number of modes N.
func (t *Coord) Order() int { return len(t.dims) }

// Dims returns the mode dimensions. The slice must not be modified.
func (t *Coord) Dims() []int { return t.dims }

// Dim returns the length of mode n.
func (t *Coord) Dim(n int) int { return t.dims[n] }

// NNZ returns the number of stored (observed) entries, |Ω|.
func (t *Coord) NNZ() int { return len(t.values) }

// Values returns the value slice. The slice must not be resized by callers.
func (t *Coord) Values() []float64 { return t.values }

// Index returns the coordinates of entry e as a view into the flat index
// storage; the returned slice must not be modified.
func (t *Coord) Index(e int) []int {
	n := len(t.dims)
	return t.indices[e*n : (e+1)*n]
}

// Value returns the value of entry e.
func (t *Coord) Value(e int) float64 { return t.values[e] }

// SetValue overwrites the value of entry e.
func (t *Coord) SetValue(e int, v float64) { t.values[e] = v }

// Append adds an observed entry. It returns ErrDimension if idx is out of
// range. idx is copied.
func (t *Coord) Append(idx []int, v float64) error {
	if len(idx) != len(t.dims) {
		return fmt.Errorf("tensor: entry order %d does not match tensor order %d", len(idx), len(t.dims))
	}
	for n, i := range idx {
		if i < 0 || i >= t.dims[n] {
			return fmt.Errorf("%w: index %d of mode %d exceeds dimension %d", ErrDimension, i, n, t.dims[n])
		}
	}
	t.indices = append(t.indices, idx...)
	t.values = append(t.values, v)
	return nil
}

// MustAppend is Append that panics on error; for use by generators whose
// indices are correct by construction.
func (t *Coord) MustAppend(idx []int, v float64) {
	if err := t.Append(idx, v); err != nil {
		panic(err)
	}
}

// GrowMode extends mode n to newDim slices, keeping every stored entry. It
// panics if newDim is smaller than the current dimensionality. Growing a mode
// is how online fold-in admits a brand-new row (a cold-start user, a new
// item): the tensor's shape stretches, then observations for the new slice
// are Appended like any others.
func (t *Coord) GrowMode(n, newDim int) {
	if n < 0 || n >= len(t.dims) {
		panic(fmt.Sprintf("tensor: mode %d out of range for order %d", n, len(t.dims)))
	}
	if newDim < t.dims[n] {
		panic(fmt.Sprintf("tensor: cannot shrink mode %d from %d to %d", n, t.dims[n], newDim))
	}
	t.dims[n] = newDim
}

// Clone returns a deep copy of t.
func (t *Coord) Clone() *Coord {
	c := NewCoord(t.dims)
	c.indices = append([]int(nil), t.indices...)
	c.values = append([]float64(nil), t.values...)
	return c
}

// Norm returns the Frobenius norm over the observed entries (Definition 1
// restricted to Ω, which is how sparse methods evaluate it).
func (t *Coord) Norm() float64 {
	var s float64
	for _, v := range t.values {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxValue returns the largest observed value, or 0 if the tensor is empty.
func (t *Coord) MaxValue() float64 {
	var mx float64
	for i, v := range t.values {
		if i == 0 || v > mx {
			mx = v
		}
	}
	return mx
}

// MinValue returns the smallest observed value, or 0 if the tensor is empty.
func (t *Coord) MinValue() float64 {
	var mn float64
	for i, v := range t.values {
		if i == 0 || v < mn {
			mn = v
		}
	}
	return mn
}

// Normalize linearly rescales all observed values into [0,1], as the paper
// does for its real-world tensors ("we normalize all values of real-world
// tensors to numbers between 0 to 1"). Constant tensors map to 0.
func (t *Coord) Normalize() {
	if len(t.values) == 0 {
		return
	}
	mn, mx := t.MinValue(), t.MaxValue()
	span := mx - mn
	if span == 0 {
		for i := range t.values {
			t.values[i] = 0
		}
		return
	}
	inv := 1 / span
	for i, v := range t.values {
		t.values[i] = (v - mn) * inv
	}
}

// Density returns |Ω| / ∏ In, the fraction of observable cells.
func (t *Coord) Density() float64 {
	cells := 1.0
	for _, d := range t.dims {
		cells *= float64(d)
	}
	return float64(t.NNZ()) / cells
}

// Split partitions the observed entries into a training tensor holding
// trainFrac of them and a test tensor holding the rest, shuffled with rng.
// The paper uses trainFrac = 0.9 ("90% of observed entries as training data
// and the rest of them as test data").
func (t *Coord) Split(trainFrac float64, rng *rand.Rand) (train, test *Coord) {
	if trainFrac < 0 || trainFrac > 1 {
		panic(fmt.Sprintf("tensor: train fraction %v out of [0,1]", trainFrac))
	}
	nnz := t.NNZ()
	perm := rng.Perm(nnz)
	nTrain := int(math.Round(trainFrac * float64(nnz)))
	train = NewCoord(t.dims)
	test = NewCoord(t.dims)
	for i, e := range perm {
		dst := train
		if i >= nTrain {
			dst = test
		}
		dst.indices = append(dst.indices, t.Index(e)...)
		dst.values = append(dst.values, t.values[e])
	}
	return train, test
}

// String summarizes the tensor shape and density.
func (t *Coord) String() string {
	return fmt.Sprintf("Coord(order=%d dims=%v nnz=%d density=%.3g)", t.Order(), t.dims, t.NNZ(), t.Density())
}
