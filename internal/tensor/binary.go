package tensor

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// Binary COO snapshot format. The text format of the published datasets is
// convenient for interchange but slow to load: Netflix-scale tensors are
// parsed line-by-line, field-by-field, on every start. The binary format
// stores the same coordinate data as fixed-width little-endian records —
// one u32 per coordinate, one IEEE-754 f64 bit pattern per value — so a
// loader moves whole blocks instead of parsing, and a mapped file could be
// consumed in place (the value block is 8-byte aligned).
//
// Layout (version 1, little-endian throughout):
//
//	offset 0   magic "PTKT" (4 bytes)
//	offset 4   version  u32
//	offset 8   order    u32   (number of modes N)
//	offset 12  flags    u32   (reserved, 0)
//	offset 16  nnz      u64
//	offset 24  dims     N × u64
//	...        indices  nnz × N × u32   (entry-major: all coordinates of
//	                                     entry e are contiguous)
//	...        padding  to the next multiple of 8 bytes
//	...        values   nnz × f64 (IEEE-754 bits)
//	...        crc32    u32   (IEEE CRC-32 of every preceding byte)
//
// Values round-trip bit-identically: a tensor written and re-read compares
// equal float64-for-float64. The trailing CRC-32 catches truncation and
// corruption at load time.

// BinaryMagic is the 4-byte signature that opens a binary tensor snapshot.
const BinaryMagic = "PTKT"

const binaryVersion = 1

// maxBinarySlice bounds every length read from a binary tensor stream so a
// corrupted or hostile file cannot trigger a huge allocation before the
// checksum is verified.
const maxBinarySlice = 1 << 31

// Errors returned by the binary tensor reader.
var (
	// ErrBadTensorFormat reports a stream that is not a binary tensor
	// snapshot or is structurally inconsistent.
	ErrBadTensorFormat = errors.New("tensor: not a valid binary tensor snapshot")
	// ErrTensorVersion reports a snapshot written by an incompatible format
	// version.
	ErrTensorVersion = errors.New("tensor: unsupported binary tensor version")
	// ErrTensorChecksum reports a snapshot whose CRC-32 does not match its
	// contents (truncation or corruption).
	ErrTensorChecksum = errors.New("tensor: binary tensor corrupted (checksum mismatch)")
)

// Format identifies the on-disk encoding of a tensor file.
type Format int

const (
	// FormatUnknown is returned for streams that match no known encoding
	// signature; in practice that means the text format, whose lines carry
	// no magic (any printable content is assumed to be text).
	FormatUnknown Format = iota
	// FormatText is the published-dataset text format: one entry per line,
	// 1-based indices then the value.
	FormatText
	// FormatBinary is the fixed-width binary snapshot format written by
	// WriteBinary (and store.WriteTensor).
	FormatBinary
)

func (f Format) String() string {
	switch f {
	case FormatText:
		return "text"
	case FormatBinary:
		return "binary"
	default:
		return "unknown"
	}
}

// DetectFormat sniffs the encoding of the tensor stream on r without
// consuming it (the reader is peeked, not read). Binary snapshots are
// recognized by their magic; anything else is reported as text, which is the
// magic-free line format.
func DetectFormat(r *bufio.Reader) (Format, error) {
	head, err := r.Peek(len(BinaryMagic))
	if err != nil {
		if errors.Is(err, io.EOF) {
			// Shorter than the magic: an empty or tiny stream can only be
			// (degenerate) text.
			return FormatText, nil
		}
		return FormatUnknown, err
	}
	if string(head) == BinaryMagic {
		return FormatBinary, nil
	}
	return FormatText, nil
}

// DetectFormatFile reports the encoding of the named tensor file.
func DetectFormatFile(path string) (Format, error) {
	f, err := os.Open(path)
	if err != nil {
		return FormatUnknown, err
	}
	defer f.Close()
	return DetectFormat(bufio.NewReader(f))
}

// WriteBinary streams t to w in the binary snapshot format. Mode dimensions
// and coordinates must fit in 32 bits.
func WriteBinary(w io.Writer, t *Coord) error {
	n := t.Order()
	nnz := t.NNZ()
	for k, d := range t.dims {
		if d > math.MaxUint32 {
			return fmt.Errorf("tensor: mode %d dimension %d exceeds the binary format's 32-bit coordinates", k, d)
		}
	}

	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), 1<<16)

	var head [24]byte
	copy(head[0:4], BinaryMagic)
	binary.LittleEndian.PutUint32(head[4:8], binaryVersion)
	binary.LittleEndian.PutUint32(head[8:12], uint32(n))
	binary.LittleEndian.PutUint32(head[12:16], 0)
	binary.LittleEndian.PutUint64(head[16:24], uint64(nnz))
	if _, err := bw.Write(head[:]); err != nil {
		return err
	}
	var u64 [8]byte
	for _, d := range t.dims {
		binary.LittleEndian.PutUint64(u64[:], uint64(d))
		if _, err := bw.Write(u64[:]); err != nil {
			return err
		}
	}

	var u32 [4]byte
	for _, i := range t.indices {
		binary.LittleEndian.PutUint32(u32[:], uint32(i))
		if _, err := bw.Write(u32[:]); err != nil {
			return err
		}
	}
	indexBytes := 4 * len(t.indices)
	if pad := (8 - (24+8*n+indexBytes)%8) % 8; pad > 0 {
		if _, err := bw.Write(make([]byte, pad)); err != nil {
			return err
		}
	}
	for _, v := range t.values {
		binary.LittleEndian.PutUint64(u64[:], math.Float64bits(v))
		if _, err := bw.Write(u64[:]); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// Trailing checksum over everything above, written outside the CRC.
	binary.LittleEndian.PutUint32(u32[:], crc.Sum32())
	_, err := w.Write(u32[:])
	return err
}

// ReadBinary decodes a binary tensor snapshot from r. order and dims mirror
// Read's contract: pass order 0 to adopt the stream's order (non-zero values
// must match it), and nil dims to adopt the stream's dimensions (non-nil
// values must match them exactly — a snapshot declares its own shape, it is
// never re-inferred from the data).
func ReadBinary(r io.Reader, order int, dims []int) (*Coord, error) {
	crc := crc32.NewIEEE()
	cr := io.TeeReader(r, crc)

	var head [24]byte
	if _, err := io.ReadFull(cr, head[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrBadTensorFormat, err)
	}
	if string(head[0:4]) != BinaryMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTensorFormat, head[0:4])
	}
	if v := binary.LittleEndian.Uint32(head[4:8]); v != binaryVersion {
		return nil, fmt.Errorf("%w: got v%d, want v%d", ErrTensorVersion, v, binaryVersion)
	}
	n := int(binary.LittleEndian.Uint32(head[8:12]))
	if n <= 0 || n > 255 {
		return nil, fmt.Errorf("%w: order %d out of range", ErrBadTensorFormat, n)
	}
	if order != 0 && order != n {
		return nil, fmt.Errorf("%w: snapshot has order %d, caller wants %d", ErrBadTensorFormat, n, order)
	}
	nnz := binary.LittleEndian.Uint64(head[16:24])
	if nnz > maxBinarySlice/uint64(n) {
		return nil, fmt.Errorf("%w: nnz %d exceeds limit", ErrBadTensorFormat, nnz)
	}

	dimBuf := make([]byte, 8*n)
	if _, err := io.ReadFull(cr, dimBuf); err != nil {
		return nil, fmt.Errorf("%w: truncated dims: %v", ErrBadTensorFormat, err)
	}
	fileDims := make([]int, n)
	for k := range fileDims {
		d := binary.LittleEndian.Uint64(dimBuf[8*k:])
		if d == 0 || d > math.MaxUint32 {
			return nil, fmt.Errorf("%w: mode %d dimension %d out of range", ErrBadTensorFormat, k, d)
		}
		fileDims[k] = int(d)
	}
	if dims != nil {
		if len(dims) != n {
			return nil, fmt.Errorf("tensor: dims length %d does not match order %d", len(dims), n)
		}
		for k := range dims {
			if dims[k] != fileDims[k] {
				return nil, fmt.Errorf("%w: mode %d has dimension %d in the snapshot, caller wants %d",
					ErrDimension, k, fileDims[k], dims[k])
			}
		}
	}

	// The index and value blocks are decoded in bounded chunks, growing the
	// result slices only as data actually arrives: a corrupt or hostile nnz
	// in the header cannot force a giant up-front allocation — a truncated
	// stream fails with a small footprint before the checksum is reached.
	const chunk = 1 << 16
	buf := make([]byte, chunk)

	idxCount := int(nnz) * n
	indices := make([]int, 0, min(idxCount, chunk))
	for got := 0; got < idxCount; {
		c := min(idxCount-got, chunk/4)
		if _, err := io.ReadFull(cr, buf[:4*c]); err != nil {
			return nil, fmt.Errorf("%w: truncated index block: %v", ErrBadTensorFormat, err)
		}
		for i := 0; i < c; i++ {
			indices = append(indices, int(binary.LittleEndian.Uint32(buf[4*i:])))
		}
		got += c
	}
	if pad := (8 - (24+8*n+4*idxCount)%8) % 8; pad > 0 {
		if _, err := io.CopyN(io.Discard, cr, int64(pad)); err != nil {
			return nil, fmt.Errorf("%w: truncated padding: %v", ErrBadTensorFormat, err)
		}
	}
	values := make([]float64, 0, min(int(nnz), chunk))
	for got := 0; got < int(nnz); {
		c := min(int(nnz)-got, chunk/8)
		if _, err := io.ReadFull(cr, buf[:8*c]); err != nil {
			return nil, fmt.Errorf("%w: truncated value block: %v", ErrBadTensorFormat, err)
		}
		for i := 0; i < c; i++ {
			values = append(values, math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:])))
		}
		got += c
	}

	sum := crc.Sum32() // everything decoded so far; the trailer is outside the CRC
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, fmt.Errorf("%w: missing checksum: %v", ErrBadTensorFormat, err)
	}
	if want := binary.LittleEndian.Uint32(tail[:]); want != sum {
		return nil, fmt.Errorf("%w: got %08x, want %08x", ErrTensorChecksum, sum, want)
	}

	for e := 0; e < int(nnz); e++ {
		for k := 0; k < n; k++ {
			if i := indices[e*n+k]; i >= fileDims[k] {
				return nil, fmt.Errorf("%w: entry %d mode %d index %d exceeds dimension %d",
					ErrDimension, e, k, i, fileDims[k])
			}
		}
	}

	t := NewCoord(fileDims)
	t.indices = indices
	t.values = values
	return t, nil
}

// WriteBinaryFile writes t to the named file in the binary snapshot format.
// For a crash-safe write (temp file, fsync, rename) use store.WriteTensor.
func WriteBinaryFile(path string, t *Coord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
