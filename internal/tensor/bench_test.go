package tensor

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func benchCoord(b *testing.B, nnz int) *Coord {
	b.Helper()
	rng := rand.New(rand.NewSource(55))
	return randomCoord(rng, []int{2000, 2000, 2000}, nnz)
}

// BenchmarkModeIndexBuild measures the Ω(n)[in] inverted-index construction,
// the one-time setup cost of every P-Tucker run.
func BenchmarkModeIndexBuild(b *testing.B) {
	x := benchCoord(b, 50000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewModeIndex(x)
	}
}

// BenchmarkWrite and BenchmarkRead measure the text IO path used by the
// published dataset format.
func BenchmarkWrite(b *testing.B) {
	x := benchCoord(b, 20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRead(b *testing.B) {
	x := benchCoord(b, 20000)
	var buf bytes.Buffer
	if err := Write(&buf, x); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(data), 3, x.Dims()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModeProduct measures the dense n-mode product kernel used by the
// core rotation (Eq. 8) and the wOpt baseline.
func BenchmarkModeProduct(b *testing.B) {
	rng := rand.New(rand.NewSource(56))
	d := NewDenseTensor([]int{40, 40, 40})
	for i := range d.Data() {
		d.Data()[i] = rng.Float64()
	}
	u := mat.NewDense(10, 40)
	for i := range u.Data() {
		u.Data()[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.ModeProduct(1, u)
	}
}

// BenchmarkSplit measures the train/test partitioning pass.
func BenchmarkSplit(b *testing.B) {
	x := benchCoord(b, 50000)
	rng := rand.New(rand.NewSource(57))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = x.Split(0.9, rng)
	}
}
