package tensor

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func mustCoord(t *testing.T, dims []int, entries [][]int, vals []float64) *Coord {
	t.Helper()
	c := NewCoord(dims)
	for i, idx := range entries {
		if err := c.Append(idx, vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func randomCoord(rng *rand.Rand, dims []int, nnz int) *Coord {
	c := NewCoord(dims)
	idx := make([]int, len(dims))
	seen := make(map[string]bool)
	for c.NNZ() < nnz {
		key := ""
		for n, d := range dims {
			idx[n] = rng.Intn(d)
			key += string(rune(idx[n])) + ","
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		c.MustAppend(idx, rng.Float64())
	}
	return c
}

func TestCoordBasics(t *testing.T) {
	c := mustCoord(t, []int{3, 4, 5},
		[][]int{{0, 0, 0}, {2, 3, 4}, {1, 2, 3}},
		[]float64{1, 2, 3})
	if c.Order() != 3 {
		t.Fatalf("Order = %d want 3", c.Order())
	}
	if c.NNZ() != 3 {
		t.Fatalf("NNZ = %d want 3", c.NNZ())
	}
	if got := c.Index(1); got[0] != 2 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("Index(1) = %v", got)
	}
	if c.Value(2) != 3 {
		t.Fatalf("Value(2) = %v want 3", c.Value(2))
	}
	c.SetValue(2, 7)
	if c.Value(2) != 7 {
		t.Fatalf("SetValue failed")
	}
	if c.Dim(1) != 4 {
		t.Fatalf("Dim(1) = %d want 4", c.Dim(1))
	}
}

func TestCoordAppendValidation(t *testing.T) {
	c := NewCoord([]int{2, 2})
	if err := c.Append([]int{0, 2}, 1); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if err := c.Append([]int{0}, 1); err == nil {
		t.Fatal("expected order-mismatch error")
	}
	if err := c.Append([]int{-1, 0}, 1); err == nil {
		t.Fatal("expected negative-index error")
	}
}

func TestNewCoordPanics(t *testing.T) {
	for _, dims := range [][]int{{}, {0}, {3, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for dims %v", dims)
				}
			}()
			NewCoord(dims)
		}()
	}
}

func TestCoordNorm(t *testing.T) {
	c := mustCoord(t, []int{2, 2}, [][]int{{0, 0}, {1, 1}}, []float64{3, 4})
	if got := c.Norm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm = %v want 5", got)
	}
}

func TestCoordNormalize(t *testing.T) {
	c := mustCoord(t, []int{3, 1}, [][]int{{0, 0}, {1, 0}, {2, 0}}, []float64{2, 6, 4})
	c.Normalize()
	want := []float64{0, 1, 0.5}
	for i, w := range want {
		if math.Abs(c.Value(i)-w) > 1e-12 {
			t.Fatalf("Normalize[%d] = %v want %v", i, c.Value(i), w)
		}
	}
	// Constant tensor maps to zero.
	k := mustCoord(t, []int{2, 1}, [][]int{{0, 0}, {1, 0}}, []float64{5, 5})
	k.Normalize()
	if k.Value(0) != 0 || k.Value(1) != 0 {
		t.Fatal("constant tensor should normalize to zeros")
	}
	// Empty tensor is a no-op.
	e := NewCoord([]int{2, 2})
	e.Normalize()
}

func TestCoordMinMaxDensity(t *testing.T) {
	c := mustCoord(t, []int{2, 5}, [][]int{{0, 0}, {1, 4}}, []float64{-3, 9})
	if c.MinValue() != -3 || c.MaxValue() != 9 {
		t.Fatalf("min/max = %v/%v", c.MinValue(), c.MaxValue())
	}
	if got := c.Density(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("Density = %v want 0.2", got)
	}
}

func TestCoordCloneIndependence(t *testing.T) {
	c := mustCoord(t, []int{2, 2}, [][]int{{0, 1}}, []float64{1})
	d := c.Clone()
	d.SetValue(0, 42)
	if c.Value(0) != 1 {
		t.Fatal("Clone shares value storage")
	}
}

func TestSplitPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := randomCoord(rng, []int{10, 10, 10}, 200)
	train, test := c.Split(0.9, rng)
	if train.NNZ()+test.NNZ() != c.NNZ() {
		t.Fatalf("split loses entries: %d + %d != %d", train.NNZ(), test.NNZ(), c.NNZ())
	}
	if train.NNZ() != 180 {
		t.Fatalf("train size = %d want 180", train.NNZ())
	}
	// The union of values must be preserved (as multisets of values).
	sum := func(t *Coord) float64 {
		var s float64
		for _, v := range t.Values() {
			s += v
		}
		return s
	}
	if math.Abs(sum(train)+sum(test)-sum(c)) > 1e-9 {
		t.Fatal("split changes the multiset of values")
	}
}

func TestSplitBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := randomCoord(rng, []int{5, 5}, 10)
	train, test := c.Split(1.0, rng)
	if train.NNZ() != 10 || test.NNZ() != 0 {
		t.Fatalf("full train split failed: %d/%d", train.NNZ(), test.NNZ())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range fraction")
		}
	}()
	c.Split(1.5, rng)
}

func TestModeIndexEnumeratesAllEntries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := randomCoord(rng, []int{6, 7, 8}, 100)
	mi := NewModeIndex(c)
	for mode := 0; mode < 3; mode++ {
		seen := make([]bool, c.NNZ())
		total := 0
		for in := 0; in < c.Dim(mode); in++ {
			for _, e := range mi.Slice(mode, in) {
				if c.Index(e)[mode] != in {
					t.Fatalf("mode %d slice %d contains entry with coordinate %d", mode, in, c.Index(e)[mode])
				}
				if seen[e] {
					t.Fatalf("entry %d listed twice", e)
				}
				seen[e] = true
				total++
			}
			if mi.Count(mode, in) != len(mi.Slice(mode, in)) {
				t.Fatal("Count disagrees with Slice length")
			}
		}
		if total != c.NNZ() {
			t.Fatalf("mode %d: indexed %d of %d entries", mode, total, c.NNZ())
		}
	}
}

func TestModeIndexNonEmptyRows(t *testing.T) {
	c := mustCoord(t, []int{4, 2}, [][]int{{0, 0}, {0, 1}, {3, 0}}, []float64{1, 2, 3})
	mi := NewModeIndex(c)
	rows := mi.NonEmptyRows(0)
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 3 {
		t.Fatalf("NonEmptyRows = %v want [0 3]", rows)
	}
	if mi.MaxRowLoad(0) != 2 {
		t.Fatalf("MaxRowLoad = %d want 2", mi.MaxRowLoad(0))
	}
}

func TestDenseOffsetsRoundTrip(t *testing.T) {
	d := NewDenseTensor([]int{3, 4, 5})
	idx := make([]int, 3)
	for off := 0; off < d.Size(); off++ {
		d.IndexOf(off, idx)
		if d.Offset(idx) != off {
			t.Fatalf("offset %d round-trips to %d via %v", off, d.Offset(idx), idx)
		}
	}
}

func TestDenseAtSet(t *testing.T) {
	d := NewDenseTensor([]int{2, 3})
	d.Set([]int{1, 2}, 5)
	if d.At([]int{1, 2}) != 5 {
		t.Fatal("At/Set round trip failed")
	}
	if d.Size() != 6 {
		t.Fatalf("Size = %d want 6", d.Size())
	}
}

func TestDenseNorm(t *testing.T) {
	d := NewDenseTensor([]int{2, 2})
	d.Set([]int{0, 0}, 3)
	d.Set([]int{1, 1}, 4)
	if got := d.Norm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm = %v want 5", got)
	}
}

func TestMatricizeKnown(t *testing.T) {
	// 2x3 "tensor" (matrix): matricization along mode 0 must equal itself.
	d := NewDenseTensor([]int{2, 3})
	v := 1.0
	for j := 0; j < 3; j++ {
		for i := 0; i < 2; i++ {
			d.Set([]int{i, j}, v)
			v++
		}
	}
	m0 := d.Matricize(0)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m0.At(i, j) != d.At([]int{i, j}) {
				t.Fatalf("mode-0 matricization mismatch at (%d,%d)", i, j)
			}
		}
	}
	// Mode-1 matricization is the transpose for order 2.
	m1 := d.Matricize(1)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m1.At(j, i) != d.At([]int{i, j}) {
				t.Fatalf("mode-1 matricization mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatricizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := NewDenseTensor([]int{3, 4, 2})
	for i := range d.Data() {
		d.Data()[i] = rng.Float64()
	}
	for n := 0; n < 3; n++ {
		m := d.Matricize(n)
		back := NewDenseTensor([]int{3, 4, 2})
		back.FromMatricized(n, m)
		for i := range d.Data() {
			if math.Abs(back.Data()[i]-d.Data()[i]) > 1e-12 {
				t.Fatalf("mode %d matricize round trip failed", n)
			}
		}
	}
}

// The defining identity of matricization and the n-mode product:
// Y = X ×n U  ⇔  Y(n) = U · X(n).
func TestModeProductMatchesMatricization(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDenseTensor([]int{3, 4, 2})
	for i := range d.Data() {
		d.Data()[i] = rng.Float64()*2 - 1
	}
	for n := 0; n < 3; n++ {
		u := mat.NewDense(5, d.Dim(n))
		for i := 0; i < 5; i++ {
			for j := 0; j < d.Dim(n); j++ {
				u.Set(i, j, rng.Float64()*2-1)
			}
		}
		y := d.ModeProduct(n, u)
		if y.Dim(n) != 5 {
			t.Fatalf("mode %d product output dim = %d want 5", n, y.Dim(n))
		}
		got := y.Matricize(n)
		want := mat.Mul(u, d.Matricize(n))
		if !got.Equal(want, 1e-10) {
			t.Fatalf("mode %d: Y(n) != U·X(n)", n)
		}
	}
}

func TestModeProductChain(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := NewDenseTensor([]int{2, 3, 4})
	for i := range d.Data() {
		d.Data()[i] = rng.Float64()
	}
	u0 := mat.Identity(2)
	u2 := mat.NewDense(2, 4)
	for i := 0; i < 2; i++ {
		for j := 0; j < 4; j++ {
			u2.Set(i, j, rng.Float64())
		}
	}
	// Chain with nil for mode 1 must equal applying modes 0 and 2 separately.
	got := d.ModeProductChain([]*mat.Dense{u0, nil, u2})
	want := d.ModeProduct(0, u0).ModeProduct(2, u2)
	for i := range want.Data() {
		if math.Abs(got.Data()[i]-want.Data()[i]) > 1e-12 {
			t.Fatal("ModeProductChain mismatch")
		}
	}
}

func TestModeProductShapePanic(t *testing.T) {
	d := NewDenseTensor([]int{2, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong U shape")
		}
	}()
	d.ModeProduct(0, mat.NewDense(3, 5))
}

// Property: mode products along different modes commute.
func TestModeProductCommutativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dims := []int{1 + r.Intn(4), 1 + r.Intn(4), 1 + r.Intn(4)}
		d := NewDenseTensor(dims)
		for i := range d.Data() {
			d.Data()[i] = r.Float64()*2 - 1
		}
		u0 := mat.NewDense(1+r.Intn(3), dims[0])
		for i := range u0.Data() {
			u0.Data()[i] = r.Float64()*2 - 1
		}
		u2 := mat.NewDense(1+r.Intn(3), dims[2])
		for i := range u2.Data() {
			u2.Data()[i] = r.Float64()*2 - 1
		}
		a := d.ModeProduct(0, u0).ModeProduct(2, u2)
		b := d.ModeProduct(2, u2).ModeProduct(0, u0)
		for i := range a.Data() {
			if math.Abs(a.Data()[i]-b.Data()[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestEachNonZeroAndToCoord(t *testing.T) {
	d := NewDenseTensor([]int{2, 2})
	d.Set([]int{0, 1}, 2)
	d.Set([]int{1, 0}, 1e-15)
	count := 0
	d.EachNonZero(func(idx []int, v float64) { count++ })
	if count != 2 {
		t.Fatalf("EachNonZero visited %d cells want 2", count)
	}
	c := d.ToCoord(1e-12)
	if c.NNZ() != 1 {
		t.Fatalf("ToCoord kept %d entries want 1 (tolerance filter)", c.NNZ())
	}
	if got := c.Index(0); got[0] != 0 || got[1] != 1 {
		t.Fatalf("ToCoord index = %v", got)
	}
}

func TestNumCells(t *testing.T) {
	if NumCells([]int{10, 10, 10}) != 1000 {
		t.Fatal("NumCells wrong")
	}
	// Must not overflow for paper-scale shapes.
	big := NumCells([]int{10000000, 10000000, 10000000})
	if big != 1e21 {
		t.Fatalf("NumCells big = %v want 1e21", big)
	}
}

func TestIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := randomCoord(rng, []int{5, 6, 7}, 40)
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, 3, c.Dims())
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != c.NNZ() {
		t.Fatalf("round trip nnz %d want %d", got.NNZ(), c.NNZ())
	}
	for e := 0; e < c.NNZ(); e++ {
		gi, ci := got.Index(e), c.Index(e)
		for k := range ci {
			if gi[k] != ci[k] {
				t.Fatalf("entry %d index mismatch %v vs %v", e, gi, ci)
			}
		}
		if math.Abs(got.Value(e)-c.Value(e)) > 1e-9 {
			t.Fatalf("entry %d value mismatch", e)
		}
	}
}

func TestReadInfersDims(t *testing.T) {
	in := "1 1 1 0.5\n3 2 4 1.25\n"
	c, err := Read(strings.NewReader(in), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 2, 4}
	for k, d := range want {
		if c.Dim(k) != d {
			t.Fatalf("inferred dims %v want %v", c.Dims(), want)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n1 1 2.0\n  \n# tail\n2 2 3.0\n"
	c, err := Read(strings.NewReader(in), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != 2 {
		t.Fatalf("NNZ = %d want 2", c.NNZ())
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, in string
		order    int
		dims     []int
	}{
		{"wrong field count", "1 2 3\n", 3, nil},
		{"bad index", "x 1 1 1\n", 3, nil},
		{"zero index", "0 1 1 1\n", 3, nil},
		{"bad value", "1 1 1 z\n", 3, nil},
		{"out of dims", "5 1 1 1\n", 3, []int{2, 2, 2}},
		{"dims length mismatch", "1 1 1 1\n", 3, []int{2, 2}},
		{"bad order", "", 0, nil},
	}
	for _, tc := range cases {
		if _, err := Read(strings.NewReader(tc.in), tc.order, tc.dims); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c := randomCoord(rng, []int{4, 4}, 8)
	path := t.TempDir() + "/tensor.tns"
	if err := WriteFile(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != c.NNZ() {
		t.Fatalf("file round trip nnz %d want %d", got.NNZ(), c.NNZ())
	}
	if _, err := ReadFile(path+".missing", 2, nil); err == nil {
		t.Fatal("expected error for missing file")
	}
}

// failingWriter injects a write error after a budget of bytes, exercising
// the IO error paths.
type failingWriter struct{ budget int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.budget <= 0 {
		return 0, errWriteInjected
	}
	n := len(p)
	if n > f.budget {
		n = f.budget
	}
	f.budget -= n
	if n < len(p) {
		return n, errWriteInjected
	}
	return n, nil
}

var errWriteInjected = errors.New("injected write failure")

func TestWriteFailureInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	c := randomCoord(rng, []int{50, 50}, 200)
	for _, budget := range []int{0, 1, 10, 100} {
		if err := Write(&failingWriter{budget: budget}, c); !errors.Is(err, errWriteInjected) {
			t.Fatalf("budget %d: err = %v want injected failure", budget, err)
		}
	}
}

func TestWriteFileToBadPath(t *testing.T) {
	c := NewCoord([]int{2, 2})
	c.MustAppend([]int{0, 0}, 1)
	if err := WriteFile("/nonexistent-dir/sub/x.tns", c); err == nil {
		t.Fatal("expected error for unwritable path")
	}
}

// Property: IO round trip preserves any random tensor exactly enough.
func TestIORoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []int{2 + rng.Intn(8), 2 + rng.Intn(8), 2 + rng.Intn(8)}
		nnz := 1 + rng.Intn(20)
		if cells := dims[0] * dims[1] * dims[2]; nnz > cells/2 {
			nnz = cells / 2
		}
		if nnz < 1 {
			nnz = 1
		}
		c := randomCoord(rng, dims, nnz)
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			return false
		}
		got, err := Read(&buf, 3, c.Dims())
		if err != nil || got.NNZ() != c.NNZ() {
			return false
		}
		for e := 0; e < c.NNZ(); e++ {
			gi, ci := got.Index(e), c.Index(e)
			for k := range ci {
				if gi[k] != ci[k] {
					return false
				}
			}
			if math.Abs(got.Value(e)-c.Value(e)) > 1e-9*(1+math.Abs(c.Value(e))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

// Property: ModeIndex slices partition the entry set for random tensors.
func TestModeIndexPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []int{1 + rng.Intn(10), 1 + rng.Intn(10)}
		nnz := 1 + rng.Intn(30)
		if cells := dims[0] * dims[1]; nnz > cells/2 {
			nnz = cells / 2
		}
		if nnz < 1 {
			nnz = 1
		}
		c := randomCoord(rng, dims, nnz)
		mi := NewModeIndex(c)
		for mode := 0; mode < 2; mode++ {
			total := 0
			for in := 0; in < c.Dim(mode); in++ {
				total += mi.Count(mode, in)
			}
			if total != c.NNZ() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}
