package tensor

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// Dense is a dense N-order tensor with little-endian strides: mode 0 varies
// fastest, matching the paper's matricization mapping (Definition 2), where
// the column index of X(n) is built from the non-n coordinates with
// lower-numbered modes varying fastest.
//
// Dense tensors appear in two roles in this reproduction: the Tucker core G
// (small, J1×…×JN) and the intermediates of the baselines that materialize
// dense data (Tucker-wOpt, naive HOOI), which is exactly what makes those
// baselines explode in memory.
type Dense struct {
	dims    []int
	strides []int
	data    []float64
}

// NewDenseTensor returns a zero dense tensor with the given dimensions.
func NewDenseTensor(dims []int) *Dense {
	if len(dims) == 0 {
		panic("tensor: empty dimension list")
	}
	size := 1
	strides := make([]int, len(dims))
	for n, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %v", dims))
		}
		strides[n] = size
		size *= d
	}
	d := make([]int, len(dims))
	copy(d, dims)
	return &Dense{dims: d, strides: strides, data: make([]float64, size)}
}

// NumCells returns ∏ In for dims without allocating a tensor; used by memory
// budget checks before attempting a dense materialization.
func NumCells(dims []int) float64 {
	cells := 1.0
	for _, d := range dims {
		cells *= float64(d)
	}
	return cells
}

// Order returns the number of modes.
func (d *Dense) Order() int { return len(d.dims) }

// Dims returns the mode dimensions. The slice must not be modified.
func (d *Dense) Dims() []int { return d.dims }

// Dim returns the length of mode n.
func (d *Dense) Dim(n int) int { return d.dims[n] }

// Size returns the total number of cells.
func (d *Dense) Size() int { return len(d.data) }

// Data returns the backing slice in stride order (mode 0 fastest).
func (d *Dense) Data() []float64 { return d.data }

// Offset converts a multi-index to a flat offset.
func (d *Dense) Offset(idx []int) int {
	off := 0
	for n, i := range idx {
		off += i * d.strides[n]
	}
	return off
}

// IndexOf converts a flat offset back to a multi-index, filling idx.
func (d *Dense) IndexOf(off int, idx []int) {
	for n := 0; n < len(d.dims); n++ {
		idx[n] = off % d.dims[n]
		off /= d.dims[n]
	}
}

// At returns the value at multi-index idx.
func (d *Dense) At(idx []int) float64 { return d.data[d.Offset(idx)] }

// Set assigns the value at multi-index idx.
func (d *Dense) Set(idx []int, v float64) { d.data[d.Offset(idx)] = v }

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	c := NewDenseTensor(d.dims)
	copy(c.data, d.data)
	return c
}

// Zero clears all cells.
func (d *Dense) Zero() {
	for i := range d.data {
		d.data[i] = 0
	}
}

// Norm returns the Frobenius norm over all cells (Definition 1).
func (d *Dense) Norm() float64 {
	var s float64
	for _, v := range d.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Matricize returns the mode-n unfolding X(n), an In x ∏_{m≠n} Im matrix
// following the paper's Definition 2 column ordering (0-based: the column of
// cell (i1,…,iN) is Σ_{k≠n} ik · ∏_{m<k, m≠n} Im).
func (d *Dense) Matricize(n int) *mat.Dense {
	rows := d.dims[n]
	cols := len(d.data) / rows
	out := mat.NewDense(rows, cols)
	idx := make([]int, len(d.dims))
	for off, v := range d.data {
		d.IndexOf(off, idx)
		col := 0
		stride := 1
		for k := 0; k < len(d.dims); k++ {
			if k == n {
				continue
			}
			col += idx[k] * stride
			stride *= d.dims[k]
		}
		out.Set(idx[n], col, v)
	}
	return out
}

// FromMatricized overwrites d's cells from the mode-n unfolding m, the
// inverse of Matricize.
func (d *Dense) FromMatricized(n int, m *mat.Dense) {
	idx := make([]int, len(d.dims))
	for off := range d.data {
		d.IndexOf(off, idx)
		col := 0
		stride := 1
		for k := 0; k < len(d.dims); k++ {
			if k == n {
				continue
			}
			col += idx[k] * stride
			stride *= d.dims[k]
		}
		d.data[off] = m.At(idx[n], col)
	}
}

// ModeProduct computes the n-mode product Y = d ×n U (Definition 3) where U
// is Jn x In with In = d.Dim(n). The result has mode n of length Jn.
func (d *Dense) ModeProduct(n int, u *mat.Dense) *Dense {
	if u.Cols() != d.dims[n] {
		panic(fmt.Sprintf("tensor: mode-%d product needs %d columns, got %d", n, d.dims[n], u.Cols()))
	}
	outDims := make([]int, len(d.dims))
	copy(outDims, d.dims)
	outDims[n] = u.Rows()
	out := NewDenseTensor(outDims)

	// Iterate source cells, scattering into the output: for each source cell
	// with coordinate in on mode n, add value * U[jn][in] to every output jn.
	idx := make([]int, len(d.dims))
	for off, v := range d.data {
		if v == 0 {
			continue
		}
		d.IndexOf(off, idx)
		in := idx[n]
		// Base offset of the output cell with jn = 0.
		base := 0
		for k, i := range idx {
			if k == n {
				continue
			}
			base += i * out.strides[k]
		}
		stride := out.strides[n]
		for jn := 0; jn < u.Rows(); jn++ {
			out.data[base+jn*stride] += v * u.At(jn, in)
		}
	}
	return out
}

// ModeProductChain applies d ×1 U[0] ×2 U[1] … skipping nil entries; used for
// the TTMc chains of the HOOI family and for the core update G ← G ×n R(n).
func (d *Dense) ModeProductChain(us []*mat.Dense) *Dense {
	cur := d
	for n, u := range us {
		if u == nil {
			continue
		}
		cur = cur.ModeProduct(n, u)
	}
	return cur
}

// EachNonZero calls fn for every cell with a non-zero value, passing the
// multi-index (valid only during the call) and the value.
func (d *Dense) EachNonZero(fn func(idx []int, v float64)) {
	idx := make([]int, len(d.dims))
	for off, v := range d.data {
		if v == 0 {
			continue
		}
		d.IndexOf(off, idx)
		fn(idx, v)
	}
}

// ToCoord converts the dense tensor to sparse COO form, keeping cells with
// |value| > tol.
func (d *Dense) ToCoord(tol float64) *Coord {
	t := NewCoord(d.dims)
	d.EachNonZero(func(idx []int, v float64) {
		if math.Abs(v) > tol {
			t.MustAppend(idx, v)
		}
	})
	return t
}

// String summarizes the tensor.
func (d *Dense) String() string {
	return fmt.Sprintf("Dense(order=%d dims=%v)", d.Order(), d.dims)
}
