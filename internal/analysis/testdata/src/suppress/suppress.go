// Package suppress pins the ptlint:ignore contract itself, checked by
// suppress_test.go with a toy analyzer that flags every Flag* function.
package suppress

// FlagOne has no directive: reported.
func FlagOne() {}

// FlagTwo is cleanly suppressed.
//
//ptlint:ignore toy fixture demonstrates a well-formed suppression
func FlagTwo() {}

// FlagThree's directive has no reason: the directive is reported and the
// finding still stands.
//
//ptlint:ignore toy
func FlagThree() {}

// FlagFour's directive names a typo'd analyzer: reported, finding stands.
//
//ptlint:ignore tyo a typo must not silently disarm the marker
func FlagFour() {}

// FlagFive's directive names nothing at all.
//
//ptlint:ignore
func FlagFive() {}
