// Package maporder flags range statements over maps in the numeric
// packages, where Go's randomized iteration order can leak into float
// accumulation and silently break the "equal seed ⇒ bit-identical model"
// guarantee the reproduction pins with regression tests.
//
// Two shapes are allowed without a marker, because they cannot observe the
// order:
//
//   - for range m { ... }            — counting only, no key or value
//   - for k := range m { keys = append(keys, k) }
//     — the sanctioned collect-then-sort idiom (a single append of the key)
//   - for k := range m { delete(m, k) }
//     — order-independent map clearing
//
// Anything else needs an explicit //ptlint:ignore maporder <reason>.
package maporder

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the maporder check. It runs only on the numeric/fit packages:
// hash-order nondeterminism elsewhere (CLI output, test helpers) cannot
// reach float results.
var Analyzer = &analysis.Analyzer{
	Name:     "maporder",
	Doc:      "flags map iteration in numeric packages where hash order can leak into float results",
	Packages: []string{"core", "hooi", "mat", "tensor", "ttm"},
	Run:      run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if allowed(rs) {
			return true
		}
		pass.Reportf(rs.For,
			"range over a map in a numeric package: iteration order is randomized and can leak into float results; collect the keys, sort them, and iterate the slice")
		return true
	})
	return nil
}

// allowed reports whether the map range matches one of the sanctioned
// order-independent shapes.
func allowed(rs *ast.RangeStmt) bool {
	// `for range m` touches neither keys nor values: only the iteration
	// count is observable, and that is deterministic.
	if rs.Key == nil && rs.Value == nil {
		return true
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok || rs.Value != nil || len(rs.Body.List) != 1 {
		return false
	}
	switch stmt := rs.Body.List[0].(type) {
	case *ast.AssignStmt:
		// keys = append(keys, k): the collector half of collect-then-sort.
		if len(stmt.Lhs) != 1 || len(stmt.Rhs) != 1 {
			return false
		}
		call, ok := stmt.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return false
		}
		dst, ok := stmt.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		src, ok := call.Args[0].(*ast.Ident)
		if !ok || src.Name != dst.Name {
			return false
		}
		arg, ok := call.Args[1].(*ast.Ident)
		return ok && arg.Name == key.Name
	case *ast.ExprStmt:
		// delete(m, k): clearing is order-independent.
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "delete" {
			return false
		}
		arg, ok := call.Args[1].(*ast.Ident)
		return ok && arg.Name == key.Name
	}
	return false
}
