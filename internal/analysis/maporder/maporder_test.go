package maporder_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/core", maporder.Analyzer)
}

func TestMapOrderSkipsNonNumericPackages(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/other", maporder.Analyzer)
}
