// Package other is the negative maporder fixture: not a numeric package,
// so map iteration is out of scope no matter what it does.
package other

// Sum iterates a map freely; this package's floats never feed a model.
func Sum(w map[int]float64) float64 {
	total := 0.0
	for _, v := range w {
		total += v
	}
	return total
}
