// Package core is a maporder fixture: it carries the name of a numeric
// package, so the analyzer applies.
package core

import "sort"

// Accumulate sums weights in map order — exactly the nondeterminism the
// analyzer exists to catch.
func Accumulate(w map[int]float64) float64 {
	total := 0.0
	for _, v := range w { // want `maporder: range over a map`
		total += v
	}
	return total
}

// AccumulateSorted is the sanctioned shape: collect, sort, iterate.
func AccumulateSorted(w map[int]float64) float64 {
	var keys []int
	for k := range w {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	total := 0.0
	for _, k := range keys {
		total += w[k]
	}
	return total
}

// Count only observes the iteration count, which is deterministic.
func Count(w map[int]float64) int {
	n := 0
	for range w {
		n++
	}
	return n
}

// Clear deletes every key; order cannot matter.
func Clear(w map[int]float64) {
	for k := range w {
		delete(w, k)
	}
}

// KeyedWork uses the key beyond collecting it, so order escapes.
func KeyedWork(w map[int]float64, out []float64) {
	for k := range w { // want `maporder: range over a map`
		out[0] += float64(k)
	}
}

// Justified shows a suppressed finding: the reason makes it vet-clean.
func Justified(w map[int]float64) float64 {
	max := 0.0
	//ptlint:ignore maporder max is order-independent (no float accumulation)
	for _, v := range w {
		if v > max {
			max = v
		}
	}
	return max
}
