package analysis

import (
	"go/ast"
	"strings"
	"testing"
)

// toy flags every function whose name starts with "Flag" — a minimal
// diagnostic source for exercising the suppression machinery.
var toy = &Analyzer{
	Name: "toy",
	Doc:  "flags Flag* functions (test analyzer)",
	Run: func(pass *Pass) error {
		pass.Inspect(func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "Flag") {
				pass.Reportf(fd.Pos(), "function %s is flagged", fd.Name.Name)
			}
			return true
		})
		return nil
	},
}

// TestSuppression pins the ignore contract: a well-formed directive
// suppresses; one missing its reason is itself a finding and suppresses
// nothing; unknown or absent analyzer names are findings too.
func TestSuppression(t *testing.T) {
	l := NewLoader(moduleRoot(t))
	pkg, err := l.LoadDir("testdata/src/suppress")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := Run(pkg, []*Analyzer{toy})
	if err != nil {
		t.Fatalf("running toy analyzer: %v", err)
	}

	var toyMsgs, ptlintMsgs []string
	for _, d := range diags {
		switch d.Analyzer {
		case "toy":
			toyMsgs = append(toyMsgs, d.Message)
		case "ptlint":
			ptlintMsgs = append(ptlintMsgs, d.Message)
		default:
			t.Errorf("finding from unexpected analyzer %q: %s", d.Analyzer, d.Message)
		}
	}

	// FlagTwo is the only cleanly suppressed function.
	wantFlagged := []string{"FlagOne", "FlagThree", "FlagFour", "FlagFive"}
	if len(toyMsgs) != len(wantFlagged) {
		t.Fatalf("toy findings = %v, want one per %v", toyMsgs, wantFlagged)
	}
	for i, fn := range wantFlagged {
		if !strings.Contains(toyMsgs[i], fn) {
			t.Errorf("toy finding %d = %q, want mention of %s", i, toyMsgs[i], fn)
		}
	}
	for _, m := range toyMsgs {
		if strings.Contains(m, "FlagTwo") {
			t.Errorf("FlagTwo was reported despite a well-formed suppression: %q", m)
		}
	}

	// One meta finding per defective directive.
	wantMeta := []string{"missing its reason", "unknown analyzer", "names no analyzer"}
	if len(ptlintMsgs) != len(wantMeta) {
		t.Fatalf("ptlint findings = %v, want one per %v", ptlintMsgs, wantMeta)
	}
	for i, frag := range wantMeta {
		if !strings.Contains(ptlintMsgs[i], frag) {
			t.Errorf("ptlint finding %d = %q, want mention of %q", i, ptlintMsgs[i], frag)
		}
	}
}
