package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
)

// Package is one loaded, typechecked package ready for analysis.
type Package struct {
	Path  string // import path ("fixture" for fixture directories)
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses packages from source and typechecks them against compiled
// export data produced by `go list -export`, so analysis sees the same
// types the compiler does without re-typechecking the transitive closure
// from source. One Loader shares a FileSet and an export-data cache across
// every package it loads.
type Loader struct {
	// ModuleDir is the module root `go list` runs in.
	ModuleDir string

	fset *token.FileSet

	mu      sync.Mutex
	exports map[string]string // import path -> export data file
	imp     types.ImporterFrom
}

// NewLoader returns a Loader rooted at the module directory.
func NewLoader(moduleDir string) *Loader {
	l := &Loader{
		ModuleDir: moduleDir,
		fset:      token.NewFileSet(),
		exports:   map[string]string{},
	}
	l.imp = importer.ForCompiler(l.fset, "gc", l.lookup).(types.ImporterFrom)
	return l
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` on the patterns and records
// every returned package's export data. It returns the packages that
// matched the patterns themselves (DepOnly false).
func (l *Loader) goList(patterns ...string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.ModuleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var roots []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %v: %s: %s", patterns, p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			roots = append(roots, p)
		}
	}
	return roots, nil
}

// lookup feeds the gc importer export data, resolving unseen import paths
// with an extra `go list` call (fixture packages may import paths outside
// the already-listed dependency closure).
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	e, ok := l.exports[path]
	l.mu.Unlock()
	if !ok {
		if _, err := l.goList(path); err != nil {
			return nil, fmt.Errorf("no export data for %q: %v", path, err)
		}
		l.mu.Lock()
		e, ok = l.exports[path]
		l.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
	}
	return os.Open(e)
}

// Load loads and typechecks the packages matching the `go list` patterns
// (e.g. "./..."). Test files are not analyzed: the invariants the suite
// enforces are production-path properties, and test packages routinely use
// the very constructs the analyzers exist to flag (fixed local RNGs, raw
// temp-file writes).
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	roots, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(roots))
	for _, r := range roots {
		if len(r.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(r.GoFiles))
		for i, f := range r.GoFiles {
			files[i] = filepath.Join(r.Dir, f)
		}
		p, err := l.check(r.ImportPath, r.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadDir loads a single directory of Go files as one package outside the
// module's package graph — the fixture-loading path used by analyzer tests
// (testdata directories are invisible to `go list`). Imports still resolve
// against real export data, so fixtures can exercise analyzers against the
// actual os, sync, math/rand, or repro/internal/... types.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		files = append(files, filepath.Join(dir, e.Name()))
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	return l.check("fixture/"+filepath.Base(dir), dir, files)
}

// check parses and typechecks one package.
func (l *Loader) check(path, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return &Package{
		Path:  path,
		Name:  tpkg.Name(),
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// Position renders a diagnostic position.
func (p *Package) Position(pos token.Pos) token.Position { return p.Fset.Position(pos) }

// quoteList renders analyzer names for messages.
func quoteList(names []string) string {
	qs := make([]string, len(names))
	for i, n := range names {
		qs[i] = strconv.Quote(n)
	}
	return joinComma(qs)
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}
