// Package tooling is the negative seededrand fixture: packages outside the
// fit/predict paths (generators, load tools) may use whatever randomness
// they want.
package tooling

import (
	"math/rand"
	"time"
)

// Jitter is fine here: this package's output never feeds a model.
func Jitter() time.Duration {
	return time.Duration(rand.Intn(1000)) * time.Millisecond
}
