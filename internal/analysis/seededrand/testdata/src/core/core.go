// Package core is a seededrand fixture carrying a numeric package's name.
package core

import (
	"math/rand"
	"time"
)

// Config mirrors the real package's seed plumbing.
type Config struct {
	Seed int64
}

// InitGood is the sanctioned pattern: an explicit generator from the seed.
func InitGood(cfg Config, n int) []float64 {
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()
	}
	return out
}

// InitGlobal draws from the process-global source.
func InitGlobal(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rand.Float64() // want `seededrand: use of global rand.Float64`
	}
	return out
}

// ShuffleGlobal uses another global top-level func.
func ShuffleGlobal(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want `seededrand: use of global rand.Shuffle`
		xs[i], xs[j] = xs[j], xs[i]
	})
}

// InitClock seeds from the wall clock — unique per run by construction.
func InitClock() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seededrand: time.Now\(\)-derived seed`
}

// TypeUseOK references rand types without drawing.
func TypeUseOK(rng *rand.Rand, src rand.Source) *rand.Rand {
	_ = src
	return rng
}

// JustifiedGlobal shows a suppression with its reason.
func JustifiedGlobal() int {
	//ptlint:ignore seededrand jitter for a log sample rate; never feeds model state
	return rand.Intn(100)
}
