// Package seededrand forbids nondeterministic randomness in the fit and
// predict packages: the reproduction's contract is that an equal
// Config.Seed reruns bit-identically, so every random draw must flow
// through an explicit *rand.Rand constructed from that seed.
//
// Two shapes are flagged:
//
//   - calls to math/rand (or math/rand/v2) package-level functions — they
//     draw from the global, process-shared source, which is seeded
//     randomly and raced by every other caller;
//   - time.Now() anywhere inside the arguments of a rand constructor
//     (rand.New, rand.NewSource, ...) — a wall-clock seed makes every run
//     unique by construction.
//
// Constructing sources is fine (rand.New(rand.NewSource(cfg.Seed)) is the
// sanctioned pattern); it is the global top-level draws and clock seeds
// that break reruns.
package seededrand

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the seededrand check, scoped to the packages whose outputs
// must be reproducible: the solver core, the init/decomposition kernels,
// the alternative decompositions, and the discovery pipeline.
var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc:  "forbids global math/rand draws and time-derived seeds in fit/predict paths",
	Packages: []string{
		"core", "hooi", "mat", "tensor", "ttm",
		"cp", "shot", "wopt", "csf", "kmeans", "discovery", "serve",
	},
	Run: run,
}

// constructors are the math/rand functions that build sources and
// generators rather than drawing from the global one.
var constructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgPath, isPkgSel := packageQualifier(pass, sel)
		if !isPkgSel || (pkgPath != "math/rand" && pkgPath != "math/rand/v2") {
			return true
		}
		if constructors[sel.Sel.Name] {
			return true
		}
		// Referencing a type (rand.Rand, rand.Source) is fine; only funcs
		// and vars draw.
		if obj := pass.Info.Uses[sel.Sel]; obj != nil {
			if _, isType := obj.(*types.TypeName); isType {
				return true
			}
		}
		pass.Reportf(sel.Pos(),
			"use of global %s.%s: fit/predict paths must draw from an explicit *rand.Rand threaded from Config.Seed, or equal-seed reruns stop being bit-identical",
			pkgBase(pkgPath), sel.Sel.Name)
		return true
	})

	// Clock-derived seeds: time.Now anywhere inside a rand constructor's
	// arguments.
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !constructors[sel.Sel.Name] {
			return true
		}
		pkgPath, isPkgSel := packageQualifier(pass, sel)
		if !isPkgSel || (pkgPath != "math/rand" && pkgPath != "math/rand/v2") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				// A nested constructor reports its own arguments; without
				// this, rand.New(rand.NewSource(time.Now().UnixNano()))
				// would be flagged twice.
				if inner, ok := m.(*ast.CallExpr); ok && m != n {
					if is, _ := inner.Fun.(*ast.SelectorExpr); is != nil && constructors[is.Sel.Name] {
						if p, isPkg := packageQualifier(pass, is); isPkg && (p == "math/rand" || p == "math/rand/v2") {
							return false
						}
					}
				}
				inner, ok := m.(*ast.SelectorExpr)
				if !ok || inner.Sel.Name != "Now" {
					return true
				}
				if p, isPkg := packageQualifier(pass, inner); isPkg && p == "time" {
					pass.Reportf(inner.Pos(),
						"time.Now()-derived seed: seed %s.%s from Config.Seed so reruns are reproducible",
						pkgBase(pkgPath), sel.Sel.Name)
				}
				return true
			})
		}
		return true
	})
	return nil
}

// packageQualifier reports the import path when sel is a package-qualified
// selector (pkg.Name).
func packageQualifier(pass *analysis.Pass, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

func pkgBase(path string) string {
	if path == "math/rand/v2" {
		return "rand/v2"
	}
	return "rand"
}
