package seededrand_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/seededrand"
)

func TestSeededRand(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/core", seededrand.Analyzer)
}

func TestSeededRandSkipsToolingPackages(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/tooling", seededrand.Analyzer)
}
