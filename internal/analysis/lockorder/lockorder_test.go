package lockorder_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/pool", lockorder.Analyzer)
}

func TestLockOrderNoDirective(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/nodirective", lockorder.Analyzer)
}

func TestLockOrderMalformedDirective(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/malformed", lockorder.Analyzer)
}
