// Package lockorder checks mutex acquisitions against the package's
// documented lock hierarchy. The hierarchy is declared once, in a
// machine-readable doc comment anywhere in the package:
//
//	ptlint:lock-order Server.reloadMu > online.mu > online.stageMu > Server.durMu
//
// Each entry names a sync.Mutex/RWMutex either as Type.field (a mutex
// field of a named struct type) or as a bare package-level variable name.
// "A > B" means A is the outer lock: a goroutine holding B must not
// acquire A. Packages without a directive are skipped.
//
// The check is intentionally linear and conservative — a lint, not a model
// checker. Within each function, acquisitions are scanned in source order
// against the set of locks still held (an explicit Unlock releases;
// a deferred Unlock holds to the end). Two findings result:
//
//   - acquiring a lock that ranks above (outer than) one already held —
//     the inversion that deadlocks against a goroutine locking in the
//     documented order;
//   - acquiring a lock while it is already held (self-deadlock on a
//     non-reentrant sync.Mutex).
//
// One level of the intra-package call graph is folded in: calling a
// function that itself acquires an outer or held lock, while holding one,
// is flagged at the call site.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the lockorder check. It runs on every package and activates
// wherever a ptlint:lock-order directive is present.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "flags mutex acquisitions that invert the package's documented ptlint:lock-order hierarchy",
	Run:  run,
}

const directive = "ptlint:lock-order"

// hierarchy is the parsed directive: lock key -> rank (0 = outermost).
type hierarchy struct {
	rank  map[string]int
	order []string // display order, for messages
	spec  string
}

func run(pass *analysis.Pass) error {
	h := parseHierarchy(pass)
	if h == nil {
		return nil
	}

	// First pass: every function's directly-acquired lock set, for the
	// one-level call-graph check.
	locksets := map[*types.Func]map[string]bool{}
	forEachFunc(pass, func(fn *types.Func, decl *ast.FuncDecl) {
		set := map[string]bool{}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if key, op, ok := lockCall(pass, n); ok && isAcquire(op) {
				if _, known := h.rank[key]; known {
					set[key] = true
				}
			}
			return true
		})
		if len(set) > 0 {
			locksets[fn] = set
		}
	})

	// Second pass: source-order held-set simulation per function.
	forEachFunc(pass, func(fn *types.Func, decl *ast.FuncDecl) {
		var held []string // lock keys in acquisition order
		release := func(key string) {
			for i := len(held) - 1; i >= 0; i-- {
				if held[i] == key {
					held = append(held[:i], held[i+1:]...)
					return
				}
			}
		}
		inDefer := map[ast.Node]bool{}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if d, ok := n.(*ast.DeferStmt); ok {
				inDefer[d.Call] = true
			}
			key, op, ok := lockCall(pass, n)
			if ok {
				rank, known := h.rank[key]
				if !known {
					return true
				}
				switch {
				case isAcquire(op):
					for _, hk := range held {
						hr := h.rank[hk]
						if hk == key {
							pass.Reportf(n.Pos(),
								"%s is acquired while already held (self-deadlock on a non-reentrant mutex)", key)
						} else if hr > rank {
							pass.Reportf(n.Pos(),
								"lock order inverted: acquiring %s while holding %s (documented order: %s)",
								key, hk, h.spec)
						}
					}
					held = append(held, key)
				default: // Unlock/RUnlock
					if call, isCall := n.(*ast.CallExpr); !isCall || !inDefer[call] {
						release(key)
					}
					// A deferred unlock releases at return; the lock stays
					// held for the rest of the source-order scan.
				}
				return true
			}
			// One level of the call graph: a call made while holding locks
			// is checked against the callee's direct acquisitions.
			if call, isCall := n.(*ast.CallExpr); isCall && len(held) > 0 {
				callee := calleeFunc(pass, call)
				if callee == nil || callee == fn {
					return true
				}
				for key := range locksets[callee] {
					rank := h.rank[key]
					for _, hk := range held {
						hr := h.rank[hk]
						if hk == key {
							pass.Reportf(call.Pos(),
								"calls %s, which acquires %s, while %s is held (self-deadlock)",
								callee.Name(), key, key)
						} else if hr > rank {
							pass.Reportf(call.Pos(),
								"lock order inverted: calls %s, which acquires %s, while holding %s (documented order: %s)",
								callee.Name(), key, hk, h.spec)
						}
					}
				}
			}
			return true
		})
	})
	return nil
}

// parseHierarchy finds and parses the package's ptlint:lock-order
// directive. Like all Go directives it must be written exactly
// //ptlint:lock-order (no space after //) — prose that merely mentions the
// marker is not a directive. Malformed or duplicates are reported.
func parseHierarchy(pass *analysis.Pass) *hierarchy {
	var h *hierarchy
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//"+directive) {
					continue
				}
				spec := strings.TrimSpace(c.Text[len("//"+directive):])
				if h != nil {
					pass.Reportf(c.Pos(), "duplicate %s directive (the package hierarchy must be declared exactly once)", directive)
					continue
				}
				parsed, err := parseSpec(spec)
				if err != nil {
					pass.Reportf(c.Pos(), "malformed %s directive: %v", directive, err)
					continue
				}
				h = parsed
			}
		}
	}
	return h
}

// parseSpec parses "A > B > C" into ranks.
func parseSpec(spec string) (*hierarchy, error) {
	parts := strings.Split(spec, ">")
	if len(parts) < 2 {
		return nil, fmt.Errorf("want at least two locks separated by '>', got %q", spec)
	}
	h := &hierarchy{rank: map[string]int{}, spec: spec}
	for i, p := range parts {
		name := strings.TrimSpace(p)
		if name == "" || strings.ContainsAny(name, " \t") || strings.Count(name, ".") > 1 {
			return nil, fmt.Errorf("entry %q: want Type.field or a package-level variable name", p)
		}
		if _, dup := h.rank[name]; dup {
			return nil, fmt.Errorf("entry %q appears twice", name)
		}
		h.rank[name] = i
		h.order = append(h.order, name)
	}
	h.spec = strings.Join(h.order, " > ")
	return h, nil
}

// lockCall matches expr.Lock()/RLock()/Unlock()/RUnlock()/TryLock() where
// expr is a sync.Mutex or sync.RWMutex addressed by the hierarchy's naming
// scheme, returning the lock's key and the method name.
func lockCall(pass *analysis.Pass, n ast.Node) (key, op string, ok bool) {
	call, isCall := n.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	if !isSyncMutex(pass.Info.Types[sel.X].Type) {
		return "", "", false
	}
	switch x := sel.X.(type) {
	case *ast.SelectorExpr:
		// owner.field — key is OwnerType.field.
		s := pass.Info.Selections[x]
		if s == nil {
			return "", "", false
		}
		recv := s.Recv()
		for {
			if p, isPtr := recv.(*types.Pointer); isPtr {
				recv = p.Elem()
				continue
			}
			break
		}
		named, isNamed := recv.(*types.Named)
		if !isNamed {
			return "", "", false
		}
		return named.Obj().Name() + "." + x.Sel.Name, op, true
	case *ast.Ident:
		// Bare name — key only if it is a package-level variable.
		obj, isVar := pass.Info.Uses[x].(*types.Var)
		if !isVar || obj.Parent() != pass.Pkg.Scope() {
			return "", "", false
		}
		return x.Name, op, true
	}
	return "", "", false
}

func isAcquire(op string) bool {
	return op == "Lock" || op == "RLock" || op == "TryLock" || op == "TryRLock"
}

func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// calleeFunc resolves a call to a function or method declared in this
// package.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, isFn := obj.(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg() != pass.Pkg {
		return nil
	}
	return fn
}

// forEachFunc visits every function declaration with a body.
func forEachFunc(pass *analysis.Pass, visit func(*types.Func, *ast.FuncDecl)) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil {
				continue
			}
			fn, isFn := pass.Info.Defs[fd.Name].(*types.Func)
			if !isFn {
				continue
			}
			visit(fn, fd)
		}
	}
}
