// Package nodirective is the negative lockorder fixture: without a
// documented hierarchy the analyzer has nothing to enforce, even though the
// locking here would invert one.
package nodirective

import "sync"

type a struct{ mu sync.Mutex }

type b struct{ mu sync.Mutex }

// Tangle nests locks both ways; no directive, no findings.
func Tangle(x *a, y *b) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()

	y.mu.Lock()
	x.mu.Lock()
	x.mu.Unlock()
	y.mu.Unlock()
}
