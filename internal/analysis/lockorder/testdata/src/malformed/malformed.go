// Package malformed pins the directive validation: a hierarchy naming a
// single lock cannot order anything, and the analyzer says so rather than
// silently enforcing nothing.
package malformed

import "sync"

//ptlint:lock-order lonelyMu // want `lockorder: malformed`

var lonelyMu sync.Mutex

// Touch keeps the lock used.
func Touch() {
	lonelyMu.Lock()
	lonelyMu.Unlock()
}
