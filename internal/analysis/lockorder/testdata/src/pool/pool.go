// Package pool is the lockorder fixture: a worker pool whose locks form a
// documented three-level hierarchy.
//
//ptlint:lock-order Pool.mu > worker.mu > statsMu
package pool

import "sync"

// statsMu guards stats; the innermost lock.
var statsMu sync.Mutex

var stats int

// Pool owns the outermost lock.
type Pool struct {
	mu      sync.RWMutex
	workers []*worker
}

type worker struct {
	mu sync.Mutex
	n  int
}

// Drain acquires strictly in the documented order: no findings.
func (p *Pool) Drain() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, w := range p.workers {
		w.mu.Lock()
		statsMu.Lock()
		stats += w.n
		statsMu.Unlock()
		w.n = 0
		w.mu.Unlock()
	}
}

// Resize releases the inner lock before taking the outer one: no findings.
func (w *worker) Resize(p *Pool) {
	w.mu.Lock()
	n := w.n
	w.mu.Unlock()
	p.mu.Lock()
	p.workers = p.workers[:n]
	p.mu.Unlock()
}

// Steal takes the pool lock under a worker lock: inverted.
func (w *worker) Steal(p *Pool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	p.mu.RLock() // want `lockorder: lock order inverted: acquiring Pool.mu while holding worker.mu`
	w.n = len(p.workers)
	p.mu.RUnlock()
}

// Recount reacquires a lock it already holds.
func Recount() {
	statsMu.Lock()
	statsMu.Lock() // want `lockorder: statsMu is acquired while already held`
	stats = 0
	statsMu.Unlock()
	statsMu.Unlock()
}

// bump locks statsMu; callee for the call-graph cases.
func bump() {
	statsMu.Lock()
	stats++
	statsMu.Unlock()
}

// grow locks the pool lock; callee for the call-graph cases.
func (p *Pool) grow() {
	p.mu.Lock()
	p.workers = append(p.workers, &worker{})
	p.mu.Unlock()
}

// Report calls bump while statsMu is held: flagged at the call site.
func Report() {
	statsMu.Lock()
	defer statsMu.Unlock()
	bump() // want `lockorder: calls bump, which acquires statsMu, while statsMu is held`
}

// Expand reaches the outer lock through one level of calls.
func (w *worker) Expand(p *Pool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	p.grow() // want `lockorder: lock order inverted: calls grow, which acquires Pool.mu, while holding worker.mu`
}

// Audit calls bump after releasing: no finding.
func Audit() {
	statsMu.Lock()
	stats = 0
	statsMu.Unlock()
	bump()
}

// Requeue documents why its inversion is safe.
func (w *worker) Requeue(p *Pool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	//ptlint:ignore lockorder p is freshly constructed here and unshared, so the pool lock cannot be contended
	p.mu.Lock()
	p.workers = append(p.workers, w)
	p.mu.Unlock()
}
