package metricnames_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/metricnames"
)

func TestMetricNames(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/handlers", metricnames.Analyzer)
}

func TestMetricNamesIgnoresUnrelatedTypes(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/faker", metricnames.Analyzer)
}
