// Package metricnames enforces the metric naming contract at every
// registration point: any metric emitted through metrics.Expo (Counter,
// CounterFloat, Gauge, GaugeInt, CounterVec, GaugeIntVec, Histogram,
// HistogramVec) must
//
//   - have a constant name matching ^ptucker_[a-z0-9_]+$ — dashboards key
//     on the prefix, and a name built at runtime cannot be audited;
//   - end in _total exactly when it is a counter (Prometheus convention:
//     counters count, gauges measure);
//   - never end in _bucket, _sum, or _count — the histogram exposition
//     appends those suffixes to its own series, so a user-supplied name
//     carrying one would collide with (or masquerade as) histogram output;
//   - end in a unit suffix (_seconds, _bytes, or _size) when it is a
//     histogram, so the bucket bounds' unit is readable from the name;
//   - carry a non-empty constant help string;
//   - use a snake_case label name on the Vec variants.
//
// The same label contract applies to Expo.WithConstLabel, the multi-tenant
// per-model stamp: its label name must be a constant snake_case identifier.
package metricnames

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the metricnames check. It fires wherever metrics.Expo is
// used, in any package.
var Analyzer = &analysis.Analyzer{
	Name: "metricnames",
	Doc:  "requires metrics registered through metrics.Expo to use constant ptucker_-prefixed snake_case names, with _total reserved for counters, _bucket/_sum/_count reserved for histogram exposition, and unit suffixes on histograms",
	Run:  run,
}

const metricsPkg = "repro/internal/metrics"

var (
	nameRE  = regexp.MustCompile(`^ptucker_[a-z0-9_]+$`)
	labelRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
)

// methodKind classifies one Expo registration method.
type methodKind struct {
	counter   bool // emits a counter: name must end _total
	histogram bool // emits a histogram: name must end in a unit suffix
}

// methods maps Expo method name -> its metric kind.
var methods = map[string]methodKind{
	"Counter":      {counter: true},
	"CounterFloat": {counter: true},
	"CounterVec":   {counter: true},
	"Gauge":        {},
	"GaugeInt":     {},
	"GaugeIntVec":  {},
	"Histogram":    {histogram: true},
	"HistogramVec": {histogram: true},
}

// reservedSuffixes are appended by the histogram exposition to its own
// series; no user-supplied name may end in one.
var reservedSuffixes = []string{"_bucket", "_sum", "_count"}

// histUnitSuffixes are the unit suffixes a histogram name must end in
// (matching the contract documented in package metrics).
var histUnitSuffixes = []string{"_seconds", "_bytes", "_size"}

func reservedSuffix(name string) string {
	for _, s := range reservedSuffixes {
		if strings.HasSuffix(name, s) {
			return s
		}
	}
	return ""
}

func hasUnitSuffix(name string) bool {
	for _, s := range histUnitSuffixes {
		if strings.HasSuffix(name, s) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// WithConstLabel stamps its label onto every sample the derived
		// writer emits, so a malformed label name corrupts whole expositions
		// at once — hold it to the same contract as vec labels.
		if sel.Sel.Name == "WithConstLabel" && isExpoMethod(pass, sel) && len(call.Args) >= 1 {
			if label, labelConst := constString(pass, call.Args[0]); !labelConst || !labelRE.MatchString(label) {
				pass.Reportf(call.Args[0].Pos(),
					"label name passed to Expo.WithConstLabel must be a constant snake_case identifier")
			}
			return true
		}
		kind, ok := methods[sel.Sel.Name]
		if !ok || !isExpoMethod(pass, sel) || len(call.Args) < 2 {
			return true
		}
		method := sel.Sel.Name

		name, nameConst := constString(pass, call.Args[0])
		switch {
		case !nameConst:
			pass.Reportf(call.Args[0].Pos(),
				"metric name passed to Expo.%s is not a compile-time constant; names must be auditable", method)
		case !nameRE.MatchString(name):
			pass.Reportf(call.Args[0].Pos(),
				"metric name %q does not match ^ptucker_[a-z0-9_]+$", name)
		case reservedSuffix(name) != "":
			pass.Reportf(call.Args[0].Pos(),
				"metric name %q ends in %s, which is reserved for histogram exposition series", name, reservedSuffix(name))
		case kind.counter && !strings.HasSuffix(name, "_total"):
			pass.Reportf(call.Args[0].Pos(),
				"counter %q must end in _total", name)
		case kind.histogram && !hasUnitSuffix(name):
			pass.Reportf(call.Args[0].Pos(),
				"histogram %q must end in a unit suffix (_seconds, _bytes, or _size)", name)
		case !kind.counter && strings.HasSuffix(name, "_total"):
			pass.Reportf(call.Args[0].Pos(),
				"gauge %q must not end in _total (_total is reserved for counters)", name)
		}

		if help, helpConst := constString(pass, call.Args[1]); !helpConst || help == "" {
			pass.Reportf(call.Args[1].Pos(),
				"metric registered via Expo.%s needs a non-empty constant help string", method)
		}

		if strings.HasSuffix(method, "Vec") && len(call.Args) >= 3 {
			if label, labelConst := constString(pass, call.Args[2]); !labelConst || !labelRE.MatchString(label) {
				pass.Reportf(call.Args[2].Pos(),
					"label name passed to Expo.%s must be a constant snake_case identifier", method)
			}
		}
		return true
	})
	return nil
}

// isExpoMethod reports whether sel resolves to a method on metrics.Expo.
func isExpoMethod(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	var fn *types.Func
	if s := pass.Info.Selections[sel]; s != nil {
		fn, _ = s.Obj().(*types.Func)
	} else {
		fn, _ = pass.Info.Uses[sel.Sel].(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != metricsPkg {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	return isNamed && named.Obj().Name() == "Expo"
}

// constString evaluates expr as a compile-time string constant.
func constString(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
