// Package faker is the negative metricnames fixture: a local type that
// happens to share Expo's method names is not a metrics registration point.
package faker

import "io"

// Expo is an unrelated local type.
type Expo struct{ w io.Writer }

// Counter on the local type takes arbitrary names.
func (e *Expo) Counter(name, help string, value int64) {}

// Record uses names the real analyzer would reject.
func Record(w io.Writer) {
	e := &Expo{w: w}
	e.Counter("whatever-goes", "", 1)
}
