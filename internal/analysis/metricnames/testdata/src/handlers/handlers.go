// Package handlers is the metricnames fixture: a metrics endpoint that
// registers well- and badly-named series through metrics.Expo.
package handlers

import (
	"io"

	"repro/internal/metrics"
)

var requestCount int64

func runtimeName() string {
	if requestCount > 0 {
		return "ptucker_busy"
	}
	return "ptucker_idle"
}

func emit(sample func(string, int64)) {
	sample("predict", requestCount)
}

func emitHist(sample func(string, *metrics.Histogram)) {
	sample("predict", metrics.NewDurationHistogram())
}

// WriteMetrics exercises every rule.
func WriteMetrics(w io.Writer, served int64, rmse float64) {
	e := metrics.NewExpo(w)
	h := metrics.NewDurationHistogram()

	// Conforming registrations: no findings.
	e.Counter("ptucker_requests_total", "Requests served.", served)
	e.Gauge("ptucker_holdout_rmse", "Holdout RMSE.", rmse)
	e.GaugeInt("ptucker_model_order", "Tensor order.", 3)
	e.CounterVec("ptucker_hits_total", "Hits per endpoint.", "endpoint", emit)
	e.CounterFloat("ptucker_gc_pause_seconds_total", "GC pause seconds.", rmse)
	e.Histogram("ptucker_fsync_duration_seconds", "Fsync latency.", h)
	e.Histogram("ptucker_response_bytes", "Response sizes.", h)
	e.Histogram("ptucker_flush_size", "Batch sizes.", h)
	e.HistogramVec("ptucker_request_duration_seconds", "Request latency.", "endpoint", emitHist)

	e.Counter("ptucker_requests", "Requests served.", served)         // want `metricnames: counter "ptucker_requests" must end in _total`
	e.GaugeInt("ptucker_depth_total", "Queue depth.", served)         // want `metricnames: gauge "ptucker_depth_total" must not end in _total`
	e.Counter("requests_total", "Requests served.", served)           // want `metricnames: metric name "requests_total" does not match`
	e.Gauge("ptucker_Holdout_rmse", "Holdout RMSE.", rmse)            // want `metricnames: metric name "ptucker_Holdout_rmse" does not match`
	e.Counter(runtimeName(), "Mood.", served)                         // want `metricnames: metric name passed to Expo.Counter is not a compile-time constant`
	e.Gauge("ptucker_rmse", "", rmse)                                 // want `metricnames: metric registered via Expo.Gauge needs a non-empty constant help string`
	e.GaugeIntVec("ptucker_depth", "Depth per shard.", "Shard", emit) // want `metricnames: label name passed to Expo.GaugeIntVec must be a constant snake_case identifier`

	e.CounterFloat("ptucker_gc_pause_seconds", "GC pause seconds.", rmse)       // want `metricnames: counter "ptucker_gc_pause_seconds" must end in _total`
	e.Histogram("ptucker_request_duration", "Request latency.", h)              // want `metricnames: histogram "ptucker_request_duration" must end in a unit suffix \(_seconds, _bytes, or _size\)`
	e.HistogramVec("ptucker_flush_ms", "Flush latency.", "shard", emitHist)     // want `metricnames: histogram "ptucker_flush_ms" must end in a unit suffix \(_seconds, _bytes, or _size\)`
	e.Gauge("ptucker_request_duration_seconds_bucket", "Sneaky.", rmse)         // want `metricnames: metric name "ptucker_request_duration_seconds_bucket" ends in _bucket, which is reserved for histogram exposition series`
	e.Counter("ptucker_latency_sum", "Sneaky.", served)                         // want `metricnames: metric name "ptucker_latency_sum" ends in _sum, which is reserved for histogram exposition series`
	e.Histogram("ptucker_latency_count", "Sneaky.", h)                          // want `metricnames: metric name "ptucker_latency_count" ends in _count, which is reserved for histogram exposition series`
	e.Histogram("ptucker_fsyncs_total", "Fsyncs.", h)                           // want `metricnames: histogram "ptucker_fsyncs_total" must end in a unit suffix \(_seconds, _bytes, or _size\)`
	e.HistogramVec("ptucker_wait_seconds", "Waits.", "Endpoint Name", emitHist) // want `metricnames: label name passed to Expo.HistogramVec must be a constant snake_case identifier`
	e.Histogram("ptucker_io_seconds", "", h)                                    // want `metricnames: metric registered via Expo.Histogram needs a non-empty constant help string`

	// Constant labels stamp every sample of a derived writer: same label
	// contract as the Vec variants, checked at the derivation point.
	e.WithConstLabel("model", "alpha").Counter("ptucker_tenant_requests_total", "Per-tenant requests.", served)
	e.WithConstLabel("Model", "alpha")      // want `metricnames: label name passed to Expo.WithConstLabel must be a constant snake_case identifier`
	e.WithConstLabel(runtimeName(), "busy") // want `metricnames: label name passed to Expo.WithConstLabel must be a constant snake_case identifier`

	//ptlint:ignore metricnames legacy dashboard series kept until the Q3 dashboard migration
	e.Counter("legacy_requests_total", "Legacy series.", served)
}
