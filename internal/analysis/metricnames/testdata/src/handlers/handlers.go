// Package handlers is the metricnames fixture: a metrics endpoint that
// registers well- and badly-named series through metrics.Expo.
package handlers

import (
	"io"

	"repro/internal/metrics"
)

var requestCount int64

func runtimeName() string {
	if requestCount > 0 {
		return "ptucker_busy"
	}
	return "ptucker_idle"
}

func emit(sample func(string, int64)) {
	sample("predict", requestCount)
}

// WriteMetrics exercises every rule.
func WriteMetrics(w io.Writer, served int64, rmse float64) {
	e := metrics.NewExpo(w)

	// Conforming registrations: no findings.
	e.Counter("ptucker_requests_total", "Requests served.", served)
	e.Gauge("ptucker_holdout_rmse", "Holdout RMSE.", rmse)
	e.GaugeInt("ptucker_model_order", "Tensor order.", 3)
	e.CounterVec("ptucker_hits_total", "Hits per endpoint.", "endpoint", emit)

	e.Counter("ptucker_requests", "Requests served.", served)         // want `metricnames: counter "ptucker_requests" must end in _total`
	e.GaugeInt("ptucker_depth_total", "Queue depth.", served)         // want `metricnames: gauge "ptucker_depth_total" must not end in _total`
	e.Counter("requests_total", "Requests served.", served)           // want `metricnames: metric name "requests_total" does not match`
	e.Gauge("ptucker_Holdout_rmse", "Holdout RMSE.", rmse)            // want `metricnames: metric name "ptucker_Holdout_rmse" does not match`
	e.Counter(runtimeName(), "Mood.", served)                         // want `metricnames: metric name passed to Expo.Counter is not a compile-time constant`
	e.Gauge("ptucker_rmse", "", rmse)                                 // want `metricnames: metric registered via Expo.Gauge needs a non-empty constant help string`
	e.GaugeIntVec("ptucker_depth", "Depth per shard.", "Shard", emit) // want `metricnames: label name passed to Expo.GaugeIntVec must be a constant snake_case identifier`

	//ptlint:ignore metricnames legacy dashboard series kept until the Q3 dashboard migration
	e.Counter("legacy_requests_total", "Legacy series.", served)
}
