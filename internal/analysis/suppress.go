package analysis

import (
	"strings"
)

// The suppression mechanism: a finding can be silenced at its site with
//
//	//ptlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the flagged line (trailing comment) or on the line directly above it.
// The reason is part of the contract — an ignore without one suppresses
// nothing and is itself reported, so the codebase cannot accumulate
// unexplained exceptions. Naming an analyzer that does not exist is also
// reported: a typo would otherwise silently disarm the marker.

const ignorePrefix = "ptlint:ignore"

// directive is one parsed ptlint:ignore marker.
type directive struct {
	line      int
	analyzers []string
	reason    string
}

// suppress applies the package's ignore directives to diags: suppressed
// findings are dropped, malformed or mistargeted directives are appended as
// analyzer "ptlint" findings. known is the set of valid analyzer names.
func suppress(pkg *Package, diags []Diagnostic, known map[string]bool) []Diagnostic {
	// byLine[analyzer][line] reports a well-formed directive covering line.
	covered := map[string]map[int]bool{}
	var meta []Diagnostic

	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimLeft(text, " \t")
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, ignorePrefix)
				line := pkg.Fset.Position(c.Pos()).Line

				names, reason := splitDirective(rest)
				if len(names) == 0 {
					meta = append(meta, Diagnostic{
						Analyzer: "ptlint",
						Pos:      c.Pos(),
						Message:  "ptlint:ignore names no analyzer (want //ptlint:ignore <analyzer> <reason>)",
					})
					continue
				}
				if reason == "" {
					meta = append(meta, Diagnostic{
						Analyzer: "ptlint",
						Pos:      c.Pos(),
						Message: "ptlint:ignore is missing its reason — every suppression must say why the invariant holds anyway (//ptlint:ignore " +
							strings.Join(names, ",") + " <reason>)",
					})
					continue // an unexplained marker suppresses nothing
				}
				for _, n := range names {
					if !known[n] {
						meta = append(meta, Diagnostic{
							Analyzer: "ptlint",
							Pos:      c.Pos(),
							Message:  "ptlint:ignore names unknown analyzer " + quoteList([]string{n}),
						})
						continue
					}
					if covered[n] == nil {
						covered[n] = map[int]bool{}
					}
					// A trailing marker covers its own line; a standalone
					// marker covers the line below it.
					covered[n][line] = true
					covered[n][line+1] = true
				}
			}
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		line := pkg.Fset.Position(d.Pos).Line
		if covered[d.Analyzer][line] {
			continue
		}
		kept = append(kept, d)
	}
	return append(kept, meta...)
}

// splitDirective parses "<names> <reason...>" after the ptlint:ignore
// prefix. Names are comma-separated with no interior spaces.
func splitDirective(rest string) (names []string, reason string) {
	rest = strings.TrimLeft(rest, " \t")
	if rest == "" {
		return nil, ""
	}
	fields := strings.Fields(rest)
	for _, n := range strings.Split(fields[0], ",") {
		if n != "" {
			names = append(names, n)
		}
	}
	reason = strings.TrimSpace(strings.TrimPrefix(rest, fields[0]))
	return names, reason
}
