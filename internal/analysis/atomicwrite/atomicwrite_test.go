package atomicwrite_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicwrite"
)

func TestAtomicWrite(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/store", atomicwrite.Analyzer)
}

func TestAtomicWriteSkipsOtherPackages(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/report", atomicwrite.Analyzer)
}
