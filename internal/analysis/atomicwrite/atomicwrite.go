// Package atomicwrite enforces the durability layer's one commit protocol:
// in the store and serve packages, files are created and renamed only
// through the shared writeAtomic helper (temp file in the target directory,
// fsync, rename, directory fsync). A raw os.WriteFile or os.Create in
// those packages can leave a torn file where a crash-consistent reader
// expects either the old state or the new one — exactly the class of bug
// the journal and snapshot formats were built to rule out.
//
// Flagged in store/serve, outside the writeAtomic function itself:
//
//   - os.Create, os.WriteFile, os.CreateTemp, os.Rename
//   - os.OpenFile whose flags include O_CREATE or O_TRUNC
//
// Opening for reading (os.Open, os.OpenFile with O_RDONLY) is untouched.
// Legitimate in-place open paths (the append-only journal, whose torn
// tails are handled by CRC framing) carry a justified //ptlint:ignore.
package atomicwrite

import (
	"go/ast"
	"go/constant"
	"go/types"
	"os"

	"repro/internal/analysis"
)

// Analyzer is the atomicwrite check, scoped to the packages that own
// crash-consistent state.
var Analyzer = &analysis.Analyzer{
	Name:     "atomicwrite",
	Doc:      "requires file creation/rename in store and serve to go through the writeAtomic helper",
	Packages: []string{"store", "serve"},
	Run:      run,
}

// creators are the os functions that produce or replace a file outright.
var creators = map[string]bool{
	"Create": true, "WriteFile": true, "CreateTemp": true, "Rename": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// writeAtomic is the blessed implementation; everything it does
			// is the protocol being enforced.
			if fd.Name.Name == "writeAtomic" && fd.Recv == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := pass.Info.Uses[id].(*types.PkgName)
				if !ok || pn.Imported().Path() != "os" {
					return true
				}
				name := sel.Sel.Name
				switch {
				case creators[name]:
					pass.Reportf(call.Pos(),
						"os.%s bypasses the writeAtomic commit protocol (temp+fsync+rename); a crash here can expose a torn file", name)
				case name == "OpenFile" && len(call.Args) >= 2 && opensForWrite(pass, call.Args[1]):
					pass.Reportf(call.Pos(),
						"os.OpenFile with O_CREATE/O_TRUNC bypasses the writeAtomic commit protocol (temp+fsync+rename); a crash here can expose a torn file")
				}
				return true
			})
		}
	}
	return nil
}

// opensForWrite reports whether the OpenFile flags expression includes
// O_CREATE or O_TRUNC. Flags that cannot be evaluated at compile time are
// treated as writing (conservative).
func opensForWrite(pass *analysis.Pass, flags ast.Expr) bool {
	tv, ok := pass.Info.Types[flags]
	if !ok || tv.Value == nil {
		return true
	}
	v, ok := constant.Int64Val(tv.Value)
	if !ok {
		return true
	}
	return v&int64(os.O_CREATE|os.O_TRUNC) != 0
}
