// Package store is an atomicwrite fixture carrying the durable package's
// name, including its own writeAtomic helper.
package store

import (
	"os"
	"path/filepath"
)

// writeAtomic mirrors the real helper's shape; its raw file operations ARE
// the commit protocol and are exempt.
func writeAtomic(path string, fill func(*os.File) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if err := fill(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		tmp.Close()
		return err
	}
	return tmp.Close()
}

// SaveGood routes the write through the helper.
func SaveGood(path string, data []byte) error {
	return writeAtomic(path, func(f *os.File) error {
		_, err := f.Write(data)
		return err
	})
}

// SaveTorn writes in place — a crash mid-write leaves a torn file.
func SaveTorn(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `atomicwrite: os.WriteFile bypasses`
}

// SaveCreate creates and fills without the rename commit.
func SaveCreate(path string, data []byte) error {
	f, err := os.Create(path) // want `atomicwrite: os.Create bypasses`
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SaveTrunc truncates in place via OpenFile.
func SaveTrunc(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644) // want `atomicwrite: os.OpenFile with O_CREATE/O_TRUNC`
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	f.Close()
	return err
}

// ReadBack opens read-only: out of scope.
func ReadBack(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_RDONLY, 0)
}

// AppendJournal opens an append-in-place log with its justification, the
// pattern the real journal uses.
func AppendJournal(path string) (*os.File, error) {
	//ptlint:ignore atomicwrite append-only log; torn tails are CRC-framed and truncated on open
	return os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
}
