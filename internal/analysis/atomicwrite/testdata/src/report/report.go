// Package report is the negative atomicwrite fixture: a package outside
// store/serve writes files however it likes — only the durable state's
// owners are held to the commit protocol.
package report

import "os"

// Dump writes a throwaway report in place.
func Dump(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
