package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Fixture testing in the style of x/tools' analysistest: a testdata
// directory holds a small package, lines that should be flagged carry a
//
//	// want `regexp`
//
// comment (several per line allowed), and RunFixture fails the test on any
// mismatch in either direction. Diagnostics are matched after suppression
// filtering, so fixtures can also pin the ptlint:ignore mechanism itself.

var wantRE = regexp.MustCompile("// want (.*)$")
var wantArgRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// RunFixture loads dir as one package, runs the analyzers, and compares
// the (suppression-filtered) findings against the fixture's want comments.
func RunFixture(t *testing.T, dir string, analyzers ...*Analyzer) {
	t.Helper()
	l := NewLoader(moduleRoot(t))
	pkg, err := l.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := Run(pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}

	type want struct {
		file string
		line int
		re   *regexp.Regexp
		hit  bool
	}
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				args := wantArgRE.FindAllStringSubmatch(m[1], -1)
				if len(args) == 0 {
					t.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
					continue
				}
				for _, a := range args {
					expr := a[1]
					if expr == "" {
						expr = a[2]
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, expr, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		text := d.Analyzer + ": " + d.Message
		matched := false
		for _, w := range wants {
			if w.hit || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(text) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected finding: %s", pos.Filename, pos.Line, text)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.re)
		}
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod,
// the directory the loader's `go list` calls must run in.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatalf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// FormatDiagnostic renders one finding the way ptucker-vet prints it.
func FormatDiagnostic(pkg *Package, d Diagnostic) string {
	pos := pkg.Fset.Position(d.Pos)
	return fmt.Sprintf("%s:%d:%d: %s: %s", rel(pos.Filename), pos.Line, pos.Column, d.Analyzer, d.Message)
}

func rel(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	if r, err := filepath.Rel(wd, path); err == nil && !strings.HasPrefix(r, "..") {
		return r
	}
	return path
}
