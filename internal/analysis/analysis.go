// Package analysis is a small, dependency-free static-analysis framework
// mirroring the shape of golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic), built only on the standard library's go/ast, go/parser and
// go/types. The repository pins its deep invariants — deterministic float
// accumulation, the serving layer's lock hierarchy, journal-before-apply
// durability — with project-specific analyzers that run as a blocking CI
// step (cmd/ptucker-vet); the upstream framework is not vendored so the
// module stays free of third-party dependencies and builds offline.
//
// Packages are loaded from source and typechecked against compiled export
// data obtained from `go list -export` (see load.go), the same mechanism
// the upstream driver uses. Analyzers report Diagnostics; findings can be
// suppressed at the site with a justified marker comment:
//
//	//ptlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the flagged line or the line directly above it. The reason is
// mandatory — a marker without one does not suppress anything and is itself
// reported (see suppress.go) — so every exception to an invariant carries
// its justification in the source.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in findings and in ptlint:ignore
	// markers. Lowercase, no spaces.
	Name string
	// Doc is a short description, shown by `ptucker-vet -list`.
	Doc string
	// Packages, when non-empty, restricts the analyzer to packages with
	// these names (not import paths — the numeric packages are addressed
	// as core, hooi, mat, ...). Empty means every package.
	Packages []string
	// Run reports the analyzer's findings on one package via pass.Report.
	Run func(pass *Pass) error
}

// AppliesTo reports whether the analyzer runs on a package with the given
// package name.
func (a *Analyzer) AppliesTo(pkgName string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if p == pkgName {
			return true
		}
	}
	return false
}

// Pass carries one analyzer run over one typechecked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Inspect walks every file of the pass in source order.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Run executes the analyzers applicable to pkg and returns their findings
// with suppression markers applied (suppressed findings removed, malformed
// or unknown markers reported as analyzer "ptlint"). Findings are sorted by
// position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
		if !a.AppliesTo(pkg.Name) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	diags = suppress(pkg, diags, known)
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
