package shot

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hooi"
	"repro/internal/mat"
	"repro/internal/tensor"
)

func fullLowRank(rng *rand.Rand, dims, ranks []int) *tensor.Coord {
	factors := make([]*mat.Dense, len(dims))
	for m := range dims {
		a := mat.NewDense(dims[m], ranks[m])
		for i := range a.Data() {
			a.Data()[i] = rng.NormFloat64()
		}
		factors[m] = a
	}
	g := tensor.NewDenseTensor(ranks)
	for i := range g.Data() {
		g.Data()[i] = rng.NormFloat64()
	}
	dense := g.ModeProductChain(factors)
	out := tensor.NewCoord(dims)
	idx := make([]int, len(dims))
	for off, v := range dense.Data() {
		dense.IndexOf(off, idx)
		out.MustAppend(idx, v)
	}
	return out
}

func TestSHOTRecoversLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := fullLowRank(rng, []int{7, 6, 5}, []int{2, 2, 2})
	m, err := Decompose(x, Config{Ranks: []int{2, 2, 2}, MaxIters: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fit := m.Trace[len(m.Trace)-1].Fit; fit < 0.999 {
		t.Fatalf("fit = %v want ≈1 for exact-rank input", fit)
	}
}

// S-HOT computes the same mathematical update as HOOI (leading left singular
// vectors of the same implicit Y(n)), so from identical initializations both
// must reach the same fit.
func TestSHOTMatchesHOOIFit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := fullLowRank(rng, []int{8, 7, 6}, []int{3, 3, 3})
	mh, err := hooi.Decompose(x, hooi.Config{Ranks: []int{2, 2, 2}, MaxIters: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := Decompose(x, Config{Ranks: []int{2, 2, 2}, MaxIters: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	fh := mh.Trace[len(mh.Trace)-1].Fit
	fs := ms.Trace[len(ms.Trace)-1].Fit
	if math.Abs(fh-fs) > 1e-6 {
		t.Fatalf("HOOI fit %v vs S-HOT fit %v", fh, fs)
	}
}

func TestSHOTFactorsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := fullLowRank(rng, []int{6, 6, 6}, []int{2, 2, 2})
	m, err := Decompose(x, Config{Ranks: []int{2, 2, 2}, MaxIters: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for k, a := range m.Factors {
		if !mat.Gram(a).Equal(mat.Identity(a.Cols()), 1e-8) {
			t.Fatalf("factor %d not orthonormal", k)
		}
	}
}

// The defining property of S-HOT: it succeeds on dimensionalities where the
// materialized Y(n) of conventional HOOI blows the memory budget, because it
// never allocates an In-sized intermediate.
func TestSHOTAvoidsIntermediateExplosion(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	dims := []int{200000, 150000, 100000}
	x := tensor.NewCoord(dims)
	idx := make([]int, 3)
	for x.NNZ() < 100 {
		for k := range idx {
			idx[k] = rng.Intn(dims[k])
		}
		x.MustAppend(idx, rng.Float64())
	}
	budget := int64(1 << 20) // 1 MiB: far below the In·K cells of Y(n)
	if _, err := hooi.Decompose(x, hooi.Config{Ranks: []int{2, 2, 2}, MaxIters: 1, MemoryBudgetBytes: budget}); err == nil {
		t.Fatal("HOOI should exceed the budget on this shape")
	}
	m, err := Decompose(x, Config{Ranks: []int{2, 2, 2}, MaxIters: 1, Seed: 7})
	if err != nil {
		t.Fatalf("S-HOT must run where HOOI OOMs: %v", err)
	}
	if len(m.Trace) != 1 {
		t.Fatal("expected one completed iteration")
	}
}

func TestSHOTValidation(t *testing.T) {
	x := tensor.NewCoord([]int{4, 4})
	x.MustAppend([]int{0, 0}, 1)
	bad := []Config{
		{Ranks: []int{2}, MaxIters: 1},
		{Ranks: []int{0, 2}, MaxIters: 1},
		{Ranks: []int{9, 2}, MaxIters: 1},
		{Ranks: []int{2, 2}, MaxIters: 0},
	}
	for i, cfg := range bad {
		if _, err := Decompose(x, cfg); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	if _, err := Decompose(tensor.NewCoord([]int{4, 4}), Config{Ranks: []int{2, 2}, MaxIters: 1}); err == nil {
		t.Fatal("empty tensor must be rejected")
	}
}
