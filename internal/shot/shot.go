// Package shot implements an S-HOT-style Tucker baseline (Oh et al., WSDM
// 2017, reference [17] of the paper): higher-order orthogonal iteration that
// avoids the M-bottleneck by never materializing the dense TTMc result Y(n).
//
// Instead of storing the In × J^(N-1) matrix, each mode update streams the
// nonzeros grouped by their mode-n index, accumulating the small Gram matrix
// Y(n)ᵀY(n) one row at a time, eigendecomposes it, and reconstructs the
// leading left singular vectors with a second streaming pass. Intermediate
// memory is O(J^(2(N-1))) — independent of In, which is the property that
// lets S-HOT scale to large dimensionalities (Figure 6(b)) while remaining a
// zero-filling method with the accuracy ceiling Figure 11 shows.
package shot

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/mat"
	"repro/internal/tensor"
	"repro/internal/ttm"
)

// Config controls an S-HOT run.
type Config struct {
	// Ranks are the target core dimensionalities J1..JN.
	Ranks []int
	// MaxIters bounds the ALS sweeps.
	MaxIters int
	// Tol stops iteration when the fit improves by less than Tol. Zero
	// disables the check.
	Tol float64
	// Seed drives the random factor initialization.
	Seed int64
}

// Decompose runs the on-the-fly HOOI on x (missing entries = zeros).
func Decompose(x *tensor.Coord, cfg Config) (*ttm.Model, error) {
	if len(cfg.Ranks) != x.Order() {
		return nil, fmt.Errorf("shot: %d ranks for order-%d tensor", len(cfg.Ranks), x.Order())
	}
	for n, j := range cfg.Ranks {
		if j <= 0 || j > x.Dim(n) {
			return nil, fmt.Errorf("shot: rank J%d=%d outside [1, %d]", n+1, j, x.Dim(n))
		}
	}
	if cfg.MaxIters <= 0 {
		return nil, fmt.Errorf("shot: MaxIters must be positive")
	}
	if x.NNZ() == 0 {
		return nil, fmt.Errorf("shot: empty tensor")
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	factors := ttm.RandomOrthonormalFactors(x.Dims(), cfg.Ranks, rng)
	omega := tensor.NewModeIndex(x)
	model := &ttm.Model{Method: "S-HOT", Factors: factors}

	xNorm := x.Norm()
	prevFit := math.Inf(-1)
	for iter := 1; iter <= cfg.MaxIters; iter++ {
		start := time.Now()
		for n := range factors {
			u, err := updateMode(x, omega, factors, n, cfg.Ranks[n])
			if err != nil {
				return nil, fmt.Errorf("shot: mode %d update failed: %w", n, err)
			}
			factors[n] = u
			model.Factors = factors
		}
		g := ttm.DenseCore(x, factors)
		model.Core = g
		fit := zeroFillFit(xNorm, g.Norm())
		model.Trace = append(model.Trace, ttm.IterStats{Iter: iter, Fit: fit, Elapsed: time.Since(start)})
		if cfg.Tol > 0 && fit-prevFit < cfg.Tol {
			break
		}
		prevFit = fit
	}
	return model, nil
}

// updateMode computes the Jn leading left singular vectors of the implicit
// Y(n) without materializing it: pass 1 accumulates Gram = Σ_in y_in·y_inᵀ
// row by row; pass 2 reconstructs U = Y·V·Σ⁻¹ row by row. Only rows with
// observed entries are nonzero in Y(n), so both passes skip empty slices.
//
// The on-the-fly route pays off when In ≫ K = J^(N-1) — the M-bottleneck
// regime. When In ≤ K (high order, short modes) the full Y(n) is no larger
// than the K×K Gram itself, so the update falls back to materializing it and
// letting the SVD work on the cheap side; intermediate memory stays bounded
// by O(K²) either way.
func updateMode(x *tensor.Coord, omega *tensor.ModeIndex, factors []*mat.Dense, n, jn int) (*mat.Dense, error) {
	k := ttm.KronWidth(factors, n)
	if x.Dim(n) <= k {
		y, err := ttm.MaterializeY(x, factors, n, -1)
		if err != nil {
			return nil, err
		}
		u, err := mat.LeadingLeftSingularVectors(y, jn)
		if err != nil {
			return nil, err
		}
		return u, nil
	}
	gram := mat.NewDense(k, k)
	row := make([]float64, k)
	scratch := make([]float64, k)

	in := x.Dim(n)
	for i := 0; i < in; i++ {
		entries := omega.Slice(n, i)
		if len(entries) == 0 {
			continue
		}
		for q := range row {
			row[q] = 0
		}
		for _, e := range entries {
			ttm.ExpandRow(row, factors, x.Index(e), n, x.Value(e), scratch)
		}
		// Gram += row·rowᵀ (upper triangle, mirrored afterwards).
		for a := 0; a < k; a++ {
			ra := row[a]
			if ra == 0 {
				continue
			}
			gr := gram.Row(a)
			for b := a; b < k; b++ {
				gr[b] += ra * row[b]
			}
		}
	}
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			gram.Set(b, a, gram.At(a, b))
		}
	}

	// Only the jn leading eigenpairs of the Gram matrix are needed;
	// EigenTopK dispatches to truncated subspace iteration once K grows
	// beyond the dense-Jacobi regime (high tensor orders).
	vals, v, err := mat.EigenTopK(gram, jn)
	if err != nil {
		return nil, err
	}
	sig := make([]float64, jn)
	for j := 0; j < jn; j++ {
		ev := vals[j]
		if ev < 0 {
			ev = 0
		}
		sig[j] = math.Sqrt(ev)
	}

	// Pass 2: U rows from y_in · V · Σ⁻¹.
	u := mat.NewDense(in, jn)
	for i := 0; i < in; i++ {
		entries := omega.Slice(n, i)
		if len(entries) == 0 {
			continue
		}
		for q := range row {
			row[q] = 0
		}
		for _, e := range entries {
			ttm.ExpandRow(row, factors, x.Index(e), n, x.Value(e), scratch)
		}
		urow := u.Row(i)
		for j := 0; j < jn; j++ {
			if sig[j] <= 1e-12 {
				continue
			}
			var dot float64
			for q := 0; q < k; q++ {
				dot += row[q] * v.At(q, j)
			}
			urow[j] = dot / sig[j]
		}
	}
	// Rank-deficient or empty columns must still be orthonormal for the
	// HOOI invariants to hold.
	mat.GramSchmidt(u)
	completeRank(u)
	return u, nil
}

// completeRank replaces zero columns left by Gram-Schmidt with canonical unit
// vectors orthogonal to the rest, so downstream core extraction stays sound.
func completeRank(u *mat.Dense) {
	m, n := u.Rows(), u.Cols()
	for j := 0; j < n; j++ {
		var nrm float64
		for i := 0; i < m; i++ {
			nrm += u.At(i, j) * u.At(i, j)
		}
		if nrm > 0.5 {
			continue
		}
		for e := 0; e < m; e++ {
			for i := 0; i < m; i++ {
				u.Set(i, j, 0)
			}
			u.Set(e, j, 1)
			for c := 0; c < n; c++ {
				if c == j {
					continue
				}
				var dot float64
				for i := 0; i < m; i++ {
					dot += u.At(i, c) * u.At(i, j)
				}
				for i := 0; i < m; i++ {
					u.Add(i, j, -dot*u.At(i, c))
				}
			}
			var rn float64
			for i := 0; i < m; i++ {
				rn += u.At(i, j) * u.At(i, j)
			}
			if rn > 1e-6 {
				s := 1 / math.Sqrt(rn)
				for i := 0; i < m; i++ {
					u.Set(i, j, u.At(i, j)*s)
				}
				break
			}
		}
	}
}

func zeroFillFit(xNorm, gNorm float64) float64 {
	if xNorm == 0 {
		return 1
	}
	diff := xNorm*xNorm - gNorm*gNorm
	if diff < 0 {
		diff = 0
	}
	return 1 - math.Sqrt(diff)/xNorm
}
