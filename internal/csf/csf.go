// Package csf implements the Tucker-CSF baseline (Smith & Karypis, Euro-Par
// 2017, reference [20] of the paper): higher-order orthogonal iteration whose
// tensor-times-matrix chains (TTMc) run over a Compressed Sparse Fiber
// structure.
//
// CSF stores the nonzeros as a forest: one tree level per mode (in a fixed
// permutation), where a node exists for every distinct index prefix. A TTMc
// traversal computes the Kronecker partial product of factor rows once per
// node and shares it across the node's entire subtree — the reuse that makes
// CSF faster than per-nonzero expansion whenever prefixes repeat. The paper
// configures SPLATT with one CSF allocation; this package mirrors that: a
// single tree ordered by increasing mode dimensionality serves every mode.
package csf

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/mat"
	"repro/internal/tensor"
	"repro/internal/ttm"
)

// Tensor is a compressed-sparse-fiber view of a sparse tensor. Level l of the
// tree corresponds to original mode Perm[l]; level 0 nodes are the forest
// roots and level N-1 nodes are the leaves, aligned one-to-one with values.
type Tensor struct {
	dims []int
	perm []int // perm[level] = original mode
	// ids[l][node] is the coordinate (in mode perm[l]) of the node.
	ids [][]int
	// ptr[l][node]..ptr[l][node+1] are the node's children at level l+1.
	// len(ptr[l]) = numNodes(l)+1; the last level has no ptr.
	ptr [][]int
	// vals[leaf] is the nonzero value of the leaf node.
	vals []float64
}

// Build constructs a CSF tree for x with levels ordered by increasing mode
// dimensionality (short modes near the root maximize prefix sharing).
func Build(x *tensor.Coord) *Tensor {
	n := x.Order()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return x.Dim(perm[a]) < x.Dim(perm[b]) })

	// Sort entry ids lexicographically in permuted coordinate order.
	order := make([]int, x.NNZ())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := x.Index(order[a]), x.Index(order[b])
		for _, m := range perm {
			if ia[m] != ib[m] {
				return ia[m] < ib[m]
			}
		}
		return false
	})

	t := &Tensor{
		dims: append([]int(nil), x.Dims()...),
		perm: perm,
		ids:  make([][]int, n),
		ptr:  make([][]int, n-1),
		vals: make([]float64, 0, x.NNZ()),
	}
	// prev holds the previous entry's permuted coordinates; start sentinel.
	prev := make([]int, n)
	for i := range prev {
		prev[i] = -1
	}
	for _, e := range order {
		idx := x.Index(e)
		// Find the first level where the path diverges.
		div := 0
		for ; div < n; div++ {
			if idx[perm[div]] != prev[div] {
				break
			}
		}
		if div == n {
			// Exact duplicate coordinates: accumulate into the same leaf.
			t.vals[len(t.vals)-1] += x.Value(e)
			continue
		}
		for l := div; l < n; l++ {
			if l < n-1 {
				// Opening a new node at level l: record where its children
				// begin.
				t.ptr[l] = append(t.ptr[l], len(t.ids[l+1]))
			}
			t.ids[l] = append(t.ids[l], idx[perm[l]])
			prev[l] = idx[perm[l]]
		}
		t.vals = append(t.vals, x.Value(e))
	}
	// Close the ptr arrays with end sentinels.
	for l := 0; l < n-1; l++ {
		t.ptr[l] = append(t.ptr[l], len(t.ids[l+1]))
	}
	return t
}

// NNZ returns the number of distinct stored nonzeros.
func (t *Tensor) NNZ() int { return len(t.vals) }

// Levels returns the node count per level, a size diagnostic: compression is
// visible as shrinking counts toward the root.
func (t *Tensor) Levels() []int {
	out := make([]int, len(t.ids))
	for l, ids := range t.ids {
		out[l] = len(ids)
	}
	return out
}

// TTMc computes Y(mode) = (X ×_{m≠mode} A(m)ᵀ)(mode) as an I_mode × K dense
// matrix. The column basis is the Kronecker order of the tree levels
// (excluding the target mode), which is a fixed permutation of the canonical
// one — harmless, because only the column space of Y feeds the SVD. Partial
// products are computed once per tree node and reused across the subtree.
func (t *Tensor) TTMc(factors []*mat.Dense, mode int, budget int64) (*mat.Dense, error) {
	n := len(t.dims)
	k := ttm.KronWidth(factors, mode)
	rows := t.dims[mode]
	if err := ttm.CheckBudget(float64(rows)*float64(k), budget); err != nil {
		return nil, err
	}
	y := mat.NewDense(rows, k)

	// levelOf[mode] = tree level of the target mode.
	target := -1
	for l, m := range t.perm {
		if m == mode {
			target = l
			break
		}
	}

	// Per-level partial product buffers. pp[l] holds the Kronecker product
	// of factor rows along the current path for levels 0..l, excluding the
	// target level. Buffer l has the width of that partial product.
	pp := make([][]float64, n)
	width := 1
	for l := 0; l < n; l++ {
		if l != target {
			width *= factors[t.perm[l]].Cols()
		}
		pp[l] = make([]float64, width)
	}

	var walk func(level, node int, cur []float64, rowIdx int)
	walk = func(level, node int, cur []float64, rowIdx int) {
		m := t.perm[level]
		id := t.ids[level][node]
		var next []float64
		if level == target {
			next = cur
			rowIdx = id
		} else {
			arow := factors[m].Row(id)
			next = pp[level][:len(cur)*len(arow)]
			for q, c := range cur {
				off := q * len(arow)
				for j, av := range arow {
					next[off+j] = c * av
				}
			}
		}
		if level == n-1 {
			v := t.vals[node]
			out := y.Row(rowIdx)
			for q, w := range next {
				out[q] += v * w
			}
			return
		}
		for c := t.ptr[level][node]; c < t.ptr[level][node+1]; c++ {
			walk(level+1, c, next, rowIdx)
		}
	}
	one := []float64{1}
	for root := 0; root < len(t.ids[0]); root++ {
		walk(0, root, one, -1)
	}
	return y, nil
}

// Config controls a Tucker-CSF run.
type Config struct {
	// Ranks are the target core dimensionalities J1..JN.
	Ranks []int
	// MaxIters bounds the ALS sweeps.
	MaxIters int
	// Tol stops iteration when the fit improves by less than Tol. Zero
	// disables the check.
	Tol float64
	// MemoryBudgetBytes bounds the dense Y(n) (Table III: O(I·J^(N-1))).
	MemoryBudgetBytes int64
	// Seed drives the random factor initialization.
	Seed int64
}

// Decompose runs HOOI with CSF-accelerated TTMc on x (missing = zeros).
func Decompose(x *tensor.Coord, cfg Config) (*ttm.Model, error) {
	if len(cfg.Ranks) != x.Order() {
		return nil, fmt.Errorf("csf: %d ranks for order-%d tensor", len(cfg.Ranks), x.Order())
	}
	for n, j := range cfg.Ranks {
		if j <= 0 || j > x.Dim(n) {
			return nil, fmt.Errorf("csf: rank J%d=%d outside [1, %d]", n+1, j, x.Dim(n))
		}
	}
	if cfg.MaxIters <= 0 {
		return nil, fmt.Errorf("csf: MaxIters must be positive")
	}
	if x.NNZ() == 0 {
		return nil, fmt.Errorf("csf: empty tensor")
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	factors := ttm.RandomOrthonormalFactors(x.Dims(), cfg.Ranks, rng)
	tree := Build(x)
	model := &ttm.Model{Method: "Tucker-CSF", Factors: factors}

	xNorm := x.Norm()
	prevFit := math.Inf(-1)
	for iter := 1; iter <= cfg.MaxIters; iter++ {
		start := time.Now()
		for n := range factors {
			y, err := tree.TTMc(factors, n, cfg.MemoryBudgetBytes)
			if err != nil {
				return nil, err
			}
			u, err := mat.LeadingLeftSingularVectors(y, cfg.Ranks[n])
			if err != nil {
				return nil, fmt.Errorf("csf: mode %d SVD failed: %w", n, err)
			}
			factors[n] = u
			model.Factors = factors
		}
		g := ttm.DenseCore(x, factors)
		model.Core = g
		fit := fitFromCore(xNorm, g)
		model.Trace = append(model.Trace, ttm.IterStats{Iter: iter, Fit: fit, Elapsed: time.Since(start)})
		if cfg.Tol > 0 && fit-prevFit < cfg.Tol {
			break
		}
		prevFit = fit
	}
	return model, nil
}

func fitFromCore(xNorm float64, g *tensor.Dense) float64 {
	if xNorm == 0 {
		return 1
	}
	gn := g.Norm()
	diff := xNorm*xNorm - gn*gn
	if diff < 0 {
		diff = 0
	}
	return 1 - math.Sqrt(diff)/xNorm
}
