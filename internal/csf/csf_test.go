package csf

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/hooi"
	"repro/internal/mat"
	"repro/internal/tensor"
	"repro/internal/ttm"
)

func randomSparse(rng *rand.Rand, dims []int, nnz int) *tensor.Coord {
	t := tensor.NewCoord(dims)
	idx := make([]int, len(dims))
	seen := make(map[int]bool)
	for t.NNZ() < nnz {
		flat, stride := 0, 1
		for k, d := range dims {
			idx[k] = rng.Intn(d)
			flat += idx[k] * stride
			stride *= d
		}
		if seen[flat] {
			continue
		}
		seen[flat] = true
		t.MustAppend(idx, rng.Float64()*2-1)
	}
	return t
}

func randomFactors(rng *rand.Rand, dims, ranks []int) []*mat.Dense {
	fs := make([]*mat.Dense, len(dims))
	for m := range dims {
		a := mat.NewDense(dims[m], ranks[m])
		for i := range a.Data() {
			a.Data()[i] = rng.Float64()*2 - 1
		}
		fs[m] = a
	}
	return fs
}

func fullLowRank(rng *rand.Rand, dims, ranks []int) *tensor.Coord {
	factors := make([]*mat.Dense, len(dims))
	for m := range dims {
		a := mat.NewDense(dims[m], ranks[m])
		for i := range a.Data() {
			a.Data()[i] = rng.NormFloat64()
		}
		factors[m] = a
	}
	g := tensor.NewDenseTensor(ranks)
	for i := range g.Data() {
		g.Data()[i] = rng.NormFloat64()
	}
	dense := g.ModeProductChain(factors)
	out := tensor.NewCoord(dims)
	idx := make([]int, len(dims))
	for off, v := range dense.Data() {
		dense.IndexOf(off, idx)
		out.MustAppend(idx, v)
	}
	return out
}

func TestBuildStructure(t *testing.T) {
	// Two entries sharing the first coordinate must share a root node.
	x := tensor.NewCoord([]int{2, 3, 4})
	x.MustAppend([]int{0, 1, 2}, 1)
	x.MustAppend([]int{0, 1, 3}, 2)
	x.MustAppend([]int{1, 0, 0}, 3)
	tree := Build(x)
	if tree.NNZ() != 3 {
		t.Fatalf("NNZ = %d want 3", tree.NNZ())
	}
	levels := tree.Levels()
	// Mode order is by increasing dimension: modes (0,1,2) with dims 2,3,4.
	// Roots: i0 ∈ {0,1} → 2; level 1: (0,1),(1,0) → 2; leaves: 3.
	if levels[0] != 2 || levels[1] != 2 || levels[2] != 3 {
		t.Fatalf("Levels = %v want [2 2 3]", levels)
	}
}

func TestBuildMergesDuplicates(t *testing.T) {
	x := tensor.NewCoord([]int{2, 2})
	x.MustAppend([]int{1, 1}, 2)
	x.MustAppend([]int{1, 1}, 3)
	tree := Build(x)
	if tree.NNZ() != 1 {
		t.Fatalf("duplicates must merge: NNZ = %d", tree.NNZ())
	}
	if tree.vals[0] != 5 {
		t.Fatalf("merged value = %v want 5", tree.vals[0])
	}
}

// The CSF TTMc must produce the same row space as the reference kernel:
// Y·Yᵀ is invariant to the column permutation between the two layouts.
func TestTTMcMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dims := []int{5, 4, 6}
	ranks := []int{2, 3, 2}
	x := randomSparse(rng, dims, 30)
	fs := randomFactors(rng, dims, ranks)
	tree := Build(x)
	for n := 0; n < 3; n++ {
		got, err := tree.TTMc(fs, n, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ttm.MaterializeY(x, fs, n, 0)
		if err != nil {
			t.Fatal(err)
		}
		g1 := mat.MulT(got, got)
		g2 := mat.MulT(want, want)
		if !g1.Equal(g2, 1e-9) {
			t.Fatalf("mode %d: CSF TTMc row space differs from reference", n)
		}
	}
}

func TestTTMcHighOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dims := []int{3, 4, 3, 4}
	ranks := []int{2, 2, 2, 2}
	x := randomSparse(rng, dims, 25)
	fs := randomFactors(rng, dims, ranks)
	tree := Build(x)
	for n := 0; n < 4; n++ {
		got, err := tree.TTMc(fs, n, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ttm.MaterializeY(x, fs, n, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !mat.MulT(got, got).Equal(mat.MulT(want, want), 1e-9) {
			t.Fatalf("order-4 mode %d mismatch", n)
		}
	}
}

func TestTTMcBudget(t *testing.T) {
	x := tensor.NewCoord([]int{100000, 100000, 100000})
	x.MustAppend([]int{1, 2, 3}, 1)
	fs := randomFactors(rand.New(rand.NewSource(3)), x.Dims(), []int{5, 5, 5})
	tree := Build(x)
	if _, err := tree.TTMc(fs, 0, 1024); !errors.Is(err, ttm.ErrOutOfMemory) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
}

func TestCSFDecomposeRecoversLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := fullLowRank(rng, []int{7, 6, 5}, []int{2, 2, 2})
	m, err := Decompose(x, Config{Ranks: []int{2, 2, 2}, MaxIters: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if fit := m.Trace[len(m.Trace)-1].Fit; fit < 0.999 {
		t.Fatalf("fit = %v want ≈1", fit)
	}
}

func TestCSFMatchesHOOIFit(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := fullLowRank(rng, []int{8, 7, 6}, []int{3, 3, 3})
	mh, err := hooi.Decompose(x, hooi.Config{Ranks: []int{2, 2, 2}, MaxIters: 5, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := Decompose(x, Config{Ranks: []int{2, 2, 2}, MaxIters: 5, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	fh := mh.Trace[len(mh.Trace)-1].Fit
	fc := mc.Trace[len(mc.Trace)-1].Fit
	if math.Abs(fh-fc) > 1e-6 {
		t.Fatalf("HOOI fit %v vs Tucker-CSF fit %v", fh, fc)
	}
}

func TestCSFValidation(t *testing.T) {
	x := tensor.NewCoord([]int{4, 4})
	x.MustAppend([]int{0, 0}, 1)
	bad := []Config{
		{Ranks: []int{2}, MaxIters: 1},
		{Ranks: []int{0, 2}, MaxIters: 1},
		{Ranks: []int{9, 2}, MaxIters: 1},
		{Ranks: []int{2, 2}, MaxIters: 0},
	}
	for i, cfg := range bad {
		if _, err := Decompose(x, cfg); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	if _, err := Decompose(tensor.NewCoord([]int{4, 4}), Config{Ranks: []int{2, 2}, MaxIters: 1}); err == nil {
		t.Fatal("empty tensor must be rejected")
	}
}

func TestCSFCompression(t *testing.T) {
	// A tensor with heavy prefix sharing compresses: fewer root nodes than
	// leaves.
	x := tensor.NewCoord([]int{2, 50, 50})
	rng := rand.New(rand.NewSource(7))
	idx := make([]int, 3)
	for x.NNZ() < 300 {
		idx[0] = rng.Intn(2)
		idx[1] = rng.Intn(50)
		idx[2] = rng.Intn(50)
		x.MustAppend(idx, 1)
	}
	tree := Build(x)
	levels := tree.Levels()
	if levels[0] >= tree.NNZ() {
		t.Fatalf("no compression at root: %v nodes for %d nonzeros", levels[0], tree.NNZ())
	}
	if levels[0] != 2 {
		t.Fatalf("root level should collapse to the 2 distinct indices of the shortest mode, got %d", levels[0])
	}
}
