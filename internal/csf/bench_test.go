package csf

import (
	"math/rand"
	"testing"

	"repro/internal/ttm"
)

// BenchmarkBuild measures CSF tree construction (sort + level compression).
func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(61))
	x := randomSparse(rng, []int{500, 500, 500}, 20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Build(x)
	}
}

// BenchmarkTTMcCSF vs BenchmarkTTMcReference is the ablation behind
// Tucker-CSF: the tree-reusing TTMc against the per-nonzero expansion.
func BenchmarkTTMcCSF(b *testing.B) {
	rng := rand.New(rand.NewSource(62))
	x := randomSparse(rng, []int{500, 500, 500}, 20000)
	fs := randomFactors(rng, x.Dims(), []int{5, 5, 5})
	tree := Build(x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.TTMc(fs, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTTMcReference(b *testing.B) {
	rng := rand.New(rand.NewSource(62))
	x := randomSparse(rng, []int{500, 500, 500}, 20000)
	fs := randomFactors(rng, x.Dims(), []int{5, 5, 5})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ttm.MaterializeY(x, fs, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}
