// Package wopt implements the Tucker-wOpt baseline (Filipović & Jukić,
// reference [18] of the paper): Tucker factorization for tensors with missing
// data by direct weighted optimization. Like P-Tucker it fits only the
// observed entries, but it optimizes all parameters jointly with a nonlinear
// conjugate gradient method whose gradients are computed through *dense*
// tensor algebra — the residual tensor alone occupies ∏ In cells, which is
// why the paper reports O.O.M. for it on all but the smallest tensors
// (Figures 6 and 7). This implementation keeps the dense formulation
// faithfully and surfaces that failure mode through an explicit memory
// budget.
package wopt

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/mat"
	"repro/internal/tensor"
	"repro/internal/ttm"
)

// Config controls a Tucker-wOpt run.
type Config struct {
	// Ranks are the core dimensionalities J1..JN.
	Ranks []int
	// MaxIters bounds the NCG iterations.
	MaxIters int
	// Tol stops iteration when the relative loss improvement falls below it.
	// Zero disables the check.
	Tol float64
	// MemoryBudgetBytes bounds the dense intermediates (residual tensor,
	// reconstruction); 0 means ttm.DefaultBudgetBytes, negative disables.
	MemoryBudgetBytes int64
	// Seed drives the random initialization.
	Seed int64
}

// Model is the result of a Tucker-wOpt run.
type Model struct {
	Factors []*mat.Dense
	Core    *tensor.Dense
	// Trace records loss and duration per NCG iteration.
	Trace []ttm.IterStats
}

// Predict evaluates the reconstruction at idx.
func (m *Model) Predict(idx []int) float64 {
	k := ttm.KronWidth(m.Factors, -1)
	buf := make([]float64, k)
	scratch := make([]float64, k)
	ttm.ExpandRow(buf, m.Factors, idx, -1, 1, scratch)
	var s float64
	for i, w := range buf {
		s += w * m.Core.Data()[i]
	}
	return s
}

// ReconstructionError evaluates Eq. (5) over the observed entries of x.
func (m *Model) ReconstructionError(x *tensor.Coord) float64 {
	t := &ttm.Model{Factors: m.Factors, Core: m.Core}
	return t.ReconstructionError(x)
}

// RMSE returns the root mean square prediction error over test.
func (m *Model) RMSE(test *tensor.Coord) float64 {
	t := &ttm.Model{Factors: m.Factors, Core: m.Core}
	return t.RMSE(test)
}

// TimePerIteration returns the mean wall-clock duration per iteration.
func (m *Model) TimePerIteration() time.Duration {
	if len(m.Trace) == 0 {
		return 0
	}
	var total time.Duration
	for _, it := range m.Trace {
		total += it.Elapsed
	}
	return total / time.Duration(len(m.Trace))
}

// ErrBadConfig reports an invalid configuration.
var ErrBadConfig = errors.New("wopt: invalid configuration")

// Decompose fits a Tucker model to the observed entries of x with nonlinear
// conjugate gradients (Polak-Ribière with restarts and Armijo backtracking).
// It returns ttm.ErrOutOfMemory when the dense intermediates exceed the
// budget, reproducing the O.O.M. regime of the paper.
func Decompose(x *tensor.Coord, cfg Config) (*Model, error) {
	if len(cfg.Ranks) != x.Order() {
		return nil, fmt.Errorf("%w: %d ranks for order-%d tensor", ErrBadConfig, len(cfg.Ranks), x.Order())
	}
	for n, j := range cfg.Ranks {
		if j <= 0 || j > x.Dim(n) {
			return nil, fmt.Errorf("%w: rank J%d=%d outside [1, %d]", ErrBadConfig, n+1, j, x.Dim(n))
		}
	}
	if cfg.MaxIters <= 0 {
		return nil, fmt.Errorf("%w: MaxIters must be positive", ErrBadConfig)
	}
	if x.NNZ() == 0 {
		return nil, fmt.Errorf("%w: empty tensor", ErrBadConfig)
	}
	// The dense reconstruction and residual are the method's signature
	// memory hogs; both are ∏ In cells.
	if err := ttm.CheckBudget(2*tensor.NumCells(x.Dims()), cfg.MemoryBudgetBytes); err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	p := newPoint(x.Dims(), cfg.Ranks, rng)

	grad := p.zeroLike()
	gradPrev := p.zeroLike()
	dir := p.zeroLike()
	trial := p.zeroLike()

	loss := p.lossAndGrad(x, grad)
	// Initial direction: steepest descent.
	dir.copyFrom(grad)
	dir.scale(-1)

	model := &Model{}
	prevLoss := loss
	for iter := 1; iter <= cfg.MaxIters; iter++ {
		start := time.Now()

		// Armijo backtracking line search along dir.
		gd := grad.dot(dir)
		if gd >= 0 {
			// Not a descent direction (conjugacy broke down): restart.
			dir.copyFrom(grad)
			dir.scale(-1)
			gd = grad.dot(dir)
		}
		step := 1.0
		const c1 = 1e-4
		var trialLoss float64
		accepted := false
		for bt := 0; bt < 30; bt++ {
			trial.copyFrom(p)
			trial.axpy(step, dir)
			trialLoss = trial.loss(x)
			if trialLoss <= loss+c1*step*gd {
				accepted = true
				break
			}
			step *= 0.5
		}
		if !accepted {
			// The line search failed even at a tiny step; we are at a
			// stationary point to working precision.
			model.Trace = append(model.Trace, ttm.IterStats{Iter: iter, Fit: loss, Elapsed: time.Since(start)})
			break
		}
		p.copyFrom(trial)

		// New gradient and Polak-Ribière update.
		gradPrev.copyFrom(grad)
		loss = p.lossAndGrad(x, grad)
		denom := gradPrev.dot(gradPrev)
		beta := 0.0
		if denom > 0 {
			diff := grad.dot(grad) - grad.dot(gradPrev)
			beta = diff / denom
			if beta < 0 {
				beta = 0 // PR+ restart
			}
		}
		dir.scale(beta)
		dir.axpy(-1, grad)

		model.Trace = append(model.Trace, ttm.IterStats{Iter: iter, Fit: loss, Elapsed: time.Since(start)})
		if cfg.Tol > 0 && prevLoss-loss < cfg.Tol*math.Max(prevLoss, 1e-12) {
			break
		}
		prevLoss = loss
	}

	model.Factors = p.factors
	model.Core = p.core
	return model, nil
}

// point bundles the optimization variables (factors + core) and the vector
// operations NCG needs over them.
type point struct {
	factors []*mat.Dense
	core    *tensor.Dense
}

func newPoint(dims, ranks []int, rng *rand.Rand) *point {
	factors := make([]*mat.Dense, len(dims))
	for m := range dims {
		a := mat.NewDense(dims[m], ranks[m])
		for i := range a.Data() {
			a.Data()[i] = rng.Float64()
		}
		factors[m] = a
	}
	g := tensor.NewDenseTensor(ranks)
	for i := range g.Data() {
		g.Data()[i] = rng.Float64()
	}
	return &point{factors: factors, core: g}
}

func (p *point) zeroLike() *point {
	factors := make([]*mat.Dense, len(p.factors))
	for m, a := range p.factors {
		factors[m] = mat.NewDense(a.Rows(), a.Cols())
	}
	return &point{factors: factors, core: tensor.NewDenseTensor(p.core.Dims())}
}

func (p *point) copyFrom(src *point) {
	for m := range p.factors {
		p.factors[m].CopyFrom(src.factors[m])
	}
	copy(p.core.Data(), src.core.Data())
}

func (p *point) scale(s float64) {
	for _, a := range p.factors {
		a.Scale(s)
	}
	for i := range p.core.Data() {
		p.core.Data()[i] *= s
	}
}

func (p *point) axpy(a float64, other *point) {
	for m := range p.factors {
		p.factors[m].AddScaled(other.factors[m], a)
	}
	d, o := p.core.Data(), other.core.Data()
	for i := range d {
		d[i] += a * o[i]
	}
}

func (p *point) dot(other *point) float64 {
	var s float64
	for m := range p.factors {
		s += mat.Dot(p.factors[m].Data(), other.factors[m].Data())
	}
	s += mat.Dot(p.core.Data(), other.core.Data())
	return s
}

// reconstruct materializes the full dense reconstruction G ×1 A(1)…×N A(N) —
// the ∏ In intermediate that defines the method's memory profile.
func (p *point) reconstruct() *tensor.Dense {
	cur := p.core
	for m, a := range p.factors {
		cur = cur.ModeProduct(m, a) // A is In×Jn; ModeProduct wants Jn cols — a maps Jn→In
	}
	return cur
}

// loss evaluates ½ Σ_{α∈Ω} (Xα − X̂α)².
func (p *point) loss(x *tensor.Coord) float64 {
	xhat := p.reconstruct()
	var s float64
	for e := 0; e < x.NNZ(); e++ {
		r := x.Value(e) - xhat.At(x.Index(e))
		s += r * r
	}
	return 0.5 * s
}

// lossAndGrad evaluates the loss and fills grad with ∂loss/∂(A,G):
//
//	R       = W ⊛ (X − X̂)           (dense, ∏ In cells)
//	∂/∂G    = −(R ×1 A(1)ᵀ … ×N A(N)ᵀ)
//	∂/∂A(n) = −(R ×_{m≠n} A(m)ᵀ)(n) · G(n)ᵀ
func (p *point) lossAndGrad(x *tensor.Coord, grad *point) float64 {
	xhat := p.reconstruct()
	resid := tensor.NewDenseTensor(xhat.Dims())
	var lossVal float64
	for e := 0; e < x.NNZ(); e++ {
		idx := x.Index(e)
		r := x.Value(e) - xhat.At(idx)
		resid.Set(idx, r)
		lossVal += r * r
	}
	lossVal *= 0.5

	transposed := make([]*mat.Dense, len(p.factors))
	for m, a := range p.factors {
		transposed[m] = a.T()
	}

	// Core gradient.
	gcore := resid.ModeProductChain(transposed)
	gd, cd := grad.core.Data(), gcore.Data()
	for i := range gd {
		gd[i] = -cd[i]
	}

	// Factor gradients.
	for n := range p.factors {
		chain := make([]*mat.Dense, len(p.factors))
		copy(chain, transposed)
		chain[n] = nil
		t := resid.ModeProductChain(chain)
		tn := t.Matricize(n)
		gn := p.core.Matricize(n)
		prod := mat.MulT(tn, gn) // (In × K)·(Jn × K)ᵀ = In × Jn
		ga := grad.factors[n]
		for i := range ga.Data() {
			ga.Data()[i] = -prod.Data()[i]
		}
	}
	return lossVal
}
