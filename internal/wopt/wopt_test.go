package wopt

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/tensor"
	"repro/internal/ttm"
)

func sparsePlanted(rng *rand.Rand, dims, ranks []int, nnz int) *tensor.Coord {
	factors := make([]*mat.Dense, len(dims))
	for m := range dims {
		a := mat.NewDense(dims[m], ranks[m])
		for i := range a.Data() {
			a.Data()[i] = rng.Float64()
		}
		factors[m] = a
	}
	g := tensor.NewDenseTensor(ranks)
	for i := range g.Data() {
		g.Data()[i] = rng.Float64()
	}
	dense := g.ModeProductChain(factors)
	out := tensor.NewCoord(dims)
	idx := make([]int, len(dims))
	seen := make(map[int]bool)
	for out.NNZ() < nnz {
		flat, stride := 0, 1
		for k, d := range dims {
			idx[k] = rng.Intn(d)
			flat += idx[k] * stride
			stride *= d
		}
		if seen[flat] {
			continue
		}
		seen[flat] = true
		out.MustAppend(idx, dense.At(idx))
	}
	return out
}

func TestWOptLossMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := sparsePlanted(rng, []int{6, 6, 6}, []int{2, 2, 2}, 80)
	m, err := Decompose(x, Config{Ranks: []int{2, 2, 2}, MaxIters: 15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(m.Trace); i++ {
		if m.Trace[i].Fit > m.Trace[i-1].Fit+1e-12 {
			t.Fatalf("loss increased at iteration %d: %v -> %v",
				i+1, m.Trace[i-1].Fit, m.Trace[i].Fit)
		}
	}
	if m.Trace[len(m.Trace)-1].Fit >= m.Trace[0].Fit {
		t.Fatal("loss did not improve at all")
	}
}

// Finite-difference check of the analytic NCG gradient on a tiny problem —
// the strongest single test of the weighted-optimization formulation.
func TestWOptGradientFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dims := []int{3, 4, 2}
	ranks := []int{2, 2, 2}
	x := sparsePlanted(rng, dims, ranks, 10)
	p := newPoint(dims, ranks, rng)
	grad := p.zeroLike()
	base := p.lossAndGrad(x, grad)

	const h = 1e-6
	check := func(get func() *float64, analytic float64, what string) {
		t.Helper()
		v := get()
		old := *v
		*v = old + h
		plus := p.loss(x)
		*v = old - h
		minus := p.loss(x)
		*v = old
		numeric := (plus - minus) / (2 * h)
		if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("%s: numeric %v vs analytic %v (loss %v)", what, numeric, analytic, base)
		}
	}

	// Spot-check several factor coordinates and core cells.
	for trial := 0; trial < 10; trial++ {
		m := rng.Intn(len(dims))
		i := rng.Intn(dims[m])
		j := rng.Intn(ranks[m])
		check(func() *float64 {
			return &p.factors[m].Data()[i*ranks[m]+j]
		}, grad.factors[m].At(i, j), "factor")
	}
	for trial := 0; trial < 5; trial++ {
		q := rng.Intn(len(p.core.Data()))
		check(func() *float64 { return &p.core.Data()[q] }, grad.core.Data()[q], "core")
	}
}

func TestWOptFitsObservedEntries(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := sparsePlanted(rng, []int{6, 5, 4}, []int{2, 2, 2}, 60)
	m, err := Decompose(x, Config{Ranks: []int{2, 2, 2}, MaxIters: 60, Tol: 0, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	err5 := m.ReconstructionError(x)
	if err5 > 0.15*x.Norm() {
		t.Fatalf("wOpt failed to fit observed entries: error %v vs ||X|| %v", err5, x.Norm())
	}
	// Predictions must be finite.
	if v := m.Predict([]int{1, 1, 1}); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("prediction not finite: %v", v)
	}
	if m.TimePerIteration() <= 0 {
		t.Fatal("per-iteration time must be positive")
	}
}

func TestWOptOutOfMemory(t *testing.T) {
	dims := []int{300, 300, 300, 300} // 8.1e9 cells > default budget
	x := tensor.NewCoord(dims)
	x.MustAppend([]int{0, 0, 0, 0}, 1)
	if _, err := Decompose(x, Config{Ranks: []int{1, 1, 1, 1}, MaxIters: 1}); !errors.Is(err, ttm.ErrOutOfMemory) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
	// Explicit small budget binds even for small tensors.
	small := tensor.NewCoord([]int{20, 20, 20})
	small.MustAppend([]int{1, 1, 1}, 1)
	if _, err := Decompose(small, Config{Ranks: []int{2, 2, 2}, MaxIters: 1, MemoryBudgetBytes: 1024}); !errors.Is(err, ttm.ErrOutOfMemory) {
		t.Fatalf("want ErrOutOfMemory with explicit budget, got %v", err)
	}
}

func TestWOptValidation(t *testing.T) {
	x := tensor.NewCoord([]int{4, 4})
	x.MustAppend([]int{0, 0}, 1)
	bad := []Config{
		{Ranks: []int{2}, MaxIters: 1},
		{Ranks: []int{0, 2}, MaxIters: 1},
		{Ranks: []int{9, 2}, MaxIters: 1},
		{Ranks: []int{2, 2}, MaxIters: 0},
	}
	for i, cfg := range bad {
		if _, err := Decompose(x, cfg); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("case %d: want ErrBadConfig, got %v", i, err)
		}
	}
	if _, err := Decompose(tensor.NewCoord([]int{4, 4}), Config{Ranks: []int{2, 2}, MaxIters: 1}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("empty tensor must be rejected")
	}
}

func TestWOptRMSEOnHoldout(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := sparsePlanted(rng, []int{8, 8, 8}, []int{2, 2, 2}, 200)
	train, test := x.Split(0.9, rng)
	m, err := Decompose(train, Config{Ranks: []int{2, 2, 2}, MaxIters: 80, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rmse := m.RMSE(test)
	// Noise-free planted data with generous sampling: held-out RMSE must be
	// far below the data scale (values are O(1)).
	if rmse > 0.5 {
		t.Fatalf("held-out RMSE = %v, expected generalization on planted data", rmse)
	}
}
