// Package discovery implements Section V of the paper: concept discovery by
// clustering factor-matrix rows (Table V) and relation discovery by
// inspecting the largest core-tensor entries (Table VI).
package discovery

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/kmeans"
	"repro/internal/mat"
)

// Concept is one discovered cluster over a mode's indices.
type Concept struct {
	// Cluster is the cluster id.
	Cluster int
	// Members lists the row indices of the mode assigned to the cluster,
	// ordered by increasing distance to the centroid (the most
	// representative members first).
	Members []int
}

// Concepts clusters the rows of factor matrix A(mode) into k groups with
// k-means (K-means clustering on factor matrices, Section V) and returns the
// clusters with their members ranked by representativeness. topPerConcept
// bounds the member lists (0 means unbounded).
func Concepts(m *core.Model, mode, k, topPerConcept int, rng *rand.Rand) ([]Concept, error) {
	a := m.Factors[mode]
	res, err := kmeans.Cluster(a, k, 100, rng)
	if err != nil {
		return nil, err
	}
	return conceptsFromAssign(a, res, topPerConcept), nil
}

// ConceptPurity clusters the rows of A(mode) and scores the clustering
// against ground-truth labels, the quantitative check behind the Table V
// experiment on planted data.
func ConceptPurity(m *core.Model, mode, k int, labels []int, rng *rand.Rand) (float64, error) {
	a := m.Factors[mode]
	res, err := kmeans.Cluster(a, k, 100, rng)
	if err != nil {
		return 0, err
	}
	return kmeans.Purity(res.Assign, labels), nil
}

func conceptsFromAssign(a *mat.Dense, res *kmeans.Result, top int) []Concept {
	k := res.Centroids.Rows()
	concepts := make([]Concept, k)
	type member struct {
		row  int
		dist float64
	}
	byCluster := make([][]member, k)
	for i, c := range res.Assign {
		var d float64
		row := a.Row(i)
		cent := res.Centroids.Row(c)
		for j, v := range row {
			diff := v - cent[j]
			d += diff * diff
		}
		byCluster[c] = append(byCluster[c], member{i, d})
	}
	for c := 0; c < k; c++ {
		ms := byCluster[c]
		sort.Slice(ms, func(i, j int) bool { return ms[i].dist < ms[j].dist })
		if top > 0 && len(ms) > top {
			ms = ms[:top]
		}
		concepts[c].Cluster = c
		for _, mm := range ms {
			concepts[c].Members = append(concepts[c].Members, mm.row)
		}
	}
	return concepts
}

// Relation is a discovered association between columns of the factor
// matrices, weighted by a core entry: "an entry (j1,...,jN) of G is
// associated with the jn-th column of A(n) ... with a strength G(j1,...,jN)"
// (Section V).
type Relation struct {
	// CoreIndex is the core entry's multi-index (j1..jN).
	CoreIndex []int
	// Value is the core entry Gβ (the relation strength).
	Value float64
	// TopIndices[n] lists the row indices of mode n with the largest
	// absolute loading in column jn — e.g. the hours most associated with
	// the relation for an hour mode.
	TopIndices [][]int
}

// Relations returns the topK strongest relations: the core entries with the
// largest |Gβ|, each annotated with the topLoad highest-loading indices per
// mode.
func Relations(m *core.Model, topK, topLoad int) []Relation {
	indices, values := m.Core.MaxAbsEntries(topK)
	out := make([]Relation, 0, len(indices))
	for r := range indices {
		rel := Relation{CoreIndex: indices[r], Value: values[r]}
		for n, a := range m.Factors {
			col := indices[r][n]
			rel.TopIndices = append(rel.TopIndices, topAbsRows(a, col, topLoad))
		}
		out = append(out, rel)
	}
	return out
}

// topAbsRows returns the indices of the `top` rows with the largest |A[i][col]|.
func topAbsRows(a *mat.Dense, col, top int) []int {
	type load struct {
		row int
		abs float64
	}
	loads := make([]load, a.Rows())
	for i := 0; i < a.Rows(); i++ {
		v := a.At(i, col)
		if v < 0 {
			v = -v
		}
		loads[i] = load{i, v}
	}
	sort.Slice(loads, func(i, j int) bool { return loads[i].abs > loads[j].abs })
	if top > len(loads) {
		top = len(loads)
	}
	out := make([]int, top)
	for i := 0; i < top; i++ {
		out[i] = loads[i].row
	}
	return out
}

// OverlapScore measures how well a discovered relation's top indices for one
// mode agree with a planted ground-truth set: |discovered ∩ planted| /
// min(|discovered|, |planted|). 1.0 is a perfect hit.
func OverlapScore(discovered, planted []int) float64 {
	if len(discovered) == 0 || len(planted) == 0 {
		return 0
	}
	set := make(map[int]bool, len(planted))
	for _, p := range planted {
		set[p] = true
	}
	hits := 0
	for _, d := range discovered {
		if set[d] {
			hits++
		}
	}
	den := len(discovered)
	if len(planted) < den {
		den = len(planted)
	}
	return float64(hits) / float64(den)
}

// Describe renders a relation for human consumption with optional per-mode
// names (e.g. ["user","movie","year","hour"]).
func (r Relation) Describe(modeNames []string) string {
	s := fmt.Sprintf("G%v = %.4g:", r.CoreIndex, r.Value)
	for n, tops := range r.TopIndices {
		name := fmt.Sprintf("mode%d", n+1)
		if n < len(modeNames) {
			name = modeNames[n]
		}
		s += fmt.Sprintf(" %s%v", name, tops)
	}
	return s
}
