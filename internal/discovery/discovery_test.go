package discovery

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
)

// movieModel factorizes a small planted MovieLens-like tensor once for all
// discovery tests.
func movieModel(t *testing.T) (*core.Model, *synth.MovieLensData) {
	t.Helper()
	cfg := synth.DefaultMovieLensConfig()
	cfg.Users, cfg.Movies, cfg.NNZ, cfg.Genres = 150, 90, 8000, 3
	d := synth.MovieLens(cfg)
	c := core.Defaults([]int{3, 3, 3, 3})
	c.MaxIters = 8
	c.Threads = 2
	c.Seed = 5
	m, err := core.Decompose(d.X, c)
	if err != nil {
		t.Fatal(err)
	}
	return m, d
}

func TestConceptsPartitionMode(t *testing.T) {
	m, d := movieModel(t)
	rng := rand.New(rand.NewSource(1))
	concepts, err := Concepts(m, 1, 3, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(concepts) != 3 {
		t.Fatalf("%d concepts want 3", len(concepts))
	}
	seen := make(map[int]bool)
	total := 0
	for _, c := range concepts {
		for _, member := range c.Members {
			if seen[member] {
				t.Fatalf("movie %d in two concepts", member)
			}
			seen[member] = true
			total++
		}
	}
	if total != len(d.MovieGenre) {
		t.Fatalf("concepts cover %d movies want %d", total, len(d.MovieGenre))
	}
}

func TestConceptsTopPerConcept(t *testing.T) {
	m, _ := movieModel(t)
	rng := rand.New(rand.NewSource(2))
	concepts, err := Concepts(m, 1, 3, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range concepts {
		if len(c.Members) > 5 {
			t.Fatalf("concept %d has %d members, cap is 5", c.Cluster, len(c.Members))
		}
	}
}

// Table V's quantitative analog: clustering the movie factor must recover the
// planted genres far better than chance (purity 1/3 for 3 balanced genres).
func TestConceptPurityRecoversGenres(t *testing.T) {
	m, d := movieModel(t)
	rng := rand.New(rand.NewSource(3))
	p, err := ConceptPurity(m, 1, 3, d.MovieGenre, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.6 {
		t.Fatalf("genre purity = %v, want well above the 0.33 chance level", p)
	}
}

func TestRelationsShape(t *testing.T) {
	m, _ := movieModel(t)
	rels := Relations(m, 3, 4)
	if len(rels) != 3 {
		t.Fatalf("%d relations want 3", len(rels))
	}
	for i, r := range rels {
		if len(r.CoreIndex) != 4 {
			t.Fatalf("relation %d core index order %d want 4", i, len(r.CoreIndex))
		}
		if len(r.TopIndices) != 4 {
			t.Fatalf("relation %d has %d mode lists want 4", i, len(r.TopIndices))
		}
		for n, tops := range r.TopIndices {
			if len(tops) != 4 {
				t.Fatalf("relation %d mode %d has %d top indices want 4", i, n, len(tops))
			}
		}
		// Relations are ordered by descending strength.
		if i > 0 && abs(rels[i].Value) > abs(rels[i-1].Value)+1e-12 {
			t.Fatal("relations not ordered by |G| descending")
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestOverlapScore(t *testing.T) {
	if s := OverlapScore([]int{1, 2, 3}, []int{2, 3, 4}); s < 0.66 || s > 0.67 {
		t.Fatalf("overlap = %v want 2/3", s)
	}
	if s := OverlapScore([]int{1}, []int{1, 2, 3}); s != 1 {
		t.Fatalf("subset overlap = %v want 1", s)
	}
	if s := OverlapScore(nil, []int{1}); s != 0 {
		t.Fatal("empty discovered must score 0")
	}
}

func TestRelationDescribe(t *testing.T) {
	r := Relation{CoreIndex: []int{1, 2}, Value: 3.5, TopIndices: [][]int{{4}, {5}}}
	s := r.Describe([]string{"year", "hour"})
	if !strings.Contains(s, "year[4]") || !strings.Contains(s, "hour[5]") {
		t.Fatalf("Describe = %q", s)
	}
	// Missing names fall back to modeN.
	s = r.Describe(nil)
	if !strings.Contains(s, "mode1[4]") {
		t.Fatalf("Describe fallback = %q", s)
	}
}
