// Package replicate ships the observation journal from a primary
// ptucker-serve process to read replicas over HTTP.
//
// The primary is the only writer: it accepts /v1/observe, journals every
// batch before applying it, and exposes the journal as a stream. A follower
// bootstraps from the primary's current model (which covers everything up to
// a sequence number), then tails the stream and replays each record through
// the same plan/apply path the primary used. Observation application draws
// no randomness, so a caught-up follower's served predictions are
// bit-identical to the primary's — the property the repo's kill-and-restart
// tests already pin for a single process, extended across the wire.
//
// Wire protocol (all endpoints bearer-authed like the primary's mutating
// endpoints):
//
//	GET /v1/journal/bootstrap
//	    → 200, headers X-Ptucker-Epoch / X-Ptucker-Gen / X-Ptucker-Covered-Seq,
//	      body = the primary's current model in its binary model format.
//	      The model covers every journal record with Seq ≤ Covered-Seq.
//
//	GET /v1/journal?after=S&epoch=E&gen=G&wait=D
//	    → 200, body = zero or more journal record frames, verbatim in the
//	      journal's on-disk framing (length u32 | crc32 u32 | payload), for
//	      consecutive sequences starting at S+1. An empty body means the
//	      follower was caught up for the whole long-poll window D. Headers
//	      X-Ptucker-Epoch / X-Ptucker-Gen / X-Ptucker-Base-Seq /
//	      X-Ptucker-Last-Seq describe the primary at response time.
//	    → 410 Gone when (E, G) no longer identify the primary's model history
//	      (the primary restarted, reloaded, or published a refit) or when the
//	      records after S were compacted away. The follower's local state can
//	      no longer be extended; it re-bootstraps.
//
// epoch counts primary process starts (persisted in the primary's data
// directory), so a restarted primary — which may have lost journal-tail
// records under a relaxed fsync policy — is never silently trusted. gen
// counts in-memory model replacements that bypass the journal: reloads and
// background-refit publishes. Either changing invalidates every byte a
// follower derived from the old identity.
package replicate

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Endpoint paths and header names of the replication protocol.
const (
	// StreamPath serves journal record frames from a client-supplied
	// sequence (long-poll).
	StreamPath = "/v1/journal"
	// BootstrapPath serves the primary's current model and its covered
	// sequence.
	BootstrapPath = "/v1/journal/bootstrap"

	// HeaderEpoch is the primary's process epoch (persisted, bumped at
	// every primary startup).
	HeaderEpoch = "X-Ptucker-Epoch"
	// HeaderGen is the primary's model generation (in-memory, bumped at
	// every reload and refit publish).
	HeaderGen = "X-Ptucker-Gen"
	// HeaderBaseSeq is the journal's base sequence (records below it were
	// compacted away).
	HeaderBaseSeq = "X-Ptucker-Base-Seq"
	// HeaderLastSeq is the highest sequence the primary had applied when
	// the response was written.
	HeaderLastSeq = "X-Ptucker-Last-Seq"
	// HeaderCoveredSeq, on a bootstrap response, is the highest journal
	// sequence the shipped model covers.
	HeaderCoveredSeq = "X-Ptucker-Covered-Seq"

	// StreamContentType marks a body of raw journal record frames.
	StreamContentType = "application/x-ptucker-journal"
	// ModelContentType marks a body in the binary model format.
	ModelContentType = "application/x-ptucker-model"
)

// DefaultPollWait is the long-poll window a Client asks for when none is
// configured: how long the primary holds an empty poll open waiting for new
// records before answering "still caught up".
const DefaultPollWait = 10 * time.Second

// ErrOutOfSync reports that the follower's local state can no longer be
// extended from the primary's journal — the primary answered 410 (epoch or
// generation changed, or the needed records were compacted away) — and the
// follower must discard its state and re-bootstrap.
var ErrOutOfSync = errors.New("replicate: local state out of sync with primary; re-bootstrap required")

// Identity names one continuous model history on the primary. Records
// streamed under one identity extend each other; any change means the
// primary's model was replaced by something not derivable from the journal.
type Identity struct {
	Epoch uint64
	Gen   uint64
}

func (id Identity) String() string { return fmt.Sprintf("epoch %d gen %d", id.Epoch, id.Gen) }

// Bootstrap is the result of a bootstrap call: the primary's model and the
// journal position it covers.
type Bootstrap struct {
	Model    *core.Model
	Identity Identity
	// Covered is the highest journal sequence already reflected in Model;
	// tailing starts after it.
	Covered uint64
}

// Chunk is one successful poll: zero or more verbatim journal record frames
// plus the primary's position when it answered.
type Chunk struct {
	// Frames holds consecutive record frames in the journal's on-disk
	// framing, starting at the polled sequence + 1; empty when the follower
	// was caught up for the whole wait window.
	Frames   []byte
	Identity Identity
	// BaseSeq and LastSeq are the primary journal's bounds at response
	// time; applied == LastSeq means caught up.
	BaseSeq uint64
	LastSeq uint64
	// RequestID is the correlation ID the primary echoed for this poll
	// (empty when the primary predates request IDs).
	RequestID string
}

// Client speaks the replication protocol to one primary.
type Client struct {
	// Primary is the primary's base URL, e.g. "http://10.0.0.1:8080".
	Primary string
	// Token is the bearer token sent on every request (the primary's
	// -auth-token). Empty sends no Authorization header.
	Token string
	// HTTP is the underlying client; nil uses a dedicated client with no
	// overall timeout (long-polls outlive any sane global timeout; cancel
	// via context instead).
	HTTP *http.Client
	// PollWait is the long-poll window asked of the primary (0 =
	// DefaultPollWait).
	PollWait time.Duration
	// RequestID, when set, supplies a fresh correlation ID stamped on each
	// request's X-Ptucker-Request-Id header, so a follower's fetches can be
	// joined against the primary's access log. Nil sends none (the primary
	// generates its own).
	RequestID func() string
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) get(ctx context.Context, path string, query url.Values) (*http.Response, error) {
	u := strings.TrimRight(c.Primary, "/") + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	if c.RequestID != nil {
		if id := c.RequestID(); id != "" {
			req.Header.Set(obs.RequestIDHeader, id)
		}
	}
	return c.httpClient().Do(req)
}

// header64 parses a decimal uint64 response header.
func header64(resp *http.Response, name string) (uint64, error) {
	v := resp.Header.Get(name)
	if v == "" {
		return 0, fmt.Errorf("replicate: primary response missing %s", name)
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("replicate: primary response header %s=%q: %w", name, v, err)
	}
	return n, nil
}

// errorBody summarizes a non-200 response for error messages.
func errorBody(resp *http.Response) string {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	s := strings.TrimSpace(string(b))
	if s == "" {
		return resp.Status
	}
	return fmt.Sprintf("%s: %s", resp.Status, s)
}

// Bootstrap fetches the primary's current model and covered sequence.
func (c *Client) Bootstrap(ctx context.Context) (*Bootstrap, error) {
	resp, err := c.get(ctx, BootstrapPath, nil)
	if err != nil {
		return nil, fmt.Errorf("replicate: bootstrap: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("replicate: bootstrap: primary answered %s", errorBody(resp))
	}
	bs := &Bootstrap{}
	if bs.Identity.Epoch, err = header64(resp, HeaderEpoch); err != nil {
		return nil, err
	}
	if bs.Identity.Gen, err = header64(resp, HeaderGen); err != nil {
		return nil, err
	}
	if bs.Covered, err = header64(resp, HeaderCoveredSeq); err != nil {
		return nil, err
	}
	if bs.Model, err = core.ReadModel(resp.Body); err != nil {
		return nil, fmt.Errorf("replicate: bootstrap model: %w", err)
	}
	return bs, nil
}

// Poll asks for the records after `after` under the given identity, holding
// the request open up to the client's poll window when the follower is
// caught up. A 410 from the primary is returned as ErrOutOfSync.
func (c *Client) Poll(ctx context.Context, id Identity, after uint64) (*Chunk, error) {
	wait := c.PollWait
	if wait <= 0 {
		wait = DefaultPollWait
	}
	q := url.Values{
		"after": {strconv.FormatUint(after, 10)},
		"epoch": {strconv.FormatUint(id.Epoch, 10)},
		"gen":   {strconv.FormatUint(id.Gen, 10)},
		"wait":  {wait.String()},
	}
	resp, err := c.get(ctx, StreamPath, q)
	if err != nil {
		return nil, fmt.Errorf("replicate: poll: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return nil, fmt.Errorf("%w (%s)", ErrOutOfSync, errorBody(resp))
	default:
		return nil, fmt.Errorf("replicate: poll: primary answered %s", errorBody(resp))
	}
	ch := &Chunk{RequestID: resp.Header.Get(obs.RequestIDHeader)}
	if ch.Identity.Epoch, err = header64(resp, HeaderEpoch); err != nil {
		return nil, err
	}
	if ch.Identity.Gen, err = header64(resp, HeaderGen); err != nil {
		return nil, err
	}
	if ch.BaseSeq, err = header64(resp, HeaderBaseSeq); err != nil {
		return nil, err
	}
	if ch.LastSeq, err = header64(resp, HeaderLastSeq); err != nil {
		return nil, err
	}
	if ch.Identity != id {
		// The identity moved between our request and the primary's answer;
		// the frames (if any) belong to a history we no longer share.
		return nil, fmt.Errorf("%w (identity changed to %s mid-poll)", ErrOutOfSync, ch.Identity)
	}
	if ch.Frames, err = io.ReadAll(resp.Body); err != nil {
		// A connection dropped mid-body leaves a torn frame at the tail;
		// the caller applies the intact prefix and re-polls for the rest,
		// so a partial read is still a usable chunk.
		if len(ch.Frames) == 0 {
			return nil, fmt.Errorf("replicate: poll body: %w", err)
		}
	}
	return ch, nil
}

// Backoff returns the pause before reconnect attempt n (1-based) to the
// given primary: exponential from 100ms, capped at 5s, with a deterministic
// ±25% jitter derived from the primary URL and the attempt number — spreads
// a fleet of followers without drawing global randomness (the repo's
// seeded-randomness rule).
func Backoff(primary string, attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	base := 100 * time.Millisecond << uint(attempt-1)
	if base > 5*time.Second || base <= 0 {
		base = 5 * time.Second
	}
	h := fnv.New64a()
	_, _ = io.WriteString(h, primary)
	_, _ = fmt.Fprintf(h, "#%d", attempt)
	// Map the hash into [-base/4, +base/4).
	jitter := time.Duration(h.Sum64()%uint64(base/2)) - base/4
	return base + jitter
}
