package replicate

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/store"
)

// An Applier is the follower's local model state: the serving layer
// implements it over its fitter + snapshot machinery. The Follower run loop
// is the only caller, strictly sequentially.
type Applier interface {
	// Rebase discards all local state and installs a freshly bootstrapped
	// model; subsequent Apply calls start at bs.Covered+1. A Rebase error
	// is fatal to the follower (the local state could not be replaced).
	Rebase(bs *Bootstrap) error
	// Apply applies one journal record. Records arrive with strictly
	// consecutive sequences; Apply errors are fatal (the record was
	// validated by the primary, so a local failure means divergence).
	Apply(rec store.Record) error
	// AppliedSeq is the highest sequence Apply (or Rebase) has reflected.
	AppliedSeq() uint64
	// CaughtUp reports a completed poll: the primary's last applied
	// sequence was primaryLast at response time. The serving layer derives
	// its staleness (lag) clock from it.
	CaughtUp(primaryLast uint64)
}

// Follower tails one primary and keeps an Applier converged with it:
// bootstrap when out of sync, then poll → decode → apply, with jittered
// backoff across disconnects. Run owns all state; a Follower is not
// concurrent-safe.
type Follower struct {
	Client  *Client
	Applier Applier
	// Order is the model order (journal record shape). Zero means unknown
	// until the first bootstrap sets it; a follower resuming from local
	// state must pre-set it along with Identity.
	Order int
	// Identity is the primary identity the Applier's current state belongs
	// to. The zero Identity (epoch 0 is never issued) means "no usable
	// state": Run bootstraps first. A follower resuming from a local data
	// directory pre-sets it and Run starts by polling; if the primary
	// moved on meanwhile the first poll answers 410 and Run re-bootstraps.
	Identity Identity
	// Logf receives progress and retry messages (nil discards them).
	Logf func(format string, args ...interface{})
}

func (f *Follower) logf(format string, args ...interface{}) {
	if f.Logf != nil {
		f.Logf(format, args...)
	}
}

// Run drives the follower until ctx is cancelled (returns nil) or a fatal
// local error occurs (Rebase/Apply failed, or the stream handed us records
// that cannot extend what we applied).
func (f *Follower) Run(ctx context.Context) error {
	attempt := 0
	pause := func() error {
		attempt++
		d := Backoff(f.Client.Primary, attempt)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(d):
			return nil
		}
	}
	for ctx.Err() == nil {
		if f.Identity == (Identity{}) {
			bs, err := f.Client.Bootstrap(ctx)
			if err != nil {
				if ctx.Err() != nil {
					return nil
				}
				f.logf("replicate: bootstrap from %s failed: %v (retrying)", f.Client.Primary, err)
				if pause() != nil {
					return nil
				}
				continue
			}
			if err := f.Applier.Rebase(bs); err != nil {
				return fmt.Errorf("replicate: install bootstrap: %w", err)
			}
			f.Identity = bs.Identity
			f.Order = bs.Model.Order()
			attempt = 0
			f.logf("replicate: bootstrapped from %s at seq %d (%s)", f.Client.Primary, bs.Covered, bs.Identity)
		}

		ch, err := f.Client.Poll(ctx, f.Identity, f.Applier.AppliedSeq())
		switch {
		case err == nil:
		case errors.Is(err, ErrOutOfSync):
			f.logf("replicate: %v", err)
			f.Identity = Identity{}
			continue
		default:
			if ctx.Err() != nil {
				return nil
			}
			f.logf("replicate: poll %s: %v (retrying)", f.Client.Primary, err)
			if pause() != nil {
				return nil
			}
			continue
		}
		attempt = 0
		if err := f.apply(ch); err != nil {
			if ch.RequestID != "" {
				return fmt.Errorf("%w (primary request %s)", err, ch.RequestID)
			}
			return err
		}
		f.Applier.CaughtUp(ch.LastSeq)
	}
	return nil
}

// apply decodes a chunk's frames and feeds them to the Applier in order. A
// torn frame at the tail (the connection dropped mid-record) ends the chunk
// cleanly — the next poll resumes after the last intact record. A corrupt
// frame or a sequence gap is fatal: the bytes cannot extend our state.
func (f *Follower) apply(ch *Chunk) error {
	b := ch.Frames
	for len(b) > 0 {
		rec, n, err := store.DecodeRecord(b, f.Order)
		if errors.Is(err, io.ErrUnexpectedEOF) {
			f.logf("replicate: dropped torn %d-byte frame at chunk tail; re-polling", len(b))
			return nil
		}
		if err != nil {
			return fmt.Errorf("replicate: corrupt stream frame: %w", err)
		}
		if want := f.Applier.AppliedSeq() + 1; rec.Seq != want {
			return fmt.Errorf("replicate: stream gap: got seq %d, want %d", rec.Seq, want)
		}
		if err := f.Applier.Apply(rec); err != nil {
			return fmt.Errorf("replicate: apply seq %d: %w", rec.Seq, err)
		}
		b = b[n:]
	}
	return nil
}
