package replicate

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

func TestBackoff(t *testing.T) {
	// Deterministic: the same primary and attempt always pause the same.
	for attempt := 1; attempt <= 10; attempt++ {
		a := Backoff("http://primary:8080", attempt)
		b := Backoff("http://primary:8080", attempt)
		if a != b {
			t.Fatalf("attempt %d: %v vs %v", attempt, a, b)
		}
	}
	// Bounded: never more than the cap plus jitter, never non-positive.
	for attempt := 1; attempt <= 20; attempt++ {
		d := Backoff("http://primary:8080", attempt)
		if d <= 0 || d > 5*time.Second+5*time.Second/4 {
			t.Fatalf("attempt %d: %v out of bounds", attempt, d)
		}
	}
	// Growing (up to the cap): attempt 1 sits well under attempt 5.
	if Backoff("http://p", 1) >= Backoff("http://p", 5) {
		t.Fatalf("backoff not growing: %v vs %v", Backoff("http://p", 1), Backoff("http://p", 5))
	}
	// Different primaries jitter differently, so a restarted fleet of
	// followers does not stampede in lockstep.
	same := 0
	for attempt := 1; attempt <= 8; attempt++ {
		if Backoff("http://a", attempt) == Backoff("http://b", attempt) {
			same++
		}
	}
	if same == 8 {
		t.Fatal("two primaries share every backoff; jitter is not keyed")
	}
}

// recordingApplier tracks sequences without a real model.
type recordingApplier struct {
	applied uint64
	records int
}

func (a *recordingApplier) Rebase(*Bootstrap) error { return nil }
func (a *recordingApplier) Apply(rec store.Record) error {
	a.applied = rec.Seq
	a.records++
	return nil
}
func (a *recordingApplier) AppliedSeq() uint64 { return a.applied }
func (a *recordingApplier) CaughtUp(uint64)    {}

// streamFrames journals a few records and returns their verbatim frames.
func streamFrames(t *testing.T, n int) []byte {
	t.Helper()
	j, err := store.OpenJournal(filepath.Join(t.TempDir(), "obs.ptkj"), 2,
		store.SyncPolicy{Mode: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < n; i++ {
		obs := []core.Observation{{Index: []int{i % 5, i % 3}, Value: float64(i)}}
		if _, err := j.Append(obs); err != nil {
			t.Fatal(err)
		}
	}
	frames, _, _, err := j.StreamChunk(0, uint64(n), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return frames
}

func TestFollowerApplyTornTail(t *testing.T) {
	frames := streamFrames(t, 3)
	f := &Follower{Order: 2, Applier: &recordingApplier{}}

	// A chunk torn mid-record applies the intact prefix and returns cleanly:
	// the next poll resumes after the last applied record.
	torn := append([]byte(nil), frames[:len(frames)-4]...)
	if err := f.apply(&Chunk{Frames: torn}); err != nil {
		t.Fatalf("torn tail: %v", err)
	}
	a := f.Applier.(*recordingApplier)
	if a.records != 2 || a.applied != 2 {
		t.Fatalf("applied %d records through seq %d, want 2 through 2", a.records, a.applied)
	}

	// The re-poll ships the full record the tear interrupted, and the
	// follower continues seamlessly.
	var off int
	for seq := 1; seq <= 2; seq++ {
		_, n, err := store.DecodeRecord(frames[off:], 2)
		if err != nil {
			t.Fatal(err)
		}
		off += n
	}
	if err := f.apply(&Chunk{Frames: frames[off:]}); err != nil {
		t.Fatalf("resume after tear: %v", err)
	}
	if a.records != 3 || a.applied != 3 {
		t.Fatalf("applied %d records through seq %d, want 3 through 3", a.records, a.applied)
	}
}

func TestFollowerApplyGapAndCorruption(t *testing.T) {
	frames := streamFrames(t, 3)

	// A sequence gap is fatal: the bytes cannot extend the local state.
	f := &Follower{Order: 2, Applier: &recordingApplier{applied: 5}}
	err := f.apply(&Chunk{Frames: frames})
	if err == nil || !strings.Contains(err.Error(), "stream gap") {
		t.Fatalf("gap: %v", err)
	}

	// A corrupt frame (CRC mismatch, not truncation) is fatal too.
	bad := append([]byte(nil), frames...)
	bad[len(bad)-1] ^= 0x01
	f = &Follower{Order: 2, Applier: &recordingApplier{}}
	err = f.apply(&Chunk{Frames: bad})
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corruption: %v", err)
	}
	// The intact records before the corruption were still applied.
	if a := f.Applier.(*recordingApplier); a.records != 2 {
		t.Fatalf("applied %d records before the corrupt frame, want 2", a.records)
	}
}
