package ttm

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/tensor"
)

func randomSparse(rng *rand.Rand, dims []int, nnz int) *tensor.Coord {
	t := tensor.NewCoord(dims)
	idx := make([]int, len(dims))
	seen := make(map[int]bool)
	for t.NNZ() < nnz {
		flat, stride := 0, 1
		for k, d := range dims {
			idx[k] = rng.Intn(d)
			flat += idx[k] * stride
			stride *= d
		}
		if seen[flat] {
			continue
		}
		seen[flat] = true
		t.MustAppend(idx, rng.Float64()*2-1)
	}
	return t
}

func randomFactors(rng *rand.Rand, dims, ranks []int) []*mat.Dense {
	fs := make([]*mat.Dense, len(dims))
	for m := range dims {
		a := mat.NewDense(dims[m], ranks[m])
		for i := range a.Data() {
			a.Data()[i] = rng.Float64()*2 - 1
		}
		fs[m] = a
	}
	return fs
}

// toDense materializes the sparse tensor with zeros for missing cells.
func toDense(x *tensor.Coord) *tensor.Dense {
	d := tensor.NewDenseTensor(x.Dims())
	for e := 0; e < x.NNZ(); e++ {
		d.Set(x.Index(e), x.Value(e))
	}
	return d
}

func TestCheckBudget(t *testing.T) {
	if err := CheckBudget(100, 0); err != nil {
		t.Fatalf("tiny intermediate must pass default budget: %v", err)
	}
	if err := CheckBudget(1e18, 0); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
	if err := CheckBudget(1e18, -1); err != nil {
		t.Fatalf("negative budget disables the check: %v", err)
	}
	if err := CheckBudget(200, 100); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("explicit budget must bind: %v", err)
	}
}

func TestColStrides(t *testing.T) {
	s := ColStrides([]int{2, 3, 4}, 1)
	// Excluding mode 1: mode 0 stride 1, mode 2 stride 2.
	if s[0] != 1 || s[1] != 0 || s[2] != 2 {
		t.Fatalf("ColStrides = %v", s)
	}
}

// ExpandRow with exclude=-1 must produce exactly the Kronecker weights used
// by the element-wise reconstruction (Eq. 4): checking against a brute-force
// enumeration.
func TestExpandRowMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dims := []int{3, 4, 2}
	ranks := []int{2, 3, 2}
	fs := randomFactors(rng, dims, ranks)
	idx := []int{1, 3, 0}
	k := KronWidth(fs, -1)
	buf := make([]float64, k)
	scratch := make([]float64, k)
	ExpandRow(buf, fs, idx, -1, 2.5, scratch)

	// Brute force: little-endian layout, mode 0 varying fastest, matching
	// ColStrides and tensor.Dense.
	for j2 := 0; j2 < ranks[2]; j2++ {
		for j1 := 0; j1 < ranks[1]; j1++ {
			for j0 := 0; j0 < ranks[0]; j0++ {
				want := 2.5 * fs[0].At(1, j0) * fs[1].At(3, j1) * fs[2].At(0, j2)
				got := buf[(j2*ranks[1]+j1)*ranks[0]+j0]
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("weight (%d,%d,%d): got %v want %v", j0, j1, j2, got, want)
				}
			}
		}
	}
}

func TestExpandRowExcludeMode(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dims := []int{3, 3, 3}
	ranks := []int{2, 2, 2}
	fs := randomFactors(rng, dims, ranks)
	idx := []int{0, 1, 2}
	k := KronWidth(fs, 1)
	if k != 4 {
		t.Fatalf("KronWidth excluding mode 1 = %d want 4", k)
	}
	buf := make([]float64, k)
	scratch := make([]float64, k)
	ExpandRow(buf, fs, idx, 1, 1, scratch)
	// Little-endian over the included modes {0, 2}: mode 0 varies fastest.
	for j0 := 0; j0 < 2; j0++ {
		for j2 := 0; j2 < 2; j2++ {
			want := fs[0].At(0, j0) * fs[2].At(2, j2)
			if got := buf[j2*2+j0]; math.Abs(got-want) > 1e-12 {
				t.Fatalf("excluded expansion (%d,%d): got %v want %v", j0, j2, got, want)
			}
		}
	}
}

// MaterializeY must agree with the dense-tensor definition
// Y(n) = (X ×_{m≠n} A(m)ᵀ)(n) computed through internal/tensor, up to a
// fixed column permutation; Y·Yᵀ is permutation-invariant so we compare that.
func TestMaterializeYMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dims := []int{4, 5, 3}
	ranks := []int{2, 2, 2}
	x := randomSparse(rng, dims, 20)
	fs := randomFactors(rng, dims, ranks)

	for n := 0; n < 3; n++ {
		y, err := MaterializeY(x, fs, n, 0)
		if err != nil {
			t.Fatal(err)
		}
		dense := toDense(x)
		chain := make([]*mat.Dense, 3)
		for m := 0; m < 3; m++ {
			if m != n {
				chain[m] = fs[m].T()
			}
		}
		want := dense.ModeProductChain(chain).Matricize(n)
		got1 := mat.MulT(y, y)
		got2 := mat.MulT(want, want)
		if !got1.Equal(got2, 1e-9) {
			t.Fatalf("mode %d: Y·Yᵀ mismatch against dense reference", n)
		}
	}
}

func TestMaterializeYBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dims := []int{1000, 1000, 1000}
	x := tensor.NewCoord(dims)
	x.MustAppend([]int{0, 0, 0}, 1)
	fs := randomFactors(rng, dims, []int{10, 10, 10})
	if _, err := MaterializeY(x, fs, 0, 100); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
}

// DenseCore must match the dense-tensor chain X ×1 A(1)ᵀ … ×N A(N)ᵀ.
func TestDenseCoreMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dims := []int{4, 3, 5}
	ranks := []int{2, 2, 3}
	x := randomSparse(rng, dims, 25)
	fs := randomFactors(rng, dims, ranks)
	got := DenseCore(x, fs)

	dense := toDense(x)
	chain := make([]*mat.Dense, 3)
	for m := 0; m < 3; m++ {
		chain[m] = fs[m].T()
	}
	want := dense.ModeProductChain(chain)
	for i := range want.Data() {
		if math.Abs(got.Data()[i]-want.Data()[i]) > 1e-9 {
			t.Fatal("DenseCore mismatch against dense reference")
		}
	}
}

func TestRandomOrthonormalFactors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	fs := RandomOrthonormalFactors([]int{10, 8}, []int{3, 2}, rng)
	for m, a := range fs {
		if !mat.Gram(a).Equal(mat.Identity(a.Cols()), 1e-9) {
			t.Fatalf("factor %d not orthonormal", m)
		}
	}
}

func TestModelPredictAndError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dims := []int{4, 4, 4}
	ranks := []int{2, 2, 2}
	fs := randomFactors(rng, dims, ranks)
	g := tensor.NewDenseTensor(ranks)
	for i := range g.Data() {
		g.Data()[i] = rng.Float64()
	}
	m := &Model{Factors: fs, Core: g}

	idx := []int{1, 2, 3}
	var want float64
	for j0 := 0; j0 < 2; j0++ {
		for j1 := 0; j1 < 2; j1++ {
			for j2 := 0; j2 < 2; j2++ {
				want += g.At([]int{j0, j1, j2}) * fs[0].At(1, j0) * fs[1].At(2, j1) * fs[2].At(3, j2)
			}
		}
	}
	if got := m.Predict(idx); math.Abs(got-want) > 1e-10 {
		t.Fatalf("Predict = %v want %v", got, want)
	}

	// Error over a singleton observation set equals |X - pred|.
	x := tensor.NewCoord(dims)
	x.MustAppend(idx, want+3)
	if got := m.ReconstructionError(x); math.Abs(got-3) > 1e-9 {
		t.Fatalf("ReconstructionError = %v want 3", got)
	}
	if got := m.RMSE(x); math.Abs(got-3) > 1e-9 {
		t.Fatalf("RMSE = %v want 3", got)
	}
	if m.RMSE(tensor.NewCoord(dims)) != 0 {
		t.Fatal("RMSE over empty set must be 0")
	}
}

func TestZeroFillFit(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	dims := []int{6, 6, 6}
	x := randomSparse(rng, dims, 30)
	fs := RandomOrthonormalFactors(dims, []int{2, 2, 2}, rng)
	g := DenseCore(x, fs)
	m := &Model{Factors: fs, Core: g}
	fit := m.ZeroFillFit(x)
	if fit < 0 || fit > 1 {
		t.Fatalf("fit %v out of [0,1]", fit)
	}
	// Brute force: reconstruct densely and compare.
	dense := toDense(x)
	chain := make([]*mat.Dense, 3)
	for mm := 0; mm < 3; mm++ {
		chain[mm] = fs[mm] // maps Jm -> Im
	}
	xhat := g.ModeProductChain(chain)
	var ss float64
	for i := range dense.Data() {
		r := dense.Data()[i] - xhat.Data()[i]
		ss += r * r
	}
	want := 1 - math.Sqrt(ss)/x.Norm()
	if math.Abs(fit-want) > 1e-8 {
		t.Fatalf("ZeroFillFit = %v want %v", fit, want)
	}
}
