// Package ttm holds the kernels shared by the zero-filling Tucker baselines
// (conventional HOOI, S-HOT, and Tucker-CSF): sparse tensor-times-matrix
// chains (TTMc), Kronecker row expansion, dense-core extraction, a common
// result model, and the explicit memory budget that reproduces the paper's
// O.O.M. outcomes deterministically.
//
// All of these methods treat unobserved cells as zeros (the paper's central
// criticism), so a sparse input tensor is algebraically a dense tensor with
// zeros, and every kernel here iterates only over the stored nonzeros.
package ttm

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// ErrOutOfMemory reports that a dense intermediate would exceed the
// configured memory budget. The paper's Figures 6, 7, and 11 mark these
// configurations "O.O.M."; the budget makes the same analytic condition
// (e.g. In·∏Jm cells for HOOI's Y(n)) observable without exhausting the
// host.
var ErrOutOfMemory = errors.New("ttm: intermediate data exceeds memory budget (O.O.M.)")

// DefaultBudgetBytes bounds dense intermediates when a caller passes no
// explicit budget: 1 GiB, a laptop-friendly stand-in for the paper's 512 GB
// testbed.
const DefaultBudgetBytes = int64(1) << 30

// CheckBudget returns ErrOutOfMemory when `cells` float64 values would
// overflow the budget (in bytes). A budget of 0 means DefaultBudgetBytes; a
// negative budget disables the check.
func CheckBudget(cells float64, budget int64) error {
	if budget < 0 {
		return nil
	}
	if budget == 0 {
		budget = DefaultBudgetBytes
	}
	if cells*8 > float64(budget) {
		return fmt.Errorf("%w: need %.3g bytes, budget %d", ErrOutOfMemory, cells*8, budget)
	}
	return nil
}

// ColStrides returns the column strides of the mode-n matricization for the
// given per-mode widths (Definition 2's mapping): column = Σ_{m≠n} j_m ·
// stride[m], with stride over lower modes excluding n. stride[n] is 0.
func ColStrides(widths []int, n int) []int {
	strides := make([]int, len(widths))
	s := 1
	for m := 0; m < len(widths); m++ {
		if m == n {
			continue
		}
		strides[m] = s
		s *= widths[m]
	}
	return strides
}

// ExpandRow accumulates the Kronecker expansion of one nonzero into a
// length-K buffer, where K = ∏_{m≠exclude} Jm: buf[col] += v ·
// ∏_{m≠exclude} A(m)[idx[m]][j_m], with col = Σ_{m≠exclude} j_m·stride_m in
// the little-endian (mode 0 fastest) layout of ColStrides and tensor.Dense.
// Pass exclude = -1 to include every mode (used for core extraction).
// scratch must have capacity ≥ K; the expansion runs in O(K) by building
// partial products one mode at a time, highest mode first so that mode 0
// ends up varying fastest.
func ExpandRow(buf []float64, factors []*mat.Dense, idx []int, exclude int, v float64, scratch []float64) {
	cur := scratch[:1]
	cur[0] = v
	size := 1
	for m := len(factors) - 1; m >= 0; m-- {
		if m == exclude {
			continue
		}
		row := factors[m].Row(idx[m])
		j := len(row)
		// Expand in place from the back so cur can grow within scratch.
		next := scratch[:size*j]
		for q := size - 1; q >= 0; q-- {
			base := cur[q]
			off := q * j
			for jj := j - 1; jj >= 0; jj-- {
				next[off+jj] = base * row[jj]
			}
		}
		cur = next
		size *= j
	}
	for i := 0; i < size; i++ {
		buf[i] += cur[i]
	}
}

// KronWidth returns ∏_{m≠exclude} Jm for factors with Jm columns.
func KronWidth(factors []*mat.Dense, exclude int) int {
	k := 1
	for m, a := range factors {
		if m == exclude {
			continue
		}
		k *= a.Cols()
	}
	return k
}

// MaterializeY computes the mode-n matricized TTMc result
// Y(n) = (X ×_{m≠n} A(m)ᵀ)(n), an In × K dense matrix (K = ∏_{m≠n} Jm),
// iterating only over the stored nonzeros. This is the intermediate whose
// explicit storage causes the "intermediate data explosion": the call fails
// with ErrOutOfMemory when In·K exceeds the budget.
func MaterializeY(x *tensor.Coord, factors []*mat.Dense, n int, budget int64) (*mat.Dense, error) {
	k := KronWidth(factors, n)
	rows := x.Dim(n)
	if err := CheckBudget(float64(rows)*float64(k), budget); err != nil {
		return nil, err
	}
	y := mat.NewDense(rows, k)
	scratch := make([]float64, k)
	for e := 0; e < x.NNZ(); e++ {
		idx := x.Index(e)
		ExpandRow(y.Row(idx[n]), factors, idx, n, x.Value(e), scratch)
	}
	return y, nil
}

// DenseCore computes G = X ×1 A(1)ᵀ ··· ×N A(N)ᵀ for orthonormal factors
// (Algorithm 1 line 7), iterating only over nonzeros.
func DenseCore(x *tensor.Coord, factors []*mat.Dense) *tensor.Dense {
	ranks := make([]int, len(factors))
	for m, a := range factors {
		ranks[m] = a.Cols()
	}
	g := tensor.NewDenseTensor(ranks)
	k := KronWidth(factors, -1)
	scratch := make([]float64, k)
	// The little-endian enumeration of ExpandRow matches Dense's strides.
	for e := 0; e < x.NNZ(); e++ {
		ExpandRow(g.Data(), factors, x.Index(e), -1, x.Value(e), scratch)
	}
	return g
}

// RandomOrthonormalFactors initializes one In × Jn factor per mode with
// orthonormal columns (random Gaussian then Gram-Schmidt), the customary
// HOOI starting point.
func RandomOrthonormalFactors(dims, ranks []int, rng interface{ NormFloat64() float64 }) []*mat.Dense {
	factors := make([]*mat.Dense, len(dims))
	for m := range dims {
		a := mat.NewDense(dims[m], ranks[m])
		for i := range a.Data() {
			a.Data()[i] = rng.NormFloat64()
		}
		mat.GramSchmidt(a)
		factors[m] = a
	}
	return factors
}

// IterStats records one baseline iteration.
type IterStats struct {
	Iter    int
	Fit     float64 // 1 - ||X − X̂||/||X|| over all cells (zero-fill objective)
	Elapsed time.Duration
}

// Model is the common result of the zero-filling baselines: orthonormal
// factors and a dense core.
type Model struct {
	Method  string
	Factors []*mat.Dense
	Core    *tensor.Dense
	Trace   []IterStats
}

// Predict evaluates the reconstruction Σ_β Gβ ∏_n A(n)[in][jn] at idx.
func (m *Model) Predict(idx []int) float64 {
	k := KronWidth(m.Factors, -1)
	scratch := make([]float64, k)
	buf := make([]float64, k)
	ExpandRow(buf, m.Factors, idx, -1, 1, scratch)
	var s float64
	g := m.Core.Data()
	for i, w := range buf {
		s += w * g[i]
	}
	return s
}

// ReconstructionError evaluates Eq. (5) — the error over the *observed*
// entries Ω — which is how Figure 11 scores every method, including the
// zero-filling ones.
func (m *Model) ReconstructionError(x *tensor.Coord) float64 {
	k := KronWidth(m.Factors, -1)
	scratch := make([]float64, k)
	buf := make([]float64, k)
	g := m.Core.Data()
	var ss float64
	for e := 0; e < x.NNZ(); e++ {
		for i := range buf {
			buf[i] = 0
		}
		ExpandRow(buf, m.Factors, x.Index(e), -1, 1, scratch)
		var pred float64
		for i, w := range buf {
			pred += w * g[i]
		}
		r := x.Value(e) - pred
		ss += r * r
	}
	return math.Sqrt(ss)
}

// RMSE returns the root mean square prediction error over the observed
// entries of test.
func (m *Model) RMSE(test *tensor.Coord) float64 {
	if test.NNZ() == 0 {
		return 0
	}
	return m.ReconstructionError(test) / math.Sqrt(float64(test.NNZ()))
}

// ZeroFillFit returns 1 − sqrt(||X||² − ||G||²)/||X||, the fit of the
// orthogonal Tucker approximation measured over ALL cells with missing
// entries treated as zeros — the objective the baselines actually optimize
// (Eq. 3). It follows from orthonormality of the factors.
func (m *Model) ZeroFillFit(x *tensor.Coord) float64 {
	xn := x.Norm()
	if xn == 0 {
		return 1
	}
	gn := m.Core.Norm()
	diff := xn*xn - gn*gn
	if diff < 0 {
		diff = 0
	}
	return 1 - math.Sqrt(diff)/xn
}

// TimePerIteration returns the mean wall-clock duration per iteration.
func (m *Model) TimePerIteration() time.Duration {
	if len(m.Trace) == 0 {
		return 0
	}
	var total time.Duration
	for _, it := range m.Trace {
		total += it.Elapsed
	}
	return total / time.Duration(len(m.Trace))
}
