// Package kmeans implements k-means clustering with k-means++ seeding over
// the rows of a dense matrix. The paper applies it to factor-matrix rows to
// discover concepts ("each row of factor matrices represents latent features
// of the row"; Section V, Table V).
package kmeans

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/mat"
)

// ErrBadK reports an invalid cluster count.
var ErrBadK = errors.New("kmeans: k must be in [1, number of rows]")

// Result holds a clustering of matrix rows.
type Result struct {
	// Assign maps each row to its cluster in [0,K).
	Assign []int
	// Centroids holds the K cluster centers as rows.
	Centroids *mat.Dense
	// Inertia is the total squared distance of rows to their centroids.
	Inertia float64
	// Iters is the number of Lloyd iterations performed.
	Iters int
}

// Cluster groups the rows of a into k clusters using k-means++ seeding and at
// most maxIters Lloyd iterations.
func Cluster(a *mat.Dense, k, maxIters int, rng *rand.Rand) (*Result, error) {
	nRows, nCols := a.Dims()
	if k < 1 || k > nRows {
		return nil, ErrBadK
	}
	if maxIters < 1 {
		maxIters = 1
	}

	cents := seedPlusPlus(a, k, rng)
	assign := make([]int, nRows)
	counts := make([]int, k)

	var inertia float64
	iters := 0
	for ; iters < maxIters; iters++ {
		// Assignment step.
		changed := false
		inertia = 0
		for i := 0; i < nRows; i++ {
			row := a.Row(i)
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				d := sqDist(row, cents.Row(c))
				if d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
			inertia += bestD
		}
		if !changed && iters > 0 {
			break
		}
		// Update step.
		cents.Zero()
		for c := range counts {
			counts[c] = 0
		}
		for i := 0; i < nRows; i++ {
			c := assign[i]
			counts[c]++
			crow := cents.Row(c)
			for j, v := range a.Row(i) {
				crow[j] += v
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random row.
				copy(cents.Row(c), a.Row(rng.Intn(nRows)))
				continue
			}
			inv := 1 / float64(counts[c])
			crow := cents.Row(c)
			for j := range crow {
				crow[j] *= inv
			}
		}
		_ = nCols
	}
	return &Result{Assign: assign, Centroids: cents, Inertia: inertia, Iters: iters}, nil
}

// seedPlusPlus chooses k initial centroids with the k-means++ D² weighting.
func seedPlusPlus(a *mat.Dense, k int, rng *rand.Rand) *mat.Dense {
	nRows, nCols := a.Dims()
	cents := mat.NewDense(k, nCols)
	first := rng.Intn(nRows)
	copy(cents.Row(0), a.Row(first))

	dist := make([]float64, nRows)
	for i := range dist {
		dist[i] = sqDist(a.Row(i), cents.Row(0))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, d := range dist {
			total += d
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(nRows)
		} else {
			r := rng.Float64() * total
			for i, d := range dist {
				r -= d
				if r <= 0 {
					pick = i
					break
				}
			}
		}
		copy(cents.Row(c), a.Row(pick))
		for i := range dist {
			if d := sqDist(a.Row(i), cents.Row(c)); d < dist[i] {
				dist[i] = d
			}
		}
	}
	return cents
}

func sqDist(x, y []float64) float64 {
	var s float64
	for i, v := range x {
		d := v - y[i]
		s += d * d
	}
	return s
}

// Purity scores a clustering against ground-truth labels: the fraction of
// rows whose cluster's majority label matches their own. 1.0 means every
// cluster is label-pure; the Table V experiment uses it to verify that the
// movie-factor clusters recover the planted genres.
func Purity(assign, labels []int) float64 {
	if len(assign) != len(labels) || len(assign) == 0 {
		return 0
	}
	// counts[cluster][label]
	counts := make(map[int]map[int]int)
	for i, c := range assign {
		if counts[c] == nil {
			counts[c] = make(map[int]int)
		}
		counts[c][labels[i]]++
	}
	correct := 0
	for _, labelCount := range counts {
		best := 0
		for _, n := range labelCount {
			if n > best {
				best = n
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(assign))
}
