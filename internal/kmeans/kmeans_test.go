package kmeans

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// threeBlobs builds 30 rows in 2D forming three well-separated clusters.
func threeBlobs(rng *rand.Rand) (*mat.Dense, []int) {
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	a := mat.NewDense(30, 2)
	labels := make([]int, 30)
	for i := 0; i < 30; i++ {
		c := i % 3
		labels[i] = c
		a.Set(i, 0, centers[c][0]+rng.NormFloat64()*0.3)
		a.Set(i, 1, centers[c][1]+rng.NormFloat64()*0.3)
	}
	return a, labels
}

func TestClusterSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, labels := threeBlobs(rng)
	res, err := Cluster(a, 3, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p := Purity(res.Assign, labels); p != 1 {
		t.Fatalf("purity = %v want 1 on separated blobs", p)
	}
	if res.Inertia > 30*2*0.3*0.3*9 {
		t.Fatalf("inertia %v too large for tight blobs", res.Inertia)
	}
	if res.Iters < 1 {
		t.Fatal("must run at least one iteration")
	}
}

func TestClusterK1(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, _ := threeBlobs(rng)
	res, err := Cluster(a, 1, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Assign {
		if c != 0 {
			t.Fatal("k=1 must assign everything to cluster 0")
		}
	}
}

func TestClusterBadK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := mat.NewDense(5, 2)
	if _, err := Cluster(a, 0, 10, rng); err != ErrBadK {
		t.Fatalf("k=0: err = %v want ErrBadK", err)
	}
	if _, err := Cluster(a, 6, 10, rng); err != ErrBadK {
		t.Fatalf("k>rows: err = %v want ErrBadK", err)
	}
}

func TestClusterKEqualsRows(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := mat.NewDense(4, 2)
	for i := 0; i < 4; i++ {
		a.Set(i, 0, float64(i*10))
	}
	res, err := Cluster(a, 4, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	// With k == rows and distinct points every row gets its own cluster.
	seen := make(map[int]bool)
	for _, c := range res.Assign {
		if seen[c] {
			t.Fatal("duplicate cluster with k == rows of distinct points")
		}
		seen[c] = true
	}
	if res.Inertia > 1e-12 {
		t.Fatalf("inertia %v want 0", res.Inertia)
	}
}

func TestClusterIdenticalPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := mat.NewDense(6, 2)
	a.Fill(3)
	res, err := Cluster(a, 2, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-12 {
		t.Fatalf("identical points must have zero inertia, got %v", res.Inertia)
	}
}

func TestPurity(t *testing.T) {
	if p := Purity([]int{0, 0, 1, 1}, []int{5, 5, 7, 7}); p != 1 {
		t.Fatalf("perfect clustering purity = %v want 1", p)
	}
	if p := Purity([]int{0, 0, 0, 0}, []int{1, 1, 2, 2}); p != 0.5 {
		t.Fatalf("single-cluster purity = %v want 0.5", p)
	}
	if p := Purity(nil, nil); p != 0 {
		t.Fatal("empty purity must be 0")
	}
	if p := Purity([]int{0}, []int{0, 1}); p != 0 {
		t.Fatal("mismatched lengths must score 0")
	}
}

func TestClusterDeterministicWithSeed(t *testing.T) {
	a, _ := threeBlobs(rand.New(rand.NewSource(6)))
	r1, err := Cluster(a, 3, 50, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Cluster(a, 3, 50, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Assign {
		if r1.Assign[i] != r2.Assign[i] {
			t.Fatal("same seed must give same clustering")
		}
	}
}
