package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// Decompose runs Algorithm 2 (P-Tucker for Sparse Tensors) on the observed
// entries of x and returns the fitted model. It is DecomposeContext with a
// background context — no cancellation.
//
// Deprecated: use DecomposeContext, which adds cancellation and the
// Config.OnIteration observability hook. Decompose is kept as a thin
// compatibility wrapper and behaves identically for configs without a hook.
func Decompose(x *tensor.Coord, cfg Config) (*Model, error) {
	return DecomposeContext(context.Background(), x, cfg)
}

// DecomposeContext runs Algorithm 2 (P-Tucker for Sparse Tensors) on the
// observed entries of x and returns the fitted model. The variant (plain,
// Cache, Approx) is selected by cfg.Method.
//
// The loop structure follows the paper exactly: initialize factors and core
// with uniform random values in [0,1); repeatedly update every factor matrix
// with the row-wise rule (Algorithm 3) and measure the reconstruction error
// (Eq. 5); for P-Tucker-Approx, truncate noisy core entries (Algorithm 4);
// stop on convergence or MaxIters; finally orthogonalize the factors by QR
// and rotate the core by the R factors (Eqs. 7-8), which leaves the
// reconstruction error unchanged.
//
// Cancellation is checked before each iteration and between the per-mode
// factor updates inside one, so a cancelled fit stops within one iteration
// and returns ctx.Err() (context.Canceled or context.DeadlineExceeded) with
// a nil model. cfg.OnIteration, when set, observes every iteration and may
// stop the fit early (see Config.OnIteration). cfg is never mutated; the
// normalized copy produced by Validate is what the run (and the returned
// Model.Config) uses.
func DecomposeContext(ctx context.Context, x *tensor.Coord, cfg Config) (*Model, error) {
	m, _, err := decompose(ctx, x, cfg)
	return m, err
}

// decompose is the full fitting pipeline — init, sweep, finalize — returning
// both the model and the run's mutable state so a Fitter can keep fitting
// (warm-start Refit, FoldIn) where a one-shot DecomposeContext discards it.
func decompose(ctx context.Context, x *tensor.Coord, cfg Config) (*Model, *state, error) {
	cfg, err := cfg.Validate(x.Dims())
	if err != nil {
		return nil, nil, err
	}
	if x.NNZ() == 0 {
		return nil, nil, ErrEmptyTensor
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	st := newState(x, cfg)
	model := st.newModel()
	if err := st.sweep(ctx, model); err != nil {
		return nil, nil, err
	}
	if err := st.finish(model); err != nil {
		return nil, nil, err
	}
	return model, st, nil
}

// newState performs the init phase: random factors and core from cfg.Seed
// (Algorithm 2 line 1), the per-mode inverted index, and the Pres cache for
// P-Tucker-Cache. cfg must already be validated/normalized.
func newState(x *tensor.Coord, cfg Config) *state {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := x.Order()
	factors := make([]*mat.Dense, n)
	for k := 0; k < n; k++ {
		a := mat.NewDense(x.Dim(k), cfg.Ranks[k])
		data := a.Data()
		for i := range data {
			data[i] = rng.Float64()
		}
		factors[k] = a
	}
	st := &state{
		x:       x,
		omega:   tensor.NewModeIndex(x),
		factors: factors,
		core:    NewRandomCore(cfg.Ranks, rng),
		cfg:     cfg,
	}
	if cfg.Method == PTuckerCache {
		st.buildCache()
	}
	return st
}

// newModel wraps the state's live factors and core in a Model. The model
// aliases the state: further sweeps mutate it in place (Fitter.Snapshot deep
// copies when immutability is needed).
//
// The echoed Config drops the OnIteration hook and the SparsifyHoldout
// tensor: both are fit-time inputs, not data (they are likewise excluded
// from serialization), and keeping them would pin the hook's captured scope
// — or a whole held-out tensor — for the lifetime of a served model.
func (st *state) newModel() *Model {
	modelCfg := st.cfg
	modelCfg.OnIteration = nil
	modelCfg.SparsifyHoldout = nil
	return &Model{Factors: st.factors, Core: st.core, Config: modelCfg}
}

// sweep is the iteration phase (Algorithm 2 lines 2-7): repeated factor
// updates, error measurement, optional core refinement and truncation, trace
// recording, and the OnIteration hook, until convergence, MaxIters, early
// stop, or cancellation. It mutates st in place and records the run's
// statistics on model. On a warm start (Fitter.Refit) the state arrives
// already fitted and sweep simply continues from it.
func (st *state) sweep(ctx context.Context, model *Model) error {
	cfg := st.cfg
	x := st.x
	n := x.Order()

	prevErr := math.Inf(1)
	for iter := 1; iter <= cfg.MaxIters; iter++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		start := time.Now()

		// Lines 3: update factor matrices A(1)..A(N) by Algorithm 3.
		// Cancellation is rechecked between modes so even a single slow
		// iteration reacts to ctx within one factor update.
		// Per-thread row counts accumulate across every mode of the
		// iteration (updateFactor may return fewer slots than cfg.Threads
		// when a mode has fewer rows than workers), so WorkPerThread sums
		// to Σ_n I_n — the quantity the Figure 10 balance report needs —
		// rather than only the last mode's rows.
		work := make([]int64, cfg.Threads)
		for mode := 0; mode < n; mode++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			for t, c := range st.updateFactor(mode) {
				work[t] += c
			}
		}

		// Extension (off by default): element-wise core refinement.
		if cfg.UpdateCore {
			st.updateCore()
			if st.cache != nil {
				st.buildCache() // core values changed; memoized products are stale
			}
		}

		// Line 4: reconstruction error by Eq. (5).
		errNow := reconstructionError(x, st.factors, st.core, cfg.Threads)
		// |G| is captured at the same instant as Error — after the factor
		// updates, before this iteration's truncation — so an IterStats
		// always pairs an error with the core that produced it.
		coreNNZ := st.core.NNZ()

		// Lines 5-6: P-Tucker-Approx truncates noisy core entries.
		if cfg.Method == PTuckerApprox {
			st.truncateCore()
			if st.cache != nil {
				st.buildCache()
			}
		}

		stats := IterStats{
			Iter:    iter,
			Error:   errNow,
			Elapsed: time.Since(start),
			CoreNNZ: coreNNZ,
		}
		model.Trace = append(model.Trace, stats)
		model.WorkPerThread = work
		model.TrainError = errNow

		// Observability hook: stream progress, allow early stop.
		if cfg.OnIteration != nil {
			if err := cfg.OnIteration(stats); err != nil {
				if errors.Is(err, ErrStopIteration) {
					return nil
				}
				return fmt.Errorf("core: OnIteration hook failed at iteration %d: %w", iter, err)
			}
		}

		// Line 7: stop when the error converges.
		if cfg.Tol > 0 && prevErr < math.Inf(1) {
			denom := prevErr
			if denom == 0 {
				denom = 1
			}
			if math.Abs(prevErr-errNow)/denom < cfg.Tol {
				model.Converged = true
				return nil
			}
		}
		prevErr = errNow
	}
	return nil
}

// finish is the finalize phase (Algorithm 2 lines 8-11): record the truncated
// |G|, orthogonalize the factors by QR and rotate the core by the R factors
// (Eqs. 7-8), optionally prune the core under the Sparsify budget, and
// finalize the core's mode-sorted serving layout. Truncated fits
// (P-Tucker-Approx) rotate sparsely, so the core keeps its truncated |G|
// through finalization instead of being re-densified.
func (st *state) finish(model *Model) error {
	// |G| after the last truncation, recorded before finalize's rotation.
	model.FinalCoreNNZ = st.core.NNZ()
	model.IntermediateBytes = st.intermediateBytes()
	if err := finalize(st.factors, st.core, st.cfg.Method == PTuckerApprox); err != nil {
		return fmt.Errorf("core: orthogonalization failed: %w", err)
	}
	// The rotation stales the memoized Pres products (they embed the old
	// factors and core); drop the table so any later pass — the sparsify
	// scoring below, a warm Refit — rebuilds or bypasses it.
	st.cache = nil
	st.cacheW = 0
	st.sparsifyCore(model)
	st.core.FinalizeLayout()
	return nil
}

// finalize performs A(n) = Q(n)R(n), substitutes Q(n) for A(n), and applies
// G ← G ×n R(n) for every mode (Algorithm 2 lines 8-11). With sparse set
// (truncated fits) the core rotation runs on the live entry list and
// re-truncates to the pre-rotation |G| (see RotateAllSparse) — the
// rotation's upper-triangular R factors would otherwise re-densify the core
// and silently undo what the truncation paid for. Dense fits keep the exact
// Eq. (8) semantics, under which the reconstruction error is unchanged.
func finalize(factors []*mat.Dense, g *CoreTensor, sparse bool) error {
	rs := make([]*mat.Dense, len(factors))
	for k, a := range factors {
		q, r, err := mat.QRFactor(a)
		if err != nil {
			return err
		}
		factors[k].CopyFrom(q)
		rs[k] = r
	}
	if sparse {
		g.RotateAllSparse(rs, g.NNZ(), RotationDropTol)
	} else {
		g.RotateAll(rs)
	}
	return nil
}

// state carries the mutable pieces of one Decompose run.
type state struct {
	x       *tensor.Coord
	omega   *tensor.ModeIndex
	factors []*mat.Dense
	core    *CoreTensor
	cfg     Config

	// cache is the Pres table of P-Tucker-Cache, flattened row-major:
	// cache[α*cacheW + e] = Gβ(e) · ∏_k A(k)[ik][jk(e)] for observed entry α
	// and live core entry e. nil for the other variants.
	cache  []float64
	cacheW int

	// keepEmptyRows makes the row update leave rows with no observations at
	// their current values instead of zeroing them. Cold fits zero such rows
	// (the exact minimizer of the regularized loss when the row starts at
	// random noise); warm refits over a delta (Fitter.Refit after
	// ResumeFitter) keep them, because "no new observations" must not erase
	// a row the served model already fitted.
	keepEmptyRows bool
}

// intermediateBytes returns the analytic intermediate-data footprint
// (Definition 7) of the configured variant, matching Table III:
// O(T·J²) for P-Tucker (each thread holds δ, c, B, and the Cholesky factor),
// plus O(|Ω|·|G|) for the cache table.
func (st *state) intermediateBytes() int64 {
	maxJ := 0
	for _, j := range st.cfg.Ranks {
		if j > maxJ {
			maxJ = j
		}
	}
	perThread := int64(2*maxJ*maxJ+2*maxJ) * 8
	total := int64(st.cfg.Threads) * perThread
	if st.cfg.Method == PTuckerCache {
		total += int64(st.x.NNZ()) * int64(st.core.NNZ()) * 8
	}
	return total
}

// workspace is the per-thread scratch of the row update: the δ vector, the
// normal matrix B, the right-hand side c, and a buffer of factor-row
// pointers. Its size is what gives P-Tucker its O(T·J²) memory bound.
type workspace struct {
	delta []float64
	b     *mat.Dense
	c     []float64
	rows  [][]float64
}

func newWorkspace(order, maxJ int) *workspace {
	return &workspace{
		delta: make([]float64, maxJ),
		b:     mat.NewDense(maxJ, maxJ),
		c:     make([]float64, maxJ),
		rows:  make([][]float64, order),
	}
}

// updateFactor applies the row-wise update rule (Eq. 9) to every row of
// A(mode), in parallel (Algorithm 3 lines 5-15), and returns the per-thread
// row counts for balance reporting.
func (st *state) updateFactor(mode int) []int64 {
	a := st.factors[mode]
	jn := st.cfg.Ranks[mode]
	n := st.x.Order()
	threads := st.cfg.Threads

	var oldA *mat.Dense
	if st.cache != nil {
		oldA = a.Clone() // needed to rescale Pres after the update
	}

	ws := make([]*workspace, threads)
	for t := range ws {
		ws[t] = newWorkspace(n, jn)
	}

	counts := runIndexed(threads, st.cfg.Scheduling, st.cfg.ChunkSize, a.Rows(), func(tid, in int) {
		st.updateRow(mode, in, ws[tid])
	})

	if st.cache != nil {
		st.rescaleCache(mode, oldA)
	}
	return counts
}

// updateRow recomputes row in of A(mode) by Eq. (9) over the observed
// entries Ω(n)[in] from the inverted index.
func (st *state) updateRow(mode, in int, w *workspace) {
	st.solveRowEntries(mode, st.omega.Slice(mode, in), st.factors[mode].Row(in), w)
}

// solveRowEntries is the single-row least-squares kernel of Algorithm 3: it
// accumulates B(n)[in] (Eq. 10) and c(n)[in] (Eq. 11) over the given observed
// entry ids, then solves the SPD system [B + λI]ᵀ row = c in place. Rows with
// no observations are set to zero — the exact minimizer of the regularized
// loss for them — unless st.keepEmptyRows holds (warm refit). It is shared by
// the full per-mode sweep (updateRow) and by online fold-in, which solves it
// exactly once for a brand-new row at O(nnz_i·J²·|G|-factor) cost instead of
// running a whole fit.
func (st *state) solveRowEntries(mode int, entries []int, row []float64, w *workspace) {
	jn := st.cfg.Ranks[mode]

	if len(entries) == 0 {
		if st.keepEmptyRows {
			return
		}
		for j := range row {
			row[j] = 0
		}
		return
	}

	b := w.b
	b.Zero()
	c := w.c[:jn]
	for j := range c {
		c[j] = 0
	}

	// Sampling extension (Config.SampleRate): fit the row to a deterministic
	// stride subsample of its observations. The subsampled normal equations
	// remain a well-posed ridge regression; small rows are never subsampled
	// below minSampleEntries so the system stays informative.
	stride := 1
	if r := st.cfg.SampleRate; r > 0 {
		const minSampleEntries = 8
		stride = int(math.Round(1 / r))
		if len(entries)/max(stride, 1) < minSampleEntries {
			stride = len(entries) / minSampleEntries
		}
		if stride < 1 {
			stride = 1
		}
	}

	for ei := 0; ei < len(entries); ei += stride {
		alpha := entries[ei]
		delta := st.computeDelta(mode, alpha, w)
		xv := st.x.Value(alpha)
		// B += δδᵀ (upper triangle), c += Xα·δ.
		for j1 := 0; j1 < jn; j1++ {
			d1 := delta[j1]
			if d1 == 0 {
				continue
			}
			brow := b.Row(j1)
			for j2 := j1; j2 < jn; j2++ {
				brow[j2] += d1 * delta[j2]
			}
			c[j1] += xv * d1
		}
	}
	// Mirror to the lower triangle and add λI.
	for j1 := 0; j1 < jn; j1++ {
		for j2 := j1 + 1; j2 < jn; j2++ {
			b.Set(j2, j1, b.At(j1, j2))
		}
		b.Add(j1, j1, st.cfg.Lambda)
	}

	// Solve [B + λI] x = c. B is SPD for λ>0; Cholesky is the fast path and
	// LU the fallback for λ=0 with degenerate B. If both fail the row is
	// left unchanged, which keeps the loss monotone (skipping an update
	// can never increase it above the previous iterate).
	if ch, err := mat.NewCholesky(b); err == nil {
		copy(row, c)
		ch.SolveVecInPlace(row)
		return
	}
	if sol, err := mat.SolveVec(b, c); err == nil {
		copy(row, sol)
	}
}

// updateCore is the optional element-wise core refinement (extension; see
// Config.UpdateCore): one coordinate-descent sweep over live core entries,
// each solved exactly with the residual maintained incrementally.
func (st *state) updateCore() {
	x := st.x
	g := st.core
	n := x.Order()
	nnz := x.NNZ()
	threads := st.cfg.Threads

	// Residuals r(α) = Xα - prediction(α).
	resid := make([]float64, nnz)
	rowsBuf := make([][][]float64, threads)
	for t := range rowsBuf {
		rowsBuf[t] = make([][]float64, n)
	}
	runIndexed(threads, ScheduleStatic, 1, nnz, func(tid, e int) {
		rows := rowsBuf[tid]
		idx := x.Index(e)
		for k := 0; k < n; k++ {
			rows[k] = st.factors[k].Row(idx[k])
		}
		resid[e] = x.Value(e) - predictWithRows(g, rows)
	})

	weights := make([]float64, nnz) // wβ(α) for the current β
	for e := 0; e < g.NNZ(); e++ {
		beta := g.Index(e)
		old := g.Value(e)
		numer := parallelSum(threads, nnz, func(tid, a int) float64 {
			idx := x.Index(a)
			w := 1.0
			for k := 0; k < n; k++ {
				w *= st.factors[k].At(idx[k], beta[k])
			}
			weights[a] = w
			return w * (resid[a] + old*w)
		})
		denom := st.cfg.Lambda
		for _, w := range weights {
			denom += w * w
		}
		if denom == 0 {
			continue
		}
		next := numer / denom
		diff := next - old
		if diff != 0 {
			g.SetValue(e, next)
			for a := 0; a < nnz; a++ {
				resid[a] -= diff * weights[a]
			}
		}
	}
}
