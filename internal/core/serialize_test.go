package core

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
)

// fittedModel trains a small model on planted data for persistence tests.
func fittedModel(t *testing.T, seed int64) (*Model, [][]int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dims := []int{15, 12, 10}
	x := plantedTensor(rng, dims, []int{2, 2, 2}, 1200, 0.02)
	cfg := smallConfig([]int{2, 2, 2})
	cfg.Method = PTuckerApprox // exercises a sparse (truncated-then-rotated) core
	m, err := Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	idxs := make([][]int, 200)
	for i := range idxs {
		idx := make([]int, len(dims))
		for k, d := range dims {
			idx[k] = rng.Intn(d)
		}
		idxs[i] = idx
	}
	return m, idxs
}

func TestModelWriteToReadRoundTrip(t *testing.T) {
	m, idxs := fittedModel(t, 1)

	var buf bytes.Buffer
	n, err := m.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}

	back, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Bit-identical predictions: the acceptance bar for the format.
	for _, idx := range idxs {
		want, got := m.Predict(idx), back.Predict(idx)
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("prediction at %v changed across round trip: %v vs %v", idx, want, got)
		}
	}

	// Everything else survives too.
	if back.Order() != m.Order() {
		t.Fatalf("order %d want %d", back.Order(), m.Order())
	}
	for k, a := range m.Factors {
		if !a.Equal(back.Factors[k], 0) {
			t.Fatalf("factor %d not bit-identical", k)
		}
	}
	if back.Core.NNZ() != m.Core.NNZ() {
		t.Fatalf("core nnz %d want %d", back.Core.NNZ(), m.Core.NNZ())
	}
	if len(back.Trace) != len(m.Trace) {
		t.Fatalf("trace length %d want %d", len(back.Trace), len(m.Trace))
	}
	for i, it := range m.Trace {
		if back.Trace[i] != it {
			t.Fatalf("trace[%d] = %+v want %+v", i, back.Trace[i], it)
		}
	}
	if back.TrainError != m.TrainError || back.Converged != m.Converged ||
		back.IntermediateBytes != m.IntermediateBytes || back.FinalCoreNNZ != m.FinalCoreNNZ {
		t.Fatal("summary statistics changed across round trip")
	}
	if len(back.Config.Ranks) != len(m.Config.Ranks) || back.Config.Lambda != m.Config.Lambda ||
		back.Config.Seed != m.Config.Seed || back.Config.Method != m.Config.Method {
		t.Fatalf("config changed across round trip: %+v vs %+v", back.Config, m.Config)
	}
}

func TestSaveLoadModelFile(t *testing.T) {
	m, idxs := fittedModel(t, 2)
	path := filepath.Join(t.TempDir(), "model.ptkm")
	if err := SaveModel(path, m); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range idxs {
		if math.Float64bits(m.Predict(idx)) != math.Float64bits(back.Predict(idx)) {
			t.Fatalf("prediction at %v changed across save/load", idx)
		}
	}
}

func TestReadModelRejectsGarbage(t *testing.T) {
	if _, err := ReadModel(bytes.NewReader([]byte("this is not a model file"))); !errorIs(err, ErrBadModelFormat) {
		t.Fatalf("garbage: err = %v want ErrBadModelFormat", err)
	}
	if _, err := ReadModel(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream: expected error")
	}
}

// writeModelV1 serializes m in the version-1 layout (no FinalCoreNNZ in the
// summary), so the reader's backward compatibility can be regression-tested
// without a checked-in binary fixture.
func writeModelV1(m *Model, buf *bytes.Buffer) error {
	crc := crc32.NewIEEE()
	bw := &binWriter{w: io.MultiWriter(buf, crc)}

	bw.write([]byte(modelMagic))
	bw.write(uint32(1))

	c := m.Config
	bw.writeInts(c.Ranks)
	bw.write(c.Lambda)
	bw.write(int64(c.MaxIters))
	bw.write(c.Tol)
	bw.write(int64(c.Threads))
	bw.write(int64(c.Method))
	bw.write(c.TruncationRate)
	bw.write(int64(c.Scheduling))
	bw.write(c.Seed)
	bw.write(boolByte(c.UpdateCore))
	bw.write(int64(c.ChunkSize))
	bw.write(c.SampleRate)

	bw.write(uint64(len(m.Factors)))
	for _, a := range m.Factors {
		bw.write(uint64(a.Rows()))
		bw.write(uint64(a.Cols()))
		bw.write(a.Data())
	}

	g := m.Core
	bw.writeInts(g.dims)
	bw.write(uint64(g.NNZ()))
	for _, i := range g.idx {
		bw.write(uint32(i))
	}
	bw.write(g.val)

	bw.write(uint64(len(m.Trace)))
	for _, it := range m.Trace {
		bw.write(int64(it.Iter))
		bw.write(it.Error)
		bw.write(int64(it.Elapsed))
		bw.write(int64(it.CoreNNZ))
	}

	bw.write(boolByte(m.Converged))
	bw.write(m.TrainError)
	bw.write(m.IntermediateBytes)
	bw.write(uint64(len(m.WorkPerThread)))
	bw.write(m.WorkPerThread)

	if bw.err != nil {
		return bw.err
	}
	return binary.Write(buf, binary.LittleEndian, crc.Sum32())
}

// Models saved by the previous build (format v1) must stay loadable: the
// reader accepts v1 and defaults the appended FinalCoreNNZ to 0.
func TestReadModelAcceptsVersion1(t *testing.T) {
	m, idxs := fittedModel(t, 4)
	// v1 files predate the finalized layout; emulate one faithfully so both
	// sides of the comparison run the same (flat) predict kernel.
	m.Core.groupOff = nil
	var buf bytes.Buffer
	if err := writeModelV1(m, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadModel(&buf)
	if err != nil {
		t.Fatalf("v1 stream rejected: %v", err)
	}
	if back.FinalCoreNNZ != 0 {
		t.Fatalf("v1 FinalCoreNNZ = %d want default 0", back.FinalCoreNNZ)
	}
	for _, idx := range idxs {
		if math.Float64bits(m.Predict(idx)) != math.Float64bits(back.Predict(idx)) {
			t.Fatalf("prediction at %v changed across v1 round trip", idx)
		}
	}
}

func TestReadModelRejectsWrongVersion(t *testing.T) {
	m, _ := fittedModel(t, 3)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 0xFF // bump the little-endian version field past anything supported
	if _, err := ReadModel(bytes.NewReader(b)); !errorIs(err, ErrModelVersion) {
		t.Fatalf("err = %v want ErrModelVersion", err)
	}
}

func TestReadModelDetectsCorruption(t *testing.T) {
	m, _ := fittedModel(t, 4)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte: the checksum must catch it (unless the flip
	// happens to produce a structural error first, which is also a failure).
	b := append([]byte(nil), buf.Bytes()...)
	b[len(b)/2] ^= 0x40
	if _, err := ReadModel(bytes.NewReader(b)); err == nil {
		t.Fatal("corrupted payload: expected error")
	}

	// Truncation must be reported, not silently tolerated.
	if _, err := ReadModel(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); !errorIs(err, ErrBadModelFormat) {
		t.Fatalf("truncated: err = %v want ErrBadModelFormat", err)
	}
}

// A stream whose checksum is valid but whose core indices address columns
// outside the factor matrices must be rejected at load time — otherwise the
// first Predict would panic deep in the serve-path kernel.
func TestReadModelRejectsOutOfRangeCoreIndex(t *testing.T) {
	m, _ := fittedModel(t, 5)
	m.Core.idx[0] = m.Core.dims[0] + 3 // out of range, checksummed as written
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadModel(&buf); !errorIs(err, ErrBadModelFormat) {
		t.Fatalf("err = %v want ErrBadModelFormat", err)
	}
}
