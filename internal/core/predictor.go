package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/mat"
)

// ErrBadIndex reports a prediction index that does not address a cell of the
// served model: wrong number of modes, or a coordinate outside [0, In). It is
// the sentinel network-facing callers match on to map malformed input to a
// client error (HTTP 400) instead of a process crash.
var ErrBadIndex = errors.New("core: invalid prediction index")

// Predictor is the serving-side view of a fitted Model: an immutable handle
// that reconstructs tensor cells by Eq. (4), safe for concurrent use by any
// number of goroutines.
//
// NewPredictor deep-copies the model's factors and core, so the predictor's
// answers cannot change under a caller's feet even if the source Model is
// mutated afterwards. Per-call scratch (the factor-row view buffer) comes
// from a sync.Pool, so steady-state Predict does not allocate; PredictBatch
// fans a batch out across worker goroutines for throughput.
//
// Predictions are bit-identical to Model.Predict on the same model: both run
// the same kernel over identical float64 values in identical order.
type Predictor struct {
	factors []*mat.Dense
	core    *CoreTensor
	dims    []int
	workers int
	pool    *sync.Pool
}

// predictScratch is the per-call workspace: one factor-row pointer per mode.
type predictScratch struct {
	rows [][]float64
}

// NewPredictor builds a concurrent-safe predictor from a fitted model,
// snapshotting its factors and core. Batch prediction uses up to
// runtime.GOMAXPROCS(0) workers; see WithWorkers to override.
func NewPredictor(m *Model) *Predictor {
	order := len(m.Factors)
	factors := make([]*mat.Dense, order)
	dims := make([]int, order)
	for k, a := range m.Factors {
		factors[k] = a.Clone()
		dims[k] = a.Rows()
	}
	p := &Predictor{
		factors: factors,
		core:    m.Core.Clone(),
		dims:    dims,
		workers: runtime.GOMAXPROCS(0),
	}
	p.pool = &sync.Pool{New: func() interface{} {
		return &predictScratch{rows: make([][]float64, order)}
	}}
	return p
}

// NewPredictorShared builds a predictor that aliases the model's factors and
// core instead of deep-copying them — the zero-copy path for models backed by
// read-only file mappings, where a clone would pull the whole model onto the
// heap and defeat the mapping. The predictor never writes through the model
// (Predict/TopK only read factor rows and core entries), but the caller must
// guarantee nothing else mutates the model while the predictor lives. The
// serve layer satisfies this by construction: online fitting always resumes
// from a clone (ResumeFitter, Fitter.Snapshot), never the served model.
// Predictions are bit-identical to NewPredictor on the same model.
func NewPredictorShared(m *Model) *Predictor {
	order := len(m.Factors)
	factors := make([]*mat.Dense, order)
	dims := make([]int, order)
	for k, a := range m.Factors {
		factors[k] = a
		dims[k] = a.Rows()
	}
	p := &Predictor{
		factors: factors,
		core:    m.Core,
		dims:    dims,
		workers: runtime.GOMAXPROCS(0),
	}
	p.pool = &sync.Pool{New: func() interface{} {
		return &predictScratch{rows: make([][]float64, order)}
	}}
	return p
}

// WithWorkers returns a predictor that uses n workers for PredictBatch
// (n < 1 means serial). The returned predictor shares the immutable factor
// and core snapshots — and the scratch pool — with the receiver, so deriving
// differently-parallel views of one model is free.
func (p *Predictor) WithWorkers(n int) *Predictor {
	if n < 1 {
		n = 1
	}
	q := *p
	q.workers = n
	return &q
}

// Order returns the tensor order N.
func (p *Predictor) Order() int { return len(p.factors) }

// Dims returns a copy of the mode lengths I1..IN the predictor can address.
func (p *Predictor) Dims() []int { return append([]int(nil), p.dims...) }

// ValidateIndex reports whether idx addresses a cell of the served model:
// exactly one coordinate per mode, each within [0, In). A non-nil result
// wraps ErrBadIndex and names the offending mode and bound.
func (p *Predictor) ValidateIndex(idx []int) error {
	if len(idx) != len(p.dims) {
		return fmt.Errorf("%w: index has %d modes, model has %d", ErrBadIndex, len(idx), len(p.dims))
	}
	for k, i := range idx {
		if i < 0 || i >= p.dims[k] {
			return fmt.Errorf("%w: index %d out of range [0,%d) in mode %d", ErrBadIndex, i, p.dims[k], k)
		}
	}
	return nil
}

// checkIndex panics with a descriptive message on a malformed multi-index;
// in-process callers get the precise coordinate instead of a bare
// slice-bounds panic from deep inside the kernel. Network-facing callers
// should use PredictChecked / ValidateIndex instead.
func (p *Predictor) checkIndex(idx []int) {
	if err := p.ValidateIndex(idx); err != nil {
		panic(err.Error())
	}
}

// Predict reconstructs the value at multi-index idx by Eq. (4). It is safe
// for concurrent use and does not allocate in steady state.
func (p *Predictor) Predict(idx []int) float64 {
	p.checkIndex(idx)
	s := p.pool.Get().(*predictScratch)
	v := p.predictInto(s, idx)
	p.pool.Put(s)
	return v
}

// PredictChecked is Predict for untrusted input: a malformed index returns a
// wrapped ErrBadIndex instead of panicking, so a serving layer can answer a
// bad request with a client error while the process keeps running.
func (p *Predictor) PredictChecked(idx []int) (float64, error) {
	if err := p.ValidateIndex(idx); err != nil {
		return 0, err
	}
	s := p.pool.Get().(*predictScratch)
	v := p.predictInto(s, idx)
	p.pool.Put(s)
	return v, nil
}

func (p *Predictor) predictInto(s *predictScratch, idx []int) float64 {
	rows := s.rows
	for k, a := range p.factors {
		rows[k] = a.Row(idx[k])
	}
	return predictWithRows(p.core, rows)
}

// minBatchParallel is the batch size below which the goroutine fan-out costs
// more than it saves and PredictBatch runs serially.
const minBatchParallel = 64

// PredictBatch reconstructs every multi-index in idxs and returns the
// predictions in matching order. Large batches are split across the
// predictor's workers (static split: per-item cost is uniform, unlike the
// skewed row updates of fitting); each worker reuses one pooled scratch for
// its whole share. Safe for concurrent use alongside Predict and other
// PredictBatch calls.
func (p *Predictor) PredictBatch(idxs [][]int) []float64 {
	for _, idx := range idxs {
		p.checkIndex(idx)
	}
	return p.predictBatch(idxs)
}

// PredictBatchChecked is PredictBatch for untrusted input: every index is
// validated up front and the first malformed one is reported as a wrapped
// ErrBadIndex naming its position, instead of a panic. Validation happens
// exactly once — the scoring pass trusts it — so checked batches cost the
// same as PredictBatch.
func (p *Predictor) PredictBatchChecked(idxs [][]int) ([]float64, error) {
	for i, idx := range idxs {
		if err := p.ValidateIndex(idx); err != nil {
			return nil, fmt.Errorf("item %d: %w", i, err)
		}
	}
	return p.predictBatch(idxs), nil
}

// predictBatch is the shared scoring pass; indices must already be
// validated.
func (p *Predictor) predictBatch(idxs [][]int) []float64 {
	out := make([]float64, len(idxs))
	n := len(idxs)
	if n == 0 {
		return out
	}

	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < minBatchParallel {
		s := p.pool.Get().(*predictScratch)
		for i, idx := range idxs {
			out[i] = p.predictInto(s, idx)
		}
		p.pool.Put(s)
		return out
	}

	scratches := make([]*predictScratch, workers)
	for t := range scratches {
		scratches[t] = p.pool.Get().(*predictScratch)
	}
	runIndexed(workers, ScheduleStatic, 1, n, func(tid, i int) {
		out[i] = p.predictInto(scratches[tid], idxs[i])
	})
	for _, s := range scratches {
		p.pool.Put(s)
	}
	return out
}
