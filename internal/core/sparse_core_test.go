package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// Tests for the sparsity-preserving pipeline: the finalized mode-sorted core
// layout, the sparse QR rotation, and VeST-style post-fit pruning
// (Config.Sparsify).

// TestFinalizeLayoutGroupsAndSorts pins the canonical layout: entries sorted
// by little-endian linear offset, grouped contiguously by the last-mode
// coordinate, with a counting-sort offset table over it.
func TestFinalizeLayoutGroupsAndSorts(t *testing.T) {
	// Entries deliberately out of offset order, with one last-mode group (j=1)
	// empty.
	g := &CoreTensor{
		dims: []int{3, 2, 3},
		idx: []int{
			2, 1, 2,
			0, 0, 0,
			1, 0, 2,
			0, 1, 0,
		},
		val: []float64{4, 1, 3, 2},
	}
	g.FinalizeLayout()
	if !g.Finalized() {
		t.Fatal("core not finalized after FinalizeLayout")
	}
	st := g.strides()
	prev := -1
	for e := 0; e < g.NNZ(); e++ {
		off := g.entryOffset(e, st)
		if off <= prev {
			t.Fatalf("entry %d at offset %d not strictly after %d", e, off, prev)
		}
		prev = off
	}
	off := g.GroupOffsets()
	if want := g.dims[len(g.dims)-1] + 1; len(off) != want {
		t.Fatalf("group offsets length %d want %d", len(off), want)
	}
	n := g.Order()
	last := n - 1
	for j := 0; j+1 < len(off); j++ {
		for e := off[j]; e < off[j+1]; e++ {
			if got := g.Index(e)[last]; got != j {
				t.Fatalf("entry %d in group %d has last-mode coordinate %d", e, j, got)
			}
		}
	}
	if off[0] != 0 || off[len(off)-1] != g.NNZ() {
		t.Fatalf("group offsets %v do not cover [0,%d)", off, g.NNZ())
	}
	// Values followed their entries: offset order here is 1 (origin), 2, 3, 4.
	for e, want := range []float64{1, 2, 3, 4} {
		if g.Value(e) != want {
			t.Fatalf("entry %d value %v want %v (layout moved values and indices inconsistently)", e, g.Value(e), want)
		}
	}
}

// TestApproxFinalizeKeepsSparseCore is the tentpole acceptance check: a
// P-Tucker-Approx model keeps its truncated |G| through the QR finalization
// instead of being re-densified by the rotation.
func TestApproxFinalizeKeepsSparseCore(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := plantedTensor(rng, []int{10, 10, 10}, []int{3, 3, 3}, 300, 0.05)
	cfg := smallConfig([]int{3, 3, 3})
	cfg.Method = PTuckerApprox
	cfg.TruncationRate = 0.2
	cfg.MaxIters = 4
	m, err := Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	full := 27
	if m.FinalCoreNNZ >= full {
		t.Fatalf("FinalCoreNNZ = %d: truncation never ran", m.FinalCoreNNZ)
	}
	if got := m.Core.NNZ(); got > m.FinalCoreNNZ {
		t.Fatalf("served core has %d entries, finalize re-densified past the truncated %d", got, m.FinalCoreNNZ)
	}
	if !m.Core.Finalized() {
		t.Fatal("fitted core is not in the finalized layout")
	}
	// The sparse rotation must still be the correct rotation: factors end
	// orthonormal and the model still explains the planted data reasonably.
	for k, a := range m.Factors {
		if !mat.Gram(a).Equal(mat.Identity(a.Cols()), 1e-8) {
			t.Fatalf("factor %d not orthonormal after sparse finalize", k)
		}
	}
	if f := m.Fit(x); f < 0.5 {
		t.Fatalf("fit %v collapsed after sparse finalize", f)
	}
}

// TestSparsePredictMatchesDensifiedClone pins the bit-identity contract of
// the grouped kernels: a sparse finalized core and a densified clone of it
// (zeros materialized, same layout) answer Predict and TopK with the exact
// same float64 bits — a zero entry's contribution is an FP identity, and the
// summation association depends only on the layout.
func TestSparsePredictMatchesDensifiedClone(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	dims := []int{12, 9, 7}
	x := plantedTensor(rng, dims, []int{3, 3, 3}, 500, 0.05)
	cfg := smallConfig([]int{3, 3, 3})
	cfg.Method = PTuckerApprox
	cfg.TruncationRate = 0.25
	cfg.MaxIters = 4
	m, err := Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Core.NNZ() >= 27 {
		t.Fatal("fixture core is not sparse; the comparison would be vacuous")
	}

	dense := &Model{Factors: m.Factors, Core: m.Core.Clone(), Config: m.Config}
	dense.Core.FromDense(m.Core.ToDense(), false)
	dense.Core.FinalizeLayout()
	if dense.Core.NNZ() != 27 {
		t.Fatalf("densified clone has %d entries want the full 27", dense.Core.NNZ())
	}

	for trial := 0; trial < 200; trial++ {
		idx := make([]int, len(dims))
		for k, d := range dims {
			idx[k] = rng.Intn(d)
		}
		a, b := m.Predict(idx), dense.Predict(idx)
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("Predict at %v: sparse %x vs densified %x", idx, math.Float64bits(a), math.Float64bits(b))
		}
	}

	rs, rd := NewPredictor(m).Recommender(), NewPredictor(dense).Recommender()
	for mode := 0; mode < len(dims); mode++ {
		query := []int{2, 3, 1}
		top1, err := rs.TopK(query, mode, 5)
		if err != nil {
			t.Fatal(err)
		}
		top2, err := rd.TopK(query, mode, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(top1) != len(top2) {
			t.Fatalf("mode %d: %d vs %d recommendations", mode, len(top1), len(top2))
		}
		for i := range top1 {
			if top1[i].Index != top2[i].Index ||
				math.Float64bits(top1[i].Score) != math.Float64bits(top2[i].Score) {
				t.Fatalf("mode %d rec %d: sparse %+v vs densified %+v", mode, i, top1[i], top2[i])
			}
		}
	}
}

// TestSparsifyBudgetRespected checks the pruning contract: with Sparsify set,
// the served model's reconstruction error stays within (1+budget)× the
// unpruned fit's error, and entries were actually removed. The unsparsified
// twin run IS the pre-prune model (pruning is the last step of an otherwise
// deterministic pipeline), so the budget can be checked externally.
func TestSparsifyBudgetRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x := plantedTensor(rng, []int{12, 10, 8}, []int{3, 3, 3}, 700, 0.1)
	base := smallConfig([]int{3, 3, 3})
	m0, err := Decompose(x, base)
	if err != nil {
		t.Fatal(err)
	}
	pruned := base
	pruned.Sparsify = 0.5
	m1, err := Decompose(x, pruned)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Core.NNZ() >= m0.Core.NNZ() {
		t.Fatalf("sparsify removed nothing: %d vs %d entries", m1.Core.NNZ(), m0.Core.NNZ())
	}
	budget := m0.ReconstructionError(x) * (1 + pruned.Sparsify)
	if got := m1.ReconstructionError(x); got > budget*(1+1e-12) {
		t.Fatalf("pruned error %v exceeds budget %v", got, budget)
	}
	if !m1.Core.Finalized() {
		t.Fatal("pruned core lost the finalized layout")
	}
	// TrainError must describe the pruned model actually returned.
	if got, want := m1.TrainError, m1.ReconstructionError(x); math.Abs(got-want) > 1e-9*math.Max(1, want) {
		t.Fatalf("TrainError %v does not match the served model's error %v", got, want)
	}
}

// TestSparsifyHoldoutGatesBudget checks the generalization-gated variant: the
// budget is measured on Config.SparsifyHoldout, not the training set.
func TestSparsifyHoldoutGatesBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	x := plantedTensor(rng, []int{12, 10, 8}, []int{3, 3, 3}, 900, 0.1)
	train, holdout := x.Split(0.8, rand.New(rand.NewSource(5)))
	base := smallConfig([]int{3, 3, 3})
	m0, err := Decompose(train, base)
	if err != nil {
		t.Fatal(err)
	}
	pruned := base
	pruned.Sparsify = 0.5
	pruned.SparsifyHoldout = holdout
	m1, err := Decompose(train, pruned)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Core.NNZ() >= m0.Core.NNZ() {
		t.Fatalf("sparsify removed nothing: %d vs %d entries", m1.Core.NNZ(), m0.Core.NNZ())
	}
	budget := m0.ReconstructionError(holdout) * (1 + pruned.Sparsify)
	if got := m1.ReconstructionError(holdout); got > budget*(1+1e-12) {
		t.Fatalf("pruned holdout error %v exceeds budget %v", got, budget)
	}
	// The holdout is fit-time input, never model data.
	if m1.Config.SparsifyHoldout != nil {
		t.Fatal("SparsifyHoldout leaked into the returned model's config")
	}
}

// TestSparsifyEqualSeedsBitIdentical extends the determinism pin to
// sparsified runs: equal seeds (and any thread count) give bit-identical
// pruned models.
func TestSparsifyEqualSeedsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x := plantedTensor(rng, []int{12, 10, 8}, []int{3, 3, 3}, 600, 0.05)
	cfg := smallConfig([]int{3, 3, 3})
	cfg.Method = PTuckerApprox
	cfg.TruncationRate = 0.2
	cfg.Sparsify = 0.3
	cfg.Threads = 4

	m1, err := Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !modelsBitIdentical(m1, m2) {
		t.Fatal("equal seeds produced different sparsified models")
	}
	cfg.Threads = 1
	m3, err := Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !modelsBitIdentical(m1, m3) {
		t.Fatal("thread count changed the sparsified model")
	}
}

// TestSparseModelSaveLoadRoundTrip pins the persistence contract for sparse
// finalized cores: save → load → predict is bit-identical, the finalized
// layout survives, and re-encoding the loaded model reproduces the bytes
// exactly (decode∘encode is a fixed point).
func TestSparseModelSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	dims := []int{12, 9, 7}
	x := plantedTensor(rng, dims, []int{3, 3, 3}, 500, 0.05)
	cfg := smallConfig([]int{3, 3, 3})
	cfg.Method = PTuckerApprox
	cfg.TruncationRate = 0.2
	cfg.Sparsify = 0.4
	m, err := Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Core.Finalized() || m.Core.NNZ() >= 27 {
		t.Fatalf("fixture not sparse+finalized (nnz %d)", m.Core.NNZ())
	}

	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), buf.Bytes()...)
	back, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Core.Finalized() {
		t.Fatal("finalized layout lost across the round trip")
	}
	if back.Core.NNZ() != m.Core.NNZ() {
		t.Fatalf("core nnz changed: %d vs %d", back.Core.NNZ(), m.Core.NNZ())
	}
	if back.Config.Sparsify != cfg.Sparsify {
		t.Fatalf("Config.Sparsify %v not persisted (got %v)", cfg.Sparsify, back.Config.Sparsify)
	}
	for trial := 0; trial < 100; trial++ {
		idx := make([]int, len(dims))
		for k, d := range dims {
			idx[k] = rng.Intn(d)
		}
		a, b := m.Predict(idx), back.Predict(idx)
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("prediction at %v changed across round trip", idx)
		}
	}
	var again bytes.Buffer
	if _, err := back.WriteTo(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, again.Bytes()) {
		t.Fatal("re-encoding the loaded model produced different bytes")
	}
}

// TestReadModelAcceptsVersion2Fixture loads a v2-format file generated by the
// previous build (checked into testdata before the v3 bump): old models must
// keep loading, with the v3 fields defaulted.
func TestReadModelAcceptsVersion2Fixture(t *testing.T) {
	m, err := LoadModel("testdata/model_v2.ptkm")
	if err != nil {
		t.Fatalf("v2 fixture rejected: %v", err)
	}
	if m.Config.Sparsify != 0 {
		t.Fatalf("v2 Sparsify = %v want default 0", m.Config.Sparsify)
	}
	if m.Core.Finalized() {
		t.Fatal("v2 core claims a finalized layout that predates the concept")
	}
	if m.Order() != 3 {
		t.Fatalf("fixture order = %d want 3", m.Order())
	}
	for k, want := range []int{6, 5, 4} {
		if got := m.Factors[k].Rows(); got != want {
			t.Fatalf("fixture factor %d has %d rows want %d", k, got, want)
		}
	}
	if v := m.Predict([]int{5, 4, 3}); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("fixture prediction = %v", v)
	}
	// Upgrading: re-saving writes v3 and must preserve predictions exactly.
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		idx := []int{i % 6, i % 5, i % 4}
		if math.Float64bits(m.Predict(idx)) != math.Float64bits(back.Predict(idx)) {
			t.Fatalf("prediction at %v changed across the v2→v3 upgrade", idx)
		}
	}
}

// TestReadModelRejectsLyingFinalizedFlag covers the reader's layout check: a
// stream whose flags byte claims a finalized layout but whose entries are not
// in strictly increasing offset order must be rejected, not trusted.
func TestReadModelRejectsLyingFinalizedFlag(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	x := plantedTensor(rng, []int{8, 7, 6}, []int{2, 2, 2}, 300, 0.05)
	cfg := smallConfig([]int{2, 2, 2})
	m, err := Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Swap two core entries so the flagged order is a lie, then re-encode
	// (WriteTo recomputes the CRC, so only the layout check can catch it).
	g := m.Core
	if g.NNZ() < 2 {
		t.Fatal("fixture core too small")
	}
	n := g.Order()
	g.idx[0], g.idx[n] = g.idx[n], g.idx[0]
	for k := 1; k < n; k++ {
		g.idx[k], g.idx[n+k] = g.idx[n+k], g.idx[k]
	}
	g.val[0], g.val[1] = g.val[1], g.val[0]
	// groupOff still claims finalized; WriteTo writes the flag.
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadModel(&buf); !errorIs(err, ErrBadModelFormat) {
		t.Fatalf("err = %v want ErrBadModelFormat", err)
	}
}

// TestMaxAbsEntriesHeapMatchesOrder pins the bounded-heap rewrite of
// MaxAbsEntries against the documented order: |value| descending, ties by
// entry position ascending, exactly min(k, nnz) results.
func TestMaxAbsEntriesHeapMatchesOrder(t *testing.T) {
	g := &CoreTensor{
		dims: []int{2, 2, 3},
		idx: []int{
			0, 0, 0,
			1, 0, 0,
			0, 1, 1,
			1, 1, 1,
			0, 0, 2,
			1, 1, 2,
		},
		val: []float64{-3, 1, 3, -0.5, 2, 1},
	}
	idxs, vals := g.MaxAbsEntries(4)
	wantVals := []float64{-3, 3, 2, 1}
	wantFirst := [][]int{{0, 0, 0}, {0, 1, 1}, {0, 0, 2}, {1, 0, 0}}
	if len(idxs) != 4 || len(vals) != 4 {
		t.Fatalf("got %d/%d results want 4", len(idxs), len(vals))
	}
	for i := range wantVals {
		if vals[i] != wantVals[i] {
			t.Fatalf("rank %d value %v want %v", i, vals[i], wantVals[i])
		}
		for k := range wantFirst[i] {
			if idxs[i][k] != wantFirst[i][k] {
				t.Fatalf("rank %d index %v want %v", i, idxs[i], wantFirst[i])
			}
		}
	}
	// k past nnz clamps; k ≤ 0 is empty.
	if idxs, _ := g.MaxAbsEntries(100); len(idxs) != g.NNZ() {
		t.Fatalf("k>nnz returned %d entries want %d", len(idxs), g.NNZ())
	}
	if idxs, vals := g.MaxAbsEntries(0); idxs != nil || vals != nil {
		t.Fatal("k=0 should return nil, nil")
	}
}

// TestRotateAllSparseMatchesDense checks the sparse rotation against the
// dense reference on a core with no truncation: with keep covering every
// entry and a zero tolerance floor, both paths must produce the same rotated
// tensor (the sparse path is exact, not approximate, when nothing is
// dropped).
func TestRotateAllSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	g1 := NewRandomCore([]int{3, 2, 2}, rng)
	g2 := g1.Clone()
	rs := make([]*mat.Dense, len(g1.Dims()))
	for k, j := range g1.Dims() {
		r := mat.NewDense(j, j)
		for i := range r.Data() {
			r.Data()[i] = rng.NormFloat64()
		}
		rs[k] = r
	}
	g1.RotateAll(rs)
	g2.RotateAllSparse(rs, 0, 0)

	d1, d2 := g1.ToDense(), g2.ToDense()
	for i, v := range d1.Data() {
		if math.Abs(v-d2.Data()[i]) > 1e-12 {
			t.Fatalf("cell %d: dense rotation %v vs sparse rotation %v", i, v, d2.Data()[i])
		}
	}
	// keep bounds |G| by largest magnitude.
	g3 := g1.Clone()
	g3.RotateAllSparse(rs, 5, 0)
	if g3.NNZ() > 5 {
		t.Fatalf("keep=5 left %d entries", g3.NNZ())
	}
}
