package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"strconv"
	"time"
	"unsafe"

	"repro/internal/mat"
)

// Zero-copy model decoding. ModelFromMapping builds a *Model whose bulk
// arrays — factor data, core indices, core values — alias the provided byte
// slice (typically an mmap of a .ptkm file) instead of being decoded onto
// the heap. Open cost is O(metadata + core nnz): the v4 footer's metadata
// CRC covers everything except the bulk blocks, which are only
// bounds-checked (factor data) or range-validated (core indices, which
// prediction dereferences and which are small next to the factor bytes that
// dominate a large model).
//
// The returned model must be treated as read-only: writing through it is a
// fault when the mapping is PROT_READ. The serving layer upholds this —
// online learning resumes on deep clones (ResumeFitter), never in place.

// ErrNotMappable reports a stream that cannot be served in place on this
// machine: written before format v4, not finalized, or a platform whose int
// is not 64-bit. Callers fall back to the heap decoder.
var ErrNotMappable = errors.New("core: model stream is not mappable in place")

// mapReader walks the metadata of a v4 stream held entirely in memory,
// hashing every metadata byte it consumes and bounds-checking the bulk
// blocks it skips, with the same sticky-error style as binReader.
type mapReader struct {
	data []byte
	off  int
	lim  int // metadata and blocks must end exactly here (start of the main CRC)
	meta hash.Hash32
	err  error
}

func (r *mapReader) fail(format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

// take consumes n metadata bytes, feeding them to the metadata hash.
func (r *mapReader) take(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.lim-r.off {
		r.fail("%w: %s overruns the stream", ErrBadModelFormat, what)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.meta.Write(b)
	r.off += n
	return b
}

// block skips an n-byte bulk block (not hashed), returning its start offset.
func (r *mapReader) block(n int, what string) int {
	if r.err != nil {
		return 0
	}
	if n < 0 || n > r.lim-r.off {
		r.fail("%w: %s block overruns the stream", ErrBadModelFormat, what)
		return 0
	}
	o := r.off
	r.off += n
	return o
}

// pad consumes the zero padding up to the next 8-byte offset.
func (r *mapReader) pad(before string) {
	if p := -r.off & 7; p > 0 {
		for _, z := range r.take(p, "padding") {
			if z != 0 {
				r.fail("%w: nonzero padding before %s", ErrBadModelFormat, before)
			}
		}
	}
}

func (r *mapReader) u8(what string) uint8 {
	b := r.take(1, what)
	if r.err != nil {
		return 0
	}
	return b[0]
}

func (r *mapReader) u64(what string) uint64 {
	b := r.take(8, what)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *mapReader) i64(what string) int64 { return int64(r.u64(what)) }

func (r *mapReader) f64(what string) float64 {
	b := r.take(8, what)
	if r.err != nil {
		return 0
	}
	return *(*float64)(unsafe.Pointer(&b[0]))
}

func (r *mapReader) length(what string) int {
	n := r.u64(what)
	if r.err == nil && n > maxModelSlice {
		r.fail("%w: %s length %d exceeds limit", ErrBadModelFormat, what, n)
	}
	if r.err != nil {
		return 0
	}
	return int(n)
}

func (r *mapReader) ints(what string) []int {
	n := r.length(what)
	if r.err != nil {
		return nil
	}
	xs := make([]int, 0, min(n, readChunk))
	for i := 0; i < n && r.err == nil; i++ {
		xs = append(xs, int(r.i64(what)))
	}
	if r.err != nil {
		return nil
	}
	return xs
}

// aliasFloat64 reinterprets n float64 words of data starting at off. The
// caller guarantees bounds and 8-byte alignment of &data[off].
func aliasFloat64(data []byte, off, n int) []float64 {
	if n == 0 {
		return []float64{}
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&data[off])), n)
}

// aliasInt reinterprets n int64 words of data starting at off as []int
// (64-bit platforms only; the caller has checked strconv.IntSize).
func aliasInt(data []byte, off, n int) []int {
	if n == 0 {
		return []int{}
	}
	return unsafe.Slice((*int)(unsafe.Pointer(&data[off])), n)
}

// ModelFromMapping decodes a v4 model stream held in data without copying
// its bulk blocks: the returned model's factor data, core indices, and core
// values alias data directly. The mapping must outlive every use of the
// model, and the model must not be mutated (the serving layer's online
// paths clone before writing, so this holds there by construction).
//
// Returns ErrNotMappable when the stream or platform cannot support
// in-place serving (pre-v4 stream, non-finalized core, 32-bit int,
// misaligned base address) — the heap decoder handles those — and
// ErrBadModelFormat / ErrModelChecksum for streams no decoder should trust.
func ModelFromMapping(data []byte) (*Model, error) {
	if strconv.IntSize != 64 {
		return nil, fmt.Errorf("%w: %d-bit int cannot alias int64 indices", ErrNotMappable, strconv.IntSize)
	}
	headerSize := len(modelMagic) + 4
	if len(data) < headerSize+4+footerSize {
		return nil, fmt.Errorf("%w: %d bytes is too short for any model stream", ErrBadModelFormat, len(data))
	}
	if string(data[:len(modelMagic)]) != modelMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadModelFormat, data[:len(modelMagic)])
	}
	version := binary.LittleEndian.Uint32(data[len(modelMagic):headerSize])
	if version < 1 || version > modelVersion {
		return nil, fmt.Errorf("%w: got v%d, want v1..v%d", ErrModelVersion, version, modelVersion)
	}
	if version < 4 {
		return nil, fmt.Errorf("%w: stream version v%d predates the aligned layout", ErrNotMappable, version)
	}
	if string(data[len(data)-len(footerMagic):]) != footerMagic {
		return nil, fmt.Errorf("%w: truncated stream (missing %q footer)", ErrBadModelFormat, footerMagic)
	}
	if uintptr(unsafe.Pointer(&data[0]))&7 != 0 {
		// mmap always hands back page-aligned memory; this only trips for
		// odd in-memory callers, which the heap decoder serves fine.
		return nil, fmt.Errorf("%w: base address not 8-byte aligned", ErrNotMappable)
	}

	storedMeta := binary.LittleEndian.Uint32(data[len(data)-footerSize : len(data)-len(footerMagic)])
	r := &mapReader{
		data: data,
		lim:  len(data) - 4 - footerSize, // metadata + blocks end at the main CRC
		meta: crc32.NewIEEE(),
	}
	r.take(headerSize, "header")

	var c Config
	c.Ranks = r.ints("config ranks")
	c.Lambda = r.f64("config lambda")
	c.MaxIters = int(r.i64("config max iters"))
	c.Tol = r.f64("config tol")
	c.Threads = int(r.i64("config threads"))
	c.Method = Method(r.i64("config method"))
	c.TruncationRate = r.f64("config truncation rate")
	c.Scheduling = Scheduling(r.i64("config scheduling"))
	c.Seed = int64(r.u64("config seed"))
	c.UpdateCore = r.u8("config update-core") != 0
	c.ChunkSize = int(r.i64("config chunk size"))
	c.SampleRate = r.f64("config sample rate")
	c.Sparsify = r.f64("config sparsify")

	nFactors := r.length("factor count")
	type factorBlock struct{ rows, cols, off int }
	fbs := make([]factorBlock, 0, min(nFactors, readChunk))
	for k := 0; k < nFactors && r.err == nil; k++ {
		rows := r.u64("factor rows")
		cols := r.u64("factor cols")
		if r.err == nil && (rows > maxModelSlice || cols > maxModelSlice || rows*cols > maxModelSlice) {
			r.fail("%w: factor %d shape %dx%d exceeds limit", ErrBadModelFormat, k, rows, cols)
			break
		}
		r.pad("factor data")
		off := r.block(int(rows*cols)*8, "factor data")
		fbs = append(fbs, factorBlock{rows: int(rows), cols: int(cols), off: off})
	}

	coreFlags := r.u8("core flags")
	if r.err == nil && coreFlags&^uint8(coreFlagFinalized) != 0 {
		return nil, fmt.Errorf("%w: unknown core flags %#x", ErrBadModelFormat, coreFlags)
	}
	dims := r.ints("core dims")
	order := len(dims)
	nnz := r.length("core nnz")
	if r.err == nil && (order != nFactors || nnz*order > maxModelSlice) {
		return nil, fmt.Errorf("%w: core order %d / nnz %d inconsistent with %d factors",
			ErrBadModelFormat, order, nnz, nFactors)
	}
	r.pad("core indices")
	idxOff := r.block(nnz*order*8, "core index")
	valOff := r.block(nnz*8, "core value")

	nTrace := r.length("trace length")
	trace := make([]IterStats, 0, min(nTrace, readChunk))
	for i := 0; i < nTrace && r.err == nil; i++ {
		it := IterStats{
			Iter:    int(r.i64("trace iter")),
			Error:   r.f64("trace error"),
			Elapsed: time.Duration(r.i64("trace elapsed")),
			CoreNNZ: int(r.i64("trace core nnz")),
		}
		if r.err == nil {
			trace = append(trace, it)
		}
	}

	m := &Model{Config: c, Trace: trace}
	m.Converged = r.u8("summary converged") != 0
	m.TrainError = r.f64("summary train error")
	m.IntermediateBytes = r.i64("summary intermediate bytes")
	m.FinalCoreNNZ = int(r.i64("summary final core nnz"))
	nWork := r.length("work-per-thread length")
	work := make([]int64, 0, min(nWork, readChunk))
	for i := 0; i < nWork && r.err == nil; i++ {
		work = append(work, r.i64("work-per-thread"))
	}
	if r.err == nil {
		m.WorkPerThread = work
	}

	if r.err != nil {
		return nil, r.err
	}
	if r.off != r.lim {
		return nil, fmt.Errorf("%w: %d bytes between summary and checksum", ErrBadModelFormat, r.lim-r.off)
	}
	if sum := r.meta.Sum32(); sum != storedMeta {
		return nil, fmt.Errorf("%w: metadata got %08x, want %08x", ErrModelChecksum, sum, storedMeta)
	}

	// Metadata is trusted now; wire the bulk blocks in place. Block offsets
	// are 8-aligned by construction (pad ran before each block and every
	// block is a whole number of 8-byte words).
	m.Factors = make([]*mat.Dense, len(fbs))
	for k, fb := range fbs {
		m.Factors[k] = mat.NewDenseData(fb.rows, fb.cols, aliasFloat64(data, fb.off, fb.rows*fb.cols))
	}
	g := &CoreTensor{
		dims: dims,
		idx:  aliasInt(data, idxOff, nnz*order),
		val:  aliasFloat64(data, valOff, nnz),
	}
	m.Core = g

	// The same structural sanity the heap reader enforces: everything the
	// prediction kernels dereference must be in range.
	for k, a := range m.Factors {
		if a.Cols() != dims[k] {
			return nil, fmt.Errorf("%w: factor %d has %d columns but core dim is %d",
				ErrBadModelFormat, k, a.Cols(), dims[k])
		}
	}
	for e := 0; e < nnz; e++ {
		for k := 0; k < order; k++ {
			if i := g.idx[e*order+k]; i < 0 || i >= dims[k] {
				return nil, fmt.Errorf("%w: core entry %d mode %d index %d out of range [0,%d)",
					ErrBadModelFormat, e, k, i, dims[k])
			}
		}
	}
	if coreFlags&coreFlagFinalized == 0 {
		// Finalizing would sort — a write through the mapping. Models saved
		// since the finalized layout landed always carry the flag; anything
		// older goes through the heap decoder.
		return nil, fmt.Errorf("%w: core entry list is not finalized", ErrNotMappable)
	}
	st := g.strides()
	prev := -1
	for e := 0; e < nnz; e++ {
		off := g.entryOffset(e, st)
		if off <= prev {
			return nil, fmt.Errorf("%w: core flagged finalized but entry %d breaks offset order",
				ErrBadModelFormat, e)
		}
		prev = off
	}
	// Entries verified sorted: FinalizeLayout only allocates the (heap-side)
	// group index and never moves them.
	g.FinalizeLayout()
	return m, nil
}
