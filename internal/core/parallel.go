package core

import (
	"sync"
	"sync/atomic"
)

// runIndexed distributes n work items over `threads` workers and calls
// fn(tid, item) for each item. The policy mirrors Section III-D:
//
//   - ScheduleStatic splits the items into T contiguous blocks, the "naive
//     parallelization" used for error computation and cache maintenance where
//     the per-item cost is uniform.
//   - ScheduleDynamic hands out chunks of `chunk` items from an atomic
//     counter, the OpenMP schedule(dynamic) analog used for row updates where
//     |Ω(n)[in]| skew would otherwise leave threads idle.
//
// It returns the number of items processed by each worker so callers can
// report workload balance (Figure 10 / Section IV-D).
func runIndexed(threads int, sched Scheduling, chunk int, n int, fn func(tid, item int)) []int64 {
	if threads < 1 {
		threads = 1
	}
	if threads > n {
		threads = n
		if threads == 0 {
			return nil
		}
	}
	counts := make([]int64, threads)
	var wg sync.WaitGroup
	wg.Add(threads)

	if sched == ScheduleStatic {
		for t := 0; t < threads; t++ {
			lo := t * n / threads
			hi := (t + 1) * n / threads
			go func(tid, lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					fn(tid, i)
				}
				counts[tid] = int64(hi - lo)
			}(t, lo, hi)
		}
		wg.Wait()
		return counts
	}

	if chunk < 1 {
		chunk = 1
	}
	var cursor int64
	for t := 0; t < threads; t++ {
		go func(tid int) {
			defer wg.Done()
			var done int64
			for {
				start := int(atomic.AddInt64(&cursor, int64(chunk))) - chunk
				if start >= n {
					break
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(tid, i)
				}
				done += int64(end - start)
			}
			counts[tid] = done
		}(t)
	}
	wg.Wait()
	return counts
}

// parallelSum evaluates fn for every item in [0,n) and returns the sum of the
// per-thread partial results; used for the parallel reconstruction-error pass
// (Section III-D, "Section 3").
func parallelSum(threads, n int, fn func(tid, item int) float64) float64 {
	if threads < 1 {
		threads = 1
	}
	partial := make([]float64, threads)
	runIndexed(threads, ScheduleStatic, 1, n, func(tid, item int) {
		partial[tid] += fn(tid, item)
	})
	var s float64
	for _, p := range partial {
		s += p
	}
	return s
}
