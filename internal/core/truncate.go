package core

import (
	"sort"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// PartialErrors computes R(β) (Eq. 13) for every live core entry: the change
// in squared reconstruction error attributable to β, i.e. error-with-β minus
// error-without-β. Positive R(β) means the entry hurts the fit ("noisy");
// the largest values are the truncation candidates of Algorithm 4, and the
// distribution of R(β) is what Figure 5 plots.
//
// Using pβ(α) = Gβ·∏_n A(n)[in][jn] and full(α) = Σ_γ pγ(α), Eq. 13
// simplifies to R(β) = Σ_α pβ(α)·(2·(full(α) - Xα) - pβ(α)), which is what
// the inner loop evaluates. Cost is O(|Ω|·|G|·N), computed in parallel with
// per-thread accumulators.
func PartialErrors(st *state) []float64 {
	x := st.x
	g := st.core
	n := x.Order()
	nnz := x.NNZ()
	width := g.NNZ()
	threads := st.cfg.Threads
	if threads < 1 {
		threads = 1
	}

	acc := make([][]float64, threads)
	for t := range acc {
		acc[t] = make([]float64, width)
	}
	prodBuf := make([][]float64, threads)
	for t := range prodBuf {
		prodBuf[t] = make([]float64, width)
	}
	rowsBuf := make([][][]float64, threads)
	for t := range rowsBuf {
		rowsBuf[t] = make([][]float64, n)
	}

	gi := g.idx
	gv := g.val
	runIndexed(threads, ScheduleStatic, 1, nnz, func(tid, alpha int) {
		rows := rowsBuf[tid]
		idx := x.Index(alpha)
		for k := 0; k < n; k++ {
			rows[k] = st.factors[k].Row(idx[k])
		}
		prods := prodBuf[tid]
		var full float64
		if st.cache != nil {
			cacheRow := st.cache[alpha*st.cacheW : alpha*st.cacheW+width]
			copy(prods, cacheRow)
			for _, p := range prods {
				full += p
			}
		} else {
			for e := 0; e < width; e++ {
				base := e * n
				p := gv[e]
				for k := 0; k < n; k++ {
					p *= rows[k][gi[base+k]]
				}
				prods[e] = p
				full += p
			}
		}
		xv := x.Value(alpha)
		out := acc[tid]
		for e, p := range prods {
			out[e] += p * (2*(full-xv) - p)
		}
	})

	r := make([]float64, width)
	for _, part := range acc {
		for e, v := range part {
			r[e] += v
		}
	}
	return r
}

// truncateCore removes the top-p fraction of live core entries ranked by
// R(β) descending (Algorithm 4). At least one entry always survives so the
// model never degenerates to the empty sum.
func (st *state) truncateCore() {
	g := st.core
	width := g.NNZ()
	if width <= 1 {
		return
	}
	r := PartialErrors(st)

	k := int(st.cfg.TruncationRate * float64(width))
	if k <= 0 {
		return
	}
	if k >= width {
		k = width - 1
	}

	// Rank entries by R(β) descending (Algorithm 4 line 3), breaking ties
	// by entry index so the dropped set is a pure function of the R values.
	// An unstable comparison on ties would let the sort implementation pick
	// which tied entries die, violating the "equal seeds are bit-for-bit
	// reproducible" guarantee for P-Tucker-Approx.
	order := make([]int, width)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := r[order[a]], r[order[b]]
		if ra != rb {
			return ra > rb
		}
		return order[a] < order[b]
	})

	drop := make([]bool, width)
	for i := 0; i < k; i++ {
		drop[order[i]] = true
	}
	g.RemoveEntries(drop)
}

// NewStateForAnalysis exposes a read-only factorization state over existing
// factors and core so that experiment code (Figure 5) can evaluate
// PartialErrors outside a Decompose run.
func NewStateForAnalysis(x *tensor.Coord, factors []*mat.Dense, g *CoreTensor, threads int) *state {
	if threads < 1 {
		threads = 1
	}
	return &state{x: x, factors: factors, core: g, cfg: Config{Threads: threads, Ranks: g.Dims()}}
}
