package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/tensor"
)

// ctxFixture builds the shared planted tensor for the context/hook tests.
func ctxFixture(t *testing.T) *tensor.Coord {
	t.Helper()
	rng := rand.New(rand.NewSource(13))
	return plantedTensor(rng, []int{18, 15, 12}, []int{2, 2, 2}, 1400, 0.02)
}

func TestDecomposeContextMatchesDecompose(t *testing.T) {
	x := ctxFixture(t)
	cfg := smallConfig([]int{2, 2, 2})
	m1, err := Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := DecomposeContext(context.Background(), x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(m1.TrainError) != math.Float64bits(m2.TrainError) {
		t.Fatalf("train error diverged: %v vs %v", m1.TrainError, m2.TrainError)
	}
	for k := range m1.Factors {
		if !m1.Factors[k].Equal(m2.Factors[k], 0) {
			t.Fatalf("factor %d not bit-identical between Decompose and DecomposeContext", k)
		}
	}
}

func TestDecomposeContextAlreadyCancelled(t *testing.T) {
	x := ctxFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := DecomposeContext(ctx, x, smallConfig([]int{2, 2, 2}))
	if m != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("got (%v, %v), want (nil, context.Canceled)", m, err)
	}
}

// Cancelling mid-fit must stop within one iteration and surface ctx.Err().
// The hook cancels deterministically after iteration 2; the fit must then
// observe the cancellation before completing iteration 3.
func TestDecomposeContextCancelMidFit(t *testing.T) {
	x := ctxFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	iterations := 0
	cfg := smallConfig([]int{2, 2, 2})
	cfg.MaxIters = 50
	cfg.OnIteration = func(IterStats) error {
		iterations++
		if iterations == 2 {
			cancel()
		}
		return nil
	}

	m, err := DecomposeContext(ctx, x, cfg)
	if m != nil {
		t.Fatal("cancelled fit returned a model")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v want context.Canceled", err)
	}
	if iterations != 2 {
		t.Fatalf("fit ran %d iterations after cancellation at 2", iterations)
	}
}

func TestDecomposeContextDeadline(t *testing.T) {
	x := ctxFixture(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := DecomposeContext(ctx, x, smallConfig([]int{2, 2, 2})); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v want context.DeadlineExceeded", err)
	}
}

func TestOnIterationObservesEveryIteration(t *testing.T) {
	x := ctxFixture(t)
	cfg := smallConfig([]int{2, 2, 2})
	var seen []IterStats
	cfg.OnIteration = func(s IterStats) error {
		seen = append(seen, s)
		return nil
	}
	m, err := DecomposeContext(context.Background(), x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(m.Trace) {
		t.Fatalf("hook saw %d iterations, trace has %d", len(seen), len(m.Trace))
	}
	for i, s := range seen {
		if s != m.Trace[i] {
			t.Fatalf("hook stats[%d] = %+v differ from trace %+v", i, s, m.Trace[i])
		}
		if s.Iter != i+1 || s.Error <= 0 || s.Elapsed <= 0 || s.CoreNNZ <= 0 {
			t.Fatalf("implausible iteration stats: %+v", s)
		}
	}
}

func TestOnIterationEarlyStop(t *testing.T) {
	x := ctxFixture(t)
	cfg := smallConfig([]int{2, 2, 2})
	cfg.MaxIters = 50
	calls := 0
	cfg.OnIteration = func(IterStats) error {
		calls++
		if calls == 3 {
			return ErrStopIteration
		}
		return nil
	}
	m, err := DecomposeContext(context.Background(), x, cfg)
	if err != nil {
		t.Fatalf("early stop must not be an error: %v", err)
	}
	if calls != 3 || len(m.Trace) != 3 {
		t.Fatalf("stopped after %d calls with %d trace entries, want 3/3", calls, len(m.Trace))
	}
	// The early-stopped model is still finalized: factor columns orthonormal.
	for k, a := range m.Factors {
		jn := a.Cols()
		for j1 := 0; j1 < jn; j1++ {
			for j2 := 0; j2 < jn; j2++ {
				var dot float64
				for i := 0; i < a.Rows(); i++ {
					dot += a.At(i, j1) * a.At(i, j2)
				}
				want := 0.0
				if j1 == j2 {
					want = 1.0
				}
				if math.Abs(dot-want) > 1e-8 {
					t.Fatalf("factor %d not orthonormalized after early stop: col %d·%d = %v", k, j1, j2, dot)
				}
			}
		}
	}
}

func TestOnIterationErrorAborts(t *testing.T) {
	x := ctxFixture(t)
	boom := errors.New("checkpoint disk full")
	cfg := smallConfig([]int{2, 2, 2})
	cfg.OnIteration = func(IterStats) error { return boom }
	m, err := DecomposeContext(context.Background(), x, cfg)
	if m != nil {
		t.Fatal("failed hook still produced a model")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrap of the hook's error", err)
	}
}

// The returned model must not retain the hook: it is fit-time observability,
// and keeping it would pin the closure's captured scope for the lifetime of a
// served model.
func TestModelConfigDropsHook(t *testing.T) {
	x := ctxFixture(t)
	cfg := smallConfig([]int{2, 2, 2})
	cfg.OnIteration = func(IterStats) error { return nil }
	m, err := DecomposeContext(context.Background(), x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Config.OnIteration != nil {
		t.Fatal("Model.Config retains the OnIteration closure")
	}
}

// The hook must also work through the deprecated Decompose wrapper, since the
// normalized config — not the caller's — is what the run uses.
func TestOnIterationThroughDeprecatedWrapper(t *testing.T) {
	x := ctxFixture(t)
	cfg := smallConfig([]int{2, 2, 2})
	calls := 0
	cfg.OnIteration = func(IterStats) error { calls++; return nil }
	if _, err := Decompose(x, cfg); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("hook never invoked via Decompose wrapper")
	}
}
