package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/mat"
)

// Model persistence: a versioned binary format so a factorization fitted on
// one machine can be saved, shipped, and served on another. The encoding is
// little-endian and carries everything a consumer needs — factor matrices,
// core tensor, the normalized Config that produced the fit (minus the
// OnIteration hook, which is not data), the per-iteration Trace, and the
// summary statistics — followed by a CRC-32 of the stream so truncation or
// corruption is detected at load time rather than at serve time.
//
// Layout (version 4):
//
//	magic "PTKM" | version u32 | config | N factors | core | trace | summary |
//	crc32 u32 | metaCRC u32 | footer "PTKX"
//
// Version history — all older streams remain readable:
//
//   - v1: base format.
//   - v2: appended FinalCoreNNZ to the summary (v1 defaults it to 0).
//   - v3: appended Config.Sparsify to the config block, and prefixed the
//     core record with a flags byte (bit 0: the entry list is in the
//     finalized mode-sorted layout — strictly increasing little-endian
//     offsets — which the reader verifies and rebuilds the group index
//     from). Dense cores carry the same dims/nnz/entries encoding as
//     before, so a v2-era dense core round-trips bit-identically through
//     the v3 record.
//   - v4: the mmap layout. The three bulk blocks — each factor's row-major
//     float64 data, the core index list, and the core value list — are
//     preceded by zero padding to an 8-byte stream offset, and core indices
//     are stored as int64 (v1..v3 used uint32), so on a 64-bit machine every
//     block can be served as a []float64 / []int aliasing the file mapping
//     directly. After the main CRC the stream carries a footer: a second
//     CRC-32 covering only the non-block bytes (config, shapes, padding,
//     trace, summary), then the 4-byte footer magic "PTKX". An mmap opener
//     (ModelFromMapping) validates that metadata CRC plus the blocks'
//     bounds, so open cost is O(metadata + core nnz), independent of the
//     factor bytes that dominate a large model. Streaming readers simply
//     stop after the main CRC and never see the footer.
//
// Float64 values are stored as their IEEE-754 bit patterns, which makes a
// save/load round trip bit-identical: a loaded model's Predict returns
// exactly the same float64 as the model that was saved.

const (
	modelMagic   = "PTKM"
	modelVersion = 4

	// footerMagic closes a v4+ stream, after the metadata CRC. Its presence
	// at the end of a file is how the mmap opener recognizes a mappable
	// stream without parsing forward.
	footerMagic = "PTKX"

	// footerSize is the v4 trailer past the main CRC: metaCRC u32 + magic.
	footerSize = 4 + len(footerMagic)

	// maxModelSlice bounds every length prefix read from a model stream so a
	// corrupted or hostile file cannot claim an absurd element count.
	maxModelSlice = 1 << 31

	// readChunk is the element granularity of the bulk readers: slices are
	// grown chunk-by-chunk as bytes actually arrive, so a hostile length
	// prefix (a tiny file claiming 2³¹ entries) hits EOF after a bounded
	// allocation instead of forcing gigabytes up front.
	readChunk = 1 << 14

	// coreFlagFinalized marks a v3 core record whose entry list is in the
	// finalized mode-sorted layout.
	coreFlagFinalized = 1 << 0
)

// Errors returned by the model readers.
var (
	// ErrBadModelFormat reports a stream that is not a P-Tucker model file
	// or is structurally inconsistent.
	ErrBadModelFormat = errors.New("core: not a valid P-Tucker model stream")
	// ErrModelVersion reports a model written by an incompatible format
	// version.
	ErrModelVersion = errors.New("core: unsupported model format version")
	// ErrModelChecksum reports a model stream whose CRC-32 does not match
	// its contents (truncation or corruption).
	ErrModelChecksum = errors.New("core: model stream corrupted (checksum mismatch)")
)

// countingWriter tracks the number of bytes forwarded to w.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// binWriter writes fixed-size little-endian values with a sticky error, so
// the encoder reads as a flat field list instead of an error-check ladder.
// Metadata goes through w; the bulk blocks (factor data, core indices, core
// values) go through blk when set, which lets WriteTo keep them out of the
// v4 metadata CRC.
type binWriter struct {
	w   io.Writer
	blk io.Writer
	err error
}

func (b *binWriter) write(v interface{}) {
	if b.err != nil {
		return
	}
	b.err = binary.Write(b.w, binary.LittleEndian, v)
}

// writeBlock writes v through the block writer (falling back to the
// metadata writer, for encoders that predate the split).
func (b *binWriter) writeBlock(v interface{}) {
	if b.err != nil {
		return
	}
	w := b.blk
	if w == nil {
		w = b.w
	}
	b.err = binary.Write(w, binary.LittleEndian, v)
}

// writeIntsAsI64Block writes xs as an int64 block (no length prefix) in
// bounded chunks.
func (b *binWriter) writeIntsAsI64Block(xs []int) {
	buf := make([]int64, 0, min(len(xs), readChunk))
	for start := 0; start < len(xs) && b.err == nil; start += readChunk {
		buf = buf[:0]
		for _, x := range xs[start:min(start+readChunk, len(xs))] {
			buf = append(buf, int64(x))
		}
		b.writeBlock(buf)
	}
}

func (b *binWriter) writeInts(xs []int) {
	b.write(uint64(len(xs)))
	for _, x := range xs {
		b.write(int64(x))
	}
}

// countingReader tracks the number of bytes consumed from r, so the v4
// decoder knows its stream offset and can skip alignment padding.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// binReader mirrors binWriter for decoding.
type binReader struct {
	r   io.Reader
	err error
}

func (b *binReader) read(v interface{}) {
	if b.err != nil {
		return
	}
	b.err = binary.Read(b.r, binary.LittleEndian, v)
}

func (b *binReader) readLen(what string) int {
	var n uint64
	b.read(&n)
	if b.err == nil && n > maxModelSlice {
		b.err = fmt.Errorf("%w: %s length %d exceeds limit", ErrBadModelFormat, what, n)
	}
	if b.err != nil {
		return 0
	}
	return int(n)
}

func (b *binReader) readInts(what string) []int {
	n := b.readLen(what)
	if b.err != nil {
		return nil
	}
	xs := make([]int, 0, min(n, readChunk))
	for i := 0; i < n && b.err == nil; i++ {
		var v int64
		b.read(&v)
		xs = append(xs, int(v))
	}
	if b.err != nil {
		return nil
	}
	return xs
}

// readFloats reads n float64 values in bounded chunks (see readChunk).
func (b *binReader) readFloats(n int) []float64 {
	out := make([]float64, 0, min(n, readChunk))
	for len(out) < n && b.err == nil {
		c := min(n-len(out), readChunk)
		buf := make([]float64, c)
		b.read(buf)
		if b.err == nil {
			out = append(out, buf...)
		}
	}
	if b.err != nil {
		return nil
	}
	return out
}

// readInt64s reads n int64 values in bounded chunks.
func (b *binReader) readInt64s(n int) []int64 {
	out := make([]int64, 0, min(n, readChunk))
	for len(out) < n && b.err == nil {
		c := min(n-len(out), readChunk)
		buf := make([]int64, c)
		b.read(buf)
		if b.err == nil {
			out = append(out, buf...)
		}
	}
	if b.err != nil {
		return nil
	}
	return out
}

// readI64sAsInts reads n int64 values (the v4 core index encoding) in
// bounded chunks, narrowing to int.
func (b *binReader) readI64sAsInts(n int) []int {
	out := make([]int, 0, min(n, readChunk))
	for len(out) < n && b.err == nil {
		c := min(n-len(out), readChunk)
		buf := make([]int64, c)
		b.read(buf)
		if b.err != nil {
			break
		}
		for _, v := range buf {
			out = append(out, int(v))
		}
	}
	if b.err != nil {
		return nil
	}
	return out
}

// readU32sAsInts reads n uint32 values (the v1..v3 core index encoding) in
// bounded chunks, widening to int.
func (b *binReader) readU32sAsInts(n int) []int {
	out := make([]int, 0, min(n, readChunk))
	for len(out) < n && b.err == nil {
		c := min(n-len(out), readChunk)
		buf := make([]uint32, c)
		b.read(buf)
		if b.err != nil {
			break
		}
		for _, v := range buf {
			out = append(out, int(v))
		}
	}
	if b.err != nil {
		return nil
	}
	return out
}

// WriteTo serializes the model in the versioned binary format, implementing
// io.WriterTo. It returns the number of bytes written.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	crc := crc32.NewIEEE()
	metaCRC := crc32.NewIEEE()
	bw := &binWriter{
		w:   io.MultiWriter(cw, crc, metaCRC),
		blk: io.MultiWriter(cw, crc),
	}
	// pad advances the stream to the next 8-byte offset with zero bytes, so
	// the block that follows can be aliased in place by the mmap reader. The
	// padding is metadata: both CRCs cover it.
	pad := func() {
		if p := int(-cw.n & 7); p > 0 && bw.err == nil {
			var zeros [8]byte
			bw.write(zeros[:p])
		}
	}

	bw.write([]byte(modelMagic))
	bw.write(uint32(modelVersion))

	// Config (OnIteration is a callback, not data; it is not persisted).
	c := m.Config
	bw.writeInts(c.Ranks)
	bw.write(c.Lambda)
	bw.write(int64(c.MaxIters))
	bw.write(c.Tol)
	bw.write(int64(c.Threads))
	bw.write(int64(c.Method))
	bw.write(c.TruncationRate)
	bw.write(int64(c.Scheduling))
	bw.write(c.Seed)
	bw.write(boolByte(c.UpdateCore))
	bw.write(int64(c.ChunkSize))
	bw.write(c.SampleRate)
	bw.write(c.Sparsify) // v3 (SparsifyHoldout is fit-time input, not data)

	// Factor matrices A(1)..A(N), each data block padded to an 8-byte
	// stream offset (v4).
	bw.write(uint64(len(m.Factors)))
	for _, a := range m.Factors {
		bw.write(uint64(a.Rows()))
		bw.write(uint64(a.Cols()))
		pad()
		bw.writeBlock(a.Data())
	}

	// Core tensor: flags (v3), dims, then the live entry list. A finalized
	// core's entries are already offset-sorted; the flag lets the reader
	// verify that and rebuild the group index without re-sorting. v4 stores
	// indices as int64 in one aligned block (the value block that follows is
	// a whole number of 8-byte words, so one pad aligns both).
	g := m.Core
	var flags uint8
	if g.Finalized() {
		flags |= coreFlagFinalized
	}
	bw.write(flags)
	bw.writeInts(g.dims)
	bw.write(uint64(g.NNZ()))
	pad()
	bw.writeIntsAsI64Block(g.idx)
	bw.writeBlock(g.val)

	// Per-iteration trace.
	bw.write(uint64(len(m.Trace)))
	for _, it := range m.Trace {
		bw.write(int64(it.Iter))
		bw.write(it.Error)
		bw.write(int64(it.Elapsed))
		bw.write(int64(it.CoreNNZ))
	}

	// Summary statistics.
	bw.write(boolByte(m.Converged))
	bw.write(m.TrainError)
	bw.write(m.IntermediateBytes)
	bw.write(int64(m.FinalCoreNNZ))
	bw.write(uint64(len(m.WorkPerThread)))
	bw.write(m.WorkPerThread)

	if bw.err != nil {
		return cw.n, bw.err
	}
	// Trailing checksum over everything above, written outside the CRC.
	if err := binary.Write(cw, binary.LittleEndian, crc.Sum32()); err != nil {
		return cw.n, err
	}
	// v4 footer: the metadata-only CRC plus the footer magic. Streaming
	// readers stop at the main CRC and never consume these bytes; the mmap
	// opener starts from them.
	if err := binary.Write(cw, binary.LittleEndian, metaCRC.Sum32()); err != nil {
		return cw.n, err
	}
	if _, err := cw.Write([]byte(footerMagic)); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadModel decodes a model previously written by Model.WriteTo. It verifies
// the magic, the format version, and the trailing CRC-32, and reconstructs
// factors and core bit-identically: predictions from the loaded model equal
// the saved model's exactly. The decoded Config has a nil OnIteration hook.
func ReadModel(r io.Reader) (*Model, error) {
	crc := crc32.NewIEEE()
	cr := &countingReader{r: r}
	br := &binReader{r: io.TeeReader(cr, crc)}

	magic := make([]byte, len(modelMagic))
	br.read(magic)
	if br.err == nil && string(magic) != modelMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadModelFormat, magic)
	}
	var version uint32
	br.read(&version)
	if br.err == nil && (version < 1 || version > modelVersion) {
		return nil, fmt.Errorf("%w: got v%d, want v1..v%d", ErrModelVersion, version, modelVersion)
	}
	// pad consumes the v4 alignment padding before a block, requiring the
	// bytes to be zero (anything else is not a stream WriteTo produced).
	pad := func(before string) {
		if version < 4 || br.err != nil {
			return
		}
		if p := int(-cr.n & 7); p > 0 {
			zeros := make([]byte, p)
			br.read(zeros)
			for _, z := range zeros {
				if br.err == nil && z != 0 {
					br.err = fmt.Errorf("%w: nonzero padding before %s", ErrBadModelFormat, before)
				}
			}
		}
	}

	var c Config
	c.Ranks = br.readInts("config ranks")
	br.read(&c.Lambda)
	var maxIters, threads, method, sched, chunk int64
	br.read(&maxIters)
	br.read(&c.Tol)
	br.read(&threads)
	br.read(&method)
	br.read(&c.TruncationRate)
	br.read(&sched)
	br.read(&c.Seed)
	c.UpdateCore = readBool(br)
	br.read(&chunk)
	br.read(&c.SampleRate)
	if version >= 3 {
		br.read(&c.Sparsify)
	}
	c.MaxIters = int(maxIters)
	c.Threads = int(threads)
	c.Method = Method(method)
	c.Scheduling = Scheduling(sched)
	c.ChunkSize = int(chunk)

	nFactors := br.readLen("factor count")
	factors := make([]*mat.Dense, 0, min(nFactors, readChunk))
	for k := 0; k < nFactors && br.err == nil; k++ {
		var rows, cols uint64
		br.read(&rows)
		br.read(&cols)
		if br.err == nil && (rows > maxModelSlice || cols > maxModelSlice || rows*cols > maxModelSlice) {
			br.err = fmt.Errorf("%w: factor %d shape %dx%d exceeds limit", ErrBadModelFormat, k, rows, cols)
			break
		}
		pad("factor data")
		data := br.readFloats(int(rows * cols))
		if br.err == nil {
			factors = append(factors, mat.NewDenseData(int(rows), int(cols), data))
		}
	}

	var coreFlags uint8
	if version >= 3 {
		br.read(&coreFlags)
		if br.err == nil && coreFlags&^uint8(coreFlagFinalized) != 0 {
			return nil, fmt.Errorf("%w: unknown core flags %#x", ErrBadModelFormat, coreFlags)
		}
	}
	g := &CoreTensor{dims: br.readInts("core dims")}
	order := len(g.dims)
	nnz := br.readLen("core nnz")
	if br.err == nil && (order != nFactors || nnz*order > maxModelSlice) {
		return nil, fmt.Errorf("%w: core order %d / nnz %d inconsistent with %d factors",
			ErrBadModelFormat, order, nnz, nFactors)
	}
	if br.err == nil {
		pad("core indices")
		if version >= 4 {
			g.idx = br.readI64sAsInts(nnz * order)
		} else {
			g.idx = br.readU32sAsInts(nnz * order)
		}
		g.val = br.readFloats(nnz)
	}

	nTrace := br.readLen("trace length")
	trace := make([]IterStats, 0, min(nTrace, readChunk))
	for i := 0; i < nTrace && br.err == nil; i++ {
		var it IterStats
		var iter, elapsed, coreNNZ int64
		br.read(&iter)
		br.read(&it.Error)
		br.read(&elapsed)
		br.read(&coreNNZ)
		it.Iter = int(iter)
		it.Elapsed = time.Duration(elapsed)
		it.CoreNNZ = int(coreNNZ)
		if br.err == nil {
			trace = append(trace, it)
		}
	}

	m := &Model{Factors: factors, Core: g, Config: c, Trace: trace}
	m.Converged = readBool(br)
	br.read(&m.TrainError)
	br.read(&m.IntermediateBytes)
	if version >= 2 {
		var finalCoreNNZ int64
		br.read(&finalCoreNNZ)
		m.FinalCoreNNZ = int(finalCoreNNZ)
	}
	nWork := br.readLen("work-per-thread length")
	if br.err == nil {
		m.WorkPerThread = br.readInt64s(nWork)
	}

	if br.err != nil {
		if errors.Is(br.err, io.EOF) || errors.Is(br.err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: truncated stream: %v", ErrBadModelFormat, br.err)
		}
		return nil, br.err
	}

	sum := crc.Sum32() // everything decoded so far; the trailer is outside the CRC
	var want uint32
	if err := binary.Read(cr, binary.LittleEndian, &want); err != nil {
		return nil, fmt.Errorf("%w: missing checksum: %v", ErrBadModelFormat, err)
	}
	if want != sum {
		return nil, fmt.Errorf("%w: got %08x, want %08x", ErrModelChecksum, sum, want)
	}

	// Structural sanity: everything prediction dereferences must be in
	// range, so a corrupt-but-checksummed (or crafted) file fails here at
	// load time instead of panicking inside the serve-path kernel. Factor k
	// must have exactly dims[k] columns, and every core entry index must
	// address a valid column.
	for k, a := range factors {
		if a.Cols() != g.dims[k] {
			return nil, fmt.Errorf("%w: factor %d has %d columns but core dim is %d",
				ErrBadModelFormat, k, a.Cols(), g.dims[k])
		}
	}
	for e := 0; e < nnz; e++ {
		for k := 0; k < order; k++ {
			if i := g.idx[e*order+k]; i < 0 || i >= g.dims[k] {
				return nil, fmt.Errorf("%w: core entry %d mode %d index %d out of range [0,%d)",
					ErrBadModelFormat, e, k, i, g.dims[k])
			}
		}
	}
	if coreFlags&coreFlagFinalized != 0 {
		// The flag claims the entry list is already in finalized order;
		// verify rather than trust, then rebuild the group index. A lying
		// flag would otherwise desync the grouped kernels from the data.
		st := g.strides()
		prev := -1
		for e := 0; e < nnz; e++ {
			off := g.entryOffset(e, st)
			if off <= prev {
				return nil, fmt.Errorf("%w: core flagged finalized but entry %d breaks offset order",
					ErrBadModelFormat, e)
			}
			prev = off
		}
		g.FinalizeLayout()
	}
	return m, nil
}

// SaveModel writes the model to path atomically: it serializes into a
// temporary file in the same directory and renames it into place, so readers
// never observe a half-written model.
func SaveModel(path string, m *Model) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("core: save model: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename

	w := bufio.NewWriter(tmp)
	if _, err := m.WriteTo(w); err != nil {
		tmp.Close()
		return fmt.Errorf("core: save model: %w", err)
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("core: save model: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: save model: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("core: save model: %w", err)
	}
	return nil
}

// LoadModel reads a model previously written by SaveModel (or Model.WriteTo).
func LoadModel(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load model: %w", err)
	}
	defer f.Close()
	m, err := ReadModel(bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("core: load model %s: %w", path, err)
	}
	return m, nil
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

func readBool(br *binReader) bool {
	var v uint8
	br.read(&v)
	return v != 0
}
