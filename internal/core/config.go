// Package core implements the paper's primary contribution: P-Tucker, a
// scalable Tucker factorization for sparse tensors based on alternating least
// squares with a fully parallel row-wise update rule (Algorithms 2 and 3),
// together with its two time-optimized variants, P-Tucker-Cache
// (memoization of intermediate products, Algorithm 3 lines 1-4/16-19) and
// P-Tucker-Approx (truncation of "noisy" core entries by partial
// reconstruction error, Algorithm 4).
package core

import (
	"errors"
	"fmt"
	"runtime"

	"repro/internal/tensor"
)

// Method selects which member of the P-Tucker family runs.
type Method int

const (
	// PTucker is the default memory-optimized algorithm: O(T·J²)
	// intermediate memory, O(N·I·J³ + N²·|Ω|·Jᴺ) time per iteration.
	PTucker Method = iota
	// PTuckerCache trades memory for speed: it caches the per-(entry, core
	// cell) products in the table Pres (O(|Ω|·|G|) memory) so δ updates cost
	// O(1) instead of O(N), giving O(N·I·J³ + N·|Ω|·Jᴺ) time.
	PTuckerCache
	// PTuckerApprox truncates the top-p fraction of core entries ranked by
	// partial reconstruction error R(β) after every iteration, shrinking |G|
	// and therefore per-iteration time, at a small accuracy cost.
	PTuckerApprox
)

// String returns the paper's name for the method.
func (m Method) String() string {
	switch m {
	case PTucker:
		return "P-Tucker"
	case PTuckerCache:
		return "P-Tucker-Cache"
	case PTuckerApprox:
		return "P-Tucker-Approx"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Scheduling selects how factor-matrix rows are distributed over threads
// (Section III-D). Dynamic scheduling corrects the per-row workload imbalance
// caused by skewed |Ω(n)[in]| and is the paper's default; Static is the
// "naive parallelization" it is compared against (Section IV-D).
type Scheduling int

const (
	// ScheduleDynamic hands out fixed-size chunks of rows from a shared
	// atomic counter, the goroutine analog of OpenMP schedule(dynamic).
	ScheduleDynamic Scheduling = iota
	// ScheduleStatic pre-splits rows into T contiguous blocks.
	ScheduleStatic
)

// String names the scheduling policy.
func (s Scheduling) String() string {
	if s == ScheduleStatic {
		return "static"
	}
	return "dynamic"
}

// Config holds the hyper-parameters of a factorization run. The zero value
// is not usable; fill Ranks and call Validate, or use Defaults.
type Config struct {
	// Ranks are the core tensor dimensionalities J1..JN; len(Ranks) must
	// equal the input tensor order.
	Ranks []int
	// Lambda is the L2 regularization weight λ of Eq. (6). The paper's
	// default is 0.01.
	Lambda float64
	// MaxIters bounds the ALS iterations. The paper's default is 20.
	MaxIters int
	// Tol stops iteration when the relative change of the reconstruction
	// error between iterations drops below it. Zero disables the check and
	// runs exactly MaxIters iterations.
	Tol float64
	// Threads is the worker count T. Zero means runtime.GOMAXPROCS(0).
	Threads int
	// Method selects P-Tucker, P-Tucker-Cache, or P-Tucker-Approx.
	Method Method
	// TruncationRate is the per-iteration fraction p of live core entries
	// removed by P-Tucker-Approx (0 < p < 1). The paper's default is 0.2.
	TruncationRate float64
	// Scheduling selects the row distribution policy.
	Scheduling Scheduling
	// Seed drives the random initialization of factors and core; runs with
	// equal seeds are bit-for-bit reproducible.
	Seed int64
	// UpdateCore, when true, adds an element-wise coordinate-descent sweep
	// over core entries after the factor updates of each iteration. This is
	// an extension beyond the published Algorithm 2 (which leaves the core
	// at its random initialization until the final QR rotation); it
	// typically improves fit at an O(N·|Ω|·|G|) per-iteration cost.
	UpdateCore bool
	// ChunkSize is the dynamic-scheduling chunk (rows per grab). Zero means
	// an adaptive default.
	ChunkSize int
	// SampleRate, when in (0,1), makes each row update use only that
	// fraction of its observed entries Ω(n)[in] (a deterministic stride
	// subsample), accelerating updates at a small accuracy cost. This
	// implements the sampling extension the paper lists as future work
	// ("applying sampling techniques on observable entries to accelerate
	// decompositions, while sacrificing little accuracy"); zero disables it.
	// Error measurement always uses all observed entries.
	SampleRate float64
	// Sparsify, when positive, prunes low-responsibility core entries after
	// the QR finalization (VeST-style; see PAPERS.md): live entries are
	// ranked by partial reconstruction error R(β) (Eq. 13, most-hurtful
	// first) and the largest prune count whose reconstruction error stays
	// within (1+Sparsify)× the pre-prune error is removed. The budget is
	// checked against SparsifyHoldout when set, otherwise against the
	// training set. The value is the relative RMSE-degradation budget — 0.05
	// allows a 5% error increase. Zero disables pruning. Fitter.Refit runs
	// the same pruning, so background refits of a sparsified model re-prune.
	Sparsify float64
	// SparsifyHoldout optionally supplies the held-out set the Sparsify
	// budget is checked against, so pruning is gated on generalization
	// rather than training fit. Like OnIteration it is fit-time input, not
	// model data: it is never serialized, and a snapshot/loaded model's
	// config carries nil. Its order must match the training tensor's and no
	// mode may exceed the training tensor's dimensionality.
	SparsifyHoldout *tensor.Coord
	// OnIteration, when non-nil, is called after every ALS iteration with
	// that iteration's statistics — the observability hook for streaming
	// progress, custom stopping rules, and checkpoint triggers. Returning
	// ErrStopIteration ends the fit cleanly after the current iteration:
	// the model is still finalized (QR + core rotation) and returned with a
	// nil error, so a caller can stop on its own criterion and SaveModel
	// the result. Any other error aborts the fit and is returned wrapped.
	// The hook runs on the fitting goroutine between iterations (no factor
	// updates are concurrent with it), so long callbacks extend iteration
	// wall-clock time.
	OnIteration func(IterStats) error
}

// Defaults returns the paper's default configuration for the given core
// ranks: λ=0.01, 20 iterations, p=0.2, dynamic scheduling, all cores.
func Defaults(ranks []int) Config {
	r := make([]int, len(ranks))
	copy(r, ranks)
	return Config{
		Ranks:          r,
		Lambda:         0.01,
		MaxIters:       20,
		Tol:            1e-4,
		Threads:        0,
		Method:         PTucker,
		TruncationRate: 0.2,
		Scheduling:     ScheduleDynamic,
	}
}

// ErrStopIteration is the sentinel an OnIteration hook returns to stop the
// fit early without signalling failure, in the spirit of fs.SkipDir: the
// decomposition finalizes the factors fitted so far and returns the model
// with a nil error.
var ErrStopIteration = errors.New("core: stop iteration")

// Errors returned by Validate and Decompose.
var (
	ErrNoRanks        = errors.New("core: config has no ranks")
	ErrBadRank        = errors.New("core: ranks must be positive")
	ErrBadLambda      = errors.New("core: lambda must be non-negative")
	ErrBadIters       = errors.New("core: max iterations must be positive")
	ErrBadTruncation  = errors.New("core: truncation rate must lie in (0,1)")
	ErrOrderMismatch  = errors.New("core: tensor order does not match number of ranks")
	ErrEmptyTensor    = errors.New("core: tensor has no observed entries")
	ErrRankExceedsDim = errors.New("core: rank exceeds the matching tensor dimensionality")
	ErrBadSampleRate  = errors.New("core: sample rate must lie in [0,1)")
	ErrBadSparsify    = errors.New("core: invalid sparsify option")
)

// Validate checks the configuration against a tensor of the given shape and
// returns a normalized copy with zero-valued knobs (Threads, ChunkSize)
// resolved to their defaults. It is pure: the receiver — including its Ranks
// slice — is never modified, so a caller's Config can be reused and compared
// across fits without surprise rewrites.
func (c Config) Validate(dims []int) (Config, error) {
	if len(c.Ranks) == 0 {
		return c, ErrNoRanks
	}
	if len(c.Ranks) != len(dims) {
		return c, fmt.Errorf("%w: order %d vs %d ranks", ErrOrderMismatch, len(dims), len(c.Ranks))
	}
	for n, j := range c.Ranks {
		if j <= 0 {
			return c, fmt.Errorf("%w: J%d = %d", ErrBadRank, n+1, j)
		}
		if j > dims[n] {
			return c, fmt.Errorf("%w: J%d = %d > I%d = %d", ErrRankExceedsDim, n+1, j, n+1, dims[n])
		}
	}
	if c.Lambda < 0 {
		return c, fmt.Errorf("%w: %v", ErrBadLambda, c.Lambda)
	}
	if c.MaxIters <= 0 {
		return c, fmt.Errorf("%w: %d", ErrBadIters, c.MaxIters)
	}
	if c.Method == PTuckerApprox && (c.TruncationRate <= 0 || c.TruncationRate >= 1) {
		return c, fmt.Errorf("%w: p = %v", ErrBadTruncation, c.TruncationRate)
	}
	if c.SampleRate < 0 || c.SampleRate >= 1 {
		return c, fmt.Errorf("%w: %v", ErrBadSampleRate, c.SampleRate)
	}
	if c.Sparsify < 0 {
		return c, fmt.Errorf("%w: budget %v must be non-negative", ErrBadSparsify, c.Sparsify)
	}
	if h := c.SparsifyHoldout; h != nil {
		if h.Order() != len(dims) {
			return c, fmt.Errorf("%w: holdout has order %d, tensor has %d", ErrBadSparsify, h.Order(), len(dims))
		}
		for k := range dims {
			if h.Dim(k) > dims[k] {
				return c, fmt.Errorf("%w: holdout mode %d has dimension %d but the tensor covers only %d",
					ErrBadSparsify, k, h.Dim(k), dims[k])
			}
		}
	}
	c.Ranks = append([]int(nil), c.Ranks...)
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 8
	}
	return c, nil
}
