package core

import (
	"container/heap"
	"fmt"

	"repro/internal/mat"
)

// Recommender answers top-K queries over one mode of a fitted model: given a
// query that fixes every mode but one (the paper's opening workload — fix
// (user, time), rank all movies), it returns the K free-mode indices with the
// highest predicted values.
//
// Scoring every candidate with Predict would cost O(I·|G|·N) per query. The
// recommender instead contracts the core with the fixed factor rows once —
// w[j] = Σ_{β: β_m=j} Gβ · ∏_{k≠m} A(k)[i_k][β_k], an O(|G|·N) pass — after
// which every candidate's score is the dot product A(m)[i]·w, an O(I·J)
// dense sweep feeding a bounded min-heap. Mathematically each score equals
// Predict on the same cell; numerically the contraction reassociates the
// float64 sum (grouping core entries by their free-mode coordinate), so a
// score can differ from Predict by rounding in the last few ulps. The
// ranking itself is deterministic: equal queries on equal snapshots always
// return the identical ordering.
//
// A Recommender shares the Predictor's immutable factor and core snapshots,
// so deriving one is free and it is safe for concurrent use.
type Recommender struct {
	p *Predictor
}

// Recommender derives a top-K query view over the predictor's snapshot.
func (p *Predictor) Recommender() *Recommender { return &Recommender{p: p} }

// Rec is one recommendation: a candidate index of the free mode and its
// predicted value.
type Rec struct {
	Index int     `json:"index"`
	Score float64 `json:"score"`
}

// Errors returned by TopK. ErrBadQuery wraps all query-shape problems;
// ErrBadIndex (shared with the predictor) covers out-of-range fixed
// coordinates.
var ErrBadQuery = fmt.Errorf("core: invalid recommendation query")

// TopK returns the k free-mode candidates with the highest predicted values
// for the cell (query with mode freeMode varying), ordered by score
// descending with ties broken by ascending index — a total order, so equal
// inputs always return the identical ranking. The query must have one
// coordinate per mode; the coordinate at freeMode is ignored. k is clamped
// to the free mode's dimensionality.
func (r *Recommender) TopK(query []int, freeMode, k int) ([]Rec, error) {
	return r.TopKExcluding(query, freeMode, k, nil)
}

// TopKExcluding is TopK with an exclusion set over the free mode: candidates
// whose index appears in exclude are skipped, which is how a recommendation
// avoids echoing the items a user already rated back at them. Exclusion
// indices outside [0, I_free) are ignored (callers can pass raw interaction
// history without filtering), duplicates are harmless, and k is clamped to
// the number of remaining candidates.
func (r *Recommender) TopKExcluding(query []int, freeMode, k int, exclude []int) ([]Rec, error) {
	p := r.p
	n := len(p.dims)
	if freeMode < 0 || freeMode >= n {
		return nil, fmt.Errorf("%w: free mode %d out of range [0,%d)", ErrBadQuery, freeMode, n)
	}
	if len(query) != n {
		return nil, fmt.Errorf("%w: query has %d modes, model has %d", ErrBadQuery, len(query), n)
	}
	for m, i := range query {
		if m == freeMode {
			continue
		}
		if i < 0 || i >= p.dims[m] {
			return nil, fmt.Errorf("%w: index %d out of range [0,%d) in mode %d", ErrBadIndex, i, p.dims[m], m)
		}
	}
	if k < 1 {
		return nil, fmt.Errorf("%w: k = %d must be positive", ErrBadQuery, k)
	}
	var excluded map[int]struct{}
	if len(exclude) > 0 {
		excluded = make(map[int]struct{}, len(exclude))
		for _, i := range exclude {
			if i >= 0 && i < p.dims[freeMode] {
				excluded[i] = struct{}{}
			}
		}
	}
	if candidates := p.dims[freeMode] - len(excluded); k > candidates {
		k = candidates
	}

	w := r.contract(query, freeMode)

	// Dense sweep over the candidates with a size-k min-heap: the root is
	// the worst kept recommendation, replaced whenever a candidate beats it.
	a := p.factors[freeMode]
	h := make(recHeap, 0, k)
	for i := 0; i < a.Rows(); i++ {
		if _, skip := excluded[i]; skip {
			continue
		}
		score := mat.Dot(a.Row(i), w)
		if len(h) < k {
			heap.Push(&h, Rec{Index: i, Score: score})
			continue
		}
		if better(Rec{Index: i, Score: score}, h[0]) {
			h[0] = Rec{Index: i, Score: score}
			heap.Fix(&h, 0)
		}
	}

	// Drain the heap worst-first into the result back-to-front.
	out := make([]Rec, len(h))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(Rec)
	}
	return out, nil
}

// contract folds the core with the fixed factor rows, producing the weight
// vector w of length J_free with w[j] = Σ_{β: β_m=j} Gβ·∏_{k≠m} A(k)[i_k][β_k].
// On a finalized core with a free mode other than the last, the sweep runs
// group-by-group over the last-mode coordinate, hoisting that mode's fixed
// factor value out of the inner product and skipping zero-valued groups —
// the same layout win as the grouped predict kernel. When the free mode IS
// the grouping mode the flat scan already visits each w[j]'s entries
// contiguously, so it is kept as is.
func (r *Recommender) contract(query []int, freeMode int) []float64 {
	p := r.p
	n := len(p.dims)
	g := p.core
	rows := make([][]float64, n)
	for m := 0; m < n; m++ {
		if m != freeMode {
			rows[m] = p.factors[m].Row(query[m])
		}
	}
	w := make([]float64, p.factors[freeMode].Cols())
	gi, gv := g.idx, g.val

	last := n - 1
	if off := g.groupOff; off != nil && freeMode != last {
		rlast := rows[last]
		for j := 0; j+1 < len(off); j++ {
			s, e := off[j], off[j+1]
			if s == e {
				continue
			}
			rj := rlast[j]
			if rj == 0 {
				continue
			}
			for t := s; t < e; t++ {
				base := t * n
				prod := gv[t]
				for m := 0; m < last; m++ {
					if m == freeMode {
						continue
					}
					prod *= rows[m][gi[base+m]]
				}
				w[gi[base+freeMode]] += prod * rj
			}
		}
		return w
	}

	for e, v := range gv {
		base := e * n
		prod := v
		for m := 0; m < n; m++ {
			if m == freeMode {
				continue
			}
			prod *= rows[m][gi[base+m]]
		}
		w[gi[base+freeMode]] += prod
	}
	return w
}

// better reports whether a outranks b in the recommendation order:
// higher score first, ties to the lower index.
func better(a, b Rec) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Index < b.Index
}

// recHeap is a min-heap under the recommendation order: the root is the
// entry that would be evicted first.
type recHeap []Rec

func (h recHeap) Len() int            { return len(h) }
func (h recHeap) Less(i, j int) bool  { return better(h[j], h[i]) }
func (h recHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *recHeap) Push(x interface{}) { *h = append(*h, x.(Rec)) }
func (h *recHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}
