package core

import (
	"container/heap"
	"math"
	"math/rand"
	"sort"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// RotationDropTol is the relative magnitude below which a core entry produced
// by the sparse finalize rotation (RotateAllSparse) is treated as numerical
// noise and dropped: entries with |Gβ| ≤ RotationDropTol · max|Gγ| do not
// survive the rotation. The threshold sits a little above float64 machine
// epsilon, so it removes exact zeros and cancellation residue without ever
// touching an entry that carries signal.
const RotationDropTol = 1e-14

// CoreTensor is the Tucker core G represented as an explicit list of live
// entries (β, Gβ). A dense array would suffice for P-Tucker and
// P-Tucker-Cache, but P-Tucker-Approx removes entries each iteration, and all
// three variants iterate "∀β ∈ G" in their inner loops — the entry list makes
// that loop a flat scan and makes |G| shrink for free after truncation.
//
// Entry e has multi-index Idx[e*N : (e+1)*N] and value Val[e].
//
// A finalized core (see FinalizeLayout) additionally carries a mode-sorted
// layout: entries ordered by little-endian linear offset, grouped by their
// last-mode coordinate, which the prediction and recommendation kernels
// iterate group-by-group instead of as a flat scan.
type CoreTensor struct {
	dims []int
	idx  []int
	val  []float64

	// groupOff, when non-nil, marks the finalized mode-sorted layout:
	// entries are sorted by little-endian linear offset (mode 0 fastest),
	// which groups them by their last-mode coordinate, and
	// groupOff[j]..groupOff[j+1] is the entry range whose last-mode index is
	// j (len(groupOff) == dims[N-1]+1). Any mutation of the entry list
	// (RemoveEntries, FromDense, RotateAll*) invalidates it; FinalizeLayout
	// rebuilds it.
	groupOff []int
}

// NewRandomCore returns a full core with dims = ranks whose values are drawn
// uniformly from [0,1), matching P-Tucker's initialization (Algorithm 2,
// line 1).
func NewRandomCore(ranks []int, rng *rand.Rand) *CoreTensor {
	n := len(ranks)
	size := 1
	for _, j := range ranks {
		size *= j
	}
	c := &CoreTensor{
		dims: append([]int(nil), ranks...),
		idx:  make([]int, 0, size*n),
		val:  make([]float64, 0, size),
	}
	// Enumerate multi-indices in little-endian order (mode 0 fastest).
	cur := make([]int, n)
	for e := 0; e < size; e++ {
		c.idx = append(c.idx, cur...)
		c.val = append(c.val, rng.Float64())
		for k := 0; k < n; k++ {
			cur[k]++
			if cur[k] < ranks[k] {
				break
			}
			cur[k] = 0
		}
	}
	return c
}

// Order returns the number of modes.
func (c *CoreTensor) Order() int { return len(c.dims) }

// Dims returns the core dimensionalities J1..JN; the slice must not be
// modified.
func (c *CoreTensor) Dims() []int { return c.dims }

// NNZ returns |G|, the number of live entries.
func (c *CoreTensor) NNZ() int { return len(c.val) }

// Index returns entry e's multi-index as a shared view.
func (c *CoreTensor) Index(e int) []int {
	n := len(c.dims)
	return c.idx[e*n : (e+1)*n]
}

// Value returns entry e's value.
func (c *CoreTensor) Value(e int) float64 { return c.val[e] }

// SetValue overwrites entry e's value. The finalized layout (which depends
// only on entry positions, not values) survives.
func (c *CoreTensor) SetValue(e int, v float64) { c.val[e] = v }

// Clone returns a deep copy, finalized layout included.
func (c *CoreTensor) Clone() *CoreTensor {
	return &CoreTensor{
		dims:     append([]int(nil), c.dims...),
		idx:      append([]int(nil), c.idx...),
		val:      append([]float64(nil), c.val...),
		groupOff: append([]int(nil), c.groupOff...),
	}
}

// strides returns the little-endian linear strides of the core's shape:
// stride[0] = 1, stride[k] = stride[k-1]·dims[k-1], so an entry's linear
// offset is Σ_k idx[k]·stride[k] — the enumeration order of NewRandomCore,
// tensor.Dense, and FromDense.
func (c *CoreTensor) strides() []int {
	s := make([]int, len(c.dims))
	acc := 1
	for k := range c.dims {
		s[k] = acc
		acc *= c.dims[k]
	}
	return s
}

// entryOffset returns entry e's little-endian linear offset given
// precomputed strides.
func (c *CoreTensor) entryOffset(e int, strides []int) int {
	n := len(c.dims)
	base := e * n
	off := 0
	for k := 0; k < n; k++ {
		off += c.idx[base+k] * strides[k]
	}
	return off
}

// Finalized reports whether the core carries the finalized mode-sorted
// layout (see FinalizeLayout).
func (c *CoreTensor) Finalized() bool { return c.groupOff != nil }

// GroupOffsets returns the finalized layout's per-group entry offsets (nil
// when the core is not finalized): entries groupOff[j]..groupOff[j+1] are
// exactly those whose last-mode coordinate is j. The slice must not be
// modified.
func (c *CoreTensor) GroupOffsets() []int { return c.groupOff }

// FinalizeLayout sorts the entry list into the canonical little-endian
// offset order (mode 0 fastest — the enumeration order of a dense core) and
// builds the per-group offsets over the last mode, the slowest-varying
// coordinate, so each group is a contiguous entry range. The prediction and
// top-K kernels then iterate groups, hoisting the last-mode factor value out
// of the inner product and skipping groups whose factor entry is zero — the
// layout that makes a pruned core's smaller |G| pay off at serve time.
//
// The layout is a property of entry positions only; SetValue keeps it, while
// RemoveEntries, FromDense, and the rotations invalidate it. Finalizing an
// already-sorted list (the common case: FromDense and RotateAllSparse both
// emit offset order) does not move entries.
func (c *CoreTensor) FinalizeLayout() {
	n := len(c.dims)
	if n == 0 {
		return
	}
	strides := c.strides()
	offs := make([]int, len(c.val))
	sorted := true
	for e := range c.val {
		offs[e] = c.entryOffset(e, strides)
		if e > 0 && offs[e] <= offs[e-1] {
			sorted = false
		}
	}
	if !sorted {
		perm := make([]int, len(c.val))
		for i := range perm {
			perm[i] = i
		}
		sort.SliceStable(perm, func(a, b int) bool { return offs[perm[a]] < offs[perm[b]] })
		idx := make([]int, len(c.idx))
		val := make([]float64, len(c.val))
		for w, e := range perm {
			copy(idx[w*n:(w+1)*n], c.idx[e*n:(e+1)*n])
			val[w] = c.val[e]
		}
		c.idx, c.val = idx, val
	}

	last := n - 1
	counts := make([]int, c.dims[last]+1)
	for e := 0; e < len(c.val); e++ {
		counts[c.idx[e*n+last]+1]++
	}
	for j := 1; j < len(counts); j++ {
		counts[j] += counts[j-1]
	}
	c.groupOff = counts
}

// RemoveEntries deletes the entries whose positions (into the current entry
// list) are marked true in drop, compacting the list in place. It returns the
// number of removed entries. The finalized layout, if any, is invalidated.
func (c *CoreTensor) RemoveEntries(drop []bool) int {
	n := len(c.dims)
	w := 0
	removed := 0
	for e := 0; e < len(c.val); e++ {
		if e < len(drop) && drop[e] {
			removed++
			continue
		}
		if w != e {
			copy(c.idx[w*n:(w+1)*n], c.idx[e*n:(e+1)*n])
			c.val[w] = c.val[e]
		}
		w++
	}
	c.idx = c.idx[:w*n]
	c.val = c.val[:w]
	c.groupOff = nil
	return removed
}

// ToDense materializes the core as a dense tensor (truncated entries are
// zeros).
func (c *CoreTensor) ToDense() *tensor.Dense {
	d := tensor.NewDenseTensor(c.dims)
	n := len(c.dims)
	for e := 0; e < len(c.val); e++ {
		d.Set(c.idx[e*n:(e+1)*n], c.val[e])
	}
	return d
}

// FromDense rebuilds the live entry list from a dense tensor, keeping every
// cell (including zeros, because a mode product can legitimately produce
// structural zeros that later rotations revive — except when sparse is true,
// in which case exact zeros are dropped). The finalized layout, if any, is
// invalidated; the emitted entries are in canonical offset order, so a
// subsequent FinalizeLayout does not move them.
func (c *CoreTensor) FromDense(d *tensor.Dense, sparse bool) {
	n := d.Order()
	c.dims = append(c.dims[:0], d.Dims()...)
	c.idx = c.idx[:0]
	c.val = c.val[:0]
	c.groupOff = nil
	idx := make([]int, n)
	for off, v := range d.Data() {
		if sparse && v == 0 {
			continue
		}
		d.IndexOf(off, idx)
		c.idx = append(c.idx, idx...)
		c.val = append(c.val, v)
	}
}

// RotateAll applies G ← G ×1 R(1) ··· ×N R(N) (Eq. 8), the core update that
// accompanies QR orthogonalization of the factor matrices. Each R must be
// Jn x Jn. Entries that were truncated stay absent only if the rotation
// leaves them exactly zero; in general the rotated core is dense again, which
// matches the semantics of Eq. (8). This is the escape hatch that preserves
// the dense-core semantics for non-sparse fits; truncated fits use
// RotateAllSparse, which keeps |G| through the rotation.
func (c *CoreTensor) RotateAll(rs []*mat.Dense) {
	d := c.ToDense()
	d = d.ModeProductChain(rs)
	c.FromDense(d, false)
}

// RotateAllSparse is the sparsity-preserving form of RotateAll: it applies
// G ← G ×n R(n) mode-by-mode directly on the live entry list, never
// materializing the dense core. Because each R is upper triangular, the
// rotation spreads every surviving entry over the down-set of its index — the
// rotated support genuinely grows — so after rotating, the core is
// re-truncated: entries with |Gβ| ≤ tol · max|Gγ| are dropped as numerical
// noise (pass RotationDropTol for the documented default), and if keep > 0
// the keep largest-magnitude entries are retained (ties broken by ascending
// offset). With orthonormal factors the Frobenius norm of the dropped core
// entries equals the reconstruction change ‖ΔX̂‖_F exactly, so
// largest-magnitude retention is the error-optimal re-truncation.
//
// The entry list comes out in canonical offset order; per-offset
// accumulation follows the source entry order, so equal inputs rotate
// bit-identically. The finalized layout, if any, is invalidated.
func (c *CoreTensor) RotateAllSparse(rs []*mat.Dense, keep int, tol float64) {
	n := len(c.dims)
	c.groupOff = nil
	strides := c.strides()
	for mode := 0; mode < n; mode++ {
		r := rs[mode]
		jn := c.dims[mode]
		acc := make(map[int]float64, len(c.val))
		for e := 0; e < len(c.val); e++ {
			off := c.entryOffset(e, strides)
			in := c.idx[e*n+mode]
			rem := off - in*strides[mode]
			v := c.val[e]
			for j := 0; j < jn; j++ {
				w := r.At(j, in)
				if w == 0 {
					continue
				}
				acc[rem+j*strides[mode]] += v * w
			}
		}
		// Deterministic rebuild: collect the offsets, sort, emit in order.
		keys := make([]int, 0, len(acc))
		for off := range acc {
			keys = append(keys, off)
		}
		sort.Ints(keys)
		c.idx = c.idx[:0]
		c.val = c.val[:0]
		for _, off := range keys {
			rem := off
			for k := 0; k < n; k++ {
				c.idx = append(c.idx, rem%c.dims[k])
				rem /= c.dims[k]
			}
			c.val = append(c.val, acc[off])
		}
	}

	// Drop sub-epsilon noise, but never the last entry standing: the largest
	// survivor is exempt so the core cannot degenerate to the empty sum.
	maxAbs, argmax := 0.0, -1
	for e, v := range c.val {
		if a := math.Abs(v); a > maxAbs || argmax < 0 {
			maxAbs, argmax = a, e
		}
	}
	if len(c.val) > 0 {
		thr := tol * maxAbs
		drop := make([]bool, len(c.val))
		any := false
		for e, v := range c.val {
			if e != argmax && math.Abs(v) <= thr {
				drop[e] = true
				any = true
			}
		}
		if any {
			c.RemoveEntries(drop)
		}
	}

	// Re-truncate to the keep largest-|Gβ| entries. Entry order is offset
	// order, so the index tie-break is an offset tie-break.
	if keep > 0 && len(c.val) > keep {
		ord := make([]int, len(c.val))
		for i := range ord {
			ord[i] = i
		}
		sort.Slice(ord, func(a, b int) bool {
			va, vb := math.Abs(c.val[ord[a]]), math.Abs(c.val[ord[b]])
			if va != vb {
				return va > vb
			}
			return ord[a] < ord[b]
		})
		drop := make([]bool, len(c.val))
		for _, e := range ord[keep:] {
			drop[e] = true
		}
		c.RemoveEntries(drop)
	}
}

// MaxAbsEntries returns the k entries with the largest |Gβ| along with their
// indices, for relation discovery (Section V). The result is ordered by
// descending |Gβ|, ties broken by ascending entry position — the same total
// order the recommendation heap uses, via the same bounded min-heap, so the
// scan is O(|G|·log k) instead of the k·|G| of a selection sort.
func (c *CoreTensor) MaxAbsEntries(k int) (indices [][]int, values []float64) {
	n := len(c.dims)
	if k > len(c.val) {
		k = len(c.val)
	}
	if k <= 0 {
		return nil, nil
	}
	h := make(recHeap, 0, k)
	for e, v := range c.val {
		cand := Rec{Index: e, Score: math.Abs(v)}
		if len(h) < k {
			heap.Push(&h, cand)
			continue
		}
		if better(cand, h[0]) {
			h[0] = cand
			heap.Fix(&h, 0)
		}
	}
	indices = make([][]int, len(h))
	values = make([]float64, len(h))
	for i := len(values) - 1; i >= 0; i-- {
		rec := heap.Pop(&h).(Rec)
		e := rec.Index
		idx := make([]int, n)
		copy(idx, c.idx[e*n:(e+1)*n])
		indices[i] = idx
		values[i] = c.val[e]
	}
	return indices, values
}
