package core

import (
	"math/rand"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// CoreTensor is the Tucker core G represented as an explicit list of live
// entries (β, Gβ). A dense array would suffice for P-Tucker and
// P-Tucker-Cache, but P-Tucker-Approx removes entries each iteration, and all
// three variants iterate "∀β ∈ G" in their inner loops — the entry list makes
// that loop a flat scan and makes |G| shrink for free after truncation.
//
// Entry e has multi-index Idx[e*N : (e+1)*N] and value Val[e].
type CoreTensor struct {
	dims []int
	idx  []int
	val  []float64
}

// NewRandomCore returns a full core with dims = ranks whose values are drawn
// uniformly from [0,1), matching P-Tucker's initialization (Algorithm 2,
// line 1).
func NewRandomCore(ranks []int, rng *rand.Rand) *CoreTensor {
	n := len(ranks)
	size := 1
	for _, j := range ranks {
		size *= j
	}
	c := &CoreTensor{
		dims: append([]int(nil), ranks...),
		idx:  make([]int, 0, size*n),
		val:  make([]float64, 0, size),
	}
	// Enumerate multi-indices in little-endian order (mode 0 fastest).
	cur := make([]int, n)
	for e := 0; e < size; e++ {
		c.idx = append(c.idx, cur...)
		c.val = append(c.val, rng.Float64())
		for k := 0; k < n; k++ {
			cur[k]++
			if cur[k] < ranks[k] {
				break
			}
			cur[k] = 0
		}
	}
	return c
}

// Order returns the number of modes.
func (c *CoreTensor) Order() int { return len(c.dims) }

// Dims returns the core dimensionalities J1..JN; the slice must not be
// modified.
func (c *CoreTensor) Dims() []int { return c.dims }

// NNZ returns |G|, the number of live entries.
func (c *CoreTensor) NNZ() int { return len(c.val) }

// Index returns entry e's multi-index as a shared view.
func (c *CoreTensor) Index(e int) []int {
	n := len(c.dims)
	return c.idx[e*n : (e+1)*n]
}

// Value returns entry e's value.
func (c *CoreTensor) Value(e int) float64 { return c.val[e] }

// SetValue overwrites entry e's value.
func (c *CoreTensor) SetValue(e int, v float64) { c.val[e] = v }

// Clone returns a deep copy.
func (c *CoreTensor) Clone() *CoreTensor {
	return &CoreTensor{
		dims: append([]int(nil), c.dims...),
		idx:  append([]int(nil), c.idx...),
		val:  append([]float64(nil), c.val...),
	}
}

// RemoveEntries deletes the entries whose positions (into the current entry
// list) are marked true in drop, compacting the list in place. It returns the
// number of removed entries.
func (c *CoreTensor) RemoveEntries(drop []bool) int {
	n := len(c.dims)
	w := 0
	removed := 0
	for e := 0; e < len(c.val); e++ {
		if e < len(drop) && drop[e] {
			removed++
			continue
		}
		if w != e {
			copy(c.idx[w*n:(w+1)*n], c.idx[e*n:(e+1)*n])
			c.val[w] = c.val[e]
		}
		w++
	}
	c.idx = c.idx[:w*n]
	c.val = c.val[:w]
	return removed
}

// ToDense materializes the core as a dense tensor (truncated entries are
// zeros).
func (c *CoreTensor) ToDense() *tensor.Dense {
	d := tensor.NewDenseTensor(c.dims)
	n := len(c.dims)
	for e := 0; e < len(c.val); e++ {
		d.Set(c.idx[e*n:(e+1)*n], c.val[e])
	}
	return d
}

// FromDense rebuilds the live entry list from a dense tensor, keeping every
// cell (including zeros, because a mode product can legitimately produce
// structural zeros that later rotations revive — except when sparse is true,
// in which case exact zeros are dropped).
func (c *CoreTensor) FromDense(d *tensor.Dense, sparse bool) {
	n := d.Order()
	c.dims = append(c.dims[:0], d.Dims()...)
	c.idx = c.idx[:0]
	c.val = c.val[:0]
	idx := make([]int, n)
	for off, v := range d.Data() {
		if sparse && v == 0 {
			continue
		}
		d.IndexOf(off, idx)
		c.idx = append(c.idx, idx...)
		c.val = append(c.val, v)
	}
}

// RotateAll applies G ← G ×1 R(1) ··· ×N R(N) (Eq. 8), the core update that
// accompanies QR orthogonalization of the factor matrices. Each R must be
// Jn x Jn. Entries that were truncated stay absent only if the rotation
// leaves them exactly zero; in general the rotated core is dense again, which
// matches the semantics of Eq. (8).
func (c *CoreTensor) RotateAll(rs []*mat.Dense) {
	d := c.ToDense()
	d = d.ModeProductChain(rs)
	c.FromDense(d, false)
}

// MaxAbsEntries returns the k entries with the largest |Gβ| along with their
// indices, for relation discovery (Section V). The result is ordered by
// descending |Gβ|.
func (c *CoreTensor) MaxAbsEntries(k int) (indices [][]int, values []float64) {
	n := len(c.dims)
	type pair struct {
		e int
		a float64
	}
	pairs := make([]pair, len(c.val))
	for e, v := range c.val {
		a := v
		if a < 0 {
			a = -a
		}
		pairs[e] = pair{e, a}
	}
	// Partial selection sort: k is tiny (3 in the paper).
	if k > len(pairs) {
		k = len(pairs)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(pairs); j++ {
			if pairs[j].a > pairs[best].a {
				best = j
			}
		}
		pairs[i], pairs[best] = pairs[best], pairs[i]
		e := pairs[i].e
		idx := make([]int, n)
		copy(idx, c.idx[e*n:(e+1)*n])
		indices = append(indices, idx)
		values = append(values, c.val[e])
	}
	return indices, values
}
