package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// Observation is one observed tensor entry handed to the online-learning
// API: a multi-index (one coordinate per mode) and the observed value.
type Observation struct {
	Index []int   `json:"index"`
	Value float64 `json:"value"`
}

// Errors returned by the Fitter.
var (
	// ErrNotFitted reports a Fitter operation that needs a model before one
	// exists: call Fit first, or construct the Fitter with ResumeFitter.
	ErrNotFitted = errors.New("core: fitter has no model yet (call Fit or use ResumeFitter)")
	// ErrBadObservation reports an observation whose index does not address
	// a cell the operation can accept (wrong number of modes, coordinate out
	// of range, or — for FoldIn — a coordinate that is not the next new row).
	ErrBadObservation = errors.New("core: invalid observation")
	// ErrResumeMismatch reports a ResumeFitter call whose config is
	// inconsistent with the model being resumed.
	ErrResumeMismatch = errors.New("core: config inconsistent with resumed model")
)

// Fitter is the stateful fitting handle of the online-learning API: it owns a
// mutable copy of the factors, the core, and the accumulated training
// observations, and exposes the three regimes of model maintenance that
// P-Tucker's row-independent update rule (Eq. 4 / Algorithm 3) makes cheap:
//
//   - Fit: a cold fit from cfg.Seed, equivalent to DecomposeContext.
//   - Refit: warm-started ALS over the union of old and new observations,
//     reusing the current factors as the starting point instead of
//     re-randomizing — it typically reaches the cold-fit error in a fraction
//     of the iterations. Use it when many observations have accumulated or
//     existing rows' data changed.
//   - FoldIn: solve the row-wise least-squares problem (Eq. 9) exactly once
//     for a single brand-new row (a cold-start user, a new item), growing the
//     factor matrix by one row in O(nnz_i·J²·|G|) — no iteration at all. Use
//     it when a new entity must be servable immediately; its row is exactly
//     what one cold-fit row update with all other factors fixed would
//     produce, but the other rows are not re-fitted, so schedule a Refit
//     once enough fold-ins or observations pile up.
//
// Snapshot returns an immutable deep-copied *Model at any point, which is
// what predictors and the serving layer consume.
//
// Determinism: a Fitter is as reproducible as the one-shot API. Equal seed
// and an equal sequence of operations (same Fit/Observe/FoldIn/Refit calls
// with the same arguments) yield bit-identical snapshots at any thread
// count; Refit and FoldIn draw no randomness at all.
//
// A Fitter is not safe for concurrent use; callers that share one across
// goroutines (e.g. a serving layer) must serialize access. Snapshots, once
// returned, are immutable and freely shareable.
type Fitter struct {
	cfg   Config // as supplied; normalized into st.cfg at init time
	st    *state
	model *Model // aliases st's live factors/core; deep-copied by Snapshot
}

// NewFitter returns a Fitter that will cold-start from cfg (validated
// against the tensor shape at the first Fit call).
func NewFitter(cfg Config) *Fitter { return &Fitter{cfg: cfg} }

// ResumeFitter wraps an already-fitted model (e.g. one loaded from disk) in
// a Fitter so it can absorb new observations without a from-scratch refit.
// The model's factors and core are deep-copied — the source model is never
// mutated. The fitter starts with an empty observation set: Refit fits over
// whatever Observe/FoldIn have added since the resume, leaving rows with no
// new observations at their served values.
//
// cfg.Ranks may be nil to adopt the model's ranks; when set they must match
// the model's core dimensionalities. Fit-loop knobs (MaxIters, Tol, Lambda,
// Threads, ...) are taken from cfg.
func ResumeFitter(m *Model, cfg Config) (*Fitter, error) {
	order := len(m.Factors)
	if order == 0 || m.Core == nil {
		return nil, fmt.Errorf("%w: model has no factors", ErrResumeMismatch)
	}
	dims := make([]int, order)
	for k, a := range m.Factors {
		dims[k] = a.Rows()
	}
	if len(cfg.Ranks) == 0 {
		cfg.Ranks = m.Core.Dims()
	}
	if len(cfg.Ranks) != order {
		return nil, fmt.Errorf("%w: %d ranks vs order %d", ErrResumeMismatch, len(cfg.Ranks), order)
	}
	for k, j := range cfg.Ranks {
		if j != m.Factors[k].Cols() || j != m.Core.Dims()[k] {
			return nil, fmt.Errorf("%w: rank J%d = %d but model factor has %d columns (core dim %d)",
				ErrResumeMismatch, k+1, j, m.Factors[k].Cols(), m.Core.Dims()[k])
		}
	}
	cfg, err := cfg.Validate(dims)
	if err != nil {
		return nil, err
	}

	factors := make([]*mat.Dense, order)
	for k, a := range m.Factors {
		factors[k] = a.Clone()
	}
	x := tensor.NewCoord(dims)
	st := &state{
		x:       x,
		omega:   tensor.NewModeIndex(x),
		factors: factors,
		core:    m.Core.Clone(),
		cfg:     cfg,
	}
	f := &Fitter{cfg: cfg, st: st}
	f.model = st.newModel()
	f.model.TrainError = m.TrainError
	f.model.FinalCoreNNZ = m.FinalCoreNNZ
	return f, nil
}

// Fit cold-starts a factorization of x from the fitter's config, exactly as
// DecomposeContext would (same seed, same phases, bit-identical result), and
// installs the fitted state as the fitter's current model. The observations
// of x are copied into the fitter's training set, so later Refit calls sweep
// over the union of x and everything observed since. The returned model is
// an immutable snapshot.
func (f *Fitter) Fit(ctx context.Context, x *tensor.Coord) (*Model, error) {
	model, st, err := decompose(ctx, x.Clone(), f.cfg)
	if err != nil {
		return nil, err
	}
	f.st = st
	f.model = model
	return f.Snapshot(), nil
}

// Observe appends delta observations to the fitter's training set without
// refitting; every index must address an existing cell. The observations
// take effect at the next Refit. It validates all observations before
// appending any, so a failed Observe leaves the fitter unchanged.
func (f *Fitter) Observe(delta []Observation) error {
	if f.st == nil {
		return ErrNotFitted
	}
	for i, o := range delta {
		if err := f.checkIndex(o.Index); err != nil {
			return fmt.Errorf("observation %d: %w", i, err)
		}
	}
	for _, o := range delta {
		f.st.x.MustAppend(o.Index, o.Value)
	}
	f.st.omega = nil // stale; rebuilt by the next Refit
	return nil
}

// Refit appends delta (which may be empty) to the training set and runs a
// warm-started ALS sweep over the whole accumulated set: the current factors
// and core are the starting point — no re-randomization — so convergence is
// measured from an already-good iterate and the Tol stopping rule fires in a
// fraction of a cold fit's iterations. Rows that have no observations in the
// accumulated set keep their current values (relevant after ResumeFitter,
// whose set only holds what arrived since the resume). The refit model is
// finalized (QR + core rotation) and returned as an immutable snapshot.
//
// On error (including ctx cancellation mid-sweep) the fitter's factors may
// have absorbed a partial sweep; they remain a valid model — every completed
// row update is an exact minimizer — and the previous snapshot is untouched.
func (f *Fitter) Refit(ctx context.Context, delta []Observation) (*Model, error) {
	if f.st == nil {
		return nil, ErrNotFitted
	}
	if err := f.Observe(delta); err != nil {
		return nil, err
	}
	st := f.st
	if st.x.NNZ() == 0 {
		return nil, ErrEmptyTensor
	}

	// Rebuild the structures FoldIn/Observe invalidated: the inverted index
	// always (new entries), the Pres cache for P-Tucker-Cache (new entries
	// and possibly new rows).
	st.omega = tensor.NewModeIndex(st.x)
	if st.cfg.Method == PTuckerCache {
		st.buildCache()
	}
	st.keepEmptyRows = true

	model := st.newModel()
	if err := st.sweep(ctx, model); err != nil {
		return nil, err
	}
	if err := st.finish(model); err != nil {
		return nil, err
	}
	f.model = model
	return f.Snapshot(), nil
}

// FoldIn admits one brand-new row of the given mode — index Dim(mode), the
// next unused slice — from its observations: it grows the factor matrix
// A(mode) by one row (copy-on-write: previously returned snapshots keep the
// old matrix) and solves Eq. 9 for that row exactly once against the current
// factors and core, costing O(nnz_i·J²·|G|) instead of a full fit. The solved
// row is bit-identical to what a cold-fit row update with all other factors
// fixed would produce. obs indexes must carry the new row's index at mode and
// existing coordinates elsewhere; the observations join the training set for
// later Refits. It returns the new row's index.
//
// Fold-in fixes every other factor row, so it is the right tool for serving
// a cold-start entity immediately; accumulate enough fold-ins or new
// observations and the surrounding rows' staleness grows — run Refit to
// re-balance the whole model.
func (f *Fitter) FoldIn(mode int, obs []Observation) (int, error) {
	if f.st == nil {
		return 0, ErrNotFitted
	}
	st := f.st
	n := st.x.Order()
	if mode < 0 || mode >= n {
		return 0, fmt.Errorf("%w: mode %d out of range [0,%d)", ErrBadObservation, mode, n)
	}
	if len(obs) == 0 {
		return 0, fmt.Errorf("%w: fold-in needs at least one observation for the new row", ErrBadObservation)
	}
	newRow := st.x.Dim(mode)
	for i, o := range obs {
		if len(o.Index) != n {
			return 0, fmt.Errorf("%w: observation %d has %d modes, model has %d", ErrBadObservation, i, len(o.Index), n)
		}
		for k, c := range o.Index {
			if k == mode {
				if c != newRow {
					return 0, fmt.Errorf("%w: observation %d has index %d in mode %d; fold-in row must be the next new slice %d",
						ErrBadObservation, i, c, mode, newRow)
				}
				continue
			}
			if c < 0 || c >= st.x.Dim(k) {
				return 0, fmt.Errorf("%w: observation %d index %d out of range [0,%d) in mode %d",
					ErrBadObservation, i, c, st.x.Dim(k), k)
			}
		}
	}

	// Grow the tensor's shape and append the new row's observations; their
	// entry ids are exactly what Ω(mode)[newRow] would enumerate.
	st.x.GrowMode(mode, newRow+1)
	base := st.x.NNZ()
	for _, o := range obs {
		st.x.MustAppend(o.Index, o.Value)
	}
	entries := make([]int, len(obs))
	for i := range entries {
		entries[i] = base + i
	}

	// Copy-on-write row append: the grown matrix is a fresh allocation, so
	// any previously snapshotted model keeps the old one untouched.
	a := st.factors[mode]
	grown := mat.NewDense(a.Rows()+1, a.Cols())
	copy(grown.Data(), a.Data())
	st.factors[mode] = grown
	f.model.Factors[mode] = grown

	// The Pres cache (P-Tucker-Cache) is indexed by entry id and sized for
	// the pre-append |Ω|; drop it so the solve takes the direct-product path
	// (Refit rebuilds it). The inverted index is likewise stale.
	st.cache = nil
	st.cacheW = 0
	st.omega = nil

	// Solve Eq. 9 once for the new row with the shared row kernel.
	w := newWorkspace(n, st.cfg.Ranks[mode])
	st.solveRowEntries(mode, entries, grown.Row(newRow), w)
	return newRow, nil
}

// TrainingStore supplies a persisted training set to AttachStore. It is
// implemented by store.Dir (the serving layer's data directory); any source
// of a training tensor will do. TrainingTensor returns (nil, nil) when
// nothing has been persisted yet.
type TrainingStore interface {
	TrainingTensor() (*tensor.Coord, error)
}

// AttachStore loads the persisted training set from ts and attaches it via
// AttachTrainingSet, so a Fitter resumed from a bare model file refits over
// the true union of everything ever observed instead of only the
// observations that arrived since the resume. A store with no persisted
// tensor is a no-op.
func (f *Fitter) AttachStore(ts TrainingStore) error {
	x, err := ts.TrainingTensor()
	if err != nil {
		return err
	}
	if x == nil {
		return nil
	}
	return f.AttachTrainingSet(x)
}

// AttachTrainingSet merges a persisted training tensor into the fitter's
// accumulated observation set, in front of anything observed since the
// resume — the same order a process that never went down would have them in,
// which is what keeps resumed refits bit-identical to uninterrupted ones.
// The tensor's order must match the model's, and no mode may be larger than
// the model's (the model must cover every row the training set addresses);
// smaller modes are grown to the model's shape. x is cloned, never aliased.
func (f *Fitter) AttachTrainingSet(x *tensor.Coord) error {
	if f.st == nil {
		return ErrNotFitted
	}
	st := f.st
	n := st.x.Order()
	if x.Order() != n {
		return fmt.Errorf("%w: training set has order %d, model has %d", ErrBadObservation, x.Order(), n)
	}
	for k := 0; k < n; k++ {
		if x.Dim(k) > st.x.Dim(k) {
			return fmt.Errorf("%w: training set mode %d has dimension %d but the model covers only %d rows",
				ErrBadObservation, k, x.Dim(k), st.x.Dim(k))
		}
	}

	merged := x.Clone()
	for k := 0; k < n; k++ {
		merged.GrowMode(k, st.x.Dim(k))
	}
	for e := 0; e < st.x.NNZ(); e++ {
		merged.MustAppend(st.x.Index(e), st.x.Value(e))
	}
	st.x = merged
	// Entry-indexed structures are stale; Refit rebuilds them.
	st.omega = nil
	st.cache = nil
	st.cacheW = 0
	return nil
}

// TrainingSet returns a deep copy of the fitter's accumulated training
// observations (what the next Refit sweeps over and what a compaction
// snapshot persists), or nil before the first fit.
func (f *Fitter) TrainingSet() *tensor.Coord {
	if f.st == nil {
		return nil
	}
	return f.st.x.Clone()
}

// Snapshot returns an immutable deep copy of the fitter's current model,
// suitable for NewPredictor and the serving layer. Factors, core, config,
// and run statistics are all copied; later Fit/Refit/FoldIn calls never
// mutate a returned snapshot.
func (f *Fitter) Snapshot() *Model {
	if f.model == nil {
		return nil
	}
	m := f.model
	factors := make([]*mat.Dense, len(m.Factors))
	for k, a := range m.Factors {
		factors[k] = a.Clone()
	}
	c := *m
	c.Factors = factors
	c.Core = m.Core.Clone()
	c.Config.Ranks = append([]int(nil), m.Config.Ranks...)
	c.Trace = append([]IterStats(nil), m.Trace...)
	c.WorkPerThread = append([]int64(nil), m.WorkPerThread...)
	return &c
}

// Dims returns the current mode lengths I1..IN (grown by fold-ins), or nil
// before the first fit.
func (f *Fitter) Dims() []int {
	if f.st == nil {
		return nil
	}
	return append([]int(nil), f.st.x.Dims()...)
}

// NNZ returns the number of training observations the fitter has
// accumulated (the set the next Refit sweeps over).
func (f *Fitter) NNZ() int {
	if f.st == nil {
		return 0
	}
	return f.st.x.NNZ()
}

// checkIndex validates idx against the fitter's current shape.
func (f *Fitter) checkIndex(idx []int) error {
	n := f.st.x.Order()
	if len(idx) != n {
		return fmt.Errorf("%w: index has %d modes, model has %d", ErrBadObservation, len(idx), n)
	}
	for k, c := range idx {
		if c < 0 || c >= f.st.x.Dim(k) {
			return fmt.Errorf("%w: index %d out of range [0,%d) in mode %d", ErrBadObservation, c, f.st.x.Dim(k), k)
		}
	}
	return nil
}
