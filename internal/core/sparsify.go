package core

import "sort"

// sparsifyCore is the post-fit VeST-style pruning pass (Config.Sparsify): it
// ranks live core entries by responsibility and removes the largest prefix of
// low-responsibility entries whose reconstruction error stays within the
// configured relative budget. It runs after the QR finalization, so the
// ranking and the budget are measured on exactly the model that will be
// served.
//
// Responsibility is read off the partial reconstruction errors R(β) (Eq. 13):
// a large R(β) means the entry hurts the fit — the least responsible entries
// for the model's accuracy — so candidates are taken in descending R(β),
// ties broken by entry position (the same total order truncateCore uses,
// keeping equal-seed runs bit-identical). The budget is checked against
// cfg.SparsifyHoldout when set (generalization-gated pruning), otherwise
// against the training set.
//
// The prune count is found by exponential probing followed by bisection;
// each probe recomputes the true reconstruction error on a pruned clone, so
// the accepted count honestly satisfies the budget rather than relying on
// the scores being additive. The error is not strictly monotone in the
// count — dropping an entry with positive R(β) lowers it — but the probe
// sequence is deterministic, so equal fits prune identically. At least one
// entry always survives.
func (st *state) sparsifyCore(model *Model) {
	g := st.core
	width := g.NNZ()
	if st.cfg.Sparsify <= 0 || width <= 1 {
		return
	}
	scoreSet := st.x
	if st.cfg.SparsifyHoldout != nil {
		scoreSet = st.cfg.SparsifyHoldout
	}
	threads := st.cfg.Threads
	base := reconstructionError(scoreSet, st.factors, g, threads)
	budget := base * (1 + st.cfg.Sparsify)

	r := PartialErrors(st)
	order := make([]int, width)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := r[order[a]], r[order[b]]
		if ra != rb {
			return ra > rb
		}
		return order[a] < order[b]
	})

	errAt := func(k int) float64 {
		drop := make([]bool, width)
		for i := 0; i < k; i++ {
			drop[order[i]] = true
		}
		clone := g.Clone()
		clone.RemoveEntries(drop)
		return reconstructionError(scoreSet, st.factors, clone, threads)
	}

	maxK := width - 1
	best := 0
	lo, hi := 0, -1 // errAt(lo) ≤ budget; hi is the smallest known failure
	for k := 1; ; k *= 2 {
		if k > maxK {
			k = maxK
		}
		if errAt(k) <= budget {
			best, lo = k, k
			if k == maxK {
				break
			}
			continue
		}
		hi = k
		break
	}
	if hi > 0 {
		for hi-lo > 1 {
			mid := lo + (hi-lo)/2
			if errAt(mid) <= budget {
				best, lo = mid, mid
			} else {
				hi = mid
			}
		}
	}
	if best == 0 {
		return
	}

	drop := make([]bool, width)
	for i := 0; i < best; i++ {
		drop[order[i]] = true
	}
	g.RemoveEntries(drop)
	// The served model's training error moved; keep the summary truthful.
	model.TrainError = reconstructionError(st.x, st.factors, g, threads)
}
