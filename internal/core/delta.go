package core

import "math"

// aZeroTol is the threshold below which a factor entry is treated as zero in
// the cached δ computation; dividing the memoized product by such an entry
// would amplify noise, so the paper falls back to the direct product
// (Algorithm 3, note under lines 12/19).
const aZeroTol = 1e-12

// computeDelta fills w.delta with the δ(n)_α vector of Eq. (12) for observed
// entry alpha and the given mode: δ(jn) = Σ_{β∈G, βn=jn} Gβ ∏_{k≠n}
// A(k)[ik][jk]. It returns the filled slice (length Jn).
//
// Plain P-Tucker recomputes the N-1 factor products per core entry, costing
// O(N) per (α,β) pair; P-Tucker-Cache divides the memoized full product
// Pres[α][β] by the mode-n factor entry, costing O(1) (this is the entire
// time-vs-memory trade of the variant).
func (st *state) computeDelta(mode, alpha int, w *workspace) []float64 {
	g := st.core
	n := g.Order()
	jn := st.cfg.Ranks[mode]
	delta := w.delta[:jn]
	for j := range delta {
		delta[j] = 0
	}

	idx := st.x.Index(alpha)
	rows := w.rows
	for k := 0; k < n; k++ {
		rows[k] = st.factors[k].Row(idx[k])
	}

	gi := g.idx
	gv := g.val
	if st.cache == nil {
		for e := 0; e < len(gv); e++ {
			base := e * n
			prod := gv[e]
			for k := 0; k < n; k++ {
				if k == mode {
					continue
				}
				prod *= rows[k][gi[base+k]]
			}
			delta[gi[base+mode]] += prod
		}
		return delta
	}

	// Cached path: δ(jn) += Pres[α][e] / A(n)[in][jn], with the direct
	// product as fallback when the factor entry is (numerically) zero.
	row := st.cache[alpha*st.cacheW : alpha*st.cacheW+len(gv)]
	modeRow := rows[mode]
	for e := 0; e < len(gv); e++ {
		base := e * n
		j := gi[base+mode]
		a := modeRow[j]
		if math.Abs(a) > aZeroTol {
			delta[j] += row[e] / a
			continue
		}
		prod := gv[e]
		for k := 0; k < n; k++ {
			if k == mode {
				continue
			}
			prod *= rows[k][gi[base+k]]
		}
		delta[j] += prod
	}
	return delta
}

// buildCache (re)computes the Pres table from scratch (Algorithm 3 lines
// 1-4): Pres[α][e] = Gβ(e) · ∏_{k=1..N} A(k)[ik][jk(e)], in parallel over
// observed entries.
func (st *state) buildCache() {
	nnz := st.x.NNZ()
	width := st.core.NNZ()
	if cap(st.cache) < nnz*width {
		st.cache = make([]float64, nnz*width)
	} else {
		st.cache = st.cache[:nnz*width]
	}
	st.cacheW = width

	n := st.x.Order()
	g := st.core
	gi := g.idx
	gv := g.val
	rowsBuf := make([][][]float64, st.cfg.Threads)
	for t := range rowsBuf {
		rowsBuf[t] = make([][]float64, n)
	}
	runIndexed(st.cfg.Threads, ScheduleStatic, 1, nnz, func(tid, alpha int) {
		rows := rowsBuf[tid]
		idx := st.x.Index(alpha)
		for k := 0; k < n; k++ {
			rows[k] = st.factors[k].Row(idx[k])
		}
		out := st.cache[alpha*width : (alpha+1)*width]
		for e := 0; e < width; e++ {
			base := e * n
			prod := gv[e]
			for k := 0; k < n; k++ {
				prod *= rows[k][gi[base+k]]
			}
			out[e] = prod
		}
	})
}

// rescaleCache updates Pres after A(mode) changed (Algorithm 3 lines 16-19):
// each memoized product is multiplied by new/old of the mode's factor entry.
// When the old entry was (numerically) zero the ratio is undefined and the
// product is recomputed from scratch, mirroring the fallback in computeDelta.
func (st *state) rescaleCache(mode int, oldA interface {
	Row(int) []float64
}) {
	n := st.x.Order()
	g := st.core
	gi := g.idx
	gv := g.val
	width := st.cacheW
	rowsBuf := make([][][]float64, st.cfg.Threads)
	for t := range rowsBuf {
		rowsBuf[t] = make([][]float64, n)
	}
	runIndexed(st.cfg.Threads, ScheduleStatic, 1, st.x.NNZ(), func(tid, alpha int) {
		idx := st.x.Index(alpha)
		in := idx[mode]
		oldRow := oldA.Row(in)
		newRow := st.factors[mode].Row(in)
		out := st.cache[alpha*width : alpha*width+len(gv)]
		var rows [][]float64
		for e := 0; e < len(gv); e++ {
			base := e * n
			j := gi[base+mode]
			oldV := oldRow[j]
			if math.Abs(oldV) > aZeroTol {
				out[e] *= newRow[j] / oldV
				continue
			}
			// Recompute the full product.
			if rows == nil {
				rows = rowsBuf[tid]
				for k := 0; k < n; k++ {
					rows[k] = st.factors[k].Row(idx[k])
				}
			}
			prod := gv[e]
			for k := 0; k < n; k++ {
				prod *= rows[k][gi[base+k]]
			}
			out[e] = prod
		}
	})
}
