package core

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"
	"math/rand"
	"testing"
	"unsafe"

	"repro/internal/mat"
)

// alignedCopy returns b copied into 8-byte-aligned memory, the way an mmap
// base address is always aligned; plain []byte test buffers may not be.
func alignedCopy(b []byte) []byte {
	buf := make([]uint64, (len(b)+7)/8+1)
	out := unsafe.Slice((*byte)(unsafe.Pointer(&buf[0])), len(b))
	copy(out, b)
	return out
}

// syntheticModel builds a servable model without fitting: random finalized
// core, random factors. Factor 0's data block exceeds a 4KiB page, so the
// aliased value slices span page boundaries in the mapped file.
func syntheticModel(tb testing.TB, seed int64, dims, ranks []int) *Model {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	factors := make([]*mat.Dense, len(dims))
	for k, d := range dims {
		data := make([]float64, d*ranks[k])
		for i := range data {
			data[i] = rng.NormFloat64()
		}
		factors[k] = mat.NewDenseData(d, ranks[k], data)
	}
	g := NewRandomCore(ranks, rng)
	g.FinalizeLayout()
	return &Model{Factors: factors, Core: g, Config: Defaults(ranks)}
}

func encodeModel(tb testing.TB, m *Model) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		tb.Fatal(err)
	}
	return alignedCopy(buf.Bytes())
}

// The tentpole property: a mapped model predicts bit-identically to both the
// in-memory original and the heap-decoded copy, with its bulk arrays
// aliasing the mapping rather than the heap.
func TestModelFromMappingBitIdenticalAndZeroCopy(t *testing.T) {
	dims := []int{600, 50, 40} // factor 0 data = 600·4·8 B ≫ one 4KiB page
	m := syntheticModel(t, 7, dims, []int{4, 3, 2})
	data := encodeModel(t, m)

	heap, err := ReadModel(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := ModelFromMapping(data)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(8))
	idx := make([]int, len(dims))
	for i := 0; i < 500; i++ {
		for k, d := range dims {
			idx[k] = rng.Intn(d)
		}
		want := m.Predict(idx)
		if got := mapped.Predict(idx); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("mapped prediction at %v = %v, original %v", idx, got, want)
		}
		if got := heap.Predict(idx); math.Float64bits(got) != math.Float64bits(mapped.Predict(idx)) {
			t.Fatalf("heap and mapped predictions differ at %v", idx)
		}
	}

	// Zero-copy: the factor data and core arrays must point into data, not
	// onto the heap.
	base := uintptr(unsafe.Pointer(&data[0]))
	end := base + uintptr(len(data))
	within := func(p unsafe.Pointer) bool {
		u := uintptr(p)
		return u >= base && u < end
	}
	for k, a := range mapped.Factors {
		if len(a.Data()) > 0 && !within(unsafe.Pointer(&a.Data()[0])) {
			t.Fatalf("factor %d data does not alias the mapping", k)
		}
	}
	if !within(unsafe.Pointer(&mapped.Core.val[0])) || !within(unsafe.Pointer(&mapped.Core.idx[0])) {
		t.Fatal("core entries do not alias the mapping")
	}

	// Everything the heap reader reconstructs, the mapped reader must too.
	if mapped.Config.Seed != m.Config.Seed || mapped.Config.Lambda != m.Config.Lambda {
		t.Fatalf("config changed: %+v vs %+v", mapped.Config, m.Config)
	}
	if mapped.Core.NNZ() != m.Core.NNZ() || !mapped.Core.Finalized() {
		t.Fatalf("core nnz %d (finalized %v), want %d finalized",
			mapped.Core.NNZ(), mapped.Core.Finalized(), m.Core.NNZ())
	}
}

// Pre-v4 streams (no aligned blocks, u32 indices) are the heap decoder's
// job: the mapper must say ErrNotMappable, not misparse.
func TestModelFromMappingRejectsOldVersions(t *testing.T) {
	m, _ := fittedModel(t, 11)
	m.Core.groupOff = nil
	var buf bytes.Buffer
	if err := writeModelV1(m, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ModelFromMapping(alignedCopy(buf.Bytes())); !errorIs(err, ErrNotMappable) {
		t.Fatalf("v1 stream: err = %v, want ErrNotMappable", err)
	}
}

func TestModelFromMappingRejectsMisalignedBase(t *testing.T) {
	m := syntheticModel(t, 9, []int{20, 16, 12}, []int{2, 2, 2})
	data := encodeModel(t, m)
	shifted := alignedCopy(append(make([]byte, 1), data...))[1:]
	if uintptr(unsafe.Pointer(&shifted[0]))&7 == 0 {
		t.Fatal("test bug: shifted buffer still aligned")
	}
	if _, err := ModelFromMapping(shifted); !errorIs(err, ErrNotMappable) {
		t.Fatalf("misaligned base: err = %v, want ErrNotMappable", err)
	}
}

// A truncated mapping — the tail cut off, or bytes missing from the middle
// with the footer intact — must be rejected, never parsed past its end.
func TestModelFromMappingTruncated(t *testing.T) {
	m := syntheticModel(t, 10, []int{64, 48, 32}, []int{3, 3, 3})
	data := encodeModel(t, m)

	for _, cut := range []int{1, 4, footerSize, footerSize + 4, len(data) / 2} {
		if _, err := ModelFromMapping(alignedCopy(data[:len(data)-cut])); err == nil {
			t.Fatalf("mapping truncated by %d bytes was accepted", cut)
		}
	}
	// Middle excision keeps the footer but desyncs everything behind it.
	mid := append([]byte(nil), data[:1024]...)
	mid = append(mid, data[1024+64:]...)
	if _, err := ModelFromMapping(alignedCopy(mid)); err == nil {
		t.Fatal("mapping with 64 bytes excised mid-stream was accepted")
	}
}

// writeModelV4Lying re-encodes m in the v4 layout with both CRCs computed
// over the stream as written, but with one length field inflated by lie —
// the "checksums say fine, lengths say otherwise" attack the mapper's
// bounds checks must stop. field is "nnz" or "rows".
func writeModelV4Lying(tb testing.TB, m *Model, field string, lie uint64) []byte {
	tb.Helper()
	var buf bytes.Buffer
	cw := &countingWriter{w: &buf}
	crc := crc32.NewIEEE()
	metaCRC := crc32.NewIEEE()
	bw := &binWriter{
		w:   io.MultiWriter(cw, crc, metaCRC),
		blk: io.MultiWriter(cw, crc),
	}
	pad := func() {
		if p := int(-cw.n & 7); p > 0 {
			var zeros [8]byte
			bw.write(zeros[:p])
		}
	}

	bw.write([]byte(modelMagic))
	bw.write(uint32(modelVersion))
	c := m.Config
	bw.writeInts(c.Ranks)
	bw.write(c.Lambda)
	bw.write(int64(c.MaxIters))
	bw.write(c.Tol)
	bw.write(int64(c.Threads))
	bw.write(int64(c.Method))
	bw.write(c.TruncationRate)
	bw.write(int64(c.Scheduling))
	bw.write(c.Seed)
	bw.write(boolByte(c.UpdateCore))
	bw.write(int64(c.ChunkSize))
	bw.write(c.SampleRate)
	bw.write(c.Sparsify)

	bw.write(uint64(len(m.Factors)))
	for k, a := range m.Factors {
		rows := uint64(a.Rows())
		if field == "rows" && k == 0 {
			rows += lie
		}
		bw.write(rows)
		bw.write(uint64(a.Cols()))
		pad()
		bw.writeBlock(a.Data()) // the true data: fewer bytes than claimed
	}

	g := m.Core
	var flags uint8
	if g.Finalized() {
		flags |= coreFlagFinalized
	}
	bw.write(flags)
	bw.writeInts(g.dims)
	nnz := uint64(g.NNZ())
	if field == "nnz" {
		nnz += lie
	}
	bw.write(nnz)
	pad()
	bw.writeIntsAsI64Block(g.idx)
	bw.writeBlock(g.val)

	bw.write(uint64(len(m.Trace)))
	for _, it := range m.Trace {
		bw.write(int64(it.Iter))
		bw.write(it.Error)
		bw.write(int64(it.Elapsed))
		bw.write(int64(it.CoreNNZ))
	}
	bw.write(boolByte(m.Converged))
	bw.write(m.TrainError)
	bw.write(m.IntermediateBytes)
	bw.write(int64(m.FinalCoreNNZ))
	bw.write(uint64(len(m.WorkPerThread)))
	bw.write(m.WorkPerThread)
	if bw.err != nil {
		tb.Fatal(bw.err)
	}
	if err := binary.Write(cw, binary.LittleEndian, crc.Sum32()); err != nil {
		tb.Fatal(err)
	}
	if err := binary.Write(cw, binary.LittleEndian, metaCRC.Sum32()); err != nil {
		tb.Fatal(err)
	}
	if _, err := cw.Write([]byte(footerMagic)); err != nil {
		tb.Fatal(err)
	}
	return alignedCopy(buf.Bytes())
}

func TestModelFromMappingRejectsLyingLengths(t *testing.T) {
	m := syntheticModel(t, 12, []int{40, 30, 20}, []int{3, 2, 2})
	for _, field := range []string{"nnz", "rows"} {
		for _, lie := range []uint64{1, 1000, 1 << 28} {
			data := writeModelV4Lying(t, m, field, lie)
			if _, err := ModelFromMapping(data); err == nil {
				t.Fatalf("stream lying about %s by %d was accepted", field, lie)
			}
			// The heap decoder must refuse it too (its CRC covers the blocks).
			if _, err := ReadModel(bytes.NewReader(data)); err == nil {
				t.Fatalf("heap reader accepted stream lying about %s by %d", field, lie)
			}
		}
	}
	// Sanity: the lying encoder with no lie produces an accepted stream, so
	// the rejections above are about the lie, not the encoder.
	data := writeModelV4Lying(t, m, "none", 0)
	if _, err := ModelFromMapping(data); err != nil {
		t.Fatalf("truthful control stream rejected: %v", err)
	}
}

// Flipping a metadata byte must trip the footer's metadata CRC even though
// the mapper never hashes the bulk blocks.
func TestModelFromMappingDetectsMetadataCorruption(t *testing.T) {
	m := syntheticModel(t, 13, []int{30, 20, 10}, []int{2, 2, 2})
	data := encodeModel(t, m)
	flipped := alignedCopy(data)
	flipped[9] ^= 0x01 // inside the config block
	if _, err := ModelFromMapping(flipped); err == nil {
		t.Fatal("metadata corruption went undetected")
	}
}

// The mapper's open cost must not scale with factor bytes: its allocation
// count is identical for a small and a 64x-larger model (the heap decoder's
// grows with the data). This is the allocation face of the
// BenchmarkMmapModelOpen acceptance criterion, stable enough to pin.
func TestModelFromMappingAllocsIndependentOfSize(t *testing.T) {
	small := encodeModel(t, syntheticModel(t, 14, []int{128, 16, 12}, []int{3, 2, 2}))
	large := encodeModel(t, syntheticModel(t, 14, []int{8192, 1024, 12}, []int{3, 2, 2}))

	mapOpens := func(data []byte) float64 {
		return testing.AllocsPerRun(20, func() {
			if _, err := ModelFromMapping(data); err != nil {
				t.Fatal(err)
			}
		})
	}
	if s, l := mapOpens(small), mapOpens(large); s != l {
		t.Fatalf("mapped open allocations scale with size: %v (small) vs %v (large)", s, l)
	}
}
