package core

// Ablation micro-benchmarks for the reproduction's design choices:
// plain vs cached δ computation, core truncation cost, dynamic vs static
// scheduling, the sampling extension, and the parallel error pass.

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// benchTensor builds a shared 3-order workload: 10k entries over 1k³ cells.
func benchTensor(b *testing.B) *tensor.Coord {
	b.Helper()
	rng := rand.New(rand.NewSource(77))
	return uniformTensor(rng, []int{1000, 1000, 1000}, 10000)
}

func benchConfig(method Method) Config {
	cfg := Defaults([]int{4, 4, 4})
	cfg.Method = method
	cfg.MaxIters = 1
	cfg.Tol = 0
	cfg.Threads = 2
	cfg.Seed = 3
	return cfg
}

// BenchmarkIterationPlain measures one full ALS iteration of plain P-Tucker.
func BenchmarkIterationPlain(b *testing.B) {
	x := benchTensor(b)
	cfg := benchConfig(PTucker)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(x, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIterationCache is the cached-δ ablation of the same iteration.
func BenchmarkIterationCache(b *testing.B) {
	x := benchTensor(b)
	cfg := benchConfig(PTuckerCache)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(x, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIterationApprox is the truncated-core ablation.
func BenchmarkIterationApprox(b *testing.B) {
	x := benchTensor(b)
	cfg := benchConfig(PTuckerApprox)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(x, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIterationSampled measures the sampling extension at 50%.
func BenchmarkIterationSampled(b *testing.B) {
	x := benchTensor(b)
	cfg := benchConfig(PTucker)
	cfg.SampleRate = 0.5
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(x, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulingDynamic and ...Static compare the two row-distribution
// policies of Section III-D on a skewed workload.
func benchScheduling(b *testing.B, s Scheduling) {
	b.Helper()
	rng := rand.New(rand.NewSource(78))
	x := tensor.NewCoord([]int{500, 500, 500})
	idx := make([]int, 3)
	for x.NNZ() < 10000 {
		if x.NNZ()%2 == 0 {
			idx[0] = rng.Intn(3) // hot rows
		} else {
			idx[0] = rng.Intn(500)
		}
		idx[1], idx[2] = rng.Intn(500), rng.Intn(500)
		x.MustAppend(idx, rng.Float64())
	}
	cfg := benchConfig(PTucker)
	cfg.Scheduling = s
	cfg.Threads = 4
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(x, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchedulingDynamic(b *testing.B) { benchScheduling(b, ScheduleDynamic) }
func BenchmarkSchedulingStatic(b *testing.B)  { benchScheduling(b, ScheduleStatic) }

// BenchmarkPartialErrors measures the R(β) scoring pass of Algorithm 4.
func BenchmarkPartialErrors(b *testing.B) {
	x := benchTensor(b)
	cfg := benchConfig(PTucker)
	m, err := Decompose(x, cfg)
	if err != nil {
		b.Fatal(err)
	}
	st := NewStateForAnalysis(x, m.Factors, m.Core, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PartialErrors(st)
	}
}

// BenchmarkErrorPass measures the parallel Eq. (5) reconstruction pass.
func BenchmarkErrorPass(b *testing.B) {
	x := benchTensor(b)
	cfg := benchConfig(PTucker)
	m, err := Decompose(x, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.ReconstructionError(x)
	}
}

// BenchmarkFoldIn tracks the online fold-in hot path: one row-wise
// least-squares solve (O(nnz_i·J²·|G|)) plus the copy-on-write row append,
// per new entity admitted to a served model.
func BenchmarkFoldIn(b *testing.B) {
	x := benchTensor(b)
	cfg := benchConfig(PTucker)
	f := NewFitter(cfg)
	if _, err := f.Fit(context.Background(), x); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	const obsPerRow = 20
	items := make([]int, obsPerRow*b.N)
	ctxs := make([]int, obsPerRow*b.N)
	for i := range items {
		items[i] = rng.Intn(x.Dim(1))
		ctxs[i] = rng.Intn(x.Dim(2))
	}
	obs := make([]Observation, obsPerRow)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		newRow := x.Dim(0) + i
		for j := range obs {
			obs[j] = Observation{Index: []int{newRow, items[i*obsPerRow+j], ctxs[i*obsPerRow+j]}, Value: 0.5}
		}
		if _, err := f.FoldIn(0, obs); err != nil {
			b.Fatal(err)
		}
	}
}
