package core

import (
	"math"
	"time"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// IterStats records one ALS iteration of Algorithm 2 for analysis and for
// regenerating Figures 9(a)/9(b).
type IterStats struct {
	// Iter is the 1-based iteration number.
	Iter int
	// Error is the reconstruction error (Eq. 5) measured after the factor
	// updates of this iteration.
	Error float64
	// Elapsed is the wall-clock duration of the iteration (factor updates +
	// error computation + truncation, i.e. lines 3-6 of Algorithm 2).
	Elapsed time.Duration
	// CoreNNZ is |G| at the moment Error was measured: after this
	// iteration's factor updates and before its truncation. Error and
	// CoreNNZ therefore always describe the same model state; under
	// P-Tucker-Approx, iteration i reports the core left by iteration
	// i-1's truncation, so the series still traces the shrinkage.
	CoreNNZ int
}

// Model is the result of a Tucker factorization: factor matrices A(n)
// (orthonormal columns after finalization), the core tensor G, and the run's
// measurements.
type Model struct {
	// Factors holds A(1)..A(N), each In x Jn.
	Factors []*mat.Dense
	// Core is the Tucker core G.
	Core *CoreTensor
	// Config echoes the configuration that produced the model.
	Config Config
	// Trace holds per-iteration statistics in order.
	Trace []IterStats
	// Converged reports whether the relative-error stopping rule fired
	// before MaxIters.
	Converged bool
	// TrainError is the final reconstruction error (Eq. 5) on the training
	// entries.
	TrainError float64
	// IntermediateBytes is the analytic intermediate-data requirement of the
	// run in bytes (Definition 7): per-thread workspaces O(T·J²) for
	// P-Tucker, plus the cache table O(|Ω|·|G|) for P-Tucker-Cache. It is the
	// quantity Table III and Figures 8(b)/10(b) report.
	IntermediateBytes int64
	// WorkPerThread is the number of factor rows processed by each worker
	// across all N modes of the final iteration (its entries sum to Σ_n I_n),
	// for workload-balance reporting (Figure 10 / Section IV-D).
	WorkPerThread []int64
	// FinalCoreNNZ is |G| when iteration ended — after the last iteration's
	// truncation, before the QR finalization and any Sparsify pruning. For
	// P-Tucker-Approx it is the shrunken core size Figure 9 reports, and the
	// sparse finalize rotation preserves it: Core.NNZ() on a served Approx
	// model is at most FinalCoreNNZ (Sparsify may prune further; Trace
	// entries record only pre-truncation sizes).
	FinalCoreNNZ int
}

// Order returns the tensor order N.
func (m *Model) Order() int { return len(m.Factors) }

// Predict reconstructs the value at multi-index idx by Eq. (4):
// Σ_β Gβ ∏_n A(n)[in][jn]. This is how missing entries are estimated —
// never as zeros.
func (m *Model) Predict(idx []int) float64 {
	n := len(m.Factors)
	rows := make([][]float64, n)
	for k := 0; k < n; k++ {
		rows[k] = m.Factors[k].Row(idx[k])
	}
	return predictWithRows(m.Core, rows)
}

// predictWithRows evaluates Eq. (4) given pre-fetched factor rows for each
// mode; it is the shared inner kernel of prediction, error measurement and
// truncation scoring. A finalized core takes the grouped path; an
// unfinalized one (mid-fit, or loaded from a pre-v3 model file) keeps the
// flat scan, bit-identical to the historical kernel.
func predictWithRows(g *CoreTensor, rows [][]float64) float64 {
	if g.groupOff != nil {
		return predictGrouped(g, rows)
	}
	n := len(rows)
	var sum float64
	gi := g.idx
	for e, gv := range g.val {
		prod := gv
		base := e * n
		for k := 0; k < n; k++ {
			prod *= rows[k][gi[base+k]]
		}
		sum += prod
	}
	return sum
}

// predictGrouped is predictWithRows over the finalized mode-sorted layout:
// entries are iterated group-by-group over the last-mode coordinate, the
// last-mode factor value is hoisted out of the inner product (one multiply
// per group instead of per entry), and groups whose hoisted factor value is
// zero are skipped entirely. The per-group partial sums reassociate the
// float64 addition relative to the flat scan — same mathematical value,
// possibly different final ulps — but the association is a pure function of
// the layout, so a sparse core and a densified clone of it (both finalized)
// answer bit-identically.
func predictGrouped(g *CoreTensor, rows [][]float64) float64 {
	n := len(rows)
	last := n - 1
	rlast := rows[last]
	off := g.groupOff
	gi, gv := g.idx, g.val
	var sum float64
	for j := 0; j+1 < len(off); j++ {
		s, e := off[j], off[j+1]
		if s == e {
			continue
		}
		rj := rlast[j]
		if rj == 0 {
			continue
		}
		var gs float64
		for t := s; t < e; t++ {
			p := gv[t]
			base := t * n
			for k := 0; k < last; k++ {
				p *= rows[k][gi[base+k]]
			}
			gs += p
		}
		sum += gs * rj
	}
	return sum
}

// ReconstructionError computes Eq. (5) over the observed entries of x, in
// parallel with per-thread partial sums.
func (m *Model) ReconstructionError(x *tensor.Coord) float64 {
	return reconstructionError(x, m.Factors, m.Core, m.Config.Threads)
}

func reconstructionError(x *tensor.Coord, factors []*mat.Dense, g *CoreTensor, threads int) float64 {
	n := x.Order()
	nnz := x.NNZ()
	if nnz == 0 {
		return 0
	}
	if threads < 1 {
		threads = 1
	}
	rowsBuf := make([][][]float64, threads)
	for t := range rowsBuf {
		rowsBuf[t] = make([][]float64, n)
	}
	ss := parallelSum(threads, nnz, func(tid, e int) float64 {
		rows := rowsBuf[tid]
		idx := x.Index(e)
		for k := 0; k < n; k++ {
			rows[k] = factors[k].Row(idx[k])
		}
		r := x.Value(e) - predictWithRows(g, rows)
		return r * r
	})
	return math.Sqrt(ss)
}

// RMSE returns the root mean square error of predictions over the observed
// entries of test, the metric Figure 11 reports for held-out data.
func (m *Model) RMSE(test *tensor.Coord) float64 {
	nnz := test.NNZ()
	if nnz == 0 {
		return 0
	}
	err := m.ReconstructionError(test)
	return err / math.Sqrt(float64(nnz))
}

// Fit returns 1 - error/||X||, the share of the data's norm explained by the
// model (a common Tucker quality score; 1 is perfect).
func (m *Model) Fit(x *tensor.Coord) float64 {
	nrm := x.Norm()
	if nrm == 0 {
		return 1
	}
	return 1 - m.ReconstructionError(x)/nrm
}

// TimePerIteration returns the mean wall-clock duration per ALS iteration,
// the measurement used throughout Section IV ("we use average elapsed time
// per iteration instead of total running time").
func (m *Model) TimePerIteration() time.Duration {
	if len(m.Trace) == 0 {
		return 0
	}
	var total time.Duration
	for _, it := range m.Trace {
		total += it.Elapsed
	}
	return total / time.Duration(len(m.Trace))
}

// TotalTime returns the summed duration of all iterations.
func (m *Model) TotalTime() time.Duration {
	var total time.Duration
	for _, it := range m.Trace {
		total += it.Elapsed
	}
	return total
}
