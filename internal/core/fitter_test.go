package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// TestFitterFitMatchesDecompose: Fitter.Fit is the same phases as the
// one-shot API — equal seed, bit-identical model, for every variant.
func TestFitterFitMatchesDecompose(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := plantedTensor(rng, []int{14, 12, 9}, []int{3, 3, 2}, 700, 0.05)
	for _, method := range []Method{PTucker, PTuckerCache, PTuckerApprox} {
		cfg := smallConfig([]int{3, 3, 2})
		cfg.Method = method
		if method == PTuckerApprox {
			cfg.TruncationRate = 0.2
		}
		want, err := DecomposeContext(context.Background(), x, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := NewFitter(cfg).Fit(context.Background(), x)
		if err != nil {
			t.Fatal(err)
		}
		if !modelsBitIdentical(want, got) {
			t.Fatalf("%v: Fitter.Fit differs from DecomposeContext", method)
		}
	}
}

// foldInObs builds observations for the next new row of mode 0, rating
// existing coordinates of the other modes.
func foldInObs(x *tensor.Coord, rng *rand.Rand, count int) []Observation {
	newRow := x.Dim(0)
	obs := make([]Observation, count)
	for i := range obs {
		obs[i] = Observation{
			Index: []int{newRow, rng.Intn(x.Dim(1)), rng.Intn(x.Dim(2))},
			Value: rng.Float64(),
		}
	}
	return obs
}

// TestFoldInMatchesColdFitRowUpdate is the acceptance cross-check: the
// folded-in row must be bit-identical to what the canonical cold-fit row
// update (Algorithm 3, updateRow) produces for that row when all other
// factors are held fixed — fold-in is that one solve, nothing more.
func TestFoldInMatchesColdFitRowUpdate(t *testing.T) {
	for _, method := range []Method{PTucker, PTuckerCache} {
		rng := rand.New(rand.NewSource(21))
		x := plantedTensor(rng, []int{15, 12, 8}, []int{3, 3, 2}, 700, 0.05)
		cfg := smallConfig([]int{3, 3, 2})
		cfg.Method = method
		f := NewFitter(cfg)
		if _, err := f.Fit(context.Background(), x); err != nil {
			t.Fatal(err)
		}
		before := f.Snapshot()

		obs := foldInObs(x, rng, 6)
		newRow, err := f.FoldIn(0, obs)
		if err != nil {
			t.Fatal(err)
		}
		if newRow != x.Dim(0) {
			t.Fatalf("new row = %d, want %d", newRow, x.Dim(0))
		}
		got := f.Snapshot().Factors[0].Row(newRow)

		// Reference: grow the tensor and the pre-fold factors by hand, then
		// run the shared cold-fit row update on the new row.
		x2 := x.Clone()
		x2.GrowMode(0, newRow+1)
		for _, o := range obs {
			x2.MustAppend(o.Index, o.Value)
		}
		vcfg, err := cfg.Validate(x2.Dims())
		if err != nil {
			t.Fatal(err)
		}
		factors := make([]*mat.Dense, len(before.Factors))
		for k, a := range before.Factors {
			factors[k] = a.Clone()
		}
		grown := mat.NewDense(newRow+1, factors[0].Cols())
		copy(grown.Data(), factors[0].Data())
		factors[0] = grown
		st := &state{
			x:       x2,
			omega:   tensor.NewModeIndex(x2),
			factors: factors,
			core:    before.Core.Clone(),
			cfg:     vcfg,
		}
		st.updateRow(0, newRow, newWorkspace(x2.Order(), vcfg.Ranks[0]))
		want := grown.Row(newRow)

		for j := range want {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("%v: fold-in row differs from cold-fit row update at %d: %v vs %v", method, j, got[j], want[j])
			}
		}
	}
}

// TestFoldInCopyOnWrite: snapshots taken before a fold-in keep the old
// shape and bits; the fold grows only the fitter's own state.
func TestFoldInCopyOnWrite(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x := plantedTensor(rng, []int{12, 10, 8}, []int{3, 3, 2}, 500, 0.05)
	cfg := smallConfig([]int{3, 3, 2})
	f := NewFitter(cfg)
	if _, err := f.Fit(context.Background(), x); err != nil {
		t.Fatal(err)
	}
	before := f.Snapshot()
	beforeBits := append([]float64(nil), before.Factors[0].Data()...)

	if _, err := f.FoldIn(0, foldInObs(x, rng, 5)); err != nil {
		t.Fatal(err)
	}
	after := f.Snapshot()

	if before.Factors[0].Rows() != 12 {
		t.Fatalf("pre-fold snapshot grew to %d rows", before.Factors[0].Rows())
	}
	for i, v := range before.Factors[0].Data() {
		if math.Float64bits(v) != math.Float64bits(beforeBits[i]) {
			t.Fatalf("pre-fold snapshot mutated at %d", i)
		}
	}
	if after.Factors[0].Rows() != 13 {
		t.Fatalf("post-fold snapshot has %d rows, want 13", after.Factors[0].Rows())
	}
	if got := f.Dims(); got[0] != 13 {
		t.Fatalf("fitter dims = %v, want mode 0 grown to 13", got)
	}
	// The grown model predicts for the new row without panicking.
	p := NewPredictor(after)
	if _, err := p.PredictChecked([]int{12, 0, 0}); err != nil {
		t.Fatalf("prediction on folded row: %v", err)
	}
}

// TestFoldInValidation: malformed fold-ins are rejected before any state
// changes, and operations on an unfitted Fitter say so.
func TestFoldInValidation(t *testing.T) {
	f := NewFitter(smallConfig([]int{3, 3, 2}))
	if _, err := f.FoldIn(0, []Observation{{Index: []int{0, 0, 0}, Value: 1}}); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("FoldIn before Fit: err = %v, want ErrNotFitted", err)
	}
	if err := f.Observe([]Observation{{Index: []int{0, 0, 0}, Value: 1}}); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("Observe before Fit: err = %v, want ErrNotFitted", err)
	}
	if _, err := f.Refit(context.Background(), nil); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("Refit before Fit: err = %v, want ErrNotFitted", err)
	}

	rng := rand.New(rand.NewSource(41))
	x := plantedTensor(rng, []int{10, 8, 6}, []int{2, 2, 2}, 300, 0.05)
	if _, err := f.Fit(context.Background(), x); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mode int
		obs  []Observation
	}{
		{"bad mode", 3, []Observation{{Index: []int{10, 0, 0}}}},
		{"no observations", 0, nil},
		{"not next row", 0, []Observation{{Index: []int{12, 0, 0}}}},
		{"existing row", 0, []Observation{{Index: []int{3, 0, 0}}}},
		{"other coord out of range", 0, []Observation{{Index: []int{10, 8, 0}}}},
		{"wrong order", 0, []Observation{{Index: []int{10, 0}}}},
	}
	for _, tc := range cases {
		if _, err := f.FoldIn(tc.mode, tc.obs); !errors.Is(err, ErrBadObservation) {
			t.Fatalf("%s: err = %v, want ErrBadObservation", tc.name, err)
		}
		if d := f.Dims(); d[0] != 10 || f.NNZ() != 300 {
			t.Fatalf("%s: failed fold-in mutated state: dims %v nnz %d", tc.name, d, f.NNZ())
		}
	}
	if err := f.Observe([]Observation{{Index: []int{0, 0, 0}}, {Index: []int{0, 99, 0}}}); !errors.Is(err, ErrBadObservation) {
		t.Fatalf("Observe out of range: err = %v", err)
	}
	if f.NNZ() != 300 {
		t.Fatalf("failed Observe appended anyway: nnz %d", f.NNZ())
	}
}

// TestRefitWarmStartConvergesFaster: after fitting 90% of the data, a
// warm-started Refit over the union reaches the cold full-data fit's final
// error in a small fraction of the cold fit's iterations — the point of
// reusing the factors instead of re-randomizing.
func TestRefitWarmStartConvergesFaster(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	full := plantedTensor(rng, []int{20, 16, 10}, []int{3, 3, 2}, 2500, 0.01)
	cfg := Defaults([]int{3, 3, 2})
	cfg.Seed = 5
	cfg.Threads = 2
	cfg.MaxIters = 30
	cfg.Tol = 0 // fixed budget; the comparison is iterations-to-error

	cold, err := DecomposeContext(context.Background(), full, cfg)
	if err != nil {
		t.Fatal(err)
	}
	coldIters := len(cold.Trace)

	// First 90% of entries as the initial fit, the rest as the delta.
	nTrain := full.NNZ() * 9 / 10
	train := tensor.NewCoord(full.Dims())
	var delta []Observation
	for e := 0; e < full.NNZ(); e++ {
		idx := append([]int(nil), full.Index(e)...)
		if e < nTrain {
			train.MustAppend(idx, full.Value(e))
		} else {
			delta = append(delta, Observation{Index: idx, Value: full.Value(e)})
		}
	}

	f := NewFitter(cfg)
	if _, err := f.Fit(context.Background(), train); err != nil {
		t.Fatal(err)
	}
	warm, err := f.Refit(context.Background(), delta)
	if err != nil {
		t.Fatal(err)
	}

	// Iterations the warm refit needed to match what the cold fit achieved
	// with its whole budget.
	reached := -1
	for _, it := range warm.Trace {
		if it.Error <= cold.TrainError {
			reached = it.Iter
			break
		}
	}
	if reached < 0 {
		t.Fatalf("warm refit never reached the cold fit's error %.6f (best %.6f)",
			cold.TrainError, warm.TrainError)
	}
	if reached*4 > coldIters {
		t.Fatalf("warm refit needed %d iterations to reach the cold fit's %d-iteration error — expected a fraction", reached, coldIters)
	}
	if f.NNZ() != full.NNZ() {
		t.Fatalf("fitter accumulated %d observations, want %d", f.NNZ(), full.NNZ())
	}
}

// TestResumeFitterDeterminism is the online-learning reproducibility
// regression: equal resumed models plus an equal operation sequence yield
// bit-identical snapshots.
func TestResumeFitterDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	x := plantedTensor(rng, []int{14, 12, 8}, []int{3, 3, 2}, 700, 0.05)
	cfg := smallConfig([]int{3, 3, 2})
	base, err := DecomposeContext(context.Background(), x, cfg)
	if err != nil {
		t.Fatal(err)
	}

	obsRng := rand.New(rand.NewSource(62))
	fold := foldInObs(x, obsRng, 5)
	var delta []Observation
	for i := 0; i < 40; i++ {
		delta = append(delta, Observation{
			Index: []int{obsRng.Intn(14), obsRng.Intn(12), obsRng.Intn(8)},
			Value: obsRng.Float64(),
		})
	}

	run := func() *Model {
		f, err := ResumeFitter(base, base.Config)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.FoldIn(0, fold); err != nil {
			t.Fatal(err)
		}
		m, err := f.Refit(context.Background(), delta)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if !modelsBitIdentical(a, b) {
		t.Fatal("equal resumed models + equal operation sequence produced different snapshots")
	}
}

// TestResumeFitterKeepsUntouchedPredictions: a delta-only refit must not
// wreck the parts of the model the delta never touched — rows with no new
// observations keep their values through the sweep (keepEmptyRows), and the
// final QR rotation is prediction-preserving, so cells whose every
// coordinate is untouched predict as before (up to rotation rounding).
func TestResumeFitterKeepsUntouchedPredictions(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	x := plantedTensor(rng, []int{16, 12, 8}, []int{3, 3, 2}, 800, 0.05)
	cfg := smallConfig([]int{3, 3, 2})
	base, err := DecomposeContext(context.Background(), x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := ResumeFitter(base, base.Config)
	if err != nil {
		t.Fatal(err)
	}

	// Delta touches only user 0, item 0, context 0.
	delta := []Observation{
		{Index: []int{0, 0, 0}, Value: 0.5},
		{Index: []int{0, 0, 0}, Value: 0.6},
	}
	after, err := f.Refit(context.Background(), delta)
	if err != nil {
		t.Fatal(err)
	}

	// A cell far away from the delta in every mode.
	cell := []int{9, 7, 5}
	want := base.Predict(cell)
	got := after.Predict(cell)
	if math.Abs(want-got) > 1e-8*math.Max(1, math.Abs(want)) {
		t.Fatalf("untouched cell %v changed: %v -> %v", cell, want, got)
	}
}

// TestResumeFitterValidation: shape mismatches are rejected.
func TestResumeFitterValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	x := plantedTensor(rng, []int{10, 8, 6}, []int{2, 2, 2}, 300, 0.05)
	base, err := DecomposeContext(context.Background(), x, smallConfig([]int{2, 2, 2}))
	if err != nil {
		t.Fatal(err)
	}
	cfg := base.Config
	cfg.Ranks = []int{3, 2, 2}
	if _, err := ResumeFitter(base, cfg); !errors.Is(err, ErrResumeMismatch) {
		t.Fatalf("rank mismatch: err = %v, want ErrResumeMismatch", err)
	}
	// Nil ranks adopt the model's.
	cfg = base.Config
	cfg.Ranks = nil
	f, err := ResumeFitter(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !modelsBitIdentical(base, f.Snapshot()) {
		t.Fatal("ResumeFitter snapshot differs from the resumed model")
	}
}

// memStore is an in-memory TrainingStore for AttachStore tests.
type memStore struct {
	x   *tensor.Coord
	err error
}

func (m *memStore) TrainingTensor() (*tensor.Coord, error) { return m.x, m.err }

// TestAttachTrainingSet: a fitter resumed from a persisted model and handed
// the persisted training set refits over the true union, bit-identically to
// a fitter that never went away — regardless of whether the sidecar is
// attached before or after the new observations arrive (merge order is
// persisted-first either way).
func TestAttachTrainingSet(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	x := plantedTensor(rng, []int{14, 12, 8}, []int{3, 3, 2}, 700, 0.05)
	cfg := smallConfig([]int{3, 3, 2})

	obsRng := rand.New(rand.NewSource(72))
	var delta []Observation
	for i := 0; i < 30; i++ {
		delta = append(delta, Observation{
			Index: []int{obsRng.Intn(14), obsRng.Intn(12), obsRng.Intn(8)},
			Value: obsRng.Float64(),
		})
	}

	// Reference: one process, never interrupted.
	ref := NewFitter(cfg)
	base, err := ref.Fit(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Refit(context.Background(), delta)
	if err != nil {
		t.Fatal(err)
	}

	for _, attachFirst := range []bool{true, false} {
		f, err := ResumeFitter(base, base.Config)
		if err != nil {
			t.Fatal(err)
		}
		if attachFirst {
			if err := f.AttachStore(&memStore{x: x}); err != nil {
				t.Fatal(err)
			}
			if err := f.Observe(delta); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := f.Observe(delta); err != nil {
				t.Fatal(err)
			}
			if err := f.AttachTrainingSet(x); err != nil {
				t.Fatal(err)
			}
		}
		if f.NNZ() != x.NNZ()+len(delta) {
			t.Fatalf("attachFirst=%v: union has %d entries, want %d", attachFirst, f.NNZ(), x.NNZ()+len(delta))
		}
		got, err := f.Refit(context.Background(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !modelsBitIdentical(want, got) {
			t.Fatalf("attachFirst=%v: resumed true-union refit differs from in-process refit", attachFirst)
		}
	}
}

// TestAttachTrainingSetValidation covers the attach error paths.
func TestAttachTrainingSetValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	x := plantedTensor(rng, []int{10, 8, 6}, []int{2, 2, 2}, 300, 0.05)
	cfg := smallConfig([]int{2, 2, 2})
	f := NewFitter(cfg)

	// Before any fit there is nothing to attach to.
	if err := f.AttachTrainingSet(x); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("attach before fit: %v", err)
	}
	if _, err := f.Fit(context.Background(), x); err != nil {
		t.Fatal(err)
	}

	// Wrong order and oversized modes are rejected, leaving the set intact.
	if err := f.AttachTrainingSet(tensor.NewCoord([]int{10, 8})); !errors.Is(err, ErrBadObservation) {
		t.Fatalf("wrong order: %v", err)
	}
	big := tensor.NewCoord([]int{11, 8, 6})
	big.MustAppend([]int{10, 0, 0}, 1)
	if err := f.AttachTrainingSet(big); !errors.Is(err, ErrBadObservation) {
		t.Fatalf("oversized mode: %v", err)
	}
	if f.NNZ() != x.NNZ() {
		t.Fatalf("failed attach changed the training set: %d vs %d", f.NNZ(), x.NNZ())
	}

	// A store load failure propagates; an empty store is a no-op.
	wantErr := errors.New("disk on fire")
	if err := f.AttachStore(&memStore{err: wantErr}); !errors.Is(err, wantErr) {
		t.Fatalf("store error: %v", err)
	}
	if err := f.AttachStore(&memStore{}); err != nil {
		t.Fatal(err)
	}
	if f.NNZ() != x.NNZ() {
		t.Fatalf("empty store attach changed the training set: %d", f.NNZ())
	}

	// A smaller-dimensioned sidecar is grown to the model's shape.
	small := tensor.NewCoord([]int{5, 4, 3})
	small.MustAppend([]int{4, 3, 2}, 0.5)
	if err := f.AttachTrainingSet(small); err != nil {
		t.Fatal(err)
	}
	if f.NNZ() != x.NNZ()+1 {
		t.Fatalf("after attach: %d entries, want %d", f.NNZ(), x.NNZ()+1)
	}
	dims := f.Dims()
	if dims[0] != 10 || dims[1] != 8 || dims[2] != 6 {
		t.Fatalf("dims changed: %v", dims)
	}

	// TrainingSet returns a copy: mutating it must not touch the fitter.
	ts := f.TrainingSet()
	ts.SetValue(0, 999)
	if f.TrainingSet().Value(0) == 999 {
		t.Fatal("TrainingSet aliases the fitter's live tensor")
	}
}
