package core

import (
	"bytes"
	"math/rand"
	"testing"
)

// fuzzSeedModels builds the corpus models in-process (no checked-in binary
// corpus to rot): a dense plain fit, a sparse finalized Approx+Sparsify fit,
// and the v2 fixture's layout via the re-encode of a loaded model.
func fuzzSeedModels(f *testing.F) [][]byte {
	f.Helper()
	var seeds [][]byte
	add := func(m *Model, err error) {
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, buf.Bytes())
	}

	rng := rand.New(rand.NewSource(3))
	x := plantedTensor(rng, []int{8, 7, 6}, []int{2, 2, 2}, 300, 0.05)
	cfg := smallConfig([]int{2, 2, 2})
	cfg.MaxIters = 2
	add(Decompose(x, cfg))

	sparse := cfg
	sparse.Method = PTuckerApprox
	sparse.TruncationRate = 0.25
	sparse.Sparsify = 0.4
	add(Decompose(x, sparse))
	return seeds
}

// FuzzReadModel decodes arbitrary bytes as a model stream. Accepted inputs
// must re-encode deterministically (decode∘encode is a fixed point after one
// round trip) and rejected inputs must fail with an error — never a panic,
// never an unbounded allocation from a hostile length prefix (the chunked
// readers grow slices only as bytes actually arrive).
func FuzzReadModel(f *testing.F) {
	seeds := fuzzSeedModels(f)
	for _, s := range seeds {
		f.Add(s)
	}
	// Corrupt variants: truncated, version-bumped, flag-tampered, and a
	// hostile core-nnz claim, so the fuzzer starts at the interesting edges.
	if len(seeds) > 0 {
		s := seeds[0]
		f.Add(s[:len(s)/2])
		bumped := append([]byte(nil), s...)
		bumped[4] = 0xEE
		f.Add(bumped)
	}
	if len(seeds) > 1 {
		tampered := append([]byte(nil), seeds[1]...)
		tampered[len(tampered)/3] ^= 0x10
		f.Add(tampered)
	}
	f.Add([]byte("PTKM"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m1, err := ReadModel(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine
		}
		var b1 bytes.Buffer
		if _, err := m1.WriteTo(&b1); err != nil {
			t.Fatalf("re-encoding a decoded model failed: %v", err)
		}
		m2, err := ReadModel(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding the canonical encoding failed: %v", err)
		}
		var b2 bytes.Buffer
		if _, err := m2.WriteTo(&b2); err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("round trip is not a fixed point: %d bytes vs %d bytes", b1.Len(), b2.Len())
		}
	})
}
