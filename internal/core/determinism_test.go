package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// modelsBitIdentical reports whether two models have bit-for-bit equal
// factors and cores (the numeric content the reproducibility guarantee
// covers; Trace wall-clock times legitimately differ between runs).
func modelsBitIdentical(a, b *Model) bool {
	if len(a.Factors) != len(b.Factors) {
		return false
	}
	for k := range a.Factors {
		da, db := a.Factors[k].Data(), b.Factors[k].Data()
		if len(da) != len(db) {
			return false
		}
		for i := range da {
			if math.Float64bits(da[i]) != math.Float64bits(db[i]) {
				return false
			}
		}
	}
	if a.Core.NNZ() != b.Core.NNZ() {
		return false
	}
	for e := 0; e < a.Core.NNZ(); e++ {
		ia, ib := a.Core.Index(e), b.Core.Index(e)
		for k := range ia {
			if ia[k] != ib[k] {
				return false
			}
		}
		if math.Float64bits(a.Core.Value(e)) != math.Float64bits(b.Core.Value(e)) {
			return false
		}
	}
	return true
}

// Regression for the truncation-determinism fix: with equal seeds, two
// P-Tucker-Approx runs must produce bit-identical models even when R(β)
// ties leave the ranking underdetermined — the tie-break by entry index
// removes the sort's freedom to pick which tied entries die.
func TestApproxEqualSeedsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x := plantedTensor(rng, []int{12, 10, 8}, []int{3, 3, 3}, 600, 0.05)
	cfg := smallConfig([]int{3, 3, 3})
	cfg.Method = PTuckerApprox
	cfg.TruncationRate = 0.2
	cfg.Threads = 4

	m1, err := Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !modelsBitIdentical(m1, m2) {
		t.Fatal("equal seeds produced different P-Tucker-Approx models")
	}
	for i := range m1.Trace {
		if m1.Trace[i].CoreNNZ != m2.Trace[i].CoreNNZ {
			t.Fatalf("iteration %d truncated differently: |G| %d vs %d",
				i+1, m1.Trace[i].CoreNNZ, m2.Trace[i].CoreNNZ)
		}
	}
}

// Unit-level determinism of truncateCore under exact R(β) ties: every core
// value equal and a single observed entry makes all partial errors
// identical, so only the index tie-break decides the dropped set — it must
// be the lowest-indexed entries, every time.
func TestTruncateCoreTieBreakByIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := uniformTensor(rng, []int{4, 4}, 1)

	build := func() *state {
		g := NewRandomCore([]int{2, 2}, rand.New(rand.NewSource(2)))
		for e := 0; e < g.NNZ(); e++ {
			g.SetValue(e, 0) // Gβ = 0 ⇒ pβ(α) = 0 ⇒ R(β) = 0 for all β: total tie
		}
		frng := rand.New(rand.NewSource(3))
		factors := make([]*mat.Dense, 2)
		for k := 0; k < 2; k++ {
			a := mat.NewDense(4, 2)
			for i := range a.Data() {
				a.Data()[i] = frng.Float64()
			}
			factors[k] = a
		}
		st := NewStateForAnalysis(x, factors, g, 2)
		st.cfg.TruncationRate = 0.5
		return st
	}

	st1 := build()
	st1.truncateCore()
	st2 := build()
	st2.truncateCore()

	if st1.core.NNZ() != 2 || st2.core.NNZ() != 2 {
		t.Fatalf("truncation kept %d and %d entries, want 2", st1.core.NNZ(), st2.core.NNZ())
	}
	// With all R(β) tied, the ascending-index tie-break drops entries 0..k-1,
	// so the survivors are the highest-indexed entries of the enumeration.
	for e := 0; e < st1.core.NNZ(); e++ {
		i1, i2 := st1.core.Index(e), st2.core.Index(e)
		for k := range i1 {
			if i1[k] != i2[k] {
				t.Fatalf("tied truncation diverged at survivor %d: %v vs %v", e, i1, i2)
			}
		}
	}
	// Entries enumerate little-endian: (0,0) (1,0) (0,1) (1,1); dropping the
	// two lowest-indexed leaves (0,1) and (1,1).
	want := [][]int{{0, 1}, {1, 1}}
	for e, w := range want {
		got := st1.core.Index(e)
		for k := range w {
			if got[k] != w[k] {
				t.Fatalf("survivor %d = %v, want %v", e, got, w)
			}
		}
	}
}

// Regression for the work-accumulation fix: WorkPerThread must cover every
// mode of the final iteration, so its entries sum to Σ_n I_n (each row of
// each factor is updated exactly once per iteration) and its length is the
// configured thread count.
func TestWorkPerThreadSumsAcrossModes(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	dims := []int{15, 11, 7}
	x := plantedTensor(rng, dims, []int{3, 3, 3}, 700, 0.05)
	cfg := smallConfig([]int{3, 3, 3})
	cfg.Threads = 3

	m, err := Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.WorkPerThread) != cfg.Threads {
		t.Fatalf("WorkPerThread has %d slots, want %d", len(m.WorkPerThread), cfg.Threads)
	}
	var sum, wantSum int64
	for _, w := range m.WorkPerThread {
		sum += w
	}
	for _, d := range dims {
		wantSum += int64(d)
	}
	if sum != wantSum {
		t.Fatalf("WorkPerThread sums to %d rows, want Σ I_n = %d (all modes, not just the last)",
			sum, wantSum)
	}
}
