package core

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// bruteTopK ranks every candidate of freeMode by Predictor.Predict and
// returns the top k under the recommender's documented order (score
// descending, index ascending).
func bruteTopK(p *Predictor, query []int, freeMode, k int) []Rec {
	dims := p.Dims()
	recs := make([]Rec, dims[freeMode])
	idx := append([]int(nil), query...)
	for i := range recs {
		idx[freeMode] = i
		recs[i] = Rec{Index: i, Score: p.Predict(idx)}
	}
	sort.Slice(recs, func(a, b int) bool { return better(recs[a], recs[b]) })
	if k > len(recs) {
		k = len(recs)
	}
	return recs[:k]
}

func TestRecommenderMatchesBruteForce(t *testing.T) {
	_, p, _ := predictorFixture(t)
	rec := p.Recommender()
	rng := rand.New(rand.NewSource(99))
	dims := p.Dims()

	for trial := 0; trial < 20; trial++ {
		freeMode := trial % len(dims)
		query := make([]int, len(dims))
		for m, d := range dims {
			query[m] = rng.Intn(d)
		}
		query[freeMode] = -7 // must be ignored
		k := 1 + rng.Intn(dims[freeMode])

		got, err := rec.TopK(query, freeMode, k)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteTopK(p, query, freeMode, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d recs want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].Index != want[i].Index {
				t.Fatalf("trial %d rank %d: index %d want %d (scores %v vs %v)",
					trial, i, got[i].Index, want[i].Index, got[i].Score, want[i].Score)
			}
			// The contraction reassociates the sum, so allow ulp-level
			// divergence from Predict while requiring identical ranking.
			if d := math.Abs(got[i].Score - want[i].Score); d > 1e-9*(1+math.Abs(want[i].Score)) {
				t.Fatalf("trial %d rank %d: score %v too far from Predict %v",
					trial, i, got[i].Score, want[i].Score)
			}
		}
	}
}

func TestRecommenderKClampAndFullRanking(t *testing.T) {
	_, p, _ := predictorFixture(t)
	rec := p.Recommender()
	dims := p.Dims()
	query := []int{0, 3, 0}
	got, err := rec.TopK(query, 0, dims[0]+100) // k beyond the mode clamps
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != dims[0] {
		t.Fatalf("clamped k returned %d recs want %d", len(got), dims[0])
	}
	for i := 1; i < len(got); i++ {
		if better(got[i], got[i-1]) {
			t.Fatalf("ranking not ordered at %d: %v before %v", i, got[i-1], got[i])
		}
	}
}

func TestRecommenderRejectsBadQueries(t *testing.T) {
	_, p, _ := predictorFixture(t)
	rec := p.Recommender()
	cases := []struct {
		name     string
		query    []int
		freeMode int
		k        int
		want     error
	}{
		{"bad free mode", []int{0, 0, 0}, 3, 5, ErrBadQuery},
		{"negative free mode", []int{0, 0, 0}, -1, 5, ErrBadQuery},
		{"wrong order", []int{0, 0}, 0, 5, ErrBadQuery},
		{"fixed index out of range", []int{0, 999, 0}, 0, 5, ErrBadIndex},
		{"negative fixed index", []int{0, -1, 0}, 0, 5, ErrBadIndex},
		{"non-positive k", []int{0, 0, 0}, 0, 0, ErrBadQuery},
	}
	for _, tc := range cases {
		if _, err := rec.TopK(tc.query, tc.freeMode, tc.k); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// A heap-based selection must handle score ties deterministically: build a
// model whose free-mode factor has duplicated rows so tied scores are
// guaranteed, and require the tie to go to the lower index.
func TestRecommenderTieBreaksByIndex(t *testing.T) {
	src, pr := tieFixture(t)
	rec := pr.Recommender()
	got, err := rec.TopK([]int{0, 1, 2}, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a.Score == b.Score && a.Index > b.Index {
			t.Fatalf("tie at score %v ordered %d before %d", a.Score, a.Index, b.Index)
		}
	}
	// With every row duplicated, each consecutive pair shares a score.
	if got[0].Score != got[1].Score {
		t.Fatalf("expected duplicated top rows to tie: %v vs %v", got[0].Score, got[1].Score)
	}
	if got[0].Index > got[1].Index {
		t.Fatalf("tied pair ordered %d before %d", got[0].Index, got[1].Index)
	}
}

// tieFixture fits a tiny model, then overwrites mode-0 factor rows so row
// 2i+1 equals row 2i, guaranteeing exact score ties for every pair. It
// returns the mode-0 dimensionality and a predictor over the doctored model.
func tieFixture(t *testing.T) (int, *Predictor) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	dims := []int{10, 6, 5}
	x := plantedTensor(rng, dims, []int{2, 2, 2}, 200, 0.05)
	m, err := Decompose(x, smallConfig([]int{2, 2, 2}))
	if err != nil {
		t.Fatal(err)
	}
	a := m.Factors[0]
	for i := 0; i+1 < a.Rows(); i += 2 {
		copy(a.Row(i+1), a.Row(i))
	}
	return dims[0], NewPredictor(m)
}

// TestTopKExcluding: the exclusion set removes exactly the named candidates
// and the rest keep the TopK order; out-of-range and duplicate exclusions
// are ignored; excluding everything yields an empty ranking.
func TestTopKExcluding(t *testing.T) {
	_, p, _ := predictorFixture(t)
	rec := p.Recommender()
	dims := p.Dims()
	freeMode := 1
	query := make([]int, len(dims))

	full, err := rec.TopK(query, freeMode, dims[freeMode])
	if err != nil {
		t.Fatal(err)
	}

	exclude := []int{full[0].Index, full[2].Index, full[0].Index, -5, dims[freeMode] + 9}
	got, err := rec.TopKExcluding(query, freeMode, dims[freeMode], exclude)
	if err != nil {
		t.Fatal(err)
	}
	var want []Rec
	for _, r := range full {
		if r.Index != full[0].Index && r.Index != full[2].Index {
			want = append(want, r)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %d recs, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Index != want[i].Index || got[i].Score != want[i].Score {
			t.Fatalf("rank %d: got %+v want %+v", i, got[i], want[i])
		}
	}

	// k larger than the remaining candidates clamps.
	got, err = rec.TopKExcluding(query, freeMode, dims[freeMode], []int{full[0].Index})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != dims[freeMode]-1 {
		t.Fatalf("clamp: got %d recs, want %d", len(got), dims[freeMode]-1)
	}

	// Excluding every candidate leaves nothing to recommend.
	all := make([]int, dims[freeMode])
	for i := range all {
		all[i] = i
	}
	got, err = rec.TopKExcluding(query, freeMode, 3, all)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("all-excluded: got %d recs, want 0", len(got))
	}

	// TopK is TopKExcluding with a nil set.
	a, err := rec.TopK(query, freeMode, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rec.TopKExcluding(query, freeMode, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nil exclusion diverges at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
