package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// plantedTensor samples nnz observed entries from a random Tucker model with
// the given dims and ranks plus Gaussian noise, so a factorization with the
// same ranks can in principle fit it almost exactly.
func plantedTensor(rng *rand.Rand, dims, ranks []int, nnz int, noise float64) *tensor.Coord {
	n := len(dims)
	factors := make([]*mat.Dense, n)
	for k := 0; k < n; k++ {
		a := mat.NewDense(dims[k], ranks[k])
		for i := range a.Data() {
			a.Data()[i] = rng.Float64()
		}
		factors[k] = a
	}
	g := NewRandomCore(ranks, rng)
	t := tensor.NewCoord(dims)
	idx := make([]int, n)
	rows := make([][]float64, n)
	seen := make(map[int]bool)
	for t.NNZ() < nnz {
		flat := 0
		stride := 1
		for k, d := range dims {
			idx[k] = rng.Intn(d)
			flat += idx[k] * stride
			stride *= d
		}
		if seen[flat] {
			continue
		}
		seen[flat] = true
		for k := 0; k < n; k++ {
			rows[k] = factors[k].Row(idx[k])
		}
		v := predictWithRows(g, rows) + noise*rng.NormFloat64()
		t.MustAppend(idx, v)
	}
	return t
}

// uniformTensor samples nnz entries with uniform values in [0,1).
func uniformTensor(rng *rand.Rand, dims []int, nnz int) *tensor.Coord {
	t := tensor.NewCoord(dims)
	idx := make([]int, len(dims))
	seen := make(map[int]bool)
	for t.NNZ() < nnz {
		flat := 0
		stride := 1
		for k, d := range dims {
			idx[k] = rng.Intn(d)
			flat += idx[k] * stride
			stride *= d
		}
		if seen[flat] {
			continue
		}
		seen[flat] = true
		t.MustAppend(idx, rng.Float64())
	}
	return t
}

func smallConfig(ranks []int) Config {
	cfg := Defaults(ranks)
	cfg.MaxIters = 5
	cfg.Tol = 0 // run the full iteration budget for deterministic traces
	cfg.Threads = 2
	cfg.Seed = 42
	return cfg
}

func TestConfigValidate(t *testing.T) {
	dims := []int{10, 10, 10}
	cases := []struct {
		name string
		mut  func(*Config)
		want error
	}{
		{"no ranks", func(c *Config) { c.Ranks = nil }, ErrNoRanks},
		{"order mismatch", func(c *Config) { c.Ranks = []int{2, 2} }, ErrOrderMismatch},
		{"zero rank", func(c *Config) { c.Ranks[1] = 0 }, ErrBadRank},
		{"rank over dim", func(c *Config) { c.Ranks[0] = 11 }, ErrRankExceedsDim},
		{"negative lambda", func(c *Config) { c.Lambda = -1 }, ErrBadLambda},
		{"zero iters", func(c *Config) { c.MaxIters = 0 }, ErrBadIters},
		{"bad truncation", func(c *Config) { c.Method = PTuckerApprox; c.TruncationRate = 0 }, ErrBadTruncation},
		{"truncation one", func(c *Config) { c.Method = PTuckerApprox; c.TruncationRate = 1 }, ErrBadTruncation},
	}
	for _, tc := range cases {
		cfg := Defaults([]int{2, 2, 2})
		tc.mut(&cfg)
		_, err := cfg.Validate(dims)
		if err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
		if !errorIs(err, tc.want) {
			t.Fatalf("%s: err = %v want %v", tc.name, err, tc.want)
		}
	}
	// A valid config comes back with Threads and ChunkSize normalized.
	cfg := Defaults([]int{2, 2, 2})
	norm, err := cfg.Validate(dims)
	if err != nil {
		t.Fatal(err)
	}
	if norm.Threads < 1 || norm.ChunkSize < 1 {
		t.Fatalf("defaults not normalized: T=%d chunk=%d", norm.Threads, norm.ChunkSize)
	}
}

// Validate must be pure: the caller's Config — including its Ranks slice —
// is never rewritten, whatever zero-valued knobs need normalizing.
func TestConfigValidatePure(t *testing.T) {
	cfg := Config{
		Ranks:    []int{3, 2, 4},
		Lambda:   0.5,
		MaxIters: 7,
		// Threads and ChunkSize deliberately zero: the old API normalized
		// them in place on the caller's struct.
	}
	ranksBefore := append([]int(nil), cfg.Ranks...)

	norm, err := cfg.Validate([]int{10, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Threads != 0 || cfg.ChunkSize != 0 {
		t.Fatalf("Validate mutated the caller's config: T=%d chunk=%d", cfg.Threads, cfg.ChunkSize)
	}
	if norm.Threads < 1 || norm.ChunkSize < 1 {
		t.Fatalf("normalized copy missing defaults: T=%d chunk=%d", norm.Threads, norm.ChunkSize)
	}
	// The normalized copy must not alias the caller's Ranks storage.
	norm.Ranks[0] = 99
	for i, r := range cfg.Ranks {
		if r != ranksBefore[i] {
			t.Fatalf("normalized copy aliases caller's Ranks: %v", cfg.Ranks)
		}
	}
	if norm.Lambda != cfg.Lambda || norm.MaxIters != cfg.MaxIters {
		t.Fatalf("normalization changed explicit fields: %+v vs %+v", norm, cfg)
	}
}

func errorIs(err, target error) bool {
	for e := err; e != nil; {
		if e == target {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

func TestMethodStrings(t *testing.T) {
	if PTucker.String() != "P-Tucker" || PTuckerCache.String() != "P-Tucker-Cache" ||
		PTuckerApprox.String() != "P-Tucker-Approx" {
		t.Fatal("method names changed")
	}
	if Method(99).String() == "" {
		t.Fatal("unknown method must still render")
	}
	if ScheduleDynamic.String() != "dynamic" || ScheduleStatic.String() != "static" {
		t.Fatal("scheduling names changed")
	}
}

func TestDecomposeEmptyTensor(t *testing.T) {
	x := tensor.NewCoord([]int{4, 4})
	if _, err := Decompose(x, Defaults([]int{2, 2})); err != ErrEmptyTensor {
		t.Fatalf("err = %v want ErrEmptyTensor", err)
	}
}

func TestDecomposeMonotoneError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := plantedTensor(rng, []int{12, 10, 8}, []int{3, 3, 3}, 300, 0.01)
	cfg := smallConfig([]int{3, 3, 3})
	cfg.MaxIters = 8
	m, err := Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Trace) != 8 {
		t.Fatalf("trace length %d want 8", len(m.Trace))
	}
	// Theorem 2: the loss decreases monotonically. The reconstruction error
	// (without the regularization term) can fluctuate by tiny amounts; allow
	// a small relative slack.
	for i := 1; i < len(m.Trace); i++ {
		prev, cur := m.Trace[i-1].Error, m.Trace[i].Error
		if cur > prev*(1+1e-6)+1e-9 {
			t.Fatalf("error increased at iteration %d: %v -> %v", i+1, prev, cur)
		}
	}
	// Fit must be substantially better than the initial random state.
	if m.Trace[len(m.Trace)-1].Error > 0.5*m.Trace[0].Error {
		t.Fatalf("error barely improved: %v -> %v", m.Trace[0].Error, m.TrainError)
	}
}

func TestDecomposeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := plantedTensor(rng, []int{8, 8, 8}, []int{2, 2, 2}, 150, 0.05)
	cfg := smallConfig([]int{2, 2, 2})
	m1, err := Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := range m1.Factors {
		if !m1.Factors[k].Equal(m2.Factors[k], 0) {
			t.Fatalf("factor %d differs between identical runs", k)
		}
	}
	if m1.TrainError != m2.TrainError {
		t.Fatal("train error differs between identical runs")
	}
}

func TestDecomposeThreadInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := plantedTensor(rng, []int{10, 9, 8}, []int{2, 3, 2}, 200, 0.02)
	base := smallConfig([]int{2, 3, 2})
	base.Threads = 1
	m1, err := Decompose(x, base)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Threads = 4
	m4, err := Decompose(x, par)
	if err != nil {
		t.Fatal(err)
	}
	// Row updates are independent, and within a row the accumulation order
	// over Ω(n)[in] is fixed, so results are bit-identical across T.
	for k := range m1.Factors {
		if !m1.Factors[k].Equal(m4.Factors[k], 0) {
			t.Fatalf("factor %d differs between T=1 and T=4", k)
		}
	}
}

func TestDecomposeSchedulingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := plantedTensor(rng, []int{10, 10, 10}, []int{2, 2, 2}, 150, 0.02)
	dyn := smallConfig([]int{2, 2, 2})
	dyn.Scheduling = ScheduleDynamic
	sta := smallConfig([]int{2, 2, 2})
	sta.Scheduling = ScheduleStatic
	m1, err := Decompose(x, dyn)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Decompose(x, sta)
	if err != nil {
		t.Fatal(err)
	}
	for k := range m1.Factors {
		if !m1.Factors[k].Equal(m2.Factors[k], 0) {
			t.Fatalf("factor %d differs between scheduling policies", k)
		}
	}
}

func TestFactorsOrthonormalAfterFinalize(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := plantedTensor(rng, []int{15, 12, 9}, []int{3, 2, 2}, 400, 0.05)
	m, err := Decompose(x, smallConfig([]int{3, 2, 2}))
	if err != nil {
		t.Fatal(err)
	}
	for k, a := range m.Factors {
		j := a.Cols()
		if !mat.Gram(a).Equal(mat.Identity(j), 1e-8) {
			t.Fatalf("factor %d columns not orthonormal after QR finalization", k)
		}
	}
}

func TestFinalizePreservesError(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := plantedTensor(rng, []int{10, 10, 10}, []int{2, 2, 2}, 250, 0.05)
	cfg := smallConfig([]int{2, 2, 2})
	m, err := Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// TrainError was measured before QR; ReconstructionError measures after.
	after := m.ReconstructionError(x)
	if math.Abs(after-m.TrainError) > 1e-6*(1+m.TrainError) {
		t.Fatalf("QR finalization changed the error: %v -> %v", m.TrainError, after)
	}
}

func TestCacheVariantMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := plantedTensor(rng, []int{9, 8, 7}, []int{2, 2, 2}, 200, 0.03)
	plain := smallConfig([]int{2, 2, 2})
	cache := smallConfig([]int{2, 2, 2})
	cache.Method = PTuckerCache
	m1, err := Decompose(x, plain)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Decompose(x, cache)
	if err != nil {
		t.Fatal(err)
	}
	// The cached δ path computes the same quantity by division instead of
	// multiplication; trajectories agree to floating-point noise.
	if math.Abs(m1.TrainError-m2.TrainError) > 1e-6*(1+m1.TrainError) {
		t.Fatalf("cache variant error %v differs from plain %v", m2.TrainError, m1.TrainError)
	}
	for k := range m1.Factors {
		if !m1.Factors[k].Equal(m2.Factors[k], 1e-6) {
			t.Fatalf("factor %d differs between plain and cache variants", k)
		}
	}
	if m2.IntermediateBytes <= m1.IntermediateBytes {
		t.Fatalf("cache variant must report more intermediate memory: %d vs %d",
			m2.IntermediateBytes, m1.IntermediateBytes)
	}
}

func TestApproxShrinksCore(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := plantedTensor(rng, []int{10, 10, 10}, []int{3, 3, 3}, 300, 0.05)
	cfg := smallConfig([]int{3, 3, 3})
	cfg.Method = PTuckerApprox
	cfg.TruncationRate = 0.2
	cfg.MaxIters = 4
	m, err := Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// IterStats.CoreNNZ is captured when Error is measured — before the
	// iteration's own truncation — so iteration 1 sees the full core and
	// iteration i sees the core left by iteration i-1's truncation.
	full := 27
	if got := m.Trace[0].CoreNNZ; got != full {
		t.Fatalf("iteration 1 |G| = %d want full core %d", got, full)
	}
	prev := full + 1
	for i, it := range m.Trace {
		if it.CoreNNZ >= prev && prev > 1 {
			t.Fatalf("iteration %d: core did not shrink (%d -> %d)", i+1, prev, it.CoreNNZ)
		}
		prev = it.CoreNNZ
	}
	// p=0.2 truncations: 27 -> 22 -> 18 -> 15 (-> 12 after the final
	// iteration, which the pre-truncation trace does not show).
	if got := m.Trace[len(m.Trace)-1].CoreNNZ; got != 15 {
		t.Fatalf("final traced |G| = %d want 15", got)
	}
	// The fully truncated size survives on the model itself, and the sparse
	// finalize rotation preserves it: the served core is at most that size
	// (sub-tolerance rotation outputs may drop a little further).
	if m.FinalCoreNNZ != 12 {
		t.Fatalf("FinalCoreNNZ = %d want 12", m.FinalCoreNNZ)
	}
	if got := m.Core.NNZ(); got > m.FinalCoreNNZ {
		t.Fatalf("served core has %d entries after finalize, want at most %d", got, m.FinalCoreNNZ)
	}
}

func TestApproxAccuracyCloseToPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := plantedTensor(rng, []int{14, 12, 10}, []int{3, 3, 3}, 500, 0.02)
	plain := smallConfig([]int{3, 3, 3})
	plain.MaxIters = 6
	approx := plain
	approx.Method = PTuckerApprox
	approx.TruncationRate = 0.1
	m1, err := Decompose(x, plain)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Decompose(x, approx)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 9(b): "almost the same accuracy". Allow 2x slack at this scale.
	if m2.TrainError > 2*m1.TrainError+1e-9 {
		t.Fatalf("approx error %v too far above plain %v", m2.TrainError, m1.TrainError)
	}
}

// The defining identity of R(β) (Eq. 13): removing entry β changes the
// squared reconstruction error by exactly -R(β).
func TestPartialErrorIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := plantedTensor(rng, []int{8, 8, 8}, []int{2, 2, 2}, 120, 0.1)
	cfg := smallConfig([]int{2, 2, 2})
	cfg.MaxIters = 2
	m, err := Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStateForAnalysis(x, m.Factors, m.Core, 2)
	r := PartialErrors(st)

	fullErr := m.ReconstructionError(x)
	for e := 0; e < m.Core.NNZ(); e += 3 { // sample a third of the entries
		reduced := m.Core.Clone()
		drop := make([]bool, reduced.NNZ())
		drop[e] = true
		reduced.RemoveEntries(drop)
		redModel := &Model{Factors: m.Factors, Core: reduced, Config: cfg}
		redErr := redModel.ReconstructionError(x)
		gotDelta := fullErr*fullErr - redErr*redErr
		if math.Abs(gotDelta-r[e]) > 1e-6*(1+math.Abs(r[e])) {
			t.Fatalf("entry %d: error²(with) - error²(without) = %v, R(β) = %v", e, gotDelta, r[e])
		}
	}
}

func TestPredictMatchesManualExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := plantedTensor(rng, []int{6, 5, 4}, []int{2, 2, 2}, 60, 0.05)
	m, err := Decompose(x, smallConfig([]int{2, 2, 2}))
	if err != nil {
		t.Fatal(err)
	}
	idx := []int{3, 2, 1}
	var want float64
	for e := 0; e < m.Core.NNZ(); e++ {
		beta := m.Core.Index(e)
		p := m.Core.Value(e)
		for k := 0; k < 3; k++ {
			p *= m.Factors[k].At(idx[k], beta[k])
		}
		want += p
	}
	if got := m.Predict(idx); math.Abs(got-want) > 1e-10 {
		t.Fatalf("Predict = %v want %v", got, want)
	}
}

func TestRMSEMatchesErrorOnTrain(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := plantedTensor(rng, []int{8, 8, 8}, []int{2, 2, 2}, 100, 0.05)
	m, err := Decompose(x, smallConfig([]int{2, 2, 2}))
	if err != nil {
		t.Fatal(err)
	}
	want := m.ReconstructionError(x) / math.Sqrt(float64(x.NNZ()))
	if got := m.RMSE(x); math.Abs(got-want) > 1e-12 {
		t.Fatalf("RMSE = %v want %v", got, want)
	}
	empty := tensor.NewCoord(x.Dims())
	if m.RMSE(empty) != 0 {
		t.Fatal("RMSE of empty set must be 0")
	}
}

func TestUnobservedRowsPredictZero(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// Mode 0 index 9 never appears in the observations.
	x := tensor.NewCoord([]int{10, 6, 6})
	idx := make([]int, 3)
	for x.NNZ() < 120 {
		idx[0] = rng.Intn(9) // 0..8 only
		idx[1] = rng.Intn(6)
		idx[2] = rng.Intn(6)
		x.MustAppend(idx, rng.Float64())
	}
	m, err := Decompose(x, smallConfig([]int{2, 2, 2}))
	if err != nil {
		t.Fatal(err)
	}
	// The row-wise minimizer for an unobserved row is 0; QR keeps zero rows
	// zero (Q = A·R⁻¹), so predictions involving it are 0.
	if got := m.Predict([]int{9, 3, 3}); got != 0 {
		t.Fatalf("prediction for unobserved index = %v want 0", got)
	}
}

func TestUpdateCoreImprovesFit(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	x := plantedTensor(rng, []int{10, 10, 10}, []int{2, 2, 2}, 250, 0.02)
	base := smallConfig([]int{2, 2, 2})
	base.MaxIters = 4
	withCore := base
	withCore.UpdateCore = true
	m1, err := Decompose(x, base)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Decompose(x, withCore)
	if err != nil {
		t.Fatal(err)
	}
	// At iteration 1 both runs perform identical factor updates from the
	// same initialization; the extra coordinate-descent sweep over the core
	// can only lower the regularized loss, so the measured error may differ
	// from the base run's by at most the (tiny) regularization slack.
	if m2.Trace[0].Error > m1.Trace[0].Error*1.01 {
		t.Fatalf("core sweep raised iteration-1 error: %v vs %v",
			m2.Trace[0].Error, m1.Trace[0].Error)
	}
	// Within its own run the trajectory stays monotone.
	for i := 1; i < len(m2.Trace); i++ {
		if m2.Trace[i].Error > m2.Trace[i-1].Error*(1+1e-6)+1e-9 {
			t.Fatalf("core-update run not monotone at iteration %d", i+1)
		}
	}
}

func TestConvergenceStopsEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	x := plantedTensor(rng, []int{10, 10, 10}, []int{2, 2, 2}, 300, 0.0)
	cfg := smallConfig([]int{2, 2, 2})
	cfg.MaxIters = 50
	cfg.Tol = 1e-3
	m, err := Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Converged {
		t.Fatal("expected convergence within 50 iterations on noise-free data")
	}
	if len(m.Trace) >= 50 {
		t.Fatalf("expected early stop, ran %d iterations", len(m.Trace))
	}
}

func TestTraceTimings(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	x := plantedTensor(rng, []int{8, 8, 8}, []int{2, 2, 2}, 100, 0.05)
	m, err := Decompose(x, smallConfig([]int{2, 2, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if m.TimePerIteration() <= 0 || m.TotalTime() <= 0 {
		t.Fatal("iteration timings must be positive")
	}
	if m.TotalTime() < m.TimePerIteration() {
		t.Fatal("total time below per-iteration time")
	}
	for i, it := range m.Trace {
		if it.Iter != i+1 {
			t.Fatalf("trace iteration numbering broken at %d", i)
		}
	}
}

func TestCoreTensorRemoveEntries(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := NewRandomCore([]int{2, 2, 2}, rng)
	if g.NNZ() != 8 {
		t.Fatalf("|G| = %d want 8", g.NNZ())
	}
	drop := make([]bool, 8)
	drop[0], drop[7] = true, true
	keep1 := g.Value(1)
	if removed := g.RemoveEntries(drop); removed != 2 {
		t.Fatalf("removed %d want 2", removed)
	}
	if g.NNZ() != 6 {
		t.Fatalf("|G| after removal = %d want 6", g.NNZ())
	}
	if g.Value(0) != keep1 {
		t.Fatal("compaction lost surviving entry values")
	}
}

func TestCoreTensorDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	g := NewRandomCore([]int{2, 3, 2}, rng)
	d := g.ToDense()
	g2 := &CoreTensor{}
	g2.FromDense(d, false)
	if g2.NNZ() != g.NNZ() {
		t.Fatalf("round trip |G| = %d want %d", g2.NNZ(), g.NNZ())
	}
	for e := 0; e < g.NNZ(); e++ {
		if math.Abs(d.At(g.Index(e))-g.Value(e)) > 1e-15 {
			t.Fatal("dense materialization mismatch")
		}
	}
	// Sparse conversion drops zeros.
	d.Set([]int{0, 0, 0}, 0)
	g2.FromDense(d, true)
	if g2.NNZ() != g.NNZ()-1 {
		t.Fatalf("sparse FromDense kept %d entries want %d", g2.NNZ(), g.NNZ()-1)
	}
}

func TestCoreTensorRotateAllIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g := NewRandomCore([]int{2, 2}, rng)
	orig := g.Clone()
	g.RotateAll([]*mat.Dense{mat.Identity(2), mat.Identity(2)})
	if g.NNZ() != orig.NNZ() {
		t.Fatalf("identity rotation changed |G|: %d -> %d", orig.NNZ(), g.NNZ())
	}
	for e := 0; e < g.NNZ(); e++ {
		if math.Abs(g.Value(e)-orig.Value(e)) > 1e-12 {
			t.Fatal("identity rotation changed core values")
		}
	}
}

func TestCoreTensorMaxAbsEntries(t *testing.T) {
	g := &CoreTensor{dims: []int{2, 2}}
	g.idx = []int{0, 0, 1, 0, 0, 1, 1, 1}
	g.val = []float64{1, -5, 3, 2}
	idx, vals := g.MaxAbsEntries(2)
	if len(idx) != 2 || vals[0] != -5 || vals[1] != 3 {
		t.Fatalf("MaxAbsEntries = %v %v", idx, vals)
	}
	if idx[0][0] != 1 || idx[0][1] != 0 {
		t.Fatalf("top entry index = %v want [1 0]", idx[0])
	}
	// k larger than |G| clips.
	idx, _ = g.MaxAbsEntries(10)
	if len(idx) != 4 {
		t.Fatalf("clipped k = %d want 4", len(idx))
	}
}

func TestRunIndexedCoverage(t *testing.T) {
	for _, sched := range []Scheduling{ScheduleStatic, ScheduleDynamic} {
		for _, threads := range []int{1, 3, 7} {
			n := 100
			visited := make([]int32, n)
			counts := runIndexed(threads, sched, 4, n, func(tid, i int) {
				visited[i]++
			})
			var total int64
			for _, c := range counts {
				total += c
			}
			if total != int64(n) {
				t.Fatalf("%v T=%d: processed %d items want %d", sched, threads, total, n)
			}
			for i, v := range visited {
				if v != 1 {
					t.Fatalf("%v T=%d: item %d visited %d times", sched, threads, i, v)
				}
			}
		}
	}
	// Zero items is a no-op.
	if counts := runIndexed(4, ScheduleDynamic, 2, 0, func(int, int) {}); len(counts) != 0 {
		t.Fatal("zero-item run should return no counts")
	}
}

func TestParallelSum(t *testing.T) {
	got := parallelSum(3, 100, func(tid, i int) float64 { return float64(i) })
	if got != 4950 {
		t.Fatalf("parallelSum = %v want 4950", got)
	}
}

// Property: for random small tensors, the reconstruction error after
// Decompose never exceeds the first-iteration error (ALS monotonicity,
// Theorem 2).
func TestDecomposeMonotonicityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []int{4 + rng.Intn(5), 4 + rng.Intn(5), 4 + rng.Intn(5)}
		// Cap nnz at half the cell count so distinct-coordinate sampling
		// always terminates.
		nnz := 50 + rng.Intn(100)
		if cells := dims[0] * dims[1] * dims[2]; nnz > cells/2 {
			nnz = cells / 2
		}
		x := uniformTensor(rng, dims, nnz)
		cfg := Defaults([]int{2, 2, 2})
		cfg.MaxIters = 4
		cfg.Tol = 0
		cfg.Threads = 2
		cfg.Seed = seed
		m, err := Decompose(x, cfg)
		if err != nil {
			return false
		}
		first := m.Trace[0].Error
		last := m.Trace[len(m.Trace)-1].Error
		return last <= first*(1+1e-9)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: predictions are finite for any observed configuration.
func TestPredictionsFiniteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []int{5, 5, 5}
		x := uniformTensor(rng, dims, 40)
		cfg := Defaults([]int{2, 2, 2})
		cfg.MaxIters = 3
		cfg.Threads = 1
		cfg.Seed = seed
		m, err := Decompose(x, cfg)
		if err != nil {
			return false
		}
		idx := []int{rng.Intn(5), rng.Intn(5), rng.Intn(5)}
		v := m.Predict(idx)
		return !math.IsNaN(v) && !math.IsInf(v, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestHighOrderSmoke(t *testing.T) {
	// Order-6 tensor exercises multi-index bookkeeping beyond the usual 3.
	rng := rand.New(rand.NewSource(20))
	dims := []int{4, 4, 4, 4, 4, 4}
	ranks := []int{2, 2, 2, 2, 2, 2}
	x := uniformTensor(rng, dims, 200)
	cfg := Defaults(ranks)
	cfg.MaxIters = 2
	cfg.Threads = 2
	m, err := Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Core.NNZ() != 64 {
		t.Fatalf("|G| = %d want 64", m.Core.NNZ())
	}
	for k, a := range m.Factors {
		if !a.IsFinite() {
			t.Fatalf("factor %d contains non-finite values", k)
		}
	}
}

func TestSampleRateValidation(t *testing.T) {
	for _, bad := range []float64{-0.1, 1.0, 1.5} {
		cfg := Defaults([]int{2, 2})
		cfg.SampleRate = bad
		if _, err := cfg.Validate([]int{5, 5}); !errorIs(err, ErrBadSampleRate) {
			t.Fatalf("rate %v: err = %v want ErrBadSampleRate", bad, err)
		}
	}
	cfg := Defaults([]int{2, 2})
	cfg.SampleRate = 0.5
	if _, err := cfg.Validate([]int{5, 5}); err != nil {
		t.Fatalf("rate 0.5 must be valid: %v", err)
	}
}

// The sampling extension (paper future work): subsampled row updates must
// still converge to a fit close to the exact method's on well-sampled data.
func TestSamplingAccuracyCloseToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := plantedTensor(rng, []int{20, 20, 20}, []int{2, 2, 2}, 3000, 0.02)
	exact := smallConfig([]int{2, 2, 2})
	exact.MaxIters = 6
	sampled := exact
	sampled.SampleRate = 0.5
	m1, err := Decompose(x, exact)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Decompose(x, sampled)
	if err != nil {
		t.Fatal(err)
	}
	// "Sacrificing little accuracy": the sampled fit stays within 50% of the
	// exact error on this redundant, noise-free-ish data.
	if m2.TrainError > 1.5*m1.TrainError {
		t.Fatalf("sampled error %v too far above exact %v", m2.TrainError, m1.TrainError)
	}
}

// Sampling must never subsample small rows below the informative minimum:
// rows with few observations use all of them, so results on a tiny tensor
// are identical with and without sampling.
func TestSamplingLeavesSmallRowsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := plantedTensor(rng, []int{8, 8, 8}, []int{2, 2, 2}, 60, 0.05)
	exact := smallConfig([]int{2, 2, 2})
	exact.MaxIters = 3
	sampled := exact
	sampled.SampleRate = 0.5
	m1, err := Decompose(x, exact)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Decompose(x, sampled)
	if err != nil {
		t.Fatal(err)
	}
	for k := range m1.Factors {
		if !m1.Factors[k].Equal(m2.Factors[k], 0) {
			t.Fatalf("factor %d differs although every row is below the sampling floor", k)
		}
	}
}
