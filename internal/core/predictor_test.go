package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func predictorFixture(t *testing.T) (*Model, *Predictor, [][]int) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	dims := []int{20, 16, 12}
	x := plantedTensor(rng, dims, []int{3, 3, 3}, 1500, 0.02)
	m, err := Decompose(x, smallConfig([]int{3, 3, 3}))
	if err != nil {
		t.Fatal(err)
	}
	idxs := make([][]int, 500)
	for i := range idxs {
		idx := make([]int, len(dims))
		for k, d := range dims {
			idx[k] = rng.Intn(d)
		}
		idxs[i] = idx
	}
	return m, NewPredictor(m), idxs
}

func TestPredictorMatchesModelExactly(t *testing.T) {
	m, p, idxs := predictorFixture(t)
	for _, idx := range idxs {
		want, got := m.Predict(idx), p.Predict(idx)
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("Predictor diverges from Model at %v: %v vs %v", idx, want, got)
		}
	}
}

// TestPredictorSharedBitIdentical pins the zero-copy contract: a predictor
// that aliases the model's factors and core answers bit-for-bit like the
// deep-copying one, and building it does not touch the model.
func TestPredictorSharedBitIdentical(t *testing.T) {
	m, p, idxs := predictorFixture(t)
	shared := NewPredictorShared(m)
	for k, a := range m.Factors {
		if shared.factors[k] != a {
			t.Fatalf("shared predictor cloned factor %d", k)
		}
	}
	if shared.core != m.Core {
		t.Fatal("shared predictor cloned the core")
	}
	for _, idx := range idxs {
		want, got := p.Predict(idx), shared.Predict(idx)
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("shared predictor diverges at %v: %v vs %v", idx, want, got)
		}
	}
	batch, sharedBatch := p.PredictBatch(idxs), shared.PredictBatch(idxs)
	for i := range batch {
		if math.Float64bits(batch[i]) != math.Float64bits(sharedBatch[i]) {
			t.Fatalf("shared batch diverges at %d: %v vs %v", i, batch[i], sharedBatch[i])
		}
	}
}

func TestPredictBatchMatchesSequential(t *testing.T) {
	_, p, idxs := predictorFixture(t)
	batch := p.PredictBatch(idxs)
	if len(batch) != len(idxs) {
		t.Fatalf("batch returned %d results for %d indices", len(batch), len(idxs))
	}
	for i, idx := range idxs {
		if math.Float64bits(batch[i]) != math.Float64bits(p.Predict(idx)) {
			t.Fatalf("batch[%d] = %v, sequential = %v", i, batch[i], p.Predict(idx))
		}
	}
	// A serial predictor must agree bit-for-bit with the parallel one.
	serial := p.WithWorkers(1).PredictBatch(idxs)
	for i := range serial {
		if math.Float64bits(serial[i]) != math.Float64bits(batch[i]) {
			t.Fatalf("workers change results at %d: %v vs %v", i, serial[i], batch[i])
		}
	}
}

// TestPredictorConcurrent hammers one predictor from 8 goroutines mixing
// Predict and PredictBatch; run under -race this is the data-race acceptance
// test for the serving layer.
func TestPredictorConcurrent(t *testing.T) {
	_, p, idxs := predictorFixture(t)
	want := p.PredictBatch(idxs)

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				if g%2 == 0 {
					got := p.PredictBatch(idxs)
					for i := range got {
						if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
							errs <- "concurrent PredictBatch diverged"
							return
						}
					}
				} else {
					for i := g; i < len(idxs); i += goroutines {
						if math.Float64bits(p.Predict(idxs[i])) != math.Float64bits(want[i]) {
							errs <- "concurrent Predict diverged"
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// The predictor is a snapshot: mutating the source model after NewPredictor
// must not change its answers.
func TestPredictorImmutableSnapshot(t *testing.T) {
	m, p, idxs := predictorFixture(t)
	before := p.PredictBatch(idxs)

	for _, a := range m.Factors {
		a.Fill(123.456)
	}
	for e := 0; e < m.Core.NNZ(); e++ {
		m.Core.SetValue(e, -1)
	}

	after := p.PredictBatch(idxs)
	for i := range before {
		if math.Float64bits(before[i]) != math.Float64bits(after[i]) {
			t.Fatal("predictor answers changed when the source model was mutated")
		}
	}
}

func TestPredictorChecksIndices(t *testing.T) {
	_, p, _ := predictorFixture(t)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("wrong order", func() { p.Predict([]int{1, 2}) })
	mustPanic("negative", func() { p.Predict([]int{-1, 0, 0}) })
	mustPanic("out of range", func() { p.Predict([]int{0, 0, 99}) })
	mustPanic("batch out of range", func() { p.PredictBatch([][]int{{0, 0, 0}, {0, 0, 99}}) })
}

func TestPredictorAccessors(t *testing.T) {
	_, p, _ := predictorFixture(t)
	if p.Order() != 3 {
		t.Fatalf("order %d want 3", p.Order())
	}
	dims := p.Dims()
	if len(dims) != 3 || dims[0] != 20 || dims[1] != 16 || dims[2] != 12 {
		t.Fatalf("dims %v want [20 16 12]", dims)
	}
	dims[0] = -5 // must be a copy
	if p.Dims()[0] != 20 {
		t.Fatal("Dims returned interior storage")
	}
	if q := p.WithWorkers(0); q == nil {
		t.Fatal("WithWorkers(0) returned nil")
	}
}
