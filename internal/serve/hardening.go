package serve

import (
	"bytes"
	"context"
	"net/http"
)

// withTimeout bounds one request's handling at s.timeout: the handler runs
// against a buffered ResponseWriter on its own goroutine with a deadlined
// context; if it finishes in time the buffered response is replayed to the
// client, otherwise the client gets an immediate JSON 503 and the straggler's
// output is discarded when it eventually completes. This is
// http.TimeoutHandler's discipline with a JSON error body and a metrics
// counter. A timeout of zero disables the wrapper.
//
// Handlers that honor their request context (the coalesced predict path)
// stop early; the rest run to completion against the discarded buffer, so a
// timeout never corrupts server state — it only stops the client's wait.
func (s *Server) withTimeout(h http.HandlerFunc) http.Handler {
	if s.timeout <= 0 {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()

		bw := &bufferedResponse{header: make(http.Header)}
		done := make(chan struct{})
		panicked := make(chan interface{}, 1)
		go func() {
			defer func() {
				if p := recover(); p != nil {
					panicked <- p
					return
				}
				close(done)
			}()
			h(bw, r.WithContext(ctx))
		}()

		select {
		case <-done:
			bw.flushTo(w)
		case p := <-panicked:
			panic(p)
		case <-ctx.Done():
			s.met.timeouts.Add(1)
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "request timed out"})
		}
	})
}

// bufferedResponse captures a handler's response so it can be replayed —
// or abandoned — after the timeout race is decided. Only the handler
// goroutine writes to it; flushTo runs strictly after that goroutine is done.
type bufferedResponse struct {
	header http.Header
	code   int
	body   bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) {
	if b.code == 0 {
		b.code = code
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.code == 0 {
		b.code = http.StatusOK
	}
	return b.body.Write(p)
}

func (b *bufferedResponse) flushTo(w http.ResponseWriter) {
	dst := w.Header()
	for k, vs := range b.header {
		dst[k] = vs
	}
	if b.code == 0 {
		b.code = http.StatusOK
	}
	w.WriteHeader(b.code)
	_, _ = w.Write(b.body.Bytes())
}
