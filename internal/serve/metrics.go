package serve

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// endpoints is the fixed label set of the per-endpoint counters.
var endpoints = []string{"predict", "predict-batch", "recommend", "observe", "reload"}

// metrics holds the server's counters. The zero value is ready to use; the
// per-endpoint maps are built once on first touch and read-only afterwards,
// so the hot path is a map lookup plus an atomic add.
type metrics struct {
	once sync.Once
	req  map[string]*atomic.Int64
	errs map[string]*atomic.Int64

	predictions  atomic.Int64 // cells scored, all paths
	flushes      atomic.Int64 // coalescer batches executed
	coalesced    atomic.Int64 // single predictions served via the coalescer
	reloads      atomic.Int64 // successful model swaps
	observations atomic.Int64 // observations accepted via /v1/observe
	foldIns      atomic.Int64 // new rows folded into the served model
	refits       atomic.Int64 // background warm refits published
	refitErrors  atomic.Int64 // background refits that failed
	timeouts     atomic.Int64 // requests cut off by the per-request timeout
}

func (m *metrics) init() {
	m.once.Do(func() {
		m.req = make(map[string]*atomic.Int64, len(endpoints))
		m.errs = make(map[string]*atomic.Int64, len(endpoints))
		for _, e := range endpoints {
			m.req[e] = new(atomic.Int64)
			m.errs[e] = new(atomic.Int64)
		}
	})
}

// requests returns the request counter for endpoint.
func (m *metrics) requests(endpoint string) *atomic.Int64 {
	m.init()
	return m.req[endpoint]
}

// errors returns the error counter for endpoint.
func (m *metrics) errors(endpoint string) *atomic.Int64 {
	m.init()
	return m.errs[endpoint]
}

// handler renders the counters in the Prometheus text exposition format,
// plus gauges describing the current snapshot.
func (m *metrics) handler(snap func() *snapshot) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		m.init()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")

		labels := append([]string(nil), endpoints...)
		sort.Strings(labels)
		fmt.Fprintln(w, "# HELP ptucker_requests_total Requests received, by endpoint.")
		fmt.Fprintln(w, "# TYPE ptucker_requests_total counter")
		for _, e := range labels {
			fmt.Fprintf(w, "ptucker_requests_total{endpoint=%q} %d\n", e, m.req[e].Load())
		}
		fmt.Fprintln(w, "# HELP ptucker_errors_total Requests answered with an error, by endpoint.")
		fmt.Fprintln(w, "# TYPE ptucker_errors_total counter")
		for _, e := range labels {
			fmt.Fprintf(w, "ptucker_errors_total{endpoint=%q} %d\n", e, m.errs[e].Load())
		}
		fmt.Fprintln(w, "# HELP ptucker_predictions_total Tensor cells scored across all paths.")
		fmt.Fprintln(w, "# TYPE ptucker_predictions_total counter")
		fmt.Fprintf(w, "ptucker_predictions_total %d\n", m.predictions.Load())
		fmt.Fprintln(w, "# HELP ptucker_coalesced_batches_total Coalescer flushes executed.")
		fmt.Fprintln(w, "# TYPE ptucker_coalesced_batches_total counter")
		fmt.Fprintf(w, "ptucker_coalesced_batches_total %d\n", m.flushes.Load())
		fmt.Fprintln(w, "# HELP ptucker_coalesced_predictions_total Single predictions served through the coalescer.")
		fmt.Fprintln(w, "# TYPE ptucker_coalesced_predictions_total counter")
		fmt.Fprintf(w, "ptucker_coalesced_predictions_total %d\n", m.coalesced.Load())
		fmt.Fprintln(w, "# HELP ptucker_reloads_total Successful model reloads.")
		fmt.Fprintln(w, "# TYPE ptucker_reloads_total counter")
		fmt.Fprintf(w, "ptucker_reloads_total %d\n", m.reloads.Load())
		fmt.Fprintln(w, "# HELP ptucker_observations_total Observations accepted via /v1/observe.")
		fmt.Fprintln(w, "# TYPE ptucker_observations_total counter")
		fmt.Fprintf(w, "ptucker_observations_total %d\n", m.observations.Load())
		fmt.Fprintln(w, "# HELP ptucker_foldins_total New rows folded into the served model.")
		fmt.Fprintln(w, "# TYPE ptucker_foldins_total counter")
		fmt.Fprintf(w, "ptucker_foldins_total %d\n", m.foldIns.Load())
		fmt.Fprintln(w, "# HELP ptucker_refits_total Background warm refits published.")
		fmt.Fprintln(w, "# TYPE ptucker_refits_total counter")
		fmt.Fprintf(w, "ptucker_refits_total %d\n", m.refits.Load())
		fmt.Fprintln(w, "# HELP ptucker_refit_errors_total Background warm refits that failed.")
		fmt.Fprintln(w, "# TYPE ptucker_refit_errors_total counter")
		fmt.Fprintf(w, "ptucker_refit_errors_total %d\n", m.refitErrors.Load())
		fmt.Fprintln(w, "# HELP ptucker_request_timeouts_total Requests cut off by the per-request timeout.")
		fmt.Fprintln(w, "# TYPE ptucker_request_timeouts_total counter")
		fmt.Fprintf(w, "ptucker_request_timeouts_total %d\n", m.timeouts.Load())

		s := snap()
		fmt.Fprintln(w, "# HELP ptucker_model_loaded_timestamp_seconds Unix time the serving snapshot was installed.")
		fmt.Fprintln(w, "# TYPE ptucker_model_loaded_timestamp_seconds gauge")
		fmt.Fprintf(w, "ptucker_model_loaded_timestamp_seconds %d\n", s.loadedAt.Unix())
		fmt.Fprintln(w, "# HELP ptucker_model_order Tensor order of the served model.")
		fmt.Fprintln(w, "# TYPE ptucker_model_order gauge")
		fmt.Fprintf(w, "ptucker_model_order %d\n", s.order)
	}
}
