package serve

import (
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	expo "repro/internal/metrics"
)

// endpoints is the fixed label set of the per-endpoint counters.
var endpoints = []string{"predict", "predict-batch", "recommend", "observe", "reload", "journal"}

// histEndpoints is the fixed label set of the request-duration histogram:
// the counter endpoints plus the probe, bootstrap, and pprof routes. Fixed
// sets keep the scrape cardinality bounded no matter what clients request.
var histEndpoints = append([]string{"bootstrap", "healthz", "metrics", "pprof"}, endpoints...)

// Refit lifecycle states exposed by ptucker_refit_state.
const (
	refitIdle int64 = iota
	refitFitting
	refitPublishing
)

// flushSizeBounds buckets coalescer flush sizes: 1..256 in doublings, which
// spans a lone idle-server request through DefaultMaxBatch.
var flushSizeBounds = expo.ExponentialBounds(1, 2, 9)

// metrics holds the server's counters. The zero value is ready to use; the
// per-endpoint maps are built once on first touch and read-only afterwards,
// so the hot path is a map lookup plus an atomic add.
type metrics struct {
	once sync.Once
	req  map[string]*atomic.Int64
	errs map[string]*atomic.Int64

	predictions  atomic.Int64 // cells scored, all paths
	flushes      atomic.Int64 // coalescer batches executed
	coalesced    atomic.Int64 // single predictions served via the coalescer
	reloads      atomic.Int64 // successful model swaps
	observations atomic.Int64 // observations accepted via /v1/observe
	foldIns      atomic.Int64 // new rows folded into the served model
	refits       atomic.Int64 // background warm refits published
	refitErrors  atomic.Int64 // background refits that failed
	timeouts     atomic.Int64 // requests cut off by the per-request timeout

	stagedObservations atomic.Int64 // observations buffered while a refit ran
	journalAppends     atomic.Int64 // batches journaled to the data dir
	journalReplayed    atomic.Int64 // journal records replayed at startup
	compactions        atomic.Int64 // journal compactions completed
	compactionErrors   atomic.Int64 // compactions that failed (journal kept)
	rebaseErrors       atomic.Int64 // reload re-bases that failed to persist
	authFailures       atomic.Int64 // mutating requests rejected with 401

	// Replication: the primary's stream service and the follower's
	// tailing progress (see replication.go).
	streamClients     atomic.Int64 // journal-stream polls currently being served
	streamRecords     atomic.Int64 // journal records shipped to followers
	streamBytes       atomic.Int64 // journal frame bytes shipped to followers
	bootstrapsServed  atomic.Int64 // bootstrap models shipped to followers
	replicaBootstraps atomic.Int64 // times this follower (re-)bootstrapped
	replicaRecords    atomic.Int64 // journal records this follower applied
	writesRejected    atomic.Int64 // writes refused because this is a replica

	holdoutSet  atomic.Bool   // a held-out set is configured and scored
	holdoutRMSE atomic.Uint64 // float64 bits of the latest held-out RMSE

	// Refit lifecycle gauges: state machine position, the in-flight refit's
	// latest ALS iteration and fit error (fed by Config.OnIteration), and
	// the wall-clock seconds of the last published refit.
	refitState    atomic.Int64
	refitIter     atomic.Int64
	refitFitError atomic.Uint64 // float64 bits
	refitLastSecs atomic.Uint64 // float64 bits

	// Latency histograms (lock-free; see internal/metrics). reqDur is keyed
	// by histEndpoints and populated by init; the rest record one duration
	// family each.
	reqDur           map[string]*expo.Histogram
	journalAppendDur *expo.Histogram
	journalFsyncDur  *expo.Histogram
	foldInDur        *expo.Histogram
	replicaApplyDur  *expo.Histogram

	// Per-shard coalescer counters and histograms, sized by initShards
	// before the dispatchers start (read-only slice headers afterwards).
	shardFlushes   []atomic.Int64    // flushes executed, by shard
	shardCoalesced []atomic.Int64    // predictions coalesced, by shard
	shardFlushSize []*expo.Histogram // batch size per flush, by shard
	shardFlushDur  []*expo.Histogram // flush wall-clock seconds, by shard
}

// initShards sizes the per-shard counters; called once, before serving.
func (m *metrics) initShards(n int) {
	m.shardFlushes = make([]atomic.Int64, n)
	m.shardCoalesced = make([]atomic.Int64, n)
	m.shardFlushSize = make([]*expo.Histogram, n)
	m.shardFlushDur = make([]*expo.Histogram, n)
	for i := 0; i < n; i++ {
		m.shardFlushSize[i] = expo.NewHistogram(flushSizeBounds)
		m.shardFlushDur[i] = expo.NewDurationHistogram()
	}
}

func (m *metrics) init() {
	m.once.Do(func() {
		m.req = make(map[string]*atomic.Int64, len(endpoints))
		m.errs = make(map[string]*atomic.Int64, len(endpoints))
		for _, e := range endpoints {
			m.req[e] = new(atomic.Int64)
			m.errs[e] = new(atomic.Int64)
		}
		m.reqDur = make(map[string]*expo.Histogram, len(histEndpoints))
		for _, e := range histEndpoints {
			m.reqDur[e] = expo.NewDurationHistogram()
		}
		m.journalAppendDur = expo.NewDurationHistogram()
		m.journalFsyncDur = expo.NewDurationHistogram()
		m.foldInDur = expo.NewDurationHistogram()
		m.replicaApplyDur = expo.NewDurationHistogram()
	})
}

// duration returns the request-duration histogram for endpoint (nil for an
// endpoint outside the fixed label set).
func (m *metrics) duration(endpoint string) *expo.Histogram {
	m.init()
	return m.reqDur[endpoint]
}

// requests returns the request counter for endpoint.
func (m *metrics) requests(endpoint string) *atomic.Int64 {
	m.init()
	return m.req[endpoint]
}

// errors returns the error counter for endpoint.
func (m *metrics) errors(endpoint string) *atomic.Int64 {
	m.init()
	return m.errs[endpoint]
}

// handler renders the counters in the Prometheus text exposition format,
// plus gauges describing the current snapshot. depths samples the coalescer
// shards' queue lengths (nil when coalescing is disabled); repl samples the
// replication role and progress; mapped samples the bytes of model files
// served from memory mappings.
func (m *metrics) handler(snap func() *snapshot, depths func() []int, repl func() replSample, mapped func() int64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		e := expo.NewExpo(w)
		m.render(e, snap, depths, repl, mapped)
		renderRuntime(e)
	}
}

// render writes every server-scoped family into e — all the counters,
// histograms, and model gauges, but not the process-wide runtime block.
// The split is what multi-model serving builds on: a registry renders each
// tenant through render under its own constant model label, then appends
// the runtime families once for the whole process (see registry.go).
func (m *metrics) render(e *expo.Expo, snap func() *snapshot, depths func() []int, repl func() replSample, mapped func() int64) {
	m.init()

	labels := append([]string(nil), endpoints...)
	sort.Strings(labels)
	byEndpoint := func(counters map[string]*atomic.Int64) func(func(string, int64)) {
		return func(sample func(string, int64)) {
			for _, l := range labels {
				sample(l, counters[l].Load())
			}
		}
	}
	e.CounterVec("ptucker_requests_total", "Requests received, by endpoint.", "endpoint", byEndpoint(m.req))
	e.CounterVec("ptucker_errors_total", "Requests answered with an error, by endpoint.", "endpoint", byEndpoint(m.errs))
	histLabels := append([]string(nil), histEndpoints...)
	sort.Strings(histLabels)
	e.HistogramVec("ptucker_request_duration_seconds", "Wall-clock request latency, by endpoint.", "endpoint",
		func(sample func(string, *expo.Histogram)) {
			for _, l := range histLabels {
				sample(l, m.reqDur[l])
			}
		})
	e.Counter("ptucker_predictions_total", "Tensor cells scored across all paths.", m.predictions.Load())
	e.Counter("ptucker_coalesced_batches_total", "Coalescer flushes executed.", m.flushes.Load())
	e.Counter("ptucker_coalesced_predictions_total", "Single predictions served through the coalescer.", m.coalesced.Load())
	if len(m.shardFlushes) > 0 {
		byShard := func(counters []atomic.Int64) func(func(string, int64)) {
			return func(sample func(string, int64)) {
				for i := range counters {
					sample(strconv.Itoa(i), counters[i].Load())
				}
			}
		}
		e.CounterVec("ptucker_shard_flushes_total", "Coalescer flushes executed, by dispatcher shard.", "shard", byShard(m.shardFlushes))
		e.CounterVec("ptucker_shard_coalesced_total", "Single predictions coalesced, by dispatcher shard.", "shard", byShard(m.shardCoalesced))
		byShardHist := func(hists []*expo.Histogram) func(func(string, *expo.Histogram)) {
			return func(sample func(string, *expo.Histogram)) {
				for i := range hists {
					sample(strconv.Itoa(i), hists[i])
				}
			}
		}
		e.HistogramVec("ptucker_coalescer_flush_size", "Predictions scored per coalescer flush, by dispatcher shard.", "shard", byShardHist(m.shardFlushSize))
		e.HistogramVec("ptucker_coalescer_flush_duration_seconds", "Wall-clock seconds per coalescer flush, by dispatcher shard.", "shard", byShardHist(m.shardFlushDur))
	}
	if depths != nil {
		e.GaugeIntVec("ptucker_shard_queue_depth", "Queued predictions awaiting a flush, by dispatcher shard (sampled).", "shard",
			func(sample func(string, int64)) {
				for i, d := range depths() {
					sample(strconv.Itoa(i), int64(d))
				}
			})
	}
	e.Counter("ptucker_reloads_total", "Successful model reloads.", m.reloads.Load())
	e.Counter("ptucker_observations_total", "Observations accepted via /v1/observe.", m.observations.Load())
	e.Counter("ptucker_foldins_total", "New rows folded into the served model.", m.foldIns.Load())
	e.Counter("ptucker_refits_total", "Background warm refits published.", m.refits.Load())
	e.Counter("ptucker_refit_errors_total", "Background warm refits that failed.", m.refitErrors.Load())
	e.GaugeInt("ptucker_refit_state", "Background refit lifecycle: 0 idle, 1 fitting, 2 publishing.", m.refitState.Load())
	e.GaugeInt("ptucker_refit_iteration", "Latest ALS iteration completed by the in-flight (or last) background refit.", m.refitIter.Load())
	e.Gauge("ptucker_refit_fit_error", "Training reconstruction error at the refit's latest completed iteration.", math.Float64frombits(m.refitFitError.Load()))
	e.Gauge("ptucker_refit_last_duration_seconds", "Wall-clock seconds the last published background refit took.", math.Float64frombits(m.refitLastSecs.Load()))
	e.Counter("ptucker_request_timeouts_total", "Requests cut off by the per-request timeout.", m.timeouts.Load())
	e.Counter("ptucker_staged_observations_total", "Observations buffered in the staging queue while a refit ran.", m.stagedObservations.Load())
	e.Counter("ptucker_journal_appends_total", "Observation batches journaled to the data directory.", m.journalAppends.Load())
	e.Histogram("ptucker_journal_append_duration_seconds", "Wall-clock seconds per journal append (encode + write + any inline fsync).", m.journalAppendDur)
	e.Histogram("ptucker_journal_fsync_duration_seconds", "Wall-clock seconds per journal fsync, across all sync policies.", m.journalFsyncDur)
	e.Histogram("ptucker_foldin_duration_seconds", "Wall-clock seconds per cold-start fold-in solve on the live path.", m.foldInDur)
	e.GaugeInt("ptucker_journal_replayed_records", "Journal records replayed at the last startup.", m.journalReplayed.Load())
	e.Counter("ptucker_journal_compactions_total", "Journal compactions into model + training snapshots.", m.compactions.Load())
	e.Counter("ptucker_journal_compaction_errors_total", "Compactions that failed (journal kept for replay).", m.compactionErrors.Load())
	e.Counter("ptucker_rebase_errors_total", "Reload re-bases that failed to persist (data dir may restart pre-reload).", m.rebaseErrors.Load())
	e.Counter("ptucker_auth_failures_total", "Mutating requests rejected for a missing or invalid bearer token.", m.authFailures.Load())
	if rs := repl(); rs.role != "" {
		switch rs.role {
		case "primary":
			e.GaugeInt("ptucker_journal_stream_clients", "Journal-stream polls currently held open by followers.", rs.streamClients)
			e.Counter("ptucker_journal_stream_records_total", "Journal records shipped to followers.", m.streamRecords.Load())
			e.Counter("ptucker_journal_stream_bytes_total", "Journal frame bytes shipped to followers.", m.streamBytes.Load())
			e.Counter("ptucker_journal_bootstraps_served_total", "Bootstrap models shipped to followers.", m.bootstrapsServed.Load())
			e.GaugeInt("ptucker_primary_applied_seq", "Highest journal sequence applied to the primary's model.", int64(rs.appliedSeq))
		case "follower":
			e.Gauge("ptucker_replica_lag_seconds", "Seconds since this replica last applied a record or confirmed being caught up.", rs.lagSeconds)
			e.GaugeInt("ptucker_replica_applied_seq", "Highest primary journal sequence applied to this replica.", int64(rs.appliedSeq))
			e.Counter("ptucker_replica_bootstraps_total", "Times this replica bootstrapped (or re-bootstrapped) from its primary.", m.replicaBootstraps.Load())
			e.Counter("ptucker_replica_records_applied_total", "Primary journal records applied by this replica.", m.replicaRecords.Load())
			e.Histogram("ptucker_replica_apply_duration_seconds", "Wall-clock seconds this replica spent journaling and applying one streamed record.", m.replicaApplyDur)
			e.Counter("ptucker_replica_writes_rejected_total", "Write requests refused because this process is a read replica.", m.writesRejected.Load())
		}
	}
	if m.holdoutSet.Load() {
		e.Gauge("ptucker_holdout_rmse", "RMSE of the served model over the held-out set, re-scored after refits and reloads.", math.Float64frombits(m.holdoutRMSE.Load()))
	}

	s := snap()
	e.GaugeInt("ptucker_model_loaded_timestamp_seconds", "Unix time the serving snapshot was installed.", s.loadedAt.Unix())
	e.GaugeInt("ptucker_model_order", "Tensor order of the served model.", int64(s.order))
	e.GaugeInt("ptucker_model_core_nnz", "Live core-tensor entries of the served model (drops under Approx truncation and Sparsify pruning).", int64(s.coreNNZ))
	e.GaugeInt("ptucker_model_mapped_bytes", "Bytes of model files this server serves out of read-only memory mappings (0 when heap-loaded).", mapped())
}

// renderRuntime writes the process-wide runtime families, sampled at scrape
// time. A single-tenant scrape appends them after render; a multi-tenant
// scrape emits them once for the whole process, not once per model.
func renderRuntime(e *expo.Expo) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	e.GaugeInt("ptucker_goroutines", "Goroutines currently live in this process.", int64(runtime.NumGoroutine()))
	e.GaugeInt("ptucker_heap_alloc_bytes", "Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).", int64(ms.HeapAlloc))
	e.CounterFloat("ptucker_gc_pause_seconds_total", "Cumulative seconds the process spent in GC stop-the-world pauses.", float64(ms.PauseTotalNs)/1e9)
	e.Counter("ptucker_gc_cycles_total", "Completed GC cycles.", int64(ms.NumGC))
}
