package serve

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// endpoints is the fixed label set of the per-endpoint counters.
var endpoints = []string{"predict", "predict-batch", "recommend", "observe", "reload"}

// metrics holds the server's counters. The zero value is ready to use; the
// per-endpoint maps are built once on first touch and read-only afterwards,
// so the hot path is a map lookup plus an atomic add.
type metrics struct {
	once sync.Once
	req  map[string]*atomic.Int64
	errs map[string]*atomic.Int64

	predictions  atomic.Int64 // cells scored, all paths
	flushes      atomic.Int64 // coalescer batches executed
	coalesced    atomic.Int64 // single predictions served via the coalescer
	reloads      atomic.Int64 // successful model swaps
	observations atomic.Int64 // observations accepted via /v1/observe
	foldIns      atomic.Int64 // new rows folded into the served model
	refits       atomic.Int64 // background warm refits published
	refitErrors  atomic.Int64 // background refits that failed
	timeouts     atomic.Int64 // requests cut off by the per-request timeout

	stagedObservations atomic.Int64 // observations buffered while a refit ran
	journalAppends     atomic.Int64 // batches journaled to the data dir
	journalReplayed    atomic.Int64 // journal records replayed at startup
	compactions        atomic.Int64 // journal compactions completed
	compactionErrors   atomic.Int64 // compactions that failed (journal kept)
	rebaseErrors       atomic.Int64 // reload re-bases that failed to persist
	authFailures       atomic.Int64 // mutating requests rejected with 401

	holdoutSet  atomic.Bool   // a held-out set is configured and scored
	holdoutRMSE atomic.Uint64 // float64 bits of the latest held-out RMSE

	// Per-shard coalescer counters, sized by initShards before the
	// dispatchers start (read-only slice headers afterwards).
	shardFlushes   []atomic.Int64 // flushes executed, by shard
	shardCoalesced []atomic.Int64 // predictions coalesced, by shard
}

// initShards sizes the per-shard counters; called once, before serving.
func (m *metrics) initShards(n int) {
	m.shardFlushes = make([]atomic.Int64, n)
	m.shardCoalesced = make([]atomic.Int64, n)
}

func (m *metrics) init() {
	m.once.Do(func() {
		m.req = make(map[string]*atomic.Int64, len(endpoints))
		m.errs = make(map[string]*atomic.Int64, len(endpoints))
		for _, e := range endpoints {
			m.req[e] = new(atomic.Int64)
			m.errs[e] = new(atomic.Int64)
		}
	})
}

// requests returns the request counter for endpoint.
func (m *metrics) requests(endpoint string) *atomic.Int64 {
	m.init()
	return m.req[endpoint]
}

// errors returns the error counter for endpoint.
func (m *metrics) errors(endpoint string) *atomic.Int64 {
	m.init()
	return m.errs[endpoint]
}

// handler renders the counters in the Prometheus text exposition format,
// plus gauges describing the current snapshot. depths samples the coalescer
// shards' queue lengths (nil when coalescing is disabled).
func (m *metrics) handler(snap func() *snapshot, depths func() []int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		m.init()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")

		labels := append([]string(nil), endpoints...)
		sort.Strings(labels)
		fmt.Fprintln(w, "# HELP ptucker_requests_total Requests received, by endpoint.")
		fmt.Fprintln(w, "# TYPE ptucker_requests_total counter")
		for _, e := range labels {
			fmt.Fprintf(w, "ptucker_requests_total{endpoint=%q} %d\n", e, m.req[e].Load())
		}
		fmt.Fprintln(w, "# HELP ptucker_errors_total Requests answered with an error, by endpoint.")
		fmt.Fprintln(w, "# TYPE ptucker_errors_total counter")
		for _, e := range labels {
			fmt.Fprintf(w, "ptucker_errors_total{endpoint=%q} %d\n", e, m.errs[e].Load())
		}
		fmt.Fprintln(w, "# HELP ptucker_predictions_total Tensor cells scored across all paths.")
		fmt.Fprintln(w, "# TYPE ptucker_predictions_total counter")
		fmt.Fprintf(w, "ptucker_predictions_total %d\n", m.predictions.Load())
		fmt.Fprintln(w, "# HELP ptucker_coalesced_batches_total Coalescer flushes executed.")
		fmt.Fprintln(w, "# TYPE ptucker_coalesced_batches_total counter")
		fmt.Fprintf(w, "ptucker_coalesced_batches_total %d\n", m.flushes.Load())
		fmt.Fprintln(w, "# HELP ptucker_coalesced_predictions_total Single predictions served through the coalescer.")
		fmt.Fprintln(w, "# TYPE ptucker_coalesced_predictions_total counter")
		fmt.Fprintf(w, "ptucker_coalesced_predictions_total %d\n", m.coalesced.Load())
		if len(m.shardFlushes) > 0 {
			fmt.Fprintln(w, "# HELP ptucker_shard_flushes_total Coalescer flushes executed, by dispatcher shard.")
			fmt.Fprintln(w, "# TYPE ptucker_shard_flushes_total counter")
			for i := range m.shardFlushes {
				fmt.Fprintf(w, "ptucker_shard_flushes_total{shard=\"%d\"} %d\n", i, m.shardFlushes[i].Load())
			}
			fmt.Fprintln(w, "# HELP ptucker_shard_coalesced_total Single predictions coalesced, by dispatcher shard.")
			fmt.Fprintln(w, "# TYPE ptucker_shard_coalesced_total counter")
			for i := range m.shardCoalesced {
				fmt.Fprintf(w, "ptucker_shard_coalesced_total{shard=\"%d\"} %d\n", i, m.shardCoalesced[i].Load())
			}
		}
		if depths != nil {
			fmt.Fprintln(w, "# HELP ptucker_shard_queue_depth Queued predictions awaiting a flush, by dispatcher shard (sampled).")
			fmt.Fprintln(w, "# TYPE ptucker_shard_queue_depth gauge")
			for i, d := range depths() {
				fmt.Fprintf(w, "ptucker_shard_queue_depth{shard=\"%d\"} %d\n", i, d)
			}
		}
		fmt.Fprintln(w, "# HELP ptucker_reloads_total Successful model reloads.")
		fmt.Fprintln(w, "# TYPE ptucker_reloads_total counter")
		fmt.Fprintf(w, "ptucker_reloads_total %d\n", m.reloads.Load())
		fmt.Fprintln(w, "# HELP ptucker_observations_total Observations accepted via /v1/observe.")
		fmt.Fprintln(w, "# TYPE ptucker_observations_total counter")
		fmt.Fprintf(w, "ptucker_observations_total %d\n", m.observations.Load())
		fmt.Fprintln(w, "# HELP ptucker_foldins_total New rows folded into the served model.")
		fmt.Fprintln(w, "# TYPE ptucker_foldins_total counter")
		fmt.Fprintf(w, "ptucker_foldins_total %d\n", m.foldIns.Load())
		fmt.Fprintln(w, "# HELP ptucker_refits_total Background warm refits published.")
		fmt.Fprintln(w, "# TYPE ptucker_refits_total counter")
		fmt.Fprintf(w, "ptucker_refits_total %d\n", m.refits.Load())
		fmt.Fprintln(w, "# HELP ptucker_refit_errors_total Background warm refits that failed.")
		fmt.Fprintln(w, "# TYPE ptucker_refit_errors_total counter")
		fmt.Fprintf(w, "ptucker_refit_errors_total %d\n", m.refitErrors.Load())
		fmt.Fprintln(w, "# HELP ptucker_request_timeouts_total Requests cut off by the per-request timeout.")
		fmt.Fprintln(w, "# TYPE ptucker_request_timeouts_total counter")
		fmt.Fprintf(w, "ptucker_request_timeouts_total %d\n", m.timeouts.Load())
		fmt.Fprintln(w, "# HELP ptucker_staged_observations_total Observations buffered in the staging queue while a refit ran.")
		fmt.Fprintln(w, "# TYPE ptucker_staged_observations_total counter")
		fmt.Fprintf(w, "ptucker_staged_observations_total %d\n", m.stagedObservations.Load())
		fmt.Fprintln(w, "# HELP ptucker_journal_appends_total Observation batches journaled to the data directory.")
		fmt.Fprintln(w, "# TYPE ptucker_journal_appends_total counter")
		fmt.Fprintf(w, "ptucker_journal_appends_total %d\n", m.journalAppends.Load())
		fmt.Fprintln(w, "# HELP ptucker_journal_replayed_records Journal records replayed at the last startup.")
		fmt.Fprintln(w, "# TYPE ptucker_journal_replayed_records gauge")
		fmt.Fprintf(w, "ptucker_journal_replayed_records %d\n", m.journalReplayed.Load())
		fmt.Fprintln(w, "# HELP ptucker_journal_compactions_total Journal compactions into model + training snapshots.")
		fmt.Fprintln(w, "# TYPE ptucker_journal_compactions_total counter")
		fmt.Fprintf(w, "ptucker_journal_compactions_total %d\n", m.compactions.Load())
		fmt.Fprintln(w, "# HELP ptucker_journal_compaction_errors_total Compactions that failed (journal kept for replay).")
		fmt.Fprintln(w, "# TYPE ptucker_journal_compaction_errors_total counter")
		fmt.Fprintf(w, "ptucker_journal_compaction_errors_total %d\n", m.compactionErrors.Load())
		fmt.Fprintln(w, "# HELP ptucker_rebase_errors_total Reload re-bases that failed to persist (data dir may restart pre-reload).")
		fmt.Fprintln(w, "# TYPE ptucker_rebase_errors_total counter")
		fmt.Fprintf(w, "ptucker_rebase_errors_total %d\n", m.rebaseErrors.Load())
		fmt.Fprintln(w, "# HELP ptucker_auth_failures_total Mutating requests rejected for a missing or invalid bearer token.")
		fmt.Fprintln(w, "# TYPE ptucker_auth_failures_total counter")
		fmt.Fprintf(w, "ptucker_auth_failures_total %d\n", m.authFailures.Load())
		if m.holdoutSet.Load() {
			fmt.Fprintln(w, "# HELP ptucker_holdout_rmse RMSE of the served model over the held-out set, re-scored after refits and reloads.")
			fmt.Fprintln(w, "# TYPE ptucker_holdout_rmse gauge")
			fmt.Fprintf(w, "ptucker_holdout_rmse %g\n", math.Float64frombits(m.holdoutRMSE.Load()))
		}

		s := snap()
		fmt.Fprintln(w, "# HELP ptucker_model_loaded_timestamp_seconds Unix time the serving snapshot was installed.")
		fmt.Fprintln(w, "# TYPE ptucker_model_loaded_timestamp_seconds gauge")
		fmt.Fprintf(w, "ptucker_model_loaded_timestamp_seconds %d\n", s.loadedAt.Unix())
		fmt.Fprintln(w, "# HELP ptucker_model_order Tensor order of the served model.")
		fmt.Fprintln(w, "# TYPE ptucker_model_order gauge")
		fmt.Fprintf(w, "ptucker_model_order %d\n", s.order)
	}
}
