// Package serve puts a fitted P-Tucker model behind a socket: an HTTP JSON
// API over a core.Predictor / core.Recommender pair, with atomic hot model
// reload and request micro-batching.
//
// Endpoints:
//
//	POST /v1/predict        {"index":[i1,...,iN]}            → {"value":v}
//	POST /v1/predict-batch  {"indexes":[[...],[...]]}        → {"values":[...]}
//	POST /v1/recommend      {"query":[...],"mode":m,"k":K,"exclude":[...]}
//	                                                         → {"recs":[{"index":i,"score":s},...]}
//	POST /v1/observe        {"observations":[{"index":[...],"value":v},...]}
//	                                                         → {"appended":a,"folded":[...],"dims":[...]}
//	POST /v1/reload         {"model":"path"} (path optional) → {"model":...,"loaded_at":...}
//	GET  /healthz                                            → {"status":"ok",...}
//	GET  /metrics                                            → Prometheus text format
//
// The served model lives in an atomic.Pointer snapshot. A reload (HTTP or
// SIGHUP, see cmd/ptucker-serve) loads and validates the new model off to
// the side, then swaps the pointer; requests that already grabbed the old
// snapshot finish on it untouched, so a reload never drops or corrupts
// in-flight work. Malformed input is answered with 400 via the predictor's
// non-panicking PredictChecked/ValidateIndex paths — a bad request can not
// crash the process.
//
// Concurrent single predictions are coalesced: /v1/predict submits to one of
// Options.Shards dispatcher shards (round-robin), each of which drains
// whatever is queued on it (up to MaxBatch) and scores it with one
// PredictBatch call — trading nothing on an idle server (a lone request
// flushes immediately) for fewer, larger kernel passes under load, with up to
// Shards flushes assembling in parallel so batch assembly never serializes on
// a single goroutine.
//
// The model also learns online: /v1/observe appends new observations,
// folds brand-new indices (cold-start users, new items) in as fresh factor
// rows via the row-wise solve of Eq. 4, and atomically publishes the grown
// snapshot; once Options.RefitAfter observations accumulate, a background
// warm-started refit rebalances the whole model and is swapped in the same
// way. Observes arriving during a refit are staged — validated, journaled,
// buffered — and drained when the refit's result swaps in, so they never
// block. Every /v1/* endpoint is bounded by a request-body size limit (413)
// and a per-request timeout (503), and Options.AuthToken puts the mutating
// endpoints behind a bearer token (401).
//
// With Options.DataDir the server is durable: accepted observations are
// journaled before they are applied, the journal is replayed on startup
// (a killed process restarts bit-identical to one that never crashed), and
// successful refits compact journal + training set + model into the
// directory — see durable.go and package store.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/replicate"
	"repro/internal/store"
	"repro/internal/tensor"
)

// snapshot bundles everything derived from one loaded model. It is immutable
// after construction; the server swaps whole snapshots, never fields. The
// model itself is retained (never mutated) so the online-learning path can
// resume fitting from exactly what is being served.
//
// The predictor shares the model's factors and core rather than cloning them
// (NewPredictorShared): every model a snapshot wraps is frozen — loaded from
// a file, exported by Fitter.Snapshot, or handed over via Options.Model — so
// the copy would buy nothing, and for mmap-backed models it would pull the
// whole file onto the heap and defeat zero-copy serving.
type snapshot struct {
	model    *core.Model
	pred     *core.Predictor
	rec      *core.Recommender
	path     string // file the model came from ("" if derived in memory)
	loadedAt time.Time
	order    int
	dims     []int
	coreNNZ  int // live core entries — the sparsification observable
}

func newSnapshot(m *core.Model, path string, workers int, now time.Time) *snapshot {
	p := core.NewPredictorShared(m)
	if workers > 0 {
		p = p.WithWorkers(workers)
	}
	return &snapshot{
		model:    m,
		pred:     p,
		rec:      p.Recommender(),
		path:     path,
		loadedAt: now,
		order:    p.Order(),
		dims:     p.Dims(),
		coreNNZ:  m.Core.NNZ(),
	}
}

// Options configures a Server.
type Options struct {
	// ModelPath is the model file to serve and the default source for
	// reloads. Required unless Model is set.
	ModelPath string
	// Model, when non-nil, is served directly (tests, embedded use);
	// ModelPath then only names the default reload source. The server takes
	// ownership: the caller must not mutate the model after New (the serving
	// snapshot aliases it, and online fitting resumes from it).
	Model *core.Model
	// Workers is the PredictBatch fan-out (0 = GOMAXPROCS).
	Workers int
	// MaxBatch caps how many queued single predictions one coalescer flush
	// scores together (0 = DefaultMaxBatch; 1 disables coalescing).
	MaxBatch int
	// Shards is the number of coalescer dispatcher shards. Each shard owns
	// its own submission queue and flush loop, so up to Shards batches
	// assemble and score concurrently. 0 picks an automatic count scaled
	// from GOMAXPROCS; ignored when MaxBatch is 1 (no coalescer).
	Shards int
	// RefitAfter triggers a background warm refit (and snapshot swap) once
	// that many observations have arrived via /v1/observe since the last
	// refit. 0 disables automatic refits; fold-ins still publish immediately.
	// A startup replay that alone reaches the threshold retriggers the refit
	// the crash interrupted.
	RefitAfter int
	// Sparsify overrides the served model's Config.Sparsify for background
	// refits: refit results are pruned under this relative RMSE-degradation
	// budget (see core.Config.Sparsify). When a holdout is configured
	// (HoldoutPath), the budget is checked against it, gating pruning on
	// generalization. 0 keeps whatever budget the model was fitted with.
	Sparsify float64
	// MaxBodyBytes caps the request body size on every /v1/* endpoint;
	// larger bodies are answered 413. 0 means DefaultMaxBody, negative
	// disables the limit.
	MaxBodyBytes int64
	// Timeout bounds the handling of every /v1/* request; requests that
	// exceed it are answered 503. 0 means DefaultTimeout, negative disables
	// the limit.
	Timeout time.Duration
	// DataDir enables durability: every /v1/observe batch is journaled
	// before it is applied, the journal is replayed on startup (crash
	// recovery), and successful refits compact it into model + training-set
	// snapshots. When the directory already holds a persisted model, that
	// model supersedes ModelPath/Model at startup — the data directory is
	// the newest durable state. Empty disables durability.
	DataDir string
	// CompactBytes triggers a journal compaction — without a refit — once
	// the journal file grows past this many bytes: the current grown model
	// and the accumulated training set are snapshotted into the data dir
	// and the covered records are rotated out. This bounds the journal of a
	// server running with refits disabled (RefitAfter 0). 0 disables
	// size-triggered compaction; ignored without a DataDir.
	CompactBytes int64
	// CompactAge bounds how long an uncovered journal record may wait for a
	// compaction, wall-clock: a background ticker compacts (same capture as
	// CompactBytes, no refit) once the oldest record not yet covered by a
	// snapshot is older than this. It bounds restart replay time for a
	// low-traffic server whose journal never crosses CompactBytes. Append
	// times are not persisted in the journal, so after a restart the
	// surviving records' age is measured from the restart. 0 disables
	// age-triggered compaction; ignored without a DataDir.
	CompactAge time.Duration
	// JournalSync selects the journal fsync policy (store.SyncAlways,
	// SyncBatch with an interval, SyncNone). The zero value is SyncBatch at
	// store.DefaultSyncInterval.
	JournalSync store.SyncPolicy
	// HoldoutPath names a held-out test tensor (text or binary format,
	// auto-detected); when set, /metrics reports the served model's RMSE
	// over it, re-scored after every refit and reload.
	HoldoutPath string
	// AuthToken, when non-empty, requires "Authorization: Bearer <token>"
	// on the mutating endpoints (/v1/observe, /v1/reload) and the
	// replication endpoints (/v1/journal, /v1/journal/bootstrap); requests
	// without it are answered 401. Read-only endpoints stay open. A
	// follower sends the same token to its primary on the stream.
	AuthToken string
	// Follow turns the server into a read replica of the primary at this
	// base URL (e.g. "http://primary:8080"): it bootstraps the primary's
	// model over HTTP, tails the primary's journal stream, and replays
	// every record through the same plan/apply path — serving
	// /v1/predict and /v1/recommend bit-identically to a caught-up
	// primary while rejecting writes (403 with a Location hint). With a
	// DataDir the follower persists what it applied and resumes from its
	// local sequence after a restart; without one it re-bootstraps. Empty
	// runs the normal (primary) mode.
	Follow string
	// MaxLag, on a follower, turns /healthz unready (503 "stale") once the
	// replica has not confirmed being caught up with its primary for this
	// long — so load balancers eject stale replicas instead of letting
	// them serve drifted predictions. It must comfortably exceed PollWait
	// (a caught-up follower only hears from the primary once per poll
	// window). 0 reports lag without ever going unready.
	MaxLag time.Duration
	// PollWait is the long-poll window a follower asks of its primary (how
	// long an empty poll is held open waiting for fresh records); 0 uses
	// replicate.DefaultPollWait.
	PollWait time.Duration
	// Logger receives the server's structured log stream: per-request
	// access lines at Debug, lifecycle events (reloads, refits,
	// compactions, replication) at Info and up. Nil uses slog.Default().
	// Build one from the -log-format/-log-level flags via obs.NewLogger.
	Logger *slog.Logger
	// SlowRequest escalates the access-log line of any request that ran at
	// least this long to Warn with full detail (request ID, endpoint,
	// status, duration, coalescer shard) regardless of log level, so tail
	// latencies are diagnosable without Debug-level volume. 0 disables.
	SlowRequest time.Duration
	// Pprof mounts net/http/pprof under /debug/pprof/, guarded by the same
	// bearer token as the mutating endpoints (AuthToken). Profiles expose
	// internals (and the CPU profile costs real time), so the mount is
	// opt-in and should not be enabled without a token off-localhost.
	Pprof bool
	// Mmap serves model files from read-only memory mappings when the file
	// and platform allow it (v4 format, 64-bit unix): the factor matrices and
	// core value block alias the mapping, so opening costs O(metadata) and the
	// heap never holds a copy of the model payload. Files the mapper cannot
	// serve (old versions, non-unix builds) silently fall back to the heap
	// loader; corrupt files fail either way. Mapped sources stay mapped until
	// the Server closes — the online paths clone before mutating, so a mapped
	// snapshot is never written through.
	Mmap bool
}

// DefaultMaxBatch is the coalescer's flush cap when Options.MaxBatch is 0.
const DefaultMaxBatch = 256

// DefaultMaxBody is the request-body cap when Options.MaxBodyBytes is 0.
const DefaultMaxBody int64 = 1 << 20

// DefaultTimeout is the per-request bound when Options.Timeout is 0.
const DefaultTimeout = 30 * time.Second

// ErrServerClosed is returned to predictions caught in flight by Close.
var ErrServerClosed = errors.New("serve: server closed")

// Server is the HTTP serving layer over one hot-swappable model snapshot.
// All methods are safe for concurrent use.
//
// The package's mutexes form a single documented hierarchy, declared by the
// directive below (outermost first) and enforced statically by ptucker-vet's
// lockorder analyzer: a goroutine may only acquire locks left-to-right, and
// must not take one while holding anything to its right.
//
//ptlint:lock-order Registry.mu > tenant.mu > Server.reloadMu > online.mu > online.stageMu > Server.durMu > Server.srcMu
type Server struct {
	opts Options

	cur  atomic.Pointer[snapshot]
	coal *coalescer
	met  metrics

	// online is the /v1/observe fitting state; see online.go. After the
	// initial snapshot, every snapshot store happens under online.mu, so a
	// reload and a background refit cannot interleave their swaps.
	online online

	// reloadMu serializes reloads so two concurrent /v1/reload calls cannot
	// interleave load-then-swap and resurrect an older model.
	reloadMu sync.Mutex

	// maxBody and timeout are the resolved hardening knobs (0 = disabled).
	maxBody int64
	timeout time.Duration

	// log is the resolved structured logger (never nil) and slowReq the
	// resolved slow-request threshold; see accesslog.go.
	log     *slog.Logger
	slowReq time.Duration

	// dir and journal are the durability handles (nil without a DataDir);
	// holdout is the held-out RMSE tensor (nil without a HoldoutPath).
	dir     *store.Dir
	journal *store.Journal
	holdout *tensor.Coord

	// watchMod/watchSize snapshot ModelPath's stat at construction time, so
	// a durable server's watcher can detect a deploy that lands during the
	// startup window (model load + journal replay) instead of arming past it.
	watchMod  time.Time
	watchSize int64

	// durMu serializes data-dir writers that may overlap (a reload re-base
	// under online.mu vs. an off-lock post-refit compaction); durLastGen is
	// the online.gen of the last applied write, so a compaction captured
	// before a reload cannot overwrite the re-based directory, and
	// durLastCovered is the highest journal sequence a committed write
	// covered, so a compaction captured earlier (size-triggered racing a
	// refit's) cannot roll the training snapshot back. durMu is the innermost
	// lock of the hierarchy documented on Server.
	durMu          sync.Mutex
	durLastGen     int64
	durLastCovered uint64

	// compactBusy admits one size- or age-triggered compaction at a time;
	// see maybeCompactBySize and compactByAge.
	compactBusy atomic.Bool

	// srcMu guards srcs, the model sources opened over the server's lifetime
	// (Options.Mmap). Retired sources stay mapped until Close — in-flight
	// requests may still hold snapshots over them, and read-only mappings are
	// page-cache-cheap — so Close is the single unmap point. srcMu is a leaf
	// lock (innermost in the hierarchy above).
	srcMu sync.Mutex
	srcs  []store.ModelSource

	// repl is the replication state: stream identity and applied-sequence
	// tracking on a primary, the tailing loop's handles on a follower. See
	// replication.go.
	repl replState

	// oldestUncovered is the UnixNano wall-clock time the oldest journal
	// record not yet covered by a compaction was appended (0 = journal fully
	// covered). Appends arm it (CAS from 0), compactions and re-bases clear
	// or re-arm it, and the CompactAge ticker compares it against the bound.
	oldestUncovered atomic.Int64

	// life is the server's lifetime context; Close cancels it, stopping a
	// background refit within one ALS iteration.
	life     context.Context
	lifeStop context.CancelFunc

	// now is the clock, swappable in tests.
	now func() time.Time
}

// New builds a Server from opts, loading the model from ModelPath unless a
// Model is supplied directly. The returned server is ready to serve; call
// Close when done to stop the coalescer.
func New(opts Options) (*Server, error) {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = DefaultMaxBatch
	}
	s := &Server{opts: opts, now: time.Now}
	s.log = opts.Logger
	if s.log == nil {
		s.log = slog.Default()
	}
	s.slowReq = opts.SlowRequest
	// Histograms are allocated eagerly: the fold-in and journal paths record
	// into them before any HTTP request could have lazily initialized them.
	s.met.init()
	s.life, s.lifeStop = context.WithCancel(context.Background())
	switch {
	case opts.MaxBodyBytes == 0:
		s.maxBody = DefaultMaxBody
	case opts.MaxBodyBytes > 0:
		s.maxBody = opts.MaxBodyBytes
	}
	switch {
	case opts.Timeout == 0:
		s.timeout = DefaultTimeout
	case opts.Timeout > 0:
		s.timeout = opts.Timeout
	}
	s.repl.initNotify()

	// Follower mode replaces the whole model-resolution and durability
	// startup below: the model comes from the primary (or the local replica
	// state), and the only journal is the local copy of the primary's.
	if opts.Follow != "" {
		if err := s.initFollower(); err != nil {
			return nil, err
		}
		if opts.MaxBatch > 1 {
			s.coal = newCoalescer(opts.MaxBatch, opts.Shards, s.snapshot, &s.met)
			s.coal.start()
		}
		return s, nil
	}

	// Resolve the durable state first: a data directory with a persisted
	// model (written by a compaction or a reload re-base) supersedes the
	// configured model — it is the newest durable state, including whatever
	// the process learned online before it last went down.
	if opts.DataDir != "" {
		dir, err := store.OpenDir(opts.DataDir)
		if err != nil {
			return nil, err
		}
		s.dir = dir
		// Captured before the (possibly slow) load+replay below: a deploy
		// over ModelPath landing mid-startup changes the stat the watcher
		// arms with, so WatchModel still notices it.
		s.watchSize = -1
		if opts.ModelPath != "" {
			if fi, err := os.Stat(opts.ModelPath); err == nil {
				s.watchMod, s.watchSize = fi.ModTime(), fi.Size()
			}
		}
	}

	m := opts.Model
	// srcPath is the provenance of the initial snapshot: "" when the model
	// was handed over in memory (ModelPath, if set, is then only the
	// default reload source — that file was never read).
	srcPath := ""
	switch {
	case s.dir != nil && s.dir.HasModel():
		var err error
		m, err = s.openModel(s.dir.ModelPath())
		if err != nil {
			return nil, fmt.Errorf("serve: data dir model: %w", err)
		}
		srcPath = s.dir.ModelPath()
	case m == nil:
		if opts.ModelPath == "" {
			return nil, errors.New("serve: Options needs a ModelPath or a Model")
		}
		var err error
		m, err = s.openModel(opts.ModelPath)
		if err != nil {
			return nil, err
		}
		srcPath = opts.ModelPath
	}
	s.cur.Store(newSnapshot(m, srcPath, opts.Workers, s.now()))

	// The holdout loads before the journal replay: resumed fitters attach it
	// as the Sparsify budget's scoring set, and replay may resume one.
	if err := s.loadHoldout(); err != nil {
		return nil, err
	}
	// Crash recovery: open the journal and replay uncovered records through
	// the live plan/apply path.
	if err := s.initDurable(); err != nil {
		return nil, err
	}
	// Score the model actually being served — after replay, which may have
	// grown it beyond what was loaded from disk.
	s.updateHoldout(s.snapshot().model)

	// MaxBatch 1 disables coalescing entirely: handlePredict scores on the
	// caller's goroutine and no dispatcher is spun up.
	if opts.MaxBatch > 1 {
		s.coal = newCoalescer(opts.MaxBatch, opts.Shards, s.snapshot, &s.met)
		s.coal.start()
	}
	// Age-bounded compaction: a ticker (stopped by Close via s.life) keeps
	// restart replay time bounded even when traffic never crosses
	// CompactBytes.
	if s.dir != nil && opts.CompactAge > 0 {
		go s.ageCompactLoop()
	}
	return s, nil
}

// openModel loads a model file through the configured source strategy:
// Options.Mmap maps it read-only (falling back to the heap loader for
// streams the mapper cannot serve), otherwise it heap-decodes. Opened
// sources are retained on the server and released together at Close.
func (s *Server) openModel(path string) (*core.Model, error) {
	if !s.opts.Mmap {
		return core.LoadModel(path)
	}
	src, err := store.OpenModel(path, true)
	if err != nil {
		return nil, err
	}
	s.srcMu.Lock()
	s.srcs = append(s.srcs, src)
	s.srcMu.Unlock()
	return src.Model(), nil
}

// MappedBytes reports how many bytes of model files this server currently
// serves out of read-only memory mappings (0 without Options.Mmap or after
// heap fallbacks). Mappings accumulate across reloads until Close.
func (s *Server) MappedBytes() int64 {
	s.srcMu.Lock()
	defer s.srcMu.Unlock()
	var n int64
	for _, src := range s.srcs {
		n += src.MappedBytes()
	}
	return n
}

// closeSources unmaps every model source opened over the server's lifetime.
func (s *Server) closeSources() {
	s.srcMu.Lock()
	defer s.srcMu.Unlock()
	for _, src := range s.srcs {
		_ = src.Close()
	}
	s.srcs = nil
}

// Shards reports the number of coalescer dispatcher shards serving
// /v1/predict (0 when coalescing is disabled).
func (s *Server) Shards() int {
	if s.coal == nil {
		return 0
	}
	return len(s.coal.shards)
}

// snapshot returns the current model snapshot; callers use one snapshot for
// the whole request so a concurrent reload cannot mix models mid-answer.
func (s *Server) snapshot() *snapshot { return s.cur.Load() }

// Reload loads a model from path (or from the server's configured ModelPath
// when path is empty) and atomically swaps it in. In-flight requests finish
// on the snapshot they started with. On any error the old model keeps
// serving.
func (s *Server) Reload(path string) error {
	_, err := s.reload(path)
	return err
}

// reload is Reload returning the snapshot this call installed, so the
// /v1/reload response describes the caller's own swap even when another
// reload lands immediately after.
func (s *Server) reload(path string) (*snapshot, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()

	src := path
	if src == "" {
		src = s.opts.ModelPath
	}
	if src == "" {
		return nil, errors.New("serve: no model path to reload from")
	}
	m, err := s.openModel(src)
	if err != nil {
		return nil, err
	}
	snap := newSnapshot(m, src, s.opts.Workers, s.now())

	// Swap and drop the online fitting state under one lock: the loaded
	// model supersedes anything observed so far, and holding online.mu
	// means an in-flight background refit either published before this swap
	// or notices the reset and abandons its (now stale) result. The staging
	// window is closed with it — staged batches belong to the dropped state.
	// The durable re-base happens after the swap is committed: if it fails,
	// the reload still stands in memory, and the data directory keeps the
	// previous mutually-consistent state (old base + old journal), so a
	// crash merely restarts pre-reload — far better than wiping journaled
	// observations for a reload that never happened.
	o := &s.online
	o.mu.Lock()
	s.cur.Store(snap)
	o.fitter = nil
	o.pending = 0
	o.gen++
	// The reloaded model is not derivable from the journal: followers
	// tailing the old generation must re-bootstrap.
	s.repl.bumpGen()
	if o.refitCancel != nil {
		// Abort an in-flight refit's compute (it runs on the abandoned
		// fitter and its result would be discarded anyway).
		o.refitCancel()
	}
	o.stageMu.Lock()
	o.staging = false
	o.staged = nil
	o.stagedCount = 0
	o.stageMu.Unlock()
	s.rebaseDurable(m, o.gen)
	o.mu.Unlock()

	s.updateHoldout(m)
	s.met.reloads.Add(1)
	s.event(slog.LevelInfo, "model reloaded", "model", snap.path, "dims", fmt.Sprint(snap.dims))
	return snap, nil
}

// Close stops the coalescer, cancels any background refit (it aborts within
// one ALS iteration), and flushes and closes the journal. Idempotent. Shut
// the http.Server down first (so no handler is mid-submit), then Close;
// predictions still queued at that point are answered with ErrServerClosed.
func (s *Server) Close() {
	s.lifeStop()
	if s.coal != nil {
		s.coal.stop()
	}
	if f := s.repl.fol; f != nil {
		// The tailing loop exits on the cancelled lifetime context; only
		// then is its local journal safe to close (the loop is its only
		// writer).
		<-f.done
		if f.journal != nil {
			_ = f.journal.Close()
		}
	}
	if s.journal != nil {
		// Quiesce observes (and any refit end-phase) before the final flush,
		// so nothing appends to a closed journal.
		s.online.mu.Lock()
		s.online.stageMu.Lock()
		_ = s.journal.Close()
		s.online.stageMu.Unlock()
		s.online.mu.Unlock()
	}
	// Unmap last: the coalescer is stopped and the HTTP server is down (the
	// documented Close contract), so no request still reads a mapping.
	s.closeSources()
}

// Handler returns the route table as an http.Handler, suitable for
// http.Server or httptest. Every /v1/* route is wrapped in the per-request
// timeout (Options.Timeout); /healthz and /metrics stay unbounded so probes
// keep answering even when the serving path is saturated.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/predict", s.instrument("predict", s.withTimeout(s.handlePredict)))
	mux.Handle("/v1/predict-batch", s.instrument("predict-batch", s.withTimeout(s.handlePredictBatch)))
	mux.Handle("/v1/recommend", s.instrument("recommend", s.withTimeout(s.handleRecommend)))
	if s.isFollower() {
		// A replica's model history belongs to its primary: writes here
		// would silently diverge, so they are refused with a hint at the
		// one address that can take them. The journal endpoints are
		// refused too — replicas do not re-share the stream.
		mux.Handle("/v1/observe", s.instrument("observe", s.rejectOnFollower()))
		mux.Handle("/v1/reload", s.instrument("reload", s.rejectOnFollower()))
		mux.Handle(replicate.StreamPath, s.instrument("journal", s.rejectOnFollower()))
		mux.Handle(replicate.BootstrapPath, s.instrument("bootstrap", s.rejectOnFollower()))
	} else {
		mux.Handle("/v1/observe", s.instrument("observe", s.requireAuth(s.withTimeout(s.handleObserve))))
		mux.Handle("/v1/reload", s.instrument("reload", s.requireAuth(s.withTimeout(s.handleReload))))
		// The stream endpoint long-polls by design, so it is mounted
		// without the per-request timeout; its own wait window bounds it.
		mux.Handle(replicate.StreamPath, s.instrument("journal", s.requireAuth(http.HandlerFunc(s.handleJournalStream))))
		mux.Handle(replicate.BootstrapPath, s.instrument("bootstrap", s.requireAuth(http.HandlerFunc(s.handleJournalBootstrap))))
	}
	mux.Handle("/healthz", s.instrument("healthz", http.HandlerFunc(s.handleHealthz)))
	var depths func() []int
	if s.coal != nil {
		depths = s.coal.queueDepths
	}
	mux.Handle("/metrics", s.instrument("metrics", s.met.handler(s.snapshot, depths, s.replSample, s.MappedBytes)))
	if s.opts.Pprof {
		// The profiling endpoints sit behind the same bearer token as the
		// mutating endpoints: profiles leak internals and the CPU profile
		// costs real wall-clock, so anonymous access is not acceptable
		// once a token is configured.
		pp := http.NewServeMux()
		pp.HandleFunc("/debug/pprof/", pprof.Index)
		pp.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pp.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pp.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pp.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/debug/pprof/", s.instrument("pprof", s.requireAuth(pp)))
	}
	return mux
}

// --- request/response shapes ---

type predictRequest struct {
	Index []int `json:"index"`
}

type predictResponse struct {
	Value float64 `json:"value"`
}

type predictBatchRequest struct {
	Indexes [][]int `json:"indexes"`
}

type predictBatchResponse struct {
	Values []float64 `json:"values"`
}

type recommendRequest struct {
	Query []int `json:"query"`
	Mode  int   `json:"mode"`
	K     int   `json:"k"`
	// Exclude lists free-mode indices to omit from the ranking — typically
	// the items the user already rated, so recommendations don't echo the
	// training data. Out-of-range entries are ignored.
	Exclude []int `json:"exclude"`
}

type recommendResponse struct {
	Recs []core.Rec `json:"recs"`
}

type reloadRequest struct {
	Model string `json:"model"`
}

type statusResponse struct {
	Status   string `json:"status"`
	Model    string `json:"model,omitempty"`
	Order    int    `json:"order"`
	Dims     []int  `json:"dims"`
	LoadedAt string `json:"loaded_at"`
	// Replication fields. Role is "primary" (replication available) or
	// "follower"; both sides report the highest journal sequence applied.
	// A follower names its primary and its staleness: LagSeconds is how
	// long ago it last confirmed being caught up (or applied a record).
	Role       string   `json:"role,omitempty"`
	Primary    string   `json:"primary,omitempty"`
	AppliedSeq uint64   `json:"applied_seq,omitempty"`
	LagSeconds *float64 `json:"lag_seconds,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// --- handlers ---

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	s.met.requests("predict").Add(1)
	var req predictRequest
	if !s.post(w, r, "predict", &req) {
		return
	}
	var v float64
	var err error
	if s.coal == nil {
		// Coalescing disabled: score on the caller's goroutine so predict
		// traffic stays as parallel as the HTTP server itself.
		v, err = s.snapshot().pred.PredictChecked(req.Index)
		if err == nil {
			s.met.predictions.Add(1)
		}
	} else {
		v, err = s.coal.predict(r.Context(), req.Index)
	}
	if err != nil {
		s.clientOrServerError(w, "predict", err)
		return
	}
	writeJSON(w, http.StatusOK, predictResponse{Value: v})
}

func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	s.met.requests("predict-batch").Add(1)
	var req predictBatchRequest
	if !s.post(w, r, "predict-batch", &req) {
		return
	}
	snap := s.snapshot()
	vals, err := snap.pred.PredictBatchChecked(req.Indexes)
	if err != nil {
		s.badRequest(w, "predict-batch", err)
		return
	}
	s.met.predictions.Add(int64(len(vals)))
	writeJSON(w, http.StatusOK, predictBatchResponse{Values: vals})
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	s.met.requests("recommend").Add(1)
	var req recommendRequest
	if !s.post(w, r, "recommend", &req) {
		return
	}
	snap := s.snapshot()
	recs, err := snap.rec.TopKExcluding(req.Query, req.Mode, req.K, req.Exclude)
	if err != nil {
		s.badRequest(w, "recommend", err)
		return
	}
	writeJSON(w, http.StatusOK, recommendResponse{Recs: recs})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	s.met.requests("reload").Add(1)
	var req reloadRequest
	if !s.post(w, r, "reload", &req) {
		return
	}
	snap, err := s.reload(req.Model)
	if err != nil {
		s.met.errors("reload").Add(1)
		// Any failure to load a path the request named — missing,
		// unreadable, not a model file — is the caller's mistake (400),
		// as is asking to reload a server that has no model path at all
		// (served from memory; no such request can succeed). Failures of
		// the server's own configured model path are genuine 5xx so
		// operators can alert on them.
		status := http.StatusInternalServerError
		if req.Model != "" || s.opts.ModelPath == "" {
			status = http.StatusBadRequest
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, statusResponse{
		Status:   "reloaded",
		Model:    snap.path,
		Order:    snap.order,
		Dims:     snap.dims,
		LoadedAt: snap.loadedAt.UTC().Format(time.RFC3339Nano),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.methodNotAllowed(w, http.MethodGet)
		return
	}
	snap := s.snapshot()
	resp := statusResponse{
		Status:   "ok",
		Model:    snap.path,
		Order:    snap.order,
		Dims:     snap.dims,
		LoadedAt: snap.loadedAt.UTC().Format(time.RFC3339Nano),
	}
	status := http.StatusOK
	switch {
	case s.isFollower():
		resp.Role = "follower"
		resp.Primary = s.opts.Follow
		resp.AppliedSeq = s.repl.appliedSeq.Load()
		lag := s.replicaLag().Seconds()
		resp.LagSeconds = &lag
		// A stale replica reports unready so load balancers stop routing
		// reads to predictions the primary has moved past.
		if s.opts.MaxLag > 0 && lag > s.opts.MaxLag.Seconds() {
			resp.Status = "stale"
			status = http.StatusServiceUnavailable
		}
		if s.repl.fol.failed.Load() {
			resp.Status = "replication-failed"
			status = http.StatusServiceUnavailable
		}
	case s.repl.epoch != 0:
		resp.Role = "primary"
		resp.AppliedSeq = s.repl.appliedSeq.Load()
	}
	writeJSON(w, status, resp)
}

// --- plumbing ---

// post enforces the method, applies the body-size limit, decodes the JSON
// body into dst, and answers the request itself on failure — 413 for an
// oversized body, 400 for everything else malformed. It reports whether the
// handler should continue.
func (s *Server) post(w http.ResponseWriter, r *http.Request, endpoint string, dst interface{}) bool {
	if r.Method != http.MethodPost {
		s.methodNotAllowed(w, http.MethodPost)
		return false
	}
	if s.maxBody > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.met.errors(endpoint).Add(1)
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{Error: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)})
			return false
		}
		s.badRequest(w, endpoint, fmt.Errorf("bad request body: %v", err))
		return false
	}
	return true
}

func (s *Server) badRequest(w http.ResponseWriter, endpoint string, err error) {
	s.met.errors(endpoint).Add(1)
	writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
}

// clientOrServerError maps a prediction error to 400 for malformed input and
// 503 for shutdown/cancellation.
func (s *Server) clientOrServerError(w http.ResponseWriter, endpoint string, err error) {
	s.met.errors(endpoint).Add(1)
	status := http.StatusServiceUnavailable
	if errors.Is(err, core.ErrBadIndex) {
		status = http.StatusBadRequest
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func (s *Server) methodNotAllowed(w http.ResponseWriter, allow string) {
	w.Header().Set("Allow", allow)
	writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "method not allowed"})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
