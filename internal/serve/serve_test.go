package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/tensor"
)

// fitModel fits a small planted model with the given seed; different seeds
// give models whose predictions are observably different.
func fitModel(t testing.TB, seed int64) *core.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dims := []int{20, 16, 12}
	x := tensor.NewCoord(dims)
	idx := make([]int, 3)
	seen := make(map[int]bool)
	for x.NNZ() < 1200 {
		flat := 0
		stride := 1
		for k, d := range dims {
			idx[k] = rng.Intn(d)
			flat += idx[k] * stride
			stride *= d
		}
		if seen[flat] {
			continue
		}
		seen[flat] = true
		x.MustAppend(idx, rng.Float64())
	}
	cfg := core.Defaults([]int{3, 3, 3})
	cfg.MaxIters = 3
	cfg.Tol = 0
	cfg.Seed = seed
	m, err := core.Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// testServer wires a Server over an in-memory model plus an httptest front.
func testServer(t testing.TB, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Model == nil && opts.ModelPath == "" {
		opts.Model = fitModel(t, 7)
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t testing.TB, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func TestHandlersRejectBadInput(t *testing.T) {
	_, ts := testServer(t, Options{})
	cases := []struct {
		name     string
		endpoint string
		body     string
		want     int
	}{
		{"predict bad json", "/v1/predict", `{"index":`, http.StatusBadRequest},
		{"predict unknown field", "/v1/predict", `{"idx":[1,2,3]}`, http.StatusBadRequest},
		{"predict wrong order", "/v1/predict", `{"index":[1,2]}`, http.StatusBadRequest},
		{"predict out of range", "/v1/predict", `{"index":[1,2,999]}`, http.StatusBadRequest},
		{"predict negative", "/v1/predict", `{"index":[-1,0,0]}`, http.StatusBadRequest},
		{"predict empty body", "/v1/predict", ``, http.StatusBadRequest},
		{"batch bad json", "/v1/predict-batch", `{"indexes":[[1,2,3],`, http.StatusBadRequest},
		{"batch wrong order item", "/v1/predict-batch", `{"indexes":[[1,2,3],[1,2]]}`, http.StatusBadRequest},
		{"batch out of range item", "/v1/predict-batch", `{"indexes":[[1,2,3],[0,0,99]]}`, http.StatusBadRequest},
		{"recommend bad json", "/v1/recommend", `{`, http.StatusBadRequest},
		{"recommend bad mode", "/v1/recommend", `{"query":[1,2,3],"mode":9,"k":3}`, http.StatusBadRequest},
		{"recommend bad fixed index", "/v1/recommend", `{"query":[1,999,3],"mode":0,"k":3}`, http.StatusBadRequest},
		{"recommend zero k", "/v1/recommend", `{"query":[1,2,3],"mode":0,"k":0}`, http.StatusBadRequest},
		{"reload bad json", "/v1/reload", `{"model":3}`, http.StatusBadRequest},
		{"reload missing file", "/v1/reload", `{"model":"/nonexistent.ptkm"}`, http.StatusBadRequest},
		{"reload no default path", "/v1/reload", `{}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		status, body := postJSON(t, ts.URL+tc.endpoint, tc.body)
		if status != tc.want {
			t.Errorf("%s: status %d want %d (body %s)", tc.name, status, tc.want, body)
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: expected a JSON error body, got %s", tc.name, body)
		}
	}
}

func TestHandlersRejectWrongMethod(t *testing.T) {
	_, ts := testServer(t, Options{})
	for _, ep := range []string{"/v1/predict", "/v1/predict-batch", "/v1/recommend", "/v1/reload"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s: status %d want 405", ep, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/healthz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz: status %d want 405", resp.StatusCode)
	}
}

func TestPredictMatchesPredictor(t *testing.T) {
	m := fitModel(t, 7)
	_, ts := testServer(t, Options{Model: m})
	p := core.NewPredictor(m)
	rng := rand.New(rand.NewSource(3))
	dims := p.Dims()

	for trial := 0; trial < 50; trial++ {
		idx := make([]int, len(dims))
		for k, d := range dims {
			idx[k] = rng.Intn(d)
		}
		body, _ := json.Marshal(predictRequest{Index: idx})
		status, resp := postJSON(t, ts.URL+"/v1/predict", string(body))
		if status != http.StatusOK {
			t.Fatalf("predict %v: status %d body %s", idx, status, resp)
		}
		var pr predictResponse
		if err := json.Unmarshal(resp, &pr); err != nil {
			t.Fatal(err)
		}
		if want := p.Predict(idx); math.Float64bits(pr.Value) != math.Float64bits(want) {
			t.Fatalf("predict %v = %v, predictor says %v", idx, pr.Value, want)
		}
	}
}

func TestPredictBatchMatchesPredictor(t *testing.T) {
	m := fitModel(t, 7)
	_, ts := testServer(t, Options{Model: m})
	p := core.NewPredictor(m)
	rng := rand.New(rand.NewSource(4))
	dims := p.Dims()

	idxs := make([][]int, 100)
	for i := range idxs {
		idx := make([]int, len(dims))
		for k, d := range dims {
			idx[k] = rng.Intn(d)
		}
		idxs[i] = idx
	}
	body, _ := json.Marshal(predictBatchRequest{Indexes: idxs})
	status, resp := postJSON(t, ts.URL+"/v1/predict-batch", string(body))
	if status != http.StatusOK {
		t.Fatalf("status %d body %s", status, resp)
	}
	var br predictBatchResponse
	if err := json.Unmarshal(resp, &br); err != nil {
		t.Fatal(err)
	}
	want := p.PredictBatch(idxs)
	if len(br.Values) != len(want) {
		t.Fatalf("got %d values want %d", len(br.Values), len(want))
	}
	for i := range want {
		if math.Float64bits(br.Values[i]) != math.Float64bits(want[i]) {
			t.Fatalf("item %d: %v want %v", i, br.Values[i], want[i])
		}
	}
}

// The /v1/recommend answer must equal brute-force top-K over Predict
// scoring: identical candidate order, scores within float reassociation
// tolerance.
func TestRecommendMatchesBruteForce(t *testing.T) {
	m := fitModel(t, 7)
	_, ts := testServer(t, Options{Model: m})
	p := core.NewPredictor(m)
	dims := p.Dims()

	for mode := 0; mode < len(dims); mode++ {
		query := []int{3, 5, 2}
		k := 7
		body, _ := json.Marshal(recommendRequest{Query: query, Mode: mode, K: k})
		status, resp := postJSON(t, ts.URL+"/v1/recommend", string(body))
		if status != http.StatusOK {
			t.Fatalf("mode %d: status %d body %s", mode, status, resp)
		}
		var rr recommendResponse
		if err := json.Unmarshal(resp, &rr); err != nil {
			t.Fatal(err)
		}

		// Brute force: score every candidate with Predict, rank by score
		// descending / index ascending.
		type cand struct {
			i int
			s float64
		}
		cands := make([]cand, dims[mode])
		idx := append([]int(nil), query...)
		for i := range cands {
			idx[mode] = i
			cands[i] = cand{i, p.Predict(idx)}
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].s != cands[b].s {
				return cands[a].s > cands[b].s
			}
			return cands[a].i < cands[b].i
		})

		if len(rr.Recs) != k {
			t.Fatalf("mode %d: got %d recs want %d", mode, len(rr.Recs), k)
		}
		for r, rec := range rr.Recs {
			if rec.Index != cands[r].i {
				t.Fatalf("mode %d rank %d: index %d want %d", mode, r, rec.Index, cands[r].i)
			}
			if d := math.Abs(rec.Score - cands[r].s); d > 1e-9*(1+math.Abs(cands[r].s)) {
				t.Fatalf("mode %d rank %d: score %v want %v", mode, r, rec.Score, cands[r].s)
			}
		}
	}
}

func TestReloadSwapsModel(t *testing.T) {
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.ptkm")
	pathB := filepath.Join(dir, "b.ptkm")
	mA, mB := fitModel(t, 7), fitModel(t, 8)
	if err := core.SaveModel(pathA, mA); err != nil {
		t.Fatal(err)
	}
	if err := core.SaveModel(pathB, mB); err != nil {
		t.Fatal(err)
	}

	s, ts := testServer(t, Options{ModelPath: pathA})
	idx := []int{3, 5, 2}
	wantA := core.NewPredictor(mA).Predict(idx)
	wantB := core.NewPredictor(mB).Predict(idx)
	if math.Float64bits(wantA) == math.Float64bits(wantB) {
		t.Fatal("fixture models predict identically; test cannot observe the swap")
	}

	get := func() float64 {
		body, _ := json.Marshal(predictRequest{Index: idx})
		status, resp := postJSON(t, ts.URL+"/v1/predict", string(body))
		if status != http.StatusOK {
			t.Fatalf("status %d body %s", status, resp)
		}
		var pr predictResponse
		if err := json.Unmarshal(resp, &pr); err != nil {
			t.Fatal(err)
		}
		return pr.Value
	}

	if got := get(); math.Float64bits(got) != math.Float64bits(wantA) {
		t.Fatalf("before reload: %v want model A's %v", got, wantA)
	}
	status, resp := postJSON(t, ts.URL+"/v1/reload", fmt.Sprintf(`{"model":%q}`, pathB))
	if status != http.StatusOK {
		t.Fatalf("reload: status %d body %s", status, resp)
	}
	if got := get(); math.Float64bits(got) != math.Float64bits(wantB) {
		t.Fatalf("after reload: %v want model B's %v", got, wantB)
	}

	// A failed reload must leave model B serving (missing client-named
	// file is the caller's mistake: 400).
	status, _ = postJSON(t, ts.URL+"/v1/reload", `{"model":"/nonexistent.ptkm"}`)
	if status != http.StatusBadRequest {
		t.Fatalf("broken reload: status %d want 400", status)
	}
	if got := get(); math.Float64bits(got) != math.Float64bits(wantB) {
		t.Fatalf("after failed reload: %v want model B's %v", got, wantB)
	}

	// A failure of the server's own configured path is a genuine 5xx.
	if err := os.Remove(pathA); err != nil {
		t.Fatal(err)
	}
	status, _ = postJSON(t, ts.URL+"/v1/reload", `{}`)
	if status != http.StatusInternalServerError {
		t.Fatalf("default-path reload with missing file: status %d want 500", status)
	}
	if got := get(); math.Float64bits(got) != math.Float64bits(wantB) {
		t.Fatalf("after failed default reload: %v want model B's %v", got, wantB)
	}
	_ = s
}

// Hammer /v1/predict from many goroutines while reloading between two models
// the whole time: every answer must be exactly model A's or model B's — a
// torn or mixed snapshot would produce a third value. Run with -race.
func TestConcurrentReloadWhilePredicting(t *testing.T) {
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.ptkm")
	pathB := filepath.Join(dir, "b.ptkm")
	mA, mB := fitModel(t, 7), fitModel(t, 8)
	if err := core.SaveModel(pathA, mA); err != nil {
		t.Fatal(err)
	}
	if err := core.SaveModel(pathB, mB); err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{ModelPath: pathA, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	idx := []int{3, 5, 2}
	wantA := core.NewPredictor(mA).Predict(idx)
	wantB := core.NewPredictor(mB).Predict(idx)
	body, _ := json.Marshal(predictRequest{Index: idx})

	const clients = 8
	const perClient = 40
	errs := make(chan string, clients*perClient+1)
	var wg, reloaderWg sync.WaitGroup
	stopReload := make(chan struct{})

	reloaderWg.Add(1)
	go func() {
		defer reloaderWg.Done()
		paths := []string{pathB, pathA}
		for i := 0; ; i++ {
			select {
			case <-stopReload:
				return
			default:
			}
			if err := s.Reload(paths[i%2]); err != nil {
				errs <- fmt.Sprintf("reload: %v", err)
				return
			}
		}
	}()

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err.Error()
					return
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("status %d: %s", resp.StatusCode, b)
					return
				}
				var pr predictResponse
				if err := json.Unmarshal(b, &pr); err != nil {
					errs <- err.Error()
					return
				}
				bits := math.Float64bits(pr.Value)
				if bits != math.Float64bits(wantA) && bits != math.Float64bits(wantB) {
					errs <- fmt.Sprintf("answer %v is neither model A's %v nor model B's %v",
						pr.Value, wantA, wantB)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(stopReload)
	reloaderWg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s, ts := testServer(t, Options{})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	var st statusResponse
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "ok" || st.Order != 3 || len(st.Dims) != 3 {
		t.Fatalf("healthz body: %+v", st)
	}

	// Generate one good and one bad predict, then check the counters moved.
	postJSON(t, ts.URL+"/v1/predict", `{"index":[1,2,3]}`)
	postJSON(t, ts.URL+"/v1/predict", `{"index":[999,2,3]}`)

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	metricsText := string(mb)
	for _, want := range []string{
		`ptucker_requests_total{endpoint="predict"} 2`,
		`ptucker_errors_total{endpoint="predict"} 1`,
		`ptucker_predictions_total 1`,
		"ptucker_coalesced_batches_total",
		"ptucker_reloads_total 0",
		"ptucker_model_order 3",
		fmt.Sprintf("ptucker_model_core_nnz %d", s.snapshot().coreNNZ),
	} {
		if !strings.Contains(metricsText, want) {
			t.Errorf("metrics output missing %q:\n%s", want, metricsText)
		}
	}
}

// The coalescer must deliver correct per-request answers when many distinct
// predictions race into shared batches.
func TestCoalescerAnswersMatchUnderLoad(t *testing.T) {
	m := fitModel(t, 7)
	s, err := New(Options{Model: m, MaxBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p := core.NewPredictor(m)
	dims := p.Dims()
	rng := rand.New(rand.NewSource(11))

	type job struct {
		idx  []int
		want float64
	}
	jobs := make([]job, 300)
	for i := range jobs {
		idx := make([]int, len(dims))
		for k, d := range dims {
			idx[k] = rng.Intn(d)
		}
		jobs[i] = job{idx, p.Predict(idx)}
	}

	errs := make(chan string, len(jobs))
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			got, err := s.coal.predict(context.Background(), j.idx)
			if err != nil {
				errs <- err.Error()
				return
			}
			if math.Float64bits(got) != math.Float64bits(j.want) {
				errs <- fmt.Sprintf("coalesced %v = %v want %v", j.idx, got, j.want)
			}
		}(j)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	if s.met.flushes.Load() == 0 {
		t.Fatal("coalescer executed no flushes")
	}
	if s.met.coalesced.Load() != int64(len(jobs)) {
		t.Fatalf("coalesced %d predictions want %d", s.met.coalesced.Load(), len(jobs))
	}
}

// MaxBatch=1 disables coalescing: /v1/predict must score on the handler
// goroutine (direct PredictChecked path) with identical answers and 400s.
func TestMaxBatchOneBypassesCoalescer(t *testing.T) {
	m := fitModel(t, 7)
	s, ts := testServer(t, Options{Model: m, MaxBatch: 1})
	p := core.NewPredictor(m)

	status, resp := postJSON(t, ts.URL+"/v1/predict", `{"index":[3,5,2]}`)
	if status != http.StatusOK {
		t.Fatalf("status %d body %s", status, resp)
	}
	var pr predictResponse
	if err := json.Unmarshal(resp, &pr); err != nil {
		t.Fatal(err)
	}
	if want := p.Predict([]int{3, 5, 2}); math.Float64bits(pr.Value) != math.Float64bits(want) {
		t.Fatalf("direct-path predict %v want %v", pr.Value, want)
	}
	if status, _ := postJSON(t, ts.URL+"/v1/predict", `{"index":[999,5,2]}`); status != http.StatusBadRequest {
		t.Fatalf("direct-path bad index: status %d want 400", status)
	}
	if got := s.met.flushes.Load(); got != 0 {
		t.Fatalf("coalescer flushed %d times with MaxBatch=1", got)
	}
	if got := s.Shards(); got != 0 {
		t.Fatalf("Shards() = %d with MaxBatch=1, want 0 (no dispatchers spun up)", got)
	}
	if got := s.met.predictions.Load(); got != 1 {
		t.Fatalf("predictions counter = %d want 1", got)
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	s, err := New(Options{Model: fitModel(t, 7)})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // must not panic
}

// Closing the server while predictions are queued must fail them with
// ErrServerClosed, never hang them.
func TestCloseFailsQueuedPredictions(t *testing.T) {
	m := fitModel(t, 7)
	s, err := New(Options{Model: m, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = s.coal.predict(context.Background(), []int{1, 2, 3})
		}()
	}
	s.Close()
	wg.Wait() // must terminate
}
