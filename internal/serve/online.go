package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/tensor"
)

// errObserveInternal marks observe failures that are the server's fault —
// the handler answers 500, not 400.
var errObserveInternal = errors.New("serve: internal observe failure")

// online is the server's mutable fitting state: a Fitter resumed from the
// serving snapshot that absorbs /v1/observe traffic. The Fitter itself is
// not concurrent-safe; mutations happen under mu. A background refit owns
// the fitter for its whole compute without holding mu — observes that arrive
// meanwhile are validated, journaled, and buffered into the staging queue
// (under stageMu, so they never block behind the refit), then drained into
// the fitter when the refit's results are swapped in.
type online struct {
	mu      sync.Mutex
	fitter  *core.Fitter
	pending int // observations accepted since the last refit

	// refitting tracks the single in-flight background refit; refitFitter is
	// the fitter that refit owns. A reload can install a new fitter while a
	// refit still runs on the abandoned one — observes then mutate the new
	// fitter under mu as usual, because only refitFitter is owned elsewhere;
	// refitCancel lets the reload abort the abandoned compute within one ALS
	// iteration instead of letting it burn cores to produce a discarded
	// result.
	refitting   bool
	refitFitter *core.Fitter
	refitCancel context.CancelFunc

	// gen counts superseding events (reloads). Off-lock data-dir writers
	// (compaction) capture it with their inputs; the generation check under
	// Server.durMu keeps a compaction captured before a reload from
	// overwriting the re-based directory.
	gen int64

	// The staging queue. staging is true exactly while an in-flight refit
	// owns the serving fitter; stagedDims simulates the fitter's shape across
	// the staged batches so fold-ins plan deterministically at staging time
	// and apply identically at drain time (a refit never changes dims).
	stageMu     sync.Mutex
	staging     bool
	staged      []stagedBatch
	stagedDims  []int
	stagedCount int
}

// stagedBatch is one journaled-but-not-yet-applied observe batch buffered
// while a refit owns the fitter. The journal sequence rides along so the
// replication applied-sequence can advance exactly when the drain applies
// the batch — the stream never ships records the primary's own model does
// not yet reflect.
type stagedBatch struct {
	seq uint64
	obs []core.Observation
}

// --- request/response shapes ---

type observeRequest struct {
	Observations []core.Observation `json:"observations"`
}

type foldResult struct {
	Mode  int `json:"mode"`
	Index int `json:"index"`
	NNZ   int `json:"nnz"`
}

type observeResponse struct {
	Appended int          `json:"appended"`
	Folded   []foldResult `json:"folded,omitempty"`
	Dims     []int        `json:"dims"`
	Pending  int          `json:"pending"`
	// Staged reports that the batch was accepted (and journaled) while a
	// background refit was in flight: it is applied — and its folded rows
	// become servable — when the refit finishes, not when this returns.
	Staged         bool `json:"staged,omitempty"`
	RefitTriggered bool `json:"refit_triggered,omitempty"`
}

// handleObserve is POST /v1/observe: append observations to the online
// training set, fold brand-new indices in as fresh factor rows, and
// atomically publish the grown model — in-flight predictions finish on the
// snapshot they started with, the same discipline as /v1/reload. With a data
// directory configured, every accepted batch is journaled before it is
// applied, so a crash replays it. When Options.RefitAfter observations have
// accumulated, a background warm refit is triggered and its result swapped
// in the same way; batches arriving during the refit are staged, not
// blocked.
func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	s.met.requests("observe").Add(1)
	var req observeRequest
	if !s.post(w, r, "observe", &req) {
		return
	}
	if len(req.Observations) == 0 {
		s.badRequest(w, "observe", fmt.Errorf("no observations"))
		return
	}
	resp, err := s.observe(r.Context(), req.Observations)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, resp)
	case errors.Is(err, errObserveInternal):
		s.met.errors("observe").Add(1)
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		// The timeout middleware already answered 503; nothing was applied.
		s.met.errors("observe").Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	default:
		s.badRequest(w, "observe", err)
	}
}

// observe validates, journals, applies, and publishes one batch of
// observations — or stages it when a background refit owns the fitter.
func (s *Server) observe(ctx context.Context, obs []core.Observation) (*observeResponse, error) {
	o := &s.online
	for {
		o.mu.Lock()

		// The lock may have been held for a while; if the request's deadline
		// passed meanwhile the client was already told 503 — applying now
		// would make a retry double-count the observations, so the batch is
		// dropped whole instead.
		if err := ctx.Err(); err != nil {
			o.mu.Unlock()
			return nil, err
		}
		// Stage only while a live refit owns the serving fitter. The nil
		// check matters: after a reload (fitter=nil) during a refit's
		// compaction tail (refitFitter already nil), nil==nil must not send
		// observes into a closed staging window to spin.
		if !(o.refitting && o.refitFitter != nil && o.fitter == o.refitFitter) {
			break // hold mu; the fitter is ours to mutate
		}
		o.mu.Unlock()
		resp, retry, err := s.stageObserve(ctx, obs)
		if !retry {
			return resp, err
		}
		// The staging window closed between the two locks (the refit drained,
		// or a reload superseded it) — go around and take the normal path.
	}
	defer o.mu.Unlock()

	if o.fitter == nil {
		f, err := s.resumeFitter(s.snapshot().model)
		if err != nil {
			return nil, fmt.Errorf("%w: resume fitter: %v", errObserveInternal, err)
		}
		o.fitter = f
	}
	f := o.fitter

	// Plan first (pure, against a simulated shape), apply second: a request
	// with any unplaceable observation is rejected whole, so a 400 never
	// leaves the model half-updated.
	plan, err := planObservations(f.Dims(), obs)
	if err != nil {
		return nil, err
	}

	// Journal before applying: once the batch mutates the fitter it must be
	// recoverable, so a journal failure rejects the batch untouched.
	seq, err := s.journalAppend(obs)
	if err != nil {
		return nil, err
	}

	resp, err := s.applyPlan(f, plan, true)
	if err != nil {
		return nil, err
	}
	s.met.observations.Add(int64(len(obs)))

	// Publish grown models: predictions and recommendations for folded-in
	// rows work the moment this returns. Append-only batches change nothing
	// a predictor can see (they take effect at the next refit), so the
	// current snapshot — and its file provenance on /healthz — stays put.
	if len(resp.Folded) > 0 {
		s.install(f.Snapshot())
	}
	// The record is applied; replication may now stream it (the snapshot
	// store above happens first, still under mu, so a bootstrap capture
	// always pairs the sequence with a model that reflects it).
	if seq > 0 {
		s.repl.advance(seq)
	}

	o.pending += len(obs)
	if s.opts.RefitAfter > 0 && o.pending >= s.opts.RefitAfter && !o.refitting {
		s.triggerRefit(f)
		resp.RefitTriggered = true
	}
	// Size-triggered journal compaction (no refit): checked after the refit
	// trigger so a batch that just started a refit defers to that refit's own
	// compaction instead of racing it.
	s.maybeCompactBySize(f)
	resp.Dims = f.Dims()
	resp.Pending = o.pending
	return resp, nil
}

// resumeFitter wraps m in a Fitter configured for this server: the model's
// own config, with Options.Sparsify overriding the pruning budget and the
// held-out set (when loaded) attached as the budget's scoring set — so
// background refits of a sparsified deployment re-prune, gated on
// generalization when a holdout is available.
func (s *Server) resumeFitter(m *core.Model) (*core.Fitter, error) {
	cfg := m.Config
	if s.opts.Sparsify > 0 {
		cfg.Sparsify = s.opts.Sparsify
	}
	if cfg.Sparsify > 0 && s.holdout != nil {
		cfg.SparsifyHoldout = s.holdout
	}
	// Surface refit progress on /metrics: OnIteration runs between ALS
	// iterations on the refit goroutine, so the gauges track the in-flight
	// refit live. (It is fit-time input, never serialized, so a resumed
	// model always needs it re-attached here.)
	cfg.OnIteration = func(st core.IterStats) error {
		s.met.refitIter.Store(int64(st.Iter))
		s.met.refitFitError.Store(math.Float64bits(st.Error))
		return nil
	}
	return core.ResumeFitter(m, cfg)
}

// triggerRefit hands the fitter to a background warm refit and opens the
// staging window. The caller holds online.mu and has already checked that no
// refit is in flight; pending resets because the refit will absorb it.
func (s *Server) triggerRefit(f *core.Fitter) {
	o := &s.online
	o.refitting = true
	o.refitFitter = f
	absorbed := o.pending
	o.pending = 0
	s.met.refitState.Store(refitFitting)
	s.met.refitIter.Store(0)
	s.event(slog.LevelInfo, "refit started", "observations", absorbed, "dims", fmt.Sprint(f.Dims()))
	// The refit's context chains off the server lifetime (Close aborts
	// it) and is additionally cancellable by a superseding reload.
	rctx, cancel := context.WithCancel(s.life)
	o.refitCancel = cancel
	// Open the staging window before the refit goroutine exists, so no
	// observe can slip between "refit owns the fitter" and "staging is
	// accepting".
	o.stageMu.Lock()
	o.staging = true
	o.stagedDims = f.Dims()
	o.stagedCount = 0
	o.stageMu.Unlock()
	go s.backgroundRefit(rctx, f, cancel)
}

// stageObserve accepts a batch while a refit owns the fitter: it plans
// against the simulated staged shape, journals, and buffers the raw batch
// for the post-refit drain. It reports retry=true when the staging window is
// closed (the caller re-takes the normal path).
func (s *Server) stageObserve(ctx context.Context, obs []core.Observation) (*observeResponse, bool, error) {
	o := &s.online
	o.stageMu.Lock()
	defer o.stageMu.Unlock()
	if !o.staging {
		return nil, true, nil
	}
	// Same discipline as the normal path: queueing behind other staged
	// appends (each an fsync under SyncAlways) may have outlived the request
	// deadline, and the client was already told 503 — applying now would
	// make a retry double-count the batch.
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	plan, err := planObservations(o.stagedDims, obs)
	if err != nil {
		return nil, false, err
	}
	seq, err := s.journalAppend(obs)
	if err != nil {
		return nil, false, err
	}
	o.staged = append(o.staged, stagedBatch{seq: seq, obs: obs})
	o.stagedCount += len(obs)

	resp := &observeResponse{Appended: len(plan.appends), Staged: true, Pending: o.stagedCount}
	for _, g := range plan.folds {
		o.stagedDims[g.mode]++
		resp.Folded = append(resp.Folded, foldResult{Mode: g.mode, Index: g.index, NNZ: len(g.obs)})
	}
	resp.Dims = append([]int(nil), o.stagedDims...)
	s.met.observations.Add(int64(len(obs)))
	s.met.stagedObservations.Add(int64(len(obs)))
	return resp, false, nil
}

// applyPlan runs one planned batch against the fitter; the caller holds
// online.mu (or is the single-threaded startup replay). live=false suppresses
// the traffic counters during replay. On an (unreachable if the plan is
// sound) apply failure, whatever did fold is published so the served snapshot
// never diverges from the fitter, and the fault is reported as the server's
// own (500, not 400).
func (s *Server) applyPlan(f *core.Fitter, plan *obsPlan, live bool) (*observeResponse, error) {
	resp := &observeResponse{Appended: len(plan.appends)}
	for _, g := range plan.folds {
		t0 := time.Now()
		if _, err := f.FoldIn(g.mode, g.obs); err != nil {
			if len(resp.Folded) > 0 {
				s.install(f.Snapshot())
			}
			return nil, fmt.Errorf("%w: fold-in mode %d: %v", errObserveInternal, g.mode, err)
		}
		resp.Folded = append(resp.Folded, foldResult{Mode: g.mode, Index: g.index, NNZ: len(g.obs)})
		if live {
			s.met.foldIns.Add(1)
			s.met.foldInDur.ObserveSince(t0)
		}
	}
	if len(plan.appends) > 0 {
		if err := f.Observe(plan.appends); err != nil {
			if len(resp.Folded) > 0 {
				s.install(f.Snapshot())
			}
			return nil, fmt.Errorf("%w: append: %v", errObserveInternal, err)
		}
	}
	return resp, nil
}

// backgroundRefit runs a warm-started Refit over everything the fitter has
// accumulated and publishes the result. It owns the fitter for the compute
// but does NOT hold online.mu — concurrent observes stage instead of
// blocking, and prediction traffic is unaffected as always. After the swap
// it drains the staging queue into the fitter, closes the staging window,
// and compacts the journal into a fresh snapshot. If a reload replaced the
// online state while the refit ran, the refit is abandoned — the reloaded
// model wins. The refit runs under the server's lifetime context, so Close
// stops it within one ALS iteration instead of letting it outlive the
// server.
func (s *Server) backgroundRefit(ctx context.Context, f *core.Fitter, cancel context.CancelFunc) {
	defer cancel()
	t0 := time.Now()
	o := &s.online
	m, err := f.Refit(ctx, nil)

	o.mu.Lock()
	if o.fitter != f {
		// A reload superseded this refit; it already closed the staging
		// window and dropped the staged batches along with the online state.
		o.refitting = false
		o.refitFitter = nil
		o.refitCancel = nil
		s.met.refitState.Store(refitIdle)
		o.mu.Unlock()
		s.event(slog.LevelWarn, "refit abandoned", "reason", "superseded by reload", "duration", time.Since(t0))
		return
	}
	refitOK := err == nil
	if refitOK {
		s.met.refits.Add(1)
		s.met.refitState.Store(refitPublishing)
	} else if !errors.Is(err, context.Canceled) {
		s.met.refitErrors.Add(1)
	}
	refitErr := err

	// Drain the staging queue under mu, looping until a pass finds it empty —
	// only then is the window closed, atomically with the last check, so no
	// staged batch is ever stranded. Batches were validated at staging time
	// against the same dims progression, so plan errors here are unreachable;
	// a batch that still fails is dropped rather than wedging the drain.
	drainedFolds := 0
	for {
		o.stageMu.Lock()
		batches := o.staged
		o.staged = nil
		if len(batches) == 0 {
			o.staging = false
			o.stageMu.Unlock()
			break
		}
		o.stageMu.Unlock()
		for _, b := range batches {
			plan, perr := planObservations(f.Dims(), b.obs)
			if perr != nil {
				s.met.errors("observe").Add(1)
			} else if resp, aerr := s.applyPlan(f, plan, true); aerr != nil {
				s.met.errors("observe").Add(1)
			} else {
				drainedFolds += len(resp.Folded)
				o.pending += len(b.obs)
			}
			// The applied sequence advances even past a dropped batch (both
			// failure arms are unreachable for plans that validated at
			// staging time): the stream must stay contiguous, and the
			// generation bump below re-bootstraps followers anyway.
			if b.seq > 0 {
				s.repl.appliedSeq.Store(b.seq)
			}
		}
	}

	// The fitter returns to the observes (they take the normal path under mu
	// from here on); refitting stays true until the compaction below is done
	// so a second refit cannot start and race it on the journal.
	o.refitFitter = nil

	var final *core.Model
	if refitOK || drainedFolds > 0 {
		final = m
		if !refitOK || drainedFolds > 0 {
			final = f.Snapshot()
		}
		s.install(final)
	}
	if refitOK {
		// The refit result is not derivable from the journal: followers
		// tailing the old generation must re-bootstrap. (A failed refit
		// whose drain folded rows is journal-derived — no bump.)
		s.repl.bumpGen()
	} else {
		// The drain advanced the applied sequence under the same identity;
		// wake stream waiters so caught-up followers fetch it.
		s.repl.wake()
	}

	// Capture what compaction needs while observes are quiesced (normal-path
	// observes block on mu, staging is closed, so the journal cannot move):
	// a deep copy of the training set and the exact sequence it covers. The
	// heavy work — holdout scoring, model save, snapshot write — then runs
	// off the lock; records appended meanwhile have later sequences and
	// survive the journal rotation.
	var compactX *tensor.Coord
	var covered uint64
	gen := o.gen
	if refitOK && s.dir != nil {
		compactX = f.TrainingSet()
		covered = s.journal.LastSeq()
	}
	o.mu.Unlock()

	if final != nil {
		s.updateHoldout(final)
	}
	if compactX != nil {
		s.compact(final, compactX, covered, gen)
	}

	o.mu.Lock()
	o.refitting = false
	o.refitCancel = nil
	s.met.refitState.Store(refitIdle)
	o.mu.Unlock()

	elapsed := time.Since(t0)
	switch {
	case refitOK:
		s.met.refitLastSecs.Store(math.Float64bits(elapsed.Seconds()))
		s.event(slog.LevelInfo, "refit published", "duration", elapsed,
			"iterations", s.met.refitIter.Load(), "drained_folds", drainedFolds,
			"core_nnz", final.Core.NNZ())
	case errors.Is(refitErr, context.Canceled):
		// The server is closing (or a reload cancelled the compute but lost
		// the ownership race); the model keeps serving as-is.
		s.event(slog.LevelInfo, "refit cancelled", "duration", elapsed)
	default:
		// The inconsistency fix: a failed refit used to bump a counter and
		// say nothing. The fitter keeps serving its pre-refit state.
		s.event(slog.LevelError, "refit failed", "error", refitErr, "duration", elapsed)
	}
}

// install publishes m as the serving snapshot. The empty path records that
// the model was derived in memory (fold-in or refit), not read from a file.
func (s *Server) install(m *core.Model) {
	s.cur.Store(newSnapshot(m, "", s.opts.Workers, s.now()))
}

// --- observation planning ---

type foldGroup struct {
	mode  int
	index int
	obs   []core.Observation
}

type obsPlan struct {
	folds   []foldGroup
	appends []core.Observation
}

// planObservations partitions a request's observations into fold-in groups
// (one per brand-new row, in application order) and plain appends, against a
// simulated copy of dims — no model state is touched. Rules:
//
//   - An observation whose coordinates all address existing (or
//     earlier-folded) rows is an append.
//   - A new row enters as mode's next slice (index == current dim); all the
//     request's observations for it whose other coordinates exist by then
//     form its fold-in group.
//   - Chains are allowed: an observation pairing a new user with a new item
//     defers until one of the two rows is folded, then joins the other's
//     group (or becomes an append if both folds beat it).
//
// Any observation that can never be placed — a gap in the new indices, a
// wrong-order index — fails the whole batch.
func planObservations(dims []int, obs []core.Observation) (*obsPlan, error) {
	n := len(dims)
	sim := append([]int(nil), dims...)
	plan := &obsPlan{}

	remaining := make([]int, 0, len(obs))
	for i, o := range obs {
		if len(o.Index) != n {
			return nil, fmt.Errorf("observation %d: index has %d modes, model has %d", i, len(o.Index), n)
		}
		for k, c := range o.Index {
			if c < 0 {
				return nil, fmt.Errorf("observation %d: negative index %d in mode %d", i, c, k)
			}
		}
		remaining = append(remaining, i)
	}

	inRange := func(idx []int, skipMode int) bool {
		for k, c := range idx {
			if k != skipMode && c >= sim[k] {
				return false
			}
		}
		return true
	}

	for len(remaining) > 0 {
		progress := false

		// Everything fully addressable now is an append.
		next := remaining[:0]
		for _, i := range remaining {
			if inRange(obs[i].Index, -1) {
				plan.appends = append(plan.appends, obs[i])
				progress = true
				continue
			}
			next = append(next, i)
		}
		remaining = next

		// Fold the lowest mode whose next slice has a complete group.
		for mode := 0; mode < n; mode++ {
			var g []core.Observation
			var keep []int
			for _, i := range remaining {
				o := obs[i]
				if o.Index[mode] == sim[mode] && inRange(o.Index, mode) {
					g = append(g, o)
					continue
				}
				keep = append(keep, i)
			}
			if len(g) == 0 {
				continue
			}
			plan.folds = append(plan.folds, foldGroup{mode: mode, index: sim[mode], obs: g})
			sim[mode]++
			remaining = keep
			progress = true
			break
		}

		if !progress {
			i := remaining[0]
			return nil, fmt.Errorf("observation %d: index %v cannot be placed: new rows must extend a mode contiguously (next new slice per mode: %v)",
				i, obs[i].Index, sim)
		}
	}
	return plan, nil
}
