package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/core"
)

// errObserveInternal marks observe failures that are the server's fault —
// the handler answers 500, not 400.
var errObserveInternal = errors.New("serve: internal observe failure")

// online is the server's mutable fitting state: a Fitter resumed from the
// serving snapshot that absorbs /v1/observe traffic. The Fitter itself is
// not concurrent-safe, so every mutation — observe, fold-in, background
// refit, and the snapshot swap that publishes the result — happens under mu;
// prediction traffic never touches it (it reads the atomic snapshot).
type online struct {
	mu        sync.Mutex
	fitter    *core.Fitter
	pending   int  // observations accepted since the last refit
	refitting bool // one background refit at a time
}

// --- request/response shapes ---

type observeRequest struct {
	Observations []core.Observation `json:"observations"`
}

type foldResult struct {
	Mode  int `json:"mode"`
	Index int `json:"index"`
	NNZ   int `json:"nnz"`
}

type observeResponse struct {
	Appended       int          `json:"appended"`
	Folded         []foldResult `json:"folded,omitempty"`
	Dims           []int        `json:"dims"`
	Pending        int          `json:"pending"`
	RefitTriggered bool         `json:"refit_triggered,omitempty"`
}

// handleObserve is POST /v1/observe: append observations to the online
// training set, fold brand-new indices in as fresh factor rows, and
// atomically publish the grown model — in-flight predictions finish on the
// snapshot they started with, the same discipline as /v1/reload. When
// Options.RefitAfter observations have accumulated, a background warm refit
// is triggered and its result swapped in the same way.
func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	s.met.requests("observe").Add(1)
	var req observeRequest
	if !s.post(w, r, "observe", &req) {
		return
	}
	if len(req.Observations) == 0 {
		s.badRequest(w, "observe", fmt.Errorf("no observations"))
		return
	}
	resp, err := s.observe(r.Context(), req.Observations)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, resp)
	case errors.Is(err, errObserveInternal):
		s.met.errors("observe").Add(1)
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		// The timeout middleware already answered 503; nothing was applied.
		s.met.errors("observe").Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	default:
		s.badRequest(w, "observe", err)
	}
}

// observe validates, applies, and publishes one batch of observations.
func (s *Server) observe(ctx context.Context, obs []core.Observation) (*observeResponse, error) {
	o := &s.online
	o.mu.Lock()
	defer o.mu.Unlock()

	// The lock may have been held for a while (a background refit); if the
	// request's deadline passed meanwhile the client was already told 503 —
	// applying now would make a retry double-count the observations, so the
	// batch is dropped whole instead.
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	if o.fitter == nil {
		snap := s.snapshot()
		f, err := core.ResumeFitter(snap.model, snap.model.Config)
		if err != nil {
			return nil, fmt.Errorf("%w: resume fitter: %v", errObserveInternal, err)
		}
		o.fitter = f
	}
	f := o.fitter

	// Plan first (pure, against a simulated shape), apply second: a request
	// with any unplaceable observation is rejected whole, so a 400 never
	// leaves the model half-updated.
	plan, err := planObservations(f.Dims(), obs)
	if err != nil {
		return nil, err
	}

	resp := &observeResponse{Appended: len(plan.appends)}
	for _, g := range plan.folds {
		if _, err := f.FoldIn(g.mode, g.obs); err != nil {
			// Unreachable if the plan is sound. Publish whatever did fold so
			// the served snapshot never diverges from the fitter, and report
			// the fault as the server's own (500, not 400).
			if len(resp.Folded) > 0 {
				s.install(f.Snapshot())
			}
			return nil, fmt.Errorf("%w: fold-in mode %d: %v", errObserveInternal, g.mode, err)
		}
		resp.Folded = append(resp.Folded, foldResult{Mode: g.mode, Index: g.index, NNZ: len(g.obs)})
		s.met.foldIns.Add(1)
	}
	if len(plan.appends) > 0 {
		if err := f.Observe(plan.appends); err != nil {
			if len(resp.Folded) > 0 {
				s.install(f.Snapshot())
			}
			return nil, fmt.Errorf("%w: append: %v", errObserveInternal, err)
		}
	}
	s.met.observations.Add(int64(len(obs)))

	// Publish grown models: predictions and recommendations for folded-in
	// rows work the moment this returns. Append-only batches change nothing
	// a predictor can see (they take effect at the next refit), so the
	// current snapshot — and its file provenance on /healthz — stays put.
	if len(resp.Folded) > 0 {
		s.install(f.Snapshot())
	}

	o.pending += len(obs)
	if s.opts.RefitAfter > 0 && o.pending >= s.opts.RefitAfter && !o.refitting {
		o.refitting = true
		o.pending = 0
		resp.RefitTriggered = true
		go s.backgroundRefit(f)
	}
	resp.Dims = f.Dims()
	resp.Pending = o.pending
	return resp, nil
}

// backgroundRefit runs a warm-started Refit over everything the fitter has
// accumulated and publishes the result. It holds online.mu for the duration,
// so concurrent observes (and reloads) queue behind it; prediction traffic is
// unaffected. If a reload replaced the online state while this goroutine was
// waiting for the lock, the refit is abandoned — the reloaded model wins.
// The refit runs under the server's lifetime context, so Close stops it
// within one ALS iteration instead of letting it outlive the server.
func (s *Server) backgroundRefit(f *core.Fitter) {
	o := &s.online
	o.mu.Lock()
	defer o.mu.Unlock()
	defer func() { o.refitting = false }()
	if o.fitter != f {
		return
	}
	m, err := f.Refit(s.life, nil)
	if err != nil {
		if !errors.Is(err, context.Canceled) {
			s.met.refitErrors.Add(1)
		}
		return
	}
	s.install(m)
	s.met.refits.Add(1)
}

// install publishes m as the serving snapshot. The empty path records that
// the model was derived in memory (fold-in or refit), not read from a file.
func (s *Server) install(m *core.Model) {
	s.cur.Store(newSnapshot(m, "", s.opts.Workers, s.now()))
}

// --- observation planning ---

type foldGroup struct {
	mode  int
	index int
	obs   []core.Observation
}

type obsPlan struct {
	folds   []foldGroup
	appends []core.Observation
}

// planObservations partitions a request's observations into fold-in groups
// (one per brand-new row, in application order) and plain appends, against a
// simulated copy of dims — no model state is touched. Rules:
//
//   - An observation whose coordinates all address existing (or
//     earlier-folded) rows is an append.
//   - A new row enters as mode's next slice (index == current dim); all the
//     request's observations for it whose other coordinates exist by then
//     form its fold-in group.
//   - Chains are allowed: an observation pairing a new user with a new item
//     defers until one of the two rows is folded, then joins the other's
//     group (or becomes an append if both folds beat it).
//
// Any observation that can never be placed — a gap in the new indices, a
// wrong-order index — fails the whole batch.
func planObservations(dims []int, obs []core.Observation) (*obsPlan, error) {
	n := len(dims)
	sim := append([]int(nil), dims...)
	plan := &obsPlan{}

	remaining := make([]int, 0, len(obs))
	for i, o := range obs {
		if len(o.Index) != n {
			return nil, fmt.Errorf("observation %d: index has %d modes, model has %d", i, len(o.Index), n)
		}
		for k, c := range o.Index {
			if c < 0 {
				return nil, fmt.Errorf("observation %d: negative index %d in mode %d", i, c, k)
			}
		}
		remaining = append(remaining, i)
	}

	inRange := func(idx []int, skipMode int) bool {
		for k, c := range idx {
			if k != skipMode && c >= sim[k] {
				return false
			}
		}
		return true
	}

	for len(remaining) > 0 {
		progress := false

		// Everything fully addressable now is an append.
		next := remaining[:0]
		for _, i := range remaining {
			if inRange(obs[i].Index, -1) {
				plan.appends = append(plan.appends, obs[i])
				progress = true
				continue
			}
			next = append(next, i)
		}
		remaining = next

		// Fold the lowest mode whose next slice has a complete group.
		for mode := 0; mode < n; mode++ {
			var g []core.Observation
			var keep []int
			for _, i := range remaining {
				o := obs[i]
				if o.Index[mode] == sim[mode] && inRange(o.Index, mode) {
					g = append(g, o)
					continue
				}
				keep = append(keep, i)
			}
			if len(g) == 0 {
				continue
			}
			plan.folds = append(plan.folds, foldGroup{mode: mode, index: sim[mode], obs: g})
			sim[mode]++
			remaining = keep
			progress = true
			break
		}

		if !progress {
			i := remaining[0]
			return nil, fmt.Errorf("observation %d: index %v cannot be placed: new rows must extend a mode contiguously (next new slice per mode: %v)",
				i, obs[i].Index, sim)
		}
	}
	return plan, nil
}
