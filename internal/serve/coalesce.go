package serve

import (
	"context"
	"sync"
)

// coalescer groups concurrent single predictions into PredictBatch calls.
//
// The dispatch loop blocks for the first request, then greedily drains
// whatever else is already queued (up to maxBatch) without waiting — so an
// idle server answers a lone request with zero added latency, while a busy
// server naturally accumulates a batch during each in-progress flush and
// amortizes the kernel's per-call overhead across it. Every flush scores
// its whole batch against one snapshot grabbed at flush time: a model
// reload between two flushes is therefore atomic from the client's view,
// and no batch ever mixes models.
type coalescer struct {
	ch       chan *predCall
	done     chan struct{}
	stopOnce sync.Once
	stopped  chan struct{}
	maxBatch int
	snap     func() *snapshot
	met      *metrics
}

// predCall is one queued prediction; out is buffered so the dispatcher never
// blocks on a caller that gave up (its context expired).
type predCall struct {
	idx []int
	out chan predAnswer
}

type predAnswer struct {
	val float64
	err error
}

func newCoalescer(maxBatch int, snap func() *snapshot, met *metrics) *coalescer {
	return &coalescer{
		ch:       make(chan *predCall, 4*maxBatch),
		done:     make(chan struct{}),
		stopped:  make(chan struct{}),
		maxBatch: maxBatch,
		snap:     snap,
		met:      met,
	}
}

func (c *coalescer) start() { go c.run() }

// stop ends the dispatch loop and fails whatever is still queued with
// ErrServerClosed. Idempotent. Callers must stop the HTTP listener first so
// no handler is concurrently submitting.
func (c *coalescer) stop() {
	c.stopOnce.Do(func() { close(c.done) })
	<-c.stopped
}

func (c *coalescer) run() {
	defer close(c.stopped)
	batch := make([]*predCall, 0, c.maxBatch)
	for {
		batch = batch[:0]
		select {
		case <-c.done:
			c.drainClosed()
			return
		case first := <-c.ch:
			batch = append(batch, first)
		}
	fill:
		for len(batch) < c.maxBatch {
			select {
			case call := <-c.ch:
				batch = append(batch, call)
			default:
				break fill
			}
		}
		c.flush(batch)
	}
}

// flush scores one batch against a single snapshot. The common all-valid
// case validates each index exactly once (PredictBatchChecked's pass);
// only when the batch contains a malformed index does flush fall back to
// per-item validation so each caller gets its own error.
func (c *coalescer) flush(batch []*predCall) {
	snap := c.snap()
	idxs := make([][]int, len(batch))
	for i, call := range batch {
		idxs[i] = call.idx
	}
	if vals, err := snap.pred.PredictBatchChecked(idxs); err == nil {
		for i, call := range batch {
			call.out <- predAnswer{val: vals[i]}
		}
		c.recordFlush(len(batch))
		return
	}

	valid := batch[:0]
	idxs = idxs[:0]
	for _, call := range batch {
		if err := snap.pred.ValidateIndex(call.idx); err != nil {
			call.out <- predAnswer{err: err}
			continue
		}
		valid = append(valid, call)
		idxs = append(idxs, call.idx)
	}
	if len(valid) == 0 {
		return
	}
	vals := snap.pred.PredictBatch(idxs)
	for i, call := range valid {
		call.out <- predAnswer{val: vals[i]}
	}
	c.recordFlush(len(valid))
}

func (c *coalescer) recordFlush(n int) {
	c.met.flushes.Add(1)
	c.met.coalesced.Add(int64(n))
	c.met.predictions.Add(int64(n))
}

// drainClosed empties the queue after done closed, failing each waiter.
func (c *coalescer) drainClosed() {
	for {
		select {
		case call := <-c.ch:
			call.out <- predAnswer{err: ErrServerClosed}
		default:
			return
		}
	}
}

// predict submits one index and waits for its batch to flush. A cancelled
// ctx abandons the wait (the buffered answer channel lets the dispatcher
// complete the entry without blocking).
func (c *coalescer) predict(ctx context.Context, idx []int) (float64, error) {
	call := &predCall{idx: idx, out: make(chan predAnswer, 1)}
	select {
	case c.ch <- call:
	case <-c.done:
		return 0, ErrServerClosed
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	select {
	case ans := <-call.out:
		return ans.val, ans.err
	case <-c.done:
		// The dispatcher may have answered concurrently with shutdown;
		// prefer the real answer if it is already there.
		select {
		case ans := <-call.out:
			return ans.val, ans.err
		default:
			return 0, ErrServerClosed
		}
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}
