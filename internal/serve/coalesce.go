package serve

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// coalescer groups concurrent single predictions into PredictBatch calls,
// sharded across independent dispatcher goroutines so flush assembly does not
// serialize on many-core boxes.
//
// Submissions round-robin across shards (an atomic cursor — cheaper than
// hashing and immune to hot-key skew). Each shard owns its queue and flush
// loop: the dispatcher blocks for the first request, then greedily drains
// whatever else is already queued (up to maxBatch) without waiting — so an
// idle server answers a lone request with zero added latency, while a busy
// server naturally accumulates a batch during each in-progress flush and
// amortizes the kernel's per-call overhead across it. With S shards, up to S
// flushes assemble and score concurrently, which is the same
// one-queue-per-worker discipline CSF/SPLATT-style kernels use to keep sparse
// work parallel.
//
// Every flush scores its whole batch against one snapshot grabbed at flush
// time: a model reload between two flushes is therefore atomic from the
// client's view, and no batch ever mixes models. Shards grab snapshots
// independently — two concurrent flushes may briefly score different
// generations, exactly as two back-to-back flushes of a single dispatcher
// would.
//
// The hot path allocates nothing: predCall objects (with their 1-buffered
// answer channels) recycle through a sync.Pool, and each shard reuses its own
// batch/index scratch across flushes — only the dispatcher goroutine touches
// it, so no locking is needed.
type coalescer struct {
	shards   []*coalShard
	rr       atomic.Uint64 // round-robin submission cursor
	maxBatch int
	snap     func() *snapshot
	met      *metrics
	stopOnce sync.Once
}

// predCall is one queued prediction; out is buffered so the dispatcher never
// blocks on a caller that gave up (its context expired).
type predCall struct {
	idx []int
	out chan predAnswer
}

type predAnswer struct {
	val float64
	err error
}

// callPool recycles predCall objects across requests. A call is returned to
// the pool only by a caller that consumed its answer (or never submitted it)
// — an abandoned call (context cancelled, shutdown race) may still be
// written to by a dispatcher and is left for the garbage collector instead.
var callPool = sync.Pool{
	New: func() interface{} { return &predCall{out: make(chan predAnswer, 1)} },
}

// recycleCall clears the caller-owned index and returns the call to the
// pool; the one place the pool invariant lives.
func recycleCall(call *predCall) {
	call.idx = nil
	callPool.Put(call)
}

// coalShard is one dispatcher: a submission queue, a flush loop, and scratch
// buffers reused across flushes. batch and idxs are touched only by the
// shard's own dispatcher goroutine.
type coalShard struct {
	c       *coalescer
	id      int
	ch      chan *predCall
	done    chan struct{}
	stopped chan struct{}
	batch   []*predCall
	idxs    [][]int
}

// maxAutoShards caps the automatic shard count: each flush already fans its
// batch out across the predictor's workers, so past a point more dispatchers
// only add scheduling churn.
const maxAutoShards = 16

// defaultShards picks the shard count for a box with procs schedulable
// threads: half the procs (the other half score batches), at least one,
// capped at maxAutoShards.
func defaultShards(procs int) int {
	s := procs / 2
	if s < 1 {
		s = 1
	}
	if s > maxAutoShards {
		s = maxAutoShards
	}
	return s
}

func newCoalescer(maxBatch, shards int, snap func() *snapshot, met *metrics) *coalescer {
	if shards <= 0 {
		shards = defaultShards(runtime.GOMAXPROCS(0))
	}
	c := &coalescer{maxBatch: maxBatch, snap: snap, met: met}
	met.initShards(shards)
	c.shards = make([]*coalShard, shards)
	for i := range c.shards {
		c.shards[i] = &coalShard{
			c:       c,
			id:      i,
			ch:      make(chan *predCall, 4*maxBatch),
			done:    make(chan struct{}),
			stopped: make(chan struct{}),
			batch:   make([]*predCall, 0, maxBatch),
			idxs:    make([][]int, 0, maxBatch),
		}
	}
	return c
}

func (c *coalescer) start() {
	for _, sh := range c.shards {
		go sh.run()
	}
}

// stop ends every shard's dispatch loop and fails whatever is still queued
// with ErrServerClosed. Idempotent. Callers must stop the HTTP listener first
// so no handler is concurrently submitting.
func (c *coalescer) stop() {
	c.stopOnce.Do(func() {
		for _, sh := range c.shards {
			close(sh.done)
		}
	})
	for _, sh := range c.shards {
		<-sh.stopped
	}
}

// queueDepths samples every shard's queue length; /metrics exposes it as the
// per-shard occupancy gauge.
func (c *coalescer) queueDepths() []int {
	d := make([]int, len(c.shards))
	for i, sh := range c.shards {
		d[i] = len(sh.ch)
	}
	return d
}

func (sh *coalShard) run() {
	defer close(sh.stopped)
	for {
		sh.batch = sh.batch[:0]
		select {
		case <-sh.done:
			sh.drainClosed()
			return
		case first := <-sh.ch:
			sh.batch = append(sh.batch, first)
		}
	fill:
		for len(sh.batch) < sh.c.maxBatch {
			select {
			case call := <-sh.ch:
				sh.batch = append(sh.batch, call)
			default:
				break fill
			}
		}
		sh.flush()
	}
}

// flush scores one batch against a single snapshot. The common all-valid
// case validates each index exactly once (PredictBatchChecked's pass);
// only when the batch contains a malformed index does flush fall back to
// per-item validation so each caller gets its own error. After an answer is
// sent the call belongs to its caller again (it may be recycled and
// resubmitted immediately), so the dispatcher never touches a call past its
// send.
func (sh *coalShard) flush() {
	t0 := time.Now()
	snap := sh.c.snap()
	batch := sh.batch
	idxs := sh.idxs[:0]
	for _, call := range batch {
		idxs = append(idxs, call.idx)
	}
	sh.idxs = idxs
	if vals, err := snap.pred.PredictBatchChecked(idxs); err == nil {
		for i, call := range batch {
			call.out <- predAnswer{val: vals[i]}
		}
		sh.record(len(batch), t0)
		return
	}

	valid := batch[:0]
	idxs = idxs[:0]
	for _, call := range batch {
		if err := snap.pred.ValidateIndex(call.idx); err != nil {
			call.out <- predAnswer{err: err}
			continue
		}
		valid = append(valid, call)
		idxs = append(idxs, call.idx)
	}
	sh.idxs = idxs
	if len(valid) == 0 {
		return
	}
	vals := snap.pred.PredictBatch(idxs)
	for i, call := range valid {
		call.out <- predAnswer{val: vals[i]}
	}
	sh.record(len(valid), t0)
}

func (sh *coalShard) record(n int, t0 time.Time) {
	m := sh.c.met
	m.flushes.Add(1)
	m.coalesced.Add(int64(n))
	m.predictions.Add(int64(n))
	m.shardFlushes[sh.id].Add(1)
	m.shardCoalesced[sh.id].Add(int64(n))
	m.shardFlushSize[sh.id].Observe(float64(n))
	m.shardFlushDur[sh.id].ObserveSince(t0)
}

// drainClosed empties the shard's queue after done closed, failing each
// waiter.
func (sh *coalShard) drainClosed() {
	for {
		select {
		case call := <-sh.ch:
			call.out <- predAnswer{err: ErrServerClosed}
		default:
			return
		}
	}
}

// predict submits one index to a round-robin-chosen shard and waits for its
// batch to flush. A cancelled ctx abandons the wait (the buffered answer
// channel lets the dispatcher complete the entry without blocking).
func (c *coalescer) predict(ctx context.Context, idx []int) (float64, error) {
	sh := c.shards[c.rr.Add(1)%uint64(len(c.shards))]
	// Tag the request's access-log line with the shard that handled it (a
	// no-op outside an instrumented request).
	noteCoalesced(ctx, sh.id)
	call := callPool.Get().(*predCall)
	call.idx = idx
	select {
	case sh.ch <- call:
	case <-sh.done:
		recycleCall(call) // never submitted
		return 0, ErrServerClosed
	case <-ctx.Done():
		recycleCall(call) // never submitted
		return 0, ctx.Err()
	}
	select {
	case ans := <-call.out:
		recycleCall(call)
		return ans.val, ans.err
	case <-sh.done:
		// The dispatcher may have answered concurrently with shutdown;
		// prefer the real answer if it is already there.
		select {
		case ans := <-call.out:
			recycleCall(call)
			return ans.val, ans.err
		default:
			// Still queued: drainClosed will answer it. Not recyclable.
			return 0, ErrServerClosed
		}
	case <-ctx.Done():
		// Abandoned mid-flight: the dispatcher may still write the answer, so
		// the call must not be recycled.
		return 0, ctx.Err()
	}
}
