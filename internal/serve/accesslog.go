package serve

import (
	"context"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Request correlation and access logging. Every route is wrapped in
// instrument, which (1) assigns the request a correlation ID — the caller's
// X-Ptucker-Request-Id when it is clean, a generated one otherwise — and
// echoes it on the response, (2) records the request's wall-clock duration
// in the per-endpoint histogram, (3) emits a Debug access-log line carrying
// endpoint, method, status, duration, remote address, and (for coalesced
// predictions) the dispatcher shard, and (4) escalates the line to Warn
// with the same detail when the request ran past Options.SlowRequest.

// requestMeta is per-request detail the inner handlers fill in and the
// access-log middleware reads after the handler returns. Fields are atomic
// because a timed-out handler keeps running on its own goroutine (see
// withTimeout) and may still be writing when the middleware reads.
type requestMeta struct {
	coalesced atomic.Bool
	shard     atomic.Int64
}

// metaKey carries a *requestMeta through the request context.
type metaKey struct{}

// noteCoalesced records that the request was answered through coalescer
// shard id; a no-op for contexts without instrumentation (direct predict
// calls in tests and benchmarks).
func noteCoalesced(ctx context.Context, shard int) {
	if meta, ok := ctx.Value(metaKey{}).(*requestMeta); ok {
		meta.shard.Store(int64(shard))
		meta.coalesced.Store(true)
	}
}

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// instrument wraps h with the endpoint's observability envelope; see the
// file comment. endpoint must be one of histEndpoints.
func (s *Server) instrument(endpoint string, h http.Handler) http.Handler {
	hist := s.met.duration(endpoint)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		id := r.Header.Get(obs.RequestIDHeader)
		if !obs.CleanRequestID(id) {
			id = obs.NewRequestID()
		}
		w.Header().Set(obs.RequestIDHeader, id)
		meta := &requestMeta{}
		meta.shard.Store(-1)
		r = r.WithContext(context.WithValue(r.Context(), metaKey{}, meta))
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, r)
		d := time.Since(t0)
		hist.ObserveDuration(d)

		slow := s.slowReq > 0 && d >= s.slowReq
		level := slog.LevelDebug
		msg := "request"
		if slow {
			level, msg = slog.LevelWarn, "slow request"
		}
		if !s.log.Enabled(r.Context(), level) {
			return
		}
		status := sw.code
		if status == 0 {
			status = http.StatusOK
		}
		args := []interface{}{
			"request_id", id,
			"endpoint", endpoint,
			"method", r.Method,
			"status", status,
			"duration", d,
			"remote", r.RemoteAddr,
		}
		if meta.coalesced.Load() {
			args = append(args, "coalesced", true, "shard", meta.shard.Load())
		}
		if slow {
			args = append(args, "slow_threshold", s.slowReq)
		}
		s.event(level, msg, args...)
	})
}

// event emits one structured log line with the server's identity attached:
// role ("standalone", "primary", or "follower"), replication epoch, and
// model generation. Every lifecycle event and access-log line goes through
// it so operators can filter one process's stream out of a fleet's.
func (s *Server) event(level slog.Level, msg string, args ...interface{}) {
	if !s.log.Enabled(context.Background(), level) {
		return
	}
	role := "standalone"
	switch {
	case s.isFollower():
		role = "follower"
	case s.repl.epoch != 0:
		role = "primary"
	}
	args = append(args, "role", role, "epoch", s.repl.epoch, "gen", s.repl.gen.Load())
	s.log.Log(context.Background(), level, msg, args...)
}
